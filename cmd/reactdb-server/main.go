// Command reactdb-server runs a reactdb node fleet in one process: a WAL
// primary preloaded with the smallbank workload, plus any number of read
// replicas tailing its log, each node exposed on its own TCP listener via the
// length-prefixed wire protocol. Remote clients dial the printed addresses
// with server.Dial, or hand the whole list to server.NewRouter for lag- and
// load-aware routing.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/server"
	"reactdb/internal/wal"
	"reactdb/internal/workload/smallbank"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7421", "primary listen address")
	replicas := flag.Int("replicas", 1, "number of read replicas (each gets an ephemeral listener)")
	customers := flag.Int("customers", 1024, "smallbank customers to preload")
	executors := flag.Int("executors", 4, "executors in the primary's container")
	ack := flag.String("ack", "async", "replication ack mode: async or semisync")
	maxInFlight := flag.Int("max-inflight", 64, "per-session pipelining window")
	supervise := flag.Bool("supervise", false, "run a failover supervisor: heartbeat the primary and, on persistent failure, fence it and promote the freshest semi-sync replica (requires -ack=semisync and -replicas >= 1)")
	flag.Parse()

	ackMode := engine.AckAsync
	switch strings.ToLower(*ack) {
	case "async":
	case "semisync":
		ackMode = engine.AckSemiSync
	default:
		log.Fatalf("unknown -ack %q (want async or semisync)", *ack)
	}

	cfg := engine.NewSharedEverythingWithAffinity(*executors)
	cfg.GroupCommit = engine.GroupCommitConfig{Enabled: true, Window: 200 * time.Microsecond, MaxBatch: 32}
	cfg.Durability = engine.DurabilityConfig{Mode: engine.DurabilityWAL, Storage: wal.NewMemStorage()}

	db, err := engine.Open(smallbank.NewDefinition(*customers), cfg)
	if err != nil {
		log.Fatalf("open primary: %v", err)
	}
	defer db.Close()
	if err := smallbank.Load(db, *customers, 1e9, 1e9); err != nil {
		log.Fatalf("load smallbank: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		log.Fatalf("checkpoint: %v", err)
	}

	opts := server.Options{MaxInFlight: *maxInFlight}
	primary := server.NewPrimary(db, opts)
	defer primary.Close()
	pAddr, err := primary.Start(*addr)
	if err != nil {
		log.Fatalf("listen primary: %v", err)
	}
	fmt.Printf("listening role=primary addr=%s customers=%d executors=%d\n", pAddr, *customers, *executors)

	var engineReps []*engine.Replica
	repServers := make(map[*engine.Replica]*server.Server)
	for i := 0; i < *replicas; i++ {
		rep, err := engine.OpenReplica(db, engine.ReplicaOptions{
			Ack:          ackMode,
			PollInterval: 200 * time.Microsecond,
		})
		if err != nil {
			log.Fatalf("open replica %d: %v", i, err)
		}
		defer rep.Close()
		if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
			log.Fatalf("replica %d catch-up: %v", i, err)
		}
		rs := server.NewReplica(rep, opts)
		defer rs.Close()
		rAddr, err := rs.Start("127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen replica %d: %v", i, err)
		}
		fmt.Printf("listening role=replica addr=%s ack=%s\n", rAddr, strings.ToLower(*ack))
		engineReps = append(engineReps, rep)
		repServers[rep] = rs
	}

	if *supervise {
		if ackMode != engine.AckSemiSync || len(engineReps) == 0 {
			log.Fatalf("-supervise requires -ack=semisync and -replicas >= 1 (failover is lossless only for semi-sync acks)")
		}
		// On failover every listener stays up and follows its node: the
		// primary listener and the promoted replica's listener both swap to
		// the new primary, surviving replica listeners swap to their
		// re-pointed successors. Clients keep their addresses; the router
		// re-points writes by epoch.
		sup := engine.NewSupervisor(db, engineReps, engine.SupervisorOptions{
			OnPromote: func(promoted *engine.Database, from *engine.Replica) {
				primary.Promote(promoted)
				if rs := repServers[from]; rs != nil {
					rs.Promote(promoted)
					delete(repServers, from)
				}
				fmt.Printf("failover: promoted replica to primary at epoch %d\n", promoted.Epoch())
			},
			OnRepoint: func(old, next *engine.Replica) {
				if rs := repServers[old]; rs != nil {
					rs.Swap(next)
					delete(repServers, old)
					repServers[next] = rs
				}
			},
		})
		sup.Start()
		defer sup.Stop()
		fmt.Println("supervisor running: heartbeating primary")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

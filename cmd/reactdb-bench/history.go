package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// appendHistory appends a dated jsonReport entry to a JSON-array history file
// (creating it if absent). Unlike -json, which overwrites with the latest run,
// the history file keeps the trajectory so CI can flag regressions against the
// previous entry.
func appendHistory(path string, report jsonReport) error {
	var history []jsonReport
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &history); err != nil {
			// Migration: the file may be a single -json report from before
			// this experiment kept a history; keep it as the first entry so
			// the old datapoint still anchors the first comparison.
			var single jsonReport
			if err2 := json.Unmarshal(buf, &single); err2 != nil || single.Experiment == "" {
				return fmt.Errorf("parse history %s: %w", path, err)
			}
			history = []jsonReport{single}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("read history %s: %w", path, err)
	}
	history = append(history, report)
	buf, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal history: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// historyRow is the subset of a benchmark payload row the regression gate
// understands. Rows without a name (or from experiments with differently
// shaped payloads) are skipped.
type historyRow struct {
	Name        string   `json:"name"`
	NsPerOp     *float64 `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func decodeHistoryRows(payload any) (map[string]historyRow, error) {
	buf, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	var rows []historyRow
	if err := json.Unmarshal(buf, &rows); err != nil {
		// Sweep payloads (scheduler, query, replication) are objects that
		// carry their rows under a "rows" field rather than being bare
		// arrays like the storage payload.
		var wrapped struct {
			Rows []historyRow `json:"rows"`
		}
		if err2 := json.Unmarshal(buf, &wrapped); err2 != nil {
			return nil, err
		}
		rows = wrapped.Rows
	}
	out := make(map[string]historyRow, len(rows))
	for _, r := range rows {
		if r.Name != "" {
			out[r.Name] = r
		}
	}
	return out, nil
}

// compareHistory checks the last history entry against the one before it and
// returns an error if any benchmark row regressed by more than maxRegression
// (fractional, e.g. 0.20) in ns/op or allocs/op. Alloc counts near zero use an
// absolute slack of 0.25 allocs/op so a 0 -> 0.1 wobble on a pinned-zero path
// still fails while float jitter on identical runs does not.
func compareHistory(path string, maxRegression float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("  no history at %s; nothing to compare\n", path)
			return nil
		}
		return fmt.Errorf("read history %s: %w", path, err)
	}
	var history []jsonReport
	if err := json.Unmarshal(buf, &history); err != nil {
		return fmt.Errorf("parse history %s: %w", path, err)
	}
	if len(history) < 2 {
		fmt.Printf("  %s has %d entry(ies); need 2 to compare\n", path, len(history))
		return nil
	}
	prev, last := history[len(history)-2], history[len(history)-1]
	prevRows, err := decodeHistoryRows(prev.Payload)
	if err != nil {
		return fmt.Errorf("decode previous payload: %w", err)
	}
	lastRows, err := decodeHistoryRows(last.Payload)
	if err != nil {
		return fmt.Errorf("decode latest payload: %w", err)
	}

	var regressions []string
	check := func(name, metric string, prevV, lastV float64) {
		if metric == "ns/op" && prevV == 0 && lastV > 0 {
			// ns/op is never genuinely zero: a zero previous entry predates
			// the row being measured (trend-only history promoted to a gated
			// one). The new value is the baseline, not a regression.
			fmt.Printf("  baseline %s %s: 0 -> %.2f (previous entry unmeasured)\n", name, metric, lastV)
			return
		}
		limit := prevV * (1 + maxRegression)
		if metric == "allocs/op" && limit < prevV+0.25 {
			limit = prevV + 0.25
		}
		if lastV > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s %s: %.2f -> %.2f (limit %.2f)", name, metric, prevV, lastV, limit))
		} else {
			fmt.Printf("  ok %s %s: %.2f -> %.2f\n", name, metric, prevV, lastV)
		}
	}
	compared := 0
	for name, lastRow := range lastRows {
		prevRow, ok := prevRows[name]
		if !ok {
			fmt.Printf("  new row %s (no previous entry)\n", name)
			continue
		}
		compared++
		if prevRow.NsPerOp != nil && lastRow.NsPerOp != nil {
			check(name, "ns/op", *prevRow.NsPerOp, *lastRow.NsPerOp)
		}
		if prevRow.AllocsPerOp != nil && lastRow.AllocsPerOp != nil {
			check(name, "allocs/op", *prevRow.AllocsPerOp, *lastRow.AllocsPerOp)
		}
	}
	if compared == 0 {
		fmt.Printf("  no comparable rows between the last two entries of %s\n", path)
		return nil
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d benchmark regression(s) in %s (threshold %.0f%%)",
			len(regressions), path, maxRegression*100)
	}
	return nil
}

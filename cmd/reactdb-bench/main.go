// Command reactdb-bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the rows/series the paper reports; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	reactdb-bench -list
//	reactdb-bench -experiment fig5
//	reactdb-bench -experiment scheduler -json BENCH_sched.json
//	reactdb-bench -all [-full]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"reactdb/internal/experiments"
)

// jsonReport is the envelope written by -json: the experiment's
// machine-readable payload plus enough provenance to compare runs.
type jsonReport struct {
	Experiment  string `json:"experiment"`
	Title       string `json:"title"`
	Full        bool   `json:"full"`
	GeneratedAt string `json:"generated_at"`
	Payload     any    `json:"payload"`
}

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiment ids and exit")
		experiment = flag.String("experiment", "", "run a single experiment (e.g. fig5, tab1)")
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "use the full (paper-sized) sweeps instead of the quick ones")
		jsonPath   = flag.String("json", "", "write the experiment's machine-readable payload to this file (single -experiment runs only)")
		historyP   = flag.String("json-history", "", "append a dated entry to this JSON-array history file (single -experiment runs only)")
		compareP   = flag.String("compare", "", "compare the last two entries of this history file and exit 1 on regression; skips running experiments")
		maxRegress = flag.Float64("max-regression", 0.20, "fractional ns/op or allocs/op regression tolerated by -compare")
	)
	flag.Parse()

	if *compareP != "" {
		if err := compareHistory(*compareP, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Full: *full}
	registry := experiments.Registry()

	runOne := func(id string) error {
		runner, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		table, err := runner(opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *jsonPath != "" || *historyP != "" {
			if table.Machine == nil {
				return fmt.Errorf("experiment %s has no machine-readable payload for -json", id)
			}
			report := jsonReport{
				Experiment:  table.ID,
				Title:       table.Title,
				Full:        *full,
				GeneratedAt: time.Now().UTC().Format(time.RFC3339),
				Payload:     table.Machine,
			}
			if *jsonPath != "" {
				buf, err := json.MarshalIndent(report, "", "  ")
				if err != nil {
					return fmt.Errorf("marshal %s payload: %w", id, err)
				}
				buf = append(buf, '\n')
				if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
					return fmt.Errorf("write %s: %w", *jsonPath, err)
				}
				fmt.Printf("  wrote %s\n\n", *jsonPath)
			}
			if *historyP != "" {
				if err := appendHistory(*historyP, report); err != nil {
					return err
				}
				fmt.Printf("  appended to %s\n\n", *historyP)
			}
		}
		return nil
	}

	switch {
	case *experiment != "":
		if err := runOne(*experiment); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		if *jsonPath != "" || *historyP != "" {
			fmt.Fprintln(os.Stderr, "-json/-json-history require a single -experiment run")
			os.Exit(2)
		}
		for _, id := range experiments.IDs() {
			if err := runOne(id); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

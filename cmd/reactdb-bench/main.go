// Command reactdb-bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the rows/series the paper reports; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	reactdb-bench -list
//	reactdb-bench -experiment fig5
//	reactdb-bench -all [-full]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reactdb/internal/experiments"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiment ids and exit")
		experiment = flag.String("experiment", "", "run a single experiment (e.g. fig5, tab1)")
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "use the full (paper-sized) sweeps instead of the quick ones")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Options{Full: *full}
	registry := experiments.Registry()

	runOne := func(id string) error {
		runner, ok := registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		table, err := runner(opts)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		table.Fprint(os.Stdout)
		fmt.Printf("  (completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	switch {
	case *experiment != "":
		if err := runOne(*experiment); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *all:
		for _, id := range experiments.IDs() {
			if err := runOne(id); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

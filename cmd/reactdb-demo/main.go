// Command reactdb-demo runs the paper's digital currency exchange example
// (Figure 1) end to end under two database architectures and prints the
// resulting latencies, demonstrating that the same application code runs
// unchanged while the deployment configuration changes.
package main

import (
	"fmt"
	"log"
	"time"

	"reactdb"
	"reactdb/internal/engine"
	"reactdb/internal/workload/exchange"
)

func main() {
	params := exchange.DefaultParams()
	params.Providers = 8
	params.OrdersPerProvider = 500

	deployments := []struct {
		name string
		cfg  reactdb.Config
	}{
		{"single container (classic shared-everything)", engine.NewSharedNothing(1)},
		{"one executor per reactor (shared-nothing)", engine.NewSharedNothing(params.Providers + 1)},
	}

	for _, d := range deployments {
		cfg := d.cfg
		cfg.Placement = exchange.Placement(cfg.Containers)
		cfg.Costs = reactdb.Costs{Send: 40 * time.Microsecond, Receive: 80 * time.Microsecond}
		db, err := reactdb.Open(exchange.NewDefinition(params), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := exchange.Load(db, params); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("deployment: %s\n", d.name)
		for i, strategy := range exchange.Strategies() {
			start := time.Now()
			const runs = 5
			for r := 0; r < runs; r++ {
				_, err := db.Execute(exchange.ExchangeReactor, exchange.ProcedureFor(strategy),
					exchange.ProviderName(r%params.Providers), int64(100+r), 25.0,
					int64(i*runs+r+1), int64(20_000), int64(0))
				if err != nil {
					log.Fatalf("auth_pay (%s): %v", strategy, err)
				}
			}
			fmt.Printf("  auth_pay %-22s avg latency %v\n", strategy,
				(time.Since(start) / runs).Round(10*time.Microsecond))
		}
		db.Close()
		fmt.Println()
	}
	fmt.Println("Same application code, different architectures — only the configuration changed.")
}

// Package reactdb is the public API of ReactDB-Go, a reproduction of
// "Reactors: A Case for Predictable, Virtualized Actor Database Systems"
// (Shah & Vaz Salles, SIGMOD 2018).
//
// Applications are written once against the reactor programming model —
// reactor types encapsulating relations and procedures, asynchronous
// cross-reactor calls returning futures, serializable transactions — and the
// database architecture (shared-everything with or without affinity,
// shared-nothing) is chosen at deployment time through a Config, without any
// change to application code.
//
// A minimal application looks like this:
//
//	account := reactdb.NewReactorType("Account").
//		AddRelation(reactdb.MustSchema("balance",
//			[]reactdb.Column{{Name: "id", Type: reactdb.Int64}, {Name: "amount", Type: reactdb.Float64}}, "id")).
//		AddProcedure("deposit", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
//			row, err := ctx.Get("balance", int64(0))
//			if err != nil {
//				return nil, err
//			}
//			return nil, ctx.Update("balance", reactdb.Row{int64(0), row.Float64(1) + args.Float64(0)})
//		})
//
//	def := reactdb.NewDatabaseDef().MustAddType(account)
//	def.MustDeclareReactors("Account", "alice", "bob")
//	db := reactdb.MustOpen(def, reactdb.SharedNothing(2))
//	defer db.Close()
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping between the paper's sections and the implementation.
package reactdb

import (
	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
	"reactdb/internal/server"
	"reactdb/internal/vclock"
)

// Re-exported programming-model types (paper §2).
type (
	// ReactorType declares the relations and procedures of a reactor type.
	ReactorType = core.Type
	// DatabaseDef is the logical declaration of a reactor database.
	DatabaseDef = core.DatabaseDef
	// Context is the execution interface procedures receive.
	Context = core.Context
	// Procedure is application logic invoked on a reactor.
	Procedure = core.Procedure
	// Args carries procedure arguments.
	Args = core.Args
	// Future is the promise returned by asynchronous cross-reactor calls.
	Future = core.Future
)

// Re-exported relational types.
type (
	// Schema describes one relation.
	Schema = rel.Schema
	// Column is one attribute of a relation.
	Column = rel.Column
	// ColType enumerates column types.
	ColType = rel.ColType
	// Row is a tuple.
	Row = rel.Row
	// RowView is a lazy, allocation-free reader over a stored row; see
	// Context.GetView.
	RowView = rel.RowView
)

// Re-exported declarative-query types. A Query is built fluently, then run
// either ad hoc through Database.Query (its own serializable read
// transaction) or inside a procedure through Context.Query (the procedure's
// transaction):
//
//	res, err := db.Query(reactdb.NewQuery().
//		From("a", "account", "alice", "bob").
//		Where("a", "branch", reactdb.Eq, "north").
//		Sum("a.amount", "total"))
type (
	// Query is a declarative read-only query over one or more reactors.
	Query = rel.Query
	// QueryResult is the materialized output of a query.
	QueryResult = rel.Result
	// CmpOp is a comparison operator for Query.Where.
	CmpOp = rel.CmpOp
)

// Comparison operators for Query.Where.
const (
	Eq = rel.Eq
	Ne = rel.Ne
	Lt = rel.Lt
	Le = rel.Le
	Gt = rel.Gt
	Ge = rel.Ge
)

// NewQuery starts a declarative query. Chain From/Where/Join/GroupBy/
// aggregate/Select/OrderBy/Limit calls, then pass it to Database.Query or
// Context.Query. Builder errors accumulate and surface at execution.
func NewQuery() *Query { return rel.NewQuery() }

// Re-exported runtime types (paper §3).
type (
	// Database is a running ReactDB instance.
	Database = engine.Database
	// Config describes a deployment (containers, executors, routing, costs).
	Config = engine.Config
	// Strategy names a deployment strategy.
	Strategy = engine.Strategy
	// Costs are the virtual-core cost parameters.
	Costs = vclock.Costs
	// Profile is the per-transaction latency breakdown.
	Profile = engine.Profile
	// DispatchMode selects queued (scheduler) or direct request dispatch.
	DispatchMode = engine.DispatchMode
	// AdmissionPolicy selects blocking or fail-fast admission control.
	AdmissionPolicy = engine.AdmissionPolicy
	// StealConfig configures work stealing between a container's executors.
	StealConfig = engine.StealConfig
	// AdaptiveDepthConfig configures the adaptive admission controller that
	// moves each executor's effective queue depth under overload.
	AdaptiveDepthConfig = engine.AdaptiveDepthConfig
	// GroupCommitConfig configures container-level batched group commit.
	GroupCommitConfig = engine.GroupCommitConfig
	// DurabilityConfig selects and parameterizes the durability path.
	DurabilityConfig = engine.DurabilityConfig
	// DurabilityMode selects how commits become durable before acknowledgement.
	DurabilityMode = engine.DurabilityMode
	// QueueStats is a snapshot of one executor's request-queue activity.
	QueueStats = engine.QueueStats
	// GroupCommitStats is a snapshot of one container's group-commit activity.
	GroupCommitStats = engine.GroupCommitStats
	// WALStats is a snapshot of one container's write-ahead log activity.
	WALStats = engine.WALStats
	// CheckpointStats is a snapshot of one container's checkpoint activity.
	CheckpointStats = engine.CheckpointStats
)

// Re-exported replication types: a Replica bootstraps from the primary's
// newest checkpoint, tails its WAL segments, and serves snapshot-consistent
// read-only transactions and queries (see OpenReplica).
type (
	// Replica is a read-only follower of a primary Database.
	Replica = engine.Replica
	// ReplicaOptions configures OpenReplica.
	ReplicaOptions = engine.ReplicaOptions
	// AckMode selects when the primary acknowledges commits relative to
	// replication progress.
	AckMode = engine.AckMode
	// ReplicaStats is a snapshot of a replica's shipping and apply progress.
	ReplicaStats = engine.ReplicaStats
)

// Replication acknowledgment modes.
const (
	// AckAsync acknowledges commits after the primary's local fsync.
	AckAsync = engine.AckAsync
	// AckSemiSync withholds commit acknowledgments until every attached
	// semi-sync replica has durably mirrored the commit's log records.
	AckSemiSync = engine.AckSemiSync
)

// OpenReplica attaches a read-only replica to a primary running under
// DurabilityWAL. The replica bootstraps from the newest checkpoint blob,
// tails the primary's live WAL segments, and applies them — base relations
// and secondary indexes — at a snapshot watermark its Query and Execute
// methods read from.
func OpenReplica(primary *Database, opts ReplicaOptions) (*Replica, error) {
	return engine.OpenReplica(primary, opts)
}

// Re-exported network front-end types: a NodeServer exposes a primary or
// replica on the wire protocol (length-prefixed CRC-framed binary frames with
// piggybacked load hints), a Client is one pipelined connection to it, and a
// Router fans a client's traffic across a primary and its replicas.
type (
	// NodeServer serves one engine node over the wire protocol.
	NodeServer = server.Server
	// ServerOptions tune a NodeServer (pipelining window, hint refresh).
	ServerOptions = server.Options
	// Client is one pipelined client connection to a NodeServer.
	Client = server.Conn
	// Router is a lag- and load-aware client-side request router.
	Router = server.Router
	// RouterOptions tune a Router (policy, freshness bound, retries).
	RouterOptions = server.RouterOptions
	// RoutingPolicy selects round-robin or hint-aware routing.
	RoutingPolicy = server.Policy
	// LoadHints is the load signal piggybacked on every server response.
	LoadHints = server.LoadHints
)

// Routing policies and the stale-read error.
const (
	// PolicyRoundRobin rotates reads blindly over every endpoint.
	PolicyRoundRobin = server.PolicyRoundRobin
	// PolicyAware steers by piggybacked queue and lag hints.
	PolicyAware = server.PolicyAware
)

// ErrStale reports a read whose freshness bound the serving replica could not
// meet; the Router retries it on the primary.
var ErrStale = server.ErrStale

// ServePrimary exposes a primary database on the wire protocol.
func ServePrimary(db *Database, opts ServerOptions) *NodeServer {
	return server.NewPrimary(db, opts)
}

// ServeReplica exposes a read-only replica on the wire protocol.
func ServeReplica(rep *Replica, opts ServerOptions) *NodeServer {
	return server.NewReplica(rep, opts)
}

// DialNode connects to a NodeServer.
func DialNode(addr string) (*Client, error) { return server.Dial(addr) }

// NewRouter dials a set of NodeServer endpoints (exactly one primary) and
// routes writes to the primary and reads across replicas per the policy.
func NewRouter(endpoints []string, opts RouterOptions) (*Router, error) {
	return server.NewRouter(endpoints, opts)
}

// Column types.
const (
	Int64   = rel.Int64
	Float64 = rel.Float64
	String  = rel.String
	Bool    = rel.Bool
	Bytes   = rel.Bytes
)

// Scheduler modes and admission policies.
const (
	// DispatchQueued routes requests through each executor's bounded request
	// queue (the default).
	DispatchQueued = engine.DispatchQueued
	// DispatchDirect runs each request on its own goroutine contending for
	// the executor core (the pre-scheduler behaviour, kept for ablations).
	DispatchDirect = engine.DispatchDirect
	// AdmissionBlock blocks callers while the target queue is full.
	AdmissionBlock = engine.AdmissionBlock
	// AdmissionFail rejects requests with ErrOverloaded while the target
	// queue is full.
	AdmissionFail = engine.AdmissionFail
	// DurabilityModeled charges the modeled log-write cost instead of doing
	// real IO (the default; an ablation — nothing is recoverable).
	DurabilityModeled = engine.DurabilityModeled
	// DurabilityWAL makes every acknowledged commit durable on a real
	// per-container write-ahead log; Database.Recover replays it.
	DurabilityWAL = engine.DurabilityWAL
)

// Errors.
var (
	// ErrConflict reports a serialization conflict abort; clients may retry.
	ErrConflict = engine.ErrConflict
	// ErrOverloaded reports a root transaction rejected by fail-fast
	// admission control because the target executor's queue was full.
	ErrOverloaded = engine.ErrOverloaded
	// ErrUserAbort reports an application-level abort (see Abortf).
	ErrUserAbort = core.ErrUserAbort
	// ErrDangerousStructure reports a violation of the intra-transaction
	// safety condition (§2.2.4).
	ErrDangerousStructure = core.ErrDangerousStructure
	// ErrReplicaRead reports a write attempted on a read-only replica.
	ErrReplicaRead = engine.ErrReplicaRead
)

// NewReactorType creates an empty reactor type.
func NewReactorType(name string) *ReactorType { return core.NewType(name) }

// NewDatabaseDef creates an empty database declaration.
func NewDatabaseDef() *DatabaseDef { return core.NewDatabaseDef() }

// NewSchema builds a relation schema.
func NewSchema(name string, columns []Column, keyCols ...string) (*Schema, error) {
	return rel.NewSchema(name, columns, keyCols...)
}

// MustSchema is NewSchema that panics on error, for static declarations.
func MustSchema(name string, columns []Column, keyCols ...string) *Schema {
	return rel.MustSchema(name, columns, keyCols...)
}

// Abortf builds an application-level abort error; returning it from a
// procedure rolls back the root transaction.
func Abortf(format string, args ...any) error { return core.Abortf(format, args...) }

// IsUserAbort reports whether err is an application-level abort.
func IsUserAbort(err error) bool { return core.IsUserAbort(err) }

// WaitAll waits for a set of futures and returns the first error.
func WaitAll(futures ...*Future) error { return core.WaitAll(futures...) }

// Open deploys a reactor database under the given configuration.
func Open(def *DatabaseDef, cfg Config) (*Database, error) { return engine.Open(def, cfg) }

// MustOpen is Open that panics on error.
func MustOpen(def *DatabaseDef, cfg Config) *Database { return engine.MustOpen(def, cfg) }

// SharedEverythingWithoutAffinity returns the S1 deployment of §3.3.
func SharedEverythingWithoutAffinity(executors int) Config {
	return engine.NewSharedEverythingWithoutAffinity(executors)
}

// SharedEverythingWithAffinity returns the S2 deployment of §3.3.
func SharedEverythingWithAffinity(executors int) Config {
	return engine.NewSharedEverythingWithAffinity(executors)
}

// SharedNothing returns the S3 deployment of §3.3.
func SharedNothing(containers int) Config { return engine.NewSharedNothing(containers) }

// DefaultExperimentCosts returns the virtual-core cost parameters used by the
// experiment drivers (see DESIGN.md §5).
func DefaultExperimentCosts() Costs { return vclock.DefaultExperimentCosts() }

// DefaultAffinity returns the executor index the hash-defaulted affinity
// assigns to a reactor (the mapping used when Config.Affinity is nil), for
// building skew-aware workloads.
func DefaultAffinity(reactor string, executors int) int {
	return engine.DefaultAffinity(reactor, executors)
}

GO ?= go

.PHONY: all fmt fmt-check vet build test race race-sched crash crash-ckpt crash-repl crash-failover fuzz bench bench-wal bench-2pc bench-ckpt bench-sched bench-sched-check bench-query bench-query-check bench-storage bench-storage-check bench-repl bench-repl-check bench-server bench-server-check

all: fmt-check vet build test

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/occ/... ./internal/wal/...

# Steal/admission stress under the race detector, run twice: the steal
# correctness stress (affine tasks never stolen, serializable histories under
# stealing), the admission-token leak regressions (abort, overload, panic,
# yield) and the adaptive-depth controller tests.
race-sched:
	$(GO) test -race -count=2 -run 'Steal|Admission|Adaptive' ./internal/engine/

# Crash-injection matrix: kill the database at every WAL append/fsync
# boundary of a multi-container commit (including the checkpoint-write,
# truncation and checkpoint-prune boundaries of TestCrashMatrixCheckpoint),
# recover, assert all-or-nothing.
crash:
	$(GO) test -run Crash -count=2 ./internal/engine/... ./internal/wal/...

# Checkpoint crash matrix under the race detector, with the truncation-safety
# property test riding along: torn checkpoint writes, crashes between
# checkpoint and truncation, crashes mid-truncation — recovery must equal the
# acknowledged state through a double restart.
crash-ckpt:
	$(GO) test -race -run 'CrashMatrixCheckpoint|TruncationSafety' -count=1 ./internal/engine/...

# Replication crash matrix: kill the primary or the replica at every shipping
# IO boundary — mirror appends and fsyncs (including the one releasing a
# semi-sync ack), mirror segment handoff, checkpoint-blob transfer — then
# promote the surviving mirror bytes and assert a consistent committed prefix
# with atomic 2PC groups, through a double restart. The primary-kill matrix
# additionally proves semi-sync never acknowledged a commit the promoted
# replica lost.
crash-repl:
	$(GO) test -race -run CrashRepl -count=1 ./internal/engine/...

# Supervised-failover crash matrix under the race detector: kill the primary
# at every commit/ship boundary, let the supervisor detect + fence + promote
# the freshest semi-sync mirror + re-point the survivor, then double-restart
# the promoted node. The black-box history checker rides along: no
# acknowledged commit lost, no committed read un-happens, and the fenced
# zombie's writes are rejected at both the WAL and wire layers (proven by the
# fence-ablation arm, which shows the lost-update the fence prevents).
crash-failover:
	$(GO) test -race -run CrashFailover -count=1 ./internal/engine/...

# Fuzz smoke for WAL record and checkpoint decoding (corrupt frames must be
# ErrCorrupt — forcing checkpoint fallback to full replay — never a panic or
# a silent mis-decode).
fuzz:
	$(GO) test -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/wal
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=10s ./internal/wal

bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Smoke-run the durability sweep (modeled vs WAL, window x batch) in its
# quick configuration.
bench-wal:
	$(GO) run ./cmd/reactdb-bench -experiment durability

# Smoke-run the 2PC durability sweep (eager vs group-committed participant
# logging) in its quick configuration.
bench-2pc:
	$(GO) run ./cmd/reactdb-bench -experiment twopc

# Smoke-run the checkpoint sweep (log growth + recovery time vs checkpoint
# interval) in its quick configuration.
bench-ckpt:
	$(GO) run ./cmd/reactdb-bench -experiment checkpoint

# Run the scheduler sweep (load skew x work stealing x static/adaptive depth)
# and append a dated entry to the bench history.
bench-sched:
	$(GO) run ./cmd/reactdb-bench -experiment scheduler -json-history BENCH_sched.json

# Gate on the scheduler bench history: fail if any sweep point's mean
# per-transaction cost regressed >35% against the previous entry (throughput
# sweeps are noisier than the storage micro-bench, hence the wider band).
bench-sched-check:
	$(GO) run ./cmd/reactdb-bench -compare BENCH_sched.json -max-regression 0.35

# Run the declarative-query sweep (join fan-out x secondary index x greedy vs
# naive planning) and append a dated entry to the bench history.
bench-query:
	$(GO) run ./cmd/reactdb-bench -experiment query -json-history BENCH_query.json

# Gate on the query bench history: fail if any sweep point's per-query latency
# regressed >35% against the previous entry.
bench-query-check:
	$(GO) run ./cmd/reactdb-bench -compare BENCH_query.json -max-regression 0.35

# Run the storage hot-path sweep (point read / scan / RMW, ns + allocs +
# bytes per logical row op) and append a dated entry to the bench history.
bench-storage:
	$(GO) run ./cmd/reactdb-bench -experiment storage -json-history BENCH_storage.json

# Gate on the storage bench history: fail if the newest entry regressed >20%
# in ns/op or allocs/op against the previous one.
bench-storage-check:
	$(GO) run ./cmd/reactdb-bench -compare BENCH_storage.json

# Run the replication sweep (ack mode x replica count: commit latency
# quantiles, freshness lag, catch-up time) and append a dated entry to the
# bench history.
bench-repl:
	$(GO) run ./cmd/reactdb-bench -experiment replication -json-history BENCH_repl.json

# Gate on the replication bench history: fail if any sweep point's mean
# per-transaction wall time regressed >50% against the previous entry. Only
# the throughput-derived mean is gated — commit quantiles and catch-up ride
# the replica's poll timing and stay trend-only — and the band is the widest
# of the gated sweeps because semi-sync points still breathe with scheduling.
bench-repl-check:
	$(GO) run ./cmd/reactdb-bench -compare BENCH_repl.json -max-regression 0.50

# Run the network front-end sweep (routing policy x key skew x client count
# over a primary + fresh replica + lagging replica fleet) and append a dated
# entry to the bench history.
bench-server:
	$(GO) run ./cmd/reactdb-bench -experiment server -json-history BENCH_server.json

# Gate on the server bench history: fail if any sweep point's mean per-op
# latency regressed >60% against the previous dated entry. The band is the
# widest of the gates — end-to-end latency over loopback TCP rides kernel
# scheduling and replica poll timing. Entries from the trend-only era carry
# ns_per_op 0 and re-baseline instead of failing.
bench-server-check:
	$(GO) run ./cmd/reactdb-bench -compare BENCH_server.json -max-regression 0.60

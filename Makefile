GO ?= go

.PHONY: all fmt fmt-check vet build test race race-sched crash crash-ckpt fuzz bench bench-wal bench-2pc bench-ckpt bench-sched bench-query bench-storage bench-storage-check

all: fmt-check vet build test

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/occ/... ./internal/wal/...

# Steal/admission stress under the race detector, run twice: the steal
# correctness stress (affine tasks never stolen, serializable histories under
# stealing), the admission-token leak regressions (abort, overload, panic,
# yield) and the adaptive-depth controller tests.
race-sched:
	$(GO) test -race -count=2 -run 'Steal|Admission|Adaptive' ./internal/engine/

# Crash-injection matrix: kill the database at every WAL append/fsync
# boundary of a multi-container commit (including the checkpoint-write,
# truncation and checkpoint-prune boundaries of TestCrashMatrixCheckpoint),
# recover, assert all-or-nothing.
crash:
	$(GO) test -run Crash -count=2 ./internal/engine/... ./internal/wal/...

# Checkpoint crash matrix under the race detector, with the truncation-safety
# property test riding along: torn checkpoint writes, crashes between
# checkpoint and truncation, crashes mid-truncation — recovery must equal the
# acknowledged state through a double restart.
crash-ckpt:
	$(GO) test -race -run 'CrashMatrixCheckpoint|TruncationSafety' -count=1 ./internal/engine/...

# Fuzz smoke for WAL record and checkpoint decoding (corrupt frames must be
# ErrCorrupt — forcing checkpoint fallback to full replay — never a panic or
# a silent mis-decode).
fuzz:
	$(GO) test -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/wal
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=10s ./internal/wal

bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Smoke-run the durability sweep (modeled vs WAL, window x batch) in its
# quick configuration.
bench-wal:
	$(GO) run ./cmd/reactdb-bench -experiment durability

# Smoke-run the 2PC durability sweep (eager vs group-committed participant
# logging) in its quick configuration.
bench-2pc:
	$(GO) run ./cmd/reactdb-bench -experiment twopc

# Smoke-run the checkpoint sweep (log growth + recovery time vs checkpoint
# interval) in its quick configuration.
bench-ckpt:
	$(GO) run ./cmd/reactdb-bench -experiment checkpoint

# Run the scheduler sweep (load skew x work stealing x static/adaptive depth)
# and record the machine-readable results in the bench history.
bench-sched:
	$(GO) run ./cmd/reactdb-bench -experiment scheduler -json BENCH_sched.json

# Run the declarative-query sweep (join fan-out x secondary index x greedy vs
# naive planning) and record the machine-readable results in the bench
# history.
bench-query:
	$(GO) run ./cmd/reactdb-bench -experiment query -json BENCH_query.json

# Run the storage hot-path sweep (point read / scan / RMW, ns + allocs +
# bytes per logical row op) and append a dated entry to the bench history.
bench-storage:
	$(GO) run ./cmd/reactdb-bench -experiment storage -json-history BENCH_storage.json

# Gate on the storage bench history: fail if the newest entry regressed >20%
# in ns/op or allocs/op against the previous one.
bench-storage-check:
	$(GO) run ./cmd/reactdb-bench -compare BENCH_storage.json

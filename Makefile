GO ?= go

.PHONY: all fmt fmt-check vet build test race bench bench-wal

all: fmt-check vet build test

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/occ/... ./internal/wal/...

bench:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Smoke-run the durability sweep (modeled vs WAL, window x batch) in its
# quick configuration.
bench-wal:
	$(GO) run ./cmd/reactdb-bench -experiment durability

// Benchmarks: one per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design decisions listed in DESIGN.md §6.
//
// Each benchmark drives the workload/deployment combination of its figure with
// a single client and reports per-transaction latency (ns/op); the full
// multi-worker sweeps that regenerate the paper's series are produced by
// cmd/reactdb-bench (package internal/experiments), which the benchmarks here
// deliberately mirror at the per-transaction level so `go test -bench` stays
// tractable.
package reactdb_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"reactdb"
	"reactdb/internal/core"
	"reactdb/internal/costmodel"
	"reactdb/internal/engine"
	"reactdb/internal/experiments"
	"reactdb/internal/randutil"
	"reactdb/internal/workload/exchange"
	"reactdb/internal/workload/smallbank"
	"reactdb/internal/workload/tpcc"
	"reactdb/internal/workload/ycsb"
)

// commCosts mirror the latency-control experiments (§4.2).
func commCosts() reactdb.Costs {
	return reactdb.Costs{Send: 40 * time.Microsecond, Receive: 80 * time.Microsecond}
}

// mustExecute fails the benchmark on unexpected errors but tolerates aborts
// that are part of the workload (conflicts, user aborts).
func mustExecute(b *testing.B, db *reactdb.Database, reactor, proc string, args ...any) {
	b.Helper()
	_, err := db.Execute(reactor, proc, args...)
	if err != nil && !errors.Is(err, engine.ErrConflict) && !core.IsUserAbort(err) {
		b.Fatalf("%s.%s: %v", reactor, proc, err)
	}
}

// --- Smallbank (Figures 5, 6, 11, 12) ----------------------------------------

func smallbankDB(b *testing.B, costs reactdb.Costs) *reactdb.Database {
	b.Helper()
	const containers, perContainer = 7, 10
	cfg := engine.NewSharedNothing(containers)
	cfg.Placement = smallbank.RangePlacement(perContainer)
	cfg.Costs = costs
	db, err := engine.Open(smallbank.NewDefinition(containers*perContainer), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := smallbank.Load(db, containers*perContainer, 1e9, 1e9); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	return db
}

func remoteDests(size, perContainer int) []string {
	dsts := make([]string, 0, size)
	for i := 0; i < size; i++ {
		dsts = append(dsts, smallbank.ReactorName((1+i%6)*perContainer+i))
	}
	return dsts
}

// BenchmarkFig5MultiTransfer measures the multi-transfer latency of every
// program formulation at transaction size 7 (Figure 5's right-most points).
func BenchmarkFig5MultiTransfer(b *testing.B) {
	for _, f := range smallbank.Formulations() {
		b.Run(string(f), func(b *testing.B) {
			db := smallbankDB(b, commCosts())
			src := smallbank.ReactorName(0)
			dsts := remoteDests(7, 10)
			proc, sequential := smallbank.MultiTransferProcedure(f)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if proc == smallbank.ProcMultiTransferSync {
					mustExecute(b, db, src, proc, src, dsts, 1.0, sequential)
				} else {
					mustExecute(b, db, src, proc, src, dsts, 1.0)
				}
			}
		})
	}
}

// BenchmarkFig6CostModel measures evaluation of the Figure 3 cost equation
// used for the Figure 6 predictions.
func BenchmarkFig6CostModel(b *testing.B) {
	params := costmodel.Params{Cs: 40 * time.Microsecond, Cr: 80 * time.Microsecond}
	root := &costmodel.SubTxn{Container: 0}
	for i := 0; i < 7; i++ {
		root.Async = append(root.Async, costmodel.Leaf(i+1, 50*time.Microsecond))
	}
	root.SyncOvp = []*costmodel.SubTxn{costmodel.Leaf(0, 25*time.Microsecond)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if costmodel.Predict(root, params).Total() <= 0 {
			b.Fatal("prediction should be positive")
		}
	}
}

// BenchmarkFig11LocalVsRemote measures opt multi-transfers against local and
// remote destinations (Appendix B.1).
func BenchmarkFig11LocalVsRemote(b *testing.B) {
	dests := map[string][]string{
		"remote": remoteDests(7, 10),
		"local":  {smallbank.ReactorName(1), smallbank.ReactorName(2), smallbank.ReactorName(3), smallbank.ReactorName(4), smallbank.ReactorName(5), smallbank.ReactorName(6), smallbank.ReactorName(7)},
	}
	for name, dsts := range dests {
		b.Run(name, func(b *testing.B) {
			db := smallbankDB(b, commCosts())
			src := smallbank.ReactorName(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecute(b, db, src, smallbank.ProcMultiTransferOpt, src, dsts, 1.0)
			}
		})
	}
}

// BenchmarkFig12ExecutorsSpanned measures fully-sync multi-transfers whose
// destinations span 1 vs. 7 executors (Appendix B.2 end points).
func BenchmarkFig12ExecutorsSpanned(b *testing.B) {
	spans := map[string][]string{
		"spanned=1": {smallbank.ReactorName(1), smallbank.ReactorName(2), smallbank.ReactorName(3), smallbank.ReactorName(4), smallbank.ReactorName(5), smallbank.ReactorName(6), smallbank.ReactorName(7)},
		"spanned=7": remoteDests(7, 10),
	}
	for name, dsts := range spans {
		b.Run(name, func(b *testing.B) {
			db := smallbankDB(b, commCosts())
			src := smallbank.ReactorName(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecute(b, db, src, smallbank.ProcMultiTransferSync, src, dsts, 1.0, true)
			}
		})
	}
}

// --- TPC-C (Figures 7-10, 15-18, Table 1, affinity, overhead) ----------------

func tpccDB(b *testing.B, cfg engine.Config, scale int) (*reactdb.Database, tpcc.Params) {
	b.Helper()
	params := tpcc.Params{Warehouses: scale, CustomersPerDistrict: 60, Items: 200}
	cfg.Placement = tpcc.Placement
	cfg.Affinity = func(reactor string) int {
		if w := tpcc.WarehouseID(reactor); w > 0 {
			return w - 1
		}
		return 0
	}
	cfg.Costs = reactdb.DefaultExperimentCosts()
	db, err := engine.Open(tpcc.NewDefinition(params), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := tpcc.Load(db, params); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	return db, params
}

func tpccDeployments() map[string]func(int) engine.Config {
	return map[string]func(int) engine.Config{
		"shared-everything-without-affinity": engine.NewSharedEverythingWithoutAffinity,
		"shared-everything-with-affinity":    engine.NewSharedEverythingWithAffinity,
		"shared-nothing-async":               engine.NewSharedNothing,
	}
}

func runTPCCBench(b *testing.B, cfg engine.Config, scale int, gcfg func(tpcc.Params) tpcc.GeneratorConfig) {
	b.Helper()
	db, params := tpccDB(b, cfg, scale)
	g := tpcc.NewGenerator(gcfg(params))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := g.Next()
		mustExecute(b, db, req.Reactor, req.Procedure, req.Args...)
	}
}

// BenchmarkFig7TPCCThroughput drives the standard TPC-C mix at scale factor 4
// under the three deployments of §4.3.1 (throughput = 1/ns-per-op).
func BenchmarkFig7TPCCThroughput(b *testing.B) {
	for name, mk := range tpccDeployments() {
		b.Run(name, func(b *testing.B) {
			runTPCCBench(b, mk(4), 4, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.StandardMix(),
					RemoteItemProbability: 0.01, RemotePaymentProbability: 0.15, Seed: 1}
			})
		})
	}
}

// BenchmarkFig8TPCCLatency is the latency view of the same configuration
// (ns/op is the per-transaction latency the paper's Figure 8 plots).
func BenchmarkFig8TPCCLatency(b *testing.B) {
	for name, mk := range tpccDeployments() {
		b.Run(name, func(b *testing.B) {
			runTPCCBench(b, mk(4), 4, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 2, Mix: tpcc.StandardMix(),
					RemoteItemProbability: 0.01, RemotePaymentProbability: 0.15, Seed: 2}
			})
		})
	}
}

// BenchmarkFig9NewOrderDelayThroughput drives 100% new-order transactions with
// the 300-400µs stock replenishment delay and 100% remote items (§4.3.2).
func BenchmarkFig9NewOrderDelayThroughput(b *testing.B) {
	for _, name := range []string{"shared-nothing-async", "shared-everything-with-affinity"} {
		mk := tpccDeployments()[name]
		b.Run(name, func(b *testing.B) {
			runTPCCBench(b, mk(4), 4, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.NewOrderOnlyMix(),
					RemoteItemProbability: 1.0, NewOrderDelayMinMicros: 300, NewOrderDelayMicros: 400, Seed: 3}
			})
		})
	}
}

// BenchmarkFig10NewOrderDelayLatency is the latency view of Figure 9's
// configuration at a different home warehouse.
func BenchmarkFig10NewOrderDelayLatency(b *testing.B) {
	for _, name := range []string{"shared-nothing-async", "shared-everything-with-affinity"} {
		mk := tpccDeployments()[name]
		b.Run(name, func(b *testing.B) {
			runTPCCBench(b, mk(4), 4, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 3, Mix: tpcc.NewOrderOnlyMix(),
					RemoteItemProbability: 1.0, NewOrderDelayMinMicros: 300, NewOrderDelayMicros: 400, Seed: 4}
			})
		})
	}
}

// BenchmarkTab1NewOrder measures the Table 1 configurations: 100% new-order at
// 1% and 100% cross-reactor access probability on shared-nothing.
func BenchmarkTab1NewOrder(b *testing.B) {
	for _, cross := range []float64{0.01, 1.0} {
		b.Run(fmt.Sprintf("cross=%.0f%%", cross*100), func(b *testing.B) {
			runTPCCBench(b, engine.NewSharedNothing(4), 4, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.NewOrderOnlyMix(),
					RemoteItemProbability: cross, Seed: 5}
			})
		})
	}
}

// BenchmarkFig15CrossReactorThroughput measures 100% new-order under 0% and
// 100% cross-reactor accesses for the async and sync shared-nothing program
// formulations (Appendix E).
func BenchmarkFig15CrossReactorThroughput(b *testing.B) {
	for _, sync := range []bool{false, true} {
		name := "shared-nothing-async"
		if sync {
			name = "shared-nothing-sync"
		}
		for _, cross := range []float64{0, 1.0} {
			b.Run(fmt.Sprintf("%s/cross=%.0f%%", name, cross*100), func(b *testing.B) {
				runTPCCBench(b, engine.NewSharedNothing(4), 4, func(p tpcc.Params) tpcc.GeneratorConfig {
					return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.NewOrderOnlyMix(),
						RemoteItemProbability: cross, SyncStockUpdates: sync, Seed: 6}
				})
			})
		}
	}
}

// BenchmarkFig16CrossReactorLatency is the latency view of Appendix E for the
// shared-everything deployments.
func BenchmarkFig16CrossReactorLatency(b *testing.B) {
	for _, name := range []string{"shared-everything-with-affinity", "shared-everything-without-affinity"} {
		mk := tpccDeployments()[name]
		for _, cross := range []float64{0, 1.0} {
			b.Run(fmt.Sprintf("%s/cross=%.0f%%", name, cross*100), func(b *testing.B) {
				runTPCCBench(b, mk(4), 4, func(p tpcc.Params) tpcc.GeneratorConfig {
					return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.NewOrderOnlyMix(),
						RemoteItemProbability: cross, Seed: 7}
				})
			})
		}
	}
}

// BenchmarkFig17ScaleUpThroughput measures the standard mix at scale factors 1
// and 4 under the shared-nothing deployment (Appendix F.1).
func BenchmarkFig17ScaleUpThroughput(b *testing.B) {
	for _, scale := range []int{1, 4} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			runTPCCBench(b, engine.NewSharedNothing(scale), scale, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.StandardMix(),
					RemoteItemProbability: 0.01, RemotePaymentProbability: 0.15, Seed: 8}
			})
		})
	}
}

// BenchmarkFig18ScaleUpLatency measures the same configurations under the
// shared-everything-with-affinity deployment.
func BenchmarkFig18ScaleUpLatency(b *testing.B) {
	for _, scale := range []int{1, 4} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			runTPCCBench(b, engine.NewSharedEverythingWithAffinity(scale), scale, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.StandardMix(),
					RemoteItemProbability: 0.01, RemotePaymentProbability: 0.15, Seed: 9}
			})
		})
	}
}

// BenchmarkAffinityEffect measures the Appendix F.2 effect: TPC-C scale factor
// 1 on shared-everything-without-affinity with 1 vs. 8 executors.
func BenchmarkAffinityEffect(b *testing.B) {
	for _, executors := range []int{1, 8} {
		b.Run(fmt.Sprintf("executors=%d", executors), func(b *testing.B) {
			runTPCCBench(b, engine.NewSharedEverythingWithoutAffinity(executors), 1, func(p tpcc.Params) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{Params: p, HomeWarehouse: 1, Mix: tpcc.StandardMix(),
					RemoteItemProbability: 0.01, RemotePaymentProbability: 0.15, Seed: 10}
			})
		})
	}
}

// BenchmarkOverheadEmptyTransaction measures the containerization overhead of
// Appendix F.3: empty transactions with concurrency control disabled.
func BenchmarkOverheadEmptyTransaction(b *testing.B) {
	typ := reactdb.NewReactorType("Empty").
		AddRelation(reactdb.MustSchema("noop", []reactdb.Column{{Name: "id", Type: reactdb.Int64}}, "id")).
		AddProcedure("empty", func(ctx reactdb.Context, args reactdb.Args) (any, error) { return nil, nil })
	def := reactdb.NewDatabaseDef().MustAddType(typ)
	def.MustDeclareReactors("Empty", "e0", "e1")
	cfg := reactdb.SharedNothing(2)
	cfg.DisableCC = true
	cfg.Costs = reactdb.DefaultExperimentCosts()
	db := reactdb.MustOpen(def, cfg)
	b.Cleanup(db.Close)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecute(b, db, "e1", "empty")
	}
}

// --- YCSB (Figures 13/14) -----------------------------------------------------

// BenchmarkFig13YCSBMultiUpdate measures multi_update latency at low and high
// skew (Appendix C): higher skew makes more sub-transactions local and lowers
// single-client latency.
func BenchmarkFig13YCSBMultiUpdate(b *testing.B) {
	const containers, perContainer = 4, 250
	for _, skew := range []float64{0.01, 0.99, 5} {
		b.Run(fmt.Sprintf("zipf=%.2f", skew), func(b *testing.B) {
			cfg := engine.NewSharedNothing(containers)
			cfg.Placement = ycsb.RangePlacement(perContainer)
			cfg.Costs = commCosts()
			db, err := engine.Open(ycsb.NewDefinition(containers*perContainer), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := ycsb.Load(db, containers*perContainer); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			rng := randutil.New(1)
			z := randutil.NewZipfian(containers*perContainer, skew)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seen := map[int]bool{}
				var keys []string
				for len(keys) < ycsb.KeysPerMultiUpdate {
					k := z.Next(rng)
					if seen[k] {
						break
					}
					seen[k] = true
					keys = append(keys, ycsb.ReactorName(k))
				}
				home := keys[len(keys)-1]
				mustExecute(b, db, home, ycsb.ProcMultiUpdate, keys)
			}
		})
	}
}

// BenchmarkFig14YCSBReadModifyWrite measures the single-key building block of
// the Figure 14 throughput curves.
func BenchmarkFig14YCSBReadModifyWrite(b *testing.B) {
	cfg := engine.NewSharedNothing(2)
	cfg.Placement = ycsb.RangePlacement(100)
	db, err := engine.Open(ycsb.NewDefinition(200), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := ycsb.Load(db, 200); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustExecute(b, db, ycsb.ReactorName(i%200), ycsb.ProcReadModifyWrite)
	}
}

// --- Exchange (Figure 19) ------------------------------------------------------

// BenchmarkFig19AuthPay measures auth_pay under the three execution strategies
// of Appendix G at a moderate sim_risk load.
func BenchmarkFig19AuthPay(b *testing.B) {
	params := exchange.DefaultParams()
	params.Providers = 7
	params.OrdersPerProvider = 100
	for _, strategy := range exchange.Strategies() {
		b.Run(string(strategy), func(b *testing.B) {
			containers := params.Providers + 1
			if strategy == exchange.Sequential {
				containers = 1
			}
			cfg := engine.NewSharedNothing(containers)
			cfg.Placement = exchange.Placement(containers)
			cfg.Costs = commCosts()
			db, err := engine.Open(exchange.NewDefinition(params), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := exchange.Load(db, params); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			proc := exchange.ProcedureFor(strategy)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecute(b, db, exchange.ExchangeReactor, proc,
					exchange.ProviderName(i%params.Providers), int64(i), 1.0, int64(i+1), int64(2000), int64(0))
			}
		})
	}
}

// --- Scheduler: request queue + group commit ----------------------------------

// BenchmarkSchedulerQueuedVsDirect compares the executor request-queue
// scheduler with batched group commit against direct goroutine dispatch under
// concurrent clients (ns/op is inversely proportional to sustained
// throughput). Both sides pay the same modeled per-transaction processing and
// log-write costs; direct dispatch pays the log write on the executor core
// for every commit, while the queued scheduler amortizes it across each
// group-commit batch.
func BenchmarkSchedulerQueuedVsDirect(b *testing.B) {
	const customers = 16
	configs := map[string]func() reactdb.Config{
		"direct": func() reactdb.Config {
			cfg := reactdb.SharedEverythingWithAffinity(2)
			cfg.Dispatch = reactdb.DispatchDirect
			return cfg
		},
		"queued-group-commit": func() reactdb.Config {
			cfg := reactdb.SharedEverythingWithAffinity(2)
			cfg.GroupCommit = reactdb.GroupCommitConfig{Enabled: true, MaxBatch: 32, Window: 300 * time.Microsecond}
			return cfg
		},
	}
	for name, mk := range configs {
		b.Run(name, func(b *testing.B) {
			cfg := mk()
			cfg.Costs = reactdb.Costs{Processing: 20 * time.Microsecond, LogWrite: 400 * time.Microsecond}
			db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			// Spread client goroutines across distinct customers so the
			// comparison measures scheduling and commit costs, not OCC
			// conflicts. SetParallelism keeps >= 8 concurrent clients even on
			// small hosts.
			if gomaxprocs := runtime.GOMAXPROCS(0); gomaxprocs < 8 {
				b.SetParallelism((8 + gomaxprocs - 1) / gomaxprocs)
			}
			var clientSeq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				client := int(clientSeq.Add(1))
				reactor := smallbank.ReactorName(client % customers)
				for pb.Next() {
					mustExecute(b, db, reactor, smallbank.ProcDepositChecking, 1.0)
				}
			})
			if qs := db.QueueStats(); len(qs) > 0 {
				var wait time.Duration
				var n int64
				for _, s := range qs {
					n += s.Wait.Count
					wait += time.Duration(s.Wait.Mean() * float64(s.Wait.Count))
				}
				if n > 0 {
					b.ReportMetric(float64(wait.Nanoseconds())/float64(n), "queue-wait-ns")
				}
			}
		})
	}
}

// BenchmarkSchedulerSkewedSteal measures the work-stealing scheduler against
// the steal-off baseline under Zipf-skewed and uniform read-only load
// (smallbank balance checks with a modeled per-transaction processing cost).
// Under skew the Zipf head routes to a single executor and ns/op with
// stealing enabled must be at least 1.3x better (the acceptance bar, pinned
// by TestStealImprovesSkewedThroughput); under uniform load stealing must be
// within the +-5% noise band of the baseline. Steals/op and the stolen task
// counts are reported as metrics.
func BenchmarkSchedulerSkewedSteal(b *testing.B) {
	const executors, customers = 4, 64
	loads := []struct {
		name      string
		theta     float64
		clustered bool
	}{
		{"zipf", 1.2, true},
		{"uniform", 0, false},
	}
	for _, load := range loads {
		for _, steal := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/steal=%v", load.name, steal), func(b *testing.B) {
				cfg := reactdb.SharedEverythingWithAffinity(executors)
				cfg.Steal = reactdb.StealConfig{Enabled: steal}
				cfg.QueueDepth = 128
				cfg.Costs = reactdb.Costs{Processing: 50 * time.Microsecond, AffinityMiss: 10 * time.Microsecond}
				db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
					b.Fatal(err)
				}
				b.Cleanup(db.Close)
				ranked := experiments.RankedCustomers(customers, executors, load.clustered)
				zipf := randutil.NewZipfian(customers, load.theta)
				if gomaxprocs := runtime.GOMAXPROCS(0); gomaxprocs < 16 {
					b.SetParallelism((16 + gomaxprocs - 1) / gomaxprocs)
				}
				var clientSeq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := randutil.New(clientSeq.Add(1))
					for pb.Next() {
						mustExecute(b, db, ranked[zipf.Next(rng)], smallbank.ProcBalance)
					}
				})
				var steals, stolen int64
				for _, qs := range db.QueueStats() {
					steals += qs.Steals
					stolen += qs.Stolen
				}
				if b.N > 0 {
					b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
				}
				if !steal && steals+stolen != 0 {
					b.Fatalf("stealing disabled but %d steals / %d stolen recorded", steals, stolen)
				}
			})
		}
	}
}

// --- Ablations (DESIGN.md §6) --------------------------------------------------

// BenchmarkAblationInlining compares same-container sub-transaction inlining
// (the paper's §3.2.1 rule) against forcing every call through asynchronous
// dispatch.
func BenchmarkAblationInlining(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "inlined"
		if disable {
			name = "always-dispatch"
		}
		b.Run(name, func(b *testing.B) {
			cfg := engine.NewSharedEverythingWithAffinity(2)
			cfg.DisableSameContainerInlining = disable
			cfg.Costs = commCosts()
			db, err := engine.Open(smallbank.NewDefinition(8), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := smallbank.Load(db, 8, 1e9, 1e9); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			src := smallbank.ReactorName(0)
			dsts := []string{smallbank.ReactorName(3), smallbank.ReactorName(5)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecute(b, db, src, smallbank.ProcMultiTransferOpt, src, dsts, 1.0)
			}
		})
	}
}

// BenchmarkAblationActiveSet measures the overhead of the §2.2.4 safety check.
func BenchmarkAblationActiveSet(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "check-on"
		if disable {
			name = "check-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := engine.NewSharedNothing(4)
			cfg.DisableActiveSetCheck = disable
			cfg.Placement = smallbank.RangePlacement(2)
			db, err := engine.Open(smallbank.NewDefinition(8), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := smallbank.Load(db, 8, 1e9, 1e9); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			src := smallbank.ReactorName(0)
			dsts := []string{smallbank.ReactorName(3), smallbank.ReactorName(5), smallbank.ReactorName(7)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecute(b, db, src, smallbank.ProcMultiTransferOpt, src, dsts, 1.0)
			}
		})
	}
}

// BenchmarkAblationCooperativeMultitasking compares releasing the executor
// core while blocked on remote sub-transactions (§3.2.3) against holding it.
func BenchmarkAblationCooperativeMultitasking(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "cooperative"
		if disable {
			name = "blocking"
		}
		b.Run(name, func(b *testing.B) {
			cfg := engine.NewSharedNothing(4)
			cfg.DisableCooperativeMultitasking = disable
			cfg.Placement = tpcc.Placement
			cfg.Costs = reactdb.DefaultExperimentCosts()
			params := tpcc.Params{Warehouses: 4, CustomersPerDistrict: 30, Items: 100}
			db, err := engine.Open(tpcc.NewDefinition(params), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := tpcc.Load(db, params); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			g := tpcc.NewGenerator(tpcc.GeneratorConfig{Params: params, HomeWarehouse: 1,
				Mix: tpcc.NewOrderOnlyMix(), RemoteItemProbability: 1.0, Seed: 11})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := g.NewOrder()
				mustExecute(b, db, req.Reactor, req.Procedure, req.Args...)
			}
		})
	}
}

// BenchmarkAblationSingle2PC compares single-container commits (which bypass
// two-phase commit) against multi-container commits of the same logical work.
func BenchmarkAblationSingle2PC(b *testing.B) {
	deployments := map[string]engine.Config{
		"single-container-commit": engine.NewSharedEverythingWithAffinity(1),
		"two-phase-commit":        engine.NewSharedNothing(2),
	}
	for name, cfg := range deployments {
		b.Run(name, func(b *testing.B) {
			cfg.Placement = smallbank.RangePlacement(4)
			db, err := engine.Open(smallbank.NewDefinition(8), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := smallbank.Load(db, 8, 1e9, 1e9); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			src := smallbank.ReactorName(0)
			dst := []string{smallbank.ReactorName(5)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustExecute(b, db, src, smallbank.ProcMultiTransferOpt, src, dst, 1.0)
			}
		})
	}
}

package reactdb_test

import (
	"errors"
	"testing"

	"reactdb"
)

// bankDef builds a tiny two-reactor database through the public facade only.
func bankDef(t testing.TB) *reactdb.DatabaseDef {
	t.Helper()
	account := reactdb.NewReactorType("Account").
		AddRelation(reactdb.MustSchema("balance",
			[]reactdb.Column{{Name: "id", Type: reactdb.Int64}, {Name: "amount", Type: reactdb.Float64}}, "id")).
		AddProcedure("init", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
			return nil, ctx.Insert("balance", reactdb.Row{int64(0), args.Float64(0)})
		}).
		AddProcedure("balance", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
			row, err := ctx.Get("balance", int64(0))
			if err != nil || row == nil {
				return 0.0, err
			}
			return row.Float64(1), nil
		}).
		AddProcedure("deposit", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
			row, err := ctx.Get("balance", int64(0))
			if err != nil {
				return nil, err
			}
			if row == nil {
				return nil, reactdb.Abortf("account %s not initialized", ctx.Reactor())
			}
			return nil, ctx.Update("balance", reactdb.Row{int64(0), row.Float64(1) + args.Float64(0)})
		}).
		AddProcedure("transfer", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
			dst, amt := args.String(0), args.Float64(1)
			fut, err := ctx.Call(dst, "deposit", amt)
			if err != nil {
				return nil, err
			}
			if _, err := ctx.Call(ctx.Reactor(), "deposit", -amt); err != nil {
				return nil, err
			}
			return nil, reactdb.WaitAll(fut)
		})
	def := reactdb.NewDatabaseDef().MustAddType(account)
	def.MustDeclareReactors("Account", "alice", "bob")
	return def
}

func TestPublicAPIEndToEndAcrossDeployments(t *testing.T) {
	configs := map[string]reactdb.Config{
		"shared-nothing":          reactdb.SharedNothing(2),
		"shared-everything-aff":   reactdb.SharedEverythingWithAffinity(2),
		"shared-everything-round": reactdb.SharedEverythingWithoutAffinity(2),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			db, err := reactdb.Open(bankDef(t), cfg)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer db.Close()
			for _, who := range []string{"alice", "bob"} {
				if _, err := db.Execute(who, "init", 100.0); err != nil {
					t.Fatalf("init %s: %v", who, err)
				}
			}
			if _, err := db.Execute("alice", "transfer", "bob", 30.0); err != nil {
				t.Fatalf("transfer: %v", err)
			}
			v, err := db.Execute("bob", "balance")
			if err != nil || v.(float64) != 130 {
				t.Fatalf("bob balance = %v, %v", v, err)
			}
			v, err = db.Execute("alice", "balance")
			if err != nil || v.(float64) != 70 {
				t.Fatalf("alice balance = %v, %v", v, err)
			}
			// Application abort surfaces through the facade error helpers.
			_, err = db.Execute("missing-account", "balance")
			if err == nil {
				t.Fatalf("unknown reactor should fail")
			}
		})
	}
}

func TestPublicAPIErrorsAndCosts(t *testing.T) {
	if reactdb.DefaultExperimentCosts().Receive <= reactdb.DefaultExperimentCosts().Send {
		t.Fatalf("cost asymmetry lost in facade")
	}
	if !reactdb.IsUserAbort(reactdb.Abortf("x")) {
		t.Fatalf("Abortf/IsUserAbort broken through facade")
	}
	if errors.Is(reactdb.ErrConflict, reactdb.ErrUserAbort) {
		t.Fatalf("error identities must be distinct")
	}
	if _, err := reactdb.NewSchema("", nil); err == nil {
		t.Fatalf("NewSchema should validate")
	}
	if reactdb.MustSchema("t", []reactdb.Column{{Name: "k", Type: reactdb.Int64}}, "k") == nil {
		t.Fatalf("MustSchema returned nil")
	}
	cfg := reactdb.SharedNothing(3)
	if cfg.Containers != 3 || cfg.Strategy == "" {
		t.Fatalf("SharedNothing config wrong: %+v", cfg)
	}
	if _, err := reactdb.Open(reactdb.NewDatabaseDef(), cfg); err == nil {
		t.Fatalf("Open of empty definition should fail")
	}
}

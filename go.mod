module reactdb

go 1.22

// Exchange: the paper's running example (Figure 1) — a digital currency
// exchange authorizing payments against per-provider risk limits — written in
// the reactor model and executed under the three strategies of Appendix G.
package main

import (
	"fmt"
	"log"
	"time"

	"reactdb"
	"reactdb/internal/engine"
	"reactdb/internal/workload/exchange"
)

func main() {
	params := exchange.DefaultParams()
	params.Providers = 6
	params.OrdersPerProvider = 300

	cfg := engine.NewSharedNothing(params.Providers + 1)
	cfg.Placement = exchange.Placement(cfg.Containers)
	cfg.Costs = reactdb.Costs{Send: 40 * time.Microsecond, Receive: 80 * time.Microsecond}

	db, err := reactdb.Open(exchange.NewDefinition(params), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := exchange.Load(db, params); err != nil {
		log.Fatal(err)
	}

	// Authorize a payment: the Exchange reactor asynchronously asks every
	// Provider reactor for its risk-adjusted exposure (calc_risk includes the
	// expensive sim_risk computation), then books the order on the paying
	// provider — all in one serializable transaction.
	now := int64(1)
	simLoad := int64(50_000) // random numbers per provider in sim_risk
	for _, strategy := range exchange.Strategies() {
		start := time.Now()
		risk, err := db.Execute(exchange.ExchangeReactor, exchange.ProcedureFor(strategy),
			exchange.ProviderName(2), int64(4242), 120.0, now, simLoad, int64(0))
		if err != nil {
			log.Fatalf("auth_pay (%s): %v", strategy, err)
		}
		now++
		fmt.Printf("%-22s authorized (total risk %.2f) in %v\n",
			strategy, risk.(float64), time.Since(start).Round(100*time.Microsecond))
	}

	// A payment that violates the global risk limit aborts atomically: no
	// order is booked and no provider risk cache is updated.
	if err := reloadWithTightLimit(db, params); err != nil {
		log.Fatal(err)
	}
}

func reloadWithTightLimit(db *reactdb.Database, params exchange.Params) error {
	_, err := db.Execute(exchange.ExchangeReactor, exchange.ProcAuthPay,
		exchange.ProviderName(0), int64(7), 1e18, int64(100), int64(10), int64(0))
	if reactdb.IsUserAbort(err) {
		fmt.Println("oversized payment correctly aborted:", err)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Println("warning: oversized payment unexpectedly authorized")
	return nil
}

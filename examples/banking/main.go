// Banking: the Smallbank workload of the paper's latency-control experiments,
// showing how the four multi-transfer program formulations of §4.1.4 trade
// latency for asynchronicity on the same shared-nothing deployment.
package main

import (
	"fmt"
	"log"
	"time"

	"reactdb"
	"reactdb/internal/engine"
	"reactdb/internal/workload/smallbank"
)

func main() {
	const containers, perContainer = 7, 100
	customers := containers * perContainer

	cfg := engine.NewSharedNothing(containers)
	cfg.Placement = smallbank.RangePlacement(perContainer)
	cfg.Costs = reactdb.Costs{Send: 40 * time.Microsecond, Receive: 80 * time.Microsecond}

	db, err := reactdb.Open(smallbank.NewDefinition(customers), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := smallbank.Load(db, customers, 10_000, 10_000); err != nil {
		log.Fatal(err)
	}

	// One source account on the first container, seven destinations spread
	// over the other containers — the Figure 5 setup.
	src := smallbank.ReactorName(0)
	var dsts []string
	for i := 1; i <= 7; i++ {
		dsts = append(dsts, smallbank.ReactorName(i%containers*perContainer+i))
	}

	fmt.Println("multi-transfer of 1.00 to 7 destinations, per program formulation:")
	for _, f := range smallbank.Formulations() {
		proc, sequential := smallbank.MultiTransferProcedure(f)
		const runs = 20
		start := time.Now()
		for r := 0; r < runs; r++ {
			args := []any{src, dsts, 1.0}
			if proc == smallbank.ProcMultiTransferSync {
				args = append(args, sequential)
			}
			if _, err := db.Execute(src, proc, args...); err != nil {
				log.Fatalf("%s: %v", f, err)
			}
		}
		fmt.Printf("  %-16s avg latency %v\n", f, (time.Since(start) / runs).Round(time.Microsecond))
	}

	total, err := smallbank.TotalBalance(db, customers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total balance after all transfers: %.2f (unchanged — money is conserved)\n", total)

	// The same audit through the declarative query layer: one aggregate query
	// per relation fanned out over every customer reactor, executed as a
	// serializable read transaction instead of raw row reads.
	qTotal, err := smallbank.TotalBalanceQuery(db, customers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total balance via declarative query:  %.2f (same money, one transaction)\n", qTotal)
}

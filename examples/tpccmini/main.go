// TPC-C mini: loads a small TPC-C database with warehouses as reactors and
// compares the standard transaction mix under two database architectures,
// showing throughput, latency and abort rate — the §4.3 experiments in
// miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"reactdb"
	"reactdb/internal/bench"
	"reactdb/internal/engine"
	"reactdb/internal/workload/tpcc"
)

func main() {
	const scale = 4
	params := tpcc.Params{Warehouses: scale, CustomersPerDistrict: 60, Items: 200}

	deployments := []struct {
		name string
		cfg  reactdb.Config
	}{
		{"shared-everything-with-affinity", engine.NewSharedEverythingWithAffinity(scale)},
		{"shared-nothing-async", engine.NewSharedNothing(scale)},
	}

	for _, d := range deployments {
		cfg := d.cfg
		cfg.Placement = tpcc.Placement
		cfg.Affinity = func(reactor string) int {
			if w := tpcc.WarehouseID(reactor); w > 0 {
				return w - 1
			}
			return 0
		}
		cfg.Costs = reactdb.DefaultExperimentCosts()
		db, err := reactdb.Open(tpcc.NewDefinition(params), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := tpcc.Load(db, params); err != nil {
			log.Fatal(err)
		}

		opts := bench.Options{Workers: scale, Epochs: 4, EpochDuration: 200 * time.Millisecond, Warmup: 100 * time.Millisecond}
		result, err := bench.Run(db, opts, func(worker int) bench.Generator {
			g := tpcc.NewGenerator(tpcc.GeneratorConfig{
				Params:                   params,
				HomeWarehouse:            worker%scale + 1,
				Mix:                      tpcc.StandardMix(),
				RemoteItemProbability:    0.01,
				RemotePaymentProbability: 0.15,
				Seed:                     int64(worker + 1),
			})
			return func() bench.Request {
				req := g.Next()
				return bench.Request{Reactor: req.Reactor, Procedure: req.Procedure, Args: req.Args}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %s\n", d.name, result.String())

		// Analytics over the freshly-run mix through the declarative query
		// layer: order-line revenue grouped by supplying warehouse, unioned
		// across every warehouse reactor in one serializable read transaction.
		warehouses := make([]string, params.Warehouses)
		for w := range warehouses {
			warehouses[w] = tpcc.ReactorName(w + 1)
		}
		res, err := db.Query(reactdb.NewQuery().
			From("ol", tpcc.RelOrderLine, warehouses...).
			GroupBy("ol.ol_supply_w").
			Sum("ol.ol_amount", "revenue").
			Count("lines").
			OrderBy("ol.ol_supply_w", false))
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range res.Rows {
			fmt.Printf("    supplier %-8s revenue %10.2f over %d order lines\n",
				row.String(0), row.Float64(1), row.Int64(2))
		}
		db.Close()
	}
	fmt.Println("Identical TPC-C application code ran under both architectures; only the deployment configuration differed.")
}

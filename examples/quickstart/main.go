// Quickstart: declare a reactor type, deploy it under two different database
// architectures, and run transactions — the smallest end-to-end use of the
// public reactdb API.
package main

import (
	"fmt"
	"log"

	"reactdb"
)

func main() {
	// A "Counter" reactor type: one relation, two procedures.
	counter := reactdb.NewReactorType("Counter").
		AddRelation(reactdb.MustSchema("state",
			[]reactdb.Column{{Name: "id", Type: reactdb.Int64}, {Name: "value", Type: reactdb.Int64}}, "id")).
		AddProcedure("init", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
			return nil, ctx.Insert("state", reactdb.Row{int64(0), int64(0)})
		}).
		AddProcedure("add", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
			row, err := ctx.Get("state", int64(0))
			if err != nil {
				return nil, err
			}
			if row == nil {
				return nil, reactdb.Abortf("counter %s not initialized", ctx.Reactor())
			}
			next := row.Int64(1) + args.Int64(0)
			return next, ctx.Update("state", reactdb.Row{int64(0), next})
		}).
		AddProcedure("add_both", func(ctx reactdb.Context, args reactdb.Args) (any, error) {
			// A cross-reactor transaction: add to this counter and, in the same
			// serializable transaction, to another one via an asynchronous call.
			other := args.String(0)
			fut, err := ctx.Call(other, "add", args.Int64(1))
			if err != nil {
				return nil, err
			}
			local, err := ctx.Call(ctx.Reactor(), "add", args.Int64(1))
			if err != nil {
				return nil, err
			}
			if err := reactdb.WaitAll(fut, local); err != nil {
				return nil, err
			}
			return nil, nil
		})

	// The logical database: two named counter reactors.
	def := reactdb.NewDatabaseDef().MustAddType(counter)
	def.MustDeclareReactors("Counter", "hits", "misses")

	// The same declaration deployed under two architectures.
	for _, cfg := range []reactdb.Config{
		reactdb.SharedEverythingWithAffinity(2),
		reactdb.SharedNothing(2),
	} {
		db, err := reactdb.Open(def, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range []string{"hits", "misses"} {
			if _, err := db.Execute(name, "init"); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := db.Execute("hits", "add_both", "misses", int64(5)); err != nil {
			log.Fatal(err)
		}
		v, err := db.Execute("hits", "add", int64(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployment %-40s hits=%d\n", cfg.Strategy, v.(int64))
		db.Close()
	}
}

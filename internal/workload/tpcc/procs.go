package tpcc

import (
	"time"

	"reactdb/internal/core"
	"reactdb/internal/rel"
)

// Column index constants resolved once against the static schemas, so the
// procedures avoid per-call column lookups.
var (
	customerSchema = Schemas()[2]
	colCBalance    = customerSchema.MustCol("c_balance")
	colCYtd        = customerSchema.MustCol("c_ytd_payment")
	colCPayCnt     = customerSchema.MustCol("c_payment_cnt")
	colCDelivCnt   = customerSchema.MustCol("c_delivery_cnt")
	colCCredit     = customerSchema.MustCol("c_credit")
	colCDiscount   = customerSchema.MustCol("c_discount")
)

// Type builds the Warehouse reactor type with all five TPC-C transactions plus
// the stock_update and payment_customer sub-transaction procedures.
func Type() *core.Type {
	t := core.NewType(TypeName)
	for _, s := range Schemas() {
		t.AddRelation(s)
	}
	t.AddProcedure(ProcNewOrder, newOrder)
	t.AddProcedure(ProcStockUpdate, stockUpdate)
	t.AddProcedure(ProcStockUpdateBatch, stockUpdateBatch)
	t.AddProcedure(ProcPayment, payment)
	t.AddProcedure(ProcPaymentCustomer, paymentCustomer)
	t.AddProcedure(ProcOrderStatus, orderStatus)
	t.AddProcedure(ProcDelivery, delivery)
	t.AddProcedure(ProcStockLevel, stockLevel)
	return t
}

// newOrder implements the TPC-C new-order transaction. Arguments:
//
//	0: d_id int64
//	1: c_id int64
//	2: item ids []int64 (an id of -1 denotes the 1% "unused item" user abort)
//	3: supplying warehouse reactor names []string (same length as item ids)
//	4: quantities []int64
//	5: entry date int64
//	6: per-stock-update delay in microseconds (the new-order-delay variant of
//	   §4.3.2; 0 for standard new-order)
//	7: optional bool: when true, stock-update sub-transactions are awaited
//	   immediately after invocation (the shared-nothing-sync program
//	   formulation of §3.3); default false (asynchronous, shared-nothing-async)
//
// It returns the assigned order id.
func newOrder(ctx core.Context, args core.Args) (any, error) {
	dID := args.Int64(0)
	cID := args.Int64(1)
	itemIDs := args.Int64s(2)
	supplyWs := args.Strings(3)
	quantities := args.Int64s(4)
	entryD := args.Int64(5)
	delayMicros := args.Int64(6)
	syncStock := false
	if args.Len() > 7 {
		syncStock = args.Bool(7)
	}
	if len(itemIDs) == 0 || len(itemIDs) != len(supplyWs) || len(itemIDs) != len(quantities) {
		return nil, core.Abortf("new_order: malformed order lines")
	}

	warehouse, err := ctx.Get(RelWarehouse, int64(WarehouseID(ctx.Reactor())))
	if err != nil {
		return nil, err
	}
	if warehouse == nil {
		return nil, core.Abortf("warehouse %s not loaded", ctx.Reactor())
	}
	wTax := warehouse.Float64(2)

	district, err := ctx.Get(RelDistrict, dID)
	if err != nil {
		return nil, err
	}
	if district == nil {
		return nil, core.Abortf("district %d missing on %s", dID, ctx.Reactor())
	}
	dTax := district.Float64(2)
	oID := district.Int64(4)
	district[4] = oID + 1
	if err := ctx.Update(RelDistrict, district); err != nil {
		return nil, err
	}

	customer, err := ctx.Get(RelCustomer, dID, cID)
	if err != nil {
		return nil, err
	}
	if customer == nil {
		return nil, core.Abortf("customer %d/%d missing", dID, cID)
	}
	discount := customer.Float64(colCDiscount)

	allLocal := true
	for _, w := range supplyWs {
		if w != ctx.Reactor() {
			allLocal = false
			break
		}
	}
	if err := ctx.Insert(RelOrders, rel.Row{dID, oID, cID, entryD, int64(0), int64(len(itemIDs)), allLocal}); err != nil {
		return nil, err
	}
	if err := ctx.Insert(RelNewOrder, rel.Row{dID, oID}); err != nil {
		return nil, err
	}
	if err := ctx.Insert(RelOrderCustIdx, rel.Row{dID, cID, oID}); err != nil {
		return nil, err
	}

	// Resolve item prices locally (the item relation is replicated on every
	// warehouse), group the stock updates by supplying warehouse, dispatch one
	// asynchronous sub-transaction per distinct remote warehouse so they all
	// overlap, then collect results and insert the order lines.
	prices := make([]float64, len(itemIDs))
	for i, itemID := range itemIDs {
		if itemID < 0 {
			// TPC-C mandates that ~1% of new-order transactions roll back due
			// to an unused item number.
			return nil, core.Abortf("new_order: unused item number")
		}
		item, err := ctx.Get(RelItem, itemID)
		if err != nil {
			return nil, err
		}
		if item == nil {
			return nil, core.Abortf("new_order: item %d not found", itemID)
		}
		prices[i] = item.Float64(2)
	}
	groups := make(map[string][]int) // supply warehouse -> line indices
	var groupOrder []string
	for i, w := range supplyWs {
		if _, seen := groups[w]; !seen {
			groupOrder = append(groupOrder, w)
		}
		groups[w] = append(groups[w], i)
	}
	futures := make(map[string]*core.Future, len(groupOrder))
	for _, w := range groupOrder {
		idxs := groups[w]
		batchItems := make([]int64, len(idxs))
		batchQtys := make([]int64, len(idxs))
		for j, i := range idxs {
			batchItems[j] = itemIDs[i]
			batchQtys[j] = quantities[i]
		}
		remote := w != ctx.Reactor()
		fut, err := ctx.Call(w, ProcStockUpdateBatch, batchItems, batchQtys, remote, delayMicros)
		if err != nil {
			return nil, err
		}
		if syncStock {
			if _, err := fut.Get(); err != nil {
				return nil, err
			}
		}
		futures[w] = fut
	}
	distInfos := make([]string, len(itemIDs))
	for _, w := range groupOrder {
		res, err := futures[w].Get()
		if err != nil {
			return nil, err
		}
		infos, _ := res.([]string)
		for j, i := range groups[w] {
			if j < len(infos) {
				distInfos[i] = infos[j]
			}
		}
	}
	total := 0.0
	for i := range itemIDs {
		amount := float64(quantities[i]) * prices[i]
		total += amount
		row := rel.Row{dID, oID, int64(i + 1), itemIDs[i], supplyWs[i], quantities[i], amount, distInfos[i], int64(0)}
		if err := ctx.Insert(RelOrderLine, row); err != nil {
			return nil, err
		}
	}
	_ = total * (1 - discount) * (1 + wTax + dTax) // computed as in the spec; returned value is the order id
	return oID, nil
}

// stockUpdate is the sub-transaction executed on the supplying warehouse for
// one order line: it adjusts the stock row and returns its district info
// string. Arguments: item id, quantity, remote flag, delay in microseconds.
func stockUpdate(ctx core.Context, args core.Args) (any, error) {
	itemID := args.Int64(0)
	quantity := args.Int64(1)
	remote := args.Bool(2)
	delayMicros := args.Int64(3)

	stock, err := ctx.Get(RelStock, itemID)
	if err != nil {
		return nil, err
	}
	if stock == nil {
		return nil, core.Abortf("stock for item %d missing on %s", itemID, ctx.Reactor())
	}
	sQty := stock.Int64(1)
	if sQty-quantity >= 10 {
		sQty -= quantity
	} else {
		sQty = sQty - quantity + 91
	}
	stock[1] = sQty
	stock[2] = stock.Int64(2) + quantity
	stock[3] = stock.Int64(3) + 1
	if remote {
		stock[4] = stock.Int64(4) + 1
	}
	if delayMicros > 0 {
		// Stock replenishment calculation of the new-order-delay variant
		// (§4.3.2), modeled as virtual-core work.
		ctx.Work(time.Duration(delayMicros) * time.Microsecond)
	}
	if err := ctx.Update(RelStock, stock); err != nil {
		return nil, err
	}
	return stock.String(5), nil
}

// stockUpdateBatch applies stockUpdate to several items of one supplying
// warehouse within a single sub-transaction, returning their district info
// strings in order. New-order uses it so that each distinct remote warehouse
// receives exactly one asynchronous sub-transaction (two concurrent
// sub-transactions on the same reactor would violate the §2.2.4 safety
// condition). Arguments: item ids, quantities, remote flag, delay in
// microseconds (the new-order-delay stock replenishment computation, charged
// once per supplying warehouse).
func stockUpdateBatch(ctx core.Context, args core.Args) (any, error) {
	itemIDs := args.Int64s(0)
	quantities := args.Int64s(1)
	remote := args.Bool(2)
	delayMicros := args.Int64(3)
	infos := make([]string, len(itemIDs))
	for i, itemID := range itemIDs {
		delay := int64(0)
		if i == 0 {
			delay = delayMicros
		}
		res, err := stockUpdate(ctx, core.Args{itemID, quantities[i], remote, delay})
		if err != nil {
			return nil, err
		}
		infos[i] = res.(string)
	}
	return infos, nil
}

// payment implements the TPC-C payment transaction. Arguments:
//
//	0: d_id int64
//	1: h_amount float64
//	2: customer warehouse reactor name (15% of the time a remote warehouse)
//	3: c_d_id int64
//	4: byName bool
//	5: c_id int64 (when byName is false)
//	6: c_last string (when byName is true)
//	7: h_nonce int64 (unique per invocation, keys the history row)
//
// It returns the id of the customer that was charged.
func payment(ctx core.Context, args core.Args) (any, error) {
	dID := args.Int64(0)
	amount := args.Float64(1)
	custWarehouse := args.String(2)
	cDID := args.Int64(3)
	byName := args.Bool(4)
	cID := args.Int64(5)
	cLast := args.String(6)
	nonce := args.Int64(7)

	warehouse, err := ctx.Get(RelWarehouse, int64(WarehouseID(ctx.Reactor())))
	if err != nil {
		return nil, err
	}
	if warehouse == nil {
		return nil, core.Abortf("warehouse %s not loaded", ctx.Reactor())
	}
	warehouse[3] = warehouse.Float64(3) + amount
	if err := ctx.Update(RelWarehouse, warehouse); err != nil {
		return nil, err
	}

	district, err := ctx.Get(RelDistrict, dID)
	if err != nil {
		return nil, err
	}
	if district == nil {
		return nil, core.Abortf("district %d missing", dID)
	}
	district[3] = district.Float64(3) + amount
	if err := ctx.Update(RelDistrict, district); err != nil {
		return nil, err
	}

	// The customer may belong to a different warehouse reactor (15% in the
	// standard mix); the update then runs as a sub-transaction there.
	res, err := ctx.CallSync(custWarehouse, ProcPaymentCustomer, cDID, byName, cID, cLast, amount)
	if err != nil {
		return nil, err
	}
	chargedCID := res.(int64)

	hData := warehouse.String(1) + "    " + district.String(1)
	if err := ctx.Insert(RelHistory, rel.Row{dID, chargedCID, nonce, amount, hData}); err != nil {
		return nil, err
	}
	return chargedCID, nil
}

// lookupCustomerByName returns the TPC-C "middle" customer (by first name
// order) among those with the given last name in the district.
func lookupCustomerByName(ctx core.Context, dID int64, last string) (rel.Row, error) {
	var ids []int64
	err := ctx.Scan(RelCustomerNameIdx, func(row rel.Row) bool {
		ids = append(ids, row.Int64(3))
		return true
	}, dID, last)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, core.Abortf("no customer with last name %s in district %d", last, dID)
	}
	mid := ids[len(ids)/2]
	return ctx.Get(RelCustomer, dID, mid)
}

// paymentCustomer applies the customer side of a payment on the customer's
// home warehouse. Arguments: c_d_id, byName, c_id, c_last, amount. It returns
// the customer id.
func paymentCustomer(ctx core.Context, args core.Args) (any, error) {
	cDID := args.Int64(0)
	byName := args.Bool(1)
	cID := args.Int64(2)
	cLast := args.String(3)
	amount := args.Float64(4)

	var customer rel.Row
	var err error
	if byName {
		customer, err = lookupCustomerByName(ctx, cDID, cLast)
	} else {
		customer, err = ctx.Get(RelCustomer, cDID, cID)
	}
	if err != nil {
		return nil, err
	}
	if customer == nil {
		return nil, core.Abortf("customer %d/%d missing on %s", cDID, cID, ctx.Reactor())
	}
	customer[colCBalance] = customer.Float64(colCBalance) - amount
	customer[colCYtd] = customer.Float64(colCYtd) + amount
	customer[colCPayCnt] = customer.Int64(colCPayCnt) + 1
	if customer.String(colCCredit) == "BC" {
		data := customer.String(len(customer) - 1)
		if len(data) > 300 {
			data = data[:300]
		}
		customer[len(customer)-1] = "BC-PAYMENT|" + data
	}
	if err := ctx.Update(RelCustomer, customer); err != nil {
		return nil, err
	}
	return customer.Int64(1), nil
}

// orderStatus implements the TPC-C order-status transaction. Arguments:
// d_id, byName, c_id, c_last. It returns the id of the customer's most recent
// order, or -1 if the customer has no orders.
func orderStatus(ctx core.Context, args core.Args) (any, error) {
	dID := args.Int64(0)
	byName := args.Bool(1)
	cID := args.Int64(2)
	cLast := args.String(3)

	var customer rel.Row
	var err error
	if byName {
		customer, err = lookupCustomerByName(ctx, dID, cLast)
	} else {
		customer, err = ctx.Get(RelCustomer, dID, cID)
	}
	if err != nil {
		return nil, err
	}
	if customer == nil {
		return nil, core.Abortf("customer %d/%d missing", dID, cID)
	}
	custID := customer.Int64(1)

	latest := int64(-1)
	err = ctx.ScanDesc(RelOrderCustIdx, func(row rel.Row) bool {
		latest = row.Int64(2)
		return false
	}, dID, custID)
	if err != nil {
		return nil, err
	}
	if latest < 0 {
		return int64(-1), nil
	}
	// Read the order and its order lines, as the specification requires.
	if _, err := ctx.Get(RelOrders, dID, latest); err != nil {
		return nil, err
	}
	err = ctx.Scan(RelOrderLine, func(rel.Row) bool { return true }, dID, latest)
	if err != nil {
		return nil, err
	}
	return latest, nil
}

// delivery implements the TPC-C delivery transaction: for every district it
// picks the oldest undelivered order, removes it from new_order, stamps the
// carrier and delivery dates, and credits the customer. Arguments: carrier id,
// delivery date. It returns the number of orders delivered.
func delivery(ctx core.Context, args core.Args) (any, error) {
	carrier := args.Int64(0)
	deliveryD := args.Int64(1)
	delivered := int64(0)
	for d := int64(1); d <= DistrictsPerWarehouse; d++ {
		oldest := int64(-1)
		err := ctx.Scan(RelNewOrder, func(row rel.Row) bool {
			oldest = row.Int64(1)
			return false
		}, d)
		if err != nil {
			return nil, err
		}
		if oldest < 0 {
			continue
		}
		if err := ctx.Delete(RelNewOrder, d, oldest); err != nil {
			return nil, err
		}
		order, err := ctx.Get(RelOrders, d, oldest)
		if err != nil {
			return nil, err
		}
		if order == nil {
			return nil, core.Abortf("delivery: order %d/%d missing", d, oldest)
		}
		order[4] = carrier
		if err := ctx.Update(RelOrders, order); err != nil {
			return nil, err
		}
		var total float64
		var lines []rel.Row
		err = ctx.Scan(RelOrderLine, func(row rel.Row) bool {
			lines = append(lines, row)
			return true
		}, d, oldest)
		if err != nil {
			return nil, err
		}
		for _, line := range lines {
			total += line.Float64(6)
			line[8] = deliveryD
			if err := ctx.Update(RelOrderLine, line); err != nil {
				return nil, err
			}
		}
		customer, err := ctx.Get(RelCustomer, d, order.Int64(2))
		if err != nil {
			return nil, err
		}
		if customer == nil {
			return nil, core.Abortf("delivery: customer %d/%d missing", d, order.Int64(2))
		}
		customer[colCBalance] = customer.Float64(colCBalance) + total
		customer[colCDelivCnt] = customer.Int64(colCDelivCnt) + 1
		if err := ctx.Update(RelCustomer, customer); err != nil {
			return nil, err
		}
		delivered++
	}
	return delivered, nil
}

// stockLevel implements the TPC-C stock-level transaction. Arguments: d_id,
// threshold. It returns the number of distinct recently-ordered items whose
// stock quantity is below the threshold.
func stockLevel(ctx core.Context, args core.Args) (any, error) {
	dID := args.Int64(0)
	threshold := args.Int64(1)

	district, ok, err := ctx.GetView(RelDistrict, dID)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, core.Abortf("district %d missing", dID)
	}
	nextOID := district.Int64(4)
	lowOID := nextOID - StockLevelOrders
	if lowOID < 1 {
		lowOID = 1
	}
	itemSet := make(map[int64]bool)
	err = ctx.Scan(RelOrderLine, func(row rel.Row) bool {
		if row.Int64(1) >= lowOID && row.Int64(1) < nextOID {
			itemSet[row.Int64(3)] = true
		}
		return true
	}, dID)
	if err != nil {
		return nil, err
	}
	low := int64(0)
	for itemID := range itemSet {
		// One probe per distinct recently-ordered item: views keep this
		// read-only loop from materializing a row per stock entry.
		stock, ok, err := ctx.GetView(RelStock, itemID)
		if err != nil {
			return nil, err
		}
		if ok && stock.Int64(1) < threshold {
			low++
		}
	}
	return low, nil
}

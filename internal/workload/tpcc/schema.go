// Package tpcc implements the TPC-C benchmark in the reactor programming
// model, following the paper's port (§4.1.3): every warehouse is a reactor
// encapsulating its districts, customers, orders, stock and a replicated item
// relation. New-order stock updates on remote warehouses and payment customer
// updates on remote warehouses are the cross-reactor sub-transactions.
//
// The implementation follows OLTP-Bench's simplifications, as the paper does
// (no think times, simplified text fields), and supports the paper's
// variations: the new-order-delay transaction with an artificial 300–400µs
// stock replenishment computation (§4.3.2) and a configurable probability of
// cross-reactor item accesses (Appendix E).
package tpcc

import (
	"fmt"

	"reactdb/internal/rel"
)

// TypeName is the reactor type of a warehouse.
const TypeName = "Warehouse"

// Fixed TPC-C cardinalities (per warehouse) that are not scaled in this
// implementation.
const (
	// DistrictsPerWarehouse is the number of districts per warehouse.
	DistrictsPerWarehouse = 10
	// MaxItemsPerOrder is the largest number of order lines in a new-order.
	MaxItemsPerOrder = 15
	// MinItemsPerOrder is the smallest number of order lines in a new-order.
	MinItemsPerOrder = 5
	// InitialOrdersPerDistrict is the number of orders preloaded per district.
	InitialOrdersPerDistrict = 30
	// StockLevelOrders is how many recent orders stock-level inspects.
	StockLevelOrders = 20
)

// Relation names.
const (
	RelWarehouse       = "warehouse"
	RelDistrict        = "district"
	RelCustomer        = "customer"
	RelCustomerNameIdx = "customer_name_idx"
	RelHistory         = "history"
	RelNewOrder        = "new_order"
	RelOrders          = "orders"
	RelOrderCustIdx    = "order_customer_idx"
	RelOrderLine       = "order_line"
	RelStock           = "stock"
	RelItem            = "item"
)

// Procedure names.
const (
	ProcNewOrder         = "new_order"
	ProcStockUpdate      = "stock_update"
	ProcStockUpdateBatch = "stock_update_batch"
	ProcPayment          = "payment"
	ProcPaymentCustomer  = "payment_customer"
	ProcOrderStatus      = "order_status"
	ProcDelivery         = "delivery"
	ProcStockLevel       = "stock_level"
)

// ReactorName returns the reactor name of warehouse w (1-based, as in TPC-C).
func ReactorName(w int) string { return fmt.Sprintf("wh-%04d", w) }

// WarehouseID parses a warehouse reactor name back into its id; it returns 0
// for non-warehouse reactors.
func WarehouseID(reactor string) int {
	var id int
	if _, err := fmt.Sscanf(reactor, "wh-%d", &id); err != nil {
		return 0
	}
	return id
}

// Placement maps warehouse w (1-based) to container (w-1); other reactors go
// to container 0. It is the shared-nothing placement used throughout §4.3.
func Placement(reactor string) int {
	id := WarehouseID(reactor)
	if id <= 0 {
		return 0
	}
	return id - 1
}

// Schemas returns the relations encapsulated by a warehouse reactor.
func Schemas() []*rel.Schema {
	return []*rel.Schema{
		rel.MustSchema(RelWarehouse,
			[]rel.Column{
				{Name: "w_id", Type: rel.Int64},
				{Name: "w_name", Type: rel.String},
				{Name: "w_tax", Type: rel.Float64},
				{Name: "w_ytd", Type: rel.Float64},
			}, "w_id"),
		rel.MustSchema(RelDistrict,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "d_name", Type: rel.String},
				{Name: "d_tax", Type: rel.Float64},
				{Name: "d_ytd", Type: rel.Float64},
				{Name: "d_next_o_id", Type: rel.Int64},
			}, "d_id"),
		rel.MustSchema(RelCustomer,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "c_id", Type: rel.Int64},
				{Name: "c_first", Type: rel.String},
				{Name: "c_middle", Type: rel.String},
				{Name: "c_last", Type: rel.String},
				{Name: "c_credit", Type: rel.String},
				{Name: "c_discount", Type: rel.Float64},
				{Name: "c_balance", Type: rel.Float64},
				{Name: "c_ytd_payment", Type: rel.Float64},
				{Name: "c_payment_cnt", Type: rel.Int64},
				{Name: "c_delivery_cnt", Type: rel.Int64},
				{Name: "c_data", Type: rel.String},
			}, "d_id", "c_id"),
		rel.MustSchema(RelCustomerNameIdx,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "c_last", Type: rel.String},
				{Name: "c_first", Type: rel.String},
				{Name: "c_id", Type: rel.Int64},
			}, "d_id", "c_last", "c_first", "c_id"),
		rel.MustSchema(RelHistory,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "c_id", Type: rel.Int64},
				{Name: "h_nonce", Type: rel.Int64},
				{Name: "h_amount", Type: rel.Float64},
				{Name: "h_data", Type: rel.String},
			}, "d_id", "c_id", "h_nonce"),
		rel.MustSchema(RelNewOrder,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "o_id", Type: rel.Int64},
			}, "d_id", "o_id"),
		rel.MustSchema(RelOrders,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "o_id", Type: rel.Int64},
				{Name: "c_id", Type: rel.Int64},
				{Name: "o_entry_d", Type: rel.Int64},
				{Name: "o_carrier_id", Type: rel.Int64},
				{Name: "o_ol_cnt", Type: rel.Int64},
				{Name: "o_all_local", Type: rel.Bool},
			}, "d_id", "o_id"),
		rel.MustSchema(RelOrderCustIdx,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "c_id", Type: rel.Int64},
				{Name: "o_id", Type: rel.Int64},
			}, "d_id", "c_id", "o_id"),
		rel.MustSchema(RelOrderLine,
			[]rel.Column{
				{Name: "d_id", Type: rel.Int64},
				{Name: "o_id", Type: rel.Int64},
				{Name: "ol_number", Type: rel.Int64},
				{Name: "ol_i_id", Type: rel.Int64},
				{Name: "ol_supply_w", Type: rel.String},
				{Name: "ol_quantity", Type: rel.Int64},
				{Name: "ol_amount", Type: rel.Float64},
				{Name: "ol_dist_info", Type: rel.String},
				{Name: "ol_delivery_d", Type: rel.Int64},
			}, "d_id", "o_id", "ol_number"),
		rel.MustSchema(RelStock,
			[]rel.Column{
				{Name: "s_i_id", Type: rel.Int64},
				{Name: "s_quantity", Type: rel.Int64},
				{Name: "s_ytd", Type: rel.Int64},
				{Name: "s_order_cnt", Type: rel.Int64},
				{Name: "s_remote_cnt", Type: rel.Int64},
				{Name: "s_dist_info", Type: rel.String},
			}, "s_i_id"),
		rel.MustSchema(RelItem,
			[]rel.Column{
				{Name: "i_id", Type: rel.Int64},
				{Name: "i_name", Type: rel.String},
				{Name: "i_price", Type: rel.Float64},
				{Name: "i_data", Type: rel.String},
			}, "i_id"),
	}
}

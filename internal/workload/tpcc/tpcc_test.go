package tpcc

import (
	"errors"
	"sync"
	"testing"

	"reactdb/internal/core"
	"reactdb/internal/engine"
)

func testParams(warehouses int) Params {
	return Params{Warehouses: warehouses, CustomersPerDistrict: 30, Items: 100}
}

func open(t testing.TB, p Params, cfg engine.Config) *engine.Database {
	t.Helper()
	cfg.Placement = Placement
	db, err := engine.Open(NewDefinition(p), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := Load(db, p); err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestPlacementAndNames(t *testing.T) {
	if ReactorName(3) != "wh-0003" || WarehouseID("wh-0003") != 3 {
		t.Fatalf("reactor naming wrong")
	}
	if WarehouseID("other") != 0 {
		t.Fatalf("non-warehouse id should be 0")
	}
	if Placement("wh-0001") != 0 || Placement("wh-0004") != 3 || Placement("zzz") != 0 {
		t.Fatalf("placement wrong")
	}
}

func TestNewOrderLocal(t *testing.T) {
	p := testParams(2)
	db := open(t, p, engine.NewSharedNothing(2))
	home := ReactorName(1)
	args := []any{int64(1), int64(5),
		[]int64{1, 2, 3}, []string{home, home, home}, []int64{1, 2, 3}, int64(99), int64(0)}
	v, err := db.Execute(home, ProcNewOrder, args...)
	if err != nil {
		t.Fatalf("new_order: %v", err)
	}
	oID := v.(int64)
	if oID != InitialOrdersPerDistrict+1 {
		t.Fatalf("order id = %d, want %d", oID, InitialOrdersPerDistrict+1)
	}
	// The district's next order id advanced.
	district, _ := db.ReadRow(home, RelDistrict, int64(1))
	if district.Int64(4) != oID+1 {
		t.Fatalf("d_next_o_id = %d, want %d", district.Int64(4), oID+1)
	}
	// Order, new_order and 3 order lines exist.
	if row, _ := db.ReadRow(home, RelOrders, int64(1), oID); row == nil || row.Int64(5) != 3 || !row.Bool(6) {
		t.Fatalf("orders row wrong: %v", row)
	}
	if row, _ := db.ReadRow(home, RelNewOrder, int64(1), oID); row == nil {
		t.Fatalf("new_order row missing")
	}
	for ol := int64(1); ol <= 3; ol++ {
		row, _ := db.ReadRow(home, RelOrderLine, int64(1), oID, ol)
		if row == nil || row.Int64(3) != ol {
			t.Fatalf("order line %d wrong: %v", ol, row)
		}
	}
	// Stock rows were updated.
	stock, _ := db.ReadRow(home, RelStock, int64(1))
	if stock.Int64(3) != 1 {
		t.Fatalf("stock order count not bumped: %v", stock)
	}
}

func TestNewOrderRemoteItems(t *testing.T) {
	p := testParams(3)
	db := open(t, p, engine.NewSharedNothing(3))
	home := ReactorName(1)
	remote := ReactorName(3)
	args := []any{int64(2), int64(3),
		[]int64{10, 20}, []string{home, remote}, []int64{4, 6}, int64(5), int64(0)}
	if _, err := db.Execute(home, ProcNewOrder, args...); err != nil {
		t.Fatalf("new_order remote: %v", err)
	}
	// The remote warehouse's stock row for item 20 was updated with a remote
	// count of 1; the home warehouse's stock for item 20 was untouched.
	remoteStock, _ := db.ReadRow(remote, RelStock, int64(20))
	if remoteStock.Int64(3) != 1 || remoteStock.Int64(4) != 1 {
		t.Fatalf("remote stock not updated: %v", remoteStock)
	}
	homeStock, _ := db.ReadRow(home, RelStock, int64(20))
	if homeStock.Int64(3) != 0 {
		t.Fatalf("home stock should be untouched for remote item")
	}
	// The order row records the order as not all-local.
	order, _ := db.ReadRow(home, RelOrders, int64(2), int64(InitialOrdersPerDistrict+1))
	if order.Bool(6) {
		t.Fatalf("order should not be all_local")
	}
}

func TestNewOrderUnusedItemAborts(t *testing.T) {
	p := testParams(1)
	db := open(t, p, engine.NewSharedNothing(1))
	home := ReactorName(1)
	args := []any{int64(1), int64(1),
		[]int64{1, -1}, []string{home, home}, []int64{1, 1}, int64(7), int64(0)}
	_, err := db.Execute(home, ProcNewOrder, args...)
	if !core.IsUserAbort(err) {
		t.Fatalf("expected user abort for unused item, got %v", err)
	}
	// The district next order id must be unchanged (rollback).
	district, _ := db.ReadRow(home, RelDistrict, int64(1))
	if district.Int64(4) != InitialOrdersPerDistrict+1 {
		t.Fatalf("aborted new_order advanced d_next_o_id")
	}
	// Stock of item 1 untouched.
	stock, _ := db.ReadRow(home, RelStock, int64(1))
	if stock.Int64(3) != 0 {
		t.Fatalf("aborted new_order leaked a stock update")
	}
}

func TestPaymentLocalAndRemoteCustomer(t *testing.T) {
	p := testParams(2)
	db := open(t, p, engine.NewSharedNothing(2))
	home := ReactorName(1)
	other := ReactorName(2)

	// Local customer by id.
	v, err := db.Execute(home, ProcPayment, int64(1), 50.0, home, int64(1), false, int64(7), "", int64(1001))
	if err != nil {
		t.Fatalf("payment local: %v", err)
	}
	if v.(int64) != 7 {
		t.Fatalf("charged customer id = %v, want 7", v)
	}
	cust, _ := db.ReadRow(home, RelCustomer, int64(1), int64(7))
	if cust.Float64(7) != -60.0 { // initial balance -10 minus 50
		t.Fatalf("customer balance = %v, want -60", cust.Float64(7))
	}
	wh, _ := db.ReadRow(home, RelWarehouse, int64(1))
	if wh.Float64(3) != 50.0 {
		t.Fatalf("warehouse ytd = %v, want 50", wh.Float64(3))
	}
	if row, _ := db.ReadRow(home, RelHistory, int64(1), int64(7), int64(1001)); row == nil {
		t.Fatalf("history row missing")
	}

	// Remote customer by last name: the customer update lands on the remote
	// warehouse reactor, the history row stays on the home warehouse.
	v, err = db.Execute(home, ProcPayment, int64(2), 25.0, other, int64(3), true, int64(0), "BARBARBAR", int64(1002))
	if err != nil {
		t.Fatalf("payment remote: %v", err)
	}
	charged := v.(int64)
	remoteCust, _ := db.ReadRow(other, RelCustomer, int64(3), charged)
	if remoteCust.Float64(8) != 35.0 { // initial ytd 10 + 25
		t.Fatalf("remote customer ytd = %v, want 35", remoteCust.Float64(8))
	}
	if row, _ := db.ReadRow(home, RelHistory, int64(2), charged, int64(1002)); row == nil {
		t.Fatalf("history row for remote payment missing on home warehouse")
	}
}

func TestOrderStatusReturnsLatestOrder(t *testing.T) {
	p := testParams(1)
	db := open(t, p, engine.NewSharedNothing(1))
	home := ReactorName(1)
	// Create a fresh order for customer 9 in district 1, which must become the
	// latest one.
	args := []any{int64(1), int64(9), []int64{1}, []string{home}, []int64{1}, int64(123), int64(0)}
	v, err := db.Execute(home, ProcNewOrder, args...)
	if err != nil {
		t.Fatalf("new_order: %v", err)
	}
	newOID := v.(int64)
	res, err := db.Execute(home, ProcOrderStatus, int64(1), false, int64(9), "")
	if err != nil {
		t.Fatalf("order_status: %v", err)
	}
	if res.(int64) != newOID {
		t.Fatalf("order_status returned %v, want %v", res, newOID)
	}
	// By-name lookup also works (every district has customers named BARBARBAR
	// because the loader assigns last names cyclically).
	if _, err := db.Execute(home, ProcOrderStatus, int64(1), true, int64(0), "BARBARBAR"); err != nil {
		t.Fatalf("order_status by name: %v", err)
	}
}

func TestDeliveryProcessesOldestNewOrders(t *testing.T) {
	p := testParams(1)
	db := open(t, p, engine.NewSharedNothing(1))
	home := ReactorName(1)
	before := db.TableLen(home, RelNewOrder)
	v, err := db.Execute(home, ProcDelivery, int64(3), int64(777))
	if err != nil {
		t.Fatalf("delivery: %v", err)
	}
	delivered := v.(int64)
	if delivered != DistrictsPerWarehouse {
		t.Fatalf("delivered %d districts, want %d", delivered, DistrictsPerWarehouse)
	}
	_ = before
	// The oldest undelivered order of district 1 (loaded as order 21) now has
	// a carrier and delivery dates on its lines.
	oldest := int64(InitialOrdersPerDistrict - 10 + 1)
	order, _ := db.ReadRow(home, RelOrders, int64(1), oldest)
	if order.Int64(4) != 3 {
		t.Fatalf("carrier not set on delivered order: %v", order)
	}
	if row, _ := db.ReadRow(home, RelNewOrder, int64(1), oldest); row != nil {
		t.Fatalf("delivered order still in new_order")
	}
	line, _ := db.ReadRow(home, RelOrderLine, int64(1), oldest, int64(1))
	if line.Int64(8) != 777 {
		t.Fatalf("delivery date not stamped on order line: %v", line)
	}
}

func TestStockLevelCountsLowStock(t *testing.T) {
	p := testParams(1)
	db := open(t, p, engine.NewSharedNothing(1))
	home := ReactorName(1)
	v, err := db.Execute(home, ProcStockLevel, int64(1), int64(101))
	if err != nil {
		t.Fatalf("stock_level: %v", err)
	}
	// Threshold above the max loaded quantity (100): every recently ordered
	// item counts as low.
	if v.(int64) <= 0 {
		t.Fatalf("stock_level with high threshold should report low items, got %v", v)
	}
	v, err = db.Execute(home, ProcStockLevel, int64(1), int64(0))
	if err != nil {
		t.Fatalf("stock_level: %v", err)
	}
	if v.(int64) != 0 {
		t.Fatalf("stock_level with zero threshold should report none, got %v", v)
	}
}

func TestGeneratorProducesValidMix(t *testing.T) {
	p := testParams(4)
	cfg := GeneratorConfig{
		Params:                   p,
		HomeWarehouse:            2,
		Mix:                      StandardMix(),
		RemoteItemProbability:    0.5,
		RemotePaymentProbability: 0.5,
		Seed:                     42,
	}
	g := NewGenerator(cfg)
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		req := g.Next()
		counts[req.Procedure]++
		if req.Reactor != ReactorName(2) {
			t.Fatalf("client affinity violated: %s", req.Reactor)
		}
		if req.Procedure == ProcNewOrder {
			items := req.Args[2].([]int64)
			supply := req.Args[3].([]string)
			if len(items) < MinItemsPerOrder || len(items) > MaxItemsPerOrder {
				t.Fatalf("order size out of range: %d", len(items))
			}
			for i, id := range items {
				if id != -1 && (id < 1 || id > int64(p.Items)) {
					t.Fatalf("item id out of range: %d", id)
				}
				if w := WarehouseID(supply[i]); w < 1 || w > p.Warehouses {
					t.Fatalf("supply warehouse out of range: %s", supply[i])
				}
			}
		}
	}
	// All five transaction types appear, new-order and payment dominate.
	for _, proc := range []string{ProcNewOrder, ProcPayment, ProcOrderStatus, ProcDelivery, ProcStockLevel} {
		if counts[proc] == 0 {
			t.Fatalf("mix never produced %s: %v", proc, counts)
		}
	}
	if counts[ProcNewOrder] < counts[ProcStockLevel] || counts[ProcPayment] < counts[ProcDelivery] {
		t.Fatalf("mix weights look wrong: %v", counts)
	}
}

func TestGeneratorNewOrderDelayRange(t *testing.T) {
	p := testParams(2)
	g := NewGenerator(GeneratorConfig{
		Params:                 p,
		HomeWarehouse:          1,
		Mix:                    NewOrderOnlyMix(),
		NewOrderDelayMinMicros: 300,
		NewOrderDelayMicros:    400,
		RemoteItemProbability:  1.0,
		Seed:                   7,
	})
	for i := 0; i < 200; i++ {
		req := g.NewOrder()
		delay := req.Args[6].(int64)
		if delay < 300 || delay > 400 {
			t.Fatalf("delay out of range: %d", delay)
		}
	}
}

func TestStandardMixRunsAcrossDeployments(t *testing.T) {
	p := testParams(2)
	deployments := map[string]engine.Config{
		"shared-nothing":             engine.NewSharedNothing(2),
		"shared-everything-affinity": engine.NewSharedEverythingWithAffinity(2),
		"shared-everything-roundrob": engine.NewSharedEverythingWithoutAffinity(2),
	}
	for name, cfg := range deployments {
		t.Run(name, func(t *testing.T) {
			db := open(t, p, cfg)
			var wg sync.WaitGroup
			for w := 1; w <= 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					g := NewGenerator(GeneratorConfig{
						Params:                   p,
						HomeWarehouse:            w,
						Mix:                      StandardMix(),
						RemoteItemProbability:    0.1,
						RemotePaymentProbability: 0.15,
						Seed:                     int64(w),
					})
					for i := 0; i < 60; i++ {
						req := g.Next()
						_, err := db.Execute(req.Reactor, req.Procedure, req.Args...)
						if err != nil && !errors.Is(err, engine.ErrConflict) && !core.IsUserAbort(err) {
							t.Errorf("%s failed: %v", req.Procedure, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			committed, _ := db.Stats()
			if committed == 0 {
				t.Fatalf("no transaction committed")
			}
		})
	}
}

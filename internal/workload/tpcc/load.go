package tpcc

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/rel"
)

// Params scales the TPC-C database. The TPC-C specification uses 3,000
// customers per district and 100,000 items; the defaults here are smaller so
// that loading stays fast on a single-core host — the paper's results depend
// on warehouse count and cross-warehouse access probabilities, not on the raw
// table cardinalities. Use SpecParams for specification-sized tables.
type Params struct {
	// Warehouses is the scale factor: the number of warehouse reactors.
	Warehouses int
	// CustomersPerDistrict is the number of customers in each district.
	CustomersPerDistrict int
	// Items is the size of the item and stock relations.
	Items int
}

// DefaultParams returns the scaled-down sizing used by the experiment drivers.
func DefaultParams(warehouses int) Params {
	return Params{Warehouses: warehouses, CustomersPerDistrict: 120, Items: 1000}
}

// SpecParams returns the full TPC-C sizing.
func SpecParams(warehouses int) Params {
	return Params{Warehouses: warehouses, CustomersPerDistrict: 3000, Items: 100000}
}

// NewDefinition declares the Warehouse type and p.Warehouses warehouse
// reactors.
func NewDefinition(p Params) *core.DatabaseDef {
	def := core.NewDatabaseDef()
	def.MustAddType(Type())
	for w := 1; w <= p.Warehouses; w++ {
		def.MustDeclareReactor(ReactorName(w), TypeName)
	}
	return def
}

// Load populates all warehouse reactors of the database.
func Load(db *engine.Database, p Params) error {
	for w := 1; w <= p.Warehouses; w++ {
		if err := loadWarehouse(db, p, w); err != nil {
			return err
		}
	}
	return nil
}

func loadWarehouse(db *engine.Database, p Params, w int) error {
	name := ReactorName(w)
	rng := randutil.New(int64(w) * 7919)
	if err := db.Load(name, RelWarehouse, rel.Row{int64(w), fmt.Sprintf("WH%04d", w), 0.1, 0.0}); err != nil {
		return err
	}
	for i := 1; i <= p.Items; i++ {
		price := 1.0 + float64(randutil.UniformInt(rng, 0, 9900))/100
		if err := db.Load(name, RelItem, rel.Row{int64(i), fmt.Sprintf("item-%06d", i), price, randutil.AlphaString(rng, 8, 16)}); err != nil {
			return err
		}
		if err := db.Load(name, RelStock, rel.Row{
			int64(i), int64(randutil.UniformInt(rng, 10, 100)), int64(0), int64(0), int64(0),
			randutil.AlphaString(rng, 24, 24)}); err != nil {
			return err
		}
	}
	for d := 1; d <= DistrictsPerWarehouse; d++ {
		nextOID := int64(InitialOrdersPerDistrict + 1)
		if err := db.Load(name, RelDistrict, rel.Row{
			int64(d), fmt.Sprintf("D%02d", d), 0.05, 0.0, nextOID}); err != nil {
			return err
		}
		for c := 1; c <= p.CustomersPerDistrict; c++ {
			last := randutil.LastName((c - 1) % 1000)
			first := fmt.Sprintf("first-%04d", c)
			credit := "GC"
			if rng.Float64() < 0.1 {
				credit = "BC"
			}
			row := rel.Row{
				int64(d), int64(c), first, "OE", last, credit,
				float64(randutil.UniformInt(rng, 0, 50)) / 100.0, // discount
				-10.0, 10.0, int64(1), int64(0),
				randutil.AlphaString(rng, 32, 64),
			}
			if err := db.Load(name, RelCustomer, row); err != nil {
				return err
			}
			if err := db.Load(name, RelCustomerNameIdx, rel.Row{int64(d), last, first, int64(c)}); err != nil {
				return err
			}
		}
		// Preload a few delivered and undelivered orders per district so that
		// order-status, delivery and stock-level have data to work on.
		for o := 1; o <= InitialOrdersPerDistrict; o++ {
			cID := int64(randutil.UniformInt(rng, 1, p.CustomersPerDistrict))
			olCnt := int64(randutil.UniformInt(rng, MinItemsPerOrder, MaxItemsPerOrder))
			undelivered := o > InitialOrdersPerDistrict-10
			carrier := int64(0)
			if !undelivered {
				carrier = int64(randutil.UniformInt(rng, 1, 10))
			}
			if err := db.Load(name, RelOrders, rel.Row{
				int64(d), int64(o), cID, int64(o), carrier, olCnt, true}); err != nil {
				return err
			}
			if err := db.Load(name, RelOrderCustIdx, rel.Row{int64(d), cID, int64(o)}); err != nil {
				return err
			}
			if undelivered {
				if err := db.Load(name, RelNewOrder, rel.Row{int64(d), int64(o)}); err != nil {
					return err
				}
			}
			for ol := int64(1); ol <= olCnt; ol++ {
				itemID := int64(randutil.UniformInt(rng, 1, p.Items))
				if err := db.Load(name, RelOrderLine, rel.Row{
					int64(d), int64(o), ol, itemID, name, int64(5),
					float64(randutil.UniformInt(rng, 1, 9999)) / 100.0,
					randutil.AlphaString(rng, 24, 24), int64(o)}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Mix is a transaction mix as percentages (summing to 100).
type Mix struct {
	NewOrder    int
	Payment     int
	OrderStatus int
	Delivery    int
	StockLevel  int
}

// StandardMix is the TPC-C standard mix used in §4.3.1 and Appendix F.
func StandardMix() Mix {
	return Mix{NewOrder: 45, Payment: 43, OrderStatus: 4, Delivery: 4, StockLevel: 4}
}

// NewOrderOnlyMix is the 100% new-order mix used in §4.3.2 and Appendices D/E.
func NewOrderOnlyMix() Mix {
	return Mix{NewOrder: 100}
}

// GeneratorConfig controls input generation for one client worker.
type GeneratorConfig struct {
	// Params must match the loaded database.
	Params Params
	// HomeWarehouse is the warehouse this worker generates load for (client
	// affinity to a warehouse, §4.1.3). 1-based.
	HomeWarehouse int
	// Mix is the transaction mix.
	Mix Mix
	// RemoteItemProbability is the probability that a single new-order item is
	// supplied by a remote warehouse (TPC-C standard: 0.01; Appendix E varies
	// it from 0 to 1).
	RemoteItemProbability float64
	// RemotePaymentProbability is the probability that the paying customer
	// belongs to a remote warehouse (TPC-C standard: 0.15).
	RemotePaymentProbability float64
	// NewOrderDelayMicros adds the stock replenishment delay of §4.3.2 (a
	// uniform value in [300,400]µs when set to a positive upper bound range;
	// zero disables the delay). The concrete delay per transaction is drawn in
	// [NewOrderDelayMinMicros, NewOrderDelayMicros].
	NewOrderDelayMinMicros int64
	NewOrderDelayMicros    int64
	// SyncStockUpdates makes generated new-order transactions await every
	// stock-update sub-transaction immediately (the shared-nothing-sync
	// program formulation of §3.3).
	SyncStockUpdates bool
	// Seed seeds the worker's deterministic random stream.
	Seed int64
}

// Request is one generated transaction invocation.
type Request struct {
	Reactor   string
	Procedure string
	Args      []any
}

// generatorInstances numbers generator instances so that history nonces stay
// unique even when several measurement runs create generators with the same
// seed against the same loaded database.
var generatorInstances atomic.Int64

// Generator produces TPC-C transaction inputs for one client worker.
type Generator struct {
	cfg       GeneratorConfig
	rng       *rand.Rand
	nonceBase int64
	nonce     int64
}

// NewGenerator builds a generator; it panics if the configuration is invalid.
func NewGenerator(cfg GeneratorConfig) *Generator {
	if cfg.HomeWarehouse < 1 || cfg.HomeWarehouse > cfg.Params.Warehouses {
		panic(fmt.Sprintf("tpcc: home warehouse %d out of range", cfg.HomeWarehouse))
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = StandardMix()
	}
	return &Generator{
		cfg:       cfg,
		rng:       randutil.New(cfg.Seed),
		nonceBase: generatorInstances.Add(1) * 10_000_000,
	}
}

// home returns the worker's home warehouse reactor name.
func (g *Generator) home() string { return ReactorName(g.cfg.HomeWarehouse) }

// remoteWarehouse picks a warehouse different from home, uniformly; with a
// single warehouse it returns home.
func (g *Generator) remoteWarehouse() string {
	if g.cfg.Params.Warehouses <= 1 {
		return g.home()
	}
	for {
		w := randutil.UniformInt(g.rng, 1, g.cfg.Params.Warehouses)
		if w != g.cfg.HomeWarehouse {
			return ReactorName(w)
		}
	}
}

func (g *Generator) customerID() int64 {
	c := randutil.NURandCustomerID(g.rng)
	return int64((c-1)%g.cfg.Params.CustomersPerDistrict + 1)
}

// lastName picks a last name that is guaranteed to exist in the loaded
// database: the loader assigns last names by (c-1) mod 1000, so valid indices
// are bounded by the per-district customer count.
func (g *Generator) lastName() string {
	bound := g.cfg.Params.CustomersPerDistrict
	if bound > 1000 {
		bound = 1000
	}
	return randutil.LastName(randutil.NURandLastNameIndex(g.rng) % bound)
}

func (g *Generator) itemID() int64 {
	i := randutil.NURandItemID(g.rng)
	return int64((i-1)%g.cfg.Params.Items + 1)
}

// Next generates the next transaction request according to the mix.
func (g *Generator) Next() Request {
	p := randutil.UniformInt(g.rng, 1, 100)
	m := g.cfg.Mix
	switch {
	case p <= m.NewOrder:
		return g.newOrder()
	case p <= m.NewOrder+m.Payment:
		return g.payment()
	case p <= m.NewOrder+m.Payment+m.OrderStatus:
		return g.orderStatus()
	case p <= m.NewOrder+m.Payment+m.OrderStatus+m.Delivery:
		return g.delivery()
	default:
		return g.stockLevel()
	}
}

// NewOrder generates a new-order request explicitly (used by the 100%
// new-order experiments regardless of the configured mix).
func (g *Generator) NewOrder() Request { return g.newOrder() }

func (g *Generator) newOrder() Request {
	dID := int64(randutil.UniformInt(g.rng, 1, DistrictsPerWarehouse))
	cID := g.customerID()
	nItems := randutil.UniformInt(g.rng, MinItemsPerOrder, MaxItemsPerOrder)
	itemIDs := make([]int64, 0, nItems)
	supplyWs := make([]string, 0, nItems)
	quantities := make([]int64, 0, nItems)
	seen := make(map[int64]bool, nItems)
	remoteUsed := make(map[string]bool)
	for len(itemIDs) < nItems {
		id := g.itemID()
		if seen[id] {
			continue
		}
		seen[id] = true
		supply := g.home()
		if g.rng.Float64() < g.cfg.RemoteItemProbability {
			supply = g.remoteWarehouse()
		}
		itemIDs = append(itemIDs, id)
		supplyWs = append(supplyWs, supply)
		quantities = append(quantities, int64(randutil.UniformInt(g.rng, 1, 10)))
		remoteUsed[supply] = true
	}
	// TPC-C: 1% of new-order transactions contain an unused item id and abort.
	if g.rng.Float64() < 0.01 {
		itemIDs[len(itemIDs)-1] = -1
	}
	delay := int64(0)
	if g.cfg.NewOrderDelayMicros > 0 {
		lo := g.cfg.NewOrderDelayMinMicros
		if lo <= 0 {
			lo = g.cfg.NewOrderDelayMicros
		}
		delay = int64(randutil.UniformInt(g.rng, int(lo), int(g.cfg.NewOrderDelayMicros)))
	}
	g.nonce++
	return Request{
		Reactor:   g.home(),
		Procedure: ProcNewOrder,
		Args:      []any{dID, cID, itemIDs, supplyWs, quantities, g.nonce, delay, g.cfg.SyncStockUpdates},
	}
}

func (g *Generator) payment() Request {
	dID := int64(randutil.UniformInt(g.rng, 1, DistrictsPerWarehouse))
	amount := float64(randutil.UniformInt(g.rng, 100, 500000)) / 100.0
	custWarehouse := g.home()
	if g.rng.Float64() < g.cfg.RemotePaymentProbability {
		custWarehouse = g.remoteWarehouse()
	}
	cDID := int64(randutil.UniformInt(g.rng, 1, DistrictsPerWarehouse))
	byName := g.rng.Float64() < 0.6
	cID := g.customerID()
	cLast := g.lastName()
	g.nonce++
	nonce := g.nonceBase + g.nonce
	return Request{
		Reactor:   g.home(),
		Procedure: ProcPayment,
		Args:      []any{dID, amount, custWarehouse, cDID, byName, cID, cLast, nonce},
	}
}

func (g *Generator) orderStatus() Request {
	dID := int64(randutil.UniformInt(g.rng, 1, DistrictsPerWarehouse))
	byName := g.rng.Float64() < 0.6
	cID := g.customerID()
	cLast := g.lastName()
	return Request{
		Reactor:   g.home(),
		Procedure: ProcOrderStatus,
		Args:      []any{dID, byName, cID, cLast},
	}
}

func (g *Generator) delivery() Request {
	g.nonce++
	return Request{
		Reactor:   g.home(),
		Procedure: ProcDelivery,
		Args:      []any{int64(randutil.UniformInt(g.rng, 1, 10)), g.nonce},
	}
}

func (g *Generator) stockLevel() Request {
	return Request{
		Reactor:   g.home(),
		Procedure: ProcStockLevel,
		Args:      []any{int64(randutil.UniformInt(g.rng, 1, DistrictsPerWarehouse)), int64(randutil.UniformInt(g.rng, 10, 20))},
	}
}

package exchange

import (
	"testing"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

func smallParams() Params {
	p := DefaultParams()
	p.Providers = 3
	p.OrdersPerProvider = 20
	return p
}

func open(t testing.TB, p Params, cfg engine.Config) *engine.Database {
	t.Helper()
	db, err := engine.Open(NewDefinition(p), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := Load(db, p); err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

func shardedConfig(p Params) engine.Config {
	cfg := engine.NewSharedNothing(p.Providers + 1)
	cfg.Placement = Placement(p.Providers + 1)
	return cfg
}

func authArgs(provider string) []any {
	// provider, wallet, value, now, simNumbers, window
	return []any{provider, int64(42), 10.0, int64(100), int64(10), int64(0)}
}

func TestAuthPayStrategiesCommitAndAddOrder(t *testing.T) {
	p := smallParams()
	for _, s := range Strategies() {
		t.Run(string(s), func(t *testing.T) {
			db := open(t, p, shardedConfig(p))
			before := db.TableLen(ProviderName(1), RelOrders)
			v, err := db.Execute(ExchangeReactor, ProcedureFor(s), authArgs(ProviderName(1))...)
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			if v.(float64) < 0 {
				t.Fatalf("total risk should be non-negative, got %v", v)
			}
			after := db.TableLen(ProviderName(1), RelOrders)
			if after != before+1 {
				t.Fatalf("order not added: before=%d after=%d", before, after)
			}
			// The new order must be unsettled and carry the requested value.
			row, err := db.ReadRow(ProviderName(1), RelOrders, int64(p.OrdersPerProvider))
			if err != nil || row == nil {
				t.Fatalf("new order row missing: %v %v", row, err)
			}
			if row.Bool(3) || row.Float64(2) != 10.0 {
				t.Fatalf("new order wrong: %v", row)
			}
			// provider_info risk caches were refreshed for every provider.
			for i := 0; i < p.Providers; i++ {
				info, err := db.ReadRow(ProviderName(i), RelProviderInfo, int64(0))
				if err != nil || info == nil {
					t.Fatalf("provider_info missing: %v", err)
				}
				if info.Int64(2) != 100 {
					t.Fatalf("risk cache timestamp not refreshed on %s", ProviderName(i))
				}
			}
		})
	}
}

func TestAuthPayAbortsWhenProviderExposureExceedsLimit(t *testing.T) {
	p := smallParams()
	p.PerProviderLimit = 1.0 // 10 unsettled orders of value 1.0 -> exposure 10 > 1
	db := open(t, p, shardedConfig(p))
	_, err := db.Execute(ExchangeReactor, ProcAuthPay, authArgs(ProviderName(0))...)
	if !core.IsUserAbort(err) {
		t.Fatalf("expected abort on provider exposure, got %v", err)
	}
	// The target provider gained no order and no risk cache changed.
	if got := db.TableLen(ProviderName(0), RelOrders); got != p.OrdersPerProvider {
		t.Fatalf("aborted auth_pay added an order")
	}
	info, _ := db.ReadRow(ProviderName(1), RelProviderInfo, int64(0))
	if info.Int64(2) != -1 {
		t.Fatalf("aborted auth_pay leaked a provider_info update")
	}
}

func TestAuthPayAbortsWhenGlobalRiskExceeded(t *testing.T) {
	p := smallParams()
	p.GlobalRiskLimit = 0.0001
	db := open(t, p, shardedConfig(p))
	_, err := db.Execute(ExchangeReactor, ProcAuthPay, authArgs(ProviderName(0))...)
	if !core.IsUserAbort(err) {
		t.Fatalf("expected abort on global risk, got %v", err)
	}
}

func TestRiskCacheAvoidsSimRiskWithinWindow(t *testing.T) {
	p := smallParams()
	p.CacheWindow = 1000 // long window: second call must reuse the cached risk
	db := open(t, p, shardedConfig(p))
	if _, err := db.Execute(ExchangeReactor, ProcAuthPay, authArgs(ProviderName(0))...); err != nil {
		t.Fatalf("first auth_pay: %v", err)
	}
	infoBefore, _ := db.ReadRow(ProviderName(1), RelProviderInfo, int64(0))
	// A later call within the window must not change the cached risk value.
	args := []any{ProviderName(0), int64(7), 5.0, int64(200), int64(10), int64(0)}
	if _, err := db.Execute(ExchangeReactor, ProcAuthPay, args...); err != nil {
		t.Fatalf("second auth_pay: %v", err)
	}
	infoAfter, _ := db.ReadRow(ProviderName(1), RelProviderInfo, int64(0))
	if infoBefore.Float64(1) != infoAfter.Float64(1) || infoAfter.Int64(2) != infoBefore.Int64(2) {
		t.Fatalf("cached risk should not be recomputed within the window")
	}
}

func TestSettleWindowMarksOrders(t *testing.T) {
	p := smallParams()
	db := open(t, p, shardedConfig(p))
	v, err := db.Execute(ProviderName(0), ProcSettle, int64(5))
	if err != nil {
		t.Fatalf("settle: %v", err)
	}
	if v.(int64) != 5 {
		t.Fatalf("settled %v orders, want 5", v)
	}
}

func TestAddEntryAssignsIncreasingOrderIDs(t *testing.T) {
	p := smallParams()
	db := open(t, p, shardedConfig(p))
	first, err := db.Execute(ProviderName(2), ProcAddEntry, int64(1), 3.0)
	if err != nil {
		t.Fatalf("add_entry: %v", err)
	}
	second, err := db.Execute(ProviderName(2), ProcAddEntry, int64(1), 4.0)
	if err != nil {
		t.Fatalf("add_entry: %v", err)
	}
	if second.(int64) != first.(int64)+1 {
		t.Fatalf("order ids not increasing: %v then %v", first, second)
	}
}

func TestPlacementSpreadsProvidersAcrossContainers(t *testing.T) {
	place := Placement(4)
	if place(ExchangeReactor) != 0 {
		t.Fatalf("exchange must live on container 0")
	}
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		idx := place(ProviderName(i))
		if idx <= 0 || idx >= 4 {
			t.Fatalf("provider placement out of range: %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("providers should use all non-exchange containers, got %v", seen)
	}
	if Placement(1)(ProviderName(0)) != 0 {
		t.Fatalf("single-container placement should map everything to 0")
	}
}

func TestDefaultParamsMatchAppendixG(t *testing.T) {
	p := DefaultParams()
	if p.Providers != 15 || p.OrdersPerProvider != 30000 {
		t.Fatalf("defaults should mirror Appendix G: %+v", p)
	}
	if len(Strategies()) != 3 {
		t.Fatalf("three strategies expected")
	}
	if ProcedureFor(Sequential) != ProcAuthPaySequential ||
		ProcedureFor(QueryParallelism) != ProcAuthPayQueryParallel ||
		ProcedureFor(ProcedureParallelism) != ProcAuthPay {
		t.Fatalf("strategy to procedure mapping wrong")
	}
}

func TestSchemasWellFormed(t *testing.T) {
	for _, s := range append(ExchangeSchemas(), ProviderSchemas()...) {
		if s.Name() == "" || s.NumColumns() == 0 {
			t.Fatalf("bad schema %v", s)
		}
	}
	// The orders schema must accept the loader's row shape.
	orders := ProviderSchemas()[1]
	if _, err := orders.EncodeRow(rel.Row{int64(1), int64(2), 3.0, true}); err != nil {
		t.Fatalf("orders row encode: %v", err)
	}
}

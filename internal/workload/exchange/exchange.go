// Package exchange implements the digital currency exchange application used
// as the paper's running example (Figure 1) and evaluated in Appendix G: an
// Exchange reactor authorizes payments against per-provider risk-adjusted
// exposure limits computed by Provider reactors.
//
// Three program execution strategies are provided, matching Appendix G:
//
//   - sequential: the classic single-procedure formulation (Figure 1a), with
//     exposure aggregation and risk simulation executed one provider at a time
//     from the Exchange reactor via synchronous calls;
//   - query-parallelism: the per-provider exposure aggregation (the join of
//     providers and orders) runs in parallel across Provider reactors, but the
//     expensive sim_risk computation still runs sequentially on the Exchange;
//   - procedure-parallelism: the reactor formulation of Figure 1b, where each
//     Provider computes calc_risk (aggregation + sim_risk) asynchronously.
package exchange

import (
	"fmt"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// Reactor type names.
const (
	ExchangeTypeName = "Exchange"
	ProviderTypeName = "Provider"
)

// ExchangeReactor is the name of the single exchange reactor.
const ExchangeReactor = "exchange"

// Relation names.
const (
	RelSettlementRisk = "settlement_risk"
	RelProviderNames  = "provider_names"
	RelProviderInfo   = "provider_info"
	RelOrders         = "orders"
	RelOrderSeq       = "order_seq"
)

// Procedure names.
const (
	// Exchange procedures.
	ProcAuthPay              = "auth_pay"                // procedure-parallelism (Figure 1b)
	ProcAuthPaySequential    = "auth_pay_sequential"     // sequential strategy
	ProcAuthPayQueryParallel = "auth_pay_query_parallel" // query-parallelism strategy
	// Provider procedures.
	ProcCalcRisk = "calc_risk"
	ProcExposure = "exposure"
	ProcSimRisk  = "sim_risk_update"
	ProcAddEntry = "add_entry"
	ProcSettle   = "settle_window"
)

// SimRiskUnit is the simulated cost of generating one random number in
// sim_risk. Appendix G varies the number of random numbers per provider from
// 10^1 to 10^6; the virtual-core work is numbers × SimRiskUnit.
const SimRiskUnit = 100 * time.Nanosecond

// Strategy names the program execution strategies of Appendix G.
type Strategy string

// Strategies compared in Figure 19.
const (
	Sequential           Strategy = "sequential"
	QueryParallelism     Strategy = "query-parallelism"
	ProcedureParallelism Strategy = "procedure-parallelism"
)

// Strategies lists the strategies in the order the paper plots them.
func Strategies() []Strategy {
	return []Strategy{QueryParallelism, ProcedureParallelism, Sequential}
}

// ProcedureFor returns the Exchange procedure implementing the strategy.
func ProcedureFor(s Strategy) string {
	switch s {
	case Sequential:
		return ProcAuthPaySequential
	case QueryParallelism:
		return ProcAuthPayQueryParallel
	default:
		return ProcAuthPay
	}
}

// ProviderName returns the reactor name of provider i.
func ProviderName(i int) string { return fmt.Sprintf("provider-%02d", i) }

// ExchangeSchemas returns the relations of the Exchange reactor.
func ExchangeSchemas() []*rel.Schema {
	return []*rel.Schema{
		rel.MustSchema(RelSettlementRisk,
			[]rel.Column{
				{Name: "id", Type: rel.Int64},
				{Name: "p_exposure", Type: rel.Float64},
				{Name: "g_risk", Type: rel.Float64},
			}, "id"),
		rel.MustSchema(RelProviderNames,
			[]rel.Column{{Name: "value", Type: rel.String}}, "value"),
	}
}

// ProviderSchemas returns the relations of a Provider reactor.
func ProviderSchemas() []*rel.Schema {
	return []*rel.Schema{
		rel.MustSchema(RelProviderInfo,
			[]rel.Column{
				{Name: "id", Type: rel.Int64},
				{Name: "risk", Type: rel.Float64},
				{Name: "time", Type: rel.Int64},
				{Name: "window", Type: rel.Int64},
			}, "id"),
		rel.MustSchema(RelOrders,
			[]rel.Column{
				{Name: "order_id", Type: rel.Int64},
				{Name: "wallet", Type: rel.Int64},
				{Name: "value", Type: rel.Float64},
				{Name: "settled", Type: rel.Bool},
			}, "order_id"),
		rel.MustSchema(RelOrderSeq,
			[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "next", Type: rel.Int64}}, "id"),
	}
}

// unsettledExposure sums the value of unsettled orders over the most recent
// scanWindow orders (a reverse range scan ordered by order id, mirroring the
// pre-configured settlement window of Appendix G). scanWindow <= 0 scans all.
func unsettledExposure(ctx core.Context, scanWindow int) (float64, error) {
	exposure := 0.0
	seen := 0
	err := ctx.ScanDesc(RelOrders, func(row rel.Row) bool {
		if !row.Bool(3) {
			exposure += row.Float64(2)
		}
		seen++
		return scanWindow <= 0 || seen < scanWindow
	})
	return exposure, err
}

// simRisk models the expensive, potentially nondeterministic risk calculation
// of the example: proportional virtual-core work plus a pseudo-random
// adjustment.
func simRisk(ctx core.Context, exposure float64, numbers int64) float64 {
	ctx.Work(time.Duration(numbers) * SimRiskUnit)
	return exposure * (0.9 + 0.2*ctx.Rand().Float64())
}

// ProviderType builds the Provider reactor type.
func ProviderType() *core.Type {
	t := core.NewType(ProviderTypeName)
	for _, s := range ProviderSchemas() {
		t.AddRelation(s)
	}

	// exposure returns the unsettled exposure of this provider, aborting if it
	// exceeds the per-provider limit (application rule 1 of the example).
	t.AddProcedure(ProcExposure, func(ctx core.Context, args core.Args) (any, error) {
		pExposure := args.Float64(0)
		window := int(args.Int64(1))
		exposure, err := unsettledExposure(ctx, window)
		if err != nil {
			return nil, err
		}
		if exposure > pExposure {
			return nil, core.Abortf("provider %s exposure %.2f above limit %.2f", ctx.Reactor(), exposure, pExposure)
		}
		return exposure, nil
	})

	// calc_risk is the Figure 1b procedure: exposure check plus (if the cached
	// risk is stale) the sim_risk recomputation and provider_info update.
	t.AddProcedure(ProcCalcRisk, func(ctx core.Context, args core.Args) (any, error) {
		pExposure := args.Float64(0)
		now := args.Int64(1)
		simNumbers := args.Int64(2)
		window := int(args.Int64(3))

		exposure, err := unsettledExposure(ctx, window)
		if err != nil {
			return nil, err
		}
		if exposure > pExposure {
			return nil, core.Abortf("provider %s exposure %.2f above limit %.2f", ctx.Reactor(), exposure, pExposure)
		}
		info, err := ctx.Get(RelProviderInfo, int64(0))
		if err != nil {
			return nil, err
		}
		if info == nil {
			return nil, core.Abortf("provider %s not initialized", ctx.Reactor())
		}
		risk := info.Float64(1)
		cachedAt := info.Int64(2)
		cacheWindow := info.Int64(3)
		if cachedAt < now-cacheWindow {
			risk = simRisk(ctx, exposure, simNumbers)
			if err := ctx.Update(RelProviderInfo, rel.Row{int64(0), risk, now, cacheWindow}); err != nil {
				return nil, err
			}
		}
		return risk, nil
	})

	// sim_risk_update recomputes and stores the risk for a given exposure; the
	// query-parallelism strategy calls it after computing sim_risk centrally.
	t.AddProcedure(ProcSimRisk, func(ctx core.Context, args core.Args) (any, error) {
		risk := args.Float64(0)
		now := args.Int64(1)
		info, err := ctx.Get(RelProviderInfo, int64(0))
		if err != nil {
			return nil, err
		}
		if info == nil {
			return nil, core.Abortf("provider %s not initialized", ctx.Reactor())
		}
		return nil, ctx.Update(RelProviderInfo, rel.Row{int64(0), risk, now, info.Int64(3)})
	})

	// add_entry appends an unsettled order for the wallet.
	t.AddProcedure(ProcAddEntry, func(ctx core.Context, args core.Args) (any, error) {
		wallet := args.Int64(0)
		value := args.Float64(1)
		seq, err := ctx.Get(RelOrderSeq, int64(0))
		if err != nil {
			return nil, err
		}
		if seq == nil {
			return nil, core.Abortf("provider %s not initialized", ctx.Reactor())
		}
		next := seq.Int64(1)
		if err := ctx.Update(RelOrderSeq, rel.Row{int64(0), next + 1}); err != nil {
			return nil, err
		}
		return next, ctx.Insert(RelOrders, rel.Row{next, wallet, value, false})
	})

	// settle_window marks the oldest numOrders unsettled orders as settled,
	// modeling the separate settlement transaction of Appendix G.
	t.AddProcedure(ProcSettle, func(ctx core.Context, args core.Args) (any, error) {
		numOrders := int(args.Int64(0))
		var toSettle []rel.Row
		err := ctx.Scan(RelOrders, func(row rel.Row) bool {
			if !row.Bool(3) {
				toSettle = append(toSettle, row)
			}
			return len(toSettle) < numOrders
		})
		if err != nil {
			return nil, err
		}
		for _, row := range toSettle {
			if err := ctx.Update(RelOrders, rel.Row{row.Int64(0), row.Int64(1), row.Float64(2), true}); err != nil {
				return nil, err
			}
		}
		return int64(len(toSettle)), nil
	})

	return t
}

// ExchangeType builds the Exchange reactor type with the three auth_pay
// strategies.
func ExchangeType() *core.Type {
	t := core.NewType(ExchangeTypeName)
	for _, s := range ExchangeSchemas() {
		t.AddRelation(s)
	}

	// readLimits returns (p_exposure, g_risk) from settlement_risk.
	readLimits := func(ctx core.Context) (float64, float64, error) {
		row, err := ctx.Get(RelSettlementRisk, int64(0))
		if err != nil {
			return 0, 0, err
		}
		if row == nil {
			return 0, 0, core.Abortf("settlement_risk not initialized")
		}
		return row.Float64(1), row.Float64(2), nil
	}

	providerList := func(ctx core.Context) ([]string, error) {
		var names []string
		err := ctx.Scan(RelProviderNames, func(row rel.Row) bool {
			names = append(names, row.String(0))
			return true
		})
		return names, err
	}

	finish := func(ctx core.Context, totalRisk, gRisk, value float64, provider string, wallet int64) (any, error) {
		if totalRisk+value >= gRisk {
			return nil, core.Abortf("total risk %.2f + %.2f exceeds global limit %.2f", totalRisk, value, gRisk)
		}
		if _, err := ctx.Call(provider, ProcAddEntry, wallet, value); err != nil {
			return nil, err
		}
		return totalRisk, nil
	}

	// auth_pay: procedure-parallelism (Figure 1b). Arguments: provider name,
	// wallet, value, now, simNumbers, scanWindow.
	t.AddProcedure(ProcAuthPay, func(ctx core.Context, args core.Args) (any, error) {
		provider, wallet, value := args.String(0), args.Int64(1), args.Float64(2)
		now, simNumbers, window := args.Int64(3), args.Int64(4), args.Int64(5)
		pExposure, gRisk, err := readLimits(ctx)
		if err != nil {
			return nil, err
		}
		names, err := providerList(ctx)
		if err != nil {
			return nil, err
		}
		futures := make([]*core.Future, 0, len(names))
		for _, name := range names {
			fut, err := ctx.Call(name, ProcCalcRisk, pExposure, now, simNumbers, window)
			if err != nil {
				return nil, err
			}
			futures = append(futures, fut)
		}
		totalRisk := 0.0
		for _, fut := range futures {
			risk, err := fut.GetFloat64()
			if err != nil {
				return nil, err
			}
			totalRisk += risk
		}
		return finish(ctx, totalRisk, gRisk, value, provider, wallet)
	})

	// auth_pay_sequential: the classic formulation of Figure 1a expressed as
	// synchronous per-provider calls; with the whole database deployed in a
	// single container and executor this runs entirely sequentially.
	t.AddProcedure(ProcAuthPaySequential, func(ctx core.Context, args core.Args) (any, error) {
		provider, wallet, value := args.String(0), args.Int64(1), args.Float64(2)
		now, simNumbers, window := args.Int64(3), args.Int64(4), args.Int64(5)
		pExposure, gRisk, err := readLimits(ctx)
		if err != nil {
			return nil, err
		}
		names, err := providerList(ctx)
		if err != nil {
			return nil, err
		}
		totalRisk := 0.0
		for _, name := range names {
			risk, err := ctx.CallSync(name, ProcCalcRisk, pExposure, now, simNumbers, window)
			if err != nil {
				return nil, err
			}
			totalRisk += risk.(float64)
		}
		return finish(ctx, totalRisk, gRisk, value, provider, wallet)
	})

	// auth_pay_query_parallel: the exposure aggregation (the join) runs in
	// parallel across providers, but sim_risk runs sequentially on the
	// Exchange reactor's executor, as a query optimizer parallelizing only the
	// join of Figure 1a would achieve.
	t.AddProcedure(ProcAuthPayQueryParallel, func(ctx core.Context, args core.Args) (any, error) {
		provider, wallet, value := args.String(0), args.Int64(1), args.Float64(2)
		now, simNumbers, window := args.Int64(3), args.Int64(4), args.Int64(5)
		pExposure, gRisk, err := readLimits(ctx)
		if err != nil {
			return nil, err
		}
		names, err := providerList(ctx)
		if err != nil {
			return nil, err
		}
		futures := make([]*core.Future, 0, len(names))
		for _, name := range names {
			fut, err := ctx.Call(name, ProcExposure, pExposure, window)
			if err != nil {
				return nil, err
			}
			futures = append(futures, fut)
		}
		totalRisk := 0.0
		updates := make([]*core.Future, 0, len(names))
		for i, fut := range futures {
			exposure, err := fut.GetFloat64()
			if err != nil {
				return nil, err
			}
			// sim_risk executed centrally, one provider at a time.
			risk := simRisk(ctx, exposure, simNumbers)
			upd, err := ctx.Call(names[i], ProcSimRisk, risk, now)
			if err != nil {
				return nil, err
			}
			updates = append(updates, upd)
			totalRisk += risk
		}
		// Synchronize on the risk-cache updates before booking the order on the
		// paying provider; otherwise the add_entry sub-transaction could reach
		// a provider whose update is still active, which the §2.2.4 safety
		// condition would (correctly) abort.
		if err := core.WaitAll(updates...); err != nil {
			return nil, err
		}
		return finish(ctx, totalRisk, gRisk, value, provider, wallet)
	})

	return t
}

// Params configure the loaded exchange database.
type Params struct {
	Providers         int
	OrdersPerProvider int
	OrderValue        float64
	PerProviderLimit  float64 // p_exposure
	GlobalRiskLimit   float64 // g_risk
	CacheWindow       int64   // provider_info window (time units)
}

// DefaultParams mirror the Appendix G setup: 15 providers, 30,000 orders per
// provider, limits loaded so that sim_risk is always invoked and transactions
// never abort for application reasons.
func DefaultParams() Params {
	return Params{
		Providers:         15,
		OrdersPerProvider: 30000,
		OrderValue:        1.0,
		PerProviderLimit:  1e12,
		GlobalRiskLimit:   1e15,
		CacheWindow:       0, // always stale: sim_risk runs on every auth_pay
	}
}

// NewDefinition declares the Exchange reactor plus p.Providers provider
// reactors.
func NewDefinition(p Params) *core.DatabaseDef {
	def := core.NewDatabaseDef()
	def.MustAddType(ExchangeType())
	def.MustAddType(ProviderType())
	def.MustDeclareReactor(ExchangeReactor, ExchangeTypeName)
	for i := 0; i < p.Providers; i++ {
		def.MustDeclareReactor(ProviderName(i), ProviderTypeName)
	}
	return def
}

// Placement maps the Exchange reactor to container 0 and provider i to
// container (i+1) mod containers, so that with containers == providers+1 each
// reactor gets its own executor, as in Appendix G.
func Placement(containers int) func(reactor string) int {
	return func(reactor string) int {
		if reactor == ExchangeReactor {
			return 0
		}
		var i int
		if _, err := fmt.Sscanf(reactor, "provider-%d", &i); err != nil {
			return 0
		}
		if containers <= 1 {
			return 0
		}
		return 1 + i%(containers-1)
	}
}

// Load populates the exchange and provider reactors.
func Load(db *engine.Database, p Params) error {
	if err := db.Load(ExchangeReactor, RelSettlementRisk, rel.Row{int64(0), p.PerProviderLimit, p.GlobalRiskLimit}); err != nil {
		return err
	}
	for i := 0; i < p.Providers; i++ {
		name := ProviderName(i)
		if err := db.Load(ExchangeReactor, RelProviderNames, rel.Row{name}); err != nil {
			return err
		}
		if err := db.Load(name, RelProviderInfo, rel.Row{int64(0), 0.0, int64(-1), p.CacheWindow}); err != nil {
			return err
		}
		if err := db.Load(name, RelOrderSeq, rel.Row{int64(0), int64(p.OrdersPerProvider)}); err != nil {
			return err
		}
		for o := 0; o < p.OrdersPerProvider; o++ {
			settled := o%2 == 0
			if err := db.Load(name, RelOrders, rel.Row{int64(o), int64(o % 1000), p.OrderValue, settled}); err != nil {
				return err
			}
		}
	}
	return nil
}

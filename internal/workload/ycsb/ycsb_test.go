package ycsb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
)

func open(t testing.TB, keys, containers int) *engine.Database {
	t.Helper()
	cfg := engine.NewSharedNothing(containers)
	cfg.Placement = RangePlacement((keys + containers - 1) / containers)
	db, err := engine.Open(NewDefinition(keys), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := Load(db, keys); err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestReadModifyWrite(t *testing.T) {
	db := open(t, 4, 2)
	for i := 0; i < 3; i++ {
		if _, err := db.Execute(ReactorName(1), ProcReadModifyWrite); err != nil {
			t.Fatalf("rmw: %v", err)
		}
	}
	v, err := db.Execute(ReactorName(1), ProcRead)
	if err != nil || v.(int64) != 3 {
		t.Fatalf("read = (%v, %v), want 3", v, err)
	}
}

func TestMultiUpdateAppliesAllKeys(t *testing.T) {
	db := open(t, 20, 4)
	keys := []string{ReactorName(2), ReactorName(7), ReactorName(12), ReactorName(19)}
	// Invoke on one of the keys, remote keys first (Appendix C ordering).
	home := ReactorName(19)
	var ordered []string
	for _, k := range keys {
		if k != home {
			ordered = append(ordered, k)
		}
	}
	ordered = append(ordered, home)
	if _, err := db.Execute(home, ProcMultiUpdate, ordered); err != nil {
		t.Fatalf("multi_update: %v", err)
	}
	total, err := TotalVersion(db, 20)
	if err != nil || total != int64(len(keys)) {
		t.Fatalf("TotalVersion = (%d, %v), want %d", total, err, len(keys))
	}
}

func TestMultiUpdateDuplicateKeyTriggersSafetyCondition(t *testing.T) {
	db := open(t, 8, 4)
	home := ReactorName(0)
	dup := ReactorName(5)
	_, err := db.Execute(home, ProcMultiUpdate, []string{dup, dup})
	if !errors.Is(err, core.ErrDangerousStructure) {
		t.Fatalf("duplicate remote key should violate the safety condition, got %v", err)
	}
	total, _ := TotalVersion(db, 8)
	if total != 0 {
		t.Fatalf("aborted multi_update leaked updates: %d", total)
	}
}

func TestConcurrentMultiUpdatesVersionsConsistent(t *testing.T) {
	const keys = 16
	db := open(t, keys, 4)
	var wg sync.WaitGroup
	var committedUpdates int64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := randutil.New(seed)
			z := randutil.NewZipfian(keys, 0.6)
			for i := 0; i < 25; i++ {
				seen := map[int]bool{}
				var ids []int
				for len(ids) < 4 {
					k := z.Next(rng)
					if !seen[k] {
						seen[k] = true
						ids = append(ids, k)
					}
				}
				home := ids[len(ids)-1]
				var ordered []string
				sort.Ints(ids)
				for _, id := range ids {
					if id != home {
						ordered = append(ordered, ReactorName(id))
					}
				}
				ordered = append(ordered, ReactorName(home))
				_, err := db.Execute(ReactorName(home), ProcMultiUpdate, ordered)
				if err == nil {
					mu.Lock()
					committedUpdates += int64(len(ordered))
					mu.Unlock()
				} else if !errors.Is(err, engine.ErrConflict) && !errors.Is(err, core.ErrDangerousStructure) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	total, err := TotalVersion(db, keys)
	if err != nil {
		t.Fatal(err)
	}
	if total != committedUpdates {
		t.Fatalf("version sum %d != committed updates %d (atomicity violated)", total, committedUpdates)
	}
	if committedUpdates == 0 {
		t.Fatalf("no multi_update committed")
	}
}

func TestRangePlacement(t *testing.T) {
	p := RangePlacement(10000)
	if p(ReactorName(0)) != 0 || p(ReactorName(9999)) != 0 || p(ReactorName(10000)) != 1 || p(ReactorName(39999)) != 3 {
		t.Fatalf("placement wrong")
	}
	if p("other") != 0 {
		t.Fatalf("non-key reactor should map to container 0")
	}
}

// TestReactorNameMatchesSprintf pins the hand-rolled formatter against the
// fmt.Sprintf("key-%08d") contract it replaced, including ids wider than the
// padding.
func TestReactorNameMatchesSprintf(t *testing.T) {
	for _, id := range []int{0, 1, 7, 99, 12345678, 99999999, 100000000, 2000000001} {
		if got, want := ReactorName(id), fmt.Sprintf("key-%08d", id); got != want {
			t.Fatalf("ReactorName(%d) = %q, want %q", id, got, want)
		}
	}
}

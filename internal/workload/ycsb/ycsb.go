// Package ycsb implements the YCSB-based workload of the paper's Appendix C:
// every key is modeled as a reactor holding a single 100-byte record, and the
// multi_update transaction applies a read-modify-write to 10 keys chosen from
// a zipfian distribution, invoking the update sub-transaction asynchronously
// on every remote key and synchronously on local ones.
package ycsb

import (
	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// TypeName is the reactor type name of a YCSB key.
const TypeName = "YCSBKey"

// RelUserTable is the single-record relation each key reactor encapsulates.
const RelUserTable = "usertable"

// Procedure names.
const (
	ProcReadModifyWrite = "read_modify_write"
	ProcMultiUpdate     = "multi_update"
	ProcRead            = "read"
)

// RecordSize is the payload size in bytes (Appendix C: "record size of 100
// bytes").
const RecordSize = 100

// KeysPerMultiUpdate is the number of keys touched by one multi_update.
const KeysPerMultiUpdate = 10

// ReactorName returns the reactor name of key id ("key-%08d" without the
// fmt machinery: workload drivers call it per operation, and Sprintf was the
// single largest allocation source on that path).
func ReactorName(id int) string {
	var digits [20]byte
	n := len(digits)
	v := id
	for {
		n--
		digits[n] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	for len(digits)-n < 8 {
		n--
		digits[n] = '0'
	}
	var buf [24]byte
	b := append(buf[:0], "key-"...)
	b = append(b, digits[n:]...)
	return string(b)
}

// Schema returns the usertable schema: a single row keyed by a constant id
// with a version counter and an opaque payload.
func Schema() *rel.Schema {
	return rel.MustSchema(RelUserTable,
		[]rel.Column{
			{Name: "id", Type: rel.Int64},
			{Name: "version", Type: rel.Int64},
			{Name: "field", Type: rel.Bytes},
		}, "id")
}

// Type builds the YCSB key reactor type.
func Type() *core.Type {
	t := core.NewType(TypeName).AddRelation(Schema())

	// read returns the record's version.
	t.AddProcedure(ProcRead, func(ctx core.Context, args core.Args) (any, error) {
		// Read-only single-row lookup: a view returns the version without
		// materializing the 100-byte payload column.
		v, ok, err := ctx.GetView(RelUserTable, int64(0))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, core.Abortf("key %s not loaded", ctx.Reactor())
		}
		return v.Int64(1), nil
	})

	// read_modify_write increments the version and rewrites the payload.
	t.AddProcedure(ProcReadModifyWrite, func(ctx core.Context, args core.Args) (any, error) {
		row, err := ctx.Get(RelUserTable, int64(0))
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, core.Abortf("key %s not loaded", ctx.Reactor())
		}
		payload := row.Bytes(2)
		if len(payload) > 0 {
			payload[0]++
		}
		return nil, ctx.Update(RelUserTable, rel.Row{int64(0), row.Int64(1) + 1, payload})
	})

	// multi_update applies read_modify_write to every key in the argument
	// list. Keys that live on other reactors are invoked asynchronously; the
	// key hosting the transaction is updated synchronously via the inlined
	// self-call. The caller is expected to order remote keys before local ones
	// (Appendix C) and to deduplicate the key set (two sub-transactions on the
	// same reactor would violate the §2.2.4 safety condition).
	t.AddProcedure(ProcMultiUpdate, func(ctx core.Context, args core.Args) (any, error) {
		for _, key := range args.Strings(0) {
			if _, err := ctx.Call(key, ProcReadModifyWrite); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})

	return t
}

// Declare adds the key type and numKeys key reactors to the definition.
func Declare(def *core.DatabaseDef, numKeys int) {
	def.MustAddType(Type())
	for i := 0; i < numKeys; i++ {
		def.MustDeclareReactor(ReactorName(i), TypeName)
	}
}

// NewDefinition builds a database definition with numKeys key reactors.
func NewDefinition(numKeys int) *core.DatabaseDef {
	def := core.NewDatabaseDef()
	Declare(def, numKeys)
	return def
}

// Load populates every key reactor with a zero-version 100-byte record.
func Load(db *engine.Database, numKeys int) error {
	payload := make([]byte, RecordSize)
	for i := 0; i < numKeys; i++ {
		if err := db.Load(ReactorName(i), RelUserTable, rel.Row{int64(0), int64(0), payload}); err != nil {
			return err
		}
	}
	return nil
}

// RangePlacement maps key reactors to containers in contiguous ranges of the
// given size ("four containers ... assigned 10,000 contiguous reactors").
func RangePlacement(rangeSize int) func(reactor string) int {
	return func(reactor string) int {
		if len(reactor) < 5 || reactor[:4] != "key-" {
			return 0
		}
		id := 0
		for i := 4; i < len(reactor); i++ {
			c := reactor[i]
			if c < '0' || c > '9' {
				return 0
			}
			id = id*10 + int(c-'0')
		}
		return id / rangeSize
	}
}

// TotalVersion sums the version counters of all keys (non-transactionally);
// tests use it to check that committed multi_updates applied exactly 10
// increments each.
func TotalVersion(db *engine.Database, numKeys int) (int64, error) {
	var total int64
	for i := 0; i < numKeys; i++ {
		row, err := db.ReadRow(ReactorName(i), RelUserTable, int64(0))
		if err != nil {
			return 0, err
		}
		if row != nil {
			total += row.Int64(1)
		}
	}
	return total, nil
}

// Package smallbank implements the extended Smallbank benchmark of the
// paper's §4.1.3/§4.1.4 and Appendix H: every customer is modeled as a
// reactor encapsulating its account, savings and checking relations, and the
// multi-transfer transaction is provided in the four program formulations the
// paper compares (fully-sync, partially-async, fully-async, opt).
package smallbank

import (
	"fmt"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// TypeName is the reactor type name of a Smallbank customer.
const TypeName = "Customer"

// Relation names.
const (
	RelAccount  = "account"
	RelSavings  = "savings"
	RelChecking = "checking"
)

// Procedure names.
const (
	ProcBalance                = "balance"
	ProcDepositChecking        = "deposit_checking"
	ProcTransactSaving         = "transact_saving"
	ProcWriteCheck             = "write_check"
	ProcAmalgamate             = "amalgamate"
	ProcTransfer               = "transfer"
	ProcMultiTransferSync      = "multi_transfer_sync"
	ProcMultiTransferFullAsync = "multi_transfer_fully_async"
	ProcMultiTransferOpt       = "multi_transfer_opt"
)

// Formulation names the multi-transfer program formulations of §4.1.4.
type Formulation string

// The four program formulations compared in Figures 5, 6, 11 and 12.
const (
	FullySync      Formulation = "fully-sync"
	PartiallyAsync Formulation = "partially-async"
	FullyAsync     Formulation = "fully-async"
	Opt            Formulation = "opt"
)

// Formulations lists all multi-transfer formulations in the order the paper
// plots them.
func Formulations() []Formulation {
	return []Formulation{FullySync, PartiallyAsync, FullyAsync, Opt}
}

// ReactorName returns the reactor name of customer id.
func ReactorName(id int) string { return fmt.Sprintf("cust-%06d", id) }

// Schemas returns the relations encapsulated by a customer reactor, following
// Figure 20 of the paper: account maps the customer name to a customer id;
// savings and checking keep the customer id column for strict compliance with
// the benchmark specification even though each holds a single tuple.
func Schemas() []*rel.Schema {
	return []*rel.Schema{
		rel.MustSchema(RelAccount,
			[]rel.Column{{Name: "cust_name", Type: rel.String}, {Name: "cust_id", Type: rel.Int64}},
			"cust_name"),
		rel.MustSchema(RelSavings,
			[]rel.Column{{Name: "cust_id", Type: rel.Int64}, {Name: "balance", Type: rel.Float64}},
			"cust_id"),
		rel.MustSchema(RelChecking,
			[]rel.Column{{Name: "cust_id", Type: rel.Int64}, {Name: "balance", Type: rel.Float64}},
			"cust_id"),
	}
}

// custID resolves the customer id through the account relation, preserving the
// benchmark's query footprint (lookup on account, then access by id).
func custID(ctx core.Context) (int64, error) {
	// Every procedure resolves the account row first; a view keeps this
	// read off the allocator on the hot path.
	v, ok, err := ctx.GetView(RelAccount, ctx.Reactor())
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, core.Abortf("unknown account %s", ctx.Reactor())
	}
	return v.Int64(1), nil
}

// Type builds the Customer reactor type with all Smallbank procedures.
func Type() *core.Type {
	t := core.NewType(TypeName)
	for _, s := range Schemas() {
		t.AddRelation(s)
	}

	// balance returns the sum of the savings and checking balances.
	t.AddProcedure(ProcBalance, func(ctx core.Context, args core.Args) (any, error) {
		id, err := custID(ctx)
		if err != nil {
			return nil, err
		}
		sav, savOK, err := ctx.GetView(RelSavings, id)
		if err != nil {
			return nil, err
		}
		chk, chkOK, err := ctx.GetView(RelChecking, id)
		if err != nil {
			return nil, err
		}
		total := 0.0
		if savOK {
			total += sav.Float64(1)
		}
		if chkOK {
			total += chk.Float64(1)
		}
		return total, nil
	})

	// transact_saving applies a (possibly negative) amount to the savings
	// balance, aborting if the balance would become negative (Appendix H).
	t.AddProcedure(ProcTransactSaving, func(ctx core.Context, args core.Args) (any, error) {
		amt := args.Float64(0)
		id, err := custID(ctx)
		if err != nil {
			return nil, err
		}
		row, err := ctx.Get(RelSavings, id)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, core.Abortf("no savings account on %s", ctx.Reactor())
		}
		if row.Float64(1)+amt < 0 {
			return nil, core.Abortf("savings balance on %s would become negative", ctx.Reactor())
		}
		return nil, ctx.Update(RelSavings, rel.Row{id, row.Float64(1) + amt})
	})

	// deposit_checking adds a positive amount to the checking balance.
	t.AddProcedure(ProcDepositChecking, func(ctx core.Context, args core.Args) (any, error) {
		amt := args.Float64(0)
		if amt < 0 {
			return nil, core.Abortf("deposit_checking amount must be non-negative")
		}
		id, err := custID(ctx)
		if err != nil {
			return nil, err
		}
		row, err := ctx.Get(RelChecking, id)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, core.Abortf("no checking account on %s", ctx.Reactor())
		}
		return nil, ctx.Update(RelChecking, rel.Row{id, row.Float64(1) + amt})
	})

	// write_check debits the checking balance, applying the benchmark's $1
	// overdraft penalty when savings+checking cannot cover the amount.
	t.AddProcedure(ProcWriteCheck, func(ctx core.Context, args core.Args) (any, error) {
		amt := args.Float64(0)
		id, err := custID(ctx)
		if err != nil {
			return nil, err
		}
		sav, err := ctx.Get(RelSavings, id)
		if err != nil {
			return nil, err
		}
		chk, err := ctx.Get(RelChecking, id)
		if err != nil {
			return nil, err
		}
		if sav == nil || chk == nil {
			return nil, core.Abortf("missing accounts on %s", ctx.Reactor())
		}
		total := sav.Float64(1) + chk.Float64(1)
		debit := amt
		if total < amt {
			debit = amt + 1 // overdraft penalty
		}
		return nil, ctx.Update(RelChecking, rel.Row{id, chk.Float64(1) - debit})
	})

	// amalgamate moves the full balance of this customer into the destination
	// customer's checking account.
	t.AddProcedure(ProcAmalgamate, func(ctx core.Context, args core.Args) (any, error) {
		dst := args.String(0)
		id, err := custID(ctx)
		if err != nil {
			return nil, err
		}
		sav, err := ctx.Get(RelSavings, id)
		if err != nil {
			return nil, err
		}
		chk, err := ctx.Get(RelChecking, id)
		if err != nil {
			return nil, err
		}
		if sav == nil || chk == nil {
			return nil, core.Abortf("missing accounts on %s", ctx.Reactor())
		}
		total := sav.Float64(1) + chk.Float64(1)
		if err := ctx.Update(RelSavings, rel.Row{id, 0.0}); err != nil {
			return nil, err
		}
		if err := ctx.Update(RelChecking, rel.Row{id, 0.0}); err != nil {
			return nil, err
		}
		if _, err := ctx.Call(dst, ProcDepositChecking, total); err != nil {
			return nil, err
		}
		return nil, nil
	})

	// transfer credits the destination's savings and debits the source's. The
	// sequential flag corresponds to the env_seq_transfer compile-time switch
	// of Appendix H: when true the credit is awaited immediately (fully-sync),
	// otherwise it overlaps with the debit (partially-async).
	t.AddProcedure(ProcTransfer, func(ctx core.Context, args core.Args) (any, error) {
		srcName := args.String(0)
		dstName := args.String(1)
		amt := args.Float64(2)
		sequential := args.Bool(3)
		if amt <= 0 {
			return nil, core.Abortf("transfer amount must be positive")
		}
		credit, err := ctx.Call(dstName, ProcTransactSaving, amt)
		if err != nil {
			return nil, err
		}
		if sequential {
			if _, err := credit.Get(); err != nil {
				return nil, err
			}
		}
		if _, err := ctx.Call(srcName, ProcTransactSaving, -amt); err != nil {
			return nil, err
		}
		return nil, nil
	})

	// multi_transfer_sync performs one transfer per destination, each invoked
	// synchronously on the source reactor. With sequential=true the inner
	// credit is also synchronous (fully-sync); with sequential=false it is
	// asynchronous (partially-async).
	t.AddProcedure(ProcMultiTransferSync, func(ctx core.Context, args core.Args) (any, error) {
		srcName := args.String(0)
		dstNames := args.Strings(1)
		amt := args.Float64(2)
		sequential := args.Bool(3)
		for _, dst := range dstNames {
			fut, err := ctx.Call(srcName, ProcTransfer, srcName, dst, amt, sequential)
			if err != nil {
				return nil, err
			}
			if _, err := fut.Get(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})

	// multi_transfer_fully_async invokes all credits asynchronously first and
	// then debits the source once per destination.
	t.AddProcedure(ProcMultiTransferFullAsync, func(ctx core.Context, args core.Args) (any, error) {
		srcName := args.String(0)
		dstNames := args.Strings(1)
		amt := args.Float64(2)
		if amt <= 0 {
			return nil, core.Abortf("transfer amount must be positive")
		}
		for _, dst := range dstNames {
			if _, err := ctx.Call(dst, ProcTransactSaving, amt); err != nil {
				return nil, err
			}
		}
		for range dstNames {
			fut, err := ctx.Call(srcName, ProcTransactSaving, -amt)
			if err != nil {
				return nil, err
			}
			if _, err := fut.Get(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})

	// multi_transfer_opt is the fully-async formulation with a single debit of
	// the total amount, halving the processing depth.
	t.AddProcedure(ProcMultiTransferOpt, func(ctx core.Context, args core.Args) (any, error) {
		srcName := args.String(0)
		dstNames := args.Strings(1)
		amt := args.Float64(2)
		if amt <= 0 {
			return nil, core.Abortf("transfer amount must be positive")
		}
		for _, dst := range dstNames {
			if _, err := ctx.Call(dst, ProcTransactSaving, amt); err != nil {
				return nil, err
			}
		}
		total := amt * float64(len(dstNames))
		fut, err := ctx.Call(srcName, ProcTransactSaving, -total)
		if err != nil {
			return nil, err
		}
		if _, err := fut.Get(); err != nil {
			return nil, err
		}
		return nil, nil
	})

	return t
}

// MultiTransferProcedure returns the (procedure name, sequential flag) pair
// implementing the given formulation, mirroring Appendix H's use of one
// procedure plus a compile-time flag for the two synchronous variants.
func MultiTransferProcedure(f Formulation) (proc string, sequential bool) {
	switch f {
	case FullySync:
		return ProcMultiTransferSync, true
	case PartiallyAsync:
		return ProcMultiTransferSync, false
	case FullyAsync:
		return ProcMultiTransferFullAsync, false
	default:
		return ProcMultiTransferOpt, false
	}
}

// Declare adds the Customer type and numCustomers customer reactors to the
// database definition.
func Declare(def *core.DatabaseDef, numCustomers int) {
	def.MustAddType(Type())
	for i := 0; i < numCustomers; i++ {
		def.MustDeclareReactor(ReactorName(i), TypeName)
	}
}

// NewDefinition builds a database definition with numCustomers customers.
func NewDefinition(numCustomers int) *core.DatabaseDef {
	def := core.NewDatabaseDef()
	Declare(def, numCustomers)
	return def
}

// Load populates every customer reactor with its account row and the given
// initial savings and checking balances.
func Load(db *engine.Database, numCustomers int, initialSavings, initialChecking float64) error {
	for i := 0; i < numCustomers; i++ {
		name := ReactorName(i)
		id := int64(i)
		if err := db.Load(name, RelAccount, rel.Row{name, id}); err != nil {
			return err
		}
		if err := db.Load(name, RelSavings, rel.Row{id, initialSavings}); err != nil {
			return err
		}
		if err := db.Load(name, RelChecking, rel.Row{id, initialChecking}); err != nil {
			return err
		}
	}
	return nil
}

// TotalBalance sums savings and checking across all customers with
// non-transactional reads; tests use it to check conservation of money.
func TotalBalance(db *engine.Database, numCustomers int) (float64, error) {
	var total float64
	for i := 0; i < numCustomers; i++ {
		name := ReactorName(i)
		sav, err := db.ReadRow(name, RelSavings, int64(i))
		if err != nil {
			return 0, err
		}
		chk, err := db.ReadRow(name, RelChecking, int64(i))
		if err != nil {
			return 0, err
		}
		if sav != nil {
			total += sav.Float64(1)
		}
		if chk != nil {
			total += chk.Float64(1)
		}
	}
	return total, nil
}

// TotalBalanceQuery is TotalBalance expressed through the declarative query
// layer: one aggregate query per relation, fanned out over every customer
// reactor as a single serializable read transaction — unlike TotalBalance's
// non-transactional row reads, the result is a consistent snapshot even under
// concurrent transfers.
func TotalBalanceQuery(db *engine.Database, numCustomers int) (float64, error) {
	reactors := make([]string, numCustomers)
	for i := range reactors {
		reactors[i] = ReactorName(i)
	}
	var total float64
	for _, relation := range []string{RelSavings, RelChecking} {
		res, err := db.Query(rel.NewQuery().
			From("b", relation, reactors...).
			Sum("b.balance", "total"))
		if err != nil {
			return 0, err
		}
		total += res.Rows[0].Float64(0)
	}
	return total, nil
}

// RangePlacement returns a Placement function that maps customer reactors to
// containers in contiguous ranges of the given size, matching the paper's
// deployment ("each container holds a range of 1000 reactors"). Non-customer
// reactors map to container 0.
func RangePlacement(rangeSize int) func(reactor string) int {
	return func(reactor string) int {
		var id int
		if _, err := fmt.Sscanf(reactor, "cust-%d", &id); err != nil {
			return 0
		}
		return id / rangeSize
	}
}

package smallbank

import (
	"errors"
	"sync"
	"testing"

	"reactdb/internal/core"
	"reactdb/internal/engine"
)

// open deploys n customers under the given config with 1000/1000 balances.
func open(t testing.TB, n int, cfg engine.Config) *engine.Database {
	t.Helper()
	def := NewDefinition(n)
	db, err := engine.Open(def, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := Load(db, n, 1000, 1000); err != nil {
		t.Fatalf("Load: %v", err)
	}
	t.Cleanup(db.Close)
	return db
}

func sharedNothing(containers, customersPerContainer int) engine.Config {
	cfg := engine.NewSharedNothing(containers)
	cfg.Placement = RangePlacement(customersPerContainer)
	return cfg
}

func savings(t *testing.T, db *engine.Database, id int) float64 {
	t.Helper()
	row, err := db.ReadRow(ReactorName(id), RelSavings, int64(id))
	if err != nil || row == nil {
		t.Fatalf("savings row for %d: %v %v", id, row, err)
	}
	return row.Float64(1)
}

func checking(t *testing.T, db *engine.Database, id int) float64 {
	t.Helper()
	row, err := db.ReadRow(ReactorName(id), RelChecking, int64(id))
	if err != nil || row == nil {
		t.Fatalf("checking row for %d: %v %v", id, row, err)
	}
	return row.Float64(1)
}

func TestLoadAndBalance(t *testing.T) {
	db := open(t, 4, sharedNothing(2, 2))
	v, err := db.Execute(ReactorName(1), ProcBalance)
	if err != nil {
		t.Fatalf("balance: %v", err)
	}
	if v.(float64) != 2000 {
		t.Fatalf("balance = %v, want 2000", v)
	}
	total, err := TotalBalance(db, 4)
	if err != nil || total != 8000 {
		t.Fatalf("TotalBalance = (%v, %v)", total, err)
	}
}

func TestDepositAndWriteCheck(t *testing.T) {
	db := open(t, 2, sharedNothing(2, 1))
	if _, err := db.Execute(ReactorName(0), ProcDepositChecking, 50.0); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	if got := checking(t, db, 0); got != 1050 {
		t.Fatalf("checking = %v, want 1050", got)
	}
	if _, err := db.Execute(ReactorName(0), ProcDepositChecking, -1.0); !core.IsUserAbort(err) {
		t.Fatalf("negative deposit should abort, got %v", err)
	}
	if _, err := db.Execute(ReactorName(0), ProcWriteCheck, 100.0); err != nil {
		t.Fatalf("write_check: %v", err)
	}
	if got := checking(t, db, 0); got != 950 {
		t.Fatalf("checking = %v, want 950", got)
	}
	// Overdraft: balance 950 + 1000 savings = 1950 < 5000 -> penalty applies.
	if _, err := db.Execute(ReactorName(0), ProcWriteCheck, 5000.0); err != nil {
		t.Fatalf("write_check overdraft: %v", err)
	}
	if got := checking(t, db, 0); got != 950-5001 {
		t.Fatalf("checking = %v, want %v", got, 950-5001)
	}
}

func TestTransactSavingAbortsOnNegativeBalance(t *testing.T) {
	db := open(t, 1, sharedNothing(1, 1))
	if _, err := db.Execute(ReactorName(0), ProcTransactSaving, -5000.0); !core.IsUserAbort(err) {
		t.Fatalf("expected abort, got %v", err)
	}
	if got := savings(t, db, 0); got != 1000 {
		t.Fatalf("savings modified by aborted transaction: %v", got)
	}
}

func TestAmalgamateMovesAllFunds(t *testing.T) {
	db := open(t, 3, sharedNothing(3, 1))
	if _, err := db.Execute(ReactorName(0), ProcAmalgamate, ReactorName(2)); err != nil {
		t.Fatalf("amalgamate: %v", err)
	}
	if savings(t, db, 0) != 0 || checking(t, db, 0) != 0 {
		t.Fatalf("source not emptied")
	}
	if got := checking(t, db, 2); got != 3000 {
		t.Fatalf("destination checking = %v, want 3000", got)
	}
	total, _ := TotalBalance(db, 3)
	if total != 6000 {
		t.Fatalf("total balance changed: %v", total)
	}
}

func TestMultiTransferFormulationsPreserveMoneyAndSemantics(t *testing.T) {
	const customers = 8
	deployments := map[string]engine.Config{
		"shared-nothing":     sharedNothing(4, 2),
		"shared-everything":  engine.NewSharedEverythingWithAffinity(4),
		"single-container-1": engine.NewSharedEverythingWithAffinity(1),
	}
	for _, f := range Formulations() {
		for depName, cfg := range deployments {
			t.Run(string(f)+"/"+depName, func(t *testing.T) {
				db := open(t, customers, cfg)
				src := ReactorName(0)
				dsts := []string{ReactorName(3), ReactorName(5), ReactorName(6)}
				proc, sequential := MultiTransferProcedure(f)
				var err error
				if proc == ProcMultiTransferSync {
					_, err = db.Execute(src, proc, src, dsts, 10.0, sequential)
				} else {
					_, err = db.Execute(src, proc, src, dsts, 10.0)
				}
				if err != nil {
					t.Fatalf("%s: %v", f, err)
				}
				if got := savings(t, db, 0); got != 1000-30 {
					t.Fatalf("source savings = %v, want 970", got)
				}
				for _, d := range []int{3, 5, 6} {
					if got := savings(t, db, d); got != 1010 {
						t.Fatalf("destination %d savings = %v, want 1010", d, got)
					}
				}
				total, _ := TotalBalance(db, customers)
				if total != customers*2000 {
					t.Fatalf("money not conserved: %v", total)
				}
			})
		}
	}
}

func TestMultiTransferInsufficientFundsAborts(t *testing.T) {
	db := open(t, 4, sharedNothing(4, 1))
	src := ReactorName(0)
	dsts := []string{ReactorName(1), ReactorName(2), ReactorName(3)}
	// 3 x 400 = 1200 > 1000: the final debits must abort the whole transaction
	// and roll back the already-issued credits.
	_, err := db.Execute(src, ProcMultiTransferOpt, src, dsts, 400.0)
	if !core.IsUserAbort(err) {
		t.Fatalf("expected user abort, got %v", err)
	}
	total, _ := TotalBalance(db, 4)
	if total != 8000 {
		t.Fatalf("aborted multi-transfer leaked money: %v", total)
	}
	for _, d := range []int{1, 2, 3} {
		if got := savings(t, db, d); got != 1000 {
			t.Fatalf("credit leaked to destination %d: %v", d, got)
		}
	}
}

func TestConcurrentMultiTransfersConserveMoney(t *testing.T) {
	const customers = 8
	db := open(t, customers, sharedNothing(4, 2))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				src := (seed + i) % customers
				d1 := (src + 1) % customers
				d2 := (src + 3) % customers
				_, err := db.Execute(ReactorName(src), ProcMultiTransferOpt,
					ReactorName(src), []string{ReactorName(d1), ReactorName(d2)}, 1.0)
				if err != nil && !errors.Is(err, engine.ErrConflict) &&
					!core.IsUserAbort(err) && !errors.Is(err, core.ErrDangerousStructure) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total, err := TotalBalance(db, customers)
	if err != nil {
		t.Fatal(err)
	}
	if total != customers*2000 {
		t.Fatalf("money not conserved under concurrency: %v", total)
	}
}

func TestMultiTransferProcedureMapping(t *testing.T) {
	if p, seq := MultiTransferProcedure(FullySync); p != ProcMultiTransferSync || !seq {
		t.Fatalf("FullySync mapping wrong")
	}
	if p, seq := MultiTransferProcedure(PartiallyAsync); p != ProcMultiTransferSync || seq {
		t.Fatalf("PartiallyAsync mapping wrong")
	}
	if p, _ := MultiTransferProcedure(FullyAsync); p != ProcMultiTransferFullAsync {
		t.Fatalf("FullyAsync mapping wrong")
	}
	if p, _ := MultiTransferProcedure(Opt); p != ProcMultiTransferOpt {
		t.Fatalf("Opt mapping wrong")
	}
	if len(Formulations()) != 4 {
		t.Fatalf("Formulations should list 4 entries")
	}
}

func TestRangePlacement(t *testing.T) {
	p := RangePlacement(1000)
	if p(ReactorName(0)) != 0 || p(ReactorName(999)) != 0 || p(ReactorName(1000)) != 1 || p(ReactorName(6999)) != 6 {
		t.Fatalf("range placement wrong")
	}
	if p("not-a-customer") != 0 {
		t.Fatalf("non-customer reactors should map to container 0")
	}
}

// TestTotalBalanceQueryMatchesRowReads differences the declarative audit
// against the raw row-read audit, quiesced and while concurrent transfers
// run: the query form must always report the conserved total because it reads
// through one serializable transaction.
func TestTotalBalanceQueryMatchesRowReads(t *testing.T) {
	const customers = 8
	db := open(t, customers, sharedNothing(4, 2))

	raw, err := TotalBalance(db, customers)
	if err != nil {
		t.Fatal(err)
	}
	viaQuery, err := TotalBalanceQuery(db, customers)
	if err != nil {
		t.Fatal(err)
	}
	if raw != viaQuery || viaQuery != customers*2000 {
		t.Fatalf("quiesced audits disagree: rows=%v query=%v", raw, viaQuery)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src := i % customers
			_, err := db.Execute(ReactorName(src), ProcMultiTransferOpt,
				ReactorName(src), []string{ReactorName((src + 1) % customers)}, 1.0)
			if err != nil && !errors.Is(err, engine.ErrConflict) &&
				!core.IsUserAbort(err) && !errors.Is(err, core.ErrDangerousStructure) {
				t.Errorf("transfer: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		viaQuery, err := TotalBalanceQuery(db, customers)
		if err != nil {
			if errors.Is(err, engine.ErrConflict) {
				i--
				continue
			}
			t.Fatal(err)
		}
		if viaQuery != customers*2000 {
			t.Fatalf("serializable audit saw torn total %v under concurrent transfers", viaQuery)
		}
	}
	close(stop)
	wg.Wait()
}

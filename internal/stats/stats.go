// Package stats implements the measurement machinery of the paper's
// methodology (§4.1.2): epoch-based collection of throughput and latency with
// means and standard deviations across epochs, plus latency distributions for
// individual runs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds descriptive statistics of a sample of float64 observations.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over the sample.
func Summarize(sample []float64) Summary {
	s := Summary{Count: len(sample)}
	if len(sample) == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, v := range sample {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(sample))
	if len(sample) > 1 {
		var ss float64
		for _, v := range sample {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(sample)-1))
	}
	return s
}

// LatencyRecorder accumulates individual operation latencies.
type LatencyRecorder struct {
	samples []time.Duration
}

// NewLatencyRecorder returns an empty recorder with the given capacity hint.
func NewLatencyRecorder(capacityHint int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]time.Duration, 0, capacityHint)}
}

// Record adds one latency observation.
func (l *LatencyRecorder) Record(d time.Duration) {
	l.samples = append(l.samples, d)
}

// Count returns the number of observations.
func (l *LatencyRecorder) Count() int { return len(l.samples) }

// Mean returns the mean latency, or zero for an empty recorder.
func (l *LatencyRecorder) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range l.samples {
		total += d
	}
	return total / time.Duration(len(l.samples))
}

// StdDev returns the sample standard deviation of the latencies.
func (l *LatencyRecorder) StdDev() time.Duration {
	if len(l.samples) < 2 {
		return 0
	}
	mean := float64(l.Mean())
	var ss float64
	for _, d := range l.samples {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(len(l.samples)-1)))
}

// Percentile returns the p-th percentile latency (p in [0,100]).
func (l *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Reset discards all observations.
func (l *LatencyRecorder) Reset() { l.samples = l.samples[:0] }

// EpochResult captures one measurement epoch: how many transactions committed
// and aborted, how many were rejected by admission control before running,
// and the latency of successful transactions.
type EpochResult struct {
	Duration   time.Duration
	Committed  int
	Aborted    int
	Rejected   int // refused by admission control (engine.ErrOverloaded)
	MeanLat    time.Duration
	Throughput float64 // committed transactions per second
}

// RunResult aggregates a multi-epoch measurement run, following the paper:
// "average latency or throughput is calculated across 50 epochs and the
// standard deviation is plotted in error bars".
type RunResult struct {
	Epochs []EpochResult
}

// AddEpoch appends one epoch's measurements.
func (r *RunResult) AddEpoch(e EpochResult) { r.Epochs = append(r.Epochs, e) }

// Throughput returns the mean and standard deviation of per-epoch throughput
// (committed transactions per second).
func (r *RunResult) Throughput() (mean, stddev float64) {
	vals := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		vals[i] = e.Throughput
	}
	s := Summarize(vals)
	return s.Mean, s.StdDev
}

// Latency returns the mean and standard deviation of per-epoch mean latency.
func (r *RunResult) Latency() (mean, stddev time.Duration) {
	vals := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		vals[i] = float64(e.MeanLat)
	}
	s := Summarize(vals)
	return time.Duration(s.Mean), time.Duration(s.StdDev)
}

// AbortRate returns the fraction of transactions that aborted across all
// epochs.
func (r *RunResult) AbortRate() float64 {
	var committed, aborted int
	for _, e := range r.Epochs {
		committed += e.Committed
		aborted += e.Aborted
	}
	if committed+aborted == 0 {
		return 0
	}
	return float64(aborted) / float64(committed+aborted)
}

// TotalCommitted returns the number of committed transactions across epochs.
func (r *RunResult) TotalCommitted() int {
	var c int
	for _, e := range r.Epochs {
		c += e.Committed
	}
	return c
}

// TotalRejected returns the number of admission-control rejections across
// epochs.
func (r *RunResult) TotalRejected() int {
	var c int
	for _, e := range r.Epochs {
		c += e.Rejected
	}
	return c
}

// String renders the run result as a single summary line.
func (r *RunResult) String() string {
	tp, tpSD := r.Throughput()
	lat, latSD := r.Latency()
	return fmt.Sprintf("throughput %.0f ± %.0f txn/s, latency %v ± %v, abort rate %.2f%%",
		tp, tpSD, lat.Round(time.Microsecond), latSD.Round(time.Microsecond), 100*r.AbortRate())
}

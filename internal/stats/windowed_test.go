package stats

import (
	"sync"
	"testing"
	"time"
)

func TestWindowedHistogramRotateIsolatesWindows(t *testing.T) {
	w := NewWindowedHistogram(ExponentialBounds(1, 2, 10))
	for i := 0; i < 100; i++ {
		w.Observe(4)
	}
	first := w.Rotate()
	if first.Count != 100 {
		t.Fatalf("first window count = %d, want 100", first.Count)
	}
	// The new window starts empty: old observations must not leak through.
	if cur := w.Current(); cur.Count != 0 {
		t.Fatalf("fresh window count = %d, want 0", cur.Count)
	}
	for i := 0; i < 10; i++ {
		w.Observe(512)
	}
	second := w.Rotate()
	if second.Count != 10 {
		t.Fatalf("second window count = %d, want 10", second.Count)
	}
	if q := second.Quantile(0.99); q < 256 {
		t.Fatalf("second window p99 = %v, want >= 256 (old fast samples must not dilute it)", q)
	}
	if third := w.Rotate(); third.Count != 0 {
		t.Fatalf("empty window count = %d, want 0", third.Count)
	}
}

func TestWindowedHistogramConcurrentObserveDuringRotate(t *testing.T) {
	w := NewWindowedHistogram(ExponentialBounds(1, 2, 10))
	const observers, perObserver = 4, 5000
	var wg sync.WaitGroup
	stopRotate := make(chan struct{})
	rotatorDone := make(chan int64, 1)
	go func() {
		var rotated int64
		for {
			select {
			case <-stopRotate:
				rotatorDone <- rotated
				return
			default:
				rotated += w.Rotate().Count
				// A realistic controller rotates every few milliseconds; a
				// rotation storm racing every observation would legitimately
				// drop many stragglers (documented behaviour, not a defect).
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	for g := 0; g < observers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perObserver; i++ {
				w.Observe(float64(i % 7))
			}
		}()
	}
	wg.Wait()
	close(stopRotate)
	// The rotator goroutine is the single rotator while it lives; only after
	// it reports done may this goroutine rotate the final windows out.
	rotated := <-rotatorDone
	rotated += w.Rotate().Count
	rotated += w.Rotate().Count
	// Rotation may drop straggler observations (documented), so the windows
	// can undercount — but nothing may ever be counted twice, and with
	// throttled rotation the windows must see real traffic.
	if rotated > observers*perObserver {
		t.Fatalf("windows accounted %d observations, more than the %d recorded", rotated, observers*perObserver)
	}
	if rotated < observers*perObserver/4 {
		t.Fatalf("windows accounted only %d of %d observations", rotated, observers*perObserver)
	}
}

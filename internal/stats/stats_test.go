package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmptyAndSingle(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
	s = Summarize([]float64{5})
	if s.Count != 1 || s.Mean != 5 || s.StdDev != 0 || s.Min != 5 || s.Max != 5 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max wrong: %+v", s)
	}
}

func TestSummarizeMeanWithinBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		s := Summarize(vals)
		if len(vals) == 0 {
			return s.Count == 0
		}
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	r := NewLatencyRecorder(8)
	for i := 1; i <= 10; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 10 {
		t.Fatalf("Count = %d", r.Count())
	}
	if r.Mean() != 5500*time.Microsecond {
		t.Fatalf("Mean = %v, want 5.5ms", r.Mean())
	}
	if p50 := r.Percentile(50); p50 != 5*time.Millisecond {
		t.Fatalf("P50 = %v, want 5ms", p50)
	}
	if p100 := r.Percentile(100); p100 != 10*time.Millisecond {
		t.Fatalf("P100 = %v, want 10ms", p100)
	}
	if p0 := r.Percentile(0); p0 != time.Millisecond {
		t.Fatalf("P0 = %v, want 1ms", p0)
	}
	if r.StdDev() <= 0 {
		t.Fatalf("StdDev should be positive")
	}
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 || r.StdDev() != 0 || r.Percentile(50) != 0 {
		t.Fatalf("Reset did not clear the recorder")
	}
}

func TestRunResultAggregation(t *testing.T) {
	var run RunResult
	for i := 0; i < 5; i++ {
		run.AddEpoch(EpochResult{
			Duration:   100 * time.Millisecond,
			Committed:  90,
			Aborted:    10,
			MeanLat:    time.Millisecond,
			Throughput: 900,
		})
	}
	tp, tpSD := run.Throughput()
	if tp != 900 || tpSD != 0 {
		t.Fatalf("throughput = %v ± %v", tp, tpSD)
	}
	lat, latSD := run.Latency()
	if lat != time.Millisecond || latSD != 0 {
		t.Fatalf("latency = %v ± %v", lat, latSD)
	}
	if got := run.AbortRate(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("abort rate = %v, want 0.1", got)
	}
	if run.TotalCommitted() != 450 {
		t.Fatalf("TotalCommitted = %d", run.TotalCommitted())
	}
	if run.String() == "" {
		t.Fatalf("String should render something")
	}
}

func TestRunResultEmptyAbortRate(t *testing.T) {
	var run RunResult
	if run.AbortRate() != 0 {
		t.Fatalf("empty run should have zero abort rate")
	}
}

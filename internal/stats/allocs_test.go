package stats

import "testing"

// fakeAllocSource is a deterministic cumulative counter for testing the
// alloc-source hook without depending on runtime allocation behavior.
type fakeAllocSource struct{ n uint64 }

func (f *fakeAllocSource) source() uint64 { return f.n }

func TestHistogramAllocSource(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if h.Allocs() != 0 {
		t.Fatalf("Allocs without a source = %d, want 0", h.Allocs())
	}

	f := &fakeAllocSource{n: 100}
	h.SetAllocSource(f.source)
	if got := h.Allocs(); got != 0 {
		t.Fatalf("Allocs right after SetAllocSource = %d, want 0", got)
	}

	f.n = 140
	if got := h.Allocs(); got != 40 {
		t.Fatalf("Allocs = %d, want 40", got)
	}
	if snap := h.Snapshot(); snap.Allocs != 40 {
		t.Fatalf("Snapshot.Allocs = %d, want 40", snap.Allocs)
	}

	// Reset re-baselines the counter along with the buckets.
	h.Reset()
	if got := h.Allocs(); got != 0 {
		t.Fatalf("Allocs after Reset = %d, want 0", got)
	}
	f.n = 145
	if got := h.Allocs(); got != 5 {
		t.Fatalf("Allocs after Reset + 5 = %d, want 5", got)
	}

	// Detaching zeroes the report.
	h.SetAllocSource(nil)
	if got := h.Allocs(); got != 0 {
		t.Fatalf("Allocs after detach = %d, want 0", got)
	}
}

func TestWindowedHistogramAllocSource(t *testing.T) {
	w := NewWindowedHistogram([]float64{1})
	f := &fakeAllocSource{n: 1000}
	w.SetAllocSource(f.source)

	f.n += 30
	w.Observe(0.5)
	snap := w.Rotate()
	if snap.Allocs != 30 {
		t.Fatalf("first window Allocs = %d, want 30", snap.Allocs)
	}

	// The next window is re-baselined at rotation: only allocations after the
	// rotate count toward it.
	f.n += 7
	snap = w.Rotate()
	if snap.Allocs != 7 {
		t.Fatalf("second window Allocs = %d, want 7", snap.Allocs)
	}

	// Current reads the open window without closing it.
	f.n += 3
	if got := w.Current().Allocs; got != 3 {
		t.Fatalf("Current().Allocs = %d, want 3", got)
	}
}

func TestDefaultAllocSourceMonotonic(t *testing.T) {
	a := DefaultAllocSource()
	sink := make([]byte, 1)
	_ = sink
	b := DefaultAllocSource()
	if b < a {
		t.Fatalf("DefaultAllocSource went backwards: %d then %d", a, b)
	}
}

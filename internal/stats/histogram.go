package stats

import (
	"fmt"
	"runtime/metrics"
	"strings"
	"sync/atomic"
	"time"
)

// AllocSource is a cumulative allocation counter sampled by histograms that
// track the allocation cost of the code paths they measure. The default reads
// the runtime's heap-allocation object count; tests inject deterministic
// sources.
type AllocSource func() uint64

// DefaultAllocSource samples the cumulative number of heap objects allocated
// by the process, via runtime/metrics (cheap: no stop-the-world, unlike
// runtime.ReadMemStats).
func DefaultAllocSource() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(s)
	return s[0].Value.Uint64()
}

// Histogram is a fixed-bucket histogram safe for concurrent observation. The
// engine uses it on hot paths (per-request queue-wait times, queue depths,
// group-commit batch sizes), so Observe is a single atomic increment plus an
// atomic add for the running sum; no locks are taken.
//
// Buckets are defined by their inclusive upper bounds; an implicit overflow
// bucket collects observations above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Int64 // sum of observations, rounded to int64

	// allocSrc, when set, lets the histogram report how many allocations the
	// measured window cost (Allocs). The source is sampled at SetAllocSource
	// and at every Reset; Observe never touches it, keeping the hot path to
	// its three atomic adds.
	allocSrc  atomic.Pointer[AllocSource]
	allocBase atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExponentialBounds returns n ascending bounds starting at start and growing
// by factor, e.g. ExponentialBounds(1, 2, 4) = [1 2 4 8].
func ExponentialBounds(start, factor float64, n int) []float64 {
	bounds := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		bounds = append(bounds, v)
		v *= factor
	}
	return bounds
}

// DurationBounds returns exponential bounds in nanoseconds suitable for
// latency-style histograms, from 1µs up to ~8.5s (24 powers of two).
func DurationBounds() []float64 {
	return ExponentialBounds(float64(time.Microsecond), 2, 24)
}

// DepthBounds returns bounds suitable for small integer gauges such as queue
// depths and batch sizes: 0,1,2,4,...,4096.
func DepthBounds() []float64 {
	return append([]float64{0}, ExponentialBounds(1, 2, 13)...)
}

// ByteBounds returns exponential bounds suitable for byte-size histograms
// (e.g. bytes fsynced per WAL flush): 64B up to ~32MiB.
func ByteBounds() []float64 {
	return ExponentialBounds(64, 2, 20)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v))
}

// ObserveDuration records a duration observation in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observation, or zero for an empty histogram.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// SetAllocSource attaches a cumulative allocation counter to the histogram
// and stamps the current sample as the baseline. Pass nil to detach. Use
// DefaultAllocSource for the runtime's heap object counter.
func (h *Histogram) SetAllocSource(src AllocSource) {
	if src == nil {
		h.allocSrc.Store(nil)
		return
	}
	h.allocBase.Store(src())
	h.allocSrc.Store(&src)
}

// Allocs returns the number of allocations recorded by the attached source
// since the baseline (SetAllocSource or the last Reset), or 0 without a
// source. Together with Count it yields allocs per observed operation.
func (h *Histogram) Allocs() uint64 {
	src := h.allocSrc.Load()
	if src == nil {
		return 0
	}
	return (*src)() - h.allocBase.Load()
}

// Reset discards all observations and re-baselines the allocation source.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	if src := h.allocSrc.Load(); src != nil {
		h.allocBase.Store((*src)())
	}
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// observations may tear across buckets; totals are recomputed from the copied
// buckets so the snapshot is internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    float64(h.sum.Load()),
		Allocs: h.Allocs(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is an immutable view of a Histogram. Counts has one more
// entry than Bounds; the extra entry is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	// Allocs is the allocation count attributed to the snapshot's window when
	// the source histogram carries an alloc source (see SetAllocSource); zero
	// otherwise.
	Allocs uint64
}

// MergeSnapshots combines snapshots taken from histograms with identical
// bucket bounds (e.g. the per-executor queue-wait histograms of one
// deployment) into one distribution. Snapshots with mismatched bounds are
// skipped; an empty input yields a zero snapshot.
func MergeSnapshots(snaps ...HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	for _, s := range snaps {
		if out.Bounds == nil {
			out.Bounds = s.Bounds
			out.Counts = make([]int64, len(s.Counts))
		}
		if len(s.Counts) != len(out.Counts) || len(s.Bounds) != len(out.Bounds) {
			continue
		}
		for i, c := range s.Counts {
			out.Counts[i] += c
		}
		out.Count += s.Count
		out.Sum += s.Sum
	}
	return out
}

// Mean returns the mean observation in the snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) assuming a
// uniform distribution within each bucket. Observations in the overflow bucket
// are attributed to the last bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[len(s.Bounds)-1]
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// String renders the non-empty buckets compactly, for logs and test output.
func (s HistogramSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%.0f", s.Count, s.Mean())
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if i < len(s.Bounds) {
			fmt.Fprintf(&b, " le(%g)=%d", s.Bounds[i], c)
		} else {
			fmt.Fprintf(&b, " inf=%d", c)
		}
	}
	return b.String()
}

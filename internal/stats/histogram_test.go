package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 9, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	// Buckets: le1=2 (0.5, 1), le2=1 (1.5), le4=1 (3), le8=0, overflow=2.
	want := []int64{2, 1, 1, 0, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := h.Mean(); got < 19 || got > 20 {
		t.Fatalf("mean = %v, want ~19.17", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBounds(1, 2, 10))
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 16))
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 16 {
		t.Fatalf("p50 = %v, want in (0,16]", q)
	}
	if q := s.Quantile(1); q > s.Bounds[len(s.Bounds)-1] {
		t.Fatalf("p100 = %v beyond last bound", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty snapshot quantile = %v, want 0", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DurationBounds())
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveDuration(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	var sum int64
	for _, c := range h.Snapshot().Counts {
		sum += c
	}
	if sum != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", sum, goroutines*per)
	}
}

func TestHistogramResetAndString(t *testing.T) {
	h := NewHistogram(DepthBounds())
	h.Observe(3)
	h.Observe(5)
	s := h.Snapshot().String()
	if !strings.Contains(s, "count=2") {
		t.Fatalf("String() = %q, want count=2", s)
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("reset histogram not empty: count=%d mean=%v", h.Count(), h.Mean())
	}
}

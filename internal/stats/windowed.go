package stats

import "sync/atomic"

// WindowedHistogram is a Histogram pair whose active half collects the
// current measurement window while the previous window is read and recycled.
// The admission controller uses it to read queue-wait p99 over the last
// control interval instead of over the run's whole lifetime: a cumulative
// histogram dilutes an overload that started seconds ago under millions of
// old fast observations, while a window reacts within one interval.
//
// Observe is as cheap as Histogram.Observe plus one atomic pointer load, so
// it is safe on the scheduler's hot path. Rotate must be called from a single
// goroutine (the controller); concurrent observers that race a rotation land
// in one window or the other, never in neither.
type WindowedHistogram struct {
	active atomic.Pointer[Histogram]
	// spare is the retired window being drained; owned by the single rotator.
	spare *Histogram
}

// NewWindowedHistogram creates a windowed histogram with the given bucket
// bounds (see NewHistogram).
func NewWindowedHistogram(bounds []float64) *WindowedHistogram {
	w := &WindowedHistogram{spare: NewHistogram(bounds)}
	w.active.Store(NewHistogram(bounds))
	return w
}

// Observe records one observation into the current window.
func (w *WindowedHistogram) Observe(v float64) { w.active.Load().Observe(v) }

// Rotate closes the current window and returns its snapshot, atomically
// installing a fresh window for subsequent observations. A straggler that
// loaded the old window pointer just before the swap may still record into
// the snapshot's source after the snapshot was taken; such observations are
// dropped with the reset, which for control purposes is indistinguishable
// from having landed a microsecond earlier. Single rotator only.
func (w *WindowedHistogram) Rotate() HistogramSnapshot {
	w.spare.Reset()
	old := w.active.Swap(w.spare)
	snap := old.Snapshot()
	w.spare = old
	return snap
}

// SetAllocSource attaches an allocation counter source to both windows (see
// Histogram.SetAllocSource). Rotate re-baselines the incoming window through
// its Reset, so every rotated snapshot's Allocs covers exactly the interval
// during which that window was active. Call it before observation starts, from
// the rotator goroutine.
func (w *WindowedHistogram) SetAllocSource(src AllocSource) {
	w.spare.SetAllocSource(src)
	w.active.Load().SetAllocSource(src)
}

// Current returns a snapshot of the still-open window without rotating it,
// for stats export.
func (w *WindowedHistogram) Current() HistogramSnapshot {
	return w.active.Load().Snapshot()
}

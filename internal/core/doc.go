// Package core implements the reactor programming model — the paper's primary
// contribution (§2). A reactor is an application-defined logical actor that
// encapsulates relations and processes asynchronous function calls with
// transactional (conflict-serializable) guarantees.
//
// The package defines:
//
//   - reactor types (Type): the relation schemas a reactor encapsulates and
//     the procedures that may be invoked on it;
//   - the logical database declaration (DatabaseDef): named reactors bound to
//     types, matching the paper's "declare the names and types of the reactors
//     constituting the database";
//   - the procedure execution interface (Context): declarative access to the
//     current reactor's relations plus asynchronous cross-reactor calls
//     returning futures;
//   - futures (Future) and argument handling (Args);
//   - the intra-transaction safety condition of §2.2.4 (ActiveSet): at most
//     one execution context per (root transaction, reactor) at any time.
//
// The runtime that executes procedures — containers, transaction executors,
// routers, concurrency control and commitment — lives in package engine; core
// is deliberately runtime-agnostic so that application code depends only on
// the programming model.
package core

package core

import (
	"fmt"
	"sort"

	"reactdb/internal/rel"
)

// Procedure is the unit of application logic invoked on a reactor: the
// equivalent of a database stored procedure written against the reactor
// programming model. It receives the execution context of the (sub-)
// transaction — declarative access to the reactor's relations plus
// asynchronous calls to other reactors — and positional arguments. Returning
// an error aborts the root transaction (use Abortf for application aborts).
type Procedure func(ctx Context, args Args) (any, error)

// Type is a reactor type: it determines the relation schemas encapsulated in
// the reactor state and the procedures that may be invoked on reactors of the
// type (§2.2.1). Types are immutable once registered with a DatabaseDef.
type Type struct {
	name       string
	schemas    []*rel.Schema
	procedures map[string]Procedure
}

// NewType creates an empty reactor type with the given name.
func NewType(name string) *Type {
	return &Type{name: name, procedures: make(map[string]Procedure)}
}

// Name returns the type name.
func (t *Type) Name() string { return t.name }

// AddRelation declares a relation schema encapsulated by reactors of this
// type. It returns the type for chaining. A duplicate relation name panics at
// declaration time — like MustSchema, relation declarations are static, and
// deferring the error to DatabaseDef validation (or worse, first use) hides
// the offending declaration site.
func (t *Type) AddRelation(schema *rel.Schema) *Type {
	for _, s := range t.schemas {
		if s.Name() == schema.Name() {
			panic(fmt.Sprintf("reactor: type %s declares relation %q twice", t.name, schema.Name()))
		}
	}
	t.schemas = append(t.schemas, schema)
	return t
}

// AddProcedure registers a procedure under the given name. It returns the
// type for chaining.
func (t *Type) AddProcedure(name string, p Procedure) *Type {
	t.procedures[name] = p
	return t
}

// Relations returns the declared relation schemas.
func (t *Type) Relations() []*rel.Schema { return t.schemas }

// Procedure returns the named procedure, or nil.
func (t *Type) Procedure(name string) Procedure { return t.procedures[name] }

// ProcedureNames returns the names of all registered procedures, sorted.
func (t *Type) ProcedureNames() []string {
	names := make([]string, 0, len(t.procedures))
	for n := range t.procedures {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks that the type is well formed: it has a name, at least one
// relation, distinct relation names, and at least one procedure.
func (t *Type) Validate() error {
	if t.name == "" {
		return fmt.Errorf("reactor: type needs a name")
	}
	if len(t.schemas) == 0 {
		return fmt.Errorf("reactor: type %s declares no relations", t.name)
	}
	seen := make(map[string]bool)
	for _, s := range t.schemas {
		if seen[s.Name()] {
			return fmt.Errorf("reactor: type %s declares relation %q twice", t.name, s.Name())
		}
		seen[s.Name()] = true
	}
	if len(t.procedures) == 0 {
		return fmt.Errorf("reactor: type %s declares no procedures", t.name)
	}
	return nil
}

// DatabaseDef is the logical declaration of a reactor database: a set of
// reactor types and the named reactors bound to them. The developer cannot
// create or destroy reactors at runtime; they are "purely logical entities
// accessible by their declared names for the lifetime of the application"
// (§2.2.1).
type DatabaseDef struct {
	types    map[string]*Type
	reactors map[string]string // reactor name -> type name
	order    []string          // declaration order of reactor names
}

// NewDatabaseDef returns an empty database declaration.
func NewDatabaseDef() *DatabaseDef {
	return &DatabaseDef{types: make(map[string]*Type), reactors: make(map[string]string)}
}

// AddType registers a reactor type. It fails on duplicates or invalid types.
func (d *DatabaseDef) AddType(t *Type) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := d.types[t.Name()]; dup {
		return fmt.Errorf("reactor: type %q already declared", t.Name())
	}
	d.types[t.Name()] = t
	return nil
}

// MustAddType is AddType that panics on error, for static declarations.
func (d *DatabaseDef) MustAddType(t *Type) *DatabaseDef {
	if err := d.AddType(t); err != nil {
		panic(err)
	}
	return d
}

// DeclareReactor binds a reactor name to a declared type.
func (d *DatabaseDef) DeclareReactor(name, typeName string) error {
	if name == "" {
		return fmt.Errorf("reactor: reactor needs a name")
	}
	if _, ok := d.types[typeName]; !ok {
		return fmt.Errorf("reactor: reactor %q references undeclared type %q", name, typeName)
	}
	if _, dup := d.reactors[name]; dup {
		return fmt.Errorf("reactor: reactor %q already declared", name)
	}
	d.reactors[name] = typeName
	d.order = append(d.order, name)
	return nil
}

// MustDeclareReactor is DeclareReactor that panics on error.
func (d *DatabaseDef) MustDeclareReactor(name, typeName string) *DatabaseDef {
	if err := d.DeclareReactor(name, typeName); err != nil {
		panic(err)
	}
	return d
}

// MustDeclareReactors declares several reactors of the same type.
func (d *DatabaseDef) MustDeclareReactors(typeName string, names ...string) *DatabaseDef {
	for _, n := range names {
		d.MustDeclareReactor(n, typeName)
	}
	return d
}

// Type returns the named reactor type, or nil.
func (d *DatabaseDef) Type(name string) *Type { return d.types[name] }

// TypeOf returns the type of the named reactor, or nil if the reactor is not
// declared.
func (d *DatabaseDef) TypeOf(reactor string) *Type {
	tn, ok := d.reactors[reactor]
	if !ok {
		return nil
	}
	return d.types[tn]
}

// HasReactor reports whether the reactor name is declared.
func (d *DatabaseDef) HasReactor(name string) bool {
	_, ok := d.reactors[name]
	return ok
}

// Reactors returns all declared reactor names in declaration order.
func (d *DatabaseDef) Reactors() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// NumReactors returns the number of declared reactors.
func (d *DatabaseDef) NumReactors() int { return len(d.order) }

// Validate checks the declaration is usable: at least one type and reactor.
func (d *DatabaseDef) Validate() error {
	if len(d.types) == 0 {
		return fmt.Errorf("reactor: database declares no reactor types")
	}
	if len(d.reactors) == 0 {
		return fmt.Errorf("reactor: database declares no reactors")
	}
	return nil
}

package core

import "fmt"

// Args carries the positional arguments of a procedure invocation. Accessors
// normalize the common numeric widths so call sites can pass untyped constants.
type Args []any

// Len returns the number of arguments.
func (a Args) Len() int { return len(a) }

// Int64 returns argument i as an int64.
func (a Args) Int64(i int) int64 {
	switch v := a[i].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case int32:
		return int64(v)
	default:
		panic(fmt.Sprintf("reactor: argument %d is %T, not an integer", i, a[i]))
	}
}

// Float64 returns argument i as a float64, accepting integer inputs.
func (a Args) Float64(i int) float64 {
	switch v := a[i].(type) {
	case float64:
		return v
	case float32:
		return float64(v)
	case int64:
		return float64(v)
	case int:
		return float64(v)
	default:
		panic(fmt.Sprintf("reactor: argument %d is %T, not a number", i, a[i]))
	}
}

// String returns argument i as a string.
func (a Args) String(i int) string {
	v, ok := a[i].(string)
	if !ok {
		panic(fmt.Sprintf("reactor: argument %d is %T, not a string", i, a[i]))
	}
	return v
}

// Bool returns argument i as a bool.
func (a Args) Bool(i int) bool {
	v, ok := a[i].(bool)
	if !ok {
		panic(fmt.Sprintf("reactor: argument %d is %T, not a bool", i, a[i]))
	}
	return v
}

// Strings returns argument i as a string slice.
func (a Args) Strings(i int) []string {
	v, ok := a[i].([]string)
	if !ok {
		panic(fmt.Sprintf("reactor: argument %d is %T, not []string", i, a[i]))
	}
	return v
}

// Int64s returns argument i as an int64 slice.
func (a Args) Int64s(i int) []int64 {
	v, ok := a[i].([]int64)
	if !ok {
		panic(fmt.Sprintf("reactor: argument %d is %T, not []int64", i, a[i]))
	}
	return v
}

package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/rel"
)

func TestAbortfAndIsUserAbort(t *testing.T) {
	err := Abortf("balance %d too low", 5)
	if !IsUserAbort(err) {
		t.Fatalf("Abortf result should be a user abort")
	}
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("Abortf result should wrap ErrUserAbort")
	}
	if IsUserAbort(errors.New("other")) {
		t.Fatalf("unrelated errors are not user aborts")
	}
}

func TestArgsAccessors(t *testing.T) {
	a := Args{int64(1), 2, 2.5, "s", true, []string{"x"}, []int64{7}}
	if a.Int64(0) != 1 || a.Int64(1) != 2 {
		t.Fatalf("Int64 accessor wrong")
	}
	if a.Float64(2) != 2.5 || a.Float64(1) != 2 {
		t.Fatalf("Float64 accessor wrong")
	}
	if a.String(3) != "s" || !a.Bool(4) {
		t.Fatalf("String/Bool accessor wrong")
	}
	if len(a.Strings(5)) != 1 || len(a.Int64s(6)) != 1 {
		t.Fatalf("slice accessors wrong")
	}
	if a.Len() != 7 {
		t.Fatalf("Len wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong-typed access should panic")
		}
	}()
	_ = a.Int64(3)
}

func TestFutureResolveBeforeGet(t *testing.T) {
	f := ResolvedFuture(int64(7), nil)
	if !f.Resolved() {
		t.Fatalf("future should be resolved")
	}
	v, err := f.Get()
	if err != nil || v.(int64) != 7 {
		t.Fatalf("Get = (%v, %v)", v, err)
	}
	if n, err := f.GetInt64(); err != nil || n != 7 {
		t.Fatalf("GetInt64 = (%v, %v)", n, err)
	}
}

func TestFutureGetBlocksUntilResolve(t *testing.T) {
	f := NewFuture()
	go func() {
		time.Sleep(5 * time.Millisecond)
		f.Resolve(3.5, nil)
	}()
	v, err := f.GetFloat64()
	if err != nil || v != 3.5 {
		t.Fatalf("GetFloat64 = (%v, %v)", v, err)
	}
}

func TestFutureDoubleResolveIsNoop(t *testing.T) {
	f := NewFuture()
	f.Resolve(1, nil)
	f.Resolve(2, errors.New("late"))
	v, err := f.Get()
	if err != nil || v.(int) != 1 {
		t.Fatalf("second resolve must not override the first")
	}
}

func TestFutureWaitHooksFireOnlyWhenBlocking(t *testing.T) {
	var waits, resumes atomic.Int32
	f := NewFuture()
	f.SetWaitHooks(func() { waits.Add(1) }, func() { resumes.Add(1) })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := f.Get(); err != nil {
			t.Errorf("Get: %v", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	f.Resolve(nil, nil)
	wg.Wait()
	if waits.Load() != 1 || resumes.Load() != 1 {
		t.Fatalf("hooks fired (%d, %d), want (1, 1)", waits.Load(), resumes.Load())
	}

	// Already-resolved future: hooks must not fire.
	waits.Store(0)
	resumes.Store(0)
	if _, err := f.Get(); err != nil {
		t.Fatal(err)
	}
	if waits.Load() != 0 || resumes.Load() != 0 {
		t.Fatalf("hooks fired on non-blocking Get")
	}
}

func TestFutureTypedAccessorErrors(t *testing.T) {
	f := ResolvedFuture("string", nil)
	if _, err := f.GetFloat64(); err == nil {
		t.Fatalf("GetFloat64 of a string should fail")
	}
	if _, err := f.GetInt64(); err == nil {
		t.Fatalf("GetInt64 of a string should fail")
	}
	fe := ResolvedFuture(nil, Abortf("boom"))
	if err := fe.Err(); !IsUserAbort(err) {
		t.Fatalf("Err should surface the abort")
	}
}

func TestWaitAllReturnsFirstError(t *testing.T) {
	ok := ResolvedFuture(1, nil)
	bad := ResolvedFuture(nil, Abortf("bad"))
	worse := ResolvedFuture(nil, errors.New("worse"))
	err := WaitAll(ok, nil, bad, worse)
	if !IsUserAbort(err) {
		t.Fatalf("WaitAll should return the first error, got %v", err)
	}
	if err := WaitAll(ok); err != nil {
		t.Fatalf("WaitAll over successful futures should be nil")
	}
}

func testType(name string) *Type {
	schema := rel.MustSchema("t", []rel.Column{{Name: "k", Type: rel.Int64}}, "k")
	return NewType(name).
		AddRelation(schema).
		AddProcedure("noop", func(ctx Context, args Args) (any, error) { return nil, nil })
}

func TestTypeValidate(t *testing.T) {
	if err := testType("ok").Validate(); err != nil {
		t.Fatalf("valid type rejected: %v", err)
	}
	if err := NewType("").Validate(); err == nil {
		t.Fatalf("unnamed type accepted")
	}
	if err := NewType("norel").AddProcedure("p", nil).Validate(); err == nil {
		t.Fatalf("type without relations accepted")
	}
	noProc := NewType("noproc").AddRelation(rel.MustSchema("t", []rel.Column{{Name: "k", Type: rel.Int64}}, "k"))
	if err := noProc.Validate(); err == nil {
		t.Fatalf("type without procedures accepted")
	}
}

// TestAddRelationRejectsDuplicate pins the declaration-time check: a second
// relation with the same name panics in AddRelation itself, not at
// DatabaseDef validation or first use.
func TestAddRelationRejectsDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate relation name accepted at declaration time")
		}
	}()
	dup := testType("dup")
	dup.AddRelation(rel.MustSchema("t", []rel.Column{{Name: "k", Type: rel.Int64}}, "k"))
}

func TestTypeProcedureLookup(t *testing.T) {
	ty := testType("x")
	if ty.Procedure("noop") == nil {
		t.Fatalf("registered procedure not found")
	}
	if ty.Procedure("missing") != nil {
		t.Fatalf("missing procedure should be nil")
	}
	names := ty.ProcedureNames()
	if len(names) != 1 || names[0] != "noop" {
		t.Fatalf("ProcedureNames = %v", names)
	}
}

func TestDatabaseDefDeclarations(t *testing.T) {
	def := NewDatabaseDef()
	if err := def.Validate(); err == nil {
		t.Fatalf("empty definition should not validate")
	}
	def.MustAddType(testType("Customer"))
	if err := def.AddType(testType("Customer")); err == nil {
		t.Fatalf("duplicate type accepted")
	}
	if err := def.DeclareReactor("c1", "Missing"); err == nil {
		t.Fatalf("reactor with undeclared type accepted")
	}
	def.MustDeclareReactors("Customer", "c1", "c2", "c3")
	if err := def.DeclareReactor("c1", "Customer"); err == nil {
		t.Fatalf("duplicate reactor accepted")
	}
	if err := def.DeclareReactor("", "Customer"); err == nil {
		t.Fatalf("unnamed reactor accepted")
	}
	if def.NumReactors() != 3 {
		t.Fatalf("NumReactors = %d, want 3", def.NumReactors())
	}
	if !def.HasReactor("c2") || def.HasReactor("zzz") {
		t.Fatalf("HasReactor wrong")
	}
	if def.TypeOf("c1") == nil || def.TypeOf("c1").Name() != "Customer" {
		t.Fatalf("TypeOf wrong")
	}
	if def.TypeOf("zzz") != nil {
		t.Fatalf("TypeOf of unknown reactor should be nil")
	}
	if def.Type("Customer") == nil {
		t.Fatalf("Type lookup failed")
	}
	order := def.Reactors()
	if len(order) != 3 || order[0] != "c1" || order[2] != "c3" {
		t.Fatalf("Reactors order wrong: %v", order)
	}
	if err := def.Validate(); err != nil {
		t.Fatalf("valid definition rejected: %v", err)
	}
}

func TestActiveSetSafetyCondition(t *testing.T) {
	as := NewActiveSet()
	if err := as.Enter("A"); err != nil {
		t.Fatalf("first Enter failed: %v", err)
	}
	if err := as.Enter("B"); err != nil {
		t.Fatalf("Enter on a different reactor failed: %v", err)
	}
	if err := as.Enter("A"); !errors.Is(err, ErrDangerousStructure) {
		t.Fatalf("second Enter on the same reactor should be dangerous, got %v", err)
	}
	if !as.ActiveOn("A") || as.Size() != 2 {
		t.Fatalf("active set bookkeeping wrong")
	}
	as.Exit("A")
	if as.ActiveOn("A") {
		t.Fatalf("reactor should be inactive after Exit")
	}
	if err := as.Enter("A"); err != nil {
		t.Fatalf("Enter after Exit should succeed: %v", err)
	}
	// Exit of a reactor that is not active is a no-op.
	as.Exit("never-entered")
}

func TestActiveSetConcurrentEnterSingleWinner(t *testing.T) {
	as := NewActiveSet()
	const goroutines = 16
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := as.Enter("hot"); err == nil {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d concurrent Enters succeeded, want exactly 1", wins.Load())
	}
}

package core

import (
	"errors"
	"fmt"
)

// Sentinel errors of the reactor programming model.
var (
	// ErrUserAbort is returned (possibly wrapped) when a procedure aborts the
	// transaction for an application-level reason, e.g. a violated balance or
	// risk limit. The root transaction rolls back, exactly as in the paper:
	// "any condition leading to an abort in a sub-transaction leads to the
	// abort of the corresponding root transaction."
	ErrUserAbort = errors.New("reactor: user abort")

	// ErrDangerousStructure is returned when the dynamic safety condition of
	// §2.2.4 is violated: a sub-transaction is invoked on a reactor that
	// already has another sub-transaction of the same root transaction active.
	ErrDangerousStructure = errors.New("reactor: dangerous call structure (concurrent sub-transactions on the same reactor)")

	// ErrUnknownReactor is returned for calls that address a reactor name not
	// declared in the database.
	ErrUnknownReactor = errors.New("reactor: unknown reactor")

	// ErrUnknownProcedure is returned for calls to a procedure that the target
	// reactor's type does not define.
	ErrUnknownProcedure = errors.New("reactor: unknown procedure")

	// ErrUnknownRelation is returned by queries against a relation the current
	// reactor's type does not encapsulate.
	ErrUnknownRelation = errors.New("reactor: unknown relation")

	// ErrNoSuchRow is returned by point updates/deletes of a missing key.
	ErrNoSuchRow = errors.New("reactor: no such row")
)

// Abortf builds an application-level abort error. Procedures return it to
// abort the root transaction; the message is reported to the client.
func Abortf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUserAbort, fmt.Sprintf(format, args...))
}

// IsUserAbort reports whether err is an application-level abort.
func IsUserAbort(err error) bool { return errors.Is(err, ErrUserAbort) }

package core

import (
	"sync"
)

// Future represents the result of an asynchronous procedure call on a reactor
// (a sub-transaction), as in the paper's `execute` returning a promise. The
// calling code may wait for the result with Get, invoke procedures on other
// reactors first, or not wait at all: the runtime guarantees that a (sub-)
// transaction completes only when all the sub-transactions invoked in its
// context have completed.
type Future struct {
	mu       sync.Mutex
	done     chan struct{}
	resolved bool
	value    any
	err      error

	// onWait/onResume let the runtime release and re-acquire the executor's
	// virtual core while the caller blocks (cooperative multitasking, §3.2.3).
	onWait   func()
	onResume func()

	// onDeliver runs exactly once, on the first Get that returns the result to
	// the caller. The runtime uses it to charge the receive communication cost
	// Cr on the caller's core.
	onDeliver func()
	delivered bool
}

// NewFuture returns an unresolved future.
func NewFuture() *Future {
	return &Future{done: make(chan struct{})}
}

// ResolvedFuture returns a future that already carries a result; it is used
// for synchronously inlined sub-transaction calls, whose "future results are
// immediately available" (§2.2.4).
func ResolvedFuture(value any, err error) *Future {
	f := NewFuture()
	f.Resolve(value, err)
	return f
}

// SetWaitHooks installs callbacks invoked around a blocking Get. The runtime
// uses them to hand the executor's core to another request while this one is
// blocked on a remote sub-transaction.
func (f *Future) SetWaitHooks(onWait, onResume func()) {
	f.mu.Lock()
	f.onWait = onWait
	f.onResume = onResume
	f.mu.Unlock()
}

// SetDeliverHook installs a callback that runs exactly once, on the first Get
// that returns the result to the caller (whether or not that Get had to
// block).
func (f *Future) SetDeliverHook(onDeliver func()) {
	f.mu.Lock()
	f.onDeliver = onDeliver
	f.mu.Unlock()
}

// Resolve completes the future with a value and error. Resolving an already
// resolved future is a no-op so that races between result delivery and
// cancellation are harmless.
func (f *Future) Resolve(value any, err error) {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return
	}
	f.value = value
	f.err = err
	f.resolved = true
	close(f.done)
	f.mu.Unlock()
}

// Resolved reports whether the future already carries a result.
func (f *Future) Resolved() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resolved
}

// Get blocks until the future is resolved and returns its value and error.
func (f *Future) Get() (any, error) {
	f.mu.Lock()
	if f.resolved {
		v, err := f.value, f.err
		deliver := f.takeDeliverLocked()
		f.mu.Unlock()
		if deliver != nil {
			deliver()
		}
		return v, err
	}
	onWait, onResume := f.onWait, f.onResume
	f.mu.Unlock()
	if onWait != nil {
		onWait()
	}
	<-f.done
	if onResume != nil {
		onResume()
	}
	f.mu.Lock()
	v, err := f.value, f.err
	deliver := f.takeDeliverLocked()
	f.mu.Unlock()
	if deliver != nil {
		deliver()
	}
	return v, err
}

// takeDeliverLocked returns the deliver hook if it has not fired yet and marks
// it as fired. The caller holds f.mu.
func (f *Future) takeDeliverLocked() func() {
	if f.delivered || f.onDeliver == nil {
		return nil
	}
	f.delivered = true
	return f.onDeliver
}

// Err blocks until resolution and returns only the error; callers that ignore
// the value (e.g. fire-and-forget credits) use it in tests.
func (f *Future) Err() error {
	_, err := f.Get()
	return err
}

// GetFloat64 is a convenience accessor for procedures returning a number.
func (f *Future) GetFloat64() (float64, error) {
	v, err := f.Get()
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	case int:
		return float64(x), nil
	case nil:
		return 0, nil
	default:
		return 0, Abortf("future value %T is not a number", v)
	}
}

// GetInt64 is a convenience accessor for procedures returning an integer.
func (f *Future) GetInt64() (int64, error) {
	v, err := f.Get()
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case int64:
		return x, nil
	case int:
		return int64(x), nil
	case nil:
		return 0, nil
	default:
		return 0, Abortf("future value %T is not an integer", v)
	}
}

// WaitAll resolves a set of futures, returning the first error encountered
// (after waiting for all of them, so no sub-transaction is left running).
func WaitAll(futures ...*Future) error {
	var firstErr error
	for _, f := range futures {
		if f == nil {
			continue
		}
		if _, err := f.Get(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

package core

import (
	"math/rand"
	"time"

	"reactdb/internal/rel"
)

// Context is the execution interface a procedure sees while running as a
// (sub-)transaction on a reactor. It provides declarative access to the
// relations encapsulated by the current reactor only; state of other reactors
// is reachable exclusively through asynchronous procedure calls (Call), as
// required by the programming model (§2.2.2).
//
// All data access methods operate under the root transaction's concurrency
// control context, so their effects are atomic, isolated and rolled back on
// abort.
type Context interface {
	// Reactor returns the name of the reactor this (sub-)transaction executes
	// on, the equivalent of the paper's my_name().
	Reactor() string

	// Schema returns the schema of one of the current reactor's relations, so
	// procedures can resolve column positions once.
	Schema(relation string) (*rel.Schema, error)

	// Get reads the row of the relation with the given primary key values. It
	// returns (nil, nil) if the row does not exist.
	Get(relation string, keyVals ...any) (rel.Row, error)

	// GetView reads the row like Get but returns a lazy, allocation-free
	// rel.RowView over the stored payload instead of materializing a Row;
	// hot read-mostly procedures use it to stay off the allocator. The view
	// is valid only until the transaction ends and its Bytes accessor aliases
	// engine-owned memory (read-only). The bool reports row presence.
	GetView(relation string, keyVals ...any) (rel.RowView, bool, error)

	// Insert adds a new row. It fails if the primary key already exists.
	Insert(relation string, row rel.Row) error

	// Update replaces the row whose primary key matches row's key columns.
	// It fails with ErrNoSuchRow if the row does not exist.
	Update(relation string, row rel.Row) error

	// Delete removes the row with the given primary key values. It fails with
	// ErrNoSuchRow if the row does not exist.
	Delete(relation string, keyVals ...any) error

	// Scan iterates the relation in primary key order, restricted to rows
	// whose leading key columns equal prefixVals (pass none to scan the whole
	// relation). The callback returns false to stop early. Scans register the
	// relation for phantom validation.
	Scan(relation string, fn func(row rel.Row) bool, prefixVals ...any) error

	// ScanDesc is Scan in descending key order (used e.g. for "latest N
	// orders" style queries).
	ScanDesc(relation string, fn func(row rel.Row) bool, prefixVals ...any) error

	// SelectAll returns every row of the relation with the given key prefix.
	SelectAll(relation string, prefixVals ...any) ([]rel.Row, error)

	// Query executes a declarative read-only query (see rel.NewQuery) in the
	// context of the current root transaction. Sources naming no reactors
	// read the current reactor's relations; sources naming other reactors
	// fan out as read sub-transactions over the same future machinery as
	// Call, so the result is serializable with every other transaction.
	Query(q *rel.Query) (*rel.Result, error)

	// Call asynchronously invokes a procedure on another reactor — the
	// paper's `procedure_name(args) on reactor reactor_name`. It returns a
	// future for the sub-transaction's result. A call addressed to the
	// current reactor is inlined and executed synchronously; its future is
	// already resolved on return. The root transaction completes only after
	// every sub-transaction spawned in its context completes, whether or not
	// the caller waits on the future.
	Call(reactor, procedure string, args ...any) (*Future, error)

	// CallSync invokes a procedure on another reactor and waits for its
	// result, the shared formulation of "call get() immediately".
	CallSync(reactor, procedure string, args ...any) (any, error)

	// Work simulates CPU-bound processing of the given duration on the
	// executor's virtual core (see DESIGN.md §5). Benchmarks use it to model
	// computation such as the paper's sim_risk or stock replenishment logic.
	Work(d time.Duration)

	// Rand returns a per-transaction pseudo random source, for procedures with
	// nondeterministic logic (e.g. Monte-Carlo style risk simulation).
	Rand() *rand.Rand
}

// Helper aggregations over rows returned by Context queries. They mirror the
// aggregate queries used in the paper's examples (e.g. SELECT SUM(value)).

// SumFloat64 scans the relation (restricted to the key prefix) and sums the
// named column.
func SumFloat64(ctx Context, relation, column string, prefixVals ...any) (float64, error) {
	schema, err := ctx.Schema(relation)
	if err != nil {
		return 0, err
	}
	colIdx := schema.Col(column)
	if colIdx < 0 {
		return 0, Abortf("relation %s has no column %s", relation, column)
	}
	var sum float64
	err = ctx.Scan(relation, func(row rel.Row) bool {
		sum += row.Float64(colIdx)
		return true
	}, prefixVals...)
	if err != nil {
		return 0, err
	}
	return sum, nil
}

// CountRows counts rows of the relation with the given key prefix.
func CountRows(ctx Context, relation string, prefixVals ...any) (int, error) {
	count := 0
	err := ctx.Scan(relation, func(rel.Row) bool {
		count++
		return true
	}, prefixVals...)
	return count, err
}

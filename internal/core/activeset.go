package core

import (
	"fmt"
	"sync"
)

// ActiveSet implements the dynamic intra-transaction safety condition of
// §2.2.4: for a given root transaction, at most one execution context may be
// active on a given reactor at any time. The runtime conservatively aborts a
// transaction that asynchronously invokes a sub-transaction on a reactor which
// already has another sub-transaction of the same root transaction active
// (cyclic call structures, or diamond-shaped asynchronous fan-ins).
//
// One ActiveSet exists per root transaction; its methods are safe for
// concurrent use by the executors running the transaction's sub-transactions.
type ActiveSet struct {
	mu     sync.Mutex
	active map[string]int // reactor name -> number of active execution contexts
}

// NewActiveSet returns an empty active set.
func NewActiveSet() *ActiveSet {
	return &ActiveSet{active: make(map[string]int)}
}

// Enter registers a new sub-transaction execution context on the reactor. It
// returns ErrDangerousStructure (wrapped with the reactor name) if another
// sub-transaction of the same root transaction is already active there.
func (a *ActiveSet) Enter(reactor string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active[reactor] > 0 {
		return fmt.Errorf("%w: reactor %s", ErrDangerousStructure, reactor)
	}
	a.active[reactor]++
	return nil
}

// Exit unregisters a completed sub-transaction execution context.
func (a *ActiveSet) Exit(reactor string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active[reactor] > 0 {
		a.active[reactor]--
	}
}

// ActiveOn reports whether the reactor currently has an active execution
// context for this root transaction.
func (a *ActiveSet) ActiveOn(reactor string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active[reactor] > 0
}

// Size returns the number of reactors with at least one active execution
// context.
func (a *ActiveSet) Size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, c := range a.active {
		if c > 0 {
			n++
		}
	}
	return n
}

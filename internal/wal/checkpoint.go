package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Checkpoint is a fuzzy snapshot of one container's committed catalog state,
// stored as a sidecar file next to the log's segments (see Storage's
// checkpoint methods). It is the starting point of the recovery fast path:
// install Rows, then replay only log records with LSN > LowLSN.
//
// The fuzzy-checkpoint contract the producer must uphold: every committed
// transaction whose record carries an LSN <= LowLSN had all of its effects
// installed in memory before the snapshot of Rows began, and is therefore
// fully captured. Transactions with records above LowLSN may be partially
// captured — replaying the log suffix on top of the snapshot (idempotently,
// newest TID wins) converges on the correct state. Segments every record of
// which is at or below LowLSN can be deleted once the checkpoint is durable
// (Log.TruncateBelow).
type Checkpoint struct {
	// Seq is the checkpoint's sequence number; recovery loads the newest
	// decodable checkpoint and falls back to older ones (and finally to full
	// replay) when a checkpoint is torn or corrupt.
	Seq uint64
	// LowLSN is the replay low-water mark: records with LSN <= LowLSN are
	// captured by Rows and must not be re-applied blindly (replay remains
	// idempotent regardless); segments wholly at or below it are deletable.
	LowLSN uint64
	// MaxTID is a transaction-id watermark at snapshot time, at least as
	// large as every TID captured in Rows — including TIDs of deleted rows,
	// which the snapshot otherwise forgets. Recovery advances the concurrency
	// control domain past it so post-recovery TIDs never collide with
	// truncated history.
	MaxTID uint64
	// MaxGlobalID is the database-wide root transaction id watermark at
	// snapshot time. Truncation deletes the prepare/decision records the
	// recovery scan previously reseeded the id sequence from, so the
	// checkpoint must carry the watermark itself.
	MaxGlobalID uint64
	// HighLSN is the fuzzy-capture horizon: the log's last assigned LSN when
	// the Rows snapshot finished. Rows may have absorbed effects of any
	// record up to HighLSN (the fuzzy leak that suffix replay normally
	// corrects), and of nothing above it. Failover divergence repair uses it:
	// truncating the log above some LSN T is sound against this checkpoint
	// only when T >= HighLSN, otherwise the blob may carry an effect whose
	// record was just cut. 0 means the checkpoint predates this field and its
	// horizon is unknown (treat as unbounded).
	HighLSN uint64
	// Rows is the snapshot: one entry per indexed row, carrying the engine's
	// fully-qualified key, the row's committed version, and either its
	// payload or a deletion tombstone. Tombstones matter for the documented
	// loader flow: base data re-loaded before Recover must not resurrect a
	// row whose (truncated) delete record the checkpoint absorbed.
	Rows []CheckpointRow
}

// CheckpointRow is one captured row of a checkpoint. Deleted marks a
// committed deletion (Data is empty): the key existed, a transaction below
// the checkpoint's low-water mark removed it, and installing the checkpoint
// must leave — or make — it absent even if a loader repopulated it.
type CheckpointRow struct {
	Key     string
	TID     uint64
	Data    []byte
	Deleted bool
}

// Checkpoint format versions. Version 1 predates the HighLSN capture
// horizon; version 2 appends it after MaxGlobalID. Decoding accepts both —
// a v1 blob simply has an unknown (zero) horizon — and encoding always
// writes the newest version.
const (
	checkpointVersion1 = 1
	checkpointVersion  = 2
)

// EncodeCheckpoint encodes cp as a single CRC-framed blob: the same 4-byte
// length + 4-byte CRC32 header the log's record frames use, then
//
//	1 version byte | uvarint Seq | uvarint LowLSN | uvarint MaxTID |
//	uvarint MaxGlobalID | uvarint HighLSN (version >= 2) | uvarint #rows |
//	  per row: 1 flag byte (bit0 = deleted) | uvarint keyLen | key |
//	           uvarint TID | uvarint dataLen | data
//
// A checkpoint file holds exactly one frame; trailing bytes are corruption.
func EncodeCheckpoint(cp *Checkpoint) []byte {
	buf := make([]byte, frameHeaderSize, frameHeaderSize+64)
	buf = append(buf, checkpointVersion)
	buf = binary.AppendUvarint(buf, cp.Seq)
	buf = binary.AppendUvarint(buf, cp.LowLSN)
	buf = binary.AppendUvarint(buf, cp.MaxTID)
	buf = binary.AppendUvarint(buf, cp.MaxGlobalID)
	buf = binary.AppendUvarint(buf, cp.HighLSN)
	buf = binary.AppendUvarint(buf, uint64(len(cp.Rows)))
	for _, r := range cp.Rows {
		var flags byte
		if r.Deleted {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(len(r.Key)))
		buf = append(buf, r.Key...)
		buf = binary.AppendUvarint(buf, r.TID)
		buf = binary.AppendUvarint(buf, uint64(len(r.Data)))
		buf = append(buf, r.Data...)
	}
	payload := buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return buf
}

// DecodeCheckpoint decodes one checkpoint blob. Decoding is strict and
// all-or-nothing: a short frame, CRC mismatch, unknown version, implausible
// length, or trailing bytes (inside the payload or after the frame) returns
// an error wrapping ErrCorrupt and no partial checkpoint. Recovery treats any
// such error as "this checkpoint does not exist" and falls back to an older
// checkpoint or to full log replay.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < frameHeaderSize {
		return nil, fmt.Errorf("%w: truncated checkpoint header", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint32(buf)
	sum := binary.LittleEndian.Uint32(buf[4:])
	if payloadLen == 0 || payloadLen > maxPayload {
		return nil, fmt.Errorf("%w: implausible checkpoint payload length %d", ErrCorrupt, payloadLen)
	}
	if int(payloadLen) != len(buf)-frameHeaderSize {
		return nil, fmt.Errorf("%w: checkpoint frame length %d does not span the %d-byte file",
			ErrCorrupt, payloadLen, len(buf))
	}
	payload := buf[frameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checkpoint crc mismatch", ErrCorrupt)
	}

	p := payload
	if len(p) == 0 || (p[0] != checkpointVersion1 && p[0] != checkpointVersion) {
		return nil, fmt.Errorf("%w: unknown checkpoint version", ErrCorrupt)
	}
	version := p[0]
	p = p[1:]
	var cp Checkpoint
	var err error
	if cp.Seq, p, err = readUvarint(p); err != nil {
		return nil, err
	}
	if cp.LowLSN, p, err = readUvarint(p); err != nil {
		return nil, err
	}
	if cp.MaxTID, p, err = readUvarint(p); err != nil {
		return nil, err
	}
	if cp.MaxGlobalID, p, err = readUvarint(p); err != nil {
		return nil, err
	}
	if version >= 2 {
		if cp.HighLSN, p, err = readUvarint(p); err != nil {
			return nil, err
		}
	}
	var n uint64
	if n, p, err = readUvarint(p); err != nil {
		return nil, err
	}
	if n > uint64(len(p)) { // each row needs at least its flag byte
		return nil, fmt.Errorf("%w: checkpoint row count %d exceeds payload", ErrCorrupt, n)
	}
	if n > 0 {
		cp.Rows = make([]CheckpointRow, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var r CheckpointRow
		var keyLen, dataLen uint64
		if len(p) == 0 {
			return nil, fmt.Errorf("%w: truncated checkpoint row flags", ErrCorrupt)
		}
		flags := p[0]
		p = p[1:]
		if flags&^byte(1) != 0 {
			return nil, fmt.Errorf("%w: unknown checkpoint row flags %#x", ErrCorrupt, flags)
		}
		r.Deleted = flags&1 != 0
		if keyLen, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		if keyLen > uint64(len(p)) {
			return nil, fmt.Errorf("%w: truncated checkpoint key", ErrCorrupt)
		}
		r.Key = string(p[:keyLen])
		p = p[keyLen:]
		if r.TID, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		if dataLen, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		if dataLen > uint64(len(p)) {
			return nil, fmt.Errorf("%w: truncated checkpoint data", ErrCorrupt)
		}
		if r.Deleted && dataLen > 0 {
			return nil, fmt.Errorf("%w: checkpoint tombstone carries %d data bytes", ErrCorrupt, dataLen)
		}
		if dataLen > 0 {
			r.Data = append([]byte(nil), p[:dataLen]...)
		}
		p = p[dataLen:]
		cp.Rows = append(cp.Rows, r)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing checkpoint payload bytes", ErrCorrupt, len(p))
	}
	return &cp, nil
}

// LatestCheckpoint loads the newest decodable checkpoint stored on s. Torn or
// corrupt checkpoints (a crash mid-write, bit rot) are skipped — never loaded
// partially — and the number skipped is reported so recovery can surface the
// fallback; a checkpoint file that vanishes between listing and reading is
// treated the same way. (nil, 0, nil) means no checkpoint exists at all and
// recovery must replay the full log.
func LatestCheckpoint(s Storage) (*Checkpoint, int, error) {
	seqs, err := s.ListCheckpoints()
	if err != nil {
		return nil, 0, err
	}
	skipped := 0
	for i := len(seqs) - 1; i >= 0; i-- {
		buf, err := s.ReadCheckpoint(seqs[i])
		if err != nil {
			if os.IsNotExist(err) {
				skipped++
				continue
			}
			return nil, skipped, err
		}
		cp, err := DecodeCheckpoint(buf)
		if err != nil {
			skipped++
			continue
		}
		return cp, skipped, nil
	}
	return nil, skipped, nil
}

// Package wal implements ReactDB's write-ahead log: an append-only,
// segmented log of transaction commit records with CRC-framed encoding,
// monotonic LSN assignment, group-fsync batching, and replay iteration for
// recovery.
//
// Each database container owns one Log. The engine's group committer appends
// a batch's commit records and fsyncs once per flush before any waiter is
// acknowledged, so the durable-write cost amortizes over the batch; the
// unbatched commit paths (group commit disabled, two-phase commit
// participants) append and fsync per transaction.
//
// Segments are persisted through a Storage implementation. MemStorage keeps
// segments in process memory with honest fsync semantics (bytes written but
// not synced are lost on a simulated crash), which is what the
// crash-consistency tests use; FileStorage writes real files and real fsyncs.
package wal

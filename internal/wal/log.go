package wal

import (
	"fmt"
	"time"

	"sync"

	"reactdb/internal/stats"
)

// Options configure a Log.
type Options struct {
	// SegmentSize is the byte size at which the active segment is sealed and
	// a new one started (default 1 MiB). A batch is never split across
	// segments: rotation happens between batches, so every segment holds
	// whole records.
	SegmentSize int
}

// DefaultSegmentSize is used when Options.SegmentSize is zero.
const DefaultSegmentSize = 1 << 20

// Log is an append-only segmented write-ahead log. Append assigns LSNs and
// buffers frames into the active segment; Sync makes everything appended so
// far durable with one fsync. Concurrent Sync callers batch: whoever fsyncs
// first covers every record appended before it, and later callers whose
// records are already durable return without touching the disk (group-fsync
// absorption).
type Log struct {
	storage Storage
	segSize int

	mu        sync.Mutex
	active    SegmentFile // nil until the first append (lazy creation)
	activeIdx uint64
	nextIdx   uint64 // index the next created segment will get
	activeLen int
	appended  uint64 // last LSN appended
	durable   uint64 // last LSN made durable by fsync
	unsynced  int    // bytes appended since the last successful fsync
	closed    bool
	broken    error // set on a failed segment write: the tail may be torn

	// epoch is the primary term stamped on every appended record; fenceBelow
	// is the lowest epoch still allowed to append. When fenceBelow exceeds
	// epoch the log is fenced: a newer primary exists, and accepting (or
	// fsyncing) more records here would let a zombie acknowledge writes the
	// cluster has already moved past. See SetEpoch and Fence.
	epoch      uint64
	fenceBelow uint64

	// stats (guarded by mu except the histograms, which are internally atomic)
	appends         uint64
	appendedBytes   uint64
	fsyncs          uint64
	absorbed        uint64
	segments        uint64
	truncations     uint64
	segmentsDeleted uint64
	fsyncLat        *stats.Histogram
	flushBytes      *stats.Histogram
}

// Open opens a log on the given storage: it scans existing segments to find
// the last assigned LSN (so new appends continue the sequence). The active
// segment is created lazily on first append, so an idle restart does not
// accumulate empty segment files.
func Open(storage Storage, opts Options) (*Log, error) {
	segSize := opts.SegmentSize
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	l := &Log{
		storage:    storage,
		segSize:    segSize,
		fsyncLat:   stats.NewHistogram(stats.DurationBounds()),
		flushBytes: stats.NewHistogram(stats.ByteBounds()),
	}
	indexes, err := storage.List()
	if err != nil {
		return nil, err
	}
	next := uint64(0)
	if len(indexes) > 0 {
		next = indexes[len(indexes)-1] + 1
		// A predecessor killed mid-run may have left its final segment's
		// tail in the page cache, never fsynced; make it durable before
		// treating recovered records as such, or a later machine crash could
		// erase records that post-restart commits were built on. Segments
		// before the last were fsynced at rotation.
		if err := storage.SyncSegment(indexes[len(indexes)-1]); err != nil {
			return nil, err
		}
	}
	// LSNs ascend across segments, so the last segment holding any valid
	// record carries the maximum; scan backwards and stop at the first hit
	// instead of reading the whole log.
	for i := len(indexes) - 1; i >= 0; i-- {
		buf, err := storage.ReadSegment(indexes[i])
		if err != nil {
			return nil, err
		}
		off := 0
		for off < len(buf) {
			rec, n, err := decodeRecord(buf, off)
			if err != nil {
				break // torn tail of a crashed append; valid prefix ends here
			}
			if rec.LSN > l.appended {
				l.appended = rec.LSN
			}
			off = n
		}
		if l.appended > 0 {
			break
		}
	}
	// A checkpoint may cover — and truncation may have deleted — every record
	// the scan above could find, yet new LSNs must still ascend past whatever
	// the newest durable checkpoint claims covered: recovery skips records at
	// or below the checkpoint's low-water mark, so restarting the sequence
	// underneath it would silently drop post-restart commits. Promoting a
	// replica mirror hits exactly this shape — a transferred blob alongside a
	// still-empty log.
	if cp, _, err := LatestCheckpoint(storage); err == nil && cp != nil && cp.LowLSN > l.appended {
		l.appended = cp.LowLSN
	}
	l.durable = l.appended // everything recovered from storage is durable
	l.nextIdx = next
	return l, nil
}

// ensureActiveLocked lazily creates the active segment.
func (l *Log) ensureActiveLocked() error {
	if l.active != nil {
		return nil
	}
	active, err := l.storage.Create(l.nextIdx)
	if err != nil {
		return err
	}
	l.active = active
	l.activeIdx = l.nextIdx
	l.nextIdx++
	l.activeLen = 0
	l.segments++
	return nil
}

// Append appends one commit record, assigning its LSN. The record is durable
// only after a subsequent Sync returns nil.
func (l *Log) Append(rec Record) (uint64, error) {
	lsns, err := l.AppendBatch([]Record{rec})
	return lsns, err
}

// AppendBatch appends a batch of commit records with consecutive LSNs and
// returns the last LSN assigned. One buffer is encoded and one write issued
// for the whole batch.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.broken != nil {
		return 0, fmt.Errorf("wal: log wedged after failed write: %w", l.broken)
	}
	if l.fenceBelow > l.epoch {
		return 0, fmt.Errorf("%w (appending at epoch %d, fenced below %d)", ErrFenced, l.epoch, l.fenceBelow)
	}
	if err := l.ensureActiveLocked(); err != nil {
		return 0, err
	}
	// The appended watermark (and with it the durable fast path in Sync)
	// advances only after the bytes hit the segment: rotation fsyncs the old
	// segment and sets durable to the watermark, so counting this batch's
	// LSNs early would let a rotation-triggering append's Sync be absorbed
	// without its bytes ever being fsynced.
	lsn := l.appended
	var buf []byte
	for i := range recs {
		lsn++
		recs[i].LSN = lsn
		recs[i].Epoch = l.epoch
		buf = appendFrame(buf, &recs[i])
	}
	if l.activeLen > 0 && l.activeLen+len(buf) > l.segSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if _, err := l.active.Write(buf); err != nil {
		// The segment tail may now hold a torn partial frame — or worse,
		// complete leading frames of a batch whose transactions are about to
		// be aborted. Burn the failed LSNs (retractions must sort after any
		// orphan frame carrying them), then best effort: seal this segment
		// and retract the whole batch on a fresh one, so neither a later
		// fsync nor the next Open's tail adoption can resurrect aborted
		// transactions, and the log can keep serving. If the retraction
		// fails too, wedge: every further append and sync fails until a
		// restart cuts the tail.
		l.appended = lsn
		if rerr := l.retractBatchLocked(recs); rerr != nil {
			l.broken = err
		}
		return 0, err
	}
	l.appended = lsn
	l.activeLen += len(buf)
	l.unsynced += len(buf)
	l.appends += uint64(len(recs))
	l.appendedBytes += uint64(len(buf))
	return l.appended, nil
}

// rotateLocked seals the active segment (fsyncing its contents so a sealed
// segment is always fully durable) and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.active = nil
	return l.ensureActiveLocked()
}

// retractBatchLocked is the failed-append salvage path: it seals the segment
// whose write just failed — deliberately *without* fsyncing it, since its
// tail (torn bytes, possibly complete leading frames of the failed batch)
// need never become durable — and appends + fsyncs one abort record per
// batch member on a fresh segment. The retraction is durable before
// AppendBatch reports the failure, so in every crash or restart in which an
// orphan frame survives, its abort record has survived too. If this salvage
// itself fails the log wedges and this process never fsyncs the tail; only
// OS write-back after a process kill can then leak an orphan frame (the
// documented in-doubt window for unsalvageable log failures).
func (l *Log) retractBatchLocked(recs []Record) error {
	if err := l.active.Close(); err != nil {
		return err
	}
	l.active = nil
	if err := l.ensureActiveLocked(); err != nil {
		return err
	}
	var buf []byte
	for _, r := range recs {
		l.appended++
		ab := Record{LSN: l.appended, TID: r.TID, Kind: KindAbort, Epoch: l.epoch}
		buf = appendFrame(buf, &ab)
	}
	if _, err := l.active.Write(buf); err != nil {
		return err
	}
	l.activeLen += len(buf)
	l.unsynced += len(buf)
	l.appends += uint64(len(recs))
	l.appendedBytes += uint64(len(buf))
	return l.fsyncLocked()
}

// Sync makes every appended record durable. A call whose records were already
// covered by an earlier fsync returns immediately without touching storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log wedged after failed write: %w", l.broken)
	}
	if l.fenceBelow > l.epoch {
		// A fenced log refuses to make its tail durable: the unsynced suffix
		// was never acknowledged, the cluster has promoted past it, and
		// fsyncing it now would only widen the divergence a re-attach must
		// truncate.
		return fmt.Errorf("%w (syncing at epoch %d, fenced below %d)", ErrFenced, l.epoch, l.fenceBelow)
	}
	if l.durable >= l.appended {
		l.absorbed++
		return nil
	}
	return l.fsyncLocked()
}

// fsyncLocked issues one fsync covering everything appended so far. A
// wedged log refuses: its tail may hold torn or retraction-less frames of
// transactions already reported as failed, and fsyncing them (even from
// Close) could make recovery resurrect those transactions.
func (l *Log) fsyncLocked() error {
	if l.broken != nil {
		return fmt.Errorf("wal: log wedged after failed write: %w", l.broken)
	}
	if l.durable >= l.appended && l.unsynced == 0 {
		return nil
	}
	start := time.Now()
	err := l.active.Sync()
	l.fsyncLat.ObserveDuration(time.Since(start))
	if err != nil {
		return err
	}
	l.fsyncs++
	l.flushBytes.Observe(float64(l.unsynced))
	l.unsynced = 0
	l.durable = l.appended
	return nil
}

// SetEpoch sets the primary term stamped on every subsequent append. It only
// raises: a log never returns to an older regime's epoch, so a fence laid at
// epoch N stays effective against every term below N.
func (l *Log) SetEpoch(epoch uint64) {
	l.mu.Lock()
	if epoch > l.epoch {
		l.epoch = epoch
	}
	l.mu.Unlock()
}

// Epoch returns the term currently stamped on appends.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Fence rejects every further Append and Sync while the log's own epoch stays
// below the given term (ErrFenced). It is the WAL-append half of failover
// fencing: a supervisor that promoted a replica at term N fences the old
// primary's log below N, so a zombie that is still alive — merely presumed
// dead — can no longer make writes durable, let alone acknowledge them.
// Fencing is monotonic; a later SetEpoch at or above the fence (re-promotion
// of this node) lifts it.
func (l *Log) Fence(belowEpoch uint64) {
	l.mu.Lock()
	if belowEpoch > l.fenceBelow {
		l.fenceBelow = belowEpoch
	}
	l.mu.Unlock()
}

// Fenced reports whether the log is currently rejecting appends because a
// newer primary term exists.
func (l *Log) Fenced() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fenceBelow > l.epoch
}

// LastLSN returns the highest LSN assigned (appended), durable or not.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// DurableLSN returns the highest LSN covered by a successful fsync.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Empty reports whether the log holds no records at all.
func (l *Log) Empty() bool { return l.LastLSN() == 0 }

// Replay iterates every decodable committed record in LSN order. A torn or
// corrupt frame ends that *segment's* valid prefix but not the whole
// iteration: a crash leaves a torn tail in what was then the final segment,
// and after a restart later segments hold newer acknowledged commits that
// must still be replayed (within one process run everything before the
// active segment was fsynced at rotation, so a torn frame can only ever be a
// crash artifact of an earlier incarnation's tail).
//
// Replay runs two passes: the first collects abort records — retractions of
// commit, prepare or decision records whose transaction failed (or was
// presumed aborted by an earlier recovery) after this log received them —
// and the second streams every record that was not retracted, including
// prepare and decision records: resolving undecided prepares against the
// coordinator's decisions is the caller's job. Retraction is LSN-ordered: an
// abort record only retracts records appended *before* it, so if a later
// incarnation reuses a retracted TID (per-epoch sequence numbers restart),
// the newer acknowledged commit is not silently dropped. It must be called before this Log instance appends
// new records — in practice, immediately after Open during recovery. A
// non-nil error from fn aborts the iteration and is returned.
func (l *Log) Replay(fn func(Record) error) error {
	indexes, err := l.storage.List()
	if err != nil {
		return err
	}
	var retracted map[uint64]uint64 // TID -> highest abort-record LSN
	scan := func(visit func(Record) error) error {
		for _, idx := range indexes {
			buf, err := l.storage.ReadSegment(idx)
			if err != nil {
				return err
			}
			off := 0
			for off < len(buf) {
				rec, n, decErr := decodeRecord(buf, off)
				if decErr != nil {
					break // end of this segment's valid prefix
				}
				if err := visit(rec); err != nil {
					return err
				}
				off = n
			}
		}
		return nil
	}
	if err := scan(func(rec Record) error {
		if rec.Kind == KindAbort {
			if retracted == nil {
				retracted = make(map[uint64]uint64)
			}
			if rec.LSN > retracted[rec.TID] {
				retracted[rec.TID] = rec.LSN
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return scan(func(rec Record) error {
		if rec.Kind == KindAbort || retracted[rec.TID] > rec.LSN {
			return nil
		}
		return fn(rec)
	})
}

// TruncateBelow deletes sealed segments every decodable record of which has
// LSN <= lsn, in ascending order, and reports how many were deleted. It is
// the checkpointer's space-reclamation step and must only be called once a
// checkpoint covering lsn is durable: after it, records at or below lsn may
// be gone from the log forever.
//
// Safety rails: the active segment is never deleted (it is still being
// written), and neither is the newest segment holding any decodable record —
// even when everything in it is below the mark — so a reopened log always
// rediscovers its LSN watermark from storage and never reissues an LSN that a
// checkpoint already classified as captured. Deletion scans segments in
// order and stops at the first one carrying a record above the mark; LSNs
// ascend across segments, so everything beyond it is above the mark too. A
// segment that fails to delete stops the scan and returns the error: the
// next checkpoint simply retries, and recovery is correct with any subset of
// the deletions applied (replay skips below-mark records by LSN, not by
// segment).
func (l *Log) TruncateBelow(lsn uint64) (int, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.broken != nil {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: log wedged after failed write: %w", l.broken)
	}
	hasActive, activeIdx := l.active != nil, l.activeIdx
	l.mu.Unlock()

	indexes, err := l.storage.List()
	if err != nil {
		return 0, err
	}
	if len(indexes) == 0 {
		return 0, nil
	}
	// keep is the lowest index that must survive regardless of LSNs.
	keep := indexes[len(indexes)-1]
	if hasActive && activeIdx < keep {
		keep = activeIdx
	} else if !hasActive {
		// No active segment (nothing appended since Open): keep the newest
		// segment with a decodable record, which carries the LSN watermark.
		for i := len(indexes) - 1; i >= 0; i-- {
			buf, err := l.storage.ReadSegment(indexes[i])
			if err != nil {
				return 0, err
			}
			if _, _, decErr := decodeRecord(buf, 0); decErr == nil {
				keep = indexes[i]
				break
			}
		}
	}

	deleted := 0
	for _, idx := range indexes {
		if idx >= keep {
			break
		}
		buf, err := l.storage.ReadSegment(idx)
		if err != nil {
			return deleted, err
		}
		above := false
		off := 0
		for off < len(buf) {
			rec, n, decErr := decodeRecord(buf, off)
			if decErr != nil {
				break // torn tail of a crashed predecessor; its frames never committed
			}
			if rec.LSN > lsn {
				above = true
				break
			}
			off = n
		}
		if above {
			break
		}
		if err := l.storage.DeleteSegment(idx); err != nil {
			return deleted, err
		}
		deleted++
	}
	if deleted > 0 {
		l.mu.Lock()
		l.truncations++
		l.segmentsDeleted += uint64(deleted)
		l.mu.Unlock()
	}
	return deleted, nil
}

// Close fsyncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	err := l.fsyncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats is a snapshot of the log's activity counters and distributions.
type Stats struct {
	// Appends counts records appended; AppendedBytes the encoded bytes.
	Appends       uint64
	AppendedBytes uint64
	// Fsyncs counts physical fsyncs issued; SyncsAbsorbed counts Sync calls
	// satisfied by an earlier fsync (the group-fsync amortization win).
	Fsyncs        uint64
	SyncsAbsorbed uint64
	// Segments counts segments created by this Log instance.
	Segments uint64
	// Truncations counts TruncateBelow calls that deleted at least one
	// segment; SegmentsDeleted counts the segments they reclaimed.
	Truncations     uint64
	SegmentsDeleted uint64
	// FsyncLatency is the distribution of fsync call latencies (nanoseconds);
	// BytesPerFlush the distribution of bytes made durable per fsync.
	FsyncLatency  stats.HistogramSnapshot
	BytesPerFlush stats.HistogramSnapshot
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		Appends:         l.appends,
		AppendedBytes:   l.appendedBytes,
		Fsyncs:          l.fsyncs,
		SyncsAbsorbed:   l.absorbed,
		Segments:        l.segments,
		Truncations:     l.truncations,
		SegmentsDeleted: l.segmentsDeleted,
	}
	l.mu.Unlock()
	s.FsyncLatency = l.fsyncLat.Snapshot()
	s.BytesPerFlush = l.flushBytes.Snapshot()
	return s
}

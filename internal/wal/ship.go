package wal

import "errors"

// This file is the log-shipping side of replication: a ShipCursor tails a
// primary log's segments read-only through the Storage interface, and a
// MirrorWriter re-appends the shipped frames into the replica's own storage
// with the same rotation and durability discipline a primary Log has. Both
// deal in raw CRC-framed bytes, so the mirrored log is byte-for-byte a valid
// log: a replica can be promoted by simply opening it with Open and running
// ordinary recovery.

// ShippedRecord is one record pulled off a primary log: the decoded record
// plus the raw frame bytes exactly as they appear in the primary's segment,
// ready to be re-appended verbatim by a MirrorWriter.
type ShippedRecord struct {
	Record
	// Frame is the CRC-framed encoding of Record (header + payload). It
	// aliases the segment snapshot the cursor read, which is never mutated.
	Frame []byte
}

// ErrShipGap reports that log truncation on the primary deleted a segment the
// cursor had not fully shipped: records are gone from the log forever, so the
// replica must re-bootstrap from the newest checkpoint instead of tailing.
// The engine avoids this in steady state by clamping truncation to the
// replication floor (the minimum shipped LSN across attached replicas); the
// error covers replicas that fall behind while detached.
var ErrShipGap = errors.New("wal: shipping gap: segment truncated under cursor")

// ShipCursor tails one log's segments through its Storage. It is a pure
// reader: the primary's Log instance never knows the cursor exists, which is
// exactly the property that lets shipping be retrofitted onto a running
// system (and, later, move across a network boundary — the cursor only needs
// List and ReadSegment).
//
// Poll is gated by the primary's durable LSN, which the caller snapshots from
// Log.DurableLSN. Gating matters for correctness, not just politeness: the
// failed-append salvage path leaves complete leading frames of an aborted
// batch in a sealed segment, and those orphan frames become covered by the
// durable watermark only in the same fsync that makes their abort records
// durable. A durable-gated cursor therefore always ships an orphan frame and
// its retraction in the same Poll, so an applier that registers a batch's
// aborts before applying the batch can never install an aborted write.
type ShipCursor struct {
	storage Storage
	seg     uint64 // current segment index
	haveSeg bool   // false until the first segment is found
	off     int    // byte offset of the next undecoded frame in seg
	lastLSN uint64 // highest LSN shipped (or skipped as already-shipped)
	gated   bool   // last stop was the durable gate, not end-of-prefix
}

// NewShipCursor returns a cursor that ships every record with LSN > afterLSN,
// in LSN order. Pass 0 to ship the whole remaining log, or a replica's last
// locally durable LSN to resume after a restart.
func NewShipCursor(storage Storage, afterLSN uint64) *ShipCursor {
	return &ShipCursor{storage: storage, lastLSN: afterLSN}
}

// LastLSN returns the highest LSN the cursor has shipped or skipped.
func (c *ShipCursor) LastLSN() uint64 { return c.lastLSN }

// Poll ships every not-yet-shipped record with LSN <= durable, appending to
// dst (pass nil or a reused slice). It never blocks: when the log has no new
// durable records the result is empty. A torn or undecodable frame ends a
// segment's shipped prefix; the cursor moves past it only once a higher
// segment index exists, which (by the log's rotation discipline) proves the
// torn segment is sealed and its tail permanently dead.
func (c *ShipCursor) Poll(durable uint64, dst []ShippedRecord) ([]ShippedRecord, error) {
	out := dst[:0]
	if durable <= c.lastLSN {
		return out, nil
	}
	indexes, err := c.storage.List()
	if err != nil {
		return out, err
	}
	if len(indexes) == 0 {
		return out, nil
	}
	pos := -1
	if !c.haveSeg {
		c.seg, c.haveSeg, c.off, pos = indexes[0], true, 0, 0
	} else {
		for i, idx := range indexes {
			if idx == c.seg {
				pos = i
				break
			}
		}
		if pos < 0 {
			// Our segment was truncated away. If the last stop drained the
			// segment's decodable prefix, everything it held was shipped (the
			// engine's truncation floor guarantees this in steady state) and
			// the cursor can resume on the next surviving segment; if the
			// durable gate stopped us mid-segment, records are lost.
			if c.gated || indexes[0] < c.seg {
				return out, ErrShipGap
			}
			for i, idx := range indexes {
				if idx > c.seg {
					pos = i
					break
				}
			}
			if pos < 0 {
				return out, nil
			}
			c.seg, c.off = indexes[pos], 0
		}
	}
	for {
		buf, err := c.storage.ReadSegment(c.seg)
		if err != nil {
			return out, err
		}
		for c.off < len(buf) {
			rec, end, decErr := decodeRecord(buf, c.off)
			if decErr != nil {
				break // torn tail, or a frame still being written
			}
			if rec.LSN > durable {
				c.gated = true
				return out, nil
			}
			frame := buf[c.off:end]
			c.off = end
			if rec.LSN <= c.lastLSN {
				continue // resume skip: already shipped before a restart
			}
			c.lastLSN = rec.LSN
			out = append(out, ShippedRecord{Record: rec, Frame: frame})
		}
		c.gated = false
		if pos+1 >= len(indexes) {
			return out, nil // active segment: wait for more bytes or a rotation
		}
		pos++
		c.seg, c.off = indexes[pos], 0
	}
}

// MirrorWriter appends shipped frames into the replica's own storage, giving
// the mirror the same shape as a primary log: CRC-framed records in
// ascending-LSN order, segments sealed (fsynced, closed) before a successor
// is created, so every segment below the newest is fully durable. The mirror
// keeps its own segment indexes — they need not match the primary's, because
// recovery and replay order by LSN, never by segment boundary.
type MirrorWriter struct {
	storage   Storage
	segSize   int
	active    SegmentFile // nil until the first append after open/rotate
	activeLen int
	nextIdx   uint64
	lastLSN   uint64 // highest LSN written (durable or not)
	durable   uint64 // highest LSN covered by a successful Sync
	unsynced  bool
}

// OpenMirror opens (or creates) a mirror on storage. It scans existing
// segments for the highest decodable LSN — the resume point a ShipCursor
// should be created after — and always starts a fresh segment for new
// appends, so a torn tail left by a crash is never appended into.
func OpenMirror(storage Storage, segSize int) (*MirrorWriter, error) {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	m := &MirrorWriter{storage: storage, segSize: segSize}
	indexes, err := storage.List()
	if err != nil {
		return nil, err
	}
	if len(indexes) > 0 {
		m.nextIdx = indexes[len(indexes)-1] + 1
		// Same tail-adoption rule as Log.Open: fsync the final segment before
		// trusting its decodable records as durable.
		if err := storage.SyncSegment(indexes[len(indexes)-1]); err != nil {
			return nil, err
		}
	}
	for i := len(indexes) - 1; i >= 0; i-- {
		buf, err := storage.ReadSegment(indexes[i])
		if err != nil {
			return nil, err
		}
		off := 0
		for off < len(buf) {
			rec, n, decErr := decodeRecord(buf, off)
			if decErr != nil {
				break
			}
			if rec.LSN > m.lastLSN {
				m.lastLSN = rec.LSN
			}
			off = n
		}
		if m.lastLSN > 0 {
			break
		}
	}
	m.durable = m.lastLSN
	return m, nil
}

// LastLSN returns the highest LSN written to the mirror, durable or not.
func (m *MirrorWriter) LastLSN() uint64 { return m.lastLSN }

// DurableLSN returns the highest LSN the mirror has made durable. This is the
// watermark a semi-sync primary waits on: everything at or below it survives
// a replica crash.
func (m *MirrorWriter) DurableLSN() uint64 { return m.durable }

// Append writes one shipped frame. Frames must arrive in ascending LSN order;
// a frame at or below the mirror's watermark is skipped silently (the resume
// overlap after a restart). The frame is durable only after Sync.
func (m *MirrorWriter) Append(lsn uint64, frame []byte) error {
	if lsn <= m.lastLSN {
		return nil
	}
	if m.active != nil && m.activeLen > 0 && m.activeLen+len(frame) > m.segSize {
		if err := m.rotate(); err != nil {
			return err
		}
	}
	if m.active == nil {
		active, err := m.storage.Create(m.nextIdx)
		if err != nil {
			return err
		}
		m.active = active
		m.nextIdx++
		m.activeLen = 0
	}
	if _, err := m.active.Write(frame); err != nil {
		return err
	}
	m.activeLen += len(frame)
	m.lastLSN = lsn
	m.unsynced = true
	return nil
}

// rotate seals the active segment — fsync then close, so sealed mirror
// segments are always fully durable, as on a primary.
func (m *MirrorWriter) rotate() error {
	if err := m.syncActive(); err != nil {
		return err
	}
	if err := m.active.Close(); err != nil {
		return err
	}
	m.active = nil
	return nil
}

func (m *MirrorWriter) syncActive() error {
	if m.unsynced {
		if err := m.active.Sync(); err != nil {
			return err
		}
		m.unsynced = false
	}
	m.durable = m.lastLSN
	return nil
}

// Sync makes every appended frame durable and advances the mirror watermark.
func (m *MirrorWriter) Sync() error {
	if m.active == nil {
		m.durable = m.lastLSN
		return nil
	}
	return m.syncActive()
}

// Close fsyncs and closes the active segment.
func (m *MirrorWriter) Close() error {
	if m.active == nil {
		return nil
	}
	err := m.syncActive()
	if cerr := m.active.Close(); err == nil {
		err = cerr
	}
	m.active = nil
	return err
}

// CopyLatestCheckpoint copies the newest decodable checkpoint blob from src
// to dst byte-for-byte (same sequence number, so a promoted replica's
// recovery finds it exactly where a primary's would), returning the decoded
// checkpoint. (nil, nil) means src holds no usable checkpoint and the replica
// must ship the log from the beginning. The primary may complete a checkpoint
// round and prune older blobs between our listing and read; the copy retries
// against the then-newest blob.
func CopyLatestCheckpoint(src, dst Storage) (*Checkpoint, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		cp, _, err := LatestCheckpoint(src)
		if err != nil {
			return nil, err
		}
		if cp == nil {
			return nil, nil
		}
		buf, err := src.ReadCheckpoint(cp.Seq)
		if err != nil {
			lastErr = err // pruned under us; retry against the newer round
			continue
		}
		if err := dst.WriteCheckpoint(cp.Seq, buf); err != nil {
			return nil, err
		}
		return cp, nil
	}
	return nil, lastErr
}

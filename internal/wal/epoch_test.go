package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// frameBlob wraps a raw payload in the 4-byte length + 4-byte CRC header the
// checkpoint and epoch blobs share.
func frameBlob(payload []byte) []byte {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderSize:], payload)
	return buf
}

// TestEpochStateRoundTrip: the durable epoch/term record survives a write and
// read on both storage backends, and overwrites monotonically.
func TestEpochStateRoundTrip(t *testing.T) {
	backends := map[string]Storage{
		"mem":  NewMemStorage(),
		"file": NewFileStorage(t.TempDir()),
	}
	for name, s := range backends {
		t.Run(name, func(t *testing.T) {
			// A node that never saw a failover reads the zero state.
			st, err := ReadEpochState(s)
			if err != nil {
				t.Fatalf("read on fresh storage: %v", err)
			}
			if st != (EpochState{}) {
				t.Fatalf("fresh storage epoch state = %+v, want zero", st)
			}
			if err := WriteEpochState(s, EpochState{Epoch: 3, FenceBelow: 3}); err != nil {
				t.Fatalf("write: %v", err)
			}
			st, err = ReadEpochState(s)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if st.Epoch != 3 || st.FenceBelow != 3 {
				t.Fatalf("epoch state = %+v, want {3 3}", st)
			}
			// The supervisor bumps the term in place: overwrite, not append.
			if err := WriteEpochState(s, EpochState{Epoch: 4, FenceBelow: 4}); err != nil {
				t.Fatalf("overwrite: %v", err)
			}
			st, err = ReadEpochState(s)
			if err != nil {
				t.Fatalf("re-read: %v", err)
			}
			if st.Epoch != 4 || st.FenceBelow != 4 {
				t.Fatalf("epoch state after overwrite = %+v, want {4 4}", st)
			}
		})
	}
}

// TestEpochStateTornWriteReadsAsZero: a fence write cut short by the crash it
// raced recorded nothing — a corrupt blob decodes as the zero state, never as
// an error that would block the node from opening.
func TestEpochStateTornWriteReadsAsZero(t *testing.T) {
	s := NewMemStorage()
	if err := WriteEpochState(s, EpochState{Epoch: 7, FenceBelow: 7}); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf, err := s.Sub("epoch").ReadCheckpoint(epochStateSeq)
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}
	// Flip a payload byte: the CRC no longer matches.
	torn := append([]byte(nil), buf...)
	torn[len(torn)-1] ^= 0xff
	if err := s.Sub("epoch").WriteCheckpoint(epochStateSeq, torn); err != nil {
		t.Fatalf("write torn blob: %v", err)
	}
	st, err := ReadEpochState(s)
	if err != nil {
		t.Fatalf("read torn state: %v", err)
	}
	if st != (EpochState{}) {
		t.Fatalf("torn epoch state = %+v, want zero", st)
	}
}

// TestRecordEpochRoundTrip: records stamped with a non-zero epoch carry it
// through encode and decode; epoch-zero records omit the field entirely so
// pre-failover logs stay byte-identical.
func TestRecordEpochRoundTrip(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 2, 1 << 40} {
		rec := testRecord(9, 2)
		rec.LSN = 5
		rec.Epoch = epoch
		frame := appendFrame(nil, &rec)
		got, n, err := decodeRecord(frame, 0)
		if err != nil {
			t.Fatalf("epoch %d: decode: %v", epoch, err)
		}
		if n != len(frame) {
			t.Fatalf("epoch %d: decoded %d of %d bytes", epoch, n, len(frame))
		}
		if got.Epoch != epoch || got.LSN != 5 || got.TID != 9 {
			t.Fatalf("epoch %d: decoded = %+v", epoch, got)
		}
	}

	// An epoch-zero frame must be byte-identical to one encoded before the
	// epoch field existed: same length as a frame hand-built without the bit.
	zero := testRecord(9, 1)
	zero.LSN = 1
	stamped := zero
	stamped.Epoch = 1
	zf, sf := appendFrame(nil, &zero), appendFrame(nil, &stamped)
	if len(sf) != len(zf)+1 {
		t.Fatalf("stamped frame is %d bytes, zero frame %d: epoch must cost exactly its uvarint", len(sf), len(zf))
	}
}

// TestLogFenceRejectsAppendAndSync is the zombie-write guard at its lowest
// layer: once a log is fenced below a newer term, both Append and Sync fail
// with ErrFenced, and adopting the newer term (the re-attach path) lifts it.
func TestLogFenceRejectsAppendAndSync(t *testing.T) {
	l, err := Open(NewMemStorage(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("append before fence: %v", err)
	}
	l.Fence(1) // a new primary exists at epoch 1; this log still runs at 0
	if !l.Fenced() {
		t.Fatalf("log not fenced after Fence(1)")
	}
	if _, err := l.Append(testRecord(2, 1)); !errors.Is(err, ErrFenced) {
		t.Fatalf("append on fenced log = %v, want ErrFenced", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrFenced) {
		t.Fatalf("sync on fenced log = %v, want ErrFenced", err)
	}
	// Re-attach stamps the node with the new term; the fence no longer binds.
	l.SetEpoch(1)
	if l.Fenced() {
		t.Fatalf("log still fenced at the fence epoch")
	}
	if _, err := l.Append(testRecord(3, 1)); err != nil {
		t.Fatalf("append after adopting the term: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after adopting the term: %v", err)
	}
	recs := collect(t, l)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (the fenced append left no trace)", len(recs))
	}
	if recs[1].Epoch != 1 {
		t.Fatalf("post-adoption record epoch = %d, want 1", recs[1].Epoch)
	}
}

// TestTailLSNMatchesLastAppend: TailLSN reads the physical tail without
// opening the log, across segment rotations, and reports 0 for empty storage.
func TestTailLSNMatchesLastAppend(t *testing.T) {
	s := NewMemStorage()
	tail, err := TailLSN(s)
	if err != nil || tail != 0 {
		t.Fatalf("tail of empty storage = %d, %v, want 0, nil", tail, err)
	}
	l, err := Open(s, Options{SegmentSize: 64}) // tiny segments force rotation
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(1); i <= 9; i++ {
		if _, err := l.Append(testRecord(i, 1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	tail, err = TailLSN(s)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	if tail != 9 {
		t.Fatalf("tail = %d, want 9", tail)
	}
}

// TestTruncateAboveUnwindsDivergentSuffix drives the re-attach repair: a
// deposed primary's records beyond the cut are removed — whole segments above
// it deleted, the boundary segment rewritten — and a reopened log continues
// LSNs from the cut, ready to tail the new primary's log.
func TestTruncateAboveUnwindsDivergentSuffix(t *testing.T) {
	s := NewMemStorage()
	l, err := Open(s, Options{SegmentSize: 64})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(1); i <= 9; i++ {
		if _, err := l.Append(testRecord(i, 1)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	removed, err := TruncateAbove(s, 4)
	if err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if removed != 5 {
		t.Fatalf("removed %d records, want 5", removed)
	}
	tail, err := TailLSN(s)
	if err != nil || tail != 4 {
		t.Fatalf("tail after truncate = %d, %v, want 4, nil", tail, err)
	}

	// The reopened log holds exactly the kept prefix and reuses the freed
	// LSNs for the new timeline's records.
	l2, err := Open(s, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recs := collect(t, l2)
	if len(recs) != 4 {
		t.Fatalf("replayed %d records after truncate, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) || rec.TID != uint64(i+1) {
			t.Fatalf("record %d = lsn %d tid %d", i, rec.LSN, rec.TID)
		}
	}
	lsn, err := l2.Append(testRecord(100, 1))
	if err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if lsn != 5 {
		t.Fatalf("first post-truncate LSN = %d, want 5", lsn)
	}
}

// TestTruncateAboveZeroAndNoop: cutting at 0 empties the log entirely;
// cutting at or above the tail removes nothing.
func TestTruncateAboveZeroAndNoop(t *testing.T) {
	s := NewMemStorage()
	l, err := Open(s, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.Append(testRecord(i, 1)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if removed, err := TruncateAbove(s, 3); err != nil || removed != 0 {
		t.Fatalf("truncate at tail removed %d, %v, want 0, nil", removed, err)
	}
	if removed, err := TruncateAbove(s, 0); err != nil || removed != 3 {
		t.Fatalf("truncate at 0 removed %d, %v, want 3, nil", removed, err)
	}
	indexes, err := s.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(indexes) != 0 {
		t.Fatalf("%d segments survive a truncate-to-zero, want 0", len(indexes))
	}
}

// TestWipeLogClearsSegmentsAndBlobs: the bootstrap-from-scratch fallback
// leaves nothing behind — neither log segments nor checkpoint blobs.
func TestWipeLogClearsSegmentsAndBlobs(t *testing.T) {
	s := NewMemStorage()
	l, err := Open(s, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.WriteCheckpoint(1, EncodeCheckpoint(&Checkpoint{Seq: 1, LowLSN: 1})); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
	if err := WipeLog(s); err != nil {
		t.Fatalf("wipe: %v", err)
	}
	indexes, err := s.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	seqs, err := s.ListCheckpoints()
	if err != nil {
		t.Fatalf("list checkpoints: %v", err)
	}
	if len(indexes) != 0 || len(seqs) != 0 {
		t.Fatalf("wipe left %d segments, %d checkpoints", len(indexes), len(seqs))
	}
}

// TestCheckpointVersionCompatibility: a version-1 blob (no HighLSN field, the
// pre-failover format) still decodes, reading HighLSN as 0-unknown; the
// current writer emits version 2 and round-trips HighLSN.
func TestCheckpointVersionCompatibility(t *testing.T) {
	cp := &Checkpoint{Seq: 4, LowLSN: 17, MaxTID: 99, MaxGlobalID: 12, HighLSN: 23,
		Rows: []CheckpointRow{{Key: "k", TID: 9, Data: []byte("v")}}}
	got, err := DecodeCheckpoint(EncodeCheckpoint(cp))
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	if got.HighLSN != 23 || got.Seq != 4 || got.LowLSN != 17 {
		t.Fatalf("v2 roundtrip = %+v", got)
	}

	// Hand-build the v1 frame: same layout minus the HighLSN uvarint.
	v2 := EncodeCheckpoint(&Checkpoint{Seq: 4, LowLSN: 17, MaxTID: 99, MaxGlobalID: 12,
		Rows: []CheckpointRow{{Key: "k", TID: 9, Data: []byte("v")}}})
	payload := append([]byte(nil), v2[frameHeaderSize:]...)
	payload[0] = checkpointVersion1
	// Locate and excise the HighLSN uvarint: it follows version byte + Seq +
	// LowLSN + MaxTID + MaxGlobalID, all single-byte uvarints here except
	// LowLSN/MaxTID which are still < 128, so offsets are fixed.
	p := payload[1:]
	for i := 0; i < 4; i++ { // Seq, LowLSN, MaxTID, MaxGlobalID
		_, p, err = readUvarint(p)
		if err != nil {
			t.Fatalf("walk v2 payload: %v", err)
		}
	}
	highStart := len(payload) - len(p)
	_, rest, err := readUvarint(p)
	if err != nil {
		t.Fatalf("read HighLSN: %v", err)
	}
	v1payload := append(payload[:highStart:highStart], rest...)
	v1, err := DecodeCheckpoint(frameBlob(v1payload))
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	if v1.HighLSN != 0 {
		t.Fatalf("v1 checkpoint HighLSN = %d, want 0 (unknown)", v1.HighLSN)
	}
	if v1.Seq != 4 || v1.LowLSN != 17 || v1.MaxTID != 99 || v1.MaxGlobalID != 12 || len(v1.Rows) != 1 {
		t.Fatalf("v1 decode = %+v", v1)
	}
}

package wal

import (
	"errors"
	"reflect"
	"testing"
)

// seedFrames returns one encoded frame per record shape the log produces,
// including the 2PC prepare and decision kinds.
func seedFrames() [][]byte {
	records := []Record{
		{LSN: 1, TID: 7, Kind: KindCommit, Writes: []Write{
			{Key: "r\x00t\x00k1", Data: []byte("hello")},
			{Key: "r\x00t\x00k2", Delete: true},
		}},
		{LSN: 2, TID: 7, Kind: KindAbort},
		{LSN: 3, TID: 9, Kind: KindPrepare, GlobalID: 42, Coordinator: 1, Writes: []Write{
			{Key: "r\x00t\x00k3", Data: []byte{0, 1, 2, 255}},
		}},
		{LSN: 4, TID: 9, Kind: KindDecision, GlobalID: 42, Participants: []uint64{0, 1, 3}},
		{LSN: 5, TID: 11, Kind: KindCommit}, // read-only / empty write set
	}
	var frames [][]byte
	for i := range records {
		frames = append(frames, appendFrame(nil, &records[i]))
	}
	return frames
}

// FuzzDecodeRecord checks decodeRecord's contract on arbitrary input: it
// either rejects the buffer with an error wrapping ErrCorrupt, or returns a
// record that survives an encode/decode round trip — and it never panics,
// never over-reads the buffer, and never allocates from an implausible
// length field.
func FuzzDecodeRecord(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
		// Corrupted variants: truncated, bit-flipped payload, bit-flipped CRC.
		f.Add(frame[:len(frame)-1])
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)-1] ^= 0x40
		f.Add(flipped)
		badCRC := append([]byte(nil), frame...)
		badCRC[4] ^= 0xff
		f.Add(badCRC)
	}
	f.Add([]byte{})
	f.Add([]byte("not a frame at all, definitely longer than a header"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if n <= frameHeaderSize || n > len(data) {
			t.Fatalf("decode consumed implausible frame length %d of %d", n, len(data))
		}
		// A record that decoded must round-trip: re-encoding and re-decoding
		// yields the same record (mis-decodes that alter writes, kinds or ids
		// cannot hide behind a passing CRC).
		re := appendFrame(nil, &rec)
		rec2, n2, err := decodeRecord(re, 0)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", rec2, rec)
		}
	})
}

// seedCheckpoints returns encoded checkpoint blobs covering the shapes the
// checkpointer produces.
func seedCheckpoints() [][]byte {
	checkpoints := []Checkpoint{
		{Seq: 1},
		{Seq: 2, LowLSN: 17, MaxTID: 1 << 41, MaxGlobalID: 9},
		{Seq: 3, LowLSN: 41, MaxTID: 1 << 42, MaxGlobalID: 12, Rows: []CheckpointRow{
			{Key: "r\x00t\x00k1", TID: 7, Data: []byte("hello")},
			{Key: "r\x00t\x00k2", TID: 9, Data: []byte{0, 1, 2, 255}},
			{Key: "r\x00t\x00k3", TID: 11},                // empty payload
			{Key: "r\x00t\x00k4", TID: 13, Deleted: true}, // deletion tombstone
		}},
	}
	var blobs [][]byte
	for i := range checkpoints {
		blobs = append(blobs, EncodeCheckpoint(&checkpoints[i]))
	}
	return blobs
}

// FuzzDecodeCheckpoint checks DecodeCheckpoint's contract on arbitrary input:
// a corrupt blob — torn write, bit rot, truncated file — is rejected with an
// error wrapping ErrCorrupt and no partial checkpoint is ever returned, so
// recovery always falls back to an older checkpoint or full replay; a blob
// that decodes must survive an encode/decode round trip. It must never
// panic, never over-read, and never allocate from an implausible length.
func FuzzDecodeCheckpoint(f *testing.F) {
	for _, blob := range seedCheckpoints() {
		f.Add(blob)
		// Corrupted variants: torn tail, bit-flipped payload, bit-flipped CRC,
		// trailing garbage after the frame.
		f.Add(blob[:len(blob)-1])
		flipped := append([]byte(nil), blob...)
		flipped[len(flipped)-1] ^= 0x40
		f.Add(flipped)
		badCRC := append([]byte(nil), blob...)
		badCRC[4] ^= 0xff
		f.Add(badCRC)
		f.Add(append(append([]byte(nil), blob...), 0x00))
	}
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint, definitely longer than a frame header"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			if cp != nil {
				t.Fatal("decode returned partial checkpoint alongside an error")
			}
			return
		}
		re := EncodeCheckpoint(cp)
		cp2, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded checkpoint failed: %v", err)
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", cp2, cp)
		}
	})
}

package wal

import (
	"errors"
	"reflect"
	"testing"
)

// seedFrames returns one encoded frame per record shape the log produces,
// including the 2PC prepare and decision kinds.
func seedFrames() [][]byte {
	records := []Record{
		{LSN: 1, TID: 7, Kind: KindCommit, Writes: []Write{
			{Key: "r\x00t\x00k1", Data: []byte("hello")},
			{Key: "r\x00t\x00k2", Delete: true},
		}},
		{LSN: 2, TID: 7, Kind: KindAbort},
		{LSN: 3, TID: 9, Kind: KindPrepare, GlobalID: 42, Coordinator: 1, Writes: []Write{
			{Key: "r\x00t\x00k3", Data: []byte{0, 1, 2, 255}},
		}},
		{LSN: 4, TID: 9, Kind: KindDecision, GlobalID: 42, Participants: []uint64{0, 1, 3}},
		{LSN: 5, TID: 11, Kind: KindCommit}, // read-only / empty write set
	}
	var frames [][]byte
	for i := range records {
		frames = append(frames, appendFrame(nil, &records[i]))
	}
	return frames
}

// FuzzDecodeRecord checks decodeRecord's contract on arbitrary input: it
// either rejects the buffer with an error wrapping ErrCorrupt, or returns a
// record that survives an encode/decode round trip — and it never panics,
// never over-reads the buffer, and never allocates from an implausible
// length field.
func FuzzDecodeRecord(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
		// Corrupted variants: truncated, bit-flipped payload, bit-flipped CRC.
		f.Add(frame[:len(frame)-1])
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)-1] ^= 0x40
		f.Add(flipped)
		badCRC := append([]byte(nil), frame...)
		badCRC[4] ^= 0xff
		f.Add(badCRC)
	}
	f.Add([]byte{})
	f.Add([]byte("not a frame at all, definitely longer than a header"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if n <= frameHeaderSize || n > len(data) {
			t.Fatalf("decode consumed implausible frame length %d of %d", n, len(data))
		}
		// A record that decoded must round-trip: re-encoding and re-decoding
		// yields the same record (mis-decodes that alter writes, kinds or ids
		// cannot hide behind a passing CRC).
		re := appendFrame(nil, &rec)
		rec2, n2, err := decodeRecord(re, 0)
		if err != nil {
			t.Fatalf("re-decode of re-encoded record failed: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", rec2, rec)
		}
	})
}

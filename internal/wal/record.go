package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write is one write of a commit record: a fully-qualified key (the engine
// encodes reactor, relation and primary key into it), the full row image, and
// whether the write is a deletion.
type Write struct {
	Key    string
	Data   []byte
	Delete bool
}

// Kind distinguishes the record types of the atomic commit protocol.
type Kind uint8

const (
	// KindCommit is a single-log commit record: the transaction's full write
	// set, durable means committed.
	KindCommit Kind = iota
	// KindAbort retracts any earlier record in the same log carrying the same
	// TID (commit, prepare or decision). It is appended when a transaction
	// fails after this log already received one of its records, and by
	// recovery as the durable tombstone of a presumed-abort resolution, so
	// replay must never surface the retracted record. Retraction is
	// LSN-ordered: an abort record only retracts records appended before it.
	KindAbort
	// KindPrepare is a two-phase-commit participant record: the participant's
	// full write set, staged but undecided. Recovery applies it only if a
	// decision record for its GlobalID is durable in some log (the
	// coordinator's); otherwise the transaction is presumed aborted.
	KindPrepare
	// KindDecision is the coordinator's commit decision for a multi-container
	// transaction: once it is durable the transaction is committed on every
	// participant. It carries the full participant set (container ids) and is
	// appended only after every participant's prepare record is durable.
	KindDecision
)

// Record is one transaction outcome in the log. LSN is assigned by the Log
// at append time; TID is the commit timestamp the concurrency control domain
// assigned at prepare (for decision records, the coordinator participant's
// TID, which makes retraction by TID precise). GlobalID ties the prepare and
// decision records of one multi-container transaction together across logs.
type Record struct {
	LSN  uint64
	TID  uint64
	Kind Kind
	// Epoch is the primary term under which the record was appended (0 for
	// logs that predate supervised failover). A promoted primary appends at a
	// strictly higher epoch than its predecessor, so a record's epoch tells
	// re-attach tooling which regime produced it; fencing rejects appends at
	// the Log layer before a record with a stale epoch can form.
	Epoch uint64
	// GlobalID is the root transaction's database-wide id (prepare and
	// decision records only). Recovery resolves a prepare record by looking
	// for a decision record with the same GlobalID.
	GlobalID uint64
	// Coordinator is the container id of the log holding the transaction's
	// decision record (prepare records only; diagnostic — recovery scans
	// every log for decisions).
	Coordinator uint64
	// Participants lists the container ids of every 2PC participant
	// (decision records only).
	Participants []uint64
	Writes       []Write
}

// Frame layout: a 4-byte little-endian payload length, a 4-byte CRC32 (IEEE)
// of the payload, then the payload itself. The payload is:
//
//	uvarint LSN | uvarint TID |
//	1 record flag byte (bit0 = abort, bit1 = prepare, bit2 = decision;
//	                    at most one kind bit set, commit otherwise;
//	                    bit3 = an epoch uvarint follows) |
//	bit3 only:     uvarint Epoch |
//	prepare only:  uvarint GlobalID | uvarint Coordinator |
//	decision only: uvarint GlobalID | uvarint #participants | participants |
//	uvarint #writes |
//	  per write: 1 flag byte (bit0 = delete) | uvarint keyLen | key |
//	             uvarint dataLen | data
//
// Decoding is strict: unknown flag bits, multiple kind bits, or trailing
// payload bytes are corruption, never silently ignored. A record that does
// not frame-check (short frame or CRC mismatch) ends the containing segment's
// replay prefix: it is the torn tail of a crashed append.
const frameHeaderSize = 8

// maxPayload bounds a single record's encoded payload; a length field above
// it is treated as corruption rather than attempting a huge allocation.
const maxPayload = 1 << 30

// ErrCorrupt reports a record that failed its CRC or structural checks in a
// position where the log cannot simply stop (mid-segment with valid data
// after it is indistinguishable from a torn tail, so decode errors surface as
// end-of-log instead; ErrCorrupt is returned by decodeRecord for tests).
var ErrCorrupt = errors.New("wal: corrupt record")

// record flag bits.
const (
	flagAbort    = 1 << 0
	flagPrepare  = 1 << 1
	flagDecision = 1 << 2
	// flagEpoch marks a record stamped with a non-zero primary epoch: an
	// epoch uvarint follows the flag byte. Epoch-zero records omit both the
	// bit and the field, so pre-failover logs stay byte-identical.
	flagEpoch = 1 << 3
	flagKind  = flagAbort | flagPrepare | flagDecision
	flagKnown = flagKind | flagEpoch
)

// appendFrame encodes rec as one CRC-framed record appended to buf.
func appendFrame(buf []byte, rec *Record) []byte {
	payloadStart := len(buf) + frameHeaderSize
	// Reserve the header; the payload length and CRC are patched in below.
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, rec.LSN)
	buf = binary.AppendUvarint(buf, rec.TID)
	var recFlags byte
	switch rec.Kind {
	case KindAbort:
		recFlags |= flagAbort
	case KindPrepare:
		recFlags |= flagPrepare
	case KindDecision:
		recFlags |= flagDecision
	}
	if rec.Epoch != 0 {
		recFlags |= flagEpoch
	}
	buf = append(buf, recFlags)
	if rec.Epoch != 0 {
		buf = binary.AppendUvarint(buf, rec.Epoch)
	}
	switch rec.Kind {
	case KindPrepare:
		buf = binary.AppendUvarint(buf, rec.GlobalID)
		buf = binary.AppendUvarint(buf, rec.Coordinator)
	case KindDecision:
		buf = binary.AppendUvarint(buf, rec.GlobalID)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Participants)))
		for _, p := range rec.Participants {
			buf = binary.AppendUvarint(buf, p)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(rec.Writes)))
	for _, w := range rec.Writes {
		var flags byte
		if w.Delete {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(len(w.Key)))
		buf = append(buf, w.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(w.Data)))
		buf = append(buf, w.Data...)
	}
	payload := buf[payloadStart:]
	binary.LittleEndian.PutUint32(buf[payloadStart-frameHeaderSize:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[payloadStart-4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeRecord decodes one framed record starting at buf[off]. It returns the
// record and the offset just past the frame. Any framing or structural
// problem returns an error wrapping ErrCorrupt; replay treats it as the end
// of the valid log prefix.
func decodeRecord(buf []byte, off int) (Record, int, error) {
	if off+frameHeaderSize > len(buf) {
		return Record{}, 0, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint32(buf[off:])
	sum := binary.LittleEndian.Uint32(buf[off+4:])
	if payloadLen == 0 || payloadLen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, payloadLen)
	}
	start := off + frameHeaderSize
	end := start + int(payloadLen)
	if end > len(buf) {
		return Record{}, 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	payload := buf[start:end]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}

	var rec Record
	p := payload
	var err error
	if rec.LSN, p, err = readUvarint(p); err != nil {
		return Record{}, 0, err
	}
	if rec.TID, p, err = readUvarint(p); err != nil {
		return Record{}, 0, err
	}
	if len(p) == 0 {
		return Record{}, 0, fmt.Errorf("%w: truncated record flags", ErrCorrupt)
	}
	recFlags := p[0]
	p = p[1:]
	if recFlags&^byte(flagKnown) != 0 {
		return Record{}, 0, fmt.Errorf("%w: unknown record flags %#x", ErrCorrupt, recFlags)
	}
	switch recFlags & flagKind {
	case 0:
		rec.Kind = KindCommit
	case flagAbort:
		rec.Kind = KindAbort
	case flagPrepare:
		rec.Kind = KindPrepare
	case flagDecision:
		rec.Kind = KindDecision
	default:
		return Record{}, 0, fmt.Errorf("%w: conflicting record flags %#x", ErrCorrupt, recFlags)
	}
	if recFlags&flagEpoch != 0 {
		if rec.Epoch, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		if rec.Epoch == 0 {
			// A zero epoch is encoded by omitting the bit; an explicit zero is
			// a non-canonical frame no writer produces.
			return Record{}, 0, fmt.Errorf("%w: explicit zero epoch", ErrCorrupt)
		}
	}
	switch rec.Kind {
	case KindPrepare:
		if rec.GlobalID, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		if rec.Coordinator, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
	case KindDecision:
		if rec.GlobalID, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		var np uint64
		if np, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		if np > uint64(len(p)) { // each participant id needs at least one byte
			return Record{}, 0, fmt.Errorf("%w: participant count %d exceeds payload", ErrCorrupt, np)
		}
		if np > 0 {
			rec.Participants = make([]uint64, 0, np)
			for i := uint64(0); i < np; i++ {
				var id uint64
				if id, p, err = readUvarint(p); err != nil {
					return Record{}, 0, err
				}
				rec.Participants = append(rec.Participants, id)
			}
		}
	}
	var n uint64
	if n, p, err = readUvarint(p); err != nil {
		return Record{}, 0, err
	}
	if n > uint64(len(p)) { // each write needs at least its flag byte
		return Record{}, 0, fmt.Errorf("%w: write count %d exceeds payload", ErrCorrupt, n)
	}
	if n > 0 {
		rec.Writes = make([]Write, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		if len(p) == 0 {
			return Record{}, 0, fmt.Errorf("%w: truncated write flags", ErrCorrupt)
		}
		flags := p[0]
		p = p[1:]
		if flags&^byte(1) != 0 {
			return Record{}, 0, fmt.Errorf("%w: unknown write flags %#x", ErrCorrupt, flags)
		}
		var w Write
		var keyLen, dataLen uint64
		if keyLen, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		if keyLen > uint64(len(p)) {
			return Record{}, 0, fmt.Errorf("%w: truncated key", ErrCorrupt)
		}
		w.Key = string(p[:keyLen])
		p = p[keyLen:]
		if dataLen, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		if dataLen > uint64(len(p)) {
			return Record{}, 0, fmt.Errorf("%w: truncated data", ErrCorrupt)
		}
		if dataLen > 0 {
			w.Data = append([]byte(nil), p[:dataLen]...)
		}
		p = p[dataLen:]
		w.Delete = flags&1 != 0
		rec.Writes = append(rec.Writes, w)
	}
	if len(p) != 0 {
		return Record{}, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return rec, end, nil
}

// DecodeAll decodes the valid record prefix of one segment's raw contents,
// returning the records and the offset at which decoding stopped (equal to
// len(buf) when the whole segment decoded). Crash audits and experiments use
// it to inspect segments without opening a Log.
func DecodeAll(buf []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for off < len(buf) {
		rec, n, err := decodeRecord(buf, off)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off = n
	}
	return recs, off
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, p[n:], nil
}

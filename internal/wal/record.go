package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write is one write of a commit record: a fully-qualified key (the engine
// encodes reactor, relation and primary key into it), the full row image, and
// whether the write is a deletion.
type Write struct {
	Key    string
	Data   []byte
	Delete bool
}

// Record is one transaction outcome in the log. LSN is assigned by the Log
// at append time; TID is the commit timestamp the concurrency control domain
// assigned at prepare. A record with Abort set retracts any earlier commit
// record carrying the same TID: it is appended when a multi-participant
// commit fails after this log already received the transaction's commit
// record, so recovery must not replay it.
type Record struct {
	LSN    uint64
	TID    uint64
	Abort  bool
	Writes []Write
}

// Frame layout: a 4-byte little-endian payload length, a 4-byte CRC32 (IEEE)
// of the payload, then the payload itself. The payload is:
//
//	uvarint LSN | uvarint TID | 1 record flag byte (bit0 = abort) |
//	uvarint #writes |
//	  per write: 1 flag byte (bit0 = delete) | uvarint keyLen | key |
//	             uvarint dataLen | data
//
// A record that does not frame-check (short frame or CRC mismatch) ends the
// containing segment's replay prefix: it is the torn tail of a crashed
// append.
const frameHeaderSize = 8

// maxPayload bounds a single record's encoded payload; a length field above
// it is treated as corruption rather than attempting a huge allocation.
const maxPayload = 1 << 30

// ErrCorrupt reports a record that failed its CRC or structural checks in a
// position where the log cannot simply stop (mid-segment with valid data
// after it is indistinguishable from a torn tail, so decode errors surface as
// end-of-log instead; ErrCorrupt is returned by decodeRecord for tests).
var ErrCorrupt = errors.New("wal: corrupt record")

// appendFrame encodes rec as one CRC-framed record appended to buf.
func appendFrame(buf []byte, rec *Record) []byte {
	payloadStart := len(buf) + frameHeaderSize
	// Reserve the header; the payload length and CRC are patched in below.
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, rec.LSN)
	buf = binary.AppendUvarint(buf, rec.TID)
	var recFlags byte
	if rec.Abort {
		recFlags |= 1
	}
	buf = append(buf, recFlags)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Writes)))
	for _, w := range rec.Writes {
		var flags byte
		if w.Delete {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(len(w.Key)))
		buf = append(buf, w.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(w.Data)))
		buf = append(buf, w.Data...)
	}
	payload := buf[payloadStart:]
	binary.LittleEndian.PutUint32(buf[payloadStart-frameHeaderSize:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[payloadStart-4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeRecord decodes one framed record starting at buf[off]. It returns the
// record and the offset just past the frame. Any framing or structural
// problem returns an error wrapping ErrCorrupt; replay treats it as the end
// of the valid log prefix.
func decodeRecord(buf []byte, off int) (Record, int, error) {
	if off+frameHeaderSize > len(buf) {
		return Record{}, 0, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint32(buf[off:])
	sum := binary.LittleEndian.Uint32(buf[off+4:])
	if payloadLen == 0 || payloadLen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, payloadLen)
	}
	start := off + frameHeaderSize
	end := start + int(payloadLen)
	if end > len(buf) {
		return Record{}, 0, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	payload := buf[start:end]
	if crc32.ChecksumIEEE(payload) != sum {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}

	var rec Record
	p := payload
	var err error
	if rec.LSN, p, err = readUvarint(p); err != nil {
		return Record{}, 0, err
	}
	if rec.TID, p, err = readUvarint(p); err != nil {
		return Record{}, 0, err
	}
	if len(p) == 0 {
		return Record{}, 0, fmt.Errorf("%w: truncated record flags", ErrCorrupt)
	}
	rec.Abort = p[0]&1 != 0
	p = p[1:]
	var n uint64
	if n, p, err = readUvarint(p); err != nil {
		return Record{}, 0, err
	}
	if n > uint64(len(p)) { // each write needs at least its flag byte
		return Record{}, 0, fmt.Errorf("%w: write count %d exceeds payload", ErrCorrupt, n)
	}
	rec.Writes = make([]Write, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(p) == 0 {
			return Record{}, 0, fmt.Errorf("%w: truncated write flags", ErrCorrupt)
		}
		flags := p[0]
		p = p[1:]
		var w Write
		var keyLen, dataLen uint64
		if keyLen, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		if keyLen > uint64(len(p)) {
			return Record{}, 0, fmt.Errorf("%w: truncated key", ErrCorrupt)
		}
		w.Key = string(p[:keyLen])
		p = p[keyLen:]
		if dataLen, p, err = readUvarint(p); err != nil {
			return Record{}, 0, err
		}
		if dataLen > uint64(len(p)) {
			return Record{}, 0, fmt.Errorf("%w: truncated data", ErrCorrupt)
		}
		if dataLen > 0 {
			w.Data = append([]byte(nil), p[:dataLen]...)
		}
		p = p[dataLen:]
		w.Delete = flags&1 != 0
		rec.Writes = append(rec.Writes, w)
	}
	return rec, end, nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, p[n:], nil
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// This file is the durable side of failover fencing: a per-node epoch/term
// record stored next to the log, plus the log-surgery helpers a supervisor
// needs to re-point or re-attach a node whose log diverged from the new
// primary (tail scan, suffix truncation, full wipe).
//
// The epoch state lives in a reserved "epoch" sub-storage as a single
// CRC-framed blob, reusing the Storage checkpoint-blob machinery (durable
// overwrite, torn-write detection via CRC) without widening the Storage
// interface. The "epoch" namespace cannot collide with the engine's
// per-container subs ("container-%d").

// ErrFenced is returned by Append and Sync on a fenced log: a newer primary
// term exists and this node must not make further writes durable.
var ErrFenced = errors.New("wal: log fenced by a newer primary epoch")

// EpochState is one node's durable failover term record.
type EpochState struct {
	// Epoch is the primary term this node's log appends under. A promoted
	// replica's storage is stamped with the new term before the promoted
	// database opens, so its first append already carries it.
	Epoch uint64
	// FenceBelow fences every term below it: a node whose Epoch is lower
	// opens with its WAL refusing appends (ErrFenced). The supervisor writes
	// it into the deposed primary's storage — the shared-storage analog of
	// STONITH — so even a restart of the zombie cannot resurrect it as a
	// writable primary.
	FenceBelow uint64
}

// epochSub is the reserved sub-storage name holding the epoch blob.
const epochSub = "epoch"

// epochStateSeq is the fixed checkpoint-blob sequence number of the state.
const epochStateSeq = 0

// epochStateVersion is the blob format version byte.
const epochStateVersion = 1

// WriteEpochState durably records st on s, overwriting any previous state.
// On return the state survives a machine crash (the blob write fsyncs).
func WriteEpochState(s Storage, st EpochState) error {
	buf := make([]byte, frameHeaderSize, frameHeaderSize+16)
	buf = append(buf, epochStateVersion)
	buf = binary.AppendUvarint(buf, st.Epoch)
	buf = binary.AppendUvarint(buf, st.FenceBelow)
	payload := buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	return s.Sub(epochSub).WriteCheckpoint(epochStateSeq, buf)
}

// ReadEpochState loads the node's durable epoch state. A missing or torn blob
// decodes as the zero state: a node that never saw a failover runs at epoch 0
// unfenced, and a fence write cut short by the very crash it raced recorded
// nothing — exactly the semantics of a fence that never became durable.
func ReadEpochState(s Storage) (EpochState, error) {
	sub := s.Sub(epochSub)
	seqs, err := sub.ListCheckpoints()
	if err != nil {
		return EpochState{}, err
	}
	found := false
	for _, seq := range seqs {
		if seq == epochStateSeq {
			found = true
			break
		}
	}
	if !found {
		return EpochState{}, nil
	}
	buf, err := sub.ReadCheckpoint(epochStateSeq)
	if err != nil {
		return EpochState{}, err
	}
	st, err := decodeEpochState(buf)
	if err != nil {
		return EpochState{}, nil // torn write: the state never became durable
	}
	return st, nil
}

func decodeEpochState(buf []byte) (EpochState, error) {
	if len(buf) < frameHeaderSize {
		return EpochState{}, fmt.Errorf("%w: truncated epoch state header", ErrCorrupt)
	}
	payloadLen := binary.LittleEndian.Uint32(buf)
	sum := binary.LittleEndian.Uint32(buf[4:])
	if payloadLen == 0 || int(payloadLen) != len(buf)-frameHeaderSize {
		return EpochState{}, fmt.Errorf("%w: epoch state frame length %d does not span the %d-byte blob",
			ErrCorrupt, payloadLen, len(buf))
	}
	payload := buf[frameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != sum {
		return EpochState{}, fmt.Errorf("%w: epoch state crc mismatch", ErrCorrupt)
	}
	if payload[0] != epochStateVersion {
		return EpochState{}, fmt.Errorf("%w: unknown epoch state version %d", ErrCorrupt, payload[0])
	}
	p := payload[1:]
	var st EpochState
	var err error
	if st.Epoch, p, err = readUvarint(p); err != nil {
		return EpochState{}, err
	}
	if st.FenceBelow, p, err = readUvarint(p); err != nil {
		return EpochState{}, err
	}
	if len(p) != 0 {
		return EpochState{}, fmt.Errorf("%w: %d trailing epoch state bytes", ErrCorrupt, len(p))
	}
	return st, nil
}

// TailLSN returns the highest decodable LSN across a log's segments (0 for an
// empty or missing log). LSNs ascend across segments, so the scan walks
// backwards and stops at the first segment holding any valid record. A torn
// tail ends that segment's valid prefix, matching Open's adoption rule.
func TailLSN(s Storage) (uint64, error) {
	indexes, err := s.List()
	if err != nil {
		return 0, err
	}
	for i := len(indexes) - 1; i >= 0; i-- {
		buf, err := s.ReadSegment(indexes[i])
		if err != nil {
			return 0, err
		}
		var tail uint64
		off := 0
		for off < len(buf) {
			rec, n, err := decodeRecord(buf, off)
			if err != nil {
				break
			}
			if rec.LSN > tail {
				tail = rec.LSN
			}
			off = n
		}
		if tail > 0 {
			return tail, nil
		}
	}
	return 0, nil
}

// TruncateAbove removes every record with LSN > lsn from a log's segments:
// segments whose every record is above the cut are deleted, and the segment
// containing the boundary is rewritten to its kept prefix (torn tail bytes
// are dropped with it — they were never durable records). It is the
// divergence-repair half of failover re-attach: the deposed primary's
// unacknowledged suffix beyond the new primary's durable LSN is unwound
// before the node tails the new log, whose fresh records will reuse those
// LSNs. The log must not be open while this runs. Returns the number of
// records removed.
func TruncateAbove(s Storage, lsn uint64) (int, error) {
	indexes, err := s.List()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, idx := range indexes {
		buf, err := s.ReadSegment(idx)
		if err != nil {
			return removed, err
		}
		cut, total, above := 0, 0, 0
		off := 0
		for off < len(buf) {
			rec, n, err := decodeRecord(buf, off)
			if err != nil {
				break // torn tail: drop it along with anything above the cut
			}
			total++
			if rec.LSN > lsn {
				above++
				if above == 1 {
					cut = off
				}
			}
			off = n
		}
		torn := off < len(buf)
		if above == 0 {
			if !torn {
				continue
			}
			cut = off // keep every whole record, shed the torn tail
		}
		removed += above
		if cut == 0 {
			if err := s.DeleteSegment(idx); err != nil {
				return removed, err
			}
			continue
		}
		if err := rewriteSegment(s, idx, buf[:cut]); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// rewriteSegment durably replaces a segment's contents with the given prefix.
func rewriteSegment(s Storage, idx uint64, data []byte) error {
	if err := s.DeleteSegment(idx); err != nil {
		return err
	}
	f, err := s.Create(idx)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WipeLog deletes every segment and checkpoint blob on s, leaving an empty
// log storage. Failover re-point falls back to it when suffix truncation is
// unsound — the node's newest checkpoint may have fuzzily captured effects
// beyond the cut (HighLSN above it, or unknown) — forcing a fresh bootstrap
// from the new primary's checkpoint instead.
func WipeLog(s Storage) error {
	indexes, err := s.List()
	if err != nil {
		return err
	}
	for _, idx := range indexes {
		if err := s.DeleteSegment(idx); err != nil {
			return err
		}
	}
	seqs, err := s.ListCheckpoints()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if err := s.DeleteCheckpoint(seq); err != nil {
			return err
		}
	}
	return nil
}

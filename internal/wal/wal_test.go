package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func testRecord(tid uint64, n int) Record {
	rec := Record{TID: tid}
	for i := 0; i < n; i++ {
		rec.Writes = append(rec.Writes, Write{
			Key:  fmt.Sprintf("reactor\x00rel\x00key-%d-%d", tid, i),
			Data: []byte(fmt.Sprintf("row-%d-%d", tid, i)),
		})
	}
	return rec
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendSyncReplayRoundtrip(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := []Record{testRecord(10, 2), testRecord(11, 1), {TID: 12, Writes: []Write{{Key: "k", Delete: true}}}}
	last, err := l.AppendBatch(want[:2])
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if last != 2 {
		t.Fatalf("last LSN = %d, want 2", last)
	}
	if _, err := l.Append(want[2]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := collect(t, l)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	for i, rec := range got {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d LSN = %d, want %d", i, rec.LSN, i+1)
		}
		if rec.TID != want[i].TID || len(rec.Writes) != len(want[i].Writes) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want[i])
		}
		for j, w := range rec.Writes {
			ww := want[i].Writes[j]
			if w.Key != ww.Key || string(w.Data) != string(ww.Data) || w.Delete != ww.Delete {
				t.Fatalf("record %d write %d = %+v, want %+v", i, j, w, ww)
			}
		}
	}
}

func TestSyncAbsorption(t *testing.T) {
	l, err := Open(NewMemStorage(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Nothing new appended: this sync must be absorbed, not hit storage.
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	s := l.Stats()
	if s.Fsyncs != 1 || s.SyncsAbsorbed != 1 {
		t.Fatalf("fsyncs=%d absorbed=%d, want 1 and 1", s.Fsyncs, s.SyncsAbsorbed)
	}
	if l.DurableLSN() != l.LastLSN() {
		t.Fatalf("durable %d != last %d", l.DurableLSN(), l.LastLSN())
	}
}

func TestSegmentRotationAndReopenContinuesLSNs(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(testRecord(uint64(100+i), 2)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync %d: %v", i, err)
		}
	}
	if s := l.Stats(); s.Segments < 2 {
		t.Fatalf("segments = %d, want rotation to have happened", s.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(st, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := collect(t, l2); len(got) != n {
		t.Fatalf("replayed %d records after reopen, want %d", len(got), n)
	}
	if last, err := l2.Append(testRecord(999, 1)); err != nil || last != n+1 {
		t.Fatalf("append after reopen: lsn=%d err=%v, want %d", last, err, n+1)
	}
}

// TestRotationTriggeringAppendSurvivesCrash: when an append overflows the
// active segment, rotation fsyncs the *old* segment; the new batch's bytes
// land in the fresh segment and the caller's Sync must still fsync them —
// the durable watermark must not be advanced past unwritten LSNs by the
// rotation, or the Sync is absorbed and the acknowledged commit is lost on
// a machine crash.
func TestRotationTriggeringAppendSurvivesCrash(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{SegmentSize: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 2)); err != nil { // fills most of segment 0
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if _, err := l.Append(testRecord(2, 2)); err != nil { // overflows: rotates
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil { // must fsync the fresh segment
		t.Fatalf("Sync: %v", err)
	}
	if s := l.Stats(); s.Segments < 2 {
		t.Fatalf("segments = %d, want a rotation to have happened", s.Segments)
	}

	got := collect(t, Open2(t, st.CrashCopy()))
	if len(got) != 2 {
		tids := make([]uint64, len(got))
		for i, r := range got {
			tids[i] = r.TID
		}
		t.Fatalf("replayed TIDs %v after crash, want [1 2]: rotation absorbed the commit's fsync", tids)
	}
}

func TestCrashCopyDropsUnsyncedTail(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Appended but never synced: must not survive the crash.
	if _, err := l.Append(testRecord(2, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}

	crashed := st.CrashCopy()
	l2, err := Open(crashed, Options{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	got := collect(t, l2)
	if len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("replayed %d records (first TID %d), want only the synced one", len(got), got[0].TID)
	}
}

func TestFailedSyncLeavesRecordsNonDurable(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	injected := errors.New("disk on fire")
	st.FailSyncs(injected)
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, injected) {
		t.Fatalf("Sync error = %v, want injected failure", err)
	}
	if l.DurableLSN() != 0 {
		t.Fatalf("DurableLSN = %d after failed sync, want 0", l.DurableLSN())
	}
	got := collect(t, Open2(t, st.CrashCopy()))
	if len(got) != 0 {
		t.Fatalf("replayed %d records after failed sync + crash, want 0", len(got))
	}
}

func Open2(t *testing.T, st Storage) *Log {
	t.Helper()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestFileStorageTornTailStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st := NewFileStorage(dir)
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testRecord(uint64(i+1), 2)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the last record: truncate the segment mid-frame.
	segs, err := st.List()
	if err != nil || len(segs) == 0 {
		t.Fatalf("List: %v (%d segments)", err, len(segs))
	}
	path := filepath.Join(dir, fmt.Sprintf("%016d.wal", segs[len(segs)-1]))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := collect(t, l2)
	if len(got) != 2 {
		t.Fatalf("replayed %d records from torn log, want 2", len(got))
	}
	if got[len(got)-1].TID != 2 {
		t.Fatalf("last replayed TID = %d, want 2", got[len(got)-1].TID)
	}
}

// TestReplayContinuesPastTornTailOfEarlierSegment covers the double-crash
// case: crash 1 leaves a torn tail in segment k; the restarted process opens
// segment k+1 and acknowledges new durable commits there; crash 2. Replay
// must skip the torn suffix of segment k but still deliver everything in
// k+1 — stopping the whole iteration would silently drop acknowledged
// commits.
func TestReplayContinuesPastTornTailOfEarlierSegment(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Appended, never synced: crash 1 tears this off.
	if _, err := l.Append(testRecord(2, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	crashed := st.CrashCopy()

	// Second incarnation: new active segment, new acknowledged commit.
	l2, err := Open(crashed, Options{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	lsn, err := l2.Append(testRecord(3, 1))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if lsn != 2 {
		t.Fatalf("post-crash LSN = %d, want 2 (the torn record's LSN is reusable)", lsn)
	}
	if err := l2.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// Crash 2 and recover: both acknowledged records must replay.
	l3 := Open2(t, crashed.CrashCopy())
	got := collect(t, l3)
	if len(got) != 2 || got[0].TID != 1 || got[1].TID != 3 {
		tids := make([]uint64, len(got))
		for i, r := range got {
			tids[i] = r.TID
		}
		t.Fatalf("replayed TIDs %v, want [1 3]", tids)
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(testRecord(2, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Flip a payload byte of the second record.
	segs, _ := st.List()
	buf, err := st.ReadSegment(segs[0])
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	_, firstEnd, err := decodeRecord(buf, 0)
	if err != nil {
		t.Fatalf("decode first: %v", err)
	}
	key := fmt.Sprintf("/%016d", segs[0])
	st.root.mu.Lock()
	st.root.segs[key].buf[firstEnd+frameHeaderSize+2] ^= 0xff
	st.root.mu.Unlock()

	got := collect(t, Open2(t, st))
	if len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(got))
	}
}

// TestFailedWriteWedgesLog: a failed segment write can leave a torn partial
// frame at the tail; appending past it would strand later fsynced records
// behind a CRC failure at replay, so the log must refuse all further work.
func TestFailedWriteWedgesLog(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	injected := errors.New("disk full")
	st.FailWrites(injected)
	if _, err := l.Append(testRecord(2, 1)); !errors.Is(err, injected) {
		t.Fatalf("Append during write failure = %v, want injected error", err)
	}
	st.FailWrites(nil)
	// The tail is torn: both append and sync must stay wedged.
	if _, err := l.Append(testRecord(3, 1)); !errors.Is(err, injected) {
		t.Fatalf("Append after torn write = %v, want wedged log", err)
	}
	if err := l.Sync(); !errors.Is(err, injected) {
		t.Fatalf("Sync after torn write = %v, want wedged log", err)
	}

	// Recovery on a fresh Log cuts the torn tail and resumes cleanly.
	l2 := Open2(t, st)
	got := collect(t, l2)
	if len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("replayed %d records after wedge, want the 1 durable one", len(got))
	}
	if _, err := l2.Append(testRecord(4, 1)); err != nil {
		t.Fatalf("Append on recovered log: %v", err)
	}
}

// TestTransientWriteFailureIsSalvagedByRetraction: when a batch write fails
// but the storage recovers (transient error), the log seals the damaged
// segment, retracts the whole batch on a fresh one, and keeps serving — and
// any complete leading frame the failed write left behind can never be
// replayed as committed.
func TestTransientWriteFailureIsSalvagedByRetraction(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	injected := errors.New("transient disk error")
	st.FailNextWrite(injected)
	// A multi-record batch: the half-write may leave the first record's
	// frame fully intact in the damaged segment.
	batch := []Record{testRecord(2, 1), testRecord(3, 1)}
	if _, err := l.AppendBatch(batch); !errors.Is(err, injected) {
		t.Fatalf("AppendBatch = %v, want injected error", err)
	}
	// Salvaged: the log is not wedged and keeps accepting appends.
	if _, err := l.Append(testRecord(4, 1)); err != nil {
		t.Fatalf("Append after salvage: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after salvage: %v", err)
	}

	got := collect(t, Open2(t, st))
	tids := make([]uint64, 0, len(got))
	for _, rec := range got {
		tids = append(tids, rec.TID)
	}
	if len(got) != 2 || got[0].TID != 1 || got[1].TID != 4 {
		t.Fatalf("replayed TIDs %v, want [1 4]: the failed batch must be retracted", tids)
	}
}

// TestIdleReopenCreatesNoSegments: restarts without appends must not
// accumulate empty segment files.
func TestIdleReopenCreatesNoSegments(t *testing.T) {
	st := NewMemStorage()
	for i := 0; i < 5; i++ {
		l, err := Open(st, Options{})
		if err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close %d: %v", i, err)
		}
	}
	segs, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(segs) != 0 {
		t.Fatalf("%d empty segments accumulated across idle restarts, want 0", len(segs))
	}
}

// TestOpenMakesInheritedTailDurable: a predecessor killed before its fsync
// leaves appended-but-unsynced bytes behind (page cache survives process
// death). Open must fsync them before treating the records as durable, or a
// later machine crash could erase records that post-restart commits build on.
func TestOpenMakesInheritedTailDurable(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Process dies before fsync: bytes present, not durable.

	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := collect(t, l2); len(got) != 1 {
		t.Fatalf("reopen replayed %d records, want 1", len(got))
	}
	// A machine crash after the reopen must not lose the inherited record.
	l3 := Open2(t, st.CrashCopy())
	if got := collect(t, l3); len(got) != 1 {
		t.Fatalf("inherited record lost on crash: replayed %d, want 1 (Open did not fsync the tail)", len(got))
	}
}

// TestAbortRecordRetractsCommitRecord: an abort record appended after a
// commit record (2PC failed after this log received the commit) keeps replay
// from resurrecting the transaction, even though the commit record itself is
// durable.
func TestAbortRecordRetractsCommitRecord(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{SegmentSize: 64}) // force the abort into a later segment
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord(1, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(testRecord(2, 2)); err != nil { // the doomed 2PC participant record
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(testRecord(3, 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(Record{TID: 2, Kind: KindAbort}); err != nil {
		t.Fatalf("Append abort: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	got := collect(t, Open2(t, st))
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2 (TID 2 retracted)", len(got))
	}
	for _, rec := range got {
		if rec.TID == 2 {
			t.Fatal("retracted transaction resurfaced in replay")
		}
	}
}

// TestAbortRecordOnlyRetractsEarlierLSNs: per-epoch sequence numbers restart
// across incarnations, so a later acknowledged commit can legitimately reuse
// a TID that an old abort record retracted. Retraction is LSN-ordered: the
// abort must not swallow the newer commit.
func TestAbortRecordOnlyRetractsEarlierLSNs(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const reusedTID = 42
	if _, err := l.Append(testRecord(reusedTID, 1)); err != nil { // LSN 1: the doomed commit
		t.Fatalf("Append: %v", err)
	}
	if _, err := l.Append(Record{TID: reusedTID, Kind: KindAbort}); err != nil { // LSN 2: its retraction
		t.Fatalf("Append abort: %v", err)
	}
	if _, err := l.Append(testRecord(reusedTID, 2)); err != nil { // LSN 3: a NEW txn reusing the TID
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := collect(t, Open2(t, st))
	if len(got) != 1 || got[0].LSN != 3 || len(got[0].Writes) != 2 {
		t.Fatalf("replayed %+v, want only the newer commit (LSN 3)", got)
	}
}

func TestByteSlicesAreCopiedOnDecode(t *testing.T) {
	var buf []byte
	rec := testRecord(7, 1)
	buf = appendFrame(buf, &rec)
	got, _, err := decodeRecord(buf, 0)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	buf[len(buf)-1] ^= 0xff // mutate the source buffer
	if string(got.Writes[0].Data) != string(rec.Writes[0].Data) {
		t.Fatal("decoded data aliases the source buffer")
	}
}

// TestPrepareAndDecisionRecordsRoundTripThroughReplay appends the 2PC record
// kinds and checks that Replay surfaces them with kinds, global ids and
// participant sets intact — resolving them is the engine's job.
func TestPrepareAndDecisionRecordsRoundTripThroughReplay(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	prep := Record{TID: 5, Kind: KindPrepare, GlobalID: 99, Coordinator: 2,
		Writes: []Write{{Key: "r\x00t\x00k", Data: []byte("v")}}}
	if _, err := l.Append(prep); err != nil {
		t.Fatalf("Append prepare: %v", err)
	}
	dec := Record{TID: 5, Kind: KindDecision, GlobalID: 99, Participants: []uint64{0, 2}}
	if _, err := l.Append(dec); err != nil {
		t.Fatalf("Append decision: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := collect(t, Open2(t, st))
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	if got[0].Kind != KindPrepare || got[0].GlobalID != 99 || got[0].Coordinator != 2 ||
		len(got[0].Writes) != 1 || got[0].Writes[0].Key != "r\x00t\x00k" {
		t.Fatalf("prepare record mangled: %+v", got[0])
	}
	if got[1].Kind != KindDecision || got[1].GlobalID != 99 ||
		len(got[1].Participants) != 2 || got[1].Participants[0] != 0 || got[1].Participants[1] != 2 {
		t.Fatalf("decision record mangled: %+v", got[1])
	}
}

// TestAbortRecordRetractsPrepareAndDecision: the retraction mechanism is
// kind-agnostic — an abort record with a matching TID retracts an earlier
// prepare record (failed 2PC, or a recovery tombstone) and an earlier
// decision record (failed decision batch salvage) alike.
func TestAbortRecordRetractsPrepareAndDecision(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	recs := []Record{
		{TID: 5, Kind: KindPrepare, GlobalID: 99, Writes: []Write{{Key: "r\x00t\x00k", Data: []byte("v")}}},
		{TID: 6, Kind: KindDecision, GlobalID: 98, Participants: []uint64{0, 1}},
		{TID: 5, Kind: KindAbort},
		{TID: 6, Kind: KindAbort},
	}
	for i := range recs {
		if _, err := l.Append(recs[i]); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := collect(t, Open2(t, st)); len(got) != 0 {
		t.Fatalf("replayed %d records, want everything retracted: %+v", len(got), got)
	}
}

// TestDecodeRejectsStructuralCorruption: strict decoding — unknown or
// conflicting flag bits and trailing payload bytes are ErrCorrupt, never
// silently ignored (a silent mis-decode would let a corrupted frame replay
// as a different transaction).
func TestDecodeRejectsStructuralCorruption(t *testing.T) {
	base := Record{LSN: 1, TID: 2, Kind: KindPrepare, GlobalID: 3, Coordinator: 0,
		Writes: []Write{{Key: "k", Data: []byte("v")}}}
	frame := appendFrame(nil, &base)

	mutate := func(name string, f func([]byte) []byte) {
		buf := f(append([]byte(nil), frame...))
		// Re-seal the CRC so only the structural check can reject it.
		payload := buf[frameHeaderSize:]
		binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
		if _, _, err := decodeRecord(buf, 0); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	flagOff := frameHeaderSize + 2 // uvarint LSN (1 byte) + uvarint TID (1 byte)
	mutate("unknown flag bit", func(b []byte) []byte { b[flagOff] |= 0x80; return b })
	mutate("conflicting kind bits", func(b []byte) []byte { b[flagOff] |= flagAbort; return b })
	mutate("trailing bytes", func(b []byte) []byte { return append(b, 0xEE) })
}

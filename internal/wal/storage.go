package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Storage persists log segments. It outlives any single Log instance: a new
// Log opened on the same Storage sees the segments its predecessors wrote,
// which is what makes recovery after a restart (or a simulated crash)
// possible.
type Storage interface {
	// Sub returns a namespaced child storage (one per container).
	Sub(name string) Storage
	// List returns the indexes of existing segments in ascending order.
	List() ([]uint64, error)
	// ReadSegment returns the full durable contents of a segment.
	ReadSegment(index uint64) ([]byte, error)
	// SyncSegment fsyncs an existing segment that is not currently open for
	// writing. Open uses it to make a predecessor's tail durable before
	// treating recovered records as such.
	SyncSegment(index uint64) error
	// Create creates the segment with the given index and returns its writer.
	Create(index uint64) (SegmentFile, error)
	// DeleteSegment durably removes a sealed segment. Log truncation calls it
	// for segments wholly below a checkpoint's low-water mark; it must never
	// be called on the segment currently open for writing.
	DeleteSegment(index uint64) error
	// ListCheckpoints returns the sequence numbers of stored checkpoint blobs
	// in ascending order. Checkpoints are sidecar files next to the segments;
	// they share the storage's lifetime and crash semantics.
	ListCheckpoints() ([]uint64, error)
	// ReadCheckpoint returns the durable contents of the checkpoint blob with
	// the given sequence number (possibly torn if a writer crashed mid-write;
	// DecodeCheckpoint's CRC catches that).
	ReadCheckpoint(seq uint64) ([]byte, error)
	// WriteCheckpoint durably stores a checkpoint blob under seq, overwriting
	// any previous blob with the same sequence number. On return the bytes
	// must survive a machine crash.
	WriteCheckpoint(seq uint64, data []byte) error
	// DeleteCheckpoint durably removes the checkpoint blob with the given
	// sequence number.
	DeleteCheckpoint(seq uint64) error
}

// SegmentFile is the writable handle of one open segment.
type SegmentFile interface {
	io.Writer
	// Sync makes every byte written so far durable.
	Sync() error
	Close() error
}

// --- In-memory storage --------------------------------------------------------

// MemStorage keeps segments in process memory with honest durability
// semantics: bytes become "durable" only when Sync succeeds, and CrashCopy
// discards everything after the last successful sync — exactly what a machine
// crash does to an OS page cache. Tests use the fault hooks to gate or fail
// fsyncs and to snapshot a post-crash view while the original database is
// still wedged mid-flush.
type MemStorage struct {
	root   *memRoot
	prefix string
}

type memRoot struct {
	mu   sync.Mutex
	segs map[string]*memSegment

	// fault injection, shared by all Sub-storages
	syncGate chan struct{} // non-nil: Sync blocks until the channel is closed
	syncErr  error         // non-nil: Sync fails without marking bytes durable
	writeErr error         // non-nil: Write fails after a partial append
	writeOne bool          // writeErr clears after one failed Write
	syncs    atomic.Int64  // Sync attempts started (including gated/failed)
}

type memSegment struct {
	buf    []byte
	synced int // prefix of buf that survived the last successful Sync
}

// NewMemStorage returns an empty in-memory storage.
func NewMemStorage() *MemStorage {
	return &MemStorage{root: &memRoot{segs: make(map[string]*memSegment)}}
}

func (m *MemStorage) key(index uint64) string {
	return fmt.Sprintf("%s/%016d", m.prefix, index)
}

// ckptKey namespaces checkpoint blobs away from segment keys: the "ckpt/"
// component never parses as a segment index, so List and ListCheckpoints
// cannot confuse the two.
func (m *MemStorage) ckptKey(seq uint64) string {
	return fmt.Sprintf("%s/ckpt/%016d", m.prefix, seq)
}

// Sub implements Storage.
func (m *MemStorage) Sub(name string) Storage {
	return &MemStorage{root: m.root, prefix: m.prefix + "/" + name}
}

// List implements Storage.
func (m *MemStorage) List() ([]uint64, error) {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	var out []uint64
	for k := range m.root.segs {
		var idx uint64
		if n, err := fmt.Sscanf(k, m.prefix+"/%016d", &idx); n == 1 && err == nil {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ReadSegment implements Storage. It returns everything written, durable or
// not: that is what a clean reopen of a real file would see. Crash semantics
// come from CrashCopy, which drops the unsynced suffix first.
func (m *MemStorage) ReadSegment(index uint64) ([]byte, error) {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	seg, ok := m.root.segs[m.key(index)]
	if !ok {
		return nil, fmt.Errorf("wal: no such segment %d", index)
	}
	return append([]byte(nil), seg.buf...), nil
}

// SyncSegment implements Storage: everything written so far becomes durable,
// matching what fsyncing a real file adopted from the page cache would do.
func (m *MemStorage) SyncSegment(index uint64) error {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	seg, ok := m.root.segs[m.key(index)]
	if !ok {
		return fmt.Errorf("wal: no such segment %d", index)
	}
	if err := m.root.syncErr; err != nil {
		return err
	}
	seg.synced = len(seg.buf)
	return nil
}

// Create implements Storage.
func (m *MemStorage) Create(index uint64) (SegmentFile, error) {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	k := m.key(index)
	if _, dup := m.root.segs[k]; dup {
		return nil, fmt.Errorf("wal: segment %d already exists", index)
	}
	seg := &memSegment{}
	m.root.segs[k] = seg
	return &memSegmentFile{root: m.root, seg: seg}, nil
}

// DeleteSegment implements Storage.
func (m *MemStorage) DeleteSegment(index uint64) error {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	k := m.key(index)
	if _, ok := m.root.segs[k]; !ok {
		return fmt.Errorf("wal: no such segment %d", index)
	}
	delete(m.root.segs, k)
	return nil
}

// ListCheckpoints implements Storage.
func (m *MemStorage) ListCheckpoints() ([]uint64, error) {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	var out []uint64
	for k := range m.root.segs {
		var seq uint64
		if n, err := fmt.Sscanf(k, m.prefix+"/ckpt/%016d", &seq); n == 1 && err == nil {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ReadCheckpoint implements Storage. Like ReadSegment it returns everything
// written; a crash drops the unsynced suffix via CrashCopy, which is how a
// torn checkpoint write surfaces to recovery.
func (m *MemStorage) ReadCheckpoint(seq uint64) ([]byte, error) {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	blob, ok := m.root.segs[m.ckptKey(seq)]
	if !ok {
		return nil, fmt.Errorf("wal: no such checkpoint %d", seq)
	}
	return append([]byte(nil), blob.buf...), nil
}

// WriteCheckpoint implements Storage: the blob is written and fsynced in one
// step (a failed sync fails the write). Checkpoint blobs live in the same
// keyspace as segments so CrashCopy preserves their durable prefixes too.
func (m *MemStorage) WriteCheckpoint(seq uint64, data []byte) error {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	if err := m.root.syncErr; err != nil {
		return err
	}
	buf := append([]byte(nil), data...)
	m.root.segs[m.ckptKey(seq)] = &memSegment{buf: buf, synced: len(buf)}
	return nil
}

// DeleteCheckpoint implements Storage.
func (m *MemStorage) DeleteCheckpoint(seq uint64) error {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	k := m.ckptKey(seq)
	if _, ok := m.root.segs[k]; !ok {
		return fmt.Errorf("wal: no such checkpoint %d", seq)
	}
	delete(m.root.segs, k)
	return nil
}

// GateSyncs installs a gate channel: every subsequent Sync (on any segment of
// this storage tree) blocks until the channel is closed. It simulates a
// committer stuck mid-fsync so a test can crash the system mid-batch.
func (m *MemStorage) GateSyncs(gate chan struct{}) {
	m.root.mu.Lock()
	m.root.syncGate = gate
	m.root.mu.Unlock()
}

// FailSyncs makes every subsequent Sync fail with err (nil restores normal
// operation). Failed syncs leave their bytes non-durable.
func (m *MemStorage) FailSyncs(err error) {
	m.root.mu.Lock()
	m.root.syncErr = err
	m.root.mu.Unlock()
}

// FailWrites makes every subsequent segment Write fail with err after
// appending only half of its bytes — the torn-frame shape a full disk
// leaves behind. nil restores normal operation.
func (m *MemStorage) FailWrites(err error) {
	m.root.mu.Lock()
	m.root.writeErr = err
	m.root.writeOne = false
	m.root.mu.Unlock()
}

// FailNextWrite fails exactly one subsequent segment Write (half-appended,
// like FailWrites), then restores normal operation — a transient write
// failure the log can salvage by retracting on a fresh segment.
func (m *MemStorage) FailNextWrite(err error) {
	m.root.mu.Lock()
	m.root.writeErr = err
	m.root.writeOne = true
	m.root.mu.Unlock()
}

// SyncsStarted returns the number of Sync attempts begun, including gated and
// failed ones; tests use it to detect a committer wedged in fsync.
func (m *MemStorage) SyncsStarted() int64 { return m.root.syncs.Load() }

// CrashCopy returns a new independent MemStorage holding only the durable
// (synced) prefix of every segment — the storage state a machine crash would
// leave behind. The original storage is not modified, so a database still
// wedged on it can be released and shut down afterwards.
func (m *MemStorage) CrashCopy() *MemStorage {
	m.root.mu.Lock()
	defer m.root.mu.Unlock()
	root := &memRoot{segs: make(map[string]*memSegment, len(m.root.segs))}
	for k, seg := range m.root.segs {
		root.segs[k] = &memSegment{
			buf:    append([]byte(nil), seg.buf[:seg.synced]...),
			synced: seg.synced,
		}
	}
	return &MemStorage{root: root, prefix: m.prefix}
}

type memSegmentFile struct {
	root *memRoot
	seg  *memSegment
}

func (f *memSegmentFile) Write(p []byte) (int, error) {
	f.root.mu.Lock()
	defer f.root.mu.Unlock()
	if err := f.root.writeErr; err != nil {
		if f.root.writeOne {
			f.root.writeErr = nil
			f.root.writeOne = false
		}
		n := len(p) / 2
		f.seg.buf = append(f.seg.buf, p[:n]...)
		return n, err
	}
	f.seg.buf = append(f.seg.buf, p...)
	return len(p), nil
}

func (f *memSegmentFile) Sync() error {
	f.root.syncs.Add(1)
	f.root.mu.Lock()
	gate := f.root.syncGate
	f.root.mu.Unlock()
	if gate != nil {
		<-gate
	}
	f.root.mu.Lock()
	defer f.root.mu.Unlock()
	if err := f.root.syncErr; err != nil {
		return err
	}
	f.seg.synced = len(f.seg.buf)
	return nil
}

func (f *memSegmentFile) Close() error { return nil }

// --- File-backed storage ------------------------------------------------------

// FileStorage stores each segment as one file (%016d.wal) under a directory,
// with real fsyncs. Directories are created lazily on first write.
type FileStorage struct {
	dir string
}

// NewFileStorage returns a file-backed storage rooted at dir. No IO happens
// until a segment is created or listed.
func NewFileStorage(dir string) *FileStorage { return &FileStorage{dir: dir} }

func (s *FileStorage) segPath(index uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016d.wal", index))
}

// Sub implements Storage.
func (s *FileStorage) Sub(name string) Storage {
	return &FileStorage{dir: filepath.Join(s.dir, name)}
}

// List implements Storage.
func (s *FileStorage) List() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		var idx uint64
		if n, scanErr := fmt.Sscanf(e.Name(), "%016d.wal", &idx); n == 1 && scanErr == nil {
			out = append(out, idx)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ReadSegment implements Storage.
func (s *FileStorage) ReadSegment(index uint64) ([]byte, error) {
	return os.ReadFile(s.segPath(index))
}

// SyncSegment implements Storage.
func (s *FileStorage) SyncSegment(index uint64) error {
	f, err := os.OpenFile(s.segPath(index), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Create implements Storage. The parent directory is fsynced after the
// segment file is created so the directory entry — and with it every commit
// the segment will hold — survives a crash, not just the file's own data.
func (s *FileStorage) Create(index uint64) (SegmentFile, error) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.segPath(index), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// DeleteSegment implements Storage. The directory is fsynced afterwards so
// the removal — and with it the truncation's space reclamation — is durable.
func (s *FileStorage) DeleteSegment(index uint64) error {
	if err := os.Remove(s.segPath(index)); err != nil {
		return err
	}
	return syncDir(s.dir)
}

func (s *FileStorage) ckptPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016d.ckpt", seq))
}

// ListCheckpoints implements Storage.
func (s *FileStorage) ListCheckpoints() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		var seq uint64
		if n, scanErr := fmt.Sscanf(e.Name(), "%016d.ckpt", &seq); n == 1 && scanErr == nil {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ReadCheckpoint implements Storage.
func (s *FileStorage) ReadCheckpoint(seq uint64) ([]byte, error) {
	return os.ReadFile(s.ckptPath(seq))
}

// WriteCheckpoint implements Storage: write, fsync the file, fsync the
// directory. A crash mid-write leaves a torn file whose CRC fails decoding,
// which recovery treats as "no such checkpoint".
func (s *FileStorage) WriteCheckpoint(seq uint64, data []byte) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(s.ckptPath(seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// DeleteCheckpoint implements Storage.
func (s *FileStorage) DeleteCheckpoint(seq uint64) error {
	if err := os.Remove(s.ckptPath(seq)); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so freshly created entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

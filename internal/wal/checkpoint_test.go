package wal

import (
	"errors"
	"reflect"
	"testing"
)

func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Seq:         3,
		LowLSN:      41,
		MaxTID:      1 << 41,
		MaxGlobalID: 17,
		Rows: []CheckpointRow{
			{Key: "r\x00t\x00k1", TID: 7, Data: []byte("hello")},
			{Key: "r\x00t\x00k2", TID: 9, Data: []byte{0, 1, 2, 255}},
			{Key: "r\x00t\x00k3", TID: 11},                // empty payload
			{Key: "r\x00t\x00k4", TID: 13, Deleted: true}, // deletion tombstone
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, cp := range []*Checkpoint{testCheckpoint(), {Seq: 1}} {
		buf := EncodeCheckpoint(cp)
		got, err := DecodeCheckpoint(buf)
		if err != nil {
			t.Fatalf("DecodeCheckpoint: %v", err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cp)
		}
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	buf := EncodeCheckpoint(testCheckpoint())
	variants := map[string][]byte{
		"empty":          {},
		"short header":   buf[:4],
		"torn tail":      buf[:len(buf)-3],
		"flipped byte":   append(append([]byte(nil), buf[:20]...), buf[20:]...),
		"flipped crc":    append([]byte(nil), buf...),
		"trailing bytes": append(append([]byte(nil), buf...), 0xab),
	}
	variants["flipped byte"][len(buf)/2] ^= 0x01
	variants["flipped crc"][5] ^= 0xff
	for name, v := range variants {
		if _, err := DecodeCheckpoint(v); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: DecodeCheckpoint = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestLatestCheckpointFallback stores a valid checkpoint under a torn newer
// one: the torn blob must be skipped (counted), never partially loaded.
func TestLatestCheckpointFallback(t *testing.T) {
	s := NewMemStorage().Sub("c0")
	good := testCheckpoint()
	good.Seq = 1
	if err := s.WriteCheckpoint(1, EncodeCheckpoint(good)); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	torn := EncodeCheckpoint(&Checkpoint{Seq: 2, LowLSN: 99})
	if err := s.WriteCheckpoint(2, torn[:len(torn)-2]); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	cp, skipped, err := LatestCheckpoint(s)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if skipped != 1 || cp == nil || cp.Seq != 1 || !reflect.DeepEqual(cp, good) {
		t.Fatalf("LatestCheckpoint = (%+v, skipped %d), want the seq-1 fallback", cp, skipped)
	}

	// Both torn: no checkpoint at all, full-replay fallback.
	if err := s.WriteCheckpoint(1, torn[:4]); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	cp, skipped, err = LatestCheckpoint(s)
	if err != nil || cp != nil || skipped != 2 {
		t.Fatalf("LatestCheckpoint = (%+v, %d, %v), want (nil, 2, nil)", cp, skipped, err)
	}

	// Empty storage: no checkpoint, nothing skipped.
	cp, skipped, err = LatestCheckpoint(NewMemStorage().Sub("empty"))
	if err != nil || cp != nil || skipped != 0 {
		t.Fatalf("LatestCheckpoint on empty storage = (%+v, %d, %v)", cp, skipped, err)
	}
}

// appendN appends n single-write commit records and returns the last LSN.
func appendN(t *testing.T, l *Log, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		lsn, err := l.Append(Record{TID: uint64(i + 1), Writes: []Write{
			{Key: "r\x00t\x00key", Data: []byte("0123456789abcdef")},
		}})
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		last = lsn
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	return last
}

func TestTruncateBelowDeletesOnlyWholeCoveredSegments(t *testing.T) {
	storage := NewMemStorage().Sub("c0")
	l, err := Open(storage, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	last := appendN(t, l, 20)
	before, _ := storage.List()
	if len(before) < 4 {
		t.Fatalf("only %d segments; segment size too large for the test", len(before))
	}

	mid := last / 2
	deleted, err := l.TruncateBelow(mid)
	if err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	if deleted == 0 {
		t.Fatal("TruncateBelow deleted nothing")
	}
	after, _ := storage.List()
	if len(after) != len(before)-deleted {
		t.Fatalf("storage holds %d segments, want %d", len(after), len(before)-deleted)
	}
	// Every record at or above the boundary segment must still replay; no
	// record above mid may be gone.
	seen := map[uint64]bool{}
	if err := l.Replay(func(rec Record) error {
		seen[rec.LSN] = true
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for lsn := mid + 1; lsn <= last; lsn++ {
		if !seen[lsn] {
			t.Fatalf("record %d above the truncation mark vanished", lsn)
		}
	}
	if stats := l.Stats(); stats.Truncations != 1 || stats.SegmentsDeleted != uint64(deleted) {
		t.Fatalf("stats = %+v, want 1 truncation deleting %d", stats, deleted)
	}

	// Truncating beyond the last LSN must keep the active segment and the
	// LSN watermark: a reopened log continues the sequence.
	if _, err := l.TruncateBelow(last + 100); err != nil {
		t.Fatalf("TruncateBelow(all): %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(storage, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := l2.LastLSN(); got != last {
		t.Fatalf("reopened LastLSN = %d, want %d (watermark lost to truncation)", got, last)
	}
	lsn, err := l2.Append(Record{TID: 999})
	if err != nil {
		t.Fatalf("post-truncation Append: %v", err)
	}
	if lsn != last+1 {
		t.Fatalf("post-truncation LSN = %d, want %d", lsn, last+1)
	}
	_ = l2.Close()
}

// TestTruncateBelowIdleLogKeepsWatermark reopens a log without appending (no
// active segment) and truncates everything: the newest record-bearing
// segment must survive so the LSN watermark does.
func TestTruncateBelowIdleLogKeepsWatermark(t *testing.T) {
	storage := NewMemStorage().Sub("c0")
	l, err := Open(storage, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	last := appendN(t, l, 10)
	_ = l.Close()

	l2, err := Open(storage, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := l2.TruncateBelow(last); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	segs, _ := storage.List()
	if len(segs) == 0 {
		t.Fatal("truncation deleted every segment of an idle log")
	}
	if got := l2.LastLSN(); got != last {
		t.Fatalf("LastLSN = %d, want %d", got, last)
	}
	_ = l2.Close()

	l3, err := Open(storage, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	if got := l3.LastLSN(); got != last {
		t.Fatalf("reopened LastLSN = %d, want %d", got, last)
	}
	_ = l3.Close()
}

// TestFileStorageCheckpoints runs the checkpoint sidecar API against real
// files: blobs round-trip, listing is ordered and segregated from segments,
// deletion is durable, and segment deletion works.
func TestFileStorageCheckpoints(t *testing.T) {
	s := NewFileStorage(t.TempDir()).Sub("c0")
	l, err := Open(s, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendN(t, l, 10)
	_ = l.Close()

	for seq := uint64(1); seq <= 3; seq++ {
		cp := testCheckpoint()
		cp.Seq = seq
		if err := s.WriteCheckpoint(seq, EncodeCheckpoint(cp)); err != nil {
			t.Fatalf("WriteCheckpoint %d: %v", seq, err)
		}
	}
	seqs, err := s.ListCheckpoints()
	if err != nil || !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Fatalf("ListCheckpoints = (%v, %v)", seqs, err)
	}
	cp, skipped, err := LatestCheckpoint(s)
	if err != nil || skipped != 0 || cp == nil || cp.Seq != 3 {
		t.Fatalf("LatestCheckpoint = (%+v, %d, %v)", cp, skipped, err)
	}
	if err := s.DeleteCheckpoint(2); err != nil {
		t.Fatalf("DeleteCheckpoint: %v", err)
	}
	seqs, _ = s.ListCheckpoints()
	if !reflect.DeepEqual(seqs, []uint64{1, 3}) {
		t.Fatalf("ListCheckpoints after delete = %v", seqs)
	}
	// Checkpoint files must not shadow segments or vice versa.
	segs, err := s.List()
	if err != nil || len(segs) == 0 {
		t.Fatalf("List = (%v, %v)", segs, err)
	}
	if err := s.DeleteSegment(segs[0]); err != nil {
		t.Fatalf("DeleteSegment: %v", err)
	}
	segsAfter, _ := s.List()
	if len(segsAfter) != len(segs)-1 {
		t.Fatalf("List after DeleteSegment = %v", segsAfter)
	}
}

package occ

import (
	"reactdb/internal/kv"
)

// ApplyReplayedWrite installs one recovered committed write into a record:
// the WAL replay hook. The write is applied only if its TID is newer than the
// record's current version, so replaying a log whose append order differs
// slightly from TID order (group-commit batches interleaved with two-phase
// commit participants) converges on the newest version of every key. guard,
// when non-nil, is the structural guard of the record's table; it is bumped
// when the replay materializes or deletes a row so post-recovery scans
// validate against the recovered structure.
//
// Recovery runs before the database serves transactions, but the hook takes
// the record latch and the structural guard anyway so it is safe by
// construction.
func (d *Domain) ApplyReplayedWrite(rec *kv.Record, guard ScanGuard, tid uint64, data []byte, deleted bool) {
	d.ApplyShippedWrite(rec, guard, tid, data, deleted)
}

// ApplyShippedWrite installs one replicated committed write shipped from a
// primary's log: the replica's apply hook, and the body ApplyReplayedWrite
// delegates to. Unlike recovery, a replica applies against a live domain that
// is concurrently serving read-only transactions — which is exactly what the
// record latch and structural guard already make safe: a reader that observed
// a version this install replaces fails its OCC validation and retries. It
// reports whether the write was installed; false means the record already
// held this version or a newer one (the re-shipped overlap after a replica
// restart, or a group participant applied out of batch order).
func (d *Domain) ApplyShippedWrite(rec *kv.Record, guard ScanGuard, tid uint64, data []byte, deleted bool) bool {
	maintainer, maintain := guard.(IndexMaintainer)
	rec.Lock()
	if tid <= rec.TID() {
		rec.Unlock()
		return false
	}
	oldData := rec.Data()
	oldPresent := !rec.Absent()
	structural := rec.Absent() || deleted
	if !deleted {
		rec.SetData(data)
	}
	rec.UnlockWithTID(tid, deleted)
	if guard != nil && (structural || maintain) {
		guard.LockStructure()
		if maintain && maintainer.ApplyIndexWrite(oldData, oldPresent, data, deleted) {
			structural = true
		}
		if structural {
			guard.BumpVersion()
		}
		guard.UnlockStructure()
	}
	return true
}

// InstallCheckpointRow installs one checkpoint-captured row into a record:
// the recovery fast path's counterpart to ApplyReplayedWrite. Checkpoints
// capture loader-populated base rows too, which carry TID 0 — a version the
// replay hook's strict newer-than check would refuse to install — so an
// absent (freshly indexed) record accepts any TID, including 0. A present
// record keeps the newer version, making the hook idempotent against rows the
// log suffix already re-applied. deleted installs a checkpoint tombstone: the
// row was removed by a transaction the checkpoint absorbed (its delete record
// may be truncated), so the record must end up absent even if a re-run loader
// repopulated it before Recover.
func (d *Domain) InstallCheckpointRow(rec *kv.Record, guard ScanGuard, tid uint64, data []byte, deleted bool) {
	maintainer, maintain := guard.(IndexMaintainer)
	rec.Lock()
	if !rec.Absent() && tid <= rec.TID() && tid > 0 {
		rec.Unlock()
		return
	}
	oldData := rec.Data()
	oldPresent := !rec.Absent()
	structural := rec.Absent() || deleted
	if !deleted {
		rec.SetData(data)
	}
	rec.UnlockWithTID(tid, deleted)
	if guard != nil && (structural || maintain) {
		guard.LockStructure()
		if maintain && maintainer.ApplyIndexWrite(oldData, oldPresent, data, deleted) {
			structural = true
		}
		if structural {
			guard.BumpVersion()
		}
		guard.UnlockStructure()
	}
}

// TIDWatermark returns a TID strictly greater than every TID this domain has
// issued so far: the next epoch's floor. The checkpointer stamps it into the
// checkpoint (Checkpoint.MaxTID) so recovery can advance the domain past all
// captured history — including versions the snapshot itself forgets, such as
// the TIDs of deleted rows — via ObserveRecoveredTID.
func (d *Domain) TIDWatermark() uint64 {
	return (d.epoch.Load() + 1) << epochBits
}

// ObserveRecoveredAbort retracts a prepared-but-undecided transaction found
// during WAL replay and resolved by presumed abort: nothing is applied (its
// writes were staged in the log but never installed), the domain's abort
// counter reflects the resolution, and the epoch advances past the
// transaction's pre-assigned TID exactly as for replayed commits — so a TID
// carried by a recovery tombstone can never be generated again and
// accidentally retract a future record.
func (d *Domain) ObserveRecoveredAbort(tid uint64) {
	d.aborted.Add(1)
	d.ObserveRecoveredTID(tid)
}

// ObserveRecoveredTID advances the domain's epoch past a replayed TID so that
// every TID generated after recovery is strictly greater than every recovered
// one, preserving Silo's monotonicity invariant across restarts.
func (d *Domain) ObserveRecoveredTID(tid uint64) {
	want := (tid >> epochBits) + 1
	for {
		cur := d.epoch.Load()
		if cur >= want || d.epoch.CompareAndSwap(cur, want) {
			return
		}
	}
}

package occ

import (
	"testing"

	"reactdb/internal/kv"
)

// guardStub satisfies ScanGuard and counts version bumps.
type guardStub struct {
	version uint64
	locked  bool
}

func (g *guardStub) Version() uint64        { return g.version }
func (g *guardStub) BumpVersion()           { g.version++ }
func (g *guardStub) LockStructure()         { g.locked = true }
func (g *guardStub) TryLockStructure() bool { return true }
func (g *guardStub) UnlockStructure()       { g.locked = false }

func TestApplyReplayedWriteInstallsNewerVersions(t *testing.T) {
	d := NewDomain("replay")
	g := &guardStub{}

	rec := kv.NewRecord() // absent: the row exists only in the log
	d.ApplyReplayedWrite(rec, g, 100, []byte("v1"), false)
	data, tid, present := rec.StableRead()
	if !present || string(data) != "v1" || tid != 100 {
		t.Fatalf("after replay: data=%q tid=%d present=%v", data, tid, present)
	}
	if g.version != 1 {
		t.Fatalf("materializing a row must bump the structural version, got %d", g.version)
	}

	// An older TID must not overwrite a newer installed version.
	d.ApplyReplayedWrite(rec, g, 50, []byte("stale"), false)
	if data, _, _ := rec.StableRead(); string(data) != "v1" {
		t.Fatalf("stale replay overwrote newer version: %q", data)
	}

	// A newer update replaces data without a structural bump.
	d.ApplyReplayedWrite(rec, g, 200, []byte("v2"), false)
	if data, tid, _ := rec.StableRead(); string(data) != "v2" || tid != 200 {
		t.Fatalf("newer replay not applied: data=%q tid=%d", data, tid)
	}
	if g.version != 1 {
		t.Fatalf("plain update must not bump structure, got %d", g.version)
	}

	// A replayed delete hides the row and bumps structure.
	d.ApplyReplayedWrite(rec, g, 300, nil, true)
	if _, _, present := rec.StableRead(); present {
		t.Fatal("replayed delete left the row visible")
	}
	if g.version != 2 {
		t.Fatalf("delete must bump structure, got %d", g.version)
	}
}

func TestObserveRecoveredTIDKeepsTIDsMonotonic(t *testing.T) {
	d := NewDomain("replay-tids")
	recovered := uint64(7)<<epochBits | 12345
	d.ObserveRecoveredTID(recovered)
	tid := d.nextTID(0)
	if tid <= recovered {
		t.Fatalf("nextTID %d not greater than recovered %d", tid, recovered)
	}
}

func TestPreparedWritesAndAssignTIDDriveTheDurabilityHook(t *testing.T) {
	d := NewDomain("prepared-writes")
	rec := kv.NewCommittedRecord(encInt(1), 0)
	txn := d.Begin()
	if err := txn.Write(rec, []byte("r\x00t\x00k"), encInt(42), nil); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Before prepare, neither hook is available.
	calls := 0
	txn.PreparedWrites(func([]byte, []byte, bool) { calls++ })
	if calls != 0 {
		t.Fatalf("PreparedWrites on active txn visited %d writes, want 0", calls)
	}
	if _, err := txn.AssignTID(); err == nil {
		t.Fatal("AssignTID on active txn must fail")
	}

	if err := txn.Prepare(); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	tid, err := txn.AssignTID()
	if err != nil || tid == 0 {
		t.Fatalf("AssignTID = (%d, %v)", tid, err)
	}
	if again, _ := txn.AssignTID(); again != tid {
		t.Fatalf("AssignTID not stable: %d then %d", tid, again)
	}
	txn.PreparedWrites(func(key []byte, data []byte, deleted bool) {
		calls++
		if string(key) != "r\x00t\x00k" || decInt(data) != 42 || deleted {
			t.Fatalf("unexpected write: key=%q data=%d deleted=%v", key, decInt(data), deleted)
		}
	})
	if calls != 1 {
		t.Fatalf("PreparedWrites visited %d writes, want 1", calls)
	}

	// The write phase must install under the pre-assigned TID.
	installed, err := txn.CommitPrepared()
	if err != nil {
		t.Fatalf("CommitPrepared: %v", err)
	}
	if installed != tid || txn.TID() != tid {
		t.Fatalf("CommitPrepared installed TID %d (accessor %d), want pre-assigned %d", installed, txn.TID(), tid)
	}
	if _, recTID, _ := rec.StableRead(); recTID != tid {
		t.Fatalf("record TID %d, want %d", recTID, tid)
	}
}

package occ

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"unsafe"

	"reactdb/internal/kv"
)

// Errors returned by the commit protocol and write primitives.
var (
	// ErrConflict indicates validation failure: a record or scanned table
	// changed between the transaction's read and its commit attempt.
	ErrConflict = errors.New("occ: serialization conflict")
	// ErrDuplicateKey indicates an insert of a primary key that is already
	// present.
	ErrDuplicateKey = errors.New("occ: duplicate primary key")
	// ErrTxnClosed indicates use of a transaction that already committed or
	// aborted.
	ErrTxnClosed = errors.New("occ: transaction is no longer active")
)

// ScanGuard is the phantom-protection hook implemented by rel.Table: a
// structural version that committed inserts and deletes bump, plus a latch the
// commit protocol holds while bumping so concurrent validators cannot miss the
// change.
type ScanGuard interface {
	Version() uint64
	BumpVersion()
	LockStructure()
	TryLockStructure() bool
	UnlockStructure()
}

// IndexMaintainer extends ScanGuard for tables that keep secondary indexes
// (rel.Table). The commit install phase calls ApplyIndexWrite for every write
// whose guard implements it, passing the record state captured before the
// install, so index entries always mirror the committed row contents. The
// return value reports whether any index entry changed; the caller treats a
// true result as a structural change and bumps the guard's version, because
// a row moving between index ranges is a phantom for concurrent index scans
// even when its primary key is unchanged.
type IndexMaintainer interface {
	ScanGuard
	ApplyIndexWrite(oldData []byte, oldPresent bool, newData []byte, deleted bool) bool
}

type txnState uint8

const (
	stateActive txnState = iota
	statePrepared
	stateCommitted
	stateAborted
)

type writeKind uint8

const (
	writeUpdate writeKind = iota
	writeInsert
	writeDelete
)

// smallSetThreshold is the read/write-set size up to which membership lookups
// use a linear scan over the entry slice instead of a map. OLTP transactions
// rarely exceed it, so the hot path never touches (or allocates) the maps;
// larger transactions spill to a map that is retained and cleared across
// pooled reuses.
const smallSetThreshold = 16

type readEntry struct {
	rec *kv.Record
	tid uint64
}

type writeEntry struct {
	rec   *kv.Record
	key   []byte // arena-backed; valid until the txn is released
	data  []byte
	kind  writeKind
	guard ScanGuard
}

type scanEntry struct {
	guard   ScanGuard
	version uint64
}

// Txn is a Silo-style optimistic transaction against a single Domain. It
// buffers writes locally and validates reads at commit. Methods are safe for
// use by multiple goroutines of the same root transaction (sub-transactions on
// different reactors hosted in the same container), serialized by an internal
// mutex.
//
// Transactions are pooled: Domain.Begin draws from a free list and Release
// returns a finished transaction to it, so the entry slices, key arena and
// spill maps are reused across transactions instead of reallocated.
type Txn struct {
	domain *Domain

	mu     sync.Mutex
	state  txnState
	reads  []readEntry
	writes []writeEntry
	scans  []scanEntry
	maxTID uint64
	tid    uint64 // commit TID, set by CommitPrepared

	// readIdx/writeIdx are spill indices, populated only once the respective
	// set exceeds smallSetThreshold (readSpilled/writeSpilled). The maps are
	// kept (and cleared) across pooled reuses so their buckets amortize.
	readIdx     map[*kv.Record]int
	writeIdx    map[*kv.Record]int
	readSpilled bool
	writeSpill  bool

	// keyArena backs the key bytes of all buffered writes. Growing the arena
	// may reallocate its backing array, but previously handed-out sub-slices
	// keep referencing the old backing, so they stay valid.
	keyArena []byte

	// prepare bookkeeping, reused across pooled transactions
	lockedRecs   []*kv.Record
	lockedGuards []ScanGuard
}

// recPtr orders records by identity for deadlock-free lock ordering.
func recPtr(r *kv.Record) uintptr { return uintptr(unsafe.Pointer(r)) }

// guardPtr orders guards by the identity of their underlying object.
func guardPtr(g ScanGuard) uintptr {
	return uintptr((*[2]unsafe.Pointer)(unsafe.Pointer(&g))[1])
}

// Domain returns the concurrency control domain this transaction runs in.
func (t *Txn) Domain() *Domain { return t.domain }

// Active reports whether the transaction can still issue operations.
func (t *Txn) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state == stateActive
}

// ReadSetSize and WriteSetSize expose footprint counters for instrumentation.
func (t *Txn) ReadSetSize() int  { t.mu.Lock(); defer t.mu.Unlock(); return len(t.reads) }
func (t *Txn) WriteSetSize() int { t.mu.Lock(); defer t.mu.Unlock(); return len(t.writes) }

// lookupWrite returns the index of rec in the write set, or -1. The caller
// holds t.mu.
func (t *Txn) lookupWrite(rec *kv.Record) int {
	if t.writeSpill {
		if i, ok := t.writeIdx[rec]; ok {
			return i
		}
		return -1
	}
	for i := range t.writes {
		if t.writes[i].rec == rec {
			return i
		}
	}
	return -1
}

// indexWrite records that rec now lives at position i of the write set,
// spilling to the map index once the set outgrows the linear fast path. The
// caller holds t.mu.
func (t *Txn) indexWrite(rec *kv.Record, i int) {
	if !t.writeSpill {
		if len(t.writes) <= smallSetThreshold {
			return
		}
		if t.writeIdx == nil {
			t.writeIdx = make(map[*kv.Record]int, 2*smallSetThreshold)
		}
		for j := range t.writes {
			t.writeIdx[t.writes[j].rec] = j
		}
		t.writeSpill = true
		return
	}
	t.writeIdx[rec] = i
}

// lookupRead reports whether rec is already in the read set. The caller holds
// t.mu.
func (t *Txn) lookupRead(rec *kv.Record) bool {
	if t.readSpilled {
		_, ok := t.readIdx[rec]
		return ok
	}
	for i := range t.reads {
		if t.reads[i].rec == rec {
			return true
		}
	}
	return false
}

// indexRead mirrors indexWrite for the read set. The caller holds t.mu.
func (t *Txn) indexRead(rec *kv.Record, i int) {
	if !t.readSpilled {
		if len(t.reads) <= smallSetThreshold {
			return
		}
		if t.readIdx == nil {
			t.readIdx = make(map[*kv.Record]int, 4*smallSetThreshold)
		}
		for j := range t.reads {
			t.readIdx[t.reads[j].rec] = j
		}
		t.readSpilled = true
		return
	}
	t.readIdx[rec] = i
}

// internKey copies key into the transaction's arena and returns a stable
// slice. Arena growth leaves previously returned slices pointing at the old
// backing array, so they remain valid until the transaction is released.
func (t *Txn) internKey(key []byte) []byte {
	start := len(t.keyArena)
	t.keyArena = append(t.keyArena, key...)
	return t.keyArena[start:len(t.keyArena):len(t.keyArena)]
}

// Read returns the current value of rec as seen by this transaction: its own
// pending write if any, otherwise a stable read of the committed version,
// which is added to the read set for commit-time validation.
func (t *Txn) Read(rec *kv.Record) (data []byte, present bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return nil, false, ErrTxnClosed
	}
	if i := t.lookupWrite(rec); i >= 0 {
		w := &t.writes[i]
		if w.kind == writeDelete {
			return nil, false, nil
		}
		return w.data, true, nil
	}
	data, tid, present := rec.StableRead()
	t.observe(rec, tid)
	return data, present, nil
}

// observe appends rec to the read set (first observation wins) and tracks the
// largest TID seen. The caller holds t.mu.
func (t *Txn) observe(rec *kv.Record, tid uint64) {
	if !t.lookupRead(rec) {
		t.reads = append(t.reads, readEntry{rec: rec, tid: tid})
		t.indexRead(rec, len(t.reads)-1)
	}
	if tid > t.maxTID {
		t.maxTID = tid
	}
}

// Write buffers an update of rec to data. key identifies the row
// (reactor/table/primary-key) for the WAL; it is copied into the transaction's
// arena, so the caller may reuse its buffer. guard may be nil for updates of
// tables without secondary indexes, since those do not change table structure;
// for indexed tables the caller must pass the table so the install phase can
// maintain its index entries under the structural latch.
func (t *Txn) Write(rec *kv.Record, key []byte, data []byte, guard ScanGuard) error {
	return t.bufferWrite(rec, key, data, writeUpdate, guard)
}

// Insert buffers the insertion of a new row. rec must be the record obtained
// from Table.GetOrInsert for the row's key. If the record is already present
// (committed by another transaction), ErrDuplicateKey is returned. The
// record's current (absent) version joins the read set so that a concurrent
// insert of the same key is detected at validation.
func (t *Txn) Insert(rec *kv.Record, key []byte, data []byte, guard ScanGuard) error {
	t.mu.Lock()
	if t.state != stateActive {
		t.mu.Unlock()
		return ErrTxnClosed
	}
	if i := t.lookupWrite(rec); i >= 0 {
		// Re-insert of a key this transaction previously deleted becomes an
		// update; re-insert of a key it already inserted is a duplicate.
		if t.writes[i].kind == writeDelete {
			t.writes[i].kind = writeUpdate
			t.writes[i].data = data
			t.mu.Unlock()
			return nil
		}
		t.mu.Unlock()
		return fmt.Errorf("%w: %x", ErrDuplicateKey, key)
	}
	_, tid, present := rec.StableRead()
	if present {
		t.mu.Unlock()
		return fmt.Errorf("%w: %x", ErrDuplicateKey, key)
	}
	t.observe(rec, tid)
	t.mu.Unlock()
	return t.bufferWrite(rec, key, data, writeInsert, guard)
}

// Delete buffers the logical deletion of rec.
func (t *Txn) Delete(rec *kv.Record, key []byte, guard ScanGuard) error {
	return t.bufferWrite(rec, key, nil, writeDelete, guard)
}

func (t *Txn) bufferWrite(rec *kv.Record, key []byte, data []byte, kind writeKind, guard ScanGuard) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return ErrTxnClosed
	}
	if i := t.lookupWrite(rec); i >= 0 {
		prev := &t.writes[i]
		switch {
		case kind == writeDelete:
			// Insert followed by delete within the same transaction nets out
			// to "leave absent", but the delete intent is kept so the key's
			// version still advances and concurrent inserts of the same key
			// are serialized.
			prev.kind = writeDelete
			prev.data = nil
			if prev.guard == nil {
				prev.guard = guard
			}
		case prev.kind == writeDelete:
			prev.kind = writeUpdate
			prev.data = data
		default:
			prev.data = data
		}
		return nil
	}
	t.writes = append(t.writes, writeEntry{rec: rec, key: t.internKey(key), data: data, kind: kind, guard: guard})
	t.indexWrite(rec, len(t.writes)-1)
	return nil
}

// RegisterScan records the structural version of a scanned table so that
// commit-time validation can detect phantoms (inserts or deletes committed by
// other transactions after the scan). The scan set stays small (one entry per
// scanned table), so dedup is a linear probe.
func (t *Txn) RegisterScan(guard ScanGuard) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return ErrTxnClosed
	}
	for i := range t.scans {
		if t.scans[i].guard == guard {
			return nil
		}
	}
	t.scans = append(t.scans, scanEntry{guard: guard, version: guard.Version()})
	return nil
}

// EachPendingWrite calls fn for every buffered insert, update or delete that
// targets a table using guard. The query layer uses it to make a
// transaction's own structural changes visible to its later scans. The key
// slice is arena-backed: valid only until the transaction is released.
func (t *Txn) EachPendingWrite(guard ScanGuard, fn func(key []byte, data []byte, deleted bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.writes {
		w := &t.writes[i]
		if w.guard == guard {
			fn(w.key, w.data, w.kind == writeDelete)
		}
	}
}

// PendingWriteFor returns the buffered data for the record, if any.
func (t *Txn) PendingWriteFor(rec *kv.Record) (data []byte, deleted, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := t.lookupWrite(rec)
	if i < 0 {
		return nil, false, false
	}
	w := &t.writes[i]
	return w.data, w.kind == writeDelete, true
}

// TID returns the transaction's TID, or zero if none has been assigned yet.
// Assignment happens in AssignTID (prepared transactions, for the WAL) or in
// CommitPrepared, so a non-zero TID does not imply the transaction
// committed: a prepared transaction whose TID was pre-assigned can still
// abort.
func (t *Txn) TID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tid
}

// ReadOnly reports whether the transaction buffered no writes.
func (t *Txn) ReadOnly() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.writes) == 0
}

// --- Commit protocol ---------------------------------------------------------

// holdsGuardLocked reports whether g is among the structural guards this
// transaction locked during Prepare. The caller holds t.mu.
func (t *Txn) holdsGuardLocked(g ScanGuard) bool {
	for _, h := range t.lockedGuards {
		if h == g {
			return true
		}
	}
	return false
}

// Prepare runs the first phase of the commit protocol: it locks the write set
// in a deterministic order, then validates the read set and scan set. On
// success the transaction is left in the prepared state holding its locks; the
// caller must follow up with CommitPrepared or AbortPrepared. On validation
// failure all locks are released, the transaction aborts, and ErrConflict is
// returned.
func (t *Txn) Prepare() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return ErrTxnClosed
	}

	// Phase 1: lock the write set, ordered by record identity so that
	// concurrent transactions cannot deadlock. The ordering buffer is the
	// lockedRecs slice itself, reused across pooled transactions.
	t.lockedRecs = t.lockedRecs[:0]
	for i := range t.writes {
		t.lockedRecs = append(t.lockedRecs, t.writes[i].rec)
	}
	slices.SortFunc(t.lockedRecs, func(a, b *kv.Record) int {
		pa, pb := recPtr(a), recPtr(b)
		switch {
		case pa < pb:
			return -1
		case pa > pb:
			return 1
		default:
			return 0
		}
	})
	for _, rec := range t.lockedRecs {
		rec.Lock()
		if tid := rec.TID(); tid > t.maxTID {
			t.maxTID = tid
		}
	}

	// Lock the structural guards of tables this transaction inserts into,
	// deletes from, or updates with index maintenance (any guarded write), so
	// concurrent scan validation cannot race with our bump or observe a
	// half-applied index entry move. The guard list is tiny (one per touched
	// table), so dedup is a linear probe into the reused lockedGuards slice.
	t.lockedGuards = t.lockedGuards[:0]
	for i := range t.writes {
		g := t.writes[i].guard
		if g == nil || t.holdsGuardLocked(g) {
			continue
		}
		t.lockedGuards = append(t.lockedGuards, g)
	}
	slices.SortFunc(t.lockedGuards, func(a, b ScanGuard) int {
		pa, pb := guardPtr(a), guardPtr(b)
		switch {
		case pa < pb:
			return -1
		case pa > pb:
			return 1
		default:
			return 0
		}
	})
	for _, g := range t.lockedGuards {
		g.LockStructure()
	}

	// Phase 2: validate reads and scans.
	for i := range t.reads {
		r := &t.reads[i]
		lockedByMe := t.lookupWrite(r.rec) >= 0
		if !r.rec.ValidateVersion(r.tid, lockedByMe) {
			t.abortPrepareLocked()
			return ErrConflict
		}
	}
	for i := range t.scans {
		s := &t.scans[i]
		if t.holdsGuardLocked(s.guard) {
			// We hold this guard ourselves (we also modify the table's
			// structure); only the version needs to be rechecked.
			if s.guard.Version() != s.version {
				t.abortPrepareLocked()
				return ErrConflict
			}
			continue
		}
		// Another preparing transaction holding the guard is about to change
		// the table's structure; treat it as a conflict rather than blocking,
		// so preparing transactions can never deadlock on guards.
		if !s.guard.TryLockStructure() {
			t.abortPrepareLocked()
			return ErrConflict
		}
		version := s.guard.Version()
		s.guard.UnlockStructure()
		if version != s.version {
			t.abortPrepareLocked()
			return ErrConflict
		}
	}
	t.state = statePrepared
	return nil
}

// abortPrepareLocked releases locks and marks the transaction aborted after a
// validation failure. The caller holds t.mu.
func (t *Txn) abortPrepareLocked() {
	t.releaseLocksLocked()
	t.state = stateAborted
	t.domain.aborted.Add(1)
}

// AssignTID assigns (or returns the already-assigned) commit TID of a
// prepared transaction before the write phase installs its writes. The
// durability layer uses it to append the commit record to the WAL *ahead of*
// in-memory visibility: because no other transaction can observe the writes
// until CommitPrepared installs them, any dependent commit's append — and
// therefore its fsync, which covers everything appended before it — is
// ordered after this transaction's record, so recovery can never replay a
// dependent commit without its antecedent.
func (t *Txn) AssignTID() (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return 0, ErrTxnClosed
	}
	if t.tid == 0 {
		t.tid = t.domain.nextTID(t.maxTID)
	}
	return t.tid, nil
}

// PreparedWrites calls fn for every buffered write of a prepared transaction
// — the write set CommitPrepared is about to install — in buffer order. The
// data slice must be treated as immutable; the key slice is arena-backed and
// valid only until the transaction is released. For a transaction that is not
// prepared, fn is never called.
func (t *Txn) PreparedWrites(fn func(key []byte, data []byte, deleted bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return
	}
	for i := range t.writes {
		w := &t.writes[i]
		fn(w.key, w.data, w.kind == writeDelete)
	}
}

// CommitPrepared runs the write phase after a successful Prepare: it installs
// buffered writes under a fresh TID (or the one AssignTID already chose),
// bumps structural versions, and releases all locks. It returns the TID
// assigned to the transaction.
func (t *Txn) CommitPrepared() (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return 0, ErrTxnClosed
	}
	tid := t.tid
	if tid == 0 {
		tid = t.domain.nextTID(t.maxTID)
		t.tid = tid
	}
	for i := range t.writes {
		w := &t.writes[i]
		// Capture the pre-install record state while the latch is held, so
		// index maintenance can retract exactly the entries the old row
		// contributed.
		maintainer, maintain := w.guard.(IndexMaintainer)
		var oldData []byte
		var oldPresent bool
		if maintain {
			oldData = w.rec.Data()
			oldPresent = !w.rec.Absent()
		}
		switch w.kind {
		case writeDelete:
			w.rec.UnlockWithTID(tid, true)
		default:
			w.rec.SetData(w.data)
			w.rec.UnlockWithTID(tid, false)
		}
		structural := w.kind != writeUpdate
		if maintain && maintainer.ApplyIndexWrite(oldData, oldPresent, w.data, w.kind == writeDelete) {
			structural = true
		}
		if w.guard != nil && structural {
			w.guard.BumpVersion()
		}
	}
	t.lockedRecs = t.lockedRecs[:0]
	for _, g := range t.lockedGuards {
		g.UnlockStructure()
	}
	t.lockedGuards = t.lockedGuards[:0]
	t.state = stateCommitted
	t.domain.committed.Add(1)
	return tid, nil
}

// AbortPrepared releases the locks taken by Prepare without installing any
// write, leaving all records unchanged.
func (t *Txn) AbortPrepared() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return ErrTxnClosed
	}
	t.releaseLocksLocked()
	t.state = stateAborted
	t.domain.aborted.Add(1)
	return nil
}

// Commit runs the full single-domain commit protocol. It returns the assigned
// TID on success and ErrConflict if validation failed.
func (t *Txn) Commit() (uint64, error) {
	if err := t.Prepare(); err != nil {
		return 0, err
	}
	return t.CommitPrepared()
}

// Abort abandons an active transaction without touching any record.
func (t *Txn) Abort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return
	}
	t.state = stateAborted
	t.domain.aborted.Add(1)
}

// releaseLocksLocked releases record and guard locks taken during Prepare.
// The caller holds t.mu.
func (t *Txn) releaseLocksLocked() {
	for _, rec := range t.lockedRecs {
		rec.Unlock()
	}
	t.lockedRecs = t.lockedRecs[:0]
	for _, g := range t.lockedGuards {
		g.UnlockStructure()
	}
	t.lockedGuards = t.lockedGuards[:0]
}

// Release returns a finished (committed or aborted) transaction to the
// domain's pool for reuse. An active transaction is aborted first. A prepared
// transaction — which still holds record and guard locks — is never recycled;
// the call is a no-op so a caller bug cannot corrupt lock state.
//
// After Release the transaction must not be used: its buffers (including all
// key slices previously handed to EachPendingWrite/PreparedWrites callbacks)
// are reused by the next transaction the domain begins.
func (t *Txn) Release() {
	t.mu.Lock()
	if t.state == stateActive {
		t.state = stateAborted
		t.domain.aborted.Add(1)
	}
	if t.state == statePrepared {
		t.mu.Unlock()
		return
	}
	d := t.domain
	t.resetLocked()
	t.mu.Unlock()
	d.pool.Put(t)
}

// resetLocked clears the transaction for reuse, keeping slice and map
// capacity. Entry slices are element-cleared first so pooled transactions do
// not pin records, guards or payloads of previous transactions. The caller
// holds t.mu.
func (t *Txn) resetLocked() {
	clear(t.reads)
	t.reads = t.reads[:0]
	clear(t.writes)
	t.writes = t.writes[:0]
	clear(t.scans)
	t.scans = t.scans[:0]
	clear(t.lockedRecs[:cap(t.lockedRecs)])
	t.lockedRecs = t.lockedRecs[:0]
	clear(t.lockedGuards[:cap(t.lockedGuards)])
	t.lockedGuards = t.lockedGuards[:0]
	if t.readSpilled {
		clear(t.readIdx)
		t.readSpilled = false
	}
	if t.writeSpill {
		clear(t.writeIdx)
		t.writeSpill = false
	}
	t.keyArena = t.keyArena[:0]
	t.maxTID = 0
	t.tid = 0
	t.domain = nil
	t.state = stateActive
}

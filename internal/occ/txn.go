package occ

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"reactdb/internal/kv"
)

// Errors returned by the commit protocol and write primitives.
var (
	// ErrConflict indicates validation failure: a record or scanned table
	// changed between the transaction's read and its commit attempt.
	ErrConflict = errors.New("occ: serialization conflict")
	// ErrDuplicateKey indicates an insert of a primary key that is already
	// present.
	ErrDuplicateKey = errors.New("occ: duplicate primary key")
	// ErrTxnClosed indicates use of a transaction that already committed or
	// aborted.
	ErrTxnClosed = errors.New("occ: transaction is no longer active")
)

// ScanGuard is the phantom-protection hook implemented by rel.Table: a
// structural version that committed inserts and deletes bump, plus a latch the
// commit protocol holds while bumping so concurrent validators cannot miss the
// change.
type ScanGuard interface {
	Version() uint64
	BumpVersion()
	LockStructure()
	TryLockStructure() bool
	UnlockStructure()
}

// IndexMaintainer extends ScanGuard for tables that keep secondary indexes
// (rel.Table). The commit install phase calls ApplyIndexWrite for every write
// whose guard implements it, passing the record state captured before the
// install, so index entries always mirror the committed row contents. The
// return value reports whether any index entry changed; the caller treats a
// true result as a structural change and bumps the guard's version, because
// a row moving between index ranges is a phantom for concurrent index scans
// even when its primary key is unchanged.
type IndexMaintainer interface {
	ScanGuard
	ApplyIndexWrite(oldData []byte, oldPresent bool, newData []byte, deleted bool) bool
}

type txnState uint8

const (
	stateActive txnState = iota
	statePrepared
	stateCommitted
	stateAborted
)

type writeKind uint8

const (
	writeUpdate writeKind = iota
	writeInsert
	writeDelete
)

type readEntry struct {
	rec *kv.Record
	tid uint64
}

type writeEntry struct {
	rec   *kv.Record
	key   string
	data  []byte
	kind  writeKind
	guard ScanGuard
}

type scanEntry struct {
	guard   ScanGuard
	version uint64
}

// Txn is a Silo-style optimistic transaction against a single Domain. It
// buffers writes locally and validates reads at commit. Methods are safe for
// use by multiple goroutines of the same root transaction (sub-transactions on
// different reactors hosted in the same container), serialized by an internal
// mutex.
type Txn struct {
	domain *Domain

	mu       sync.Mutex
	state    txnState
	reads    []readEntry
	readIdx  map[*kv.Record]int
	writes   []writeEntry
	writeIdx map[*kv.Record]int
	scans    []scanEntry
	scanIdx  map[ScanGuard]int
	maxTID   uint64
	tid      uint64 // commit TID, set by CommitPrepared

	// prepare bookkeeping
	lockedRecs   []*kv.Record
	lockedGuards []ScanGuard
}

// Domain returns the concurrency control domain this transaction runs in.
func (t *Txn) Domain() *Domain { return t.domain }

// Active reports whether the transaction can still issue operations.
func (t *Txn) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state == stateActive
}

// ReadSetSize and WriteSetSize expose footprint counters for instrumentation.
func (t *Txn) ReadSetSize() int  { t.mu.Lock(); defer t.mu.Unlock(); return len(t.reads) }
func (t *Txn) WriteSetSize() int { t.mu.Lock(); defer t.mu.Unlock(); return len(t.writes) }

// Read returns the current value of rec as seen by this transaction: its own
// pending write if any, otherwise a stable read of the committed version,
// which is added to the read set for commit-time validation.
func (t *Txn) Read(rec *kv.Record) (data []byte, present bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return nil, false, ErrTxnClosed
	}
	if i, ok := t.writeIdx[rec]; ok {
		w := t.writes[i]
		if w.kind == writeDelete {
			return nil, false, nil
		}
		return w.data, true, nil
	}
	data, tid, present := rec.StableRead()
	t.observe(rec, tid)
	return data, present, nil
}

// observe appends rec to the read set (first observation wins) and tracks the
// largest TID seen. The caller holds t.mu.
func (t *Txn) observe(rec *kv.Record, tid uint64) {
	if t.readIdx == nil {
		t.readIdx = make(map[*kv.Record]int)
	}
	if _, ok := t.readIdx[rec]; !ok {
		t.readIdx[rec] = len(t.reads)
		t.reads = append(t.reads, readEntry{rec: rec, tid: tid})
	}
	if tid > t.maxTID {
		t.maxTID = tid
	}
}

// Write buffers an update of rec to data. key is a diagnostic identifier
// (reactor/table/primary-key). guard may be nil for updates of tables without
// secondary indexes, since those do not change table structure; for indexed
// tables the caller must pass the table so the install phase can maintain its
// index entries under the structural latch.
func (t *Txn) Write(rec *kv.Record, key string, data []byte, guard ScanGuard) error {
	return t.bufferWrite(rec, key, data, writeUpdate, guard)
}

// Insert buffers the insertion of a new row. rec must be the record obtained
// from Table.GetOrInsert for the row's key. If the record is already present
// (committed by another transaction), ErrDuplicateKey is returned. The
// record's current (absent) version joins the read set so that a concurrent
// insert of the same key is detected at validation.
func (t *Txn) Insert(rec *kv.Record, key string, data []byte, guard ScanGuard) error {
	t.mu.Lock()
	if t.state != stateActive {
		t.mu.Unlock()
		return ErrTxnClosed
	}
	if i, ok := t.writeIdx[rec]; ok {
		// Re-insert of a key this transaction previously deleted becomes an
		// update; re-insert of a key it already inserted is a duplicate.
		if t.writes[i].kind == writeDelete {
			t.writes[i].kind = writeUpdate
			t.writes[i].data = data
			t.mu.Unlock()
			return nil
		}
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateKey, key)
	}
	_, tid, present := rec.StableRead()
	if present {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateKey, key)
	}
	t.observe(rec, tid)
	t.mu.Unlock()
	return t.bufferWrite(rec, key, data, writeInsert, guard)
}

// Delete buffers the logical deletion of rec.
func (t *Txn) Delete(rec *kv.Record, key string, guard ScanGuard) error {
	return t.bufferWrite(rec, key, nil, writeDelete, guard)
}

func (t *Txn) bufferWrite(rec *kv.Record, key string, data []byte, kind writeKind, guard ScanGuard) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return ErrTxnClosed
	}
	if t.writeIdx == nil {
		t.writeIdx = make(map[*kv.Record]int)
	}
	if i, ok := t.writeIdx[rec]; ok {
		prev := &t.writes[i]
		switch {
		case kind == writeDelete:
			if prev.kind == writeInsert {
				// Insert followed by delete within the same transaction: the
				// net effect is "leave absent", but we keep the delete intent
				// so the key's version still advances and concurrent inserts
				// of the same key are serialized.
				prev.kind = writeDelete
				prev.data = nil
			} else {
				prev.kind = writeDelete
				prev.data = nil
			}
			if prev.guard == nil {
				prev.guard = guard
			}
		case prev.kind == writeDelete:
			prev.kind = writeUpdate
			prev.data = data
		default:
			prev.data = data
		}
		return nil
	}
	t.writeIdx[rec] = len(t.writes)
	t.writes = append(t.writes, writeEntry{rec: rec, key: key, data: data, kind: kind, guard: guard})
	return nil
}

// RegisterScan records the structural version of a scanned table so that
// commit-time validation can detect phantoms (inserts or deletes committed by
// other transactions after the scan).
func (t *Txn) RegisterScan(guard ScanGuard) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return ErrTxnClosed
	}
	if t.scanIdx == nil {
		t.scanIdx = make(map[ScanGuard]int)
	}
	if _, ok := t.scanIdx[guard]; ok {
		return nil
	}
	t.scanIdx[guard] = len(t.scans)
	t.scans = append(t.scans, scanEntry{guard: guard, version: guard.Version()})
	return nil
}

// EachPendingWrite calls fn for every buffered insert, update or delete that
// targets a table using guard. The query layer uses it to make a
// transaction's own structural changes visible to its later scans.
func (t *Txn) EachPendingWrite(guard ScanGuard, fn func(key string, data []byte, deleted bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range t.writes {
		if w.guard == guard {
			fn(w.key, w.data, w.kind == writeDelete)
		}
	}
}

// PendingWriteFor returns the buffered data for the record, if any.
func (t *Txn) PendingWriteFor(rec *kv.Record) (data []byte, deleted, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, found := t.writeIdx[rec]
	if !found {
		return nil, false, false
	}
	w := t.writes[i]
	return w.data, w.kind == writeDelete, true
}

// TID returns the transaction's TID, or zero if none has been assigned yet.
// Assignment happens in AssignTID (prepared transactions, for the WAL) or in
// CommitPrepared, so a non-zero TID does not imply the transaction
// committed: a prepared transaction whose TID was pre-assigned can still
// abort.
func (t *Txn) TID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tid
}

// ReadOnly reports whether the transaction buffered no writes.
func (t *Txn) ReadOnly() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.writes) == 0
}

// --- Commit protocol ---------------------------------------------------------

// Prepare runs the first phase of the commit protocol: it locks the write set
// in a deterministic order, then validates the read set and scan set. On
// success the transaction is left in the prepared state holding its locks; the
// caller must follow up with CommitPrepared or AbortPrepared. On validation
// failure all locks are released, the transaction aborts, and ErrConflict is
// returned.
func (t *Txn) Prepare() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return ErrTxnClosed
	}

	// Phase 1: lock the write set, ordered by record identity so that
	// concurrent transactions cannot deadlock.
	ordered := make([]*kv.Record, 0, len(t.writes))
	for _, w := range t.writes {
		ordered = append(ordered, w.rec)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return reflect.ValueOf(ordered[i]).Pointer() < reflect.ValueOf(ordered[j]).Pointer()
	})
	for _, rec := range ordered {
		rec.Lock()
		t.lockedRecs = append(t.lockedRecs, rec)
		if tid := rec.TID(); tid > t.maxTID {
			t.maxTID = tid
		}
	}

	// Lock the structural guards of tables this transaction inserts into,
	// deletes from, or updates with index maintenance (any guarded write), so
	// concurrent scan validation cannot race with our bump or observe a
	// half-applied index entry move.
	guardSet := make(map[ScanGuard]bool)
	for _, w := range t.writes {
		if w.guard != nil {
			guardSet[w.guard] = true
		}
	}
	guards := make([]ScanGuard, 0, len(guardSet))
	for g := range guardSet {
		guards = append(guards, g)
	}
	sort.Slice(guards, func(i, j int) bool {
		return reflect.ValueOf(guards[i]).Pointer() < reflect.ValueOf(guards[j]).Pointer()
	})
	for _, g := range guards {
		g.LockStructure()
		t.lockedGuards = append(t.lockedGuards, g)
	}

	// Phase 2: validate reads and scans.
	for _, r := range t.reads {
		_, lockedByMe := t.writeIdx[r.rec]
		if !r.rec.ValidateVersion(r.tid, lockedByMe) {
			t.releaseLocksLocked()
			t.state = stateAborted
			t.domain.aborted.Add(1)
			return ErrConflict
		}
	}
	for _, s := range t.scans {
		if guardSet[s.guard] {
			// We hold this guard ourselves (we also modify the table's
			// structure); only the version needs to be rechecked.
			if s.guard.Version() != s.version {
				t.releaseLocksLocked()
				t.state = stateAborted
				t.domain.aborted.Add(1)
				return ErrConflict
			}
			continue
		}
		// Another preparing transaction holding the guard is about to change
		// the table's structure; treat it as a conflict rather than blocking,
		// so preparing transactions can never deadlock on guards.
		if !s.guard.TryLockStructure() {
			t.releaseLocksLocked()
			t.state = stateAborted
			t.domain.aborted.Add(1)
			return ErrConflict
		}
		version := s.guard.Version()
		s.guard.UnlockStructure()
		if version != s.version {
			t.releaseLocksLocked()
			t.state = stateAborted
			t.domain.aborted.Add(1)
			return ErrConflict
		}
	}
	t.state = statePrepared
	return nil
}

// AssignTID assigns (or returns the already-assigned) commit TID of a
// prepared transaction before the write phase installs its writes. The
// durability layer uses it to append the commit record to the WAL *ahead of*
// in-memory visibility: because no other transaction can observe the writes
// until CommitPrepared installs them, any dependent commit's append — and
// therefore its fsync, which covers everything appended before it — is
// ordered after this transaction's record, so recovery can never replay a
// dependent commit without its antecedent.
func (t *Txn) AssignTID() (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return 0, ErrTxnClosed
	}
	if t.tid == 0 {
		t.tid = t.domain.nextTID(t.maxTID)
	}
	return t.tid, nil
}

// PreparedWrites calls fn for every buffered write of a prepared transaction
// — the write set CommitPrepared is about to install — in buffer order. The
// data slice must be treated as immutable. For a transaction that is not
// prepared, fn is never called.
func (t *Txn) PreparedWrites(fn func(key string, data []byte, deleted bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return
	}
	for _, w := range t.writes {
		fn(w.key, w.data, w.kind == writeDelete)
	}
}

// CommitPrepared runs the write phase after a successful Prepare: it installs
// buffered writes under a fresh TID (or the one AssignTID already chose),
// bumps structural versions, and releases all locks. It returns the TID
// assigned to the transaction.
func (t *Txn) CommitPrepared() (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return 0, ErrTxnClosed
	}
	tid := t.tid
	if tid == 0 {
		tid = t.domain.nextTID(t.maxTID)
		t.tid = tid
	}
	for _, w := range t.writes {
		// Capture the pre-install record state while the latch is held, so
		// index maintenance can retract exactly the entries the old row
		// contributed.
		maintainer, maintain := w.guard.(IndexMaintainer)
		var oldData []byte
		var oldPresent bool
		if maintain {
			oldData = w.rec.Data()
			oldPresent = !w.rec.Absent()
		}
		switch w.kind {
		case writeDelete:
			w.rec.UnlockWithTID(tid, true)
		default:
			w.rec.SetData(w.data)
			w.rec.UnlockWithTID(tid, false)
		}
		structural := w.kind != writeUpdate
		if maintain && maintainer.ApplyIndexWrite(oldData, oldPresent, w.data, w.kind == writeDelete) {
			structural = true
		}
		if w.guard != nil && structural {
			w.guard.BumpVersion()
		}
	}
	t.lockedRecs = nil
	for _, g := range t.lockedGuards {
		g.UnlockStructure()
	}
	t.lockedGuards = nil
	t.state = stateCommitted
	t.domain.committed.Add(1)
	return tid, nil
}

// AbortPrepared releases the locks taken by Prepare without installing any
// write, leaving all records unchanged.
func (t *Txn) AbortPrepared() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != statePrepared {
		return ErrTxnClosed
	}
	t.releaseLocksLocked()
	t.state = stateAborted
	t.domain.aborted.Add(1)
	return nil
}

// Commit runs the full single-domain commit protocol. It returns the assigned
// TID on success and ErrConflict if validation failed.
func (t *Txn) Commit() (uint64, error) {
	if err := t.Prepare(); err != nil {
		return 0, err
	}
	return t.CommitPrepared()
}

// Abort abandons an active transaction without touching any record.
func (t *Txn) Abort() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != stateActive {
		return
	}
	t.state = stateAborted
	t.domain.aborted.Add(1)
}

// releaseLocksLocked releases record and guard locks taken during Prepare.
// The caller holds t.mu.
func (t *Txn) releaseLocksLocked() {
	for _, rec := range t.lockedRecs {
		rec.Unlock()
	}
	t.lockedRecs = nil
	for _, g := range t.lockedGuards {
		g.UnlockStructure()
	}
	t.lockedGuards = nil
}

package occ

import (
	"errors"
	"testing"

	"reactdb/internal/kv"
)

func TestCommitPreparedBatchCommitsAllPrepared(t *testing.T) {
	d := NewDomain("batch")
	const n = 5
	recs := make([]*kv.Record, n)
	txns := make([]*Txn, n)
	for i := 0; i < n; i++ {
		recs[i] = kv.NewCommittedRecord(encInt(int64(i)), 0)
		txns[i] = d.Begin()
		if _, _, err := txns[i].Read(recs[i]); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if err := txns[i].Write(recs[i], []byte("k"), encInt(int64(100+i)), nil); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := txns[i].Prepare(); err != nil {
			t.Fatalf("Prepare: %v", err)
		}
	}
	for i, err := range d.CommitPreparedBatch(txns) {
		if err != nil {
			t.Fatalf("batch slot %d: %v", i, err)
		}
	}
	for i, rec := range recs {
		data, _, present := rec.StableRead()
		if !present || decInt(data) != int64(100+i) {
			t.Fatalf("record %d = %d (present=%v), want %d", i, decInt(data), present, 100+i)
		}
	}
	committed, _ := d.Stats()
	if committed != n {
		t.Fatalf("committed = %d, want %d", committed, n)
	}
	batches, txnsCommitted, largest := d.GroupCommitStats()
	if batches != 1 || txnsCommitted != n || largest != n {
		t.Fatalf("group stats = (%d batches, %d txns, %d largest), want (1, %d, %d)",
			batches, txnsCommitted, largest, n, n)
	}
}

func TestCommitPreparedBatchSkipsUnpreparedSlots(t *testing.T) {
	d := NewDomain("batch-mixed")
	recA := kv.NewCommittedRecord(encInt(1), 0)
	recB := kv.NewCommittedRecord(encInt(2), 0)

	prepared := d.Begin()
	if err := prepared.Write(recA, []byte("a"), encInt(10), nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := prepared.Prepare(); err != nil {
		t.Fatalf("Prepare: %v", err)
	}

	unprepared := d.Begin()
	if err := unprepared.Write(recB, []byte("b"), encInt(20), nil); err != nil {
		t.Fatalf("Write: %v", err)
	}

	errs := d.CommitPreparedBatch([]*Txn{prepared, unprepared})
	if errs[0] != nil {
		t.Fatalf("prepared slot: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrTxnClosed) {
		t.Fatalf("unprepared slot error = %v, want ErrTxnClosed", errs[1])
	}
	if data, _, _ := recA.StableRead(); decInt(data) != 10 {
		t.Fatalf("prepared write not installed: %d", decInt(data))
	}
	if data, _, _ := recB.StableRead(); decInt(data) != 2 {
		t.Fatalf("unprepared write must not install: %d", decInt(data))
	}
	_, txns, largest := d.GroupCommitStats()
	if txns != 1 || largest != 1 {
		t.Fatalf("group stats = (%d txns, %d largest), want (1, 1)", txns, largest)
	}
}

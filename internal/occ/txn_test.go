package occ

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"reactdb/internal/kv"
)

// testGuard is a minimal ScanGuard for tests that don't need a full rel.Table.
type testGuard struct {
	mu      sync.Mutex
	version atomic.Uint64
}

func (g *testGuard) Version() uint64        { return g.version.Load() }
func (g *testGuard) BumpVersion()           { g.version.Add(1) }
func (g *testGuard) LockStructure()         { g.mu.Lock() }
func (g *testGuard) TryLockStructure() bool { return g.mu.TryLock() }
func (g *testGuard) UnlockStructure()       { g.mu.Unlock() }

func encInt(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func decInt(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}

func TestReadYourOwnWrites(t *testing.T) {
	d := NewDomain("test")
	rec := kv.NewCommittedRecord(encInt(1), 0)
	txn := d.Begin()
	data, present, err := txn.Read(rec)
	if err != nil || !present || decInt(data) != 1 {
		t.Fatalf("initial read wrong: %v %v %v", data, present, err)
	}
	if err := txn.Write(rec, []byte("k"), encInt(2), nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data, present, err = txn.Read(rec)
	if err != nil || !present || decInt(data) != 2 {
		t.Fatalf("read-own-write wrong: got %d", decInt(data))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	got, _, _ := rec.StableRead()
	if decInt(got) != 2 {
		t.Fatalf("committed value = %d, want 2", decInt(got))
	}
}

func TestCommitAssignsIncreasingTIDs(t *testing.T) {
	d := NewDomain("test")
	rec := kv.NewCommittedRecord(encInt(0), 0)
	var last uint64
	for i := 0; i < 10; i++ {
		txn := d.Begin()
		if _, _, err := txn.Read(rec); err != nil {
			t.Fatalf("Read: %v", err)
		}
		if err := txn.Write(rec, []byte("k"), encInt(int64(i)), nil); err != nil {
			t.Fatalf("Write: %v", err)
		}
		tid, err := txn.Commit()
		if err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
		if tid <= last {
			t.Fatalf("TIDs not increasing: %d after %d", tid, last)
		}
		if rec.TID() != tid {
			t.Fatalf("record TID %d != assigned %d", rec.TID(), tid)
		}
		last = tid
	}
	committed, aborted := d.Stats()
	if committed != 10 || aborted != 0 {
		t.Fatalf("stats = (%d, %d), want (10, 0)", committed, aborted)
	}
}

func TestLostUpdatePrevented(t *testing.T) {
	d := NewDomain("test")
	rec := kv.NewCommittedRecord(encInt(100), 0)

	t1 := d.Begin()
	t2 := d.Begin()
	v1, _, _ := t1.Read(rec)
	v2, _, _ := t2.Read(rec)
	if err := t1.Write(rec, []byte("k"), encInt(decInt(v1)+1), nil); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(rec, []byte("k"), encInt(decInt(v2)+1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Commit(); err != nil {
		t.Fatalf("first committer should succeed: %v", err)
	}
	if _, err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer should hit ErrConflict, got %v", err)
	}
	got, _, _ := rec.StableRead()
	if decInt(got) != 101 {
		t.Fatalf("value = %d, want 101 (no lost update)", decInt(got))
	}
	_, aborted := d.Stats()
	if aborted != 1 {
		t.Fatalf("aborted = %d, want 1", aborted)
	}
}

func TestWriteSkewPrevented(t *testing.T) {
	// Classic write skew: two records that must sum >= 0; each transaction
	// reads both and decrements one. Serializable execution allows only one.
	d := NewDomain("test")
	a := kv.NewCommittedRecord(encInt(50), 0)
	b := kv.NewCommittedRecord(encInt(50), 0)

	t1 := d.Begin()
	t2 := d.Begin()
	av1, _, _ := t1.Read(a)
	bv1, _, _ := t1.Read(b)
	av2, _, _ := t2.Read(a)
	bv2, _, _ := t2.Read(b)
	if decInt(av1)+decInt(bv1) < 100 || decInt(av2)+decInt(bv2) < 100 {
		t.Fatalf("setup wrong")
	}
	// t1 withdraws 100 from a, t2 withdraws 100 from b.
	if err := t1.Write(a, []byte("a"), encInt(decInt(av1)-100), nil); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(b, []byte("b"), encInt(decInt(bv2)-100), nil); err != nil {
		t.Fatal(err)
	}
	_, err1 := t1.Commit()
	_, err2 := t2.Commit()
	if err1 == nil && err2 == nil {
		t.Fatalf("both write-skew transactions committed; execution not serializable")
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	d := NewDomain("test")
	rec := kv.NewCommittedRecord(encInt(5), 7)
	txn := d.Begin()
	if err := txn.Write(rec, []byte("k"), encInt(99), nil); err != nil {
		t.Fatal(err)
	}
	txn.Abort()
	got, tid, _ := rec.StableRead()
	if decInt(got) != 5 || tid != 7 {
		t.Fatalf("abort must leave record untouched, got (%d, %d)", decInt(got), tid)
	}
	if err := txn.Write(rec, []byte("k"), encInt(1), nil); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("writes after abort should fail with ErrTxnClosed, got %v", err)
	}
	if _, _, err := txn.Read(rec); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("reads after abort should fail with ErrTxnClosed, got %v", err)
	}
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnClosed) {
		t.Fatalf("commit after abort should fail with ErrTxnClosed, got %v", err)
	}
}

func TestInsertVisibilityAndDuplicate(t *testing.T) {
	d := NewDomain("test")
	guard := &testGuard{}
	rec := kv.NewRecord() // as returned by Table.GetOrInsert

	txn := d.Begin()
	if err := txn.Insert(rec, []byte("k"), encInt(42), guard); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// The inserting transaction sees its own insert.
	data, present, _ := txn.Read(rec)
	if !present || decInt(data) != 42 {
		t.Fatalf("inserter cannot see its own insert")
	}
	// Other transactions do not see it before commit.
	other := d.Begin()
	if _, present, _ := other.Read(rec); present {
		t.Fatalf("uncommitted insert visible to another transaction")
	}
	v0 := guard.Version()
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if guard.Version() != v0+1 {
		t.Fatalf("structural version not bumped on insert commit")
	}
	// The concurrent reader that observed "absent" must now fail validation if
	// it tries to commit a write based on that read.
	if err := other.Write(kv.NewCommittedRecord(nil, 0), []byte("other"), nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("reader of pre-insert state should conflict, got %v", err)
	}

	// Duplicate insert of the same (now committed) record fails immediately.
	dup := d.Begin()
	if err := dup.Insert(rec, []byte("k"), encInt(1), guard); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("expected ErrDuplicateKey, got %v", err)
	}
}

func TestConcurrentInsertSameKeyOnlyOneWins(t *testing.T) {
	d := NewDomain("test")
	guard := &testGuard{}
	rec := kv.NewRecord()

	t1 := d.Begin()
	t2 := d.Begin()
	if err := t1.Insert(rec, []byte("k"), encInt(1), guard); err != nil {
		t.Fatal(err)
	}
	if err := t2.Insert(rec, []byte("k"), encInt(2), guard); err != nil {
		t.Fatal(err)
	}
	_, err1 := t1.Commit()
	_, err2 := t2.Commit()
	if (err1 == nil) == (err2 == nil) {
		t.Fatalf("exactly one concurrent inserter must win: err1=%v err2=%v", err1, err2)
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	d := NewDomain("test")
	guard := &testGuard{}
	rec := kv.NewCommittedRecord(encInt(10), 3)

	txn := d.Begin()
	if _, _, err := txn.Read(rec); err != nil {
		t.Fatal(err)
	}
	if err := txn.Delete(rec, []byte("k"), guard); err != nil {
		t.Fatal(err)
	}
	if _, present, _ := txn.Read(rec); present {
		t.Fatalf("deleter should not see the deleted row")
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if !rec.Absent() {
		t.Fatalf("record should be absent after committed delete")
	}

	// Reinsert through a new transaction (the key's record is reused).
	re := d.Begin()
	if err := re.Insert(rec, []byte("k"), encInt(20), guard); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if _, err := re.Commit(); err != nil {
		t.Fatalf("reinsert commit: %v", err)
	}
	got, _, present := rec.StableRead()
	if !present || decInt(got) != 20 {
		t.Fatalf("reinserted value wrong: %v %v", got, present)
	}
}

func TestScanValidationDetectsPhantom(t *testing.T) {
	d := NewDomain("test")
	guard := &testGuard{}

	scanner := d.Begin()
	if err := scanner.RegisterScan(guard); err != nil {
		t.Fatal(err)
	}
	// A concurrent transaction inserts into the scanned table and commits.
	inserter := d.Begin()
	rec := kv.NewRecord()
	if err := inserter.Insert(rec, []byte("new"), encInt(1), guard); err != nil {
		t.Fatal(err)
	}
	if _, err := inserter.Commit(); err != nil {
		t.Fatal(err)
	}
	// The scanner writes something (to force validation) and must abort.
	out := kv.NewCommittedRecord(encInt(0), 0)
	if err := scanner.Write(out, []byte("out"), encInt(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := scanner.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("phantom should abort the scanner, got %v", err)
	}
}

func TestScanValidationAllowsOwnInserts(t *testing.T) {
	d := NewDomain("test")
	guard := &testGuard{}
	txn := d.Begin()
	if err := txn.RegisterScan(guard); err != nil {
		t.Fatal(err)
	}
	rec := kv.NewRecord()
	if err := txn.Insert(rec, []byte("k"), encInt(1), guard); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("transaction inserting into its own scanned table must commit: %v", err)
	}
}

func TestPrepareAbortPreparedReleasesLocks(t *testing.T) {
	d := NewDomain("test")
	rec := kv.NewCommittedRecord(encInt(1), 0)
	txn := d.Begin()
	if _, _, err := txn.Read(rec); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(rec, []byte("k"), encInt(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := txn.Prepare(); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if !rec.Locked() {
		t.Fatalf("prepared transaction should hold the record latch")
	}
	if err := txn.AbortPrepared(); err != nil {
		t.Fatalf("AbortPrepared: %v", err)
	}
	if rec.Locked() {
		t.Fatalf("AbortPrepared must release the record latch")
	}
	got, _, _ := rec.StableRead()
	if decInt(got) != 1 {
		t.Fatalf("AbortPrepared must not install writes")
	}
}

func TestPreparedRecordBlocksConcurrentValidation(t *testing.T) {
	d := NewDomain("test")
	rec := kv.NewCommittedRecord(encInt(1), 0)

	// Reader observes the record before the writer prepares.
	reader := d.Begin()
	if _, _, err := reader.Read(rec); err != nil {
		t.Fatal(err)
	}

	writer := d.Begin()
	if _, _, err := writer.Read(rec); err != nil {
		t.Fatal(err)
	}
	if err := writer.Write(rec, []byte("k"), encInt(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := writer.Prepare(); err != nil {
		t.Fatal(err)
	}

	// While the writer holds the record latch (e.g. during a 2PC prepare
	// window) the reader must fail validation of its earlier read.
	dep := kv.NewCommittedRecord(encInt(0), 0)
	if err := reader.Write(dep, []byte("dep"), encInt(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("validation against a prepared record should conflict, got %v", err)
	}
	if _, err := writer.CommitPrepared(); err != nil {
		t.Fatal(err)
	}
	got, _, _ := rec.StableRead()
	if decInt(got) != 2 {
		t.Fatalf("writer's update lost: %d", decInt(got))
	}
}

func TestReadOnlyTransactionCommitsWithoutTIDAdvance(t *testing.T) {
	d := NewDomain("test")
	rec := kv.NewCommittedRecord(encInt(1), 0)
	txn := d.Begin()
	if _, _, err := txn.Read(rec); err != nil {
		t.Fatal(err)
	}
	if !txn.ReadOnly() {
		t.Fatalf("transaction with no writes should be read-only")
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
	if rec.TID() != 0 {
		t.Fatalf("read-only commit must not touch record versions")
	}
}

// TestSerializabilityStressBankTransfers runs many concurrent transfer
// transactions between accounts in one domain and checks that the total
// balance is conserved — the core serializability invariant the paper relies
// on for Smallbank.
func TestSerializabilityStressBankTransfers(t *testing.T) {
	const (
		accounts  = 32
		workers   = 8
		transfers = 300
		initial   = int64(1000)
	)
	d := NewDomain("bank")
	recs := make([]*kv.Record, accounts)
	for i := range recs {
		recs[i] = kv.NewCommittedRecord(encInt(initial), 0)
	}
	var wg sync.WaitGroup
	var committed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := seed
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				v := int((rng >> 33) % int64(n))
				if v < 0 {
					v += n
				}
				return v
			}
			for i := 0; i < transfers; i++ {
				src := next(accounts)
				dst := next(accounts)
				if src == dst {
					continue
				}
				amt := int64(next(10) + 1)
				txn := d.Begin()
				sv, _, _ := txn.Read(recs[src])
				dv, _, _ := txn.Read(recs[dst])
				if decInt(sv) < amt {
					txn.Abort()
					continue
				}
				_ = txn.Write(recs[src], []byte(fmt.Sprintf("a%d", src)), encInt(decInt(sv)-amt), nil)
				_ = txn.Write(recs[dst], []byte(fmt.Sprintf("a%d", dst)), encInt(decInt(dv)+amt), nil)
				if _, err := txn.Commit(); err == nil {
					committed.Add(1)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	var total int64
	for _, rec := range recs {
		data, _, _ := rec.StableRead()
		v := decInt(data)
		if v < 0 {
			t.Fatalf("negative balance %d", v)
		}
		total += v
	}
	if total != accounts*initial {
		t.Fatalf("total balance %d, want %d (money created or destroyed)", total, accounts*initial)
	}
	if committed.Load() == 0 {
		t.Fatalf("no transfer committed; stress test did not exercise commits")
	}
}

func TestDomainEpochAdvance(t *testing.T) {
	d := NewDomain("test")
	e0 := d.Epoch()
	d.AdvanceEpoch()
	if d.Epoch() != e0+1 {
		t.Fatalf("epoch did not advance")
	}
	// TIDs from the new epoch must exceed TIDs from the old epoch.
	rec := kv.NewCommittedRecord(encInt(0), 0)
	txn := d.Begin()
	_, _, _ = txn.Read(rec)
	_ = txn.Write(rec, []byte("k"), encInt(1), nil)
	tid, err := txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if tid>>epochBits != d.Epoch() {
		t.Fatalf("TID epoch bits = %d, want %d", tid>>epochBits, d.Epoch())
	}
}

// Package occ implements optimistic concurrency control in the style of Silo
// (Tu et al., SOSP 2013), the protocol ReactDB reuses for single-container
// transactions (paper §3.2.1). Each concurrency control Domain corresponds to
// one database container: transactions collect read and write sets against
// versioned records (package kv), then commit with the three-phase Silo
// protocol (lock write set, validate read set, install writes under a freshly
// generated TID).
//
// For multi-container transactions (paper §3.2.2) the commit is split into
// Prepare / CommitPrepared / AbortPrepared so that the engine's transaction
// coordinator can drive two-phase commit, with Silo validation serving as the
// vote of the first phase.
//
// Phantom protection uses per-table structural versions registered through
// ScanGuards rather than Masstree node-set validation; this is coarser (more
// false aborts under concurrent inserts to a scanned table) but preserves
// conflict serializability.
package occ

// Package bench is the load driver used by the experiment harness: it applies
// the paper's measurement methodology (§4.1.2) — client workers with affinity
// to reactors, epoch-based measurement, averages and standard deviations
// across epochs — to a running ReactDB instance.
package bench

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/stats"
)

// Request is one transaction invocation produced by a workload generator.
type Request struct {
	Reactor   string
	Procedure string
	Args      []any
}

// Generator produces the next transaction request for one client worker.
// Implementations are typically closures over a workload-specific generator
// seeded per worker.
type Generator func() Request

// Options control a measurement run.
type Options struct {
	// Workers is the number of client worker goroutines ("client worker
	// threads" in the paper). Each gets its own Generator.
	Workers int
	// Epochs is the number of measurement epochs (the paper uses 50).
	Epochs int
	// EpochDuration is the length of one epoch.
	EpochDuration time.Duration
	// Warmup is run before measurement starts and is not recorded.
	Warmup time.Duration
}

// DefaultOptions returns a small configuration suitable for test runs.
func DefaultOptions(workers int) Options {
	return Options{Workers: workers, Epochs: 5, EpochDuration: 100 * time.Millisecond, Warmup: 50 * time.Millisecond}
}

// Run drives the database with opts.Workers concurrent workers, each issuing
// requests from its generator, and returns per-epoch throughput and latency.
// Latency includes input generation, as in the paper ("all measurements
// include the time to generate transaction inputs"). Serialization conflicts
// and user aborts count as aborted transactions; any other error stops the
// run and is returned.
func Run(db *engine.Database, opts Options, newGenerator func(worker int) Generator) (stats.RunResult, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	if opts.EpochDuration <= 0 {
		opts.EpochDuration = 100 * time.Millisecond
	}

	var (
		collecting atomic.Bool
		mu         sync.Mutex
		lat        = stats.NewLatencyRecorder(1024)
		committed  int
		aborted    int
		rejected   int
		runErr     error
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < opts.Workers; w++ {
		gen := newGenerator(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				req := gen()
				_, err := db.Execute(req.Reactor, req.Procedure, req.Args...)
				elapsed := time.Since(start)
				if err != nil && !errors.Is(err, engine.ErrConflict) && !errors.Is(err, engine.ErrOverloaded) &&
					!core.IsUserAbort(err) && !errors.Is(err, core.ErrDangerousStructure) {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					return
				}
				if !collecting.Load() {
					continue
				}
				mu.Lock()
				switch {
				case err == nil:
					committed++
					lat.Record(elapsed)
				case errors.Is(err, engine.ErrOverloaded):
					// Shed by admission control before consuming executor
					// resources: accounted separately from transactional
					// aborts.
					rejected++
				default:
					aborted++
				}
				mu.Unlock()
			}
		}()
	}

	if opts.Warmup > 0 {
		time.Sleep(opts.Warmup)
	}
	db.ResetExecutorStats()
	var run stats.RunResult
	collecting.Store(true)
	for e := 0; e < opts.Epochs; e++ {
		mu.Lock()
		lat.Reset()
		committed, aborted, rejected = 0, 0, 0
		mu.Unlock()
		time.Sleep(opts.EpochDuration)
		mu.Lock()
		epoch := stats.EpochResult{
			Duration:   opts.EpochDuration,
			Committed:  committed,
			Aborted:    aborted,
			Rejected:   rejected,
			MeanLat:    lat.Mean(),
			Throughput: float64(committed) / opts.EpochDuration.Seconds(),
		}
		mu.Unlock()
		run.AddEpoch(epoch)
	}
	collecting.Store(false)
	close(stop)
	wg.Wait()

	mu.Lock()
	err := runErr
	mu.Unlock()
	return run, err
}

// ProfileSummary aggregates the cost-model profiles of a sequence of
// transactions executed by a single worker (used by the latency-control
// experiments of §4.2, which deliberately avoid interference).
type ProfileSummary struct {
	Count       int
	Aborts      int
	MeanTotal   time.Duration
	MeanSync    time.Duration
	MeanCs      time.Duration
	MeanCr      time.Duration
	MeanBlocked time.Duration
	MeanCommit  time.Duration
}

// MeasureProfiles runs n transactions sequentially from a single client and
// averages their latency profiles. Aborted transactions (conflicts or user
// aborts) are excluded from the averages but counted.
func MeasureProfiles(db *engine.Database, n int, gen Generator) (ProfileSummary, error) {
	var s ProfileSummary
	var totals struct {
		total, sync, cs, cr, blocked, commit time.Duration
	}
	for i := 0; i < n; i++ {
		req := gen()
		start := time.Now()
		_, profile, err := db.ExecuteProfiled(req.Reactor, req.Procedure, req.Args...)
		elapsed := time.Since(start)
		if err != nil {
			if errors.Is(err, engine.ErrConflict) || core.IsUserAbort(err) || errors.Is(err, core.ErrDangerousStructure) {
				s.Aborts++
				continue
			}
			return s, err
		}
		s.Count++
		totals.total += elapsed
		sync := profile.Total - profile.BlockedWait - profile.Cs - profile.Cr - profile.Commit
		if sync < 0 {
			sync = 0
		}
		totals.sync += sync
		totals.cs += profile.Cs
		totals.cr += profile.Cr
		totals.blocked += profile.BlockedWait
		totals.commit += profile.Commit
	}
	if s.Count > 0 {
		n := time.Duration(s.Count)
		s.MeanTotal = totals.total / n
		s.MeanSync = totals.sync / n
		s.MeanCs = totals.cs / n
		s.MeanCr = totals.cr / n
		s.MeanBlocked = totals.blocked / n
		s.MeanCommit = totals.commit / n
	}
	return s, nil
}

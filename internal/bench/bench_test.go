package bench

import (
	"errors"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

func counterDB(t testing.TB) *engine.Database {
	t.Helper()
	schema := rel.MustSchema("counter",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "value", Type: rel.Int64}}, "id")
	typ := core.NewType("Counter").AddRelation(schema).
		AddProcedure("incr", func(ctx core.Context, args core.Args) (any, error) {
			row, err := ctx.Get("counter", int64(0))
			if err != nil {
				return nil, err
			}
			return nil, ctx.Update("counter", rel.Row{int64(0), row.Int64(1) + 1})
		}).
		AddProcedure("fail", func(ctx core.Context, args core.Args) (any, error) {
			return nil, core.Abortf("always fails")
		}).
		AddProcedure("broken", func(ctx core.Context, args core.Args) (any, error) {
			return nil, errors.New("infrastructure error")
		})
	def := core.NewDatabaseDef().MustAddType(typ)
	def.MustDeclareReactors("Counter", "ctr-0", "ctr-1")
	db := engine.MustOpen(def, engine.NewSharedNothing(2))
	db.MustLoad("ctr-0", "counter", rel.Row{int64(0), int64(0)})
	db.MustLoad("ctr-1", "counter", rel.Row{int64(0), int64(0)})
	t.Cleanup(db.Close)
	return db
}

func TestRunCollectsEpochs(t *testing.T) {
	db := counterDB(t)
	opts := Options{Workers: 2, Epochs: 3, EpochDuration: 30 * time.Millisecond, Warmup: 10 * time.Millisecond}
	result, err := Run(db, opts, func(worker int) Generator {
		reactor := "ctr-0"
		if worker%2 == 1 {
			reactor = "ctr-1"
		}
		return func() Request { return Request{Reactor: reactor, Procedure: "incr"} }
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(result.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(result.Epochs))
	}
	tp, _ := result.Throughput()
	if tp <= 0 {
		t.Fatalf("throughput should be positive, got %v", tp)
	}
	lat, _ := result.Latency()
	if lat <= 0 {
		t.Fatalf("latency should be positive")
	}
	// The committed count matches the database state (no lost transactions in
	// accounting): counter values >= total committed during measurement.
	row0, _ := db.ReadRow("ctr-0", "counter", int64(0))
	row1, _ := db.ReadRow("ctr-1", "counter", int64(0))
	if int(row0.Int64(1)+row1.Int64(1)) < result.TotalCommitted() {
		t.Fatalf("accounting shows more commits than the database recorded")
	}
}

func TestRunCountsUserAbortsAsAborted(t *testing.T) {
	db := counterDB(t)
	opts := Options{Workers: 1, Epochs: 2, EpochDuration: 20 * time.Millisecond}
	result, err := Run(db, opts, func(int) Generator {
		return func() Request { return Request{Reactor: "ctr-0", Procedure: "fail"} }
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if result.AbortRate() != 1.0 {
		t.Fatalf("abort rate = %v, want 1.0", result.AbortRate())
	}
}

func TestRunStopsOnInfrastructureError(t *testing.T) {
	db := counterDB(t)
	opts := Options{Workers: 1, Epochs: 1, EpochDuration: 20 * time.Millisecond}
	_, err := Run(db, opts, func(int) Generator {
		return func() Request { return Request{Reactor: "ctr-0", Procedure: "broken"} }
	})
	if err == nil {
		t.Fatalf("infrastructure errors should surface from Run")
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	db := counterDB(t)
	result, err := Run(db, Options{EpochDuration: 10 * time.Millisecond}, func(int) Generator {
		return func() Request { return Request{Reactor: "ctr-0", Procedure: "incr"} }
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(result.Epochs) != 1 {
		t.Fatalf("default epochs should be 1, got %d", len(result.Epochs))
	}
}

func TestMeasureProfiles(t *testing.T) {
	db := counterDB(t)
	summary, err := MeasureProfiles(db, 20, func() Request {
		return Request{Reactor: "ctr-1", Procedure: "incr"}
	})
	if err != nil {
		t.Fatalf("MeasureProfiles: %v", err)
	}
	if summary.Count != 20 || summary.Aborts != 0 {
		t.Fatalf("summary counts wrong: %+v", summary)
	}
	if summary.MeanTotal <= 0 || summary.MeanCommit < 0 {
		t.Fatalf("summary durations not populated: %+v", summary)
	}
	// Aborting transactions are counted but excluded from averages.
	summary, err = MeasureProfiles(db, 5, func() Request {
		return Request{Reactor: "ctr-0", Procedure: "fail"}
	})
	if err != nil {
		t.Fatalf("MeasureProfiles aborts: %v", err)
	}
	if summary.Count != 0 || summary.Aborts != 5 {
		t.Fatalf("abort accounting wrong: %+v", summary)
	}
	// Infrastructure errors surface.
	if _, err := MeasureProfiles(db, 1, func() Request {
		return Request{Reactor: "ctr-0", Procedure: "broken"}
	}); err == nil {
		t.Fatalf("expected error for broken procedure")
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := DefaultOptions(4)
	if opts.Workers != 4 || opts.Epochs <= 0 || opts.EpochDuration <= 0 {
		t.Fatalf("DefaultOptions wrong: %+v", opts)
	}
}

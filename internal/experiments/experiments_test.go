package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fmtSscan parses a single float from a table cell.
func fmtSscan(s string, out *float64) (int, error) { return fmt.Sscan(s, out) }

// tinyOptions keeps experiment runs small enough for the unit test suite.
func tinyOptions() Options {
	return Options{Epochs: 2, EpochDuration: 60 * time.Millisecond}
}

func TestRegistryCoversAllExperimentIDs(t *testing.T) {
	reg := Registry()
	want := []string{
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "tab1", "fig15", "fig16", "fig17", "fig18", "fig19",
		"affinity", "overhead", "durability", "twopc", "checkpoint", "scheduler",
		"query", "storage", "replication", "server",
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Fatalf("registry missing %s", id)
		}
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("IDs() returned %d entries", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("IDs() not sorted")
		}
	}
}

func TestDurabilitySweepReportsFsyncAmortization(t *testing.T) {
	tbl, err := Durability(tinyOptions())
	if err != nil {
		t.Fatalf("Durability: %v", err)
	}
	if len(tbl.Rows) != len(durabilityConfigs(tinyOptions())) {
		t.Fatalf("sweep produced %d rows, want %d", len(tbl.Rows), len(durabilityConfigs(tinyOptions())))
	}
	for _, row := range tbl.Rows {
		name, txnsPerFsync := row[0], row[3]
		switch {
		case name == "wal":
			// Unbatched WAL still reports fsync stats; the ratio itself
			// depends on how much concurrent sync absorption the scheduler
			// happens to produce, so only sanity-check it.
			var v float64
			if _, err := fmtSscan(txnsPerFsync, &v); err != nil || v < 1 {
				t.Fatalf("unbatched wal txns/fsync = %q, want a ratio >= 1", txnsPerFsync)
			}
		case strings.HasPrefix(name, "wal+gc"):
			var v float64
			if _, err := fmtSscan(txnsPerFsync, &v); err != nil || v <= 1.0 {
				t.Fatalf("%s txns/fsync = %q, want > 1 (group fsync must amortize)", name, txnsPerFsync)
			}
		default:
			if txnsPerFsync != "-" {
				t.Fatalf("%s reports WAL stats %q without a WAL", name, txnsPerFsync)
			}
		}
	}
}

// TestSchedulerSweepShowsStealAndDepthEffects runs the scheduler sweep in
// its tiny configuration and checks the acceptance shapes: the skewed
// steal-on point steals and out-throughputs the skewed steal-off point, and
// under the highest client pressure the adaptive-depth point holds a lower
// queue-wait p99 than the static bound while actually shrinking its depth.
func TestSchedulerSweepShowsStealAndDepthEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tbl, err := Scheduler(tinyOptions())
	if err != nil {
		t.Fatalf("Scheduler: %v", err)
	}
	pts := schedulerPoints(tinyOptions())
	if len(tbl.Rows) != len(pts) {
		t.Fatalf("sweep produced %d rows, want %d", len(tbl.Rows), len(pts))
	}
	payload, ok := tbl.Machine.(*SchedulerBench)
	if !ok || len(payload.Rows) != len(pts) {
		t.Fatalf("machine payload missing or wrong shape: %#v", tbl.Machine)
	}
	find := func(load string, steal, adaptive bool, workers int) *SchedulerBenchRow {
		for i := range payload.Rows {
			r := &payload.Rows[i]
			if r.Load == load && r.Steal == steal && r.AdaptiveDepth == adaptive && r.Workers == workers {
				return r
			}
		}
		t.Fatalf("row %s/steal=%v/adaptive=%v/w=%d missing", load, steal, adaptive, workers)
		return nil
	}
	stealW := pts[0].workers
	zipfOff := find("zipf", false, false, stealW)
	zipfOn := find("zipf", true, false, stealW)
	if zipfOn.Steals == 0 {
		t.Fatal("skewed steal-on point recorded no steals")
	}
	if zipfOff.Steals != 0 {
		t.Fatalf("steal-off point recorded %d steals", zipfOff.Steals)
	}
	if zipfOn.ThroughputTxnS <= zipfOff.ThroughputTxnS {
		t.Fatalf("stealing should lift skewed throughput: %v vs %v",
			zipfOn.ThroughputTxnS, zipfOff.ThroughputTxnS)
	}
	overloadW := pts[len(pts)-1].workers
	static := find("zipf", true, false, overloadW)
	adaptive := find("zipf", true, true, overloadW)
	if adaptive.MinEffectiveDepth >= 256 {
		t.Fatalf("adaptive depth never shrank: %+v", adaptive)
	}
	if adaptive.QueueWaitP99Ms >= static.QueueWaitP99Ms {
		t.Fatalf("adaptive p99 %.3fms should undercut static p99 %.3fms under overload",
			adaptive.QueueWaitP99Ms, static.QueueWaitP99Ms)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "fig0",
		Title:  "test table",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("300", "4")
	out := tbl.String()
	for _, want := range []string{"fig0", "test table", "a note", "300"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.epochs() != 3 || o.epochDuration() != 150*time.Millisecond {
		t.Fatalf("quick defaults wrong")
	}
	full := Options{Full: true}
	if full.epochs() != 10 || full.epochDuration() != 500*time.Millisecond {
		t.Fatalf("full defaults wrong")
	}
	if o.commCosts().Receive <= o.commCosts().Send {
		t.Fatalf("comm costs must preserve Cr > Cs")
	}
	if o.loadCosts().Processing <= 0 {
		t.Fatalf("load costs must include processing")
	}
	if o.profileCount() <= 0 || full.profileCount() <= o.profileCount() {
		t.Fatalf("profile counts wrong")
	}
	if len(o.tpccWorkerCounts()) >= len(full.tpccWorkerCounts()) {
		t.Fatalf("full worker sweep should be larger")
	}
	if len(o.ycsbSkews()) >= len(full.ycsbSkews()) {
		t.Fatalf("full skew sweep should be larger")
	}
}

func TestExpectedDistinctRemote(t *testing.T) {
	if got := expectedDistinctRemote(10, 3, 0); got != 0 {
		t.Fatalf("zero probability should give 0, got %d", got)
	}
	if got := expectedDistinctRemote(10, 3, 1.0); got < 2 || got > 3 {
		t.Fatalf("100%% cross with 3 candidates should approach 3, got %d", got)
	}
	if got := expectedDistinctRemote(10, 7, 0.01); got != 1 {
		t.Fatalf("1%% cross should still touch about one remote warehouse, got %d", got)
	}
}

// TestFig5QuickRunProducesOrderedLatencies runs the smallest latency-control
// experiment end to end and checks the headline shape: opt is not slower than
// fully-sync at the largest transaction size.
func TestFig5QuickRunProducesOrderedLatencies(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tbl, err := Fig5(tinyOptions())
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(tbl.Rows) != 7 || len(tbl.Header) != 5 {
		t.Fatalf("unexpected table shape: %+v", tbl)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	var fullySync, opt float64
	if _, err := fmtSscan(last[1], &fullySync); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := fmtSscan(last[4], &opt); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if opt > fullySync {
		t.Fatalf("opt (%v ms) should not be slower than fully-sync (%v ms) at size 7", opt, fullySync)
	}
}

// TestOverheadQuickRun exercises the containerization-overhead experiment.
func TestOverheadQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tbl, err := Overhead(tinyOptions())
	if err != nil {
		t.Fatalf("Overhead: %v", err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(tbl.Rows))
	}
}

// TestCheckpointSweepBoundsLogAndRecovery runs the checkpoint sweep in its
// tiny configuration and checks the acceptance criterion of the
// checkpointing work: a checkpointed run takes checkpoints, and both its
// on-disk log and its replayed suffix come out smaller than the
// no-checkpoint baseline's full history.
func TestCheckpointSweepBoundsLogAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tbl, err := Checkpoint(tinyOptions())
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if len(tbl.Rows) != len(checkpointConfigs(tinyOptions())) {
		t.Fatalf("sweep produced %d rows, want %d", len(tbl.Rows), len(checkpointConfigs(tinyOptions())))
	}
	parse := func(cell, what string) float64 {
		var v float64
		if _, err := fmtSscan(cell, &v); err != nil {
			t.Fatalf("parse %s %q: %v", what, cell, err)
		}
		return v
	}
	baseline := tbl.Rows[0]
	if baseline[0] != "off" || parse(baseline[3], "ckpts") != 0 {
		t.Fatalf("first row should be the no-checkpoint baseline, got %v", baseline)
	}
	baseReplayed := parse(baseline[7], "replayed")
	if baseReplayed == 0 {
		t.Fatal("baseline replayed nothing; the workload wrote no log")
	}
	for _, row := range tbl.Rows[1:] {
		if parse(row[3], "ckpts") == 0 {
			t.Fatalf("config %s took no checkpoints", row[0])
		}
		if replayed := parse(row[7], "replayed"); replayed >= baseReplayed {
			t.Fatalf("config %s replayed %v transactions, want fewer than the baseline's %v",
				row[0], replayed, baseReplayed)
		}
	}
}

// TestTwoPCSweepRoutesRecordsThroughGroupCommitter runs the 2PC durability
// sweep in its tiny configuration and checks the acceptance criterion of the
// atomic-commit work: under group commit, participant prepare records and
// coordinator decision records flush through the containers' group
// committers (a positive Records count), while the eager baseline bypasses
// them entirely.
func TestTwoPCSweepRoutesRecordsThroughGroupCommitter(t *testing.T) {
	tbl, err := TwoPC(tinyOptions())
	if err != nil {
		t.Fatalf("TwoPC: %v", err)
	}
	if len(tbl.Rows) != len(twoPCConfigs(tinyOptions())) {
		t.Fatalf("sweep produced %d rows, want %d", len(tbl.Rows), len(twoPCConfigs(tinyOptions())))
	}
	for _, row := range tbl.Rows {
		name, recs := row[0], row[4]
		if name == "eager" {
			if recs != "-" {
				t.Fatalf("eager config reports %s 2PC records via group commit, want '-'", recs)
			}
			continue
		}
		var n float64
		if _, err := fmtSscan(recs, &n); err != nil || n <= 0 {
			t.Fatalf("config %s flushed %s 2PC records through the group committer, want > 0", name, recs)
		}
	}
}

func TestQuerySweepShowsPlannerAndIndexEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tbl, err := Query(tinyOptions())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	payload, ok := tbl.Machine.(*QueryBench)
	if !ok || len(payload.Rows) == 0 {
		t.Fatalf("machine payload missing or empty: %#v", tbl.Machine)
	}
	find := func(shape string, fanout int, indexed bool, planner string) *QueryBenchRow {
		for i := range payload.Rows {
			r := &payload.Rows[i]
			if r.Shape == shape && r.Fanout == fanout && r.Indexed == indexed && r.Planner == planner {
				return r
			}
		}
		t.Fatalf("row %s/fanout=%d/indexed=%v/%s missing", shape, fanout, indexed, planner)
		return nil
	}
	top := 16
	greedy := find("join", top, true, "greedy")
	naive := find("join", top, true, "naive")
	if greedy.JoinOrder != "c,o,l" {
		t.Fatalf("greedy did not reorder the declared l,c,o join: %q", greedy.JoinOrder)
	}
	if naive.JoinOrder != "l,c,o" {
		t.Fatalf("naive should keep declaration order: %q", naive.JoinOrder)
	}
	if greedy.RowsOut != naive.RowsOut {
		t.Fatalf("planners disagree on results: %d vs %d rows", greedy.RowsOut, naive.RowsOut)
	}
	if greedy.MicrosPerQ >= naive.MicrosPerQ {
		t.Fatalf("greedy (%.1fus) should beat naive (%.1fus) on the skewed fan-out",
			greedy.MicrosPerQ, naive.MicrosPerQ)
	}
	scan := find("point", top, false, "-")
	indexed := find("point", top, true, "-")
	if indexed.AccessPath != "index:by_cust" || scan.AccessPath != "scan" {
		t.Fatalf("access paths wrong: indexed=%q scan=%q", indexed.AccessPath, scan.AccessPath)
	}
	if indexed.MicrosPerQ*2 > scan.MicrosPerQ {
		t.Fatalf("indexed lookup (%.1fus) should be at least 2x faster than the scan (%.1fus)",
			indexed.MicrosPerQ, scan.MicrosPerQ)
	}
}

func TestReplicationSweepReportsAckModeAndLag(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tbl, err := Replication(tinyOptions())
	if err != nil {
		t.Fatalf("Replication: %v", err)
	}
	payload, ok := tbl.Machine.(*ReplicationBench)
	if !ok || len(payload.Rows) == 0 {
		t.Fatalf("machine payload missing or empty: %#v", tbl.Machine)
	}
	if len(payload.Rows) != len(replicationPoints(tinyOptions())) {
		t.Fatalf("sweep produced %d rows, want %d",
			len(payload.Rows), len(replicationPoints(tinyOptions())))
	}
	seen := map[string]bool{}
	for _, r := range payload.Rows {
		if seen[r.Name] {
			t.Fatalf("duplicate row name %q (the bench-history gate matches by name)", r.Name)
		}
		seen[r.Name] = true
		if r.Throughput <= 0 {
			t.Fatalf("%s: no committed transactions", r.Name)
		}
		if r.CommitP99Ms < r.CommitP50Ms {
			t.Fatalf("%s: p99 %.3fms below p50 %.3fms", r.Name, r.CommitP99Ms, r.CommitP50Ms)
		}
		if r.Replicas == 0 && (r.MaxLagRecords != 0 || r.CatchupMs != 0) {
			t.Fatalf("%s: baseline without replicas reported lag/catch-up", r.Name)
		}
		// Noise-proof structural check only: latency comparisons between ack
		// modes are asserted by TestSemiSync* in internal/engine, not here.
	}
	if !seen["ack=async r=0"] || !seen["ack=semisync r=2"] {
		t.Fatalf("expected sweep endpoints missing: %v", seen)
	}
}

func TestServerSweepReportsRoutingModes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tbl, err := Server(tinyOptions())
	if err != nil {
		t.Fatalf("Server: %v", err)
	}
	payload, ok := tbl.Machine.(*ServerBench)
	if !ok || len(payload.Rows) == 0 {
		t.Fatalf("machine payload missing or empty: %#v", tbl.Machine)
	}
	if len(payload.Rows) != len(serverPoints(tinyOptions())) {
		t.Fatalf("sweep produced %d rows, want %d",
			len(payload.Rows), len(serverPoints(tinyOptions())))
	}
	seen := map[string]bool{}
	modes := map[string]bool{}
	for _, r := range payload.Rows {
		if seen[r.Name] {
			t.Fatalf("duplicate row name %q (the bench-history gate matches by name)", r.Name)
		}
		seen[r.Name] = true
		modes[r.Mode] = true
		if r.Throughput <= 0 {
			t.Fatalf("%s: no completed operations", r.Name)
		}
		if r.ReadP99Ms < r.ReadP50Ms {
			t.Fatalf("%s: read p99 %.3fms below p50 %.3fms", r.Name, r.ReadP99Ms, r.ReadP50Ms)
		}
		// Latency comparisons between routing policies are asserted by the
		// router unit tests and observed in the full sweep, not gated here:
		// tiny loopback-TCP runs are too noisy.
	}
	for _, m := range []string{"inproc", "roundrobin", "aware"} {
		if !modes[m] {
			t.Fatalf("mode %s missing from sweep", m)
		}
	}
}

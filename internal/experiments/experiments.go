// Package experiments contains one runner per table and figure of the paper's
// evaluation (§4 and Appendices B–G). Each runner deploys the relevant
// workload under the relevant database architecture(s), drives it with the
// measurement harness of package bench, and returns a printable table whose
// rows correspond to the series the paper plots.
//
// Runners accept Options; the zero value produces a quick run sized for test
// suites and CI, while Full enlarges sweeps and epochs for report-quality
// numbers. Absolute magnitudes differ from the paper (the substrate is the
// virtual-core simulation described in DESIGN.md §5); EXPERIMENTS.md records
// the measured shapes next to the paper's.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"reactdb/internal/vclock"
)

// Options control the size of an experiment run.
type Options struct {
	// Full enlarges sweeps (more sizes, more workers, more epochs) to mirror
	// the paper's configurations as closely as the host allows.
	Full bool
	// Epochs and EpochDuration override the measurement methodology defaults
	// (quick: 3 × 150ms, full: 10 × 500ms).
	Epochs        int
	EpochDuration time.Duration
	// Costs override the virtual-core cost parameters; the zero value selects
	// vclock.DefaultExperimentCosts for load experiments and a
	// communication-only variant for the latency-control experiments.
	Costs *vclock.Costs
}

func (o Options) epochs() int {
	if o.Epochs > 0 {
		return o.Epochs
	}
	if o.Full {
		return 10
	}
	return 3
}

func (o Options) epochDuration() time.Duration {
	if o.EpochDuration > 0 {
		return o.EpochDuration
	}
	if o.Full {
		return 500 * time.Millisecond
	}
	return 150 * time.Millisecond
}

// commCosts are the cost parameters for the single-worker latency-control
// experiments (§4.2, Appendices B and C): communication costs only, no
// per-transaction processing or affinity modeling, preserving the Cr > Cs
// asymmetry the paper reports.
func (o Options) commCosts() vclock.Costs {
	if o.Costs != nil {
		return *o.Costs
	}
	return vclock.Costs{Send: 40 * time.Microsecond, Receive: 80 * time.Microsecond}
}

// loadCosts are the cost parameters for the multi-worker load experiments
// (§4.3, Appendices D–F): communication, affinity-miss and per-transaction
// processing costs.
func (o Options) loadCosts() vclock.Costs {
	if o.Costs != nil {
		return *o.Costs
	}
	return vclock.DefaultExperimentCosts()
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Machine, when non-nil, is a machine-readable payload of the same
	// results; reactdb-bench -json serializes it so sweeps can be recorded in
	// the bench history (e.g. BENCH_sched.json).
	Machine any
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Runner executes one experiment.
type Runner func(Options) (*Table, error)

// Registry returns the experiment runners keyed by experiment id (figure or
// table number as used in DESIGN.md and EXPERIMENTS.md).
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig5":        Fig5,
		"fig6":        Fig6,
		"fig7":        Fig7,
		"fig8":        Fig8,
		"fig9":        Fig9,
		"fig10":       Fig10,
		"fig11":       Fig11,
		"fig12":       Fig12,
		"fig13":       Fig13,
		"fig14":       Fig14,
		"tab1":        Tab1,
		"fig15":       Fig15,
		"fig16":       Fig16,
		"fig17":       Fig17,
		"fig18":       Fig18,
		"fig19":       Fig19,
		"affinity":    Affinity,
		"overhead":    Overhead,
		"durability":  Durability,
		"twopc":       TwoPC,
		"checkpoint":  Checkpoint,
		"scheduler":   Scheduler,
		"query":       Query,
		"storage":     Storage,
		"replication": Replication,
		"server":      Server,
	}
}

// IDs returns all experiment ids in a stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// formatDuration renders a duration in milliseconds with fixed precision, the
// unit the paper's latency figures use.
func formatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// formatThroughput renders transactions per second.
func formatThroughput(tps float64) string { return fmt.Sprintf("%.0f", tps) }

// formatPercent renders a ratio as a percentage.
func formatPercent(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

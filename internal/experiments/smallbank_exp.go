package experiments

import (
	"fmt"
	"time"

	"reactdb/internal/bench"
	"reactdb/internal/costmodel"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/workload/smallbank"
)

// smallbankDeployment mirrors §4.1.3: seven database containers, one
// transaction executor each, each holding a contiguous range of customer
// reactors; the source account always lives in the first container.
type smallbankDeployment struct {
	db           *engine.Database
	containers   int
	perContainer int
}

func openSmallbank(opts Options) (*smallbankDeployment, error) {
	containers := 7
	perContainer := 10
	if opts.Full {
		perContainer = 1000
	}
	customers := containers * perContainer
	cfg := engine.NewSharedNothing(containers)
	cfg.Placement = smallbank.RangePlacement(perContainer)
	cfg.Costs = opts.commCosts()
	db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
	if err != nil {
		return nil, err
	}
	if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
		db.Close()
		return nil, err
	}
	return &smallbankDeployment{db: db, containers: containers, perContainer: perContainer}, nil
}

// sourceAccount returns the customer used as the multi-transfer source: the
// first account of the first container.
func (d *smallbankDeployment) sourceAccount() string { return smallbank.ReactorName(0) }

// remoteDestinations returns size destination accounts, each on a different
// container other than the source's (Figure 5 setup: "each destination is
// chosen on a different container").
func (d *smallbankDeployment) remoteDestinations(size int) []string {
	dsts := make([]string, 0, size)
	for i := 0; i < size; i++ {
		container := 1 + i%(d.containers-1)
		dsts = append(dsts, smallbank.ReactorName(container*d.perContainer+i))
	}
	return dsts
}

// localDestinations returns size destination accounts on the source's own
// container (Appendix B.1's "-local" variant).
func (d *smallbankDeployment) localDestinations(size int) []string {
	dsts := make([]string, 0, size)
	for i := 0; i < size; i++ {
		dsts = append(dsts, smallbank.ReactorName(1+i%(d.perContainer-1)))
	}
	return dsts
}

// spannedDestinations returns seven destinations spread over the given number
// of executors according to the Appendix B.2 variants.
func (d *smallbankDeployment) spannedDestinations(spanned int, variant string, seed int64) []string {
	const size = 7
	rng := randutil.New(seed)
	pick := func(container, idx int) string {
		return smallbank.ReactorName(container*d.perContainer + 1 + idx%(d.perContainer-1))
	}
	dsts := make([]string, 0, size)
	switch variant {
	case "round-robin remote":
		local := size - spanned + 1
		for i := 0; i < local; i++ {
			dsts = append(dsts, pick(0, i))
		}
		for i := 0; i < size-local; i++ {
			dsts = append(dsts, pick(1+i%(spanned-1), i))
		}
	case "round-robin all":
		for i := 0; i < size; i++ {
			dsts = append(dsts, pick(i%spanned, i))
		}
	default: // random
		for i := 0; i < size; i++ {
			dsts = append(dsts, pick(randutil.UniformInt(rng, 0, d.containers-1), i))
		}
	}
	return dsts
}

// measureMultiTransfer runs n multi-transfer transactions of the given
// formulation against fixed destinations and returns the profile summary.
func (d *smallbankDeployment) measureMultiTransfer(f smallbank.Formulation, dsts []string, n int) (bench.ProfileSummary, error) {
	proc, sequential := smallbank.MultiTransferProcedure(f)
	src := d.sourceAccount()
	return bench.MeasureProfiles(d.db, n, func() bench.Request {
		args := []any{src, dsts, 1.0}
		if proc == smallbank.ProcMultiTransferSync {
			args = append(args, sequential)
		}
		return bench.Request{Reactor: src, Procedure: proc, Args: args}
	})
}

func (o Options) profileCount() int {
	if o.Full {
		return 200
	}
	return 25
}

// Fig5 reproduces Figure 5: average multi-transfer latency versus transaction
// size for the four program formulations, on the shared-nothing deployment.
func Fig5(opts Options) (*Table, error) {
	d, err := openSmallbank(opts)
	if err != nil {
		return nil, err
	}
	defer d.db.Close()

	sizes := []int{1, 2, 3, 4, 5, 6, 7}
	t := &Table{
		ID:     "fig5",
		Title:  "Latency vs. size and user program formulations (Smallbank multi-transfer, shared-nothing, 1 worker)",
		Header: []string{"txn size", "fully-sync [ms]", "partially-async [ms]", "fully-async [ms]", "opt [ms]"},
	}
	for _, size := range sizes {
		dsts := d.remoteDestinations(size)
		row := []string{fmt.Sprintf("%d", size)}
		for _, f := range smallbank.Formulations() {
			s, err := d.measureMultiTransfer(f, dsts, opts.profileCount())
			if err != nil {
				return nil, err
			}
			row = append(row, formatDuration(s.MeanTotal))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "expected shape: latency grows with size; fully-sync slowest, opt fastest (paper Figure 5)")
	return t, nil
}

// Fig6 reproduces Figure 6: the latency breakdown of fully-sync and opt into
// cost-model components, observed and predicted (parameters calibrated from
// the size-1 fully-sync run).
func Fig6(opts Options) (*Table, error) {
	d, err := openSmallbank(opts)
	if err != nil {
		return nil, err
	}
	defer d.db.Close()

	// Calibration run: fully-sync with a single destination.
	calib, err := d.measureMultiTransfer(smallbank.FullySync, d.remoteDestinations(1), opts.profileCount())
	if err != nil {
		return nil, err
	}
	params := costmodel.Params{Cs: d.db.Config().Costs.Send, Cr: d.db.Config().Costs.Receive}
	// The calibration transaction performs one remote credit and one local
	// debit; its blocked wait approximates the remote credit's execution and
	// its sync component approximates the local write plus dispatch logic.
	writeCost := calib.MeanBlocked
	localCost := calib.MeanSync / 2
	if localCost <= 0 {
		localCost = 5 * time.Microsecond
	}

	predict := func(f smallbank.Formulation, size int) costmodel.Components {
		root := &costmodel.SubTxn{Container: 0}
		for i := 0; i < size; i++ {
			dest := 1 + i%6
			switch f {
			case smallbank.FullySync:
				root.SyncSeq = append(root.SyncSeq,
					costmodel.Sequential(0, localCost, costmodel.Leaf(dest, writeCost)))
			default: // opt
				root.Async = append(root.Async, costmodel.Leaf(dest, writeCost))
			}
		}
		if f == smallbank.Opt {
			root.SyncOvp = []*costmodel.SubTxn{costmodel.Leaf(0, localCost)}
		}
		return costmodel.Predict(root, params)
	}

	t := &Table{
		ID:    "fig6",
		Title: "Latency breakdown into cost model components (observed vs. predicted)",
		Header: []string{"txn size", "formulation", "sync-exec [ms]", "Cs [ms]", "Cr [ms]",
			"async-exec [ms]", "commit+input [ms]", "total obs [ms]", "total pred [ms]"},
	}
	for _, size := range []int{1, 4, 7} {
		dsts := d.remoteDestinations(size)
		for _, f := range []smallbank.Formulation{smallbank.FullySync, smallbank.Opt} {
			s, err := d.measureMultiTransfer(f, dsts, opts.profileCount())
			if err != nil {
				return nil, err
			}
			syncExec := s.MeanSync
			asyncExec := s.MeanBlocked
			if f == smallbank.FullySync {
				// Immediately awaited sub-transactions are synchronous child
				// executions in the paper's breakdown.
				syncExec += s.MeanBlocked
				asyncExec = 0
			}
			pred := predict(f, size)
			t.AddRow(
				fmt.Sprintf("%d", size), string(f),
				formatDuration(syncExec), formatDuration(s.MeanCs), formatDuration(s.MeanCr),
				formatDuration(asyncExec), formatDuration(s.MeanCommit),
				formatDuration(s.MeanTotal), formatDuration(pred.Total()+s.MeanCommit),
			)
		}
	}
	t.Notes = append(t.Notes, "predicted totals include the measured commit+input component, which the cost equation excludes (as in the paper)")
	return t, nil
}

// Fig11 reproduces Figure 11 (Appendix B.1): latency of fully-sync and opt
// when destinations are remote (span all containers) versus local (same
// container as the source).
func Fig11(opts Options) (*Table, error) {
	d, err := openSmallbank(opts)
	if err != nil {
		return nil, err
	}
	defer d.db.Close()

	t := &Table{
		ID:     "fig11",
		Title:  "Latency vs. size for local vs. remote destination reactors",
		Header: []string{"txn size", "fully-sync-remote [ms]", "fully-sync-local [ms]", "opt-remote [ms]", "opt-local [ms]"},
	}
	for _, size := range []int{1, 2, 3, 4, 5, 6, 7} {
		remote := d.remoteDestinations(size)
		local := d.localDestinations(size)
		row := []string{fmt.Sprintf("%d", size)}
		for _, f := range []smallbank.Formulation{smallbank.FullySync, smallbank.Opt} {
			for _, dsts := range [][]string{remote, local} {
				s, err := d.measureMultiTransfer(f, dsts, opts.profileCount())
				if err != nil {
					return nil, err
				}
				row = append(row, formatDuration(s.MeanTotal))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "expected shape: fully-sync-remote rises sharply; local variants grow only with processing (paper Figure 11)")
	return t, nil
}

// Fig12 reproduces Figure 12 (Appendix B.2): latency of a size-7 fully-sync
// multi-transfer as the destinations span a varying number of transaction
// executors, for the three destination-selection variants.
func Fig12(opts Options) (*Table, error) {
	d, err := openSmallbank(opts)
	if err != nil {
		return nil, err
	}
	defer d.db.Close()

	variants := []string{"round-robin remote", "round-robin all", "random"}
	t := &Table{
		ID:     "fig12",
		Title:  "Latency vs. number of transaction executors spanned (fully-sync, size 7)",
		Header: []string{"executors spanned", "round-robin remote [ms]", "round-robin all [ms]", "random [ms]"},
	}
	for spanned := 1; spanned <= 7; spanned++ {
		row := []string{fmt.Sprintf("%d", spanned)}
		for _, variant := range variants {
			dsts := d.spannedDestinations(spanned, variant, int64(spanned))
			s, err := d.measureMultiTransfer(smallbank.FullySync, dsts, opts.profileCount())
			if err != nil {
				return nil, err
			}
			row = append(row, formatDuration(s.MeanTotal))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "expected shape: latency grows with the number of remote calls implied by each selection variant (paper Figure 12)")
	return t, nil
}

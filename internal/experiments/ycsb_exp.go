package experiments

import (
	"fmt"
	"sort"
	"time"

	"reactdb/internal/bench"
	"reactdb/internal/costmodel"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/workload/ycsb"
)

// ycsbSetup mirrors Appendix C: four containers, one executor each, each
// holding a contiguous range of key reactors; multi_update touches 10 keys
// drawn from a zipfian distribution, invoked on one of the chosen keys with
// remote keys ordered before local ones.
type ycsbSetup struct {
	db      *engine.Database
	keys    int
	perCont int
}

func openYCSB(opts Options) (*ycsbSetup, error) {
	perCont := 250
	if opts.Full {
		perCont = 10000
	}
	const containers = 4
	keys := containers * perCont
	cfg := engine.NewSharedNothing(containers)
	cfg.Placement = ycsb.RangePlacement(perCont)
	cfg.Costs = opts.commCosts()
	db, err := engine.Open(ycsb.NewDefinition(keys), cfg)
	if err != nil {
		return nil, err
	}
	if err := ycsb.Load(db, keys); err != nil {
		db.Close()
		return nil, err
	}
	return &ycsbSetup{db: db, keys: keys, perCont: perCont}, nil
}

// multiUpdateGenerator draws key sets from a zipfian distribution with the
// given skew, deduplicates them (the §2.2.4 safety condition forbids two
// sub-transactions on the same reactor), sorts remote keys before the local
// home key, and issues multi_update on the home key.
func (s *ycsbSetup) multiUpdateGenerator(skew float64, seed int64) bench.Generator {
	rng := randutil.New(seed)
	z := randutil.NewZipfian(s.keys, skew)
	return func() bench.Request {
		seen := make(map[int]bool, ycsb.KeysPerMultiUpdate)
		var ids []int
		for i := 0; i < ycsb.KeysPerMultiUpdate; i++ {
			k := z.Next(rng)
			if !seen[k] {
				seen[k] = true
				ids = append(ids, k)
			}
		}
		// Invoke on a randomly chosen key of the set; its container hosts the
		// "local" sub-transactions.
		home := ids[randutil.UniformInt(rng, 0, len(ids)-1)]
		homeContainer := home / s.perCont
		sort.Slice(ids, func(i, j int) bool {
			ri := ids[i]/s.perCont != homeContainer
			rj := ids[j]/s.perCont != homeContainer
			if ri != rj {
				return ri // remote keys first
			}
			return ids[i] < ids[j]
		})
		names := make([]string, 0, len(ids))
		for _, id := range ids {
			if id == home {
				continue
			}
			names = append(names, ycsb.ReactorName(id))
		}
		names = append(names, ycsb.ReactorName(home))
		return bench.Request{Reactor: ycsb.ReactorName(home), Procedure: ycsb.ProcMultiUpdate, Args: []any{names}}
	}
}

func (o Options) ycsbSkews() []float64 {
	if o.Full {
		return []float64{0.01, 0.5, 0.99, 2, 5}
	}
	return []float64{0.01, 0.99, 5}
}

// fig13and14 runs the Appendix C experiment once for latency (with the cost
// model prediction at one worker) and throughput.
func fig13and14(opts Options) (*Table, *Table, error) {
	s, err := openYCSB(opts)
	if err != nil {
		return nil, nil, err
	}
	defer s.db.Close()

	latencyTable := &Table{
		ID:     "fig13",
		Title:  "Effect of skew and queuing on YCSB multi_update latency [ms]",
		Header: []string{"zipfian constant", "1 worker obs", "4 workers obs", "1 worker pred"},
	}
	throughputTable := &Table{
		ID:     "fig14",
		Title:  "Effect of skew and queuing on YCSB multi_update throughput [txn/s]",
		Header: []string{"zipfian constant", "1 worker obs", "4 workers obs"},
	}

	costs := s.db.Config().Costs
	cmParams := costmodel.Params{Cs: costs.Send, Cr: costs.Receive}
	// Calibrate the per-update processing cost from single-key updates chosen
	// uniformly, as the appendix describes.
	calib, err := bench.MeasureProfiles(s.db, opts.profileCount(), func() bench.Request {
		id := randutil.UniformInt(randutil.New(11), 0, s.keys-1)
		return bench.Request{Reactor: ycsb.ReactorName(id), Procedure: ycsb.ProcReadModifyWrite}
	})
	if err != nil {
		return nil, nil, err
	}
	perUpdate := calib.MeanSync

	for _, skew := range opts.ycsbSkews() {
		// Observed, single worker.
		single, err := bench.MeasureProfiles(s.db, opts.profileCount(), s.multiUpdateGenerator(skew, 1))
		if err != nil {
			return nil, nil, err
		}
		// Observed, four workers.
		benchOpts := bench.Options{Workers: 4, Epochs: opts.epochs(), EpochDuration: opts.epochDuration(), Warmup: 30 * time.Millisecond}
		multi, err := bench.Run(s.db, benchOpts, func(worker int) bench.Generator {
			return s.multiUpdateGenerator(skew, int64(worker+2))
		})
		if err != nil {
			return nil, nil, err
		}
		multiLat, _ := multi.Latency()
		multiTP, _ := multi.Throughput()

		// Prediction: measure the realized sizes of the remote (async) and
		// local (sync) sub-transaction sequences by sampling the generator,
		// then evaluate the cost equation.
		gen := s.multiUpdateGenerator(skew, 99)
		var remoteSum, localSum, samples float64
		for i := 0; i < 50; i++ {
			req := gen()
			names := req.Args[0].([]string)
			homeContainer, _ := s.db.ContainerIndexOf(req.Reactor)
			for _, name := range names {
				if name == req.Reactor {
					localSum++
					continue
				}
				c, _ := s.db.ContainerIndexOf(name)
				if c == homeContainer {
					localSum++
				} else {
					remoteSum++
				}
			}
			samples++
		}
		avgRemote := remoteSum / samples
		avgLocal := localSum / samples
		root := &costmodel.SubTxn{Container: 0}
		for i := 0; i < int(avgRemote+0.5); i++ {
			root.Async = append(root.Async, costmodel.Leaf(i+1, perUpdate))
		}
		for i := 0; i < int(avgLocal+0.5); i++ {
			root.SyncOvp = append(root.SyncOvp, costmodel.Leaf(0, perUpdate))
		}
		pred := costmodel.Predict(root, cmParams).Total() + calib.MeanCommit

		singleTP := 0.0
		if single.MeanTotal > 0 {
			singleTP = float64(time.Second) / float64(single.MeanTotal)
		}
		latencyTable.AddRow(fmt.Sprintf("%.2f", skew),
			formatDuration(single.MeanTotal), formatDuration(multiLat), formatDuration(pred))
		throughputTable.AddRow(fmt.Sprintf("%.2f", skew),
			formatThroughput(singleTP), formatThroughput(multiTP))
	}
	note := "expected shape: single-worker latency decreases with skew (more sub-transactions become local); queueing with 4 workers raises latency, which the cost model deliberately does not capture (paper Appendix C)"
	latencyTable.Notes = append(latencyTable.Notes, note)
	throughputTable.Notes = append(throughputTable.Notes, note)
	return latencyTable, throughputTable, nil
}

// Fig13 reproduces Figure 13 (latency under skew and queuing, with prediction).
func Fig13(opts Options) (*Table, error) {
	t, _, err := fig13and14(opts)
	return t, err
}

// Fig14 reproduces Figure 14 (throughput under skew and queuing).
func Fig14(opts Options) (*Table, error) {
	_, t, err := fig13and14(opts)
	return t, err
}

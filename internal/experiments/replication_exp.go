package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/stats"
	"reactdb/internal/wal"
	"reactdb/internal/workload/smallbank"
)

// replicationPoint is one point of the ack mode × replica count sweep.
type replicationPoint struct {
	ack      engine.AckMode
	replicas int
}

func (p replicationPoint) name() string {
	return fmt.Sprintf("ack=%s r=%d", ackModeName(p.ack), p.replicas)
}

func ackModeName(m engine.AckMode) string {
	if m == engine.AckSemiSync {
		return "semisync"
	}
	return "async"
}

// replicationPoints enumerates the sweep. The r=0 baseline measures the
// primary's commit path alone; semi-sync with zero replicas would be the same
// configuration, so it is omitted.
func replicationPoints(opts Options) []replicationPoint {
	counts := []int{1, 2}
	if opts.Full {
		counts = []int{1, 2, 4}
	}
	pts := []replicationPoint{{ack: engine.AckAsync, replicas: 0}}
	for _, m := range []engine.AckMode{engine.AckAsync, engine.AckSemiSync} {
		for _, n := range counts {
			pts = append(pts, replicationPoint{ack: m, replicas: n})
		}
	}
	return pts
}

// ReplicationBenchRow is the machine-readable form of one sweep point. Name
// and NsPerOp follow the bench-history gate contract (reactdb-bench
// -compare): rows are matched by Name across runs and compared on NsPerOp.
// NsPerOp is the mean wall time per committed transaction (1e9 / throughput)
// — the one number in this sweep stable enough to gate. Commit latency
// quantiles and catch-up stay ungated: under semi-sync they ride the
// replica's poll timing and are too noisy for a regression band.
type ReplicationBenchRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	Ack           string  `json:"ack"`
	Replicas      int     `json:"replicas"`
	Throughput    float64 `json:"txn_per_sec"`
	CommitP50Ms   float64 `json:"commit_p50_ms"`
	CommitP99Ms   float64 `json:"commit_p99_ms"`
	CommitMeanMs  float64 `json:"commit_mean_ms"`
	MaxLagRecords uint64  `json:"max_lag_records"`
	CatchupMs     float64 `json:"catchup_ms"`
}

// ReplicationBench is the Machine payload for the replication sweep.
type ReplicationBench struct {
	Workers int                   `json:"workers"`
	Rows    []ReplicationBenchRow `json:"rows"`
}

// Replication sweeps acknowledgment mode × replica count over a WAL primary
// with group commit: single-container smallbank deposits while each attached
// replica bootstraps from a checkpoint blob and tails the live log. Per-point
// it reports commit latency quantiles (the price of the ack mode), steady-
// state freshness lag sampled at the end of the timed window (records the
// newest replica read can trail the primary by), and the catch-up time from
// writer stop until every replica's applied watermark reaches the primary's
// durable LSN.
func Replication(opts Options) (*Table, error) {
	customers := 64
	workers := 8
	if opts.Full {
		customers = 512
		workers = 16
	}

	table := &Table{
		ID:    "replication",
		Title: "Replication sweep: ack mode x replica count (WAL primary, group commit)",
		Header: []string{"config", "throughput [txn/s]", "commit p50 [ms]", "commit p99 [ms]",
			"max lag [recs]", "catch-up [ms]"},
		Notes: []string{
			"async acks after the primary's local fsync; semisync withholds acks until every replica durably mirrored the commit",
			"max lag is the worst shard lag (primary durable LSN - replica applied LSN) across replicas, sampled at the end of the run",
			"catch-up is writer-stop to every replica applied == primary durable; '-' where no replica is attached",
		},
	}
	payload := &ReplicationBench{Workers: workers}

	for _, pt := range replicationPoints(opts) {
		row, err := runReplicationPoint(opts, pt, customers, workers)
		if err != nil {
			return nil, fmt.Errorf("replication point %s: %w", pt.name(), err)
		}
		payload.Rows = append(payload.Rows, row)
		lag, catchup := "-", "-"
		if pt.replicas > 0 {
			lag = fmt.Sprintf("%d", row.MaxLagRecords)
			catchup = fmt.Sprintf("%.1f", row.CatchupMs)
		}
		table.AddRow(pt.name(), formatThroughput(row.Throughput),
			fmt.Sprintf("%.3f", row.CommitP50Ms), fmt.Sprintf("%.3f", row.CommitP99Ms),
			lag, catchup)
	}
	table.Machine = payload
	return table, nil
}

func runReplicationPoint(opts Options, pt replicationPoint, customers, workers int) (ReplicationBenchRow, error) {
	row := ReplicationBenchRow{
		Name: pt.name(), Ack: ackModeName(pt.ack), Replicas: pt.replicas,
	}

	cfg := engine.NewSharedEverythingWithAffinity(2)
	cfg.Costs = opts.commCosts()
	cfg.GroupCommit = engine.GroupCommitConfig{Enabled: true, Window: 200 * time.Microsecond, MaxBatch: 32}
	cfg.Durability = engine.DurabilityConfig{Mode: engine.DurabilityWAL, Storage: wal.NewMemStorage()}

	db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
	if err != nil {
		return row, err
	}
	defer db.Close()
	if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
		return row, err
	}
	// Checkpoint once so replicas exercise the blob-bootstrap path rather
	// than replaying the load from the log's origin.
	if err := db.Checkpoint(); err != nil {
		return row, err
	}

	replicas := make([]*engine.Replica, 0, pt.replicas)
	defer func() {
		for _, r := range replicas {
			r.Close()
		}
	}()
	for i := 0; i < pt.replicas; i++ {
		r, err := engine.OpenReplica(db, engine.ReplicaOptions{
			Ack:          pt.ack,
			PollInterval: 100 * time.Microsecond,
		})
		if err != nil {
			return row, err
		}
		replicas = append(replicas, r)
		if err := r.WaitCaughtUp(10 * time.Second); err != nil {
			return row, err
		}
	}

	// Drive distinct-key deposits from a fixed worker pool, recording each
	// committed transaction's wall latency. bench.Run is not used here: its
	// RunResult folds latency into mean/stddev, and the point of the sweep is
	// the tail the ack mode buys or costs.
	hist := stats.NewHistogram(stats.DurationBounds())
	var (
		stop      atomic.Bool
		recording atomic.Bool
		committed atomic.Int64
		runErr    atomic.Value
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := randutil.New(int64(worker) + 1)
			for !stop.Load() {
				id := worker + workers*randutil.UniformInt(rng, 0, customers/workers-1)
				begin := time.Now()
				_, err := db.Execute(smallbank.ReactorName(id), smallbank.ProcDepositChecking, 1.0)
				if err != nil {
					runErr.Store(err)
					return
				}
				if recording.Load() {
					hist.ObserveDuration(time.Since(begin))
					committed.Add(1)
				}
			}
		}(w)
	}

	warmup := 50 * time.Millisecond
	measure := time.Duration(opts.epochs()) * opts.epochDuration()
	time.Sleep(warmup)
	recording.Store(true)
	measureStart := time.Now()
	time.Sleep(measure)
	// Sample freshness lag while writers are still running: this is the gap a
	// read-scale-out client actually observes, not the drained end state.
	for _, r := range replicas {
		for _, sh := range r.Stats().Shards {
			if sh.Lag > row.MaxLagRecords {
				row.MaxLagRecords = sh.Lag
			}
		}
	}
	recording.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	if err, _ := runErr.Load().(error); err != nil {
		return row, err
	}

	catchupStart := time.Now()
	for _, r := range replicas {
		if err := r.WaitCaughtUp(10 * time.Second); err != nil {
			return row, err
		}
	}
	if len(replicas) > 0 {
		row.CatchupMs = float64(time.Since(catchupStart)) / 1e6
	}

	snap := hist.Snapshot()
	row.Throughput = float64(committed.Load()) / elapsed.Seconds()
	if row.Throughput > 0 {
		row.NsPerOp = 1e9 / row.Throughput
	}
	row.CommitP50Ms = snap.Quantile(0.50) / 1e6
	row.CommitP99Ms = snap.Quantile(0.99) / 1e6
	row.CommitMeanMs = hist.Mean() / 1e6
	return row, nil
}

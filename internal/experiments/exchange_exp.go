package experiments

import (
	"fmt"

	"reactdb/internal/bench"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/workload/exchange"
)

// Fig19 reproduces Figure 19 (Appendix G): the latency of the auth_pay
// transaction under the sequential, query-parallelism and
// procedure-parallelism strategies as the computational load of sim_risk
// grows.
func Fig19(opts Options) (*Table, error) {
	params := exchange.DefaultParams()
	params.OrdersPerProvider = 400
	simLoads := []int64{100, 10_000, 100_000}
	runs := 5
	if opts.Full {
		params.OrdersPerProvider = 30000
		simLoads = []int64{10, 100, 1_000, 10_000, 100_000, 1_000_000}
		runs = 20
	}

	// Sequential uses a single container and executor for all reactors; the
	// parallel strategies use one executor per reactor.
	openFor := func(strategy exchange.Strategy) (*engine.Database, error) {
		var cfg engine.Config
		if strategy == exchange.Sequential {
			cfg = engine.NewSharedNothing(1)
		} else {
			cfg = engine.NewSharedNothing(params.Providers + 1)
		}
		cfg.Placement = exchange.Placement(cfg.Containers)
		cfg.Costs = opts.commCosts()
		db, err := engine.Open(exchange.NewDefinition(params), cfg)
		if err != nil {
			return nil, err
		}
		if err := exchange.Load(db, params); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}

	t := &Table{
		ID:     "fig19",
		Title:  "Latency [ms] of query- vs. procedure-level parallelism (auth_pay, 15 providers)",
		Header: []string{"random numbers per provider", "query-parallelism", "procedure-parallelism", "sequential"},
	}
	results := make(map[int64][]string)
	for _, load := range simLoads {
		results[load] = []string{fmt.Sprintf("%d", load)}
	}
	for _, strategy := range []exchange.Strategy{exchange.QueryParallelism, exchange.ProcedureParallelism, exchange.Sequential} {
		db, err := openFor(strategy)
		if err != nil {
			return nil, err
		}
		rng := randutil.New(7)
		// The logical clock is monotone across the whole sweep so that the
		// provider risk caches (refreshed at time "now") are always stale and
		// sim_risk runs on every auth_pay, as in the appendix's setup.
		now := int64(0)
		for _, load := range simLoads {
			proc := exchange.ProcedureFor(strategy)
			summary, err := bench.MeasureProfiles(db, runs, func() bench.Request {
				now++
				provider := exchange.ProviderName(randutil.UniformInt(rng, 0, params.Providers-1))
				wallet := int64(randutil.UniformInt(rng, 1, 1000))
				return bench.Request{
					Reactor:   exchange.ExchangeReactor,
					Procedure: proc,
					Args:      []any{provider, wallet, 1.0, now, load, int64(0)},
				}
			})
			if err != nil {
				db.Close()
				return nil, err
			}
			results[load] = append(results[load], formatDuration(summary.MeanTotal))
		}
		db.Close()
	}
	for _, load := range simLoads {
		t.AddRow(results[load]...)
	}
	t.Notes = append(t.Notes,
		"expected shape: procedure-parallelism stays nearly flat in provider count terms and wins by a growing factor as sim_risk load rises; sequential and query-parallelism grow with providers × load (paper Figure 19)")
	return t, nil
}

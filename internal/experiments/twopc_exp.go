package experiments

import (
	"fmt"
	"os"
	"time"

	"reactdb/internal/bench"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/workload/smallbank"
)

// twoPCConfig is one point of the 2PC durability sweep.
type twoPCConfig struct {
	name     string
	group    bool
	window   time.Duration
	maxBatch int
}

// twoPCConfigs enumerates the sweep: eager per-record append+fsync on every
// participant log versus prepare/decision records routed through each
// container's group committer, across window × batch combinations.
func twoPCConfigs(opts Options) []twoPCConfig {
	windows := []time.Duration{200 * time.Microsecond, 1 * time.Millisecond}
	batches := []int{8, 32}
	if opts.Full {
		windows = []time.Duration{100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond}
		batches = []int{4, 16, 64}
	}
	cfgs := []twoPCConfig{{name: "eager", group: false}}
	for _, w := range windows {
		for _, b := range batches {
			cfgs = append(cfgs, twoPCConfig{
				name:     fmt.Sprintf("gc w=%v b=%d", w, b),
				group:    true,
				window:   w,
				maxBatch: b,
			})
		}
	}
	return cfgs
}

// TwoPC is the atomic-commit durability sweep: cross-container smallbank
// transfers (every transaction is a two-phase commit spanning both
// containers, forcing one prepare record per participant plus one
// coordinator decision record) under eager per-record fsync versus
// group-committed participant logging. It reports throughput next to the
// WALs' fsync amortization and the number of 2PC records that flushed
// through the group committers.
func TwoPC(opts Options) (*Table, error) {
	customers := 64
	workers := 8
	if opts.Full {
		customers = 256
		workers = 16
	}

	table := &Table{
		ID:    "twopc",
		Title: "2PC durability sweep: eager vs group-committed participant logging (2 containers)",
		Header: []string{"config", "throughput [txn/s]", "abort%", "txns/fsync",
			"2pc recs via gc", "fsync p99 [ms]"},
		Notes: []string{
			"every transaction is a cross-container transfer: 2 prepare records + 1 decision record per commit",
			"eager appends+fsyncs each record on its own; gc routes records through each container's group committer",
			"txns/fsync aggregates appends/fsyncs over both containers' WALs; '2pc recs via gc' sums GroupCommitStats.Records",
		},
	}

	for _, tc := range twoPCConfigs(opts) {
		row, err := runTwoPCPoint(opts, tc, customers, workers)
		if err != nil {
			return nil, fmt.Errorf("twopc point %s: %w", tc.name, err)
		}
		table.AddRow(row...)
	}
	return table, nil
}

func runTwoPCPoint(opts Options, tc twoPCConfig, customers, workers int) ([]string, error) {
	const containers = 2
	cfg := engine.Config{
		Containers:            containers,
		ExecutorsPerContainer: 2,
		Router:                engine.RouterAffinity,
		Costs:                 opts.commCosts(),
		// Even customers on container 0, odd on container 1, so every
		// even→odd transfer is a genuine multi-container transaction.
		Placement: func(reactor string) int {
			var id int
			fmt.Sscanf(reactor, "cust-%d", &id)
			return id % containers
		},
	}
	if tc.group {
		cfg.GroupCommit = engine.GroupCommitConfig{Enabled: true, Window: tc.window, MaxBatch: tc.maxBatch}
	}
	dir, err := os.MkdirTemp("", "reactdb-twopc-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg.Durability = engine.DurabilityConfig{Mode: engine.DurabilityWAL, Dir: dir}

	db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
		return nil, err
	}

	benchOpts := bench.Options{
		Workers:       workers,
		Epochs:        opts.epochs(),
		EpochDuration: opts.epochDuration(),
		Warmup:        50 * time.Millisecond,
	}
	result, err := bench.Run(db, benchOpts, func(worker int) bench.Generator {
		rng := randutil.New(int64(worker) + 1)
		return func() bench.Request {
			// Each worker owns a stripe of even source customers (distinct
			// write keys, so prepares batch freely); the destination is a
			// random odd customer on the other container.
			src := 2 * (worker + workers*randutil.UniformInt(rng, 0, customers/(2*workers)-1))
			dst := 2*randutil.UniformInt(rng, 0, customers/2-1) + 1
			return bench.Request{
				Reactor:   smallbank.ReactorName(src),
				Procedure: smallbank.ProcTransfer,
				Args:      []any{smallbank.ReactorName(src), smallbank.ReactorName(dst), 1.0, true},
			}
		}
	})
	if err != nil {
		return nil, err
	}

	tp, _ := result.Throughput()
	row := []string{tc.name, formatThroughput(tp), formatPercent(result.AbortRate())}
	var appends, fsyncs uint64
	fsyncP99 := "-"
	for _, ws := range db.WALStats() {
		if !ws.Enabled {
			continue
		}
		appends += ws.Appends
		fsyncs += ws.Fsyncs
		if ws.Fsyncs > 0 {
			fsyncP99 = fmt.Sprintf("%.3f", ws.FsyncLatency.Quantile(0.99)/1e6)
		}
	}
	txnsPerFsync := "-"
	if fsyncs > 0 {
		txnsPerFsync = fmt.Sprintf("%.1f", float64(appends)/float64(fsyncs))
	}
	var gcRecords uint64
	for _, gs := range db.GroupCommitStats() {
		gcRecords += gs.Records
	}
	recsCell := "-"
	if tc.group {
		recsCell = fmt.Sprintf("%d", gcRecords)
	}
	row = append(row, txnsPerFsync, recsCell, fsyncP99)
	return row, nil
}

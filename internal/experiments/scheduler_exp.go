package experiments

import (
	"fmt"
	"time"

	"reactdb/internal/bench"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/stats"
	"reactdb/internal/workload/smallbank"
)

// schedulerPoint is one configuration of the scheduler sweep.
type schedulerPoint struct {
	load     string // "uniform" | "zipf"
	steal    bool
	adaptive bool
	workers  int
}

func (p schedulerPoint) name() string {
	depth := "static"
	if p.adaptive {
		depth = "adaptive"
	}
	steal := "off"
	if p.steal {
		steal = "on"
	}
	return fmt.Sprintf("%s steal=%s depth=%s w=%d", p.load, steal, depth, p.workers)
}

// SchedulerBenchRow is the machine-readable record of one sweep point,
// written to BENCH_sched.json by `make bench-sched` so the perf trajectory of
// the scheduler is tracked across PRs.
type SchedulerBenchRow struct {
	// Name and NsPerOp feed the shared bench-history regression gate
	// (`make bench-sched-check`): Name keys the row across runs and NsPerOp
	// is the mean per-transaction cost (1e9 / throughput).
	Name              string  `json:"name"`
	NsPerOp           float64 `json:"ns_per_op"`
	Load              string  `json:"load"`
	Steal             bool    `json:"steal"`
	AdaptiveDepth     bool    `json:"adaptive_depth"`
	Workers           int     `json:"workers"`
	ThroughputTxnS    float64 `json:"throughput_txn_s"`
	QueueWaitP50Ms    float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms    float64 `json:"queue_wait_p99_ms"`
	TargetP99Ms       float64 `json:"target_p99_ms,omitempty"`
	Steals            int64   `json:"steals"`
	StealsPerTxn      float64 `json:"steals_per_txn"`
	AffinityMissRate  float64 `json:"affinity_miss_rate"`
	Rejected          int     `json:"rejected"`
	MinEffectiveDepth int     `json:"min_effective_depth"`
}

// SchedulerBench is the payload attached to the scheduler experiment's table
// for -json export.
type SchedulerBench struct {
	Experiment string              `json:"experiment"`
	Executors  int                 `json:"executors"`
	Customers  int                 `json:"customers"`
	ZipfTheta  float64             `json:"zipf_theta"`
	Rows       []SchedulerBenchRow `json:"rows"`
}

const (
	schedExecutors  = 4
	schedCustomers  = 64
	schedZipfTheta  = 1.2
	schedTargetP99  = 400 * time.Microsecond
	schedAdaptFloor = 2
)

// schedulerPoints enumerates the sweep: the steal ablation (skewed vs uniform
// Zipf load, stealing off vs on, static depth) at a moderate worker count,
// then the admission ablation (static vs adaptive depth under rising client
// pressure on the skewed load, stealing on) whose queue-wait p99 contrast is
// the acceptance evidence for the adaptive controller.
func schedulerPoints(opts Options) []schedulerPoint {
	stealWorkers := 16
	overload := []int{8, 32}
	if opts.Full {
		stealWorkers = 32
		overload = []int{8, 32, 64}
	}
	var pts []schedulerPoint
	for _, load := range []string{"uniform", "zipf"} {
		for _, steal := range []bool{false, true} {
			pts = append(pts, schedulerPoint{load: load, steal: steal, workers: stealWorkers})
		}
	}
	for _, w := range overload {
		for _, adaptive := range []bool{false, true} {
			pts = append(pts, schedulerPoint{load: "zipf", steal: true, adaptive: adaptive, workers: w})
		}
	}
	return pts
}

// RankedCustomers orders the smallbank reactor names by Zipf rank for a
// container with the given number of hash-affinity executors: clustered puts
// every name whose hash affinity is executor 0 first (then executor 1's, and
// so on), so the Zipf head lands on a single executor — the skew stealing
// repairs; balanced cycles ranks across the executors so uniform load stays
// uniform per executor. The scheduler sweep and BenchmarkSchedulerSkewedSteal
// share it so both measure the same skew construction.
func RankedCustomers(customers, executors int, clustered bool) []string {
	buckets := make([][]string, executors)
	for i := 0; i < customers; i++ {
		name := smallbank.ReactorName(i)
		e := engine.DefaultAffinity(name, executors)
		buckets[e] = append(buckets[e], name)
	}
	ranked := make([]string, 0, customers)
	if clustered {
		for _, b := range buckets {
			ranked = append(ranked, b...)
		}
		return ranked
	}
	for len(ranked) < customers {
		for e := 0; e < executors; e++ {
			if len(buckets[e]) > 0 {
				ranked = append(ranked, buckets[e][0])
				buckets[e] = buckets[e][1:]
			}
		}
	}
	return ranked
}

// Scheduler is the scheduler sweep: read-only smallbank balance checks with a
// modeled per-transaction processing cost on one container with four
// executors, swept over load skew × work stealing × static/adaptive depth.
// The table prints the series; the Machine payload carries the same rows for
// BENCH_sched.json.
func Scheduler(opts Options) (*Table, error) {
	table := &Table{
		ID:    "scheduler",
		Title: "Scheduler sweep: work stealing and adaptive admission (1 container x 4 executors)",
		Header: []string{"config", "throughput [txn/s]", "wait p50 [ms]", "wait p99 [ms]",
			"steals", "steals/txn", "miss rate", "rejected", "eff.depth"},
		Notes: []string{
			"zipf routes the Zipf head to one executor (hash-clustered ranks); uniform spreads ranks across executors",
			fmt.Sprintf("adaptive depth targets queue-wait p99 <= %v between floor %d and the static bound", schedTargetP99, schedAdaptFloor),
			"tasks use the hash-defaulted affinity, so steals are allowed and each migration is charged Costs.AffinityMiss",
		},
	}
	payload := &SchedulerBench{
		Experiment: "scheduler",
		Executors:  schedExecutors,
		Customers:  schedCustomers,
		ZipfTheta:  schedZipfTheta,
	}
	for _, pt := range schedulerPoints(opts) {
		row, rec, err := runSchedulerPoint(opts, pt)
		if err != nil {
			return nil, fmt.Errorf("scheduler point %s: %w", pt.name(), err)
		}
		table.AddRow(row...)
		payload.Rows = append(payload.Rows, rec)
	}
	table.Machine = payload
	return table, nil
}

func runSchedulerPoint(opts Options, pt schedulerPoint) ([]string, SchedulerBenchRow, error) {
	cfg := engine.NewSharedEverythingWithAffinity(schedExecutors)
	cfg.QueueDepth = 256
	cfg.Steal = engine.StealConfig{Enabled: pt.steal}
	if pt.adaptive {
		cfg.AdaptiveDepth = engine.AdaptiveDepthConfig{
			Enabled:   true,
			TargetP99: schedTargetP99,
			Floor:     schedAdaptFloor,
			Interval:  2 * time.Millisecond,
		}
	}
	cfg.Costs.Processing = 50 * time.Microsecond
	cfg.Costs.AffinityMiss = 10 * time.Microsecond

	db, err := engine.Open(smallbank.NewDefinition(schedCustomers), cfg)
	if err != nil {
		return nil, SchedulerBenchRow{}, err
	}
	defer db.Close()
	if err := smallbank.Load(db, schedCustomers, 1e9, 1e9); err != nil {
		return nil, SchedulerBenchRow{}, err
	}

	theta := 0.0
	if pt.load == "zipf" {
		theta = schedZipfTheta
	}
	ranked := RankedCustomers(schedCustomers, schedExecutors, pt.load == "zipf")
	benchOpts := bench.Options{
		Workers:       pt.workers,
		Epochs:        opts.epochs(),
		EpochDuration: opts.epochDuration(),
		Warmup:        50 * time.Millisecond,
	}
	result, err := bench.Run(db, benchOpts, func(worker int) bench.Generator {
		rng := randutil.New(int64(worker) + 1)
		zipf := randutil.NewZipfian(schedCustomers, theta)
		return func() bench.Request {
			return bench.Request{
				Reactor:   ranked[zipf.Next(rng)],
				Procedure: smallbank.ProcBalance,
			}
		}
	})
	if err != nil {
		return nil, SchedulerBenchRow{}, err
	}

	var (
		steals, misses, enqueued int64
		waits                    []stats.HistogramSnapshot
		minDepth                 = cfg.QueueDepth
	)
	for _, qs := range db.QueueStats() {
		steals += qs.Steals
		misses += qs.AffinityMisses
		enqueued += qs.Enqueued
		waits = append(waits, qs.Wait)
		if qs.MinEffectiveDepth < minDepth {
			minDepth = qs.MinEffectiveDepth
		}
	}
	wait := stats.MergeSnapshots(waits...)
	p50 := wait.Quantile(0.50) / 1e6
	p99 := wait.Quantile(0.99) / 1e6
	tp, _ := result.Throughput()
	committed := result.TotalCommitted()
	stealsPerTxn := 0.0
	missRate := 0.0
	if committed > 0 {
		stealsPerTxn = float64(steals) / float64(committed)
	}
	if enqueued > 0 {
		missRate = float64(misses) / float64(enqueued)
	}

	// Gate only the steal-ablation points: their throughput sits on the
	// modeled per-transaction cost ceiling, so ns/op is stable across runs
	// and machines. The overload/adaptive points measure queue dynamics under
	// saturation — real-time noise the 35% band cannot contain — so they keep
	// ns_per_op = 0 and the gate compares them trivially.
	nsPerOp := 0.0
	if tp > 0 && !pt.adaptive && pt.workers <= 16 {
		nsPerOp = 1e9 / tp
	}
	rec := SchedulerBenchRow{
		Name:              pt.name(),
		NsPerOp:           nsPerOp,
		Load:              pt.load,
		Steal:             pt.steal,
		AdaptiveDepth:     pt.adaptive,
		Workers:           pt.workers,
		ThroughputTxnS:    tp,
		QueueWaitP50Ms:    p50,
		QueueWaitP99Ms:    p99,
		Steals:            steals,
		StealsPerTxn:      stealsPerTxn,
		AffinityMissRate:  missRate,
		Rejected:          result.TotalRejected(),
		MinEffectiveDepth: minDepth,
	}
	if pt.adaptive {
		rec.TargetP99Ms = float64(schedTargetP99) / 1e6
	}
	row := []string{
		pt.name(),
		formatThroughput(tp),
		fmt.Sprintf("%.3f", p50),
		fmt.Sprintf("%.3f", p99),
		fmt.Sprintf("%d", steals),
		fmt.Sprintf("%.3f", stealsPerTxn),
		formatPercent(missRate),
		fmt.Sprintf("%d", result.TotalRejected()),
		fmt.Sprintf("%d", minDepth),
	}
	return row, rec, nil
}

package experiments

import (
	"fmt"
	"os"
	"time"

	"reactdb/internal/bench"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/workload/smallbank"
)

// durabilityConfig is one point of the durability sweep.
type durabilityConfig struct {
	name     string
	wal      bool
	group    bool
	window   time.Duration
	maxBatch int
}

// durabilityConfigs enumerates the sweep: the modeled log-write ablation
// versus the real WAL, each without group commit (one durable write per
// transaction) and with group commit across window × batch combinations.
func durabilityConfigs(opts Options) []durabilityConfig {
	windows := []time.Duration{200 * time.Microsecond, 1 * time.Millisecond}
	batches := []int{8, 32}
	if opts.Full {
		windows = []time.Duration{100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond}
		batches = []int{4, 16, 64}
	}
	cfgs := []durabilityConfig{
		{name: "modeled", wal: false, group: false},
		{name: "modeled+gc", wal: false, group: true, window: windows[0], maxBatch: batches[len(batches)-1]},
		{name: "wal", wal: true, group: false},
	}
	for _, w := range windows {
		for _, b := range batches {
			cfgs = append(cfgs, durabilityConfig{
				name:     fmt.Sprintf("wal+gc w=%v b=%d", w, b),
				wal:      true,
				group:    true,
				window:   w,
				maxBatch: b,
			})
		}
	}
	return cfgs
}

// Durability is the durability sweep: single-container smallbank deposits
// (pure updates on distinct customers, so group-commit batches form freely)
// under the modeled log-write ablation versus the real write-ahead log, with
// and without group commit. It reports throughput next to the WAL's fsync
// amortization: transactions per fsync, mean flushed batch size, and bytes
// made durable per fsync.
func Durability(opts Options) (*Table, error) {
	customers := 64
	workers := 8
	if opts.Full {
		customers = 512
		workers = 16
	}

	table := &Table{
		ID:    "durability",
		Title: "Durability sweep: modeled log write vs WAL group fsync (single container)",
		Header: []string{"config", "throughput [txn/s]", "abort%", "txns/fsync",
			"mean batch", "bytes/fsync", "fsync p99 [ms]"},
		Notes: []string{
			"modeled charges Costs.LogWrite as virtual-core work (the DurabilityModeled ablation); wal appends+fsyncs real segments",
			"txns/fsync and bytes/fsync come from the per-container WAL histograms; '-' where no WAL exists",
		},
	}

	for _, dc := range durabilityConfigs(opts) {
		row, err := runDurabilityPoint(opts, dc, customers, workers)
		if err != nil {
			return nil, fmt.Errorf("durability point %s: %w", dc.name, err)
		}
		table.AddRow(row...)
	}
	return table, nil
}

func runDurabilityPoint(opts Options, dc durabilityConfig, customers, workers int) ([]string, error) {
	cfg := engine.NewSharedEverythingWithAffinity(2)
	cfg.Costs = opts.commCosts()
	// The modeled ablation needs an explicit log-write cost to amortize;
	// under the WAL the real fsync replaces it.
	cfg.Costs.LogWrite = 100 * time.Microsecond
	if dc.group {
		cfg.GroupCommit = engine.GroupCommitConfig{Enabled: true, Window: dc.window, MaxBatch: dc.maxBatch}
	}
	if dc.wal {
		dir, err := os.MkdirTemp("", "reactdb-durability-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Durability = engine.DurabilityConfig{Mode: engine.DurabilityWAL, Dir: dir}
	}

	db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
		return nil, err
	}

	benchOpts := bench.Options{
		Workers:       workers,
		Epochs:        opts.epochs(),
		EpochDuration: opts.epochDuration(),
		Warmup:        50 * time.Millisecond,
	}
	result, err := bench.Run(db, benchOpts, func(worker int) bench.Generator {
		rng := randutil.New(int64(worker) + 1)
		return func() bench.Request {
			// Distinct-key updates: each worker owns a stripe of customers.
			id := worker + workers*randutil.UniformInt(rng, 0, customers/workers-1)
			return bench.Request{
				Reactor:   smallbank.ReactorName(id),
				Procedure: smallbank.ProcDepositChecking,
				Args:      []any{1.0},
			}
		}
	})
	if err != nil {
		return nil, err
	}

	tp, _ := result.Throughput()
	row := []string{dc.name, formatThroughput(tp), formatPercent(result.AbortRate())}
	txnsPerFsync, meanBatch, bytesPerFsync, fsyncP99 := "-", "-", "-", "-"
	if dc.wal {
		for _, ws := range db.WALStats() {
			if !ws.Enabled || ws.Fsyncs == 0 {
				continue
			}
			txnsPerFsync = fmt.Sprintf("%.1f", float64(ws.Appends)/float64(ws.Fsyncs))
			bytesPerFsync = fmt.Sprintf("%.0f", ws.BytesPerFlush.Mean())
			fsyncP99 = fmt.Sprintf("%.3f", ws.FsyncLatency.Quantile(0.99)/1e6)
		}
	}
	if dc.group {
		for _, gs := range db.GroupCommitStats() {
			if gs.Batches > 0 {
				meanBatch = fmt.Sprintf("%.1f", float64(gs.Txns)/float64(gs.Batches))
			}
		}
	}
	row = append(row, txnsPerFsync, meanBatch, bytesPerFsync, fsyncP99)
	return row, nil
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// The query sweep measures the declarative query layer on a synthetic
// customers → orders → lines star dataset: a three-way join whose
// intermediate sizes depend strongly on join order (the greedy-vs-naive
// ablation), and an equality lookup whose cost depends on the secondary index
// (the index on/off ablation). Fan-out is the number of orders per customer,
// so the naive declaration-order plan materializes fanout²-sized
// intermediates while greedy starts from the filtered customer leaf.

// QueryBenchRow is the machine-readable record of one sweep point, written to
// BENCH_query.json by `make bench-query`.
type QueryBenchRow struct {
	// Name and NsPerOp feed the shared bench-history regression gate
	// (`make bench-query-check`): Name keys the row across runs and NsPerOp
	// mirrors MicrosPerQ in the gate's unit.
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	Shape      string  `json:"shape"` // "join" | "point"
	Fanout     int     `json:"fanout"`
	Indexed    bool    `json:"indexed"`
	Planner    string  `json:"planner"` // "greedy" | "naive" | "-"
	RowsOut    int     `json:"rows_out"`
	MicrosPerQ float64 `json:"us_per_query"`
	JoinOrder  string  `json:"join_order,omitempty"`
	AccessPath string  `json:"access_path,omitempty"`
}

// QueryBench is the payload attached to the query experiment's table for
// -json export.
type QueryBench struct {
	Experiment string          `json:"experiment"`
	Customers  int             `json:"customers"`
	Targeted   int             `json:"targeted_customers"`
	LinesPer   int             `json:"lines_per_order"`
	Rows       []QueryBenchRow `json:"rows"`
}

const (
	queryTargeted = 4 // customers in the filtered region
	queryLinesPer = 4 // order lines per order
)

// queryDef declares the star dataset's single hub reactor, with or without
// the secondary indexes.
func queryDef(indexed bool) *core.DatabaseDef {
	custs := rel.MustSchema("custs",
		[]rel.Column{
			{Name: "cust_id", Type: rel.Int64},
			{Name: "region", Type: rel.String},
		}, "cust_id")
	orders := rel.MustSchema("orders",
		[]rel.Column{
			{Name: "order_id", Type: rel.Int64},
			{Name: "cust", Type: rel.Int64},
			{Name: "total", Type: rel.Float64},
		}, "order_id")
	lines := rel.MustSchema("lines",
		[]rel.Column{
			{Name: "line_id", Type: rel.Int64},
			{Name: "order_id", Type: rel.Int64},
			{Name: "qty", Type: rel.Int64},
		}, "line_id")
	if indexed {
		orders.MustAddIndex("by_cust", "cust")
		lines.MustAddIndex("by_order", "order_id")
	}
	t := core.NewType("Hub").AddRelation(custs).AddRelation(orders).AddRelation(lines)
	// Types must declare at least one procedure; the sweep itself only uses
	// the ad-hoc Database.Query entry point.
	t.AddProcedure("noop", func(ctx core.Context, args core.Args) (any, error) {
		return nil, nil
	})
	def := core.NewDatabaseDef().MustAddType(t)
	def.MustDeclareReactors("Hub", "hub-0")
	return def
}

// loadQueryData populates the star: customers round-robin over regions (the
// first queryTargeted land in the filtered region "r0"), fanout orders per
// customer, queryLinesPer lines per order.
func loadQueryData(db *engine.Database, customers, fanout int) error {
	regions := (customers + queryTargeted - 1) / queryTargeted
	orderID, lineID := int64(0), int64(0)
	for c := 0; c < customers; c++ {
		region := fmt.Sprintf("r%d", c%regions)
		if err := db.Load("hub-0", "custs", rel.Row{int64(c), region}); err != nil {
			return err
		}
		for o := 0; o < fanout; o++ {
			orderID++
			if err := db.Load("hub-0", "orders", rel.Row{orderID, int64(c), float64(orderID)}); err != nil {
				return err
			}
			for l := 0; l < queryLinesPer; l++ {
				lineID++
				if err := db.Load("hub-0", "lines", rel.Row{lineID, orderID, int64(l + 1)}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// joinQuery is the planner-sensitive shape: lines and customers are declared
// before the orders relation that connects them, so the naive left-deep plan
// starts with the disconnected lines × customers cross product while greedy's
// connectivity rule walks the join graph from the filtered customer leaf.
func joinQuery(naive bool) *rel.Query {
	q := rel.NewQuery().
		From("l", "lines", "hub-0").
		From("c", "custs", "hub-0").
		From("o", "orders", "hub-0").
		Join("o", "order_id", "l", "order_id").
		Join("c", "cust_id", "o", "cust").
		Where("c", "region", rel.Eq, "r0").
		Sum("l.qty", "qty").
		Count("n")
	if naive {
		q.Naive()
	}
	return q
}

// pointQuery is the index-sensitive shape: an equality lookup on orders.cust
// that runs through by_cust when declared and degrades to a full scan
// otherwise.
func pointQuery(cust int64) *rel.Query {
	return rel.NewQuery().
		From("o", "orders", "hub-0").
		Where("o", "cust", rel.Eq, cust).
		Sum("o.total", "total").
		Count("n")
}

// timeQuery runs the query repeatedly and returns the mean latency and the
// last result. It runs at least reps repetitions AND at least a fixed wall
// budget: microsecond-scale queries would otherwise finish the rep count in a
// jitter-dominated fraction of a scheduler quantum, making the bench-history
// regression gate flaky.
func timeQuery(db *engine.Database, q func() *rel.Query, reps int) (time.Duration, *rel.Result, error) {
	const minDuration = 25 * time.Millisecond
	// One warmup run outside the clock.
	res, err := db.Query(q())
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	n := 0
	for n < reps || time.Since(start) < minDuration {
		if res, err = db.Query(q()); err != nil {
			return 0, nil, err
		}
		n++
	}
	return time.Since(start) / time.Duration(n), res, nil
}

// Query is the query-layer sweep: join fan-out × secondary index on/off ×
// greedy vs naive planning over the star dataset. The join shape is the
// greedy-vs-naive evidence; the point shape is the indexed-vs-scan evidence.
func Query(opts Options) (*Table, error) {
	customers := 32
	fanouts := []int{4, 16}
	reps := 20
	if opts.Full {
		customers = 64
		fanouts = []int{4, 16, 64}
		reps = 50
	}

	table := &Table{
		ID:    "query",
		Title: "Declarative query sweep: join fan-out x secondary index x planner",
		Header: []string{"shape", "fanout", "index", "planner", "rows", "us/query",
			"join order", "access path"},
		Notes: []string{
			fmt.Sprintf("star dataset: %d customers (%d in the filtered region), fanout orders each, %d lines per order",
				customers, queryTargeted, queryLinesPer),
			"join sources declare lines and customers before the orders relation that connects them, so naive opens with their cross product",
			"point shape is the equality lookup orders.cust = k with and without the by_cust index",
		},
	}
	payload := &QueryBench{
		Experiment: "query",
		Customers:  customers,
		Targeted:   queryTargeted,
		LinesPer:   queryLinesPer,
	}

	addRow := func(r QueryBenchRow) {
		idx := "off"
		if r.Indexed {
			idx = "on"
		}
		r.Name = fmt.Sprintf("%s f=%d idx=%s %s", r.Shape, r.Fanout, idx, r.Planner)
		r.NsPerOp = r.MicrosPerQ * 1e3
		table.AddRow(r.Shape, fmt.Sprintf("%d", r.Fanout), idx, r.Planner,
			fmt.Sprintf("%d", r.RowsOut), fmt.Sprintf("%.1f", r.MicrosPerQ),
			r.JoinOrder, r.AccessPath)
		payload.Rows = append(payload.Rows, r)
	}

	for _, fanout := range fanouts {
		for _, indexed := range []bool{false, true} {
			db, err := engine.Open(queryDef(indexed), engine.NewSharedEverythingWithAffinity(1))
			if err != nil {
				return nil, err
			}
			if err := loadQueryData(db, customers, fanout); err != nil {
				db.Close()
				return nil, err
			}

			for _, naive := range []bool{false, true} {
				planner := "greedy"
				if naive {
					planner = "naive"
				}
				lat, res, err := timeQuery(db, func() *rel.Query { return joinQuery(naive) }, reps)
				if err != nil {
					db.Close()
					return nil, fmt.Errorf("join %s fanout=%d indexed=%v: %w", planner, fanout, indexed, err)
				}
				addRow(QueryBenchRow{
					Shape: "join", Fanout: fanout, Indexed: indexed, Planner: planner,
					RowsOut:    len(res.Rows),
					MicrosPerQ: float64(lat) / float64(time.Microsecond),
					JoinOrder:  strings.Join(res.JoinOrder, ","),
					AccessPath: res.AccessPaths["o"],
				})
			}

			lat, res, err := timeQuery(db, func() *rel.Query { return pointQuery(1) }, reps)
			if err != nil {
				db.Close()
				return nil, fmt.Errorf("point fanout=%d indexed=%v: %w", fanout, indexed, err)
			}
			addRow(QueryBenchRow{
				Shape: "point", Fanout: fanout, Indexed: indexed, Planner: "-",
				RowsOut:    len(res.Rows),
				MicrosPerQ: float64(lat) / float64(time.Microsecond),
				AccessPath: res.AccessPaths["o"],
			})
			db.Close()
		}
	}

	// Headline ratios at the largest fan-out, recorded as notes so the text
	// report carries the acceptance evidence alongside the raw rows.
	top := fanouts[len(fanouts)-1]
	var greedyUs, naiveUs, scanUs, indexUs float64
	for _, r := range payload.Rows {
		if r.Fanout != top {
			continue
		}
		switch {
		case r.Shape == "join" && r.Indexed && r.Planner == "greedy":
			greedyUs = r.MicrosPerQ
		case r.Shape == "join" && r.Indexed && r.Planner == "naive":
			naiveUs = r.MicrosPerQ
		case r.Shape == "point" && !r.Indexed:
			scanUs = r.MicrosPerQ
		case r.Shape == "point" && r.Indexed:
			indexUs = r.MicrosPerQ
		}
	}
	if greedyUs > 0 && naiveUs > 0 {
		table.Notes = append(table.Notes,
			fmt.Sprintf("fanout %d: greedy %.1fus vs naive %.1fus per join query (%.1fx)",
				top, greedyUs, naiveUs, naiveUs/greedyUs))
	}
	if scanUs > 0 && indexUs > 0 {
		table.Notes = append(table.Notes,
			fmt.Sprintf("fanout %d: indexed point lookup %.1fus vs full scan %.1fus (%.1fx)",
				top, indexUs, scanUs, scanUs/indexUs))
	}
	table.Machine = payload
	return table, nil
}

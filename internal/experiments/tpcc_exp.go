package experiments

import (
	"fmt"
	"math"
	"time"

	"reactdb/internal/bench"
	"reactdb/internal/core"
	"reactdb/internal/costmodel"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
	"reactdb/internal/workload/tpcc"
)

// tpccDeployment names a database architecture evaluated on TPC-C.
type tpccDeployment struct {
	name string
	cfg  func(executors int) engine.Config
}

func tpccDeployments() []tpccDeployment {
	return []tpccDeployment{
		{"shared-everything-without-affinity", engine.NewSharedEverythingWithoutAffinity},
		{"shared-nothing-async", engine.NewSharedNothing},
		{"shared-everything-with-affinity", engine.NewSharedEverythingWithAffinity},
	}
}

// openTPCC deploys a TPC-C database of the given scale factor under cfg.
func openTPCC(opts Options, cfg engine.Config, scale int) (*engine.Database, tpcc.Params, error) {
	params := tpcc.DefaultParams(scale)
	if !opts.Full {
		params.CustomersPerDistrict = 60
		params.Items = 200
	}
	cfg.Placement = tpcc.Placement
	cfg.Affinity = func(reactor string) int {
		if w := tpcc.WarehouseID(reactor); w > 0 {
			return w - 1
		}
		return 0
	}
	cfg.Costs = opts.loadCosts()
	db, err := engine.Open(tpcc.NewDefinition(params), cfg)
	if err != nil {
		return nil, params, err
	}
	if err := tpcc.Load(db, params); err != nil {
		db.Close()
		return nil, params, err
	}
	return db, params, nil
}

// runTPCC drives the database with the given number of client workers, each
// with affinity to warehouse (worker mod scale)+1.
func runTPCC(db *engine.Database, opts Options, params tpcc.Params, workers int, genCfg func(worker int) tpcc.GeneratorConfig) (throughput float64, latency time.Duration, abortRate float64, err error) {
	benchOpts := bench.Options{
		Workers:       workers,
		Epochs:        opts.epochs(),
		EpochDuration: opts.epochDuration(),
		Warmup:        50 * time.Millisecond,
	}
	result, err := bench.Run(db, benchOpts, func(worker int) bench.Generator {
		g := tpcc.NewGenerator(genCfg(worker))
		return func() bench.Request {
			req := g.Next()
			return bench.Request{Reactor: req.Reactor, Procedure: req.Procedure, Args: req.Args}
		}
	})
	if err != nil {
		return 0, 0, 0, err
	}
	tp, _ := result.Throughput()
	lat, _ := result.Latency()
	return tp, lat, result.AbortRate(), nil
}

func (o Options) tpccWorkerCounts() []int {
	if o.Full {
		return []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	return []int{1, 2, 4, 8}
}

// fig7and8 runs the §4.3.1 experiment once and produces both the throughput
// and latency tables.
func fig7and8(opts Options) (*Table, *Table, error) {
	const scale = 4
	throughputTable := &Table{
		ID:     "fig7",
		Title:  "TPC-C throughput [txn/s] with varying load at scale factor 4 (standard mix)",
		Header: []string{"workers"},
	}
	latencyTable := &Table{
		ID:     "fig8",
		Title:  "TPC-C avg latency [ms] with varying load at scale factor 4 (standard mix)",
		Header: []string{"workers"},
	}
	for _, d := range tpccDeployments() {
		throughputTable.Header = append(throughputTable.Header, d.name)
		latencyTable.Header = append(latencyTable.Header, d.name)
	}
	rowsTP := map[int][]string{}
	rowsLat := map[int][]string{}
	workerCounts := opts.tpccWorkerCounts()
	for _, w := range workerCounts {
		rowsTP[w] = []string{fmt.Sprintf("%d", w)}
		rowsLat[w] = []string{fmt.Sprintf("%d", w)}
	}
	for _, d := range tpccDeployments() {
		db, params, err := openTPCC(opts, d.cfg(scale), scale)
		if err != nil {
			return nil, nil, err
		}
		for _, workers := range workerCounts {
			tp, lat, _, err := runTPCC(db, opts, params, workers, func(worker int) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{
					Params:                   params,
					HomeWarehouse:            worker%scale + 1,
					Mix:                      tpcc.StandardMix(),
					RemoteItemProbability:    0.01,
					RemotePaymentProbability: 0.15,
					Seed:                     int64(worker + 1),
				}
			})
			if err != nil {
				db.Close()
				return nil, nil, err
			}
			rowsTP[workers] = append(rowsTP[workers], formatThroughput(tp))
			rowsLat[workers] = append(rowsLat[workers], formatDuration(lat))
		}
		db.Close()
	}
	for _, w := range workerCounts {
		throughputTable.AddRow(rowsTP[w]...)
		latencyTable.AddRow(rowsLat[w]...)
	}
	note := "expected shape: shared-everything-with-affinity best, shared-everything-without-affinity worst (paper Figures 7/8)"
	throughputTable.Notes = append(throughputTable.Notes, note)
	latencyTable.Notes = append(latencyTable.Notes, note)
	return throughputTable, latencyTable, nil
}

// Fig7 reproduces Figure 7 (TPC-C throughput under varying load).
func Fig7(opts Options) (*Table, error) {
	t, _, err := fig7and8(opts)
	return t, err
}

// Fig8 reproduces Figure 8 (TPC-C latency under varying load).
func Fig8(opts Options) (*Table, error) {
	_, t, err := fig7and8(opts)
	return t, err
}

// fig9and10 runs the §4.3.2 asynchronicity trade-off experiment: 100%
// new-order with an artificial 300–400µs stock replenishment delay and 100%
// remote item probability, scale factor 8.
func fig9and10(opts Options) (*Table, *Table, error) {
	const scale = 8
	deployments := []tpccDeployment{
		{"shared-nothing-async", engine.NewSharedNothing},
		{"shared-everything-with-affinity", engine.NewSharedEverythingWithAffinity},
	}
	throughputTable := &Table{
		ID:     "fig9",
		Title:  "Throughput [txn/s] of new-order-delay transactions with varying load (scale factor 8)",
		Header: []string{"workers"},
	}
	latencyTable := &Table{
		ID:     "fig10",
		Title:  "Avg latency [ms] of new-order-delay transactions with varying load (scale factor 8)",
		Header: []string{"workers"},
	}
	for _, d := range deployments {
		throughputTable.Header = append(throughputTable.Header, d.name)
		latencyTable.Header = append(latencyTable.Header, d.name)
	}
	workerCounts := opts.tpccWorkerCounts()
	rowsTP := map[int][]string{}
	rowsLat := map[int][]string{}
	for _, w := range workerCounts {
		rowsTP[w] = []string{fmt.Sprintf("%d", w)}
		rowsLat[w] = []string{fmt.Sprintf("%d", w)}
	}
	for _, d := range deployments {
		db, params, err := openTPCC(opts, d.cfg(scale), scale)
		if err != nil {
			return nil, nil, err
		}
		for _, workers := range workerCounts {
			tp, lat, _, err := runTPCC(db, opts, params, workers, func(worker int) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{
					Params:                 params,
					HomeWarehouse:          worker%scale + 1,
					Mix:                    tpcc.NewOrderOnlyMix(),
					RemoteItemProbability:  1.0,
					NewOrderDelayMinMicros: 300,
					NewOrderDelayMicros:    400,
					Seed:                   int64(worker + 1),
				}
			})
			if err != nil {
				db.Close()
				return nil, nil, err
			}
			rowsTP[workers] = append(rowsTP[workers], formatThroughput(tp))
			rowsLat[workers] = append(rowsLat[workers], formatDuration(lat))
		}
		db.Close()
	}
	for _, w := range workerCounts {
		throughputTable.AddRow(rowsTP[w]...)
		latencyTable.AddRow(rowsLat[w]...)
	}
	note := "expected shape: shared-nothing-async wins at low load (overlapped stock updates), shared-everything-with-affinity catches up or wins at high load (paper Figures 9/10)"
	throughputTable.Notes = append(throughputTable.Notes, note)
	latencyTable.Notes = append(latencyTable.Notes, note)
	return throughputTable, latencyTable, nil
}

// Fig9 reproduces Figure 9.
func Fig9(opts Options) (*Table, error) {
	t, _, err := fig9and10(opts)
	return t, err
}

// Fig10 reproduces Figure 10.
func Fig10(opts Options) (*Table, error) {
	_, t, err := fig9and10(opts)
	return t, err
}

// Tab1 reproduces Table 1 (Appendix D): TPC-C new-order performance at scale
// factor 4 under 1% and 100% cross-reactor access probability, with the cost
// model prediction for the single-worker latency.
func Tab1(opts Options) (*Table, error) {
	const scale = 4
	t := &Table{
		ID:     "tab1",
		Title:  "TPC-C new-order performance at scale factor 4 (observed vs. predicted)",
		Header: []string{"cross-reactor %", "workers", "TPS obs", "latency obs [ms]", "latency pred [ms]"},
	}
	db, params, err := openTPCC(opts, engine.NewSharedNothing(scale), scale)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	costs := db.Config().Costs
	cmParams := costmodel.Params{Cs: costs.Send, Cr: costs.Receive}

	// Calibrate the local processing cost of a new-order from a profiled run
	// with no remote accesses.
	calib, err := bench.MeasureProfiles(db, opts.profileCount(), newOrderGenerator(params, 1, 0, false))
	if err != nil {
		return nil, err
	}
	baseProcessing := calib.MeanSync

	for _, crossPct := range []float64{0.01, 1.0} {
		for _, workers := range []int{1, 4} {
			tp, lat, _, err := runTPCC(db, opts, params, workers, func(worker int) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{
					Params:                params,
					HomeWarehouse:         worker%scale + 1,
					Mix:                   tpcc.NewOrderOnlyMix(),
					RemoteItemProbability: crossPct,
					Seed:                  int64(worker + 1),
				}
			})
			if err != nil {
				return nil, err
			}
			pred := "-"
			if workers == 1 {
				// Expected distinct remote warehouses touched by one new-order
				// with 10 items on average and the given cross probability.
				expectedRemote := expectedDistinctRemote(10, scale-1, crossPct)
				root := &costmodel.SubTxn{Container: 0, Pseq: baseProcessing}
				for i := 0; i < expectedRemote; i++ {
					root.Async = append(root.Async, costmodel.Leaf(i+1, costs.Processing))
				}
				pc := costmodel.Predict(root, cmParams)
				pred = formatDuration(pc.Total() + calib.MeanCommit + costs.Processing + costs.AffinityMiss)
			}
			t.AddRow(fmt.Sprintf("%.0f", crossPct*100), fmt.Sprintf("%d", workers),
				formatThroughput(tp), formatDuration(lat), pred)
		}
	}
	t.Notes = append(t.Notes, "predictions apply to the single-worker rows only; multi-worker rows include queueing effects outside the cost model, as in the paper")
	return t, nil
}

// expectedDistinctRemote estimates the number of distinct remote warehouses
// touched by an order of n items when each item is remote with probability p
// and remote warehouses are chosen uniformly among w candidates.
func expectedDistinctRemote(n, w int, p float64) int {
	if w <= 0 || p <= 0 {
		return 0
	}
	expRemoteItems := p * float64(n)
	// Expected number of distinct bins hit by expRemoteItems balls over w bins.
	distinct := float64(w) * (1 - math.Pow(1-1.0/float64(w), expRemoteItems))
	if distinct < 0 {
		distinct = 0
	}
	result := int(distinct + 0.5)
	if result == 0 && p > 0 {
		result = 1
	}
	if result > w {
		result = w
	}
	return result
}

// newOrderGenerator returns a bench generator issuing new-order transactions
// for warehouse home with the given remote probability.
func newOrderGenerator(params tpcc.Params, home int, remoteProb float64, sync bool) bench.Generator {
	g := tpcc.NewGenerator(tpcc.GeneratorConfig{
		Params:                params,
		HomeWarehouse:         home,
		Mix:                   tpcc.NewOrderOnlyMix(),
		RemoteItemProbability: remoteProb,
		SyncStockUpdates:      sync,
		Seed:                  int64(home) * 17,
	})
	return func() bench.Request {
		req := g.NewOrder()
		return bench.Request{Reactor: req.Reactor, Procedure: req.Procedure, Args: req.Args}
	}
}

// fig15and16 runs the Appendix E experiment: 100% new-order at scale factor 8
// under peak load, varying the probability of cross-reactor item accesses,
// for four deployments (including shared-nothing-sync).
func fig15and16(opts Options) (*Table, *Table, error) {
	const scale = 8
	type deployment struct {
		name string
		cfg  func(int) engine.Config
		sync bool
	}
	deployments := []deployment{
		{"shared-everything-without-affinity", engine.NewSharedEverythingWithoutAffinity, false},
		{"shared-nothing-async", engine.NewSharedNothing, false},
		{"shared-everything-with-affinity", engine.NewSharedEverythingWithAffinity, false},
		{"shared-nothing-sync", engine.NewSharedNothing, true},
	}
	crossPcts := []float64{0, 0.1, 0.5, 1.0}
	if opts.Full {
		crossPcts = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 1.0}
	}
	throughputTable := &Table{
		ID:     "fig15",
		Title:  "Throughput [txn/s] of cross-reactor TPC-C new-order (scale factor 8, 8 workers)",
		Header: []string{"% cross-reactor"},
	}
	latencyTable := &Table{
		ID:     "fig16",
		Title:  "Avg latency [ms] of cross-reactor TPC-C new-order (scale factor 8, 8 workers)",
		Header: []string{"% cross-reactor"},
	}
	for _, d := range deployments {
		throughputTable.Header = append(throughputTable.Header, d.name)
		latencyTable.Header = append(latencyTable.Header, d.name)
	}
	rowsTP := map[float64][]string{}
	rowsLat := map[float64][]string{}
	for _, c := range crossPcts {
		rowsTP[c] = []string{fmt.Sprintf("%.0f", c*100)}
		rowsLat[c] = []string{fmt.Sprintf("%.0f", c*100)}
	}
	for _, d := range deployments {
		db, params, err := openTPCC(opts, d.cfg(scale), scale)
		if err != nil {
			return nil, nil, err
		}
		for _, cross := range crossPcts {
			tp, lat, _, err := runTPCC(db, opts, params, 8, func(worker int) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{
					Params:                params,
					HomeWarehouse:         worker%scale + 1,
					Mix:                   tpcc.NewOrderOnlyMix(),
					RemoteItemProbability: cross,
					SyncStockUpdates:      d.sync,
					Seed:                  int64(worker + 1),
				}
			})
			if err != nil {
				db.Close()
				return nil, nil, err
			}
			rowsTP[cross] = append(rowsTP[cross], formatThroughput(tp))
			rowsLat[cross] = append(rowsLat[cross], formatDuration(lat))
		}
		db.Close()
	}
	for _, c := range crossPcts {
		throughputTable.AddRow(rowsTP[c]...)
		latencyTable.AddRow(rowsLat[c]...)
	}
	note := "expected shape: shared-nothing deployments degrade as cross-reactor % grows, async degrades less than sync (paper Figures 15/16)"
	throughputTable.Notes = append(throughputTable.Notes, note)
	latencyTable.Notes = append(latencyTable.Notes, note)
	return throughputTable, latencyTable, nil
}

// Fig15 reproduces Figure 15.
func Fig15(opts Options) (*Table, error) {
	t, _, err := fig15and16(opts)
	return t, err
}

// Fig16 reproduces Figure 16.
func Fig16(opts Options) (*Table, error) {
	_, t, err := fig15and16(opts)
	return t, err
}

// fig17and18 runs the Appendix F.1 scale-up experiment: the standard TPC-C mix
// with as many executors and workers as warehouses.
func fig17and18(opts Options) (*Table, *Table, error) {
	scales := []int{1, 2, 4, 8}
	if opts.Full {
		scales = []int{1, 2, 4, 8, 16}
	}
	throughputTable := &Table{
		ID:     "fig17",
		Title:  "TPC-C throughput [txn/s] with varying deployments (scale-up, workers = warehouses)",
		Header: []string{"scale factor"},
	}
	latencyTable := &Table{
		ID:     "fig18",
		Title:  "TPC-C avg latency [ms] with varying deployments (scale-up, workers = warehouses)",
		Header: []string{"scale factor"},
	}
	for _, d := range tpccDeployments() {
		throughputTable.Header = append(throughputTable.Header, d.name)
		latencyTable.Header = append(latencyTable.Header, d.name)
	}
	rowsTP := map[int][]string{}
	rowsLat := map[int][]string{}
	for _, s := range scales {
		rowsTP[s] = []string{fmt.Sprintf("%d", s)}
		rowsLat[s] = []string{fmt.Sprintf("%d", s)}
	}
	for _, d := range tpccDeployments() {
		for _, scale := range scales {
			db, params, err := openTPCC(opts, d.cfg(scale), scale)
			if err != nil {
				return nil, nil, err
			}
			tp, lat, _, err := runTPCC(db, opts, params, scale, func(worker int) tpcc.GeneratorConfig {
				return tpcc.GeneratorConfig{
					Params:                   params,
					HomeWarehouse:            worker%scale + 1,
					Mix:                      tpcc.StandardMix(),
					RemoteItemProbability:    0.01,
					RemotePaymentProbability: 0.15,
					Seed:                     int64(worker + 1),
				}
			})
			db.Close()
			if err != nil {
				return nil, nil, err
			}
			rowsTP[scale] = append(rowsTP[scale], formatThroughput(tp))
			rowsLat[scale] = append(rowsLat[scale], formatDuration(lat))
		}
	}
	for _, s := range scales {
		throughputTable.AddRow(rowsTP[s]...)
		latencyTable.AddRow(rowsLat[s]...)
	}
	note := "expected shape: throughput grows with scale for affinity-preserving deployments; shared-everything-without-affinity scales worst (paper Figures 17/18); absolute scale-up is capped by the single host core"
	throughputTable.Notes = append(throughputTable.Notes, note)
	latencyTable.Notes = append(latencyTable.Notes, note)
	return throughputTable, latencyTable, nil
}

// Fig17 reproduces Figure 17.
func Fig17(opts Options) (*Table, error) {
	t, _, err := fig17and18(opts)
	return t, err
}

// Fig18 reproduces Figure 18.
func Fig18(opts Options) (*Table, error) {
	_, t, err := fig17and18(opts)
	return t, err
}

// Affinity reproduces the Appendix F.2 observation: keeping TPC-C at scale
// factor 1 with a single worker, adding executors to the
// shared-everything-without-affinity deployment destroys locality and lowers
// throughput relative to a single executor.
func Affinity(opts Options) (*Table, error) {
	executorCounts := []int{1, 2, 4, 8}
	if opts.Full {
		executorCounts = []int{1, 2, 4, 8, 16}
	}
	t := &Table{
		ID:     "affinity",
		Title:  "Effect of affinity: shared-everything-without-affinity throughput at scale factor 1, 1 worker",
		Header: []string{"executors", "throughput [txn/s]", "relative to 1 executor"},
	}
	var base float64
	for _, execs := range executorCounts {
		db, params, err := openTPCC(opts, engine.NewSharedEverythingWithoutAffinity(execs), 1)
		if err != nil {
			return nil, err
		}
		tp, _, _, err := runTPCC(db, opts, params, 1, func(worker int) tpcc.GeneratorConfig {
			return tpcc.GeneratorConfig{
				Params:                   params,
				HomeWarehouse:            1,
				Mix:                      tpcc.StandardMix(),
				RemoteItemProbability:    0.01,
				RemotePaymentProbability: 0.15,
				Seed:                     int64(execs),
			}
		})
		db.Close()
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = tp
		}
		rel := 1.0
		if base > 0 {
			rel = tp / base
		}
		t.AddRow(fmt.Sprintf("%d", execs), formatThroughput(tp), formatPercent(rel))
	}
	t.Notes = append(t.Notes, "expected shape: throughput degrades as executors are added without affinity (paper Appendix F.2: 86% at 2 executors down to 40% at 16)")
	return t, nil
}

// Overhead reproduces the Appendix F.3 measurement of containerization
// overhead: empty transactions with concurrency control disabled.
func Overhead(opts Options) (*Table, error) {
	schema := rel.MustSchema("noop", []rel.Column{{Name: "id", Type: rel.Int64}}, "id")
	typ := core.NewType("Empty").AddRelation(schema).
		AddProcedure("empty", func(ctx core.Context, args core.Args) (any, error) { return nil, nil })
	def := core.NewDatabaseDef().MustAddType(typ)
	def.MustDeclareReactors("Empty", "empty-0", "empty-1", "empty-2", "empty-3")

	t := &Table{
		ID:     "overhead",
		Title:  "Containerization overhead: empty transactions with concurrency control disabled",
		Header: []string{"containers", "avg overhead per invocation [ms]"},
	}
	for _, containers := range []int{1, 2, 4} {
		cfg := engine.NewSharedNothing(containers)
		cfg.DisableCC = true
		cfg.Costs = opts.loadCosts()
		db, err := engine.Open(def, cfg)
		if err != nil {
			return nil, err
		}
		n := 200
		if opts.Full {
			n = 2000
		}
		summary, err := bench.MeasureProfiles(db, n, func() bench.Request {
			return bench.Request{Reactor: "empty-1", Procedure: "empty"}
		})
		db.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", containers), formatDuration(summary.MeanTotal))
	}
	t.Notes = append(t.Notes, "the paper reports ~22µs per invocation, dominated by cross-core thread switching; here the overhead is the modeled per-request processing cost plus goroutine handoff")
	return t, nil
}

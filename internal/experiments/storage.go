// Storage hot-path sweep: measures the cost of the engine's read, scan and
// read-modify-write paths (per logical row operation, not per transaction)
// plus the raw storage stack (key encode -> index lookup -> OCC read) without
// row materialization. Results are recorded in BENCH_storage.json by
// `make bench-storage`; CI compares consecutive entries and fails on >20%
// ns/op or allocs/op regressions (see cmd/reactdb-bench -compare).
package experiments

import (
	"fmt"
	"testing"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/occ"
	"reactdb/internal/rel"
)

const (
	storageRows       = 4096
	storageReadsPerTx = 100
	storageRMWPerTx   = 10
	storageScanRows   = 1024
)

// storageKey returns a deterministic pseudorandom key id so every run touches
// the same key sequence.
func storageKey(i int) int64 {
	return int64((uint32(i) * 2654435761) % storageRows)
}

// StorageResult is one benchmark row of the storage sweep, normalized to the
// logical row operation (a single read, scanned row, or read-modify-write).
type StorageResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

func storageSchema() *rel.Schema {
	return rel.MustSchema("accounts",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "val", Type: rel.Int64}}, "id")
}

func storageType() *core.Type {
	t := core.NewType("BenchStore").AddRelation(storageSchema())

	t.AddProcedure("read_batch", func(ctx core.Context, args core.Args) (any, error) {
		start := int(args.Int64(0))
		var sum int64
		for i := 0; i < storageReadsPerTx; i++ {
			row, err := ctx.Get("accounts", storageKey(start+i))
			if err != nil {
				return nil, err
			}
			if row != nil {
				sum += row.Int64(1)
			}
		}
		return sum, nil
	})

	t.AddProcedure("rmw_batch", func(ctx core.Context, args core.Args) (any, error) {
		start := int(args.Int64(0))
		for i := 0; i < storageRMWPerTx; i++ {
			id := storageKey(start + i*7)
			row, err := ctx.Get("accounts", id)
			if err != nil {
				return nil, err
			}
			if row == nil {
				return nil, core.Abortf("missing row %d", id)
			}
			if err := ctx.Update("accounts", rel.Row{id, row.Int64(1) + 1}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})

	t.AddProcedure("scan_sum", func(ctx core.Context, args core.Args) (any, error) {
		var sum int64
		n := 0
		err := ctx.Scan("accounts", func(row rel.Row) bool {
			sum += row.Int64(1)
			n++
			return n < storageScanRows
		})
		return sum, err
	})

	return t
}

func storageDB() (*engine.Database, error) {
	def := core.NewDatabaseDef()
	def.MustAddType(storageType())
	def.MustDeclareReactor("store-0", "BenchStore")
	db, err := engine.Open(def, engine.Config{Containers: 1, ExecutorsPerContainer: 1})
	if err != nil {
		return nil, err
	}
	for i := 0; i < storageRows; i++ {
		if err := db.Load("store-0", "accounts", rel.Row{int64(i), int64(i) * 3}); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// storageResultOf normalizes a benchmark result to batch logical operations
// per iteration.
func storageResultOf(name string, res testing.BenchmarkResult, batch int) StorageResult {
	ns := float64(res.NsPerOp()) / float64(batch)
	out := StorageResult{
		Name:        name,
		NsPerOp:     ns,
		AllocsPerOp: float64(res.AllocsPerOp()) / float64(batch),
		BytesPerOp:  float64(res.AllocedBytesPerOp()) / float64(batch),
	}
	if ns > 0 {
		out.OpsPerSec = 1e9 / ns
	}
	return out
}

// benchStorageRaw measures the raw storage stack a transactional point read
// runs on — primary-key encode, B+tree lookup, OCC stable read with read-set
// bookkeeping — without decoding the row payload. This is the path the
// zero-allocation refactor pins at 0 allocs/op.
func benchStorageRaw() (StorageResult, error) {
	schema := storageSchema()
	tbl := rel.NewTable(schema)
	for i := 0; i < storageRows; i++ {
		if err := tbl.LoadRow(rel.Row{int64(i), int64(i) * 3}); err != nil {
			return StorageResult{}, err
		}
	}
	// Pre-boxed key values: boxing int64 arguments is the caller's cost and is
	// identical before and after the refactor.
	keyVals := make([]any, storageRows)
	for i := range keyVals {
		keyVals[i] = int64(i)
	}
	domain := occ.NewDomain("storage-bench")
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var scratch [16]byte
		kvBuf := make([]any, 1)
		txn := domain.Begin()
		for i := 0; i < b.N; i++ {
			if i%256 == 0 {
				txn.Release()
				txn = domain.Begin()
			}
			kvBuf[0] = keyVals[storageKey(i)]
			key, err := schema.AppendKeyPrefix(scratch[:0], kvBuf)
			if err != nil {
				benchErr = err
				return
			}
			rec := tbl.Get(key)
			if rec == nil {
				benchErr = fmt.Errorf("storage: missing key %d", storageKey(i))
				return
			}
			if _, _, err := txn.Read(rec); err != nil {
				benchErr = err
				return
			}
		}
		txn.Release()
	})
	if benchErr != nil {
		return StorageResult{}, benchErr
	}
	return storageResultOf("storage-point-read", res, 1), nil
}

// Storage runs the storage hot-path sweep.
func Storage(o Options) (*Table, error) {
	db, err := storageDB()
	if err != nil {
		return nil, err
	}
	defer db.Close()

	var results []StorageResult

	raw, err := benchStorageRaw()
	if err != nil {
		return nil, err
	}
	results = append(results, raw)

	type engineRow struct {
		name  string
		proc  string
		batch int
	}
	for _, r := range []engineRow{
		{"engine-hot-read", "read_batch", storageReadsPerTx},
		{"engine-scan", "scan_sum", storageScanRows},
		{"engine-rmw", "rmw_batch", storageRMWPerTx},
	} {
		r := r
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Execute("store-0", r.proc, int64(i)); err != nil {
					benchErr = err
					return
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("experiments: storage %s: %w", r.name, benchErr)
		}
		results = append(results, storageResultOf(r.name, res, r.batch))
	}

	table := &Table{
		ID:     "storage",
		Title:  "Storage hot path: ns, allocs and bytes per logical row operation",
		Header: []string{"path", "ns/op", "allocs/op", "B/op", "ops/s"},
		Notes: []string{
			"per-op = one logical row operation (point read, scanned row, or RMW), not one transaction",
			"storage-point-read is the raw key-encode + index-lookup + OCC-read stack without row decode",
		},
		Machine: results,
	}
	for _, r := range results {
		table.AddRow(r.Name,
			fmt.Sprintf("%.1f", r.NsPerOp),
			fmt.Sprintf("%.2f", r.AllocsPerOp),
			fmt.Sprintf("%.1f", r.BytesPerOp),
			formatThroughput(r.OpsPerSec))
	}
	return table, nil
}

package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/server"
	"reactdb/internal/stats"
	"reactdb/internal/wal"
	"reactdb/internal/workload/smallbank"
)

// serverPoint is one point of the clients × skew × routing mode sweep.
type serverPoint struct {
	mode    string // "inproc", "roundrobin", "aware"
	zipf    bool
	clients int
}

func (p serverPoint) name() string {
	skew := "uniform"
	if p.zipf {
		skew = "zipf"
	}
	return fmt.Sprintf("mode=%s skew=%s c=%d", p.mode, skew, p.clients)
}

// serverPoints enumerates the sweep: the in-process baseline prices the wire
// protocol itself, and the two wire policies price routing blindness against
// the lag/load hints.
func serverPoints(opts Options) []serverPoint {
	clients := []int{8}
	if opts.Full {
		clients = []int{8, 32}
	}
	var pts []serverPoint
	for _, c := range clients {
		for _, zipf := range []bool{false, true} {
			for _, mode := range []string{"inproc", "roundrobin", "aware"} {
				pts = append(pts, serverPoint{mode: mode, zipf: zipf, clients: c})
			}
		}
	}
	return pts
}

// ServerBenchRow is the machine-readable form of one sweep point. Name and
// NsPerOp follow the bench-history gate contract: NsPerOp is the mean
// wall-clock per operation (clients / throughput), so the dated history gates
// regressions instead of being trend-only. End-to-end latency over loopback
// TCP is noisy — kernel scheduling, replica poll timing — hence the gate runs
// with a wide regression band rather than the micro-bench default.
type ServerBenchRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	Mode          string  `json:"mode"`
	Skew          string  `json:"skew"`
	Clients       int     `json:"clients"`
	Throughput    float64 `json:"op_per_sec"`
	ReadP50Ms     float64 `json:"read_p50_ms"`
	ReadP99Ms     float64 `json:"read_p99_ms"`
	WriteP99Ms    float64 `json:"write_p99_ms"`
	MaxLagRecords uint64  `json:"max_lag_records"`
}

// ServerBench is the Machine payload for the network front-end sweep.
type ServerBench struct {
	Customers int              `json:"customers"`
	Rows      []ServerBenchRow `json:"rows"`
}

// Server sweeps the network front-end: a WAL primary with one fresh and one
// deliberately slow-polling replica, driven by a 90/10 read/write smallbank
// mix under uniform and zipfian key skew. The in-process mode executes the
// same mix directly on the primary (the floor every wire mode pays protocol
// overhead against); roundrobin rotates bounded reads blindly over all three
// endpoints, paying a Stale-retry round trip whenever the slow replica is
// picked while behind the freshness bound; aware consumes the piggybacked lag
// and queue hints to skip it. Under zipf skew the hot keys concentrate writes,
// the slow replica stays behind the bound nearly always, and the gap between
// the two policies' read p99 is the value of the hints.
func Server(opts Options) (*Table, error) {
	customers := 128
	if opts.Full {
		customers = 512
	}

	table := &Table{
		ID:    "server",
		Title: "Network front-end: wire vs in-process, routing policy x skew x clients",
		Header: []string{"config", "throughput [op/s]", "read p50 [ms]", "read p99 [ms]",
			"write p99 [ms]", "max lag [recs]"},
		Notes: []string{
			"topology: WAL primary + 1 fresh replica (100us poll) + 1 slow replica (250ms poll); 90/10 read/write mix, freshness bound 16 records",
			"inproc runs the same mix directly on the primary database: the wire modes' latency floor",
			"roundrobin pays an extra round trip to the primary whenever the slow replica answers Stale; aware routes around it using the piggybacked lag/load hints",
		},
	}
	payload := &ServerBench{Customers: customers}

	for _, pt := range serverPoints(opts) {
		row, err := runServerPoint(opts, pt, customers)
		if err != nil {
			return nil, fmt.Errorf("server point %s: %w", pt.name(), err)
		}
		payload.Rows = append(payload.Rows, row)
		table.AddRow(pt.name(), formatThroughput(row.Throughput),
			fmt.Sprintf("%.3f", row.ReadP50Ms), fmt.Sprintf("%.3f", row.ReadP99Ms),
			fmt.Sprintf("%.3f", row.WriteP99Ms), fmt.Sprintf("%d", row.MaxLagRecords))
	}
	table.Machine = payload
	return table, nil
}

// freshnessBound is the read freshness bound in records: far below the slow
// replica's between-poll backlog under load, comfortably above the fresh
// replica's.
const freshnessBound = 16

func runServerPoint(opts Options, pt serverPoint, customers int) (ServerBenchRow, error) {
	skew := "uniform"
	if pt.zipf {
		skew = "zipf"
	}
	row := ServerBenchRow{Name: pt.name(), Mode: pt.mode, Skew: skew, Clients: pt.clients}

	cfg := engine.NewSharedEverythingWithAffinity(2)
	cfg.Costs = opts.commCosts()
	cfg.GroupCommit = engine.GroupCommitConfig{Enabled: true, Window: 200 * time.Microsecond, MaxBatch: 32}
	cfg.Durability = engine.DurabilityConfig{Mode: engine.DurabilityWAL, Storage: wal.NewMemStorage()}

	db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
	if err != nil {
		return row, err
	}
	defer db.Close()
	if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
		return row, err
	}
	if err := db.Checkpoint(); err != nil {
		return row, err
	}

	freshRep, err := engine.OpenReplica(db, engine.ReplicaOptions{PollInterval: 100 * time.Microsecond})
	if err != nil {
		return row, err
	}
	defer freshRep.Close()
	slowRep, err := engine.OpenReplica(db, engine.ReplicaOptions{PollInterval: 250 * time.Millisecond})
	if err != nil {
		return row, err
	}
	defer slowRep.Close()
	for _, r := range []*engine.Replica{freshRep, slowRep} {
		if err := r.WaitCaughtUp(10 * time.Second); err != nil {
			return row, err
		}
	}

	// The wire modes stand up the full fleet and a shared router; inproc
	// executes directly on the primary (replicas stay attached so the write
	// path is identical across modes).
	type execFns struct {
		write func(reactor string) error
		read  func(reactor string) error
	}
	var fns execFns
	switch pt.mode {
	case "inproc":
		fns.write = func(reactor string) error {
			_, err := db.Execute(reactor, smallbank.ProcDepositChecking, 1.0)
			return err
		}
		fns.read = func(reactor string) error {
			_, err := db.Execute(reactor, smallbank.ProcBalance)
			return err
		}
	default:
		srvOpts := server.Options{HintRefresh: 500 * time.Microsecond}
		primary := server.NewPrimary(db, srvOpts)
		defer primary.Close()
		pAddr, err := primary.Start("127.0.0.1:0")
		if err != nil {
			return row, err
		}
		endpoints := []string{pAddr.String()}
		for _, rep := range []*engine.Replica{freshRep, slowRep} {
			rs := server.NewReplica(rep, srvOpts)
			defer rs.Close()
			rAddr, err := rs.Start("127.0.0.1:0")
			if err != nil {
				return row, err
			}
			endpoints = append(endpoints, rAddr.String())
		}
		policy := server.PolicyRoundRobin
		if pt.mode == "aware" {
			policy = server.PolicyAware
		}
		router, err := server.NewRouter(endpoints, server.RouterOptions{
			Policy:        policy,
			MaxLagRecords: freshnessBound,
		})
		if err != nil {
			return row, err
		}
		defer router.Close()
		fns.write = func(reactor string) error {
			_, err := router.Execute(reactor, smallbank.ProcDepositChecking, 1.0)
			return err
		}
		fns.read = func(reactor string) error {
			_, err := router.ExecuteRead(reactor, smallbank.ProcBalance)
			return err
		}
	}

	readHist := stats.NewHistogram(stats.DurationBounds())
	writeHist := stats.NewHistogram(stats.DurationBounds())
	var (
		stop      atomic.Bool
		recording atomic.Bool
		ops       atomic.Int64
		runErr    atomic.Value
		wg        sync.WaitGroup
	)
	for w := 0; w < pt.clients; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := randutil.New(int64(worker) + 1)
			zipf := randutil.NewZipfian(customers, 0.99)
			for i := 0; !stop.Load(); i++ {
				var id int
				if pt.zipf {
					id = zipf.Next(rng)
				} else {
					id = randutil.UniformInt(rng, 0, customers-1)
				}
				reactor := smallbank.ReactorName(id)
				isWrite := i%10 == 0
				begin := time.Now()
				var err error
				if isWrite {
					err = fns.write(reactor)
				} else {
					err = fns.read(reactor)
				}
				if err != nil {
					runErr.Store(err)
					return
				}
				if recording.Load() {
					if isWrite {
						writeHist.ObserveDuration(time.Since(begin))
					} else {
						readHist.ObserveDuration(time.Since(begin))
					}
					ops.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	recording.Store(true)
	measureStart := time.Now()
	time.Sleep(time.Duration(opts.epochs()) * opts.epochDuration())
	// Sample the slow replica's lag while writers still run — the steady-state
	// gap the freshness bound is protecting readers from.
	for _, sh := range slowRep.Stats().Shards {
		if sh.Lag > row.MaxLagRecords {
			row.MaxLagRecords = sh.Lag
		}
	}
	recording.Store(false)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()
	if err, _ := runErr.Load().(error); err != nil {
		return row, err
	}

	readSnap := readHist.Snapshot()
	row.Throughput = float64(ops.Load()) / elapsed.Seconds()
	if row.Throughput > 0 {
		// Mean wall-clock per op, the unit the bench-history gate compares.
		// Historical entries carry 0 here (trend-only era); the gate treats a
		// 0 -> measured transition as a new baseline, not a regression.
		row.NsPerOp = 1e9 / row.Throughput * float64(pt.clients)
	}
	row.ReadP50Ms = readSnap.Quantile(0.50) / 1e6
	row.ReadP99Ms = readSnap.Quantile(0.99) / 1e6
	row.WriteP99Ms = writeHist.Snapshot().Quantile(0.99) / 1e6
	return row, nil
}

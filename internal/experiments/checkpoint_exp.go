package experiments

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"reactdb/internal/bench"
	"reactdb/internal/engine"
	"reactdb/internal/randutil"
	"reactdb/internal/workload/smallbank"
)

// checkpointConfig is one point of the checkpoint sweep.
type checkpointConfig struct {
	name     string
	interval time.Duration // 0 disables the background checkpointer
}

// checkpointConfigs enumerates the sweep: no checkpointing (the log grows
// without bound and recovery replays all of history) against background
// checkpoint intervals from aggressive to relaxed.
func checkpointConfigs(opts Options) []checkpointConfig {
	intervals := []time.Duration{20 * time.Millisecond, 100 * time.Millisecond}
	if opts.Full {
		intervals = []time.Duration{10 * time.Millisecond, 50 * time.Millisecond, 250 * time.Millisecond}
	}
	cfgs := []checkpointConfig{{name: "off"}}
	for _, iv := range intervals {
		cfgs = append(cfgs, checkpointConfig{name: fmt.Sprintf("every %v", iv), interval: iv})
	}
	return cfgs
}

// Checkpoint is the checkpointing sweep: single-container smallbank deposits
// under the WAL with group commit, with the background checkpointer off
// versus running at several intervals. For each point it reports steady-state
// throughput (the checkpointer's quiesce and snapshot cost shows up here),
// the checkpoints taken and segments truncated, the log size left on disk at
// shutdown, and — after a cold reopen of the same directory — the wall-clock
// recovery time and the number of transactions replay had to re-apply.
// Checkpointing should leave both the on-disk log and the replayed suffix
// bounded (O(suffix)) where the no-checkpoint baseline grows with history.
func Checkpoint(opts Options) (*Table, error) {
	customers := 64
	workers := 8
	if opts.Full {
		customers = 512
		workers = 16
	}

	table := &Table{
		ID:    "checkpoint",
		Title: "Checkpoint sweep: log growth and recovery time vs checkpoint interval (single container)",
		Header: []string{"config", "throughput [txn/s]", "abort%", "ckpts",
			"segs deleted", "log KiB @close", "recover [ms]", "replayed txns"},
		Notes: []string{
			"WAL + group commit, 64 KiB segments; the background checkpointer snapshots catalogs and truncates segments below the low-water mark",
			"log KiB @close sums surviving segment files; recover reopens the directory cold and times Database.Recover",
			"'off' replays all of history; checkpointed runs replay only the suffix appended after the last checkpoint",
		},
	}

	for _, cc := range checkpointConfigs(opts) {
		row, err := runCheckpointPoint(opts, cc, customers, workers)
		if err != nil {
			return nil, fmt.Errorf("checkpoint point %s: %w", cc.name, err)
		}
		table.AddRow(row...)
	}
	return table, nil
}

func runCheckpointPoint(opts Options, cc checkpointConfig, customers, workers int) ([]string, error) {
	cfg := engine.NewSharedEverythingWithAffinity(2)
	cfg.Costs = opts.commCosts()
	cfg.GroupCommit = engine.GroupCommitConfig{Enabled: true, Window: 200 * time.Microsecond, MaxBatch: 32}
	dir, err := os.MkdirTemp("", "reactdb-checkpoint-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg.Durability = engine.DurabilityConfig{
		Mode:               engine.DurabilityWAL,
		Dir:                dir,
		SegmentSize:        64 << 10,
		CheckpointInterval: cc.interval,
	}

	db, err := engine.Open(smallbank.NewDefinition(customers), cfg)
	if err != nil {
		return nil, err
	}
	if err := smallbank.Load(db, customers, 1e9, 1e9); err != nil {
		db.Close()
		return nil, err
	}

	benchOpts := bench.Options{
		Workers:       workers,
		Epochs:        opts.epochs(),
		EpochDuration: opts.epochDuration(),
		Warmup:        50 * time.Millisecond,
	}
	result, err := bench.Run(db, benchOpts, func(worker int) bench.Generator {
		rng := randutil.New(int64(worker) + 1)
		return func() bench.Request {
			// Distinct-key updates: each worker owns a stripe of customers.
			id := worker + workers*randutil.UniformInt(rng, 0, customers/workers-1)
			return bench.Request{
				Reactor:   smallbank.ReactorName(id),
				Procedure: smallbank.ProcDepositChecking,
				Args:      []any{1.0},
			}
		}
	})
	if err != nil {
		db.Close()
		return nil, err
	}

	var ckpts, segsDeleted uint64
	for _, cs := range db.CheckpointStats() {
		ckpts += cs.Checkpoints
		segsDeleted += cs.SegmentsDeleted
	}
	db.Close()

	logBytes, err := dirSize(dir, ".wal")
	if err != nil {
		return nil, err
	}

	// Cold restart: recovery time is the figure of merit. Loaders must rerun
	// first only for the no-checkpoint baseline (a checkpoint captures the
	// loaded base data); rerun them everywhere for apples-to-apples timing.
	cfg2 := cfg
	cfg2.Durability.CheckpointInterval = 0
	db2, err := engine.Open(smallbank.NewDefinition(customers), cfg2)
	if err != nil {
		return nil, err
	}
	defer db2.Close()
	if err := smallbank.Load(db2, customers, 1e9, 1e9); err != nil {
		return nil, err
	}
	start := time.Now()
	replayed, err := db2.Recover()
	if err != nil {
		return nil, err
	}
	recoverMS := float64(time.Since(start)) / 1e6

	tp, _ := result.Throughput()
	return []string{
		cc.name,
		formatThroughput(tp),
		formatPercent(result.AbortRate()),
		fmt.Sprintf("%d", ckpts),
		fmt.Sprintf("%d", segsDeleted),
		fmt.Sprintf("%.0f", float64(logBytes)/1024),
		fmt.Sprintf("%.2f", recoverMS),
		fmt.Sprintf("%d", replayed),
	}, nil
}

// dirSize sums the sizes of files with the given extension under root.
func dirSize(root, ext string) (int64, error) {
	var total int64
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ext {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

package server

import (
	"fmt"

	"reactdb/internal/rel"
)

// The query codec serializes a built rel.Query component-by-component through
// its read accessors and rebuilds it on the far side with the same builder
// calls, so a wire query plans and executes exactly as its in-process
// counterpart would (including the Naive ablation switch). Filter values ride
// the value codec; a query holding a builder error is refused at encode time
// rather than shipped broken.

func appendQuery(dst []byte, q *rel.Query) ([]byte, error) {
	if err := q.Err(); err != nil {
		return nil, err
	}
	sources := q.Sources()
	dst = appendUvarint(dst, uint64(len(sources)))
	for _, s := range sources {
		dst = appendString(dst, s.Alias)
		dst = appendString(dst, s.Relation)
		dst = appendUvarint(dst, uint64(len(s.Reactors)))
		for _, rc := range s.Reactors {
			dst = appendString(dst, rc)
		}
	}
	filters := q.AllFilters()
	dst = appendUvarint(dst, uint64(len(filters)))
	var err error
	for _, f := range filters {
		dst = appendString(dst, f.Alias)
		dst = appendString(dst, f.Col)
		dst = append(dst, uint8(f.Op))
		if dst, err = appendValue(dst, f.Value); err != nil {
			return nil, fmt.Errorf("server: encode filter %s.%s: %w", f.Alias, f.Col, err)
		}
	}
	joins := q.Joins()
	dst = appendUvarint(dst, uint64(len(joins)))
	for _, j := range joins {
		dst = appendString(dst, j.LeftAlias)
		dst = appendString(dst, j.LeftCol)
		dst = appendString(dst, j.RightAlias)
		dst = appendString(dst, j.RightCol)
	}
	groupBy := q.GroupCols()
	dst = appendUvarint(dst, uint64(len(groupBy)))
	for _, c := range groupBy {
		dst = appendString(dst, c)
	}
	aggs := q.Aggregates()
	dst = appendUvarint(dst, uint64(len(aggs)))
	for _, a := range aggs {
		dst = append(dst, uint8(a.Func))
		dst = appendString(dst, a.Col)
		dst = appendString(dst, a.As)
	}
	project := q.Projection()
	dst = appendUvarint(dst, uint64(len(project)))
	for _, c := range project {
		dst = appendString(dst, c)
	}
	order := q.Ordering()
	dst = appendUvarint(dst, uint64(len(order)))
	for _, o := range order {
		dst = appendString(dst, o.Col)
		dst = appendBool(dst, o.Desc)
	}
	dst = appendUvarint(dst, uint64(q.LimitCount()))
	dst = appendBool(dst, q.IsNaive())
	return dst, nil
}

func (r *reader) query() *rel.Query {
	q := rel.NewQuery()
	nSources := int(r.uvarint())
	if r.err != nil || nSources > len(r.buf) {
		r.fail()
		return q
	}
	for i := 0; i < nSources; i++ {
		alias, relation := r.string(), r.string()
		nReactors := int(r.uvarint())
		if r.err != nil || nReactors > len(r.buf) {
			r.fail()
			return q
		}
		reactors := make([]string, nReactors)
		for j := range reactors {
			reactors[j] = r.string()
		}
		q.From(alias, relation, reactors...)
	}
	nFilters := int(r.uvarint())
	if r.err != nil || nFilters > len(r.buf) {
		r.fail()
		return q
	}
	for i := 0; i < nFilters; i++ {
		alias, col := r.string(), r.string()
		op := rel.CmpOp(r.byte())
		q.Where(alias, col, op, r.value())
	}
	nJoins := int(r.uvarint())
	if r.err != nil || nJoins > len(r.buf) {
		r.fail()
		return q
	}
	for i := 0; i < nJoins; i++ {
		q.Join(r.string(), r.string(), r.string(), r.string())
	}
	nGroup := int(r.uvarint())
	if r.err != nil || nGroup > len(r.buf) {
		r.fail()
		return q
	}
	for i := 0; i < nGroup; i++ {
		q.GroupBy(r.string())
	}
	nAggs := int(r.uvarint())
	if r.err != nil || nAggs > len(r.buf) {
		r.fail()
		return q
	}
	for i := 0; i < nAggs; i++ {
		fn := rel.AggFunc(r.byte())
		col, as := r.string(), r.string()
		switch fn {
		case rel.AggCount:
			q.Count(as)
		case rel.AggSum:
			q.Sum(col, as)
		case rel.AggMin:
			q.Min(col, as)
		case rel.AggMax:
			q.Max(col, as)
		case rel.AggAvg:
			q.Avg(col, as)
		default:
			r.fail()
			return q
		}
	}
	nProject := int(r.uvarint())
	if r.err != nil || nProject > len(r.buf) {
		r.fail()
		return q
	}
	for i := 0; i < nProject; i++ {
		q.Select(r.string())
	}
	nOrder := int(r.uvarint())
	if r.err != nil || nOrder > len(r.buf) {
		r.fail()
		return q
	}
	for i := 0; i < nOrder; i++ {
		col := r.string()
		q.OrderBy(col, r.bool())
	}
	if limit := int(r.uvarint()); limit > 0 {
		q.Limit(limit)
	}
	if r.bool() {
		q.Naive()
	}
	return q
}

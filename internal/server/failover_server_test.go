package server

import (
	"errors"
	"testing"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/wal"
)

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", timeout)
}

// TestConnRedialReconnect is the reconnect regression: a Conn with a redial
// policy survives its server restarting on the same address — requests issued
// while disconnected block until the background redial lands, then complete.
// A plain-Dial Conn on the same lifecycle stays dead, the documented
// zero-policy behavior.
func TestConnRedialReconnect(t *testing.T) {
	db := engine.MustOpen(kvDef(nil, "kv0"), walCfg())
	defer db.Close()

	s1 := NewPrimary(db, Options{})
	addr, err := s1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	c, err := DialRedial(addr.String(), RedialPolicy{
		Attempts: 100, Backoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	plain := dial(t, addr.String())

	if _, err := c.Execute("kv0", "put", int64(1), int64(10)); err != nil {
		t.Fatalf("put before restart: %v", err)
	}

	// Kill the server: both connections' sockets die. Restart on the same
	// address while the redial loop is already probing for it.
	s1.Close()
	s2 := NewPrimary(db, Options{})
	if _, err := s2.Start(addr.String()); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer s2.Close()

	// The redialing Conn recovers. A request racing the crash itself can
	// still fail (its frame died with the old socket, and the outcome of a
	// written frame is unknowable, so the Conn won't silently re-send it) —
	// but requests keep being accepted and soon run against the restarted
	// server instead of failing forever.
	waitCond(t, 10*time.Second, func() bool {
		v, err := c.Execute("kv0", "get", int64(1))
		got, ok := v.(int64)
		return err == nil && ok && got == 10
	})
	if c.Redials() == 0 {
		t.Fatalf("conn reports zero redials after a server restart")
	}

	// The plain Conn observed the same crash and is permanently dead.
	waitCond(t, 5*time.Second, func() bool {
		_, err := plain.Execute("kv0", "get", int64(1))
		return errors.Is(err, ErrConnClosed)
	})
	if _, err := plain.Execute("kv0", "get", int64(1)); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("plain conn error = %v, want ErrConnClosed", err)
	}
}

// TestRouterFailoverRedirect drives a planned failover under live wire
// traffic: the old primary's server answers NotPrimary once its engine is
// fenced, and the router rediscovers the promoted endpoint by epoch — the
// same Execute call that hit the deposed node lands on its successor. Hints
// carry the epoch that arbitrates the two nodes both claiming the primary
// role.
func TestRouterFailoverRedirect(t *testing.T) {
	db := engine.MustOpen(kvDef(nil, "kv0"), walCfg())
	defer db.Close()

	repA, err := engine.OpenReplica(db, engine.ReplicaOptions{Ack: engine.AckSemiSync, Storage: wal.NewMemStorage()})
	if err != nil {
		t.Fatalf("open repA: %v", err)
	}
	repB, err := engine.OpenReplica(db, engine.ReplicaOptions{Ack: engine.AckSemiSync, Storage: wal.NewMemStorage()})
	if err != nil {
		t.Fatalf("open repB: %v", err)
	}

	sp, pAddr := startPrimary(t, db, Options{})
	servers := map[*engine.Replica]*Server{}
	sa, aAddr := startReplica(t, repA, Options{})
	sb, bAddr := startReplica(t, repB, Options{})
	servers[repA], servers[repB] = sa, sb

	var promotedDB *engine.Database
	sup := engine.NewSupervisor(db, []*engine.Replica{repA, repB}, engine.SupervisorOptions{
		OnPromote: func(promoted *engine.Database, from *engine.Replica) {
			promotedDB = promoted
			sp.Promote(promoted) // the old primary's listener follows the cluster
			if rs := servers[from]; rs != nil {
				rs.Promote(promoted)
				delete(servers, from)
			}
		},
		OnRepoint: func(old, next *engine.Replica) {
			if rs := servers[old]; rs != nil {
				rs.Swap(next)
				delete(servers, old)
				servers[next] = rs
			}
		},
	})

	r, err := NewRouter([]string{pAddr, aAddr, bAddr}, RouterOptions{
		MaxRetries:   8,
		RetryBackoff: time.Millisecond,
		Redial:       RedialPolicy{Attempts: 50, Backoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	defer r.Close()

	if _, err := r.Execute("kv0", "put", int64(7), int64(70)); err != nil {
		t.Fatalf("put before failover: %v", err)
	}
	if err := repA.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatalf("repA catch-up: %v", err)
	}
	if err := repB.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatalf("repB catch-up: %v", err)
	}

	// Planned switchover: fence the live primary, promote the freshest
	// replica, re-point the survivor. Every listener stays up.
	if _, err := sup.Failover(); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if !db.Fenced() {
		t.Fatalf("old primary not fenced after failover")
	}

	// A direct write to the deposed node is refused with NotPrimary...
	deposed := dial(t, pAddr)
	// ...once its listener reports for the fenced engine: sp was promoted in
	// the hook, so probe through a dedicated primary-role check instead —
	// the wire answer for a fenced backend. sp now fronts the promoted
	// database, so it must accept writes.
	if _, err := deposed.Execute("kv0", "put", int64(8), int64(80)); err != nil {
		t.Fatalf("write via old primary listener (now fronting the promoted db): %v", err)
	}

	// The router's next write rediscovers by epoch and succeeds regardless of
	// which endpoint it was pointing at.
	if _, err := r.Execute("kv0", "put", int64(9), int64(90)); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
	h, err := r.Primary().Stats()
	if err != nil {
		t.Fatalf("stats on new primary: %v", err)
	}
	if h.Role != RolePrimary || h.Epoch != 1 {
		t.Fatalf("new primary hints = role %v epoch %d, want primary epoch 1", h.Role, h.Epoch)
	}
	if promotedDB == nil || promotedDB.Epoch() != 1 {
		t.Fatalf("promotion hook saw db epoch %v, want 1", promotedDB)
	}

	// Reads of pre- and post-failover writes both resolve through the router.
	for k, want := range map[int64]int64{7: 70, 8: 80, 9: 90} {
		waitCond(t, 10*time.Second, func() bool {
			v, err := r.ExecuteRead("kv0", "get", k)
			got, ok := v.(int64)
			return err == nil && ok && got == want
		})
	}
}

// TestServerFencedAnswersNotPrimary pins the wire status itself: a primary
// server whose engine database is fenced (deposed, but its listener not yet
// swapped — the zombie window) refuses execute and query with NotPrimary, and
// the client reconstructs ErrNotPrimary via errors.Is.
func TestServerFencedAnswersNotPrimary(t *testing.T) {
	db := engine.MustOpen(kvDef(nil, "kv0"), walCfg())
	defer db.Close()
	_, addr := startPrimary(t, db, Options{})
	c := dial(t, addr)

	if _, err := c.Execute("kv0", "put", int64(1), int64(1)); err != nil {
		t.Fatalf("put before fence: %v", err)
	}
	if err := db.Fence(1); err != nil {
		t.Fatalf("fence: %v", err)
	}
	if _, err := c.Execute("kv0", "put", int64(2), int64(2)); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("execute on fenced primary = %v, want ErrNotPrimary", err)
	}
	h, err := c.Stats()
	if err != nil {
		t.Fatalf("stats on fenced primary: %v", err)
	}
	if h.Role != RolePrimary {
		t.Fatalf("fenced primary still reports role %v in hints", h.Role)
	}
}

// TestReplicaHintsCarryErr: when a replica degrades (its mirror device
// fails), the wire hints surface both the degraded flag and the engine's
// lastErr explanation — satellite of the failover work: routers and operators
// see WHY a node fell out of the read set without a side channel.
func TestReplicaHintsCarryErr(t *testing.T) {
	db := engine.MustOpen(kvDef(nil, "kv0"), walCfg())
	defer db.Close()

	mirror := wal.NewMemStorage()
	rep, err := engine.OpenReplica(db, engine.ReplicaOptions{Ack: engine.AckSemiSync, Storage: mirror})
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	defer rep.Close()
	_, addr := startReplica(t, rep, Options{HintRefresh: time.Microsecond})
	c := dial(t, addr)

	h, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if h.Degraded || h.Err != "" {
		t.Fatalf("healthy replica hints = degraded %v err %q", h.Degraded, h.Err)
	}

	mirror.FailWrites(errors.New("mirror disk on fire"))
	if _, err := db.Execute("kv0", "put", int64(1), int64(1)); err != nil {
		t.Fatalf("primary put: %v", err)
	}
	waitCond(t, 10*time.Second, func() bool {
		h, err := c.Stats()
		return err == nil && h.Degraded && h.Err != ""
	})
	h, err = c.Stats()
	if err != nil {
		t.Fatalf("stats after degrade: %v", err)
	}
	if h.Err == "" || !h.Degraded {
		t.Fatalf("degraded replica hints = %+v, want Degraded with Err", h)
	}
}

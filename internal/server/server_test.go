package server

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/engine"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// kvType is the wire-test workload: a keyed store with a read procedure that
// returns a payload (so execute results cross the wire), a write procedure,
// and a gated procedure for overload tests.
func kvType(gate chan struct{}) *core.Type {
	schema := rel.MustSchema("store",
		[]rel.Column{{Name: "k", Type: rel.Int64}, {Name: "v", Type: rel.Int64}}, "k")
	t := core.NewType("KV").AddRelation(schema)
	t.AddProcedure("put", func(ctx core.Context, args core.Args) (any, error) {
		k, v := args.Int64(0), args.Int64(1)
		row, err := ctx.Get("store", k)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, ctx.Insert("store", rel.Row{k, v})
		}
		return nil, ctx.Update("store", rel.Row{k, v})
	})
	t.AddProcedure("get", func(ctx core.Context, args core.Args) (any, error) {
		row, err := ctx.Get("store", args.Int64(0))
		if err != nil || row == nil {
			return nil, err
		}
		return row.Int64(1), nil
	})
	t.AddProcedure("boom", func(ctx core.Context, args core.Args) (any, error) {
		return nil, core.Abortf("no key %d", args.Int64(0))
	})
	t.AddProcedure("wait", func(ctx core.Context, args core.Args) (any, error) {
		if gate != nil {
			<-gate
		}
		return nil, nil
	})
	return t
}

func kvDef(gate chan struct{}, reactors ...string) *core.DatabaseDef {
	def := core.NewDatabaseDef().MustAddType(kvType(gate))
	def.MustDeclareReactors("KV", reactors...)
	return def
}

func walCfg() engine.Config {
	return engine.Config{
		Containers:            1,
		ExecutorsPerContainer: 2,
		GroupCommit:           engine.GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 500 * time.Microsecond},
		Durability:            engine.DurabilityConfig{Mode: engine.DurabilityWAL, Storage: wal.NewMemStorage()},
	}
}

// startPrimary opens a primary on an ephemeral port and returns its address.
func startPrimary(t *testing.T, db *engine.Database, opts Options) (*Server, string) {
	t.Helper()
	s := NewPrimary(db, opts)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start primary server: %v", err)
	}
	t.Cleanup(s.Close)
	return s, addr.String()
}

func startReplica(t *testing.T, rep *engine.Replica, opts Options) (*Server, string) {
	t.Helper()
	s := NewReplica(rep, opts)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start replica server: %v", err)
	}
	t.Cleanup(s.Close)
	return s, addr.String()
}

func dial(t *testing.T, addr string) *Conn {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// --- codec unit tests --------------------------------------------------------

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameExecute, []byte("payload")); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	clean := append([]byte(nil), buf.Bytes()...)

	typ, body, err := readFrame(bytes.NewReader(clean))
	if err != nil || typ != frameExecute || string(body) != "payload" {
		t.Fatalf("clean frame = (%d, %q, %v), want (execute, payload, nil)", typ, body, err)
	}

	// Flip one payload byte: the CRC must catch it.
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)-1] ^= 0x40
	if _, _, err := readFrame(bytes.NewReader(corrupt)); !errors.Is(err, errCorruptFrame) {
		t.Fatalf("corrupted payload error = %v, want errCorruptFrame", err)
	}

	// Corrupt the length prefix to an absurd value: refused before allocating.
	huge := append([]byte(nil), clean...)
	huge[3] = 0xff
	if _, _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, errCorruptFrame) {
		t.Fatalf("huge length error = %v, want errCorruptFrame", err)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	values := []any{
		nil,
		int64(-42),
		7,
		3.25,
		"hello",
		true,
		false,
		[]byte{0, 1, 2},
		[]string{"a", "b"},
		rel.Row{int64(1), "x", 2.5},
		[]rel.Row{{int64(1)}, {int64(2), false}},
		[]any{int64(9), "mix", nil},
	}
	for _, v := range values {
		buf, err := appendValue(nil, v)
		if err != nil {
			t.Fatalf("encode %#v: %v", v, err)
		}
		r := &reader{buf: buf}
		got := r.value()
		if r.err != nil {
			t.Fatalf("decode %#v: %v", v, r.err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip %#v = %#v", v, got)
		}
	}
	if _, err := appendValue(nil, struct{}{}); err == nil {
		t.Fatalf("encoding an unsupported type should fail")
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	q := rel.NewQuery().
		From("o", "orders", "shop-1", "shop-2").
		From("c", "custs", "shop-1").
		Where("o", "branch", rel.Eq, "north").
		Where("o", "total", rel.Ge, 10.5).
		Join("o", "cust", "c", "cust_id").
		GroupBy("o.branch").
		Sum("o.total", "sum_total").
		Count("n").
		OrderBy("sum_total", true).
		Limit(3)
	buf, err := appendQuery(nil, q)
	if err != nil {
		t.Fatalf("appendQuery: %v", err)
	}
	r := &reader{buf: buf}
	got := r.query()
	if r.err != nil {
		t.Fatalf("decode query: %v", r.err)
	}
	if !reflect.DeepEqual(got.Sources(), q.Sources()) {
		t.Fatalf("sources = %#v, want %#v", got.Sources(), q.Sources())
	}
	if !reflect.DeepEqual(got.AllFilters(), q.AllFilters()) {
		t.Fatalf("filters = %#v, want %#v", got.AllFilters(), q.AllFilters())
	}
	if !reflect.DeepEqual(got.Joins(), q.Joins()) {
		t.Fatalf("joins = %#v, want %#v", got.Joins(), q.Joins())
	}
	if !reflect.DeepEqual(got.GroupCols(), q.GroupCols()) {
		t.Fatalf("group cols = %#v, want %#v", got.GroupCols(), q.GroupCols())
	}
	if !reflect.DeepEqual(got.Aggregates(), q.Aggregates()) {
		t.Fatalf("aggregates = %#v, want %#v", got.Aggregates(), q.Aggregates())
	}
	if !reflect.DeepEqual(got.Ordering(), q.Ordering()) {
		t.Fatalf("ordering = %#v, want %#v", got.Ordering(), q.Ordering())
	}
	if got.LimitCount() != q.LimitCount() || got.IsNaive() != q.IsNaive() {
		t.Fatalf("limit/naive = %d/%v, want %d/%v",
			got.LimitCount(), got.IsNaive(), q.LimitCount(), q.IsNaive())
	}

	// A query carrying a builder error must be refused at encode time.
	bad := rel.NewQuery().From("a", "t").From("a", "t") // duplicate alias
	if _, err := appendQuery(nil, bad); err == nil {
		t.Fatalf("encoding a broken query should fail")
	}
}

func TestResultMsgRoundTrip(t *testing.T) {
	m := resultMsg{
		ID:     42,
		Status: statusOK,
		Hints: LoadHints{
			Role:       RoleReplica,
			Degraded:   true,
			LagRecords: 17,
			Epoch:      3,
			Err:        "engine: replica: mirror write: disk on fire",
			Executors: []ExecutorHint{
				{Container: 0, Executor: 1, Depth: 3, InFlight: 2, EffectiveDepth: 8, WaitP99Micros: 950},
			},
		},
		Kind: payloadQuery,
		Result: &rel.Result{
			Columns:     []string{"k", "v"},
			Rows:        []rel.Row{{int64(1), "a"}, {int64(2), "b"}},
			JoinOrder:   []string{"s"},
			AccessPaths: map[string]string{"s": "scan"},
		},
	}
	buf, err := m.encode(nil)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeResultMsg(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got  %#v\n want %#v", got, m)
	}
}

// --- end-to-end tests --------------------------------------------------------

// TestWireMatchesInProcess is the differential check: the same operation
// sequence driven through the wire protocol and through Database.Execute/Query
// on an identically configured in-process instance must produce identical
// results — values, query results, and error text alike.
func TestWireMatchesInProcess(t *testing.T) {
	reactors := []string{"kv0", "kv1", "kv2"}
	wireDB := engine.MustOpen(kvDef(nil, reactors...), walCfg())
	defer wireDB.Close()
	localDB := engine.MustOpen(kvDef(nil, reactors...), walCfg())
	defer localDB.Close()

	_, addr := startPrimary(t, wireDB, Options{})
	conn := dial(t, addr)
	if conn.Role() != RolePrimary {
		t.Fatalf("hello role = %v, want primary", conn.Role())
	}

	type op struct {
		reactor, proc string
		args          []any
	}
	var ops []op
	for i := 0; i < 30; i++ {
		r := reactors[i%len(reactors)]
		ops = append(ops, op{r, "put", []any{int64(i % 7), int64(100 + i)}})
		ops = append(ops, op{r, "get", []any{int64(i % 7)}})
	}
	ops = append(ops,
		op{"kv1", "get", []any{int64(999)}},         // miss: nil result
		op{"kv2", "boom", []any{int64(5)}},          // application abort
		op{"kv0", "nosuch", []any{}},                // unknown procedure
		op{"nosuchreactor", "get", []any{int64(0)}}, // unknown reactor
	)

	for i, o := range ops {
		wv, werr := conn.Execute(o.reactor, o.proc, o.args...)
		lv, lerr := localDB.Execute(o.reactor, o.proc, o.args...)
		if (werr == nil) != (lerr == nil) {
			t.Fatalf("op %d %s/%s: wire err %v, local err %v", i, o.reactor, o.proc, werr, lerr)
		}
		if werr != nil && werr.Error() != lerr.Error() {
			t.Fatalf("op %d %s/%s: wire err %q, local err %q", i, o.reactor, o.proc, werr, lerr)
		}
		if !reflect.DeepEqual(wv, lv) {
			t.Fatalf("op %d %s/%s: wire value %#v, local value %#v", i, o.reactor, o.proc, wv, lv)
		}
	}

	q := func() *rel.Query {
		return rel.NewQuery().
			From("s", "store", reactors...).
			Where("s", "v", rel.Ge, int64(100)).
			Sum("s.v", "total").
			Count("n")
	}
	wres, werr := conn.Query(q())
	lres, lerr := localDB.Query(q())
	if werr != nil || lerr != nil {
		t.Fatalf("query: wire err %v, local err %v", werr, lerr)
	}
	if !reflect.DeepEqual(wres, lres) {
		t.Fatalf("query result mismatch:\n wire  %#v\n local %#v", wres, lres)
	}

	// Row-returning query: rows, planner diagnostics and all.
	q2 := func() *rel.Query {
		return rel.NewQuery().
			From("s", "store", reactors...).
			OrderBy("s.v", false).
			Limit(5)
	}
	wres2, werr := conn.Query(q2())
	lres2, lerr := localDB.Query(q2())
	if werr != nil || lerr != nil {
		t.Fatalf("query2: wire err %v, local err %v", werr, lerr)
	}
	if !reflect.DeepEqual(wres2, lres2) {
		t.Fatalf("query2 result mismatch:\n wire  %#v\n local %#v", wres2, lres2)
	}
}

// TestWireOverloadedIsRetryableStatus fills a fail-fast engine's only
// executor and floods it through one pipelined connection: rejections must
// come back as the Overloaded status — reconstructed as the exact
// engine.ErrOverloaded sentinel — and the connection must survive to serve
// requests afterwards.
func TestWireOverloadedIsRetryableStatus(t *testing.T) {
	gate := make(chan struct{})
	cfg := engine.Config{
		Containers:            1,
		ExecutorsPerContainer: 1,
		QueueDepth:            2,
		Admission:             engine.AdmissionFail,
	}
	db := engine.MustOpen(kvDef(gate, "kv0"), cfg)
	defer db.Close()

	_, addr := startPrimary(t, db, Options{MaxInFlight: 64})
	conn := dial(t, addr)

	const flood = 24
	errs := make(chan error, flood)
	for i := 0; i < flood; i++ {
		go func() {
			_, err := conn.Execute("kv0", "wait")
			errs <- err
		}()
	}

	var overloaded, completed int
	timeout := time.After(10 * time.Second)
	for i := 0; i < flood; i++ {
		select {
		case err := <-errs:
			switch {
			case err == nil:
				completed++
			case errors.Is(err, engine.ErrOverloaded):
				if err.Error() != engine.ErrOverloaded.Error() {
					t.Fatalf("overloaded error text %q, want the sentinel's %q", err, engine.ErrOverloaded)
				}
				overloaded++
			default:
				t.Fatalf("unexpected error: %v", err)
			}
			if gate != nil && overloaded > 0 {
				// Rejections observed while the gate still holds the
				// executor: release everything and drain.
				close(gate)
				gate = nil
			}
		case <-timeout:
			t.Fatalf("flood did not resolve: %d completed, %d overloaded", completed, overloaded)
		}
	}
	if gate != nil {
		close(gate)
	}
	if overloaded == 0 {
		t.Fatalf("no request came back Overloaded (%d completed)", completed)
	}

	// The session survived the rejections: a fresh request still works.
	if _, err := conn.Execute("kv0", "put", int64(1), int64(2)); err != nil {
		t.Fatalf("post-flood execute: %v", err)
	}
	v, err := conn.Execute("kv0", "get", int64(1))
	if err != nil || v != int64(2) {
		t.Fatalf("post-flood get = %v, %v; want 2", v, err)
	}
}

// laggedFixture opens a WAL primary with a caught-up-then-frozen replica: the
// replica bootstraps from a checkpoint and then never polls, so every
// subsequent primary commit widens its lag deterministically.
func laggedFixture(t *testing.T) (*engine.Database, *engine.Replica) {
	t.Helper()
	db := engine.MustOpen(kvDef(nil, "kv0"), walCfg())
	t.Cleanup(db.Close)
	for i := 0; i < 10; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(i)); err != nil {
			t.Fatalf("seed put %d: %v", i, err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	rep, err := engine.OpenReplica(db, engine.ReplicaOptions{PollInterval: time.Hour})
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	t.Cleanup(rep.Close)
	// Widen the lag: these commits are durable on the primary but the frozen
	// replica never applies them.
	for i := 0; i < 5; i++ {
		if _, err := db.Execute("kv0", "put", int64(100+i), int64(100+i)); err != nil {
			t.Fatalf("lag put %d: %v", i, err)
		}
	}
	return db, rep
}

// TestReplicaFreshnessBoundAndWriteRejection drives a frozen replica over the
// wire: an unbounded read serves the stale snapshot, a bounded read comes
// back Stale, and a write comes back as engine.ErrReplicaRead.
func TestReplicaFreshnessBoundAndWriteRejection(t *testing.T) {
	_, rep := laggedFixture(t)
	_, addr := startReplica(t, rep, Options{HintRefresh: time.Nanosecond})
	conn := dial(t, addr)
	if conn.Role() != RoleReplica {
		t.Fatalf("hello role = %v, want replica", conn.Role())
	}

	// Unbounded read: the checkpoint-era snapshot, not the primary's state.
	if v, err := conn.ExecuteFresh(0, "kv0", "get", int64(100)); err != nil || v != nil {
		t.Fatalf("unbounded stale read = %v, %v; want nil, nil", v, err)
	}
	// Bounded read: the replica is more than 1 record behind → Stale.
	if _, err := conn.ExecuteFresh(1, "kv0", "get", int64(100)); !errors.Is(err, ErrStale) {
		t.Fatalf("bounded read error = %v, want ErrStale", err)
	}
	// Writes are refused with the engine's sentinel.
	if _, err := conn.Execute("kv0", "put", int64(7), int64(7)); !errors.Is(err, engine.ErrReplicaRead) {
		t.Fatalf("replica write error = %v, want ErrReplicaRead", err)
	}
	// Hints carry the lag so a router can route around this replica.
	h, err := conn.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if h.Role != RoleReplica || h.LagRecords == 0 {
		t.Fatalf("hints = %+v, want replica role with nonzero lag", h)
	}
}

// TestFreshnessBoundIgnoresHintCache pins the freshness bound to the LIVE
// replica lag: with the hint cache frozen at lag=0 (HintRefresh so large it
// never expires), a write landing on the primary must make an immediately
// following bounded read answer Stale. An earlier version enforced the bound
// from the cached hint, so any bounded read within one refresh window of a
// write could serve data arbitrarily beyond the bound.
func TestFreshnessBoundIgnoresHintCache(t *testing.T) {
	db := engine.MustOpen(kvDef(nil, "kv0"), walCfg())
	t.Cleanup(db.Close)
	if _, err := db.Execute("kv0", "put", int64(1), int64(1)); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	rep, err := engine.OpenReplica(db, engine.ReplicaOptions{PollInterval: time.Hour})
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	t.Cleanup(rep.Close)
	if err := rep.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatalf("catch up: %v", err)
	}

	_, addr := startReplica(t, rep, Options{HintRefresh: time.Hour})
	conn := dial(t, addr)
	// Prime the hint cache while the replica is fully caught up: lag 0.
	h, err := conn.Stats()
	if err != nil || h.LagRecords != 0 {
		t.Fatalf("primed hints = %+v, %v; want zero lag", h, err)
	}
	// The replica (frozen poll) will not apply these; its true lag is now
	// nonzero while the served hint still says 0 for the next hour.
	for i := 0; i < 5; i++ {
		if _, err := db.Execute("kv0", "put", int64(10+i), int64(10+i)); err != nil {
			t.Fatalf("lag put %d: %v", i, err)
		}
	}
	if _, err := conn.ExecuteFresh(1, "kv0", "get", int64(10)); !errors.Is(err, ErrStale) {
		t.Fatalf("bounded read within hint window = %v, want ErrStale", err)
	}
	// The cached hint itself is allowed to stay stale — it is advisory.
	if h := conn.Hints(); h.LagRecords != 0 {
		t.Fatalf("cached hint lag = %d, want the stale 0", h.LagRecords)
	}
}

// TestRouterRoutesAroundLaggingReplica runs both policies against a primary,
// a fresh replica and a frozen replica: writes land on the primary, and every
// bounded read returns the freshest value no matter which endpoint was tried
// first — round-robin by paying the Stale-retry round trip, aware by skipping
// the lagging replica outright.
func TestRouterRoutesAroundLaggingReplica(t *testing.T) {
	db, frozen := laggedFixture(t)
	fresh, err := engine.OpenReplica(db, engine.ReplicaOptions{PollInterval: 100 * time.Microsecond})
	if err != nil {
		t.Fatalf("open fresh replica: %v", err)
	}
	t.Cleanup(fresh.Close)

	opts := Options{HintRefresh: time.Nanosecond}
	_, pAddr := startPrimary(t, db, opts)
	_, fAddr := startReplica(t, frozen, opts)
	_, rAddr := startReplica(t, fresh, opts)
	endpoints := []string{pAddr, fAddr, rAddr}

	for _, policy := range []Policy{PolicyRoundRobin, PolicyAware} {
		t.Run(policy.String(), func(t *testing.T) {
			router, err := NewRouter(endpoints, RouterOptions{Policy: policy, MaxLagRecords: 1})
			if err != nil {
				t.Fatalf("new router: %v", err)
			}
			defer router.Close()
			if len(router.Replicas()) != 2 {
				t.Fatalf("router found %d replicas, want 2", len(router.Replicas()))
			}

			// A write: must reach the primary regardless of policy.
			key := int64(500)
			if _, err := router.Execute("kv0", "put", key, int64(1234)); err != nil {
				t.Fatalf("router write: %v", err)
			}
			if err := fresh.WaitCaughtUp(10 * time.Second); err != nil {
				t.Fatalf("fresh replica catch-up: %v", err)
			}

			// Bounded reads across many attempts: the frozen replica is in the
			// rotation but must never leak its stale snapshot.
			for i := 0; i < 12; i++ {
				v, err := router.ExecuteRead("kv0", "get", key)
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if v != int64(1234) {
					t.Fatalf("read %d = %v, want 1234 (stale replica leaked through)", i, v)
				}
			}

			// The declarative path routes the same way.
			res, err := router.Query(rel.NewQuery().
				From("s", "store", "kv0").
				Where("s", "k", rel.Eq, key).
				Count("n"))
			if err != nil {
				t.Fatalf("router query: %v", err)
			}
			if got := res.Rows[0].Int64(0); got != 1 {
				t.Fatalf("router query count = %d, want 1", got)
			}
		})
	}
}

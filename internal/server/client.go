package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// ErrConnClosed is returned by requests on a closed or failed connection.
var ErrConnClosed = errors.New("server: connection closed")

// RedialPolicy bounds a Conn's automatic reconnection. The zero value
// disables it — a failed connection stays failed, matching plain Dial.
type RedialPolicy struct {
	// Attempts is how many consecutive dial failures are tolerated before the
	// Conn is declared permanently dead. Successful redials reset the count.
	Attempts int
	// Backoff is the wait before the first redial attempt, doubling per
	// failure (default 2ms when Attempts > 0).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 250ms).
	MaxBackoff time.Duration
}

func (p RedialPolicy) withDefaults() RedialPolicy {
	if p.Attempts > 0 {
		if p.Backoff <= 0 {
			p.Backoff = 2 * time.Millisecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = 250 * time.Millisecond
		}
	}
	return p
}

// Conn is one client connection to a server. It is safe for concurrent use:
// requests are pipelined on the single socket and matched to responses by
// request id, so many goroutines can share one Conn without head-of-line
// round-trips. Every response refreshes the connection's load hints.
//
// With a RedialPolicy (DialRedial), a broken socket is redialed in the
// background with bounded exponential backoff: requests in flight when the
// socket died still fail with ErrConnClosed (their outcome is unknowable —
// the server may or may not have executed them), but later requests block
// until the redial succeeds or the policy's attempt budget is exhausted, at
// which point the Conn is permanently dead.
type Conn struct {
	addr   string
	role   Role
	redial RedialPolicy

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when c changes or the Conn dies
	c       net.Conn   // nil while disconnected
	gen     uint64     // socket generation; guards double-teardown
	dialing bool
	pending map[uint64]chan resultMsg
	dead    error

	nextID  atomic.Uint64
	redials atomic.Uint64
	hints   atomic.Pointer[LoadHints]
}

// Dial connects to a server, performs the connect/hello handshake and starts
// the response reader. The connection does not recover from failures; see
// DialRedial.
func Dial(addr string) (*Conn, error) {
	return DialRedial(addr, RedialPolicy{})
}

// DialRedial is Dial with automatic reconnection under the given policy.
func DialRedial(addr string, policy RedialPolicy) (*Conn, error) {
	nc, role, err := dialSocket(addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		addr:    addr,
		role:    role,
		redial:  policy.withDefaults(),
		c:       nc,
		pending: make(map[uint64]chan resultMsg),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.readLoop(nc, c.gen)
	return c, nil
}

// dialSocket establishes one socket: TCP dial plus the connect/hello
// handshake.
func dialSocket(addr string) (net.Conn, Role, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, 0, err
	}
	if err := writeFrame(nc, frameConnect, appendUvarint(nil, protocolVersion)); err != nil {
		nc.Close()
		return nil, 0, err
	}
	typ, body, err := readFrame(nc)
	if err != nil {
		nc.Close()
		return nil, 0, err
	}
	if typ != frameHello || len(body) < 1 {
		nc.Close()
		return nil, 0, errCorruptFrame
	}
	return nc, Role(body[0]), nil
}

// Role reports the server's role from the most recent hello frame. After a
// failover the far end may have been promoted; the role in the piggybacked
// hints is the live signal, this is the handshake's snapshot.
func (c *Conn) Role() Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Addr reports the dialed address.
func (c *Conn) Addr() string { return c.addr }

// Redials reports how many times the connection has been successfully
// re-established.
func (c *Conn) Redials() uint64 { return c.redials.Load() }

// Hints returns the load hints piggybacked on the most recent response, or a
// zero value if none has arrived yet.
func (c *Conn) Hints() LoadHints {
	if h := c.hints.Load(); h != nil {
		return *h
	}
	return LoadHints{Role: c.Role()}
}

// Close tears down the connection permanently; in-flight requests fail with
// ErrConnClosed and no redial is attempted.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = ErrConnClosed
	}
	nc := c.c
	c.c = nil
	c.gen++
	pending := c.pending
	c.pending = make(map[uint64]chan resultMsg)
	c.cond.Broadcast()
	c.mu.Unlock()
	var err error
	if nc != nil {
		err = nc.Close()
	}
	for _, ch := range pending {
		close(ch)
	}
	return err
}

func (c *Conn) readLoop(nc net.Conn, gen uint64) {
	for {
		typ, body, err := readFrame(nc)
		if err != nil {
			c.dropSocket(nc, gen, fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		if typ != frameResult {
			continue
		}
		m, err := decodeResultMsg(body)
		if err != nil {
			c.dropSocket(nc, gen, fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		h := m.Hints
		c.hints.Store(&h)
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

// dropSocket tears down one broken socket generation: requests in flight on
// it fail (their frames are lost with it), and — under a redial policy — a
// background dial loop starts unless one is already running or the Conn is
// dead. A stale generation (the socket was already replaced or Close ran) is
// a no-op.
func (c *Conn) dropSocket(nc net.Conn, gen uint64, err error) {
	nc.Close()
	c.mu.Lock()
	if c.gen != gen || c.dead != nil {
		c.mu.Unlock()
		return
	}
	c.c = nil
	c.gen++
	pending := c.pending
	c.pending = make(map[uint64]chan resultMsg)
	if c.redial.Attempts <= 0 {
		c.dead = err
	} else if !c.dialing {
		c.dialing = true
		go c.redialLoop()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// redialLoop re-establishes the socket with bounded exponential backoff.
func (c *Conn) redialLoop() {
	backoff := c.redial.Backoff
	for attempt := 1; ; attempt++ {
		time.Sleep(backoff)
		c.mu.Lock()
		if c.dead != nil {
			c.dialing = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		nc, role, err := dialSocket(c.addr)
		if err == nil {
			c.mu.Lock()
			if c.dead != nil {
				c.mu.Unlock()
				nc.Close()
				return
			}
			c.role = role
			c.c = nc
			gen := c.gen
			c.dialing = false
			c.redials.Add(1)
			c.cond.Broadcast()
			c.mu.Unlock()
			go c.readLoop(nc, gen)
			return
		}
		if attempt >= c.redial.Attempts {
			c.mu.Lock()
			if c.dead == nil {
				c.dead = fmt.Errorf("%w: redial gave up after %d attempts: %v", ErrConnClosed, attempt, err)
			}
			c.dialing = false
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		if backoff *= 2; backoff > c.redial.MaxBackoff {
			backoff = c.redial.MaxBackoff
		}
	}
}

// socket blocks until a live socket is available (or returns the Conn's
// permanent error). Without a redial policy this never blocks: the socket is
// either live or the Conn is dead.
func (c *Conn) socket(id uint64, ch chan resultMsg) (net.Conn, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.dead != nil {
			return nil, 0, c.dead
		}
		if c.c != nil {
			c.pending[id] = ch
			return c.c, c.gen, nil
		}
		c.cond.Wait()
	}
}

func (c *Conn) roundTrip(typ uint8, id uint64, body []byte) (resultMsg, error) {
	ch := make(chan resultMsg, 1)
	nc, gen, err := c.socket(id, ch)
	if err != nil {
		return resultMsg{}, err
	}

	c.wmu.Lock()
	err = writeFrame(nc, typ, body)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.dropSocket(nc, gen, fmt.Errorf("%w: %v", ErrConnClosed, err))
		return resultMsg{}, fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	m, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.dead
		c.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return resultMsg{}, err
	}
	return m, nil
}

// Execute runs a procedure on the server and returns its result, exactly as
// engine.Database.Execute would in process.
func (c *Conn) Execute(reactor, procedure string, args ...any) (any, error) {
	return c.ExecuteFresh(0, reactor, procedure, args...)
}

// ExecuteFresh is Execute with a freshness bound: when the server is a replica
// whose lag exceeds maxLag records (or is degraded), it answers Stale without
// running and the call returns ErrStale. maxLag 0 means unbounded.
func (c *Conn) ExecuteFresh(maxLag uint64, reactor, procedure string, args ...any) (any, error) {
	req := executeReq{
		ID:            c.nextID.Add(1),
		MaxLagRecords: maxLag,
		Reactor:       reactor,
		Procedure:     procedure,
		Args:          args,
	}
	body, err := req.encode(make([]byte, 0, 128))
	if err != nil {
		return nil, err
	}
	m, err := c.roundTrip(frameExecute, req.ID, body)
	if err != nil {
		return nil, err
	}
	if err := statusErr(&m); err != nil {
		return nil, err
	}
	return m.Value, nil
}

// Query runs a declarative query on the server, exactly as
// engine.Database.Query would in process.
func (c *Conn) Query(q *rel.Query) (*rel.Result, error) {
	return c.QueryFresh(0, q)
}

// QueryFresh is Query with a freshness bound (see ExecuteFresh).
func (c *Conn) QueryFresh(maxLag uint64, q *rel.Query) (*rel.Result, error) {
	req := queryReq{ID: c.nextID.Add(1), MaxLagRecords: maxLag, Query: q}
	body, err := req.encode(make([]byte, 0, 128))
	if err != nil {
		return nil, err
	}
	m, err := c.roundTrip(frameQuery, req.ID, body)
	if err != nil {
		return nil, err
	}
	if err := statusErr(&m); err != nil {
		return nil, err
	}
	return m.Result, nil
}

// Stats fetches fresh load hints with an explicit stats frame (normal traffic
// gets them for free on every response).
func (c *Conn) Stats() (LoadHints, error) {
	id := c.nextID.Add(1)
	m, err := c.roundTrip(frameStats, id, appendUvarint(nil, id))
	if err != nil {
		return LoadHints{}, err
	}
	return m.Hints, nil
}

// statusErr maps a result's wire status back to an error. Statuses carrying a
// known sentinel reconstruct it so errors.Is works across the wire; when the
// server's message is exactly the sentinel's, the sentinel itself is returned
// so remote and in-process error text match.
func statusErr(m *resultMsg) error {
	switch m.Status {
	case statusOK:
		return nil
	case statusOverloaded:
		return sentinelOr(engine.ErrOverloaded, m.ErrMsg)
	case statusConflict:
		return sentinelOr(engine.ErrConflict, m.ErrMsg)
	case statusReplicaWrite:
		return sentinelOr(engine.ErrReplicaRead, m.ErrMsg)
	case statusStale:
		return sentinelOr(ErrStale, m.ErrMsg)
	case statusNotPrimary:
		return sentinelOr(ErrNotPrimary, m.ErrMsg)
	default:
		return errors.New(m.ErrMsg)
	}
}

func sentinelOr(sentinel error, msg string) error {
	if msg == "" || msg == sentinel.Error() {
		return sentinel
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

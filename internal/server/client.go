package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// ErrConnClosed is returned by requests on a closed or failed connection.
var ErrConnClosed = errors.New("server: connection closed")

// Conn is one client connection to a server. It is safe for concurrent use:
// requests are pipelined on the single socket and matched to responses by
// request id, so many goroutines can share one Conn without head-of-line
// round-trips. Every response refreshes the connection's load hints.
type Conn struct {
	addr string
	c    net.Conn
	role Role

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan resultMsg
	dead    error

	nextID atomic.Uint64
	hints  atomic.Pointer[LoadHints]
}

// Dial connects to a server, performs the connect/hello handshake and starts
// the response reader.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(nc, frameConnect, appendUvarint(nil, protocolVersion)); err != nil {
		nc.Close()
		return nil, err
	}
	typ, body, err := readFrame(nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if typ != frameHello || len(body) < 1 {
		nc.Close()
		return nil, errCorruptFrame
	}
	c := &Conn{
		addr:    addr,
		c:       nc,
		role:    Role(body[0]),
		pending: make(map[uint64]chan resultMsg),
	}
	go c.readLoop()
	return c, nil
}

// Role reports the server's role from the hello frame.
func (c *Conn) Role() Role { return c.role }

// Addr reports the dialed address.
func (c *Conn) Addr() string { return c.addr }

// Hints returns the load hints piggybacked on the most recent response, or a
// zero value if none has arrived yet.
func (c *Conn) Hints() LoadHints {
	if h := c.hints.Load(); h != nil {
		return *h
	}
	return LoadHints{Role: c.role}
}

// Close tears down the connection; in-flight requests fail with ErrConnClosed.
func (c *Conn) Close() error {
	err := c.c.Close()
	c.failAll(ErrConnClosed)
	return err
}

func (c *Conn) readLoop() {
	for {
		typ, body, err := readFrame(c.c)
		if err != nil {
			c.c.Close()
			c.failAll(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		if typ != frameResult {
			continue
		}
		m, err := decodeResultMsg(body)
		if err != nil {
			c.c.Close()
			c.failAll(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		h := m.Hints
		c.hints.Store(&h)
		c.mu.Lock()
		ch, ok := c.pending[m.ID]
		if ok {
			delete(c.pending, m.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- m
		}
	}
}

func (c *Conn) failAll(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan resultMsg)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

func (c *Conn) roundTrip(typ uint8, id uint64, body []byte) (resultMsg, error) {
	ch := make(chan resultMsg, 1)
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return resultMsg{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.c, typ, body)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return resultMsg{}, fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	m, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.dead
		c.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return resultMsg{}, err
	}
	return m, nil
}

// Execute runs a procedure on the server and returns its result, exactly as
// engine.Database.Execute would in process.
func (c *Conn) Execute(reactor, procedure string, args ...any) (any, error) {
	return c.ExecuteFresh(0, reactor, procedure, args...)
}

// ExecuteFresh is Execute with a freshness bound: when the server is a replica
// whose lag exceeds maxLag records (or is degraded), it answers Stale without
// running and the call returns ErrStale. maxLag 0 means unbounded.
func (c *Conn) ExecuteFresh(maxLag uint64, reactor, procedure string, args ...any) (any, error) {
	req := executeReq{
		ID:            c.nextID.Add(1),
		MaxLagRecords: maxLag,
		Reactor:       reactor,
		Procedure:     procedure,
		Args:          args,
	}
	body, err := req.encode(make([]byte, 0, 128))
	if err != nil {
		return nil, err
	}
	m, err := c.roundTrip(frameExecute, req.ID, body)
	if err != nil {
		return nil, err
	}
	if err := statusErr(&m); err != nil {
		return nil, err
	}
	return m.Value, nil
}

// Query runs a declarative query on the server, exactly as
// engine.Database.Query would in process.
func (c *Conn) Query(q *rel.Query) (*rel.Result, error) {
	return c.QueryFresh(0, q)
}

// QueryFresh is Query with a freshness bound (see ExecuteFresh).
func (c *Conn) QueryFresh(maxLag uint64, q *rel.Query) (*rel.Result, error) {
	req := queryReq{ID: c.nextID.Add(1), MaxLagRecords: maxLag, Query: q}
	body, err := req.encode(make([]byte, 0, 128))
	if err != nil {
		return nil, err
	}
	m, err := c.roundTrip(frameQuery, req.ID, body)
	if err != nil {
		return nil, err
	}
	if err := statusErr(&m); err != nil {
		return nil, err
	}
	return m.Result, nil
}

// Stats fetches fresh load hints with an explicit stats frame (normal traffic
// gets them for free on every response).
func (c *Conn) Stats() (LoadHints, error) {
	id := c.nextID.Add(1)
	m, err := c.roundTrip(frameStats, id, appendUvarint(nil, id))
	if err != nil {
		return LoadHints{}, err
	}
	return m.Hints, nil
}

// statusErr maps a result's wire status back to an error. Statuses carrying a
// known sentinel reconstruct it so errors.Is works across the wire; when the
// server's message is exactly the sentinel's, the sentinel itself is returned
// so remote and in-process error text match.
func statusErr(m *resultMsg) error {
	switch m.Status {
	case statusOK:
		return nil
	case statusOverloaded:
		return sentinelOr(engine.ErrOverloaded, m.ErrMsg)
	case statusConflict:
		return sentinelOr(engine.ErrConflict, m.ErrMsg)
	case statusReplicaWrite:
		return sentinelOr(engine.ErrReplicaRead, m.ErrMsg)
	case statusStale:
		return sentinelOr(ErrStale, m.ErrMsg)
	default:
		return errors.New(m.ErrMsg)
	}
}

func sentinelOr(sentinel error, msg string) error {
	if msg == "" || msg == sentinel.Error() {
		return sentinel
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

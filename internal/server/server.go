package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// Options tune a Server. The zero value is usable.
type Options struct {
	// MaxInFlight is the per-session pipelining window: how many requests a
	// connection may have outstanding before the server stops reading its
	// socket (default 64). Stalling the read is the transport-level
	// backpressure; the engine's admission gate is the transaction-level one,
	// surfaced as the Overloaded status rather than a dropped connection.
	MaxInFlight int
	// HintRefresh is the minimum interval between load-hint collections
	// (default 2ms): hints are piggybacked on every response but collected at
	// most this often, so a hot server does not pay a stats snapshot per
	// request.
	HintRefresh time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.HintRefresh <= 0 {
		o.HintRefresh = 2 * time.Millisecond
	}
	return o
}

// backend is the engine node a Server currently speaks for. It is immutable
// once built; a failover swaps the whole backend atomically (Promote), so a
// request observes one coherent node, never a half-switched one.
type backend struct {
	role    Role
	exec    func(reactor, procedure string, args ...any) (any, error)
	query   func(q *rel.Query) (*rel.Result, error)
	loads   func() []engine.ExecutorLoad
	lag     func() (lag uint64, degraded bool)
	epoch   func() uint64
	fenced  func() bool
	lastErr func() string
}

// deposed reports that this node claims the primary role but has been fenced
// by a newer epoch: a supervisor promoted a replica over it. It must not serve
// anything — writes would be rejected by the WAL fence anyway (losing the
// race is not an option, the fence is the guarantee), and reads could miss
// every commit acknowledged by its successor. Both are answered NotPrimary so
// the router re-points.
func (b *backend) deposed() bool {
	return b.role == RolePrimary && b.fenced != nil && b.fenced()
}

// Server exposes one engine node — a primary Database or a Replica — on the
// wire protocol. A process typically runs one Server per node it hosts, each
// on its own listener. The node behind a Server can be swapped at runtime
// (Promote): after a supervised failover the listener and its client
// connections survive, only the engine underneath changes.
type Server struct {
	backend atomic.Pointer[backend]
	opts    Options

	hintMu sync.Mutex
	hintAt time.Time
	hint   LoadHints

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

func primaryBackend(db *engine.Database) *backend {
	return &backend{
		role:   RolePrimary,
		exec:   db.Execute,
		query:  db.Query,
		loads:  db.ExecutorLoads,
		epoch:  db.Epoch,
		fenced: db.Fenced,
	}
}

func replicaBackend(rep *engine.Replica) *backend {
	return &backend{
		role:  RoleReplica,
		exec:  rep.Execute,
		query: rep.Query,
		loads: rep.Database().ExecutorLoads,
		epoch: rep.Database().Epoch,
		lag: func() (uint64, bool) {
			st := rep.Stats()
			var lag uint64
			for _, sh := range st.Shards {
				if sh.Lag > lag {
					lag = sh.Lag
				}
			}
			return lag, st.Degraded
		},
		lastErr: func() string { return rep.Stats().Err },
	}
}

// NewPrimary wraps a primary database.
func NewPrimary(db *engine.Database, opts Options) *Server {
	s := &Server{opts: opts.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.backend.Store(primaryBackend(db))
	return s
}

// NewReplica wraps a read-only replica. Its hints carry the replica's
// corrected lag, degraded flag and last replication error; execute and query
// frames with a freshness bound the replica cannot meet are answered with the
// Stale status without running.
func NewReplica(rep *engine.Replica, opts Options) *Server {
	s := &Server{opts: opts.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.backend.Store(replicaBackend(rep))
	return s
}

// Promote swaps the server's backend to a (newly promoted) primary database.
// Existing sessions keep their sockets: in-flight requests finish against
// whichever backend they started on, later ones run against the new primary.
// This is the supervisor's OnPromote hook — the replica this server used to
// wrap was consumed by the promotion, and the listener now fronts its
// successor.
func (s *Server) Promote(db *engine.Database) {
	s.backend.Store(primaryBackend(db))
	s.hintMu.Lock()
	s.hintAt = time.Time{} // the cached hints describe the deposed backend
	s.hintMu.Unlock()
}

// Swap points the server at a different replica, the re-point analog of
// Promote for replica-role servers whose engine replica was re-attached to a
// new primary (re-attachment closes the old Replica and returns a new one).
func (s *Server) Swap(rep *engine.Replica) {
	s.backend.Store(replicaBackend(rep))
	s.hintMu.Lock()
	s.hintAt = time.Time{}
	s.hintMu.Unlock()
}

// Start listens on addr ("host:port", ":0" for an ephemeral port) and serves
// in the background, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = s.Serve(lis) }()
	return lis.Addr(), nil
}

// Serve accepts sessions on lis until the listener fails or the server is
// closed. It returns nil on Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: closed")
	}
	s.listeners = append(s.listeners, lis)
	s.mu.Unlock()
	for {
		c, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.session(c)
	}
}

// Close stops the listeners, closes every session and waits for their
// in-flight requests to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, lis := range s.listeners {
		lis.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) forget(c net.Conn) {
	c.Close()
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// session is one connection's lifecycle: the connect/hello handshake, then a
// read loop that dispatches each pipelined request on its own goroutine.
// Responses may complete out of order; the client matches them by request id.
// The slots channel is the pipelining window — when it is full the loop stops
// reading the socket, which propagates as TCP backpressure to the client.
func (s *Server) session(c net.Conn) {
	defer s.wg.Done()
	defer s.forget(c)
	typ, body, err := readFrame(c)
	if err != nil || typ != frameConnect {
		return
	}
	r := &reader{buf: body}
	if v := r.uvarint(); r.err != nil || v != protocolVersion {
		return
	}
	hello := appendUvarint([]byte{uint8(s.backend.Load().role)}, protocolVersion)
	if err := writeFrame(c, frameHello, hello); err != nil {
		return
	}

	var wmu sync.Mutex
	slots := make(chan struct{}, s.opts.MaxInFlight)
	var pending sync.WaitGroup
	defer pending.Wait()
	for {
		typ, body, err := readFrame(c)
		if err != nil {
			return
		}
		slots <- struct{}{}
		pending.Add(1)
		go func(typ uint8, body []byte) {
			defer pending.Done()
			defer func() { <-slots }()
			m := s.handle(typ, body)
			buf, err := m.encode(make([]byte, 0, 256))
			if err != nil {
				// The payload was not wire-encodable (e.g. a procedure returned
				// an unsupported type); degrade to an error result so the
				// session — and the requests pipelined behind this one — live.
				fallback := resultMsg{ID: m.ID, Status: statusError, ErrMsg: err.Error(), Hints: m.Hints}
				buf, _ = fallback.encode(nil)
			}
			wmu.Lock()
			_ = writeFrame(c, frameResult, buf)
			wmu.Unlock()
		}(typ, body)
	}
}

func (s *Server) handle(typ uint8, body []byte) resultMsg {
	b := s.backend.Load()
	switch typ {
	case frameExecute:
		req, err := decodeExecuteReq(body)
		if err != nil {
			return resultMsg{Status: statusError, ErrMsg: err.Error(), Hints: s.currentHints()}
		}
		m := resultMsg{ID: req.ID}
		switch {
		case b.deposed():
			m.Status, m.ErrMsg = statusNotPrimary, ErrNotPrimary.Error()
		case s.tooStale(b, req.MaxLagRecords):
			m.Status, m.ErrMsg = statusStale, ErrStale.Error()
		default:
			v, err := b.exec(req.Reactor, req.Procedure, req.Args...)
			m.Status, m.ErrMsg = statusOf(err)
			if m.Status == statusOK {
				m.Kind, m.Value = payloadValue, v
			}
		}
		m.Hints = s.currentHints()
		return m
	case frameQuery:
		req, err := decodeQueryReq(body)
		if err != nil {
			return resultMsg{Status: statusError, ErrMsg: err.Error(), Hints: s.currentHints()}
		}
		m := resultMsg{ID: req.ID}
		switch {
		case b.deposed():
			m.Status, m.ErrMsg = statusNotPrimary, ErrNotPrimary.Error()
		case s.tooStale(b, req.MaxLagRecords):
			m.Status, m.ErrMsg = statusStale, ErrStale.Error()
		default:
			res, err := b.query(req.Query)
			m.Status, m.ErrMsg = statusOf(err)
			if m.Status == statusOK {
				m.Kind, m.Result = payloadQuery, res
			}
		}
		m.Hints = s.currentHints()
		return m
	case frameStats:
		r := &reader{buf: body}
		return resultMsg{ID: r.uvarint(), Status: statusOK, Hints: s.currentHints()}
	default:
		return resultMsg{Status: statusError, ErrMsg: "server: unknown frame type", Hints: s.currentHints()}
	}
}

// tooStale reports whether a replica cannot meet the request's freshness
// bound (0 = unbounded). A degraded replica fails any bound: its mirror is
// gone, so its lag is no longer being promised to anyone. The lag is read
// live, not from the HintRefresh cache — the bound is a promise to the
// client, and a cached value lets a write land and be read back stale
// within one refresh window. Piggybacked hints stay cached: advisory
// routing data tolerates the staleness that an enforced bound cannot.
func (s *Server) tooStale(b *backend, maxLag uint64) bool {
	if b.role != RoleReplica || maxLag == 0 || b.lag == nil {
		return false
	}
	lag, degraded := b.lag()
	return degraded || lag > maxLag
}

// statusOf maps an engine error to a wire status. Overloaded and Conflict are
// distinct from plain errors so a client can retry them without parsing
// strings.
func statusOf(err error) (uint8, string) {
	switch {
	case err == nil:
		return statusOK, ""
	case errors.Is(err, engine.ErrOverloaded):
		return statusOverloaded, err.Error()
	case errors.Is(err, engine.ErrConflict):
		return statusConflict, err.Error()
	case errors.Is(err, engine.ErrReplicaRead):
		return statusReplicaWrite, err.Error()
	default:
		return statusError, err.Error()
	}
}

// currentHints returns the load hints, recollected at most every HintRefresh.
func (s *Server) currentHints() LoadHints {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	if !s.hintAt.IsZero() && time.Since(s.hintAt) < s.opts.HintRefresh {
		return s.hint
	}
	b := s.backend.Load()
	h := LoadHints{Role: b.role}
	for _, l := range b.loads() {
		h.Executors = append(h.Executors, ExecutorHint{
			Container:      l.Container,
			Executor:       l.Executor,
			Depth:          l.Depth,
			InFlight:       l.InFlight,
			EffectiveDepth: l.EffectiveDepth,
			WaitP99Micros:  uint64(l.WaitP99 / time.Microsecond),
		})
	}
	if b.lag != nil {
		h.LagRecords, h.Degraded = b.lag()
	}
	if b.epoch != nil {
		h.Epoch = b.epoch()
	}
	if b.lastErr != nil {
		h.Err = b.lastErr()
	}
	s.hint, s.hintAt = h, time.Now()
	return h
}

package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// Policy selects how the Router spreads reads and paces writes.
type Policy uint8

const (
	// PolicyRoundRobin rotates reads over every endpoint blindly and retries
	// Stale answers on the primary — each stale hit costs an extra round trip.
	PolicyRoundRobin Policy = iota
	// PolicyAware consumes the piggybacked load hints: reads skip replicas
	// that are degraded or lagging past the freshness bound and go to the
	// least-loaded eligible endpoint; writes briefly defer when the primary's
	// admission gate is saturated instead of slamming it into ErrOverloaded.
	PolicyAware
)

func (p Policy) String() string {
	if p == PolicyAware {
		return "aware"
	}
	return "roundrobin"
}

// RouterOptions tune a Router. The zero value is usable.
type RouterOptions struct {
	Policy Policy
	// MaxLagRecords is the freshness bound for replica reads: a replica more
	// than this many records behind the primary's durable LSN is not served a
	// read (0 = any replica will do).
	MaxLagRecords uint64
	// MaxRetries bounds retries of retryable statuses (default 4).
	MaxRetries int
	// RetryBackoff is the initial backoff between retries, doubling each
	// attempt (default 100µs).
	RetryBackoff time.Duration
	// Redial is the reconnection policy applied to every endpoint connection.
	// The zero value keeps plain-Dial semantics: a lost connection stays lost.
	// A failover deployment wants attempts here — the crashed primary's
	// address comes back as a re-attached replica, and the connection's
	// redial is what picks it up without rebuilding the router.
	Redial RedialPolicy
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Microsecond
	}
	return o
}

// Router is a client-side request router over one primary and any number of
// replicas. Writes always go to the primary; read-only traffic fans out to
// replicas with the primary as fallback. It is safe for concurrent use.
//
// The primary assignment is not fixed: when a write is answered NotPrimary
// (the node was fenced by a supervised failover) or the primary connection is
// lost, the router polls every endpoint's hints and re-points writes at the
// one reporting the primary role at the highest epoch — the epoch, not the
// answer order, arbitrates when the deposed node still claims the role.
type Router struct {
	opts RouterOptions
	rr   atomic.Uint64

	mu       sync.RWMutex
	conns    []*Conn // every dialed endpoint, fixed at construction
	primary  *Conn
	replicas []*Conn
}

// NewRouter dials every endpoint (with the router's redial policy so a
// crashed node can rejoin), classifies each by its hello role, and primes
// load hints with a stats round trip. Exactly one endpoint must be a primary.
func NewRouter(endpoints []string, opts RouterOptions) (*Router, error) {
	r := &Router{opts: opts.withDefaults()}
	for _, addr := range endpoints {
		c, err := DialRedial(addr, r.opts.Redial)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("server: router dial %s: %w", addr, err)
		}
		r.conns = append(r.conns, c)
		if _, err := c.Stats(); err != nil {
			r.Close()
			return nil, fmt.Errorf("server: router stats %s: %w", addr, err)
		}
		if c.Role() == RolePrimary {
			if r.primary != nil {
				r.Close()
				return nil, errors.New("server: router configured with two primaries")
			}
			r.primary = c
		} else {
			r.replicas = append(r.replicas, c)
		}
	}
	if r.primary == nil {
		r.Close()
		return nil, errors.New("server: router has no primary endpoint")
	}
	return r, nil
}

// Primary returns the current primary connection.
func (r *Router) Primary() *Conn {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.primary
}

// Replicas returns the current replica connections.
func (r *Router) Replicas() []*Conn {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Conn(nil), r.replicas...)
}

// Close closes every connection.
func (r *Router) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
}

// rediscover re-classifies every endpoint after a failover signal: each is
// asked for fresh hints, and the endpoint reporting the primary role at the
// highest epoch becomes the write target. The deposed primary typically still
// answers — role primary, old epoch, every request NotPrimary — which is
// exactly why the epoch decides. Endpoints that do not answer (crashed,
// mid-redial) are left as replicas; a failed sweep (no primary found) keeps
// the previous assignment so the caller's retry loop can sweep again.
func (r *Router) rediscover() {
	r.mu.RLock()
	conns := append([]*Conn(nil), r.conns...)
	r.mu.RUnlock()

	var best *Conn
	var bestEpoch uint64
	for _, c := range conns {
		h, err := c.Stats()
		if err != nil {
			continue
		}
		if h.Role == RolePrimary && (best == nil || h.Epoch > bestEpoch) {
			best, bestEpoch = c, h.Epoch
		}
	}
	if best == nil {
		return
	}
	r.mu.Lock()
	r.primary = best
	r.replicas = r.replicas[:0]
	for _, c := range r.conns {
		if c == best {
			continue
		}
		// A non-best endpoint still claiming the primary role is the deposed
		// primary: it answers every request NotPrimary, so it serves no reads
		// either. Keep it out of the read set until a later sweep sees it
		// re-attached (hints role replica).
		if h := c.Hints(); h.Role == RolePrimary {
			continue
		}
		r.replicas = append(r.replicas, c)
	}
	r.mu.Unlock()
}

// Execute routes a read-write procedure to the primary, retrying Overloaded
// and Conflict answers with exponential backoff. Under PolicyAware it first
// checks the primary's last-seen hints and defers one backoff when the
// admission gate is already saturated — backing off before the rejection
// instead of after it. A NotPrimary answer or a lost primary connection
// triggers endpoint rediscovery before the retry: after a supervised
// failover the very same call lands on the promoted node.
func (r *Router) Execute(reactor, procedure string, args ...any) (any, error) {
	backoff := r.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		p := r.Primary()
		if r.opts.Policy == PolicyAware {
			if h := p.Hints(); h.GateSaturated() {
				time.Sleep(backoff)
			}
		}
		v, err := p.Execute(reactor, procedure, args...)
		switch {
		case err == nil:
			return v, nil
		case errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrConnClosed):
			lastErr = err
			r.rediscover()
			time.Sleep(backoff)
			backoff *= 2
		case retryableOnPrimary(err):
			lastErr = err
			time.Sleep(backoff)
			backoff *= 2
		default:
			return v, err
		}
	}
	return nil, lastErr
}

func retryableOnPrimary(err error) bool {
	return errors.Is(err, engine.ErrOverloaded) || errors.Is(err, engine.ErrConflict)
}

// ExecuteRead routes a read-only procedure across replicas and primary (see
// Query for the policy).
func (r *Router) ExecuteRead(reactor, procedure string, args ...any) (any, error) {
	return r.readPath(func(c *Conn, maxLag uint64) (any, error) {
		return c.ExecuteFresh(maxLag, reactor, procedure, args...)
	})
}

// Query routes a declarative query. Round-robin rotates over replicas and
// primary, paying an extra round trip to the primary whenever a replica
// answers Stale or refuses a write. Aware scores every endpoint by its hinted
// queue depth and wait p99, drops replicas that are degraded or past the
// freshness bound, and sends the read to the cheapest eligible endpoint —
// falling back to the primary when no replica qualifies.
func (r *Router) Query(q *rel.Query) (*rel.Result, error) {
	v, err := r.readPath(func(c *Conn, maxLag uint64) (any, error) {
		return c.QueryFresh(maxLag, q)
	})
	if err != nil {
		return nil, err
	}
	res, _ := v.(*rel.Result)
	return res, nil
}

func (r *Router) readPath(do func(c *Conn, maxLag uint64) (any, error)) (any, error) {
	backoff := r.opts.RetryBackoff
	forcePrimary := false
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		primary := r.Primary()
		c := primary
		maxLag := r.opts.MaxLagRecords
		if !forcePrimary {
			c = r.pickRead()
		}
		if c == primary {
			maxLag = 0 // the primary is always fresh; no bound to enforce
		}
		v, err := do(c, maxLag)
		switch {
		case err == nil:
			return v, nil
		case errors.Is(err, ErrStale) || errors.Is(err, engine.ErrReplicaRead):
			// This replica cannot serve the read; the primary always can.
			// No backoff — the retry is redirection, not congestion control.
			forcePrimary = true
			lastErr = err
		case errors.Is(err, ErrNotPrimary) || errors.Is(err, ErrConnClosed):
			// The node was deposed mid-request or its connection died;
			// re-point at whoever holds the highest epoch and try again.
			lastErr = err
			r.rediscover()
			forcePrimary = false
			time.Sleep(backoff)
			backoff *= 2
		case errors.Is(err, engine.ErrOverloaded) || errors.Is(err, engine.ErrConflict):
			lastErr = err
			time.Sleep(backoff)
			backoff *= 2
		default:
			return nil, err
		}
	}
	return nil, lastErr
}

// pickRead chooses the endpoint for one read attempt.
func (r *Router) pickRead() *Conn {
	r.mu.RLock()
	primary := r.primary
	replicas := append([]*Conn(nil), r.replicas...)
	r.mu.RUnlock()
	if len(replicas) == 0 {
		return primary
	}
	if r.opts.Policy == PolicyRoundRobin {
		n := r.rr.Add(1)
		candidates := len(replicas) + 1
		if i := int(n % uint64(candidates)); i < len(replicas) {
			return replicas[i]
		}
		return primary
	}
	n := r.rr.Add(1)
	// A replica's cached hints only refresh when a response arrives from it,
	// so a replica that looks lagging or expensive on stale hints would stay
	// avoided forever. Every probeEvery-th read is routed to a replica in
	// rotation regardless of its hints: if it is genuinely behind, the server
	// answers Stale (freshness is enforced there regardless), the retry lands
	// on the primary, and the refused response carries fresh hints — one
	// extra round trip buys the hint cache its truth.
	const probeEvery = 16
	if n%probeEvery == 0 {
		return replicas[int(n/probeEvery)%len(replicas)]
	}
	candidates := make([]*Conn, 0, len(replicas)+1)
	candidates = append(candidates, primary)
	for _, c := range replicas {
		h := c.Hints()
		if h.Degraded {
			continue
		}
		if r.opts.MaxLagRecords > 0 && h.LagRecords > r.opts.MaxLagRecords {
			continue
		}
		candidates = append(candidates, c)
	}
	// Scan from a rotating offset so equal scores spread over the eligible
	// endpoints instead of herding onto the first one (hints only refresh on
	// responses, so an idle endpoint's score is sticky).
	start := int(n) % len(candidates)
	best := candidates[start]
	bestScore := hintScore(best.Hints())
	for i := 1; i < len(candidates); i++ {
		c := candidates[(start+i)%len(candidates)]
		if s := hintScore(c.Hints()); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// hintScore prices an endpoint for a read: its worst windowed queue-wait p99
// in microseconds, plus a per-queued-transaction penalty so a deep queue costs
// even before its wait histogram catches up.
func hintScore(h LoadHints) uint64 {
	score := h.MaxWaitP99Micros()
	for _, e := range h.Executors {
		score += 25 * uint64(e.Depth+e.InFlight)
	}
	return score
}

package server

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"reactdb/internal/engine"
	"reactdb/internal/rel"
)

// Policy selects how the Router spreads reads and paces writes.
type Policy uint8

const (
	// PolicyRoundRobin rotates reads over every endpoint blindly and retries
	// Stale answers on the primary — each stale hit costs an extra round trip.
	PolicyRoundRobin Policy = iota
	// PolicyAware consumes the piggybacked load hints: reads skip replicas
	// that are degraded or lagging past the freshness bound and go to the
	// least-loaded eligible endpoint; writes briefly defer when the primary's
	// admission gate is saturated instead of slamming it into ErrOverloaded.
	PolicyAware
)

func (p Policy) String() string {
	if p == PolicyAware {
		return "aware"
	}
	return "roundrobin"
}

// RouterOptions tune a Router. The zero value is usable.
type RouterOptions struct {
	Policy Policy
	// MaxLagRecords is the freshness bound for replica reads: a replica more
	// than this many records behind the primary's durable LSN is not served a
	// read (0 = any replica will do).
	MaxLagRecords uint64
	// MaxRetries bounds retries of retryable statuses (default 4).
	MaxRetries int
	// RetryBackoff is the initial backoff between retries, doubling each
	// attempt (default 100µs).
	RetryBackoff time.Duration
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Microsecond
	}
	return o
}

// Router is a client-side request router over one primary and any number of
// replicas. Writes always go to the primary; read-only traffic fans out to
// replicas with the primary as fallback. It is safe for concurrent use.
type Router struct {
	opts     RouterOptions
	primary  *Conn
	replicas []*Conn
	rr       atomic.Uint64
}

// NewRouter dials every endpoint, classifies each by its hello role, and
// primes load hints with a stats round trip. Exactly one endpoint must be a
// primary.
func NewRouter(endpoints []string, opts RouterOptions) (*Router, error) {
	r := &Router{opts: opts.withDefaults()}
	for _, addr := range endpoints {
		c, err := Dial(addr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("server: router dial %s: %w", addr, err)
		}
		if _, err := c.Stats(); err != nil {
			c.Close()
			r.Close()
			return nil, fmt.Errorf("server: router stats %s: %w", addr, err)
		}
		if c.Role() == RolePrimary {
			if r.primary != nil {
				c.Close()
				r.Close()
				return nil, errors.New("server: router configured with two primaries")
			}
			r.primary = c
		} else {
			r.replicas = append(r.replicas, c)
		}
	}
	if r.primary == nil {
		r.Close()
		return nil, errors.New("server: router has no primary endpoint")
	}
	return r, nil
}

// Primary returns the primary connection.
func (r *Router) Primary() *Conn { return r.primary }

// Replicas returns the replica connections.
func (r *Router) Replicas() []*Conn { return r.replicas }

// Close closes every connection.
func (r *Router) Close() {
	if r.primary != nil {
		r.primary.Close()
	}
	for _, c := range r.replicas {
		c.Close()
	}
}

// Execute routes a read-write procedure to the primary, retrying Overloaded
// and Conflict answers with exponential backoff. Under PolicyAware it first
// checks the primary's last-seen hints and defers one backoff when the
// admission gate is already saturated — backing off before the rejection
// instead of after it.
func (r *Router) Execute(reactor, procedure string, args ...any) (any, error) {
	backoff := r.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		if r.opts.Policy == PolicyAware {
			if h := r.primary.Hints(); h.GateSaturated() {
				time.Sleep(backoff)
			}
		}
		v, err := r.primary.Execute(reactor, procedure, args...)
		if err == nil || !retryableOnPrimary(err) {
			return v, err
		}
		lastErr = err
		time.Sleep(backoff)
		backoff *= 2
	}
	return nil, lastErr
}

func retryableOnPrimary(err error) bool {
	return errors.Is(err, engine.ErrOverloaded) || errors.Is(err, engine.ErrConflict)
}

// ExecuteRead routes a read-only procedure across replicas and primary (see
// Query for the policy).
func (r *Router) ExecuteRead(reactor, procedure string, args ...any) (any, error) {
	return r.readPath(func(c *Conn, maxLag uint64) (any, error) {
		return c.ExecuteFresh(maxLag, reactor, procedure, args...)
	})
}

// Query routes a declarative query. Round-robin rotates over replicas and
// primary, paying an extra round trip to the primary whenever a replica
// answers Stale or refuses a write. Aware scores every endpoint by its hinted
// queue depth and wait p99, drops replicas that are degraded or past the
// freshness bound, and sends the read to the cheapest eligible endpoint —
// falling back to the primary when no replica qualifies.
func (r *Router) Query(q *rel.Query) (*rel.Result, error) {
	v, err := r.readPath(func(c *Conn, maxLag uint64) (any, error) {
		return c.QueryFresh(maxLag, q)
	})
	if err != nil {
		return nil, err
	}
	res, _ := v.(*rel.Result)
	return res, nil
}

func (r *Router) readPath(do func(c *Conn, maxLag uint64) (any, error)) (any, error) {
	backoff := r.opts.RetryBackoff
	forcePrimary := false
	var lastErr error
	for attempt := 0; attempt <= r.opts.MaxRetries; attempt++ {
		c := r.primary
		maxLag := r.opts.MaxLagRecords
		if !forcePrimary {
			c = r.pickRead()
		}
		if c == r.primary {
			maxLag = 0 // the primary is always fresh; no bound to enforce
		}
		v, err := do(c, maxLag)
		switch {
		case err == nil:
			return v, nil
		case errors.Is(err, ErrStale) || errors.Is(err, engine.ErrReplicaRead):
			// This replica cannot serve the read; the primary always can.
			// No backoff — the retry is redirection, not congestion control.
			forcePrimary = true
			lastErr = err
		case errors.Is(err, engine.ErrOverloaded) || errors.Is(err, engine.ErrConflict):
			lastErr = err
			time.Sleep(backoff)
			backoff *= 2
		default:
			return nil, err
		}
	}
	return nil, lastErr
}

// pickRead chooses the endpoint for one read attempt.
func (r *Router) pickRead() *Conn {
	if len(r.replicas) == 0 {
		return r.primary
	}
	if r.opts.Policy == PolicyRoundRobin {
		n := r.rr.Add(1)
		candidates := len(r.replicas) + 1
		if i := int(n % uint64(candidates)); i < len(r.replicas) {
			return r.replicas[i]
		}
		return r.primary
	}
	n := r.rr.Add(1)
	// A replica's cached hints only refresh when a response arrives from it,
	// so a replica that looks lagging or expensive on stale hints would stay
	// avoided forever. Every probeEvery-th read is routed to a replica in
	// rotation regardless of its hints: if it is genuinely behind, the server
	// answers Stale (freshness is enforced there regardless), the retry lands
	// on the primary, and the refused response carries fresh hints — one
	// extra round trip buys the hint cache its truth.
	const probeEvery = 16
	if n%probeEvery == 0 {
		return r.replicas[int(n/probeEvery)%len(r.replicas)]
	}
	candidates := make([]*Conn, 0, len(r.replicas)+1)
	candidates = append(candidates, r.primary)
	for _, c := range r.replicas {
		h := c.Hints()
		if h.Degraded {
			continue
		}
		if r.opts.MaxLagRecords > 0 && h.LagRecords > r.opts.MaxLagRecords {
			continue
		}
		candidates = append(candidates, c)
	}
	// Scan from a rotating offset so equal scores spread over the eligible
	// endpoints instead of herding onto the first one (hints only refresh on
	// responses, so an idle endpoint's score is sticky).
	start := int(n) % len(candidates)
	best := candidates[start]
	bestScore := hintScore(best.Hints())
	for i := 1; i < len(candidates); i++ {
		c := candidates[(start+i)%len(candidates)]
		if s := hintScore(c.Hints()); s < bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// hintScore prices an endpoint for a read: its worst windowed queue-wait p99
// in microseconds, plus a per-queued-transaction penalty so a deep queue costs
// even before its wait histogram catches up.
func hintScore(h LoadHints) uint64 {
	score := h.MaxWaitP99Micros()
	for _, e := range h.Executors {
		score += 25 * uint64(e.Depth+e.InFlight)
	}
	return score
}

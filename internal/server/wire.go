// Package server is the network front-end: a dependency-free length-prefixed
// binary wire protocol over TCP (or any net.Conn) exposing an engine primary
// and its replicas to remote clients, with per-connection sessions, request
// pipelining, and backpressure that surfaces engine admission rejections as a
// retryable wire status instead of dropping the connection.
//
// Every frame is CRC-framed exactly like a WAL record — a 4-byte little-endian
// payload length, a 4-byte CRC32 (IEEE) of the payload, then the payload — so
// a torn or corrupted stream is detected, never mis-decoded. The payload's
// first byte is the frame type.
//
// Every response piggybacks load hints: the per-executor queue depth,
// in-flight admission tokens and windowed queue-wait p99 from the engine's
// scheduler, plus — on replicas — the corrected replication lag
// (ReplicaStats.Lag) and degraded flag. The client-side Router consumes them
// to steer writes around a saturated admission gate and reads around lagging
// or overloaded replicas (see router.go).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"reactdb/internal/rel"
)

// Frame types. Connect/hello perform the session handshake; execute, query
// and stats are pipelined requests matched to result frames by request id.
const (
	frameConnect uint8 = 1
	frameHello   uint8 = 2
	frameExecute uint8 = 3
	frameQuery   uint8 = 4
	frameStats   uint8 = 5
	frameResult  uint8 = 6
)

// protocolVersion is echoed in the hello frame; a server refuses a connect
// frame carrying a version it does not speak.
const protocolVersion = 1

// maxFrameSize bounds a frame's payload so a corrupted length prefix cannot
// make a session allocate unboundedly.
const maxFrameSize = 16 << 20

// Wire-level statuses of a result frame. Overloaded and Conflict are
// retryable on the same node; Stale and ReplicaWrite are retryable on a
// different node (the primary is always eligible).
const (
	statusOK           uint8 = 0
	statusOverloaded   uint8 = 1 // engine admission rejected the transaction
	statusConflict     uint8 = 2 // serialization conflict
	statusStale        uint8 = 3 // replica lag exceeds the request's freshness bound
	statusReplicaWrite uint8 = 4 // write attempted on a replica
	statusError        uint8 = 5 // application or internal error
	statusNotPrimary   uint8 = 6 // node was deposed: fenced by a newer epoch
)

// ErrStale is returned by a client read whose freshness bound the serving
// replica could not meet; the router retries it on the primary.
var ErrStale = errors.New("server: replica lag exceeds the freshness bound")

// ErrNotPrimary is returned by a request served by a node that is no longer
// the primary — its epoch has been fenced by a supervisor promoting a replica.
// The router reacts by rediscovering which endpoint now reports the primary
// role at the highest epoch and re-pointing writes there.
var ErrNotPrimary = errors.New("server: node is not the primary (fenced by a newer epoch)")

// errCorruptFrame reports a CRC or framing violation; the connection is dead.
var errCorruptFrame = errors.New("server: corrupt wire frame")

// Role is the deployment role a server (and hence a connection) speaks for.
type Role uint8

// Roles.
const (
	RolePrimary Role = 0
	RoleReplica Role = 1
)

func (r Role) String() string {
	if r == RoleReplica {
		return "replica"
	}
	return "primary"
}

// writeFrame writes one frame: header (payload length, CRC32 of payload) then
// the payload, whose first byte is the frame type.
func writeFrame(w io.Writer, typ uint8, body []byte) error {
	header := make([]byte, 8, 8+1+len(body))
	payload := append(append(header, typ), body...)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(1+len(body)))
	binary.LittleEndian.PutUint32(payload[4:8], crc32.ChecksumIEEE(payload[8:]))
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, verifying length and CRC. The returned body
// excludes the type byte and is freshly allocated (safe to retain).
func readFrame(r io.Reader) (uint8, []byte, error) {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(header[0:4])
	if n < 1 || n > maxFrameSize {
		return 0, nil, errCorruptFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(header[4:8]) {
		return 0, nil, errCorruptFrame
	}
	return payload[0], payload[1:], nil
}

// --- primitive codec --------------------------------------------------------

// reader is a cursor over a frame body. Decode errors are sticky.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errCorruptFrame
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) byte() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) bytes() []byte {
	n := int(r.uvarint())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) string() string { return string(r.bytes()) }

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// --- value codec ------------------------------------------------------------

// Value tags cover everything procedure arguments and results are made of:
// the canonical row value types, plus the small composites procedures pass
// around (string lists, rows, row lists, and heterogeneous lists).
const (
	valNil uint8 = iota
	valInt64
	valInt
	valFloat64
	valString
	valBool
	valBytes
	valStrings
	valRow
	valRows
	valList
)

func appendValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, valNil), nil
	case int64:
		return appendVarint(append(dst, valInt64), x), nil
	case int:
		return appendVarint(append(dst, valInt), int64(x)), nil
	case float64:
		return appendFloat64(append(dst, valFloat64), x), nil
	case string:
		return appendString(append(dst, valString), x), nil
	case bool:
		return appendBool(append(dst, valBool), x), nil
	case []byte:
		return appendBytes(append(dst, valBytes), x), nil
	case []string:
		dst = appendUvarint(append(dst, valStrings), uint64(len(x)))
		for _, s := range x {
			dst = appendString(dst, s)
		}
		return dst, nil
	case rel.Row:
		return appendValueList(append(dst, valRow), x)
	case []rel.Row:
		dst = appendUvarint(append(dst, valRows), uint64(len(x)))
		var err error
		for _, row := range x {
			if dst, err = appendValueList(dst, row); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case []any:
		return appendValueList(append(dst, valList), x)
	default:
		return nil, fmt.Errorf("server: cannot encode %T on the wire", v)
	}
}

func appendValueList(dst []byte, vs []any) ([]byte, error) {
	dst = appendUvarint(dst, uint64(len(vs)))
	var err error
	for _, v := range vs {
		if dst, err = appendValue(dst, v); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func (r *reader) value() any {
	switch r.byte() {
	case valNil:
		return nil
	case valInt64:
		return r.varint()
	case valInt:
		return int(r.varint())
	case valFloat64:
		return r.float64()
	case valString:
		return r.string()
	case valBool:
		return r.bool()
	case valBytes:
		return append([]byte(nil), r.bytes()...)
	case valStrings:
		n := int(r.uvarint())
		if r.err != nil || n > len(r.buf) {
			r.fail()
			return nil
		}
		out := make([]string, n)
		for i := range out {
			out[i] = r.string()
		}
		return out
	case valRow:
		return rel.Row(r.valueList())
	case valRows:
		n := int(r.uvarint())
		if r.err != nil || n > len(r.buf) {
			r.fail()
			return nil
		}
		out := make([]rel.Row, n)
		for i := range out {
			out[i] = rel.Row(r.valueList())
		}
		return out
	case valList:
		return r.valueList()
	default:
		r.fail()
		return nil
	}
}

func (r *reader) valueList() []any {
	n := int(r.uvarint())
	if r.err != nil || n > len(r.buf) {
		r.fail()
		return nil
	}
	out := make([]any, n)
	for i := range out {
		out[i] = r.value()
	}
	return out
}

// --- load hints -------------------------------------------------------------

// ExecutorHint is one executor's queue signal as piggybacked on responses: a
// compact projection of engine.ExecutorLoad.
type ExecutorHint struct {
	Container      int
	Executor       int
	Depth          int
	InFlight       int
	EffectiveDepth int
	WaitP99Micros  uint64
}

// LoadHints is the load signal piggybacked on every result frame. Replicas
// additionally report their corrected replication lag (saturating, never
// wrapped — see engine.ReplicaShardStats) and degraded flag, which is what
// lets a router route around an unhealthy replica instead of guessing.
type LoadHints struct {
	Role       Role
	Degraded   bool
	LagRecords uint64 // max shard lag on a replica; always 0 on a primary
	// Epoch is the node's failover term (engine.Database.Epoch, via the
	// replica's primary for replica servers). After a failover two endpoints
	// may both claim the primary role — the deposed node until its process is
	// recycled, and the promoted one; the highest epoch wins discovery.
	Epoch uint64
	// Err is the node's last replication error (engine.ReplicaStats.Err),
	// empty when healthy or on a primary. It rides along so operators and
	// routers see why a replica is degraded without a side channel.
	Err       string
	Executors []ExecutorHint
}

// MaxDepth returns the deepest executor queue in the hint set.
func (h *LoadHints) MaxDepth() int {
	m := 0
	for _, e := range h.Executors {
		if e.Depth > m {
			m = e.Depth
		}
	}
	return m
}

// MaxWaitP99Micros returns the worst windowed queue-wait p99 in the hint set.
func (h *LoadHints) MaxWaitP99Micros() uint64 {
	var m uint64
	for _, e := range h.Executors {
		if e.WaitP99Micros > m {
			m = e.WaitP99Micros
		}
	}
	return m
}

// GateSaturated reports whether every executor's admission gate is at its
// token limit — the signal that one more submission would be rejected with
// ErrOverloaded rather than queued.
func (h *LoadHints) GateSaturated() bool {
	if len(h.Executors) == 0 {
		return false
	}
	for _, e := range h.Executors {
		if e.EffectiveDepth == 0 || e.InFlight < e.EffectiveDepth {
			return false
		}
	}
	return true
}

func appendHints(dst []byte, h *LoadHints) []byte {
	dst = append(dst, uint8(h.Role))
	dst = appendBool(dst, h.Degraded)
	dst = appendUvarint(dst, h.LagRecords)
	dst = appendUvarint(dst, h.Epoch)
	dst = appendString(dst, h.Err)
	dst = appendUvarint(dst, uint64(len(h.Executors)))
	for _, e := range h.Executors {
		dst = appendUvarint(dst, uint64(e.Container))
		dst = appendUvarint(dst, uint64(e.Executor))
		dst = appendUvarint(dst, uint64(e.Depth))
		dst = appendUvarint(dst, uint64(e.InFlight))
		dst = appendUvarint(dst, uint64(e.EffectiveDepth))
		dst = appendUvarint(dst, e.WaitP99Micros)
	}
	return dst
}

func (r *reader) hints() LoadHints {
	h := LoadHints{Role: Role(r.byte()), Degraded: r.bool(), LagRecords: r.uvarint()}
	h.Epoch = r.uvarint()
	h.Err = r.string()
	n := int(r.uvarint())
	if r.err != nil || n > len(r.buf) {
		r.fail()
		return h
	}
	h.Executors = make([]ExecutorHint, n)
	for i := range h.Executors {
		h.Executors[i] = ExecutorHint{
			Container:      int(r.uvarint()),
			Executor:       int(r.uvarint()),
			Depth:          int(r.uvarint()),
			InFlight:       int(r.uvarint()),
			EffectiveDepth: int(r.uvarint()),
			WaitP99Micros:  r.uvarint(),
		}
	}
	return h
}

// --- request / response bodies ----------------------------------------------

// executeReq is the body of an execute frame. MaxLagRecords is the freshness
// bound for read-only execution on a replica (0 = no bound); primaries are
// always fresh and ignore it.
type executeReq struct {
	ID            uint64
	MaxLagRecords uint64
	Reactor       string
	Procedure     string
	Args          []any
}

func (q *executeReq) encode(dst []byte) ([]byte, error) {
	dst = appendUvarint(dst, q.ID)
	dst = appendUvarint(dst, q.MaxLagRecords)
	dst = appendString(dst, q.Reactor)
	dst = appendString(dst, q.Procedure)
	return appendValueList(dst, q.Args)
}

func decodeExecuteReq(body []byte) (executeReq, error) {
	r := &reader{buf: body}
	q := executeReq{
		ID:            r.uvarint(),
		MaxLagRecords: r.uvarint(),
		Reactor:       r.string(),
		Procedure:     r.string(),
		Args:          r.valueList(),
	}
	return q, r.err
}

// queryReq is the body of a query frame: a serialized rel.Query plus the
// freshness bound.
type queryReq struct {
	ID            uint64
	MaxLagRecords uint64
	Query         *rel.Query
}

func (q *queryReq) encode(dst []byte) ([]byte, error) {
	dst = appendUvarint(dst, q.ID)
	dst = appendUvarint(dst, q.MaxLagRecords)
	return appendQuery(dst, q.Query)
}

func decodeQueryReq(body []byte) (queryReq, error) {
	r := &reader{buf: body}
	q := queryReq{ID: r.uvarint(), MaxLagRecords: r.uvarint()}
	q.Query = r.query()
	return q, r.err
}

// Result payload kinds.
const (
	payloadNone  uint8 = 0
	payloadValue uint8 = 1
	payloadQuery uint8 = 2
)

// resultMsg is the body of a result frame: the request id it answers, a
// status, an error message for non-OK statuses, the piggybacked load hints,
// and the payload (an execute value or a query result).
type resultMsg struct {
	ID     uint64
	Status uint8
	ErrMsg string
	Hints  LoadHints
	Kind   uint8
	Value  any
	Result *rel.Result
}

func (m *resultMsg) encode(dst []byte) ([]byte, error) {
	dst = appendUvarint(dst, m.ID)
	dst = append(dst, m.Status)
	dst = appendString(dst, m.ErrMsg)
	dst = appendHints(dst, &m.Hints)
	dst = append(dst, m.Kind)
	switch m.Kind {
	case payloadValue:
		return appendValue(dst, m.Value)
	case payloadQuery:
		return appendQueryResult(dst, m.Result)
	}
	return dst, nil
}

func decodeResultMsg(body []byte) (resultMsg, error) {
	r := &reader{buf: body}
	m := resultMsg{
		ID:     r.uvarint(),
		Status: r.byte(),
		ErrMsg: r.string(),
		Hints:  r.hints(),
		Kind:   r.byte(),
	}
	switch m.Kind {
	case payloadValue:
		m.Value = r.value()
	case payloadQuery:
		m.Result = r.queryResult()
	}
	return m, r.err
}

// appendQueryResult serializes a rel.Result. AccessPaths is encoded as pairs;
// order does not matter to the map on the far side.
func appendQueryResult(dst []byte, res *rel.Result) ([]byte, error) {
	dst = appendUvarint(dst, uint64(len(res.Columns)))
	for _, c := range res.Columns {
		dst = appendString(dst, c)
	}
	dst = appendUvarint(dst, uint64(len(res.Rows)))
	var err error
	for _, row := range res.Rows {
		if dst, err = appendValueList(dst, row); err != nil {
			return nil, err
		}
	}
	dst = appendUvarint(dst, uint64(len(res.JoinOrder)))
	for _, a := range res.JoinOrder {
		dst = appendString(dst, a)
	}
	dst = appendUvarint(dst, uint64(len(res.AccessPaths)))
	for alias, path := range res.AccessPaths {
		dst = appendString(dst, alias)
		dst = appendString(dst, path)
	}
	return dst, nil
}

func (r *reader) queryResult() *rel.Result {
	res := &rel.Result{}
	if n := int(r.uvarint()); r.err == nil && n <= len(r.buf) {
		res.Columns = make([]string, n)
		for i := range res.Columns {
			res.Columns[i] = r.string()
		}
	} else {
		r.fail()
		return res
	}
	n := int(r.uvarint())
	if r.err != nil || n > len(r.buf) {
		r.fail()
		return res
	}
	if n > 0 {
		res.Rows = make([]rel.Row, n)
		for i := range res.Rows {
			res.Rows[i] = rel.Row(r.valueList())
		}
	}
	if n := int(r.uvarint()); r.err == nil && n <= len(r.buf) {
		if n > 0 {
			res.JoinOrder = make([]string, n)
			for i := range res.JoinOrder {
				res.JoinOrder[i] = r.string()
			}
		}
	} else {
		r.fail()
		return res
	}
	if n := int(r.uvarint()); r.err == nil && n <= len(r.buf) {
		res.AccessPaths = make(map[string]string, n)
		for i := 0; i < n; i++ {
			alias := r.string()
			res.AccessPaths[alias] = r.string()
		}
	} else {
		r.fail()
	}
	return res
}

// Package costmodel implements the computational cost model of the reactor
// programming model (paper §2.4, Figure 3): an analytical latency model for
// fork-join sub-transactions that developers use to compare alternative
// program formulations. The experiment drivers calibrate its parameters from
// profiled runs and compare predictions with observed latencies (Figure 6,
// Table 1, Appendix C/D).
package costmodel

import "time"

// Params are the calibrated cost parameters: the communication costs Cs
// (sending a sub-transaction invocation to another reactor's container) and Cr
// (receiving its result). Processing costs are per-node properties of the
// sub-transaction tree.
type Params struct {
	Cs time.Duration
	Cr time.Duration
}

// SubTxn describes one fork-join (sub-)transaction for prediction purposes:
// sequential processing logic, sequential synchronous children, then a single
// fork point of asynchronous children overlapped with optional processing and
// synchronous children (§2.4).
type SubTxn struct {
	// Container identifies the container (transaction executor group) the
	// sub-transaction runs on; communication costs apply only between
	// different containers.
	Container int
	// Pseq is the processing logic executed sequentially before the fork
	// point (the paper's Pseq).
	Pseq time.Duration
	// SyncSeq are children invoked synchronously, one after another, before
	// the fork point.
	SyncSeq []*SubTxn
	// Async are children invoked asynchronously at the fork point, in
	// invocation order (the order matters: each invocation's send cost delays
	// the following ones).
	Async []*SubTxn
	// Povp is processing logic overlapped with the asynchronous children.
	Povp time.Duration
	// SyncOvp are children invoked synchronously while the asynchronous
	// children execute.
	SyncOvp []*SubTxn
}

// Components is the latency breakdown corresponding to the terms of the cost
// equation, matching the bars of the paper's Figure 6.
type Components struct {
	// SyncExecution is Pseq plus the latency of sequential synchronous
	// children (first two terms of the equation).
	SyncExecution time.Duration
	// Cs is the total send cost charged on this sub-transaction (third term's
	// send half plus the sends inside the async prefix term).
	Cs time.Duration
	// Cr is the total receive cost charged on this sub-transaction.
	Cr time.Duration
	// AsyncExecution is the fork-join term: the maximum of the slowest
	// asynchronous child chain and the overlapped processing.
	AsyncExecution time.Duration
}

// Total returns the predicted latency: the sum of all components.
func (c Components) Total() time.Duration {
	return c.SyncExecution + c.Cs + c.Cr + c.AsyncExecution
}

// Latency evaluates the cost equation of Figure 3 for the sub-transaction,
// recursively. It assumes the parallelism of asynchronous children is fully
// realized, as the paper does.
func Latency(st *SubTxn, p Params) time.Duration {
	return Predict(st, p).Total()
}

// Predict evaluates the cost equation and returns the per-component
// breakdown.
func Predict(st *SubTxn, p Params) Components {
	var c Components

	// Sequential part: Pseq + Σ L(sync child) + Σ (Cs + Cr) for remote
	// destinations of the synchronous sequential children.
	c.SyncExecution = st.Pseq
	for _, child := range st.SyncSeq {
		c.SyncExecution += Latency(child, p)
		if child.Container != st.Container {
			c.Cs += p.Cs
			c.Cr += p.Cr
		}
	}

	// Fork-join part: max over async children of (child latency + Cr + send
	// costs of the async prefix up to and including that child), compared
	// with the overlapped processing and synchronous children.
	var asyncTerm time.Duration
	var prefixSend time.Duration
	for _, child := range st.Async {
		if child.Container != st.Container {
			prefixSend += p.Cs
		}
		chain := Latency(child, p) + prefixSend
		if child.Container != st.Container {
			chain += p.Cr
		}
		if chain > asyncTerm {
			asyncTerm = chain
		}
	}

	overlapped := st.Povp
	for _, child := range st.SyncOvp {
		overlapped += Latency(child, p)
		if child.Container != st.Container {
			overlapped += p.Cs + p.Cr
		}
	}
	if overlapped > asyncTerm {
		asyncTerm = overlapped
	}
	c.AsyncExecution = asyncTerm
	return c
}

// Sequential builds a purely sequential sub-transaction: processing followed
// by synchronous children.
func Sequential(container int, processing time.Duration, children ...*SubTxn) *SubTxn {
	return &SubTxn{Container: container, Pseq: processing, SyncSeq: children}
}

// ForkJoin builds a fork-join sub-transaction: sequential processing, then a
// fan-out of asynchronous children overlapped with the given processing.
func ForkJoin(container int, pseq, povp time.Duration, async ...*SubTxn) *SubTxn {
	return &SubTxn{Container: container, Pseq: pseq, Povp: povp, Async: async}
}

// Leaf builds a childless sub-transaction with the given processing cost.
func Leaf(container int, processing time.Duration) *SubTxn {
	return &SubTxn{Container: container, Pseq: processing}
}

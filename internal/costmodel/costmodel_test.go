package costmodel

import (
	"testing"
	"testing/quick"
	"time"
)

const (
	us = time.Microsecond
	ms = time.Millisecond
)

func params() Params { return Params{Cs: 10 * us, Cr: 20 * us} }

func TestLeafLatencyIsProcessing(t *testing.T) {
	if got := Latency(Leaf(0, 50*us), params()); got != 50*us {
		t.Fatalf("leaf latency = %v, want 50µs", got)
	}
}

func TestSequentialLocalChildrenAddUpWithoutCommunication(t *testing.T) {
	st := Sequential(0, 10*us, Leaf(0, 20*us), Leaf(0, 30*us))
	c := Predict(st, params())
	if c.SyncExecution != 60*us || c.Cs != 0 || c.Cr != 0 || c.AsyncExecution != 0 {
		t.Fatalf("unexpected breakdown: %+v", c)
	}
}

func TestSequentialRemoteChildrenPayCommunicationPerChild(t *testing.T) {
	st := Sequential(0, 10*us, Leaf(1, 20*us), Leaf(2, 30*us))
	c := Predict(st, params())
	if c.SyncExecution != 60*us {
		t.Fatalf("sync execution = %v", c.SyncExecution)
	}
	if c.Cs != 20*us || c.Cr != 40*us {
		t.Fatalf("communication = (%v, %v), want (20µs, 40µs)", c.Cs, c.Cr)
	}
	if got := Latency(st, params()); got != 120*us {
		t.Fatalf("total = %v, want 120µs", got)
	}
}

func TestForkJoinTakesMaxOfAsyncChains(t *testing.T) {
	// Two remote async children of 100µs and 40µs: the slowest chain pays its
	// own latency, the prefix sends, and one receive.
	st := ForkJoin(0, 0, 0, Leaf(1, 100*us), Leaf(2, 40*us))
	p := params()
	c := Predict(st, p)
	// Chain 1: Cs + L + Cr = 10 + 100 + 20 = 130µs.
	// Chain 2: 2*Cs + 40 + 20 = 80µs.
	if c.AsyncExecution != 130*us {
		t.Fatalf("async term = %v, want 130µs", c.AsyncExecution)
	}
	if c.SyncExecution != 0 || c.Cs != 0 || c.Cr != 0 {
		t.Fatalf("fork-join breakdown has unexpected sequential terms: %+v", c)
	}
}

func TestForkJoinOverlappedProcessingDominatesWhenLarger(t *testing.T) {
	st := ForkJoin(0, 5*us, 500*us, Leaf(1, 100*us))
	c := Predict(st, params())
	if c.AsyncExecution != 500*us {
		t.Fatalf("async term should be the overlapped processing, got %v", c.AsyncExecution)
	}
	if c.SyncExecution != 5*us {
		t.Fatalf("Pseq not accounted: %+v", c)
	}
}

func TestSyncOvpChildrenCountTowardOverlap(t *testing.T) {
	st := &SubTxn{
		Container: 0,
		Async:     []*SubTxn{Leaf(1, 10*us)},
		SyncOvp:   []*SubTxn{Leaf(0, 200*us)},
	}
	c := Predict(st, params())
	if c.AsyncExecution != 200*us {
		t.Fatalf("overlapped synchronous child should dominate, got %v", c.AsyncExecution)
	}
	// A remote overlapped synchronous child also pays communication.
	st.SyncOvp = []*SubTxn{Leaf(2, 200*us)}
	c = Predict(st, params())
	if c.AsyncExecution != 230*us {
		t.Fatalf("remote overlapped sync child should pay Cs+Cr, got %v", c.AsyncExecution)
	}
}

func TestLocalAsyncChildrenPayNoCommunication(t *testing.T) {
	st := ForkJoin(0, 0, 0, Leaf(0, 100*us), Leaf(0, 60*us))
	if got := Latency(st, params()); got != 100*us {
		t.Fatalf("local async children should not pay communication, got %v", got)
	}
}

func TestNestedRecursion(t *testing.T) {
	// A root that sequentially calls a remote fork-join child.
	child := ForkJoin(1, 10*us, 0, Leaf(2, 50*us))
	root := Sequential(0, 20*us, child)
	p := params()
	// Child latency: 10 + (Cs + 50 + Cr) = 90µs. Root: 20 + 90 + Cs + Cr = 140µs.
	if got := Latency(root, p); got != 140*us {
		t.Fatalf("nested latency = %v, want 140µs", got)
	}
}

// TestMultiTransferFormulationOrdering encodes the four Smallbank
// multi-transfer formulations of §4.1.4 for a given size and checks that the
// model predicts the ordering the paper reports in Figure 5:
// fully-sync >= partially-async >= fully-async >= opt.
func TestMultiTransferFormulationOrdering(t *testing.T) {
	p := Params{Cs: 5 * us, Cr: 12 * us}
	const write = 3 * us // processing cost of one credit/debit
	for size := 1; size <= 7; size++ {
		fullySync := &SubTxn{Container: 0}
		partiallyAsync := &SubTxn{Container: 0}
		fullyAsync := &SubTxn{Container: 0}
		opt := &SubTxn{Container: 0}
		for i := 0; i < size; i++ {
			dest := i + 1
			// fully-sync: transfer sub-txn = sync credit (remote) + sync debit (local).
			transferSync := Sequential(0, 0, Leaf(dest, write), Leaf(0, write))
			fullySync.SyncSeq = append(fullySync.SyncSeq, transferSync)
			// partially-async: credit async, debit sync, per transfer.
			transferPart := &SubTxn{Container: 0,
				Async:   []*SubTxn{Leaf(dest, write)},
				SyncOvp: []*SubTxn{Leaf(0, write)},
			}
			partiallyAsync.SyncSeq = append(partiallyAsync.SyncSeq, transferPart)
			// fully-async: all credits async at one fork point, debits sync after.
			fullyAsync.Async = append(fullyAsync.Async, Leaf(dest, write))
			fullyAsync.SyncOvp = append(fullyAsync.SyncOvp, Leaf(0, write))
			// opt: all credits async, a single debit.
			opt.Async = append(opt.Async, Leaf(dest, write))
		}
		opt.SyncOvp = []*SubTxn{Leaf(0, write)}

		lSync := Latency(fullySync, p)
		lPart := Latency(partiallyAsync, p)
		lAsync := Latency(fullyAsync, p)
		lOpt := Latency(opt, p)
		if !(lSync >= lPart && lPart >= lAsync && lAsync >= lOpt) {
			t.Fatalf("size %d: ordering violated: sync=%v part=%v async=%v opt=%v",
				size, lSync, lPart, lAsync, lOpt)
		}
		if size >= 3 && !(lSync > lOpt) {
			t.Fatalf("size %d: fully-sync should be strictly slower than opt", size)
		}
	}
}

func TestLatencyMonotoneInParametersProperty(t *testing.T) {
	// Property: increasing Cs, Cr or any processing cost never decreases the
	// predicted latency of a fork-join transaction.
	f := func(nRaw, csRaw, crRaw, procRaw uint8) bool {
		n := int(nRaw%6) + 1
		base := Params{Cs: time.Duration(csRaw) * us, Cr: time.Duration(crRaw) * us}
		bigger := Params{Cs: base.Cs + 5*us, Cr: base.Cr + 5*us}
		proc := time.Duration(procRaw) * us
		build := func(extra time.Duration) *SubTxn {
			st := &SubTxn{Container: 0, Pseq: proc}
			for i := 0; i < n; i++ {
				st.Async = append(st.Async, Leaf(i+1, proc+extra))
			}
			return st
		}
		if Latency(build(0), bigger) < Latency(build(0), base) {
			return false
		}
		return Latency(build(10*us), base) >= Latency(build(0), base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsTotalMatchesLatency(t *testing.T) {
	st := Sequential(0, 10*us,
		Leaf(1, 20*us),
		ForkJoin(0, 5*us, 15*us, Leaf(2, 30*us), Leaf(3, 40*us)))
	p := params()
	if Predict(st, p).Total() != Latency(st, p) {
		t.Fatalf("Components.Total must equal Latency")
	}
}

package rel

import (
	"fmt"
	"sort"
)

// Operator is a pull-based relational operator: the classic open/next/close
// iterator contract. Columns are qualified "alias.col" names (or aggregate
// output names); Next returns nil at end of stream. Operators are
// single-threaded — a query pipeline runs entirely on the goroutine of the
// root (sub-)transaction that issued the query.
type Operator interface {
	Columns() []string
	Open() error
	Next() (Row, error)
	Close() error
}

// drain pulls an operator to completion and returns all rows.
func drain(op Operator) ([]Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var rows []Row
	for {
		row, err := op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

// colIndex resolves a qualified column name against an operator's columns.
func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// --- Scan --------------------------------------------------------------------

// sliceScan replays an already-materialized batch of rows. Leaf batches are
// fetched transactionally by the engine before planning (the greedy planner
// needs their actual sizes), so the scan operator proper is a replay.
type sliceScan struct {
	cols []string
	rows []Row
	pos  int
}

func (s *sliceScan) Columns() []string { return s.cols }
func (s *sliceScan) Open() error       { s.pos = 0; return nil }
func (s *sliceScan) Close() error      { return nil }

func (s *sliceScan) Next() (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// --- Filter ------------------------------------------------------------------

// predicate evaluates one compiled filter against a row.
type predicate func(Row) (bool, error)

// filterOp drops rows failing any predicate.
type filterOp struct {
	child Operator
	preds []predicate
}

func (f *filterOp) Columns() []string { return f.child.Columns() }
func (f *filterOp) Open() error       { return f.child.Open() }
func (f *filterOp) Close() error      { return f.child.Close() }

func (f *filterOp) Next() (Row, error) {
next:
	for {
		row, err := f.child.Next()
		if err != nil || row == nil {
			return row, err
		}
		for _, p := range f.preds {
			ok, err := p(row)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue next
			}
		}
		return row, nil
	}
}

// --- Join --------------------------------------------------------------------

// hashJoinOp equi-joins a streamed left input against a materialized right
// batch: Open builds a hash table over the right rows' join-column values,
// Next probes it with each left row and emits the concatenated matches. With
// no join columns every row pair matches (cross join), which the planner only
// produces for disconnected query graphs.
type hashJoinOp struct {
	left      Operator
	rightCols []string
	rightRows []Row
	leftIdx   []int // join columns in left's output
	rightIdx  []int // join columns in the right batch

	cols    []string
	table   map[string][]Row
	keyBuf  []byte // reusable probe-key scratch
	pending []Row  // matches of the current left row not yet emitted
	current Row    // current left row
}

func newHashJoinOp(left Operator, rightCols []string, rightRows []Row, leftIdx, rightIdx []int) *hashJoinOp {
	cols := append(append([]string{}, left.Columns()...), rightCols...)
	return &hashJoinOp{
		left: left, rightCols: rightCols, rightRows: rightRows,
		leftIdx: leftIdx, rightIdx: rightIdx, cols: cols,
	}
}

func (j *hashJoinOp) Columns() []string { return j.cols }

func (j *hashJoinOp) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	j.table = make(map[string][]Row, len(j.rightRows))
	for _, row := range j.rightRows {
		key, err := joinKey(row, j.rightIdx)
		if err != nil {
			return err
		}
		j.table[key] = append(j.table[key], row)
	}
	j.pending, j.current = nil, nil
	return nil
}

func (j *hashJoinOp) Close() error {
	j.table, j.pending, j.current = nil, nil, nil
	return j.left.Close()
}

func (j *hashJoinOp) Next() (Row, error) {
	for {
		if len(j.pending) > 0 {
			right := j.pending[0]
			j.pending = j.pending[1:]
			out := make(Row, 0, len(j.current)+len(right))
			out = append(append(out, j.current...), right...)
			return out, nil
		}
		row, err := j.left.Next()
		if err != nil || row == nil {
			return nil, err
		}
		// Probe with a reused scratch buffer: the map lookup through
		// string(j.keyBuf) does not materialize a string, so steady-state
		// probing allocates nothing.
		var err2 error
		j.keyBuf, err2 = appendJoinKey(j.keyBuf[:0], row, j.leftIdx)
		if err2 != nil {
			return nil, err2
		}
		j.current = row
		j.pending = j.table[string(j.keyBuf)]
	}
}

// appendJoinKey appends an order-preserving encoded key built from the given
// columns of a row to dst, for hash-join and group-by buckets.
func appendJoinKey(dst []byte, row Row, idx []int) ([]byte, error) {
	for _, i := range idx {
		var err error
		dst, err = appendValueKey(dst, row[i])
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// joinKey is appendJoinKey materialized as a string, for map-key storage on
// the build side.
func joinKey(row Row, idx []int) (string, error) {
	dst, err := appendJoinKey(nil, row, idx)
	return string(dst), err
}

// appendValueKey encodes a canonical row value by its dynamic type.
func appendValueKey(dst []byte, v any) ([]byte, error) {
	switch tv := v.(type) {
	case int64:
		return AppendKeyInt64(dst, tv), nil
	case float64:
		return AppendKeyFloat64(dst, tv), nil
	case string:
		return AppendKeyString(dst, tv), nil
	case bool:
		return AppendKeyBool(dst, tv), nil
	case []byte:
		return AppendKeyString(dst, string(tv)), nil
	}
	return nil, fmt.Errorf("rel: query: cannot key %T value", v)
}

// --- Project -----------------------------------------------------------------

// projectOp narrows the output to the named columns.
type projectOp struct {
	child Operator
	cols  []string
	idx   []int
}

func newProjectOp(child Operator, cols []string) (Operator, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := colIndex(child.Columns(), c)
		if j < 0 {
			return nil, fmt.Errorf("rel: query: projected column %q does not exist", c)
		}
		idx[i] = j
	}
	return &projectOp{child: child, cols: cols, idx: idx}, nil
}

func (p *projectOp) Columns() []string { return p.cols }
func (p *projectOp) Open() error       { return p.child.Open() }
func (p *projectOp) Close() error      { return p.child.Close() }

func (p *projectOp) Next() (Row, error) {
	row, err := p.child.Next()
	if err != nil || row == nil {
		return row, err
	}
	out := make(Row, len(p.idx))
	for i, j := range p.idx {
		out[i] = row[j]
	}
	return out, nil
}

// --- Aggregate ---------------------------------------------------------------

// aggState accumulates one aggregate over one group.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	isF   bool
	min   any
	max   any
}

func (a *aggState) add(v any) error {
	a.count++
	switch tv := v.(type) {
	case int64:
		a.sumI += tv
	case float64:
		a.sumF += tv
		a.isF = true
	case nil:
		// COUNT(*) has no input column.
		return nil
	default:
		// MIN/MAX accept any comparable type; SUM/AVG reject it at result
		// time if the accumulator was never numeric.
	}
	if a.min == nil {
		a.min, a.max = v, v
		return nil
	}
	if c, err := compareValues(v, a.min); err == nil && c < 0 {
		a.min = v
	} else if err != nil {
		return err
	}
	if c, err := compareValues(v, a.max); err == nil && c > 0 {
		a.max = v
	} else if err != nil {
		return err
	}
	return nil
}

func (a *aggState) result(fn AggFunc, spec AggSpec) (any, error) {
	switch fn {
	case AggCount:
		return a.count, nil
	case AggSum:
		if a.isF {
			return a.sumF, nil
		}
		return a.sumI, nil
	case AggAvg:
		if a.count == 0 {
			return 0.0, nil
		}
		if a.isF {
			return a.sumF / float64(a.count), nil
		}
		return float64(a.sumI) / float64(a.count), nil
	case AggMin:
		return a.min, nil
	case AggMax:
		return a.max, nil
	}
	return nil, fmt.Errorf("rel: query: unknown aggregate for %q", spec.As)
}

// aggOp materializes its input, groups it by the group-by columns (one global
// group when there are none), and emits one row per group: group-by values
// followed by aggregate results, in first-seen group order.
type aggOp struct {
	child    Operator
	groupBy  []string
	groupIdx []int
	specs    []AggSpec
	specIdx  []int // input column per spec; -1 for COUNT(*)
	cols     []string

	out []Row
	pos int
}

func newAggOp(child Operator, groupBy []string, specs []AggSpec) (Operator, error) {
	a := &aggOp{child: child, groupBy: groupBy, specs: specs}
	for _, g := range groupBy {
		i := colIndex(child.Columns(), g)
		if i < 0 {
			return nil, fmt.Errorf("rel: query: group-by column %q does not exist", g)
		}
		a.groupIdx = append(a.groupIdx, i)
		a.cols = append(a.cols, g)
	}
	for _, s := range specs {
		i := -1
		if s.Func != AggCount {
			if i = colIndex(child.Columns(), s.Col); i < 0 {
				return nil, fmt.Errorf("rel: query: aggregate column %q does not exist", s.Col)
			}
		}
		a.specIdx = append(a.specIdx, i)
		a.cols = append(a.cols, s.As)
	}
	return a, nil
}

func (a *aggOp) Columns() []string { return a.cols }
func (a *aggOp) Close() error      { a.out = nil; return a.child.Close() }

func (a *aggOp) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	type group struct {
		key    Row
		states []*aggState
	}
	groups := make(map[string]*group)
	var order []string
	var keyBuf []byte
	for {
		row, err := a.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		// Group lookup probes with reused scratch; the string key is only
		// materialized when a new group is created.
		keyBuf, err = appendJoinKey(keyBuf[:0], row, a.groupIdx)
		if err != nil {
			return err
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			key := string(keyBuf)
			g = &group{states: make([]*aggState, len(a.specs))}
			for i := range g.states {
				g.states[i] = &aggState{}
			}
			for _, gi := range a.groupIdx {
				g.key = append(g.key, row[gi])
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, si := range a.specIdx {
			var v any
			if si >= 0 {
				v = row[si]
			}
			if err := g.states[i].add(v); err != nil {
				return err
			}
		}
	}
	// A global aggregate over zero rows still emits one row of zero values.
	if len(a.groupIdx) == 0 && len(order) == 0 {
		g := &group{states: make([]*aggState, len(a.specs))}
		for i := range g.states {
			g.states[i] = &aggState{}
		}
		groups[""], order = g, append(order, "")
	}
	a.out = make([]Row, 0, len(order))
	for _, key := range order {
		g := groups[key]
		row := append(Row{}, g.key...)
		for i, st := range g.states {
			v, err := st.result(a.specs[i].Func, a.specs[i])
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
	return nil
}

func (a *aggOp) Next() (Row, error) {
	if a.pos >= len(a.out) {
		return nil, nil
	}
	row := a.out[a.pos]
	a.pos++
	return row, nil
}

// --- Order -------------------------------------------------------------------

// orderOp materializes its input and sorts it by the order specs.
type orderOp struct {
	child Operator
	specs []OrderSpec
	idx   []int

	out []Row
	pos int
	err error
}

func newOrderOp(child Operator, specs []OrderSpec) (Operator, error) {
	o := &orderOp{child: child, specs: specs}
	for _, s := range specs {
		i := colIndex(child.Columns(), s.Col)
		if i < 0 {
			return nil, fmt.Errorf("rel: query: order-by column %q does not exist", s.Col)
		}
		o.idx = append(o.idx, i)
	}
	return o, nil
}

func (o *orderOp) Columns() []string { return o.child.Columns() }
func (o *orderOp) Close() error      { o.out = nil; return o.child.Close() }

func (o *orderOp) Open() error {
	if err := o.child.Open(); err != nil {
		return err
	}
	o.out, o.pos, o.err = nil, 0, nil
	for {
		row, err := o.child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		o.out = append(o.out, row)
	}
	sort.SliceStable(o.out, func(i, j int) bool {
		for k, ci := range o.idx {
			c, err := compareValues(o.out[i][ci], o.out[j][ci])
			if err != nil {
				if o.err == nil {
					o.err = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if o.specs[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return o.err
}

func (o *orderOp) Next() (Row, error) {
	if o.pos >= len(o.out) {
		return nil, nil
	}
	row := o.out[o.pos]
	o.pos++
	return row, nil
}

// --- Limit -------------------------------------------------------------------

// limitOp passes through the first n rows.
type limitOp struct {
	child Operator
	n     int
	seen  int
}

func (l *limitOp) Columns() []string { return l.child.Columns() }
func (l *limitOp) Open() error       { l.seen = 0; return l.child.Open() }
func (l *limitOp) Close() error      { return l.child.Close() }

func (l *limitOp) Next() (Row, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	row, err := l.child.Next()
	if err != nil || row == nil {
		return row, err
	}
	l.seen++
	return row, nil
}

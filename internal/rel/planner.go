package rel

import "fmt"

// plan is a compiled join pipeline plus the alias order it was built in.
type plan struct {
	root  Operator
	order []string
}

// planJoins picks a left-deep join order over the materialized leaves and
// builds the operator tree. The default planner is statistics-free greedy in
// the spirit of janus-datalog's "when greedy beats optimal": it never
// estimates cardinalities, it orders by the *actual* sizes of the filtered
// input batches — start from the smallest leaf, then repeatedly join the
// smallest leaf connected to the chosen set by at least one equi-join
// predicate, deferring disconnected leaves (cross products) until no
// connected leaf remains. Ties break by declaration order, so plans are
// deterministic.
//
// naive switches to pure declaration order (the classic left-deep strawman),
// kept as the ablation baseline for the query benchmark sweep.
func planJoins(leaves []*leaf, joins []JoinPred, naive bool) (*plan, error) {
	if len(leaves) == 1 && len(joins) > 0 {
		return nil, fmt.Errorf("rel: query: joins declared over a single source")
	}

	order := make([]*leaf, 0, len(leaves))
	if naive || len(leaves) == 1 {
		order = append(order, leaves...)
	} else {
		chosen := make(map[string]bool, len(leaves))
		remaining := append([]*leaf{}, leaves...)
		// Seed with the smallest leaf.
		best := 0
		for i, lf := range remaining {
			if len(lf.rows) < len(remaining[best].rows) {
				best = i
			}
		}
		order = append(order, remaining[best])
		chosen[remaining[best].alias] = true
		remaining = append(remaining[:best], remaining[best+1:]...)

		connected := func(lf *leaf) bool {
			for _, j := range joins {
				if (chosen[j.LeftAlias] && j.RightAlias == lf.alias) ||
					(chosen[j.RightAlias] && j.LeftAlias == lf.alias) {
					return true
				}
			}
			return false
		}
		for len(remaining) > 0 {
			best := -1
			for i, lf := range remaining {
				if !connected(lf) {
					continue
				}
				if best < 0 || len(lf.rows) < len(remaining[best].rows) {
					best = i
				}
			}
			if best < 0 {
				// No leaf joins the chosen set: unavoidable cross product.
				// Take the smallest remaining leaf to keep it cheap.
				best = 0
				for i, lf := range remaining {
					if len(lf.rows) < len(remaining[best].rows) {
						best = i
					}
				}
			}
			order = append(order, remaining[best])
			chosen[remaining[best].alias] = true
			remaining = append(remaining[:best], remaining[best+1:]...)
		}
	}

	// Build the left-deep tree: each join applies every predicate between the
	// current set and the incoming leaf as one multi-column hash join.
	var root Operator = &sliceScan{cols: order[0].cols, rows: order[0].rows}
	aliases := []string{order[0].alias}
	inSet := map[string]bool{order[0].alias: true}
	for _, lf := range order[1:] {
		var leftIdx, rightIdx []int
		for _, j := range joins {
			var setCol, leafCol string
			switch {
			case inSet[j.LeftAlias] && j.RightAlias == lf.alias:
				setCol, leafCol = j.LeftAlias+"."+j.LeftCol, lf.alias+"."+j.RightCol
			case inSet[j.RightAlias] && j.LeftAlias == lf.alias:
				setCol, leafCol = j.RightAlias+"."+j.RightCol, lf.alias+"."+j.LeftCol
			default:
				continue
			}
			li := colIndex(root.Columns(), setCol)
			ri := colIndex(lf.cols, leafCol)
			if li < 0 || ri < 0 {
				return nil, fmt.Errorf("rel: query: cannot resolve join %s = %s", setCol, leafCol)
			}
			leftIdx = append(leftIdx, li)
			rightIdx = append(rightIdx, ri)
		}
		root = newHashJoinOp(root, lf.cols, lf.rows, leftIdx, rightIdx)
		aliases = append(aliases, lf.alias)
		inSet[lf.alias] = true
	}

	// Reject join predicates that never applied (referencing the same alias
	// pair twice is fine; referencing aliases outside the query was caught by
	// Execute's validation, so this guards planner bugs only).
	if len(leaves) > 1 {
		for _, j := range joins {
			if !inSet[j.LeftAlias] || !inSet[j.RightAlias] {
				return nil, fmt.Errorf("rel: query: join references alias outside the query (%s, %s)", j.LeftAlias, j.RightAlias)
			}
		}
	}
	return &plan{root: root, order: aliases}, nil
}

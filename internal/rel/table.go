package rel

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"reactdb/internal/kv"
)

// Table is one relation of one reactor: a schema plus an ordered primary-key
// index of versioned records. Tables expose non-transactional primitives; all
// transactional access goes through package occ (which reads and writes the
// records obtained here) and the query layer in package engine.
type Table struct {
	schema  *Schema
	index   *kv.BTree
	version atomic.Uint64 // structural version, bumped on committed insert/delete (phantom guard)

	// secondary holds one entry tree per declared index (parallel to
	// schema.Indexes()). Entry keys are indexed-column values followed by the
	// primary key; the entry record's immutable payload is the encoded
	// primary key. Entries are added and removed whole — never mutated — by
	// ApplyIndexWrite, always under structMu.
	secondary []*kv.BTree

	// structMu serializes committed structural changes against concurrent
	// scan validation (see occ.ScanGuard). It is held only for the short
	// write phase of commits that insert or delete rows.
	structMu sync.Mutex

	// ixOld/ixNew are entry-key scratch buffers reused by ApplyIndexWrite.
	// They are only touched under structMu (or by single-threaded loaders),
	// and the entry trees copy key bytes on insert, so reuse is safe.
	ixOld, ixNew []byte
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	t := &Table{schema: schema, index: kv.NewBTree()}
	for range schema.Indexes() {
		t.secondary = append(t.secondary, kv.NewBTree())
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Name returns the relation name.
func (t *Table) Name() string { return t.schema.Name() }

// Len returns the number of indexed keys (including logically absent records).
func (t *Table) Len() int { return t.index.Len() }

// Version returns the structural version used for phantom validation: any
// committed insert or delete bumps it.
func (t *Table) Version() uint64 { return t.version.Load() }

// BumpVersion records a committed structural change (insert or delete).
func (t *Table) BumpVersion() { t.version.Add(1) }

// LockStructure acquires the structural latch held while a committing
// transaction bumps the table version. Together with Version/BumpVersion this
// makes Table satisfy occ.ScanGuard.
func (t *Table) LockStructure() { t.structMu.Lock() }

// TryLockStructure attempts to acquire the structural latch without blocking.
// Scan validation uses it so that two preparing transactions can never
// deadlock on each other's guards.
func (t *Table) TryLockStructure() bool { return t.structMu.TryLock() }

// UnlockStructure releases the structural latch.
func (t *Table) UnlockStructure() { t.structMu.Unlock() }

// Get returns the record indexed under the encoded key, or nil. The key
// buffer is not retained.
func (t *Table) Get(key []byte) *kv.Record { return t.index.Get(key) }

// GetOrInsert returns the record under key, inserting a fresh absent record if
// the key is not indexed yet. The boolean reports whether an insert happened.
// The key bytes are copied on insert, so callers may reuse their buffers.
func (t *Table) GetOrInsert(key []byte) (*kv.Record, bool) {
	return t.index.GetOrInsert(key, kv.NewRecord())
}

// AscendRange iterates records with lo <= key < hi in ascending key order. A
// nil/empty hi is unbounded. Key slices passed to fn are tree-owned and
// immutable — they remain valid after the scan.
func (t *Table) AscendRange(lo, hi []byte, fn func(key []byte, rec *kv.Record) bool) {
	t.index.AscendRange(lo, hi, fn)
}

// DescendRange iterates records with lo <= key < hi in descending key order.
func (t *Table) DescendRange(lo, hi []byte, fn func(key []byte, rec *kv.Record) bool) {
	t.index.DescendRange(lo, hi, fn)
}

// AscendPrefix iterates records whose key starts with prefix, ascending. No
// successor bound is materialized — the underlying tree stops at the first
// key that no longer carries the prefix.
func (t *Table) AscendPrefix(prefix []byte, fn func(key []byte, rec *kv.Record) bool) {
	t.index.AscendPrefix(prefix, fn)
}

// NewCursor returns a reusable cursor over the primary index for [lo, hi).
// See kv.Cursor for the reuse and epoch-revalidation contract; callers that
// already own a cursor should Reset it onto Index() instead.
func (t *Table) NewCursor(lo, hi []byte) *kv.Cursor {
	return t.index.NewCursor(lo, hi)
}

// Index exposes the primary-key tree so callers can Reset reusable cursors
// onto it. The tree must only be mutated through Table methods.
func (t *Table) Index() *kv.BTree { return t.index }

// --- Secondary indexes -------------------------------------------------------

// HasIndexes reports whether the table has any declared secondary index. The
// write path uses it to decide whether updates must carry the table as their
// structural guard (index entries may move even when the primary key does
// not).
func (t *Table) HasIndexes() bool { return len(t.secondary) > 0 }

// IndexLen returns the number of entries in the index at position pos, for
// tests and consistency checks.
func (t *Table) IndexLen(pos int) int { return t.secondary[pos].Len() }

// AscendIndexPrefix iterates the primary keys of rows whose entry in the index
// at position pos starts with prefix, in entry-key order (indexed column
// values, then primary key). The callback receives the encoded primary key —
// the entry record's immutable payload, valid after the scan without copying.
// Callers must re-read the row transactionally and re-check predicates, since
// index entries are only as fresh as the last committed write.
func (t *Table) AscendIndexPrefix(pos int, prefix []byte, fn func(pk []byte) bool) {
	t.secondary[pos].AscendPrefix(prefix, func(_ []byte, rec *kv.Record) bool {
		return fn(rec.Data())
	})
}

// ApplyIndexWrite maintains all secondary indexes across one installed write:
// oldData/oldPresent describe the record contents before the install (captured
// while the record latch was held), newData the payload of an insert or
// update, deleted whether the write was a delete. It returns true if any index
// entry was added or removed, in which case the caller must bump the table's
// structural version so concurrent index scans validate against the change.
//
// The caller must hold the table's structural latch (occ locks it for every
// guarded write), making entry removal+insertion atomic with respect to scan
// validation. Payload decode failures panic: payloads were encoded by this
// schema, so a failure indicates corruption, never user error.
func (t *Table) ApplyIndexWrite(oldData []byte, oldPresent bool, newData []byte, deleted bool) bool {
	if len(t.secondary) == 0 {
		return false
	}
	var oldRow, newRow Row
	var err error
	if oldPresent {
		if oldRow, err = t.schema.DecodeRow(oldData); err != nil {
			panic(fmt.Sprintf("rel: %s: corrupt row during index maintenance: %v", t.Name(), err))
		}
	}
	if !deleted {
		if newRow, err = t.schema.DecodeRow(newData); err != nil {
			panic(fmt.Sprintf("rel: %s: corrupt row during index maintenance: %v", t.Name(), err))
		}
	}
	// The entry-key scratch buffers are reused across indexes and calls: the
	// entry trees copy key bytes on insert and Delete does not retain its
	// argument. The primary key is encoded once, fresh, because the inserted
	// entry record retains it as its payload.
	var pk []byte
	if newRow != nil {
		if pk, err = t.schema.AppendKey(nil, newRow); err != nil {
			panic(fmt.Sprintf("rel: %s: index maintenance: %v", t.Name(), err))
		}
	}
	changed := false
	oldKey, newKey := t.ixOld, t.ixNew
	for pos, ix := range t.schema.Indexes() {
		oldKey, newKey = oldKey[:0], newKey[:0]
		if oldRow != nil {
			if oldKey, err = t.schema.AppendIndexKey(oldKey, ix, oldRow); err != nil {
				panic(fmt.Sprintf("rel: %s: index %s: %v", t.Name(), ix.Name(), err))
			}
		}
		if newRow != nil {
			if newKey, err = t.schema.AppendIndexKey(newKey, ix, newRow); err != nil {
				panic(fmt.Sprintf("rel: %s: index %s: %v", t.Name(), ix.Name(), err))
			}
		}
		if oldRow != nil && newRow != nil && bytes.Equal(oldKey, newKey) {
			continue // update kept the indexed columns; entry unchanged
		}
		if oldRow != nil {
			t.secondary[pos].Delete(oldKey)
			changed = true
		}
		if newRow != nil {
			t.secondary[pos].Insert(newKey, kv.NewCommittedRecord(pk, 0))
			changed = true
		}
	}
	t.ixOld, t.ixNew = oldKey, newKey
	return changed
}

// LoadRow inserts a committed row outside of any transaction. It is used by
// benchmark loaders and example setup code and must not run concurrently with
// transactions on the same table.
func (t *Table) LoadRow(row Row) error {
	key, err := t.schema.AppendKey(nil, row)
	if err != nil {
		return err
	}
	data, err := t.schema.EncodeRow(row)
	if err != nil {
		return err
	}
	if prev := t.index.Insert(key, kv.NewCommittedRecord(data, 0)); prev != nil {
		return fmt.Errorf("rel: %s: duplicate primary key during load", t.Name())
	}
	t.ApplyIndexWrite(nil, false, data, false)
	t.BumpVersion()
	return nil
}

// MustLoadRow is LoadRow that panics on error.
func (t *Table) MustLoadRow(row Row) {
	if err := t.LoadRow(row); err != nil {
		panic(err)
	}
}

// ReadRow performs a non-transactional snapshot read of the row stored under
// key, for tests and verification code. It returns nil if the key is absent.
func (t *Table) ReadRow(key []byte) (Row, error) {
	rec := t.index.Get(key)
	if rec == nil {
		return nil, nil
	}
	data, _, present := rec.StableRead()
	if !present {
		return nil, nil
	}
	return t.schema.DecodeRow(data)
}

// Catalog is the set of relations of a single reactor, keyed by relation name.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// CreateTable adds a relation with the given schema. It fails if a relation
// with the same name already exists.
func (c *Catalog) CreateTable(schema *Schema) (*Table, error) {
	if _, exists := c.tables[schema.Name()]; exists {
		return nil, fmt.Errorf("rel: table %q already exists", schema.Name())
	}
	t := NewTable(schema)
	c.tables[schema.Name()] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics on error.
func (c *Catalog) MustCreateTable(schema *Schema) *Table {
	t, err := c.CreateTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named relation, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables returns all relations in the catalog (iteration order unspecified).
func (c *Catalog) Tables() map[string]*Table { return c.tables }

package rel

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator usable in query filters.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL-ish spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// AggFunc is an aggregate function usable in queries.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// Source is one input of a query: a relation read under an alias from one or
// more reactors (the union of the relation's rows across those reactors). An
// empty reactor list means "the current reactor" when the query runs inside a
// procedure via Context.Query; Database.Query requires explicit reactors.
type Source struct {
	Alias    string
	Relation string
	Reactors []string
}

// Filter is a single-column predicate on one source.
type Filter struct {
	Alias string
	Col   string
	Op    CmpOp
	Value any
}

// JoinPred is an equi-join predicate between two sources.
type JoinPred struct {
	LeftAlias  string
	LeftCol    string
	RightAlias string
	RightCol   string
}

// AggSpec is one aggregate output column.
type AggSpec struct {
	Func AggFunc
	Col  string // qualified input column ("alias.col"); empty for AggCount
	As   string // output column name
}

// OrderSpec orders the final output by one of its columns.
type OrderSpec struct {
	Col  string
	Desc bool
}

// Query is a declarative read-only query over the relations of one or many
// reactors, built incrementally: sources (From), predicates (Where), equi-
// joins (Join), aggregation (GroupBy + Sum/Count/...), projection (Select),
// ordering (OrderBy) and Limit. Builder methods record the first error and
// make every later call a no-op, so call sites can chain without intermediate
// checks; execution surfaces the recorded error.
//
// Join orders are chosen by a statistics-free greedy planner over the actual
// materialized input sizes (see planner.go); Naive switches to the
// declaration-order left-deep plan for ablations.
type Query struct {
	sources []Source
	filters []Filter
	joins   []JoinPred
	groupBy []string
	aggs    []AggSpec
	project []string
	order   []OrderSpec
	limit   int
	naive   bool
	err     error
}

// NewQuery returns an empty query.
func NewQuery() *Query { return &Query{} }

func (q *Query) fail(format string, args ...any) *Query {
	if q.err == nil {
		q.err = fmt.Errorf("rel: query: "+format, args...)
	}
	return q
}

// From adds a source: relation read under alias from the given reactors.
func (q *Query) From(alias, relation string, reactors ...string) *Query {
	if q.err != nil {
		return q
	}
	if alias == "" || relation == "" {
		return q.fail("From needs an alias and a relation")
	}
	for _, s := range q.sources {
		if s.Alias == alias {
			return q.fail("duplicate source alias %q", alias)
		}
	}
	q.sources = append(q.sources, Source{Alias: alias, Relation: relation, Reactors: reactors})
	return q
}

// Where adds a predicate on one source's column.
func (q *Query) Where(alias, col string, op CmpOp, value any) *Query {
	if q.err != nil {
		return q
	}
	if op > Ge {
		return q.fail("invalid comparison operator on %s.%s", alias, col)
	}
	q.filters = append(q.filters, Filter{Alias: alias, Col: col, Op: op, Value: value})
	return q
}

// Join adds an equi-join predicate between two sources.
func (q *Query) Join(leftAlias, leftCol, rightAlias, rightCol string) *Query {
	if q.err != nil {
		return q
	}
	if leftAlias == rightAlias {
		return q.fail("join joins alias %q with itself", leftAlias)
	}
	q.joins = append(q.joins, JoinPred{LeftAlias: leftAlias, LeftCol: leftCol, RightAlias: rightAlias, RightCol: rightCol})
	return q
}

// GroupBy groups the aggregate outputs by the given qualified columns
// ("alias.col"). Without aggregates it is an error at execution.
func (q *Query) GroupBy(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	q.groupBy = append(q.groupBy, cols...)
	return q
}

// Count adds a COUNT(*) aggregate output named as.
func (q *Query) Count(as string) *Query { return q.agg(AggCount, "", as) }

// Sum adds a SUM(col) aggregate output named as; col is "alias.col".
func (q *Query) Sum(col, as string) *Query { return q.agg(AggSum, col, as) }

// Min adds a MIN(col) aggregate output named as.
func (q *Query) Min(col, as string) *Query { return q.agg(AggMin, col, as) }

// Max adds a MAX(col) aggregate output named as.
func (q *Query) Max(col, as string) *Query { return q.agg(AggMax, col, as) }

// Avg adds an AVG(col) aggregate output named as.
func (q *Query) Avg(col, as string) *Query { return q.agg(AggAvg, col, as) }

func (q *Query) agg(fn AggFunc, col, as string) *Query {
	if q.err != nil {
		return q
	}
	if as == "" {
		return q.fail("aggregate needs an output name")
	}
	if fn != AggCount && col == "" {
		return q.fail("aggregate %q needs an input column", as)
	}
	q.aggs = append(q.aggs, AggSpec{Func: fn, Col: col, As: as})
	return q
}

// Select projects the output to the given qualified columns ("alias.col").
// Queries with aggregates ignore Select (their output is groupBy + aggs).
func (q *Query) Select(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	q.project = append(q.project, cols...)
	return q
}

// OrderBy sorts the final output by the named output column.
func (q *Query) OrderBy(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	q.order = append(q.order, OrderSpec{Col: col, Desc: desc})
	return q
}

// Limit caps the number of output rows. Zero means unlimited.
func (q *Query) Limit(n int) *Query {
	if q.err != nil {
		return q
	}
	if n < 0 {
		return q.fail("negative limit %d", n)
	}
	q.limit = n
	return q
}

// Naive disables the greedy join planner and joins sources in declaration
// order (left-deep), for ablations and benchmarks.
func (q *Query) Naive() *Query {
	if q.err != nil {
		return q
	}
	q.naive = true
	return q
}

// Err returns the first error recorded by the builder, if any.
func (q *Query) Err() error { return q.err }

// Sources returns the declared sources (callers must not modify the slice).
func (q *Query) Sources() []Source { return q.sources }

// Filters returns the predicates declared on alias.
func (q *Query) Filters(alias string) []Filter {
	var out []Filter
	for _, f := range q.filters {
		if f.Alias == alias {
			out = append(out, f)
		}
	}
	return out
}

// The remaining accessors expose the built query component-by-component, in
// declaration order, so a wire front-end can serialize a query and rebuild it
// with the same builder calls on the other side (see internal/server).
// Callers must not modify the returned slices.

// AllFilters returns every declared predicate.
func (q *Query) AllFilters() []Filter { return q.filters }

// Joins returns the declared equi-join predicates.
func (q *Query) Joins() []JoinPred { return q.joins }

// GroupCols returns the GroupBy columns.
func (q *Query) GroupCols() []string { return q.groupBy }

// Aggregates returns the aggregate output specs.
func (q *Query) Aggregates() []AggSpec { return q.aggs }

// Projection returns the Select columns.
func (q *Query) Projection() []string { return q.project }

// Ordering returns the OrderBy specs.
func (q *Query) Ordering() []OrderSpec { return q.order }

// LimitCount returns the output row cap (zero means unlimited).
func (q *Query) LimitCount() int { return q.limit }

// IsNaive reports whether the greedy join planner is disabled.
func (q *Query) IsNaive() bool { return q.naive }

// Result is the materialized output of a query.
type Result struct {
	// Columns are the output column names: qualified "alias.col" names, or
	// groupBy columns followed by aggregate names for aggregate queries.
	Columns []string
	// Rows are the output tuples, parallel to Columns.
	Rows []Row
	// JoinOrder is the alias order the planner chose (diagnostics).
	JoinOrder []string
	// AccessPaths records, per alias, how the leaf was read ("scan",
	// "pk-prefix", or "index:<name>"), aggregated across reactors.
	AccessPaths map[string]string
}

// Col returns the position of the named output column, or -1.
func (r *Result) Col(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// LeafBatch is one materialized query input: the rows of one source (possibly
// the union over several reactors), fetched transactionally by the engine.
// The engine may overselect (e.g. return index-prefix candidates); Execute
// re-applies every filter exactly before planning.
type LeafBatch struct {
	Schema *Schema
	Rows   []Row
	Path   string // access path description for diagnostics
}

// FetchFunc materializes one source. The filters argument carries the
// predicates declared on the source's alias, so the fetcher can pick an
// access path (primary-key prefix, secondary index, or full scan).
type FetchFunc func(src Source, filters []Filter) (*LeafBatch, error)

// Execute validates and runs the query: it materializes every source through
// fetch, re-applies the filters, plans the join order, and runs the operator
// pipeline (scan → filter → joins → aggregate/project → order → limit).
func (q *Query) Execute(fetch FetchFunc) (*Result, error) {
	if q.err != nil {
		return nil, q.err
	}
	if len(q.sources) == 0 {
		return nil, fmt.Errorf("rel: query: no sources")
	}

	// Materialize and filter every leaf.
	leaves := make([]*leaf, len(q.sources))
	paths := make(map[string]string, len(q.sources))
	for i, src := range q.sources {
		filters := q.Filters(src.Alias)
		batch, err := fetch(src, filters)
		if err != nil {
			return nil, err
		}
		lf, err := newLeaf(src.Alias, batch.Schema, batch.Rows, filters)
		if err != nil {
			return nil, err
		}
		leaves[i] = lf
		paths[src.Alias] = batch.Path
	}

	// Validate join predicates against the leaves.
	for _, j := range q.joins {
		for _, side := range []struct{ alias, col string }{
			{j.LeftAlias, j.LeftCol}, {j.RightAlias, j.RightCol},
		} {
			lf := findLeaf(leaves, side.alias)
			if lf == nil {
				return nil, fmt.Errorf("rel: query: join references unknown alias %q", side.alias)
			}
			if lf.schema.Col(side.col) < 0 {
				return nil, fmt.Errorf("rel: query: join column %s.%s does not exist", side.alias, side.col)
			}
		}
	}

	plan, err := planJoins(leaves, q.joins, q.naive)
	if err != nil {
		return nil, err
	}
	op := plan.root

	// Aggregation, ordering, projection. Like SQL, ORDER BY can reference
	// columns the projection drops, so without aggregation the sort runs
	// before the projection; with aggregation it orders the aggregate output.
	switch {
	case len(q.aggs) > 0:
		if op, err = newAggOp(op, q.groupBy, q.aggs); err != nil {
			return nil, err
		}
		if len(q.order) > 0 {
			if op, err = newOrderOp(op, q.order); err != nil {
				return nil, err
			}
		}
	case len(q.groupBy) > 0:
		return nil, fmt.Errorf("rel: query: GroupBy without aggregates")
	default:
		if len(q.order) > 0 {
			if op, err = newOrderOp(op, q.order); err != nil {
				return nil, err
			}
		}
		if len(q.project) > 0 {
			if op, err = newProjectOp(op, q.project); err != nil {
				return nil, err
			}
		}
	}
	if q.limit > 0 {
		op = &limitOp{child: op, n: q.limit}
	}

	res := &Result{Columns: op.Columns(), JoinOrder: plan.order, AccessPaths: paths}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	for {
		row, err := op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return res, nil
		}
		res.Rows = append(res.Rows, row)
	}
}

// leaf is one filtered, materialized query input with qualified column names.
type leaf struct {
	alias  string
	schema *Schema
	cols   []string // qualified "alias.col" names
	rows   []Row
}

func findLeaf(leaves []*leaf, alias string) *leaf {
	for _, lf := range leaves {
		if lf.alias == alias {
			return lf
		}
	}
	return nil
}

// newLeaf runs the fetched rows through the scan and filter operators
// (filters are evaluated here, below the joins, regardless of whether the
// engine's access path already narrowed the candidates) and materializes the
// result so the planner can see actual post-filter sizes.
func newLeaf(alias string, schema *Schema, rows []Row, filters []Filter) (*leaf, error) {
	preds := make([]predicate, 0, len(filters))
	for _, f := range filters {
		ci := schema.Col(f.Col)
		if ci < 0 {
			return nil, fmt.Errorf("rel: query: filter column %s.%s does not exist", alias, f.Col)
		}
		want, err := normalize(f.Value, schema.Columns()[ci].Type)
		if err != nil {
			return nil, fmt.Errorf("rel: query: filter on %s.%s: %w", alias, f.Col, err)
		}
		ci, op := ci, f.Op
		preds = append(preds, func(row Row) (bool, error) {
			c, err := compareValues(row[ci], want)
			if err != nil {
				return false, err
			}
			return opHolds(op, c), nil
		})
	}
	cols := make([]string, schema.NumColumns())
	for i, c := range schema.Columns() {
		cols[i] = alias + "." + c.Name
	}
	var op Operator = &sliceScan{cols: cols, rows: rows}
	if len(preds) > 0 {
		op = &filterOp{child: op, preds: preds}
	}
	out, err := drain(op)
	if err != nil {
		return nil, err
	}
	return &leaf{alias: alias, schema: schema, cols: cols, rows: out}, nil
}

// opHolds interprets a three-way comparison under op.
func opHolds(op CmpOp, cmp int) bool {
	switch op {
	case Eq:
		return cmp == 0
	case Ne:
		return cmp != 0
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

// compareValues compares two canonical row values of the same column type.
func compareValues(a, b any) (int, error) {
	switch av := a.(type) {
	case int64:
		bv, ok := b.(int64)
		if !ok {
			return 0, typeMismatch(a, b)
		}
		return cmpOrdered(av, bv), nil
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return 0, typeMismatch(a, b)
		}
		return cmpOrdered(av, bv), nil
	case string:
		bv, ok := b.(string)
		if !ok {
			return 0, typeMismatch(a, b)
		}
		return strings.Compare(av, bv), nil
	case bool:
		bv, ok := b.(bool)
		if !ok {
			return 0, typeMismatch(a, b)
		}
		switch {
		case av == bv:
			return 0, nil
		case !av:
			return -1, nil
		default:
			return 1, nil
		}
	case []byte:
		bv, ok := b.([]byte)
		if !ok {
			return 0, typeMismatch(a, b)
		}
		return strings.Compare(string(av), string(bv)), nil
	}
	return 0, fmt.Errorf("rel: query: cannot compare %T values", a)
}

func typeMismatch(a, b any) error {
	return fmt.Errorf("rel: query: cannot compare %T with %T", a, b)
}

func cmpOrdered[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

package rel

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func accountSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("account",
		[]Column{
			{Name: "id", Type: Int64},
			{Name: "name", Type: String},
			{Name: "balance", Type: Float64},
			{Name: "active", Type: Bool},
			{Name: "blob", Type: Bytes},
		}, "id")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	cols := []Column{{Name: "a", Type: Int64}}
	cases := []struct {
		name    string
		colsArg []Column
		key     []string
	}{
		{"", cols, []string{"a"}},
		{"t", nil, []string{"a"}},
		{"t", cols, nil},
		{"t", cols, []string{"missing"}},
		{"t", []Column{{Name: "", Type: Int64}}, []string{""}},
		{"t", []Column{{Name: "a", Type: Int64}, {Name: "a", Type: String}}, []string{"a"}},
		{"t", []Column{{Name: "a", Type: ColType(99)}}, []string{"a"}},
	}
	for i, c := range cases {
		if _, err := NewSchema(c.name, c.colsArg, c.key...); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestSchemaColLookup(t *testing.T) {
	s := accountSchema(t)
	if s.Col("balance") != 2 {
		t.Fatalf("Col(balance) = %d, want 2", s.Col("balance"))
	}
	if s.Col("nope") != -1 {
		t.Fatalf("Col of missing column should be -1")
	}
	if s.MustCol("name") != 1 {
		t.Fatalf("MustCol(name) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustCol of missing column should panic")
		}
	}()
	s.MustCol("nope")
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	s := accountSchema(t)
	row := Row{int64(17), "alice", 103.25, true, []byte{0, 1, 2, 255}}
	data, err := s.EncodeRow(row)
	if err != nil {
		t.Fatalf("EncodeRow: %v", err)
	}
	got, err := s.DecodeRow(data)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if !reflect.DeepEqual(got, row) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, row)
	}
}

func TestEncodeRowNormalizesIntWidths(t *testing.T) {
	s := accountSchema(t)
	// Plain ints and float-less ints should be accepted and normalized.
	data, err := s.EncodeRow(Row{5, "bob", 7, false, []byte{}})
	if err != nil {
		t.Fatalf("EncodeRow: %v", err)
	}
	row, err := s.DecodeRow(data)
	if err != nil {
		t.Fatalf("DecodeRow: %v", err)
	}
	if row.Int64(0) != 5 || row.Float64(2) != 7 {
		t.Fatalf("normalization failed: %#v", row)
	}
}

func TestEncodeRowErrors(t *testing.T) {
	s := accountSchema(t)
	if _, err := s.EncodeRow(Row{int64(1), "x", 1.0, true}); err == nil {
		t.Fatalf("expected arity error")
	}
	if _, err := s.EncodeRow(Row{"wrong", "x", 1.0, true, []byte{}}); err == nil {
		t.Fatalf("expected type error")
	}
}

func TestDecodeRowCorruption(t *testing.T) {
	s := accountSchema(t)
	data := s.MustEncodeRow(Row{int64(1), "abc", 1.5, true, []byte{9}})
	if _, err := s.DecodeRow(data[:len(data)-1]); err == nil {
		t.Fatalf("expected error for truncated payload")
	}
	if _, err := s.DecodeRow(append(data, 0)); err == nil {
		t.Fatalf("expected error for trailing bytes")
	}
}

func TestRowRoundTripProperty(t *testing.T) {
	s := accountSchema(t)
	f := func(id int64, name string, bal float64, active bool, blob []byte) bool {
		if math.IsNaN(bal) {
			return true
		}
		if blob == nil {
			blob = []byte{}
		}
		row := Row{id, name, bal, active, blob}
		data, err := s.EncodeRow(row)
		if err != nil {
			return false
		}
		got, err := s.DecodeRow(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOfAndEncodeKey(t *testing.T) {
	s := MustSchema("orders",
		[]Column{
			{Name: "provider", Type: String},
			{Name: "wallet", Type: Int64},
			{Name: "value", Type: Float64},
		}, "provider", "wallet")
	row := Row{"visa", int64(42), 10.5}
	k1, err := s.KeyOf(row)
	if err != nil {
		t.Fatalf("KeyOf: %v", err)
	}
	k2, err := s.EncodeKey("visa", int64(42))
	if err != nil {
		t.Fatalf("EncodeKey: %v", err)
	}
	if k1 != k2 {
		t.Fatalf("KeyOf and EncodeKey disagree")
	}
	prefix, err := s.EncodeKey("visa")
	if err != nil {
		t.Fatalf("EncodeKey prefix: %v", err)
	}
	if len(prefix) >= len(k1) || k1[:len(prefix)] != prefix {
		t.Fatalf("prefix key is not a prefix of the full key")
	}
	if _, err := s.EncodeKey("visa", int64(1), 3.0); err == nil {
		t.Fatalf("expected error for too many key values")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema("bad", nil, "k")
}

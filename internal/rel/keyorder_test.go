package rel

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// compareTuple is the logical order the key encoding must preserve: column by
// column, earlier columns dominating.
func compareTuple(a, b []any) int {
	for i := range a {
		var c int
		switch av := a[i].(type) {
		case int64:
			bv := b[i].(int64)
			switch {
			case av < bv:
				c = -1
			case av > bv:
				c = 1
			}
		case float64:
			// The encoding is a total order: -0.0 sorts strictly before +0.0.
			bv := b[i].(float64)
			switch {
			case av < bv:
				c = -1
			case av > bv:
				c = 1
			case math.Signbit(av) && !math.Signbit(bv):
				c = -1
			case !math.Signbit(av) && math.Signbit(bv):
				c = 1
			}
		case string:
			c = strings.Compare(av, b[i].(string))
		case bool:
			bv := b[i].(bool)
			switch {
			case !av && bv:
				c = -1
			case av && !bv:
				c = 1
			}
		case []byte:
			c = bytes.Compare(av, b[i].([]byte))
		default:
			panic("unhandled tuple column type")
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// TestKeyEncodingPreservesTupleOrder is the ordering property test required
// by the binary-key refactor: for random tuples over every supported key
// column type, bytes.Compare on AppendKey output must agree with the logical
// tuple order.
func TestKeyEncodingPreservesTupleOrder(t *testing.T) {
	schema := MustSchema("ord", []Column{
		{Name: "i", Type: Int64},
		{Name: "s", Type: String},
		{Name: "f", Type: Float64},
		{Name: "b", Type: Bool},
		{Name: "y", Type: Bytes},
	}, "i", "s", "f", "b", "y")

	rng := rand.New(rand.NewSource(42))
	randString := func() string {
		n := rng.Intn(6)
		b := make([]byte, n)
		for i := range b {
			// Bias toward 0x00 and 0xFF to stress the escaping.
			switch rng.Intn(4) {
			case 0:
				b[i] = 0x00
			case 1:
				b[i] = 0xFF
			default:
				b[i] = byte(rng.Intn(256))
			}
		}
		return string(b)
	}
	randFloat := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return math.Copysign(0, -1)
		case 2:
			return math.Inf(1)
		case 3:
			return math.Inf(-1)
		default:
			return (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(10)))
		}
	}
	const n = 400
	tuples := make([][]any, n)
	for i := range tuples {
		tuples[i] = []any{
			int64(rng.Intn(7)) - 3, // small domain to force ties into later columns
			randString(),
			randFloat(),
			rng.Intn(2) == 0,
			[]byte(randString()),
		}
	}
	keys := make([][]byte, n)
	var buf []byte
	for i, tup := range tuples {
		var err error
		buf, err = schema.AppendKey(buf[:0], Row(tup))
		if err != nil {
			t.Fatalf("AppendKey(%v): %v", tup, err)
		}
		keys[i] = append([]byte(nil), buf...)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return compareTuple(tuples[idx[a]], tuples[idx[b]]) < 0
	})
	for k := 1; k < n; k++ {
		prev, cur := idx[k-1], idx[k]
		bc := bytes.Compare(keys[prev], keys[cur])
		tc := compareTuple(tuples[prev], tuples[cur])
		if (tc < 0 && bc >= 0) || (tc == 0 && bc != 0) {
			t.Fatalf("key order disagrees with tuple order:\n  %v -> %x\n  %v -> %x",
				tuples[prev], keys[prev], tuples[cur], keys[cur])
		}
	}
}

// TestKeyEncodingEdgeCases covers the corners the escape scheme must get
// right: empty strings order before everything, []byte columns behave like
// strings, and embedded NULs don't collide with the terminator.
func TestKeyEncodingEdgeCases(t *testing.T) {
	schema := MustSchema("edge", []Column{
		{Name: "s", Type: String}, {Name: "v", Type: Int64}}, "s")

	enc := func(s string) []byte {
		k, err := schema.AppendKey(nil, Row{s, int64(0)})
		if err != nil {
			t.Fatalf("AppendKey(%q): %v", s, err)
		}
		return k
	}
	// Empty string is a valid key and orders strictly before every extension.
	ordered := []string{"", "\x00", "\x00\x00", "\x00a", "a", "a\x00", "a\x00b", "aa", "b"}
	for i := 1; i < len(ordered); i++ {
		if bytes.Compare(enc(ordered[i-1]), enc(ordered[i])) >= 0 {
			t.Fatalf("enc(%q) >= enc(%q)", ordered[i-1], ordered[i])
		}
	}
	// A string key never collides with a different string's encoding.
	if bytes.Equal(enc("a\x00"), enc("a")) {
		t.Fatal("embedded NUL collides with terminator")
	}

	// Bytes columns share the string encoding, including escaping.
	bschema := MustSchema("edgeb", []Column{
		{Name: "y", Type: Bytes}, {Name: "v", Type: Int64}}, "y")
	kb, err := bschema.AppendKey(nil, Row{[]byte{0x00, 0xFF}, int64(0)})
	if err != nil {
		t.Fatal(err)
	}
	ks := enc("\x00\xff")
	if !bytes.Equal(kb, ks[:len(kb)]) && !bytes.Equal(kb, ks) {
		// Same value encoded through Bytes and String columns must produce the
		// same key bytes (the int64 suffix is identical).
		t.Fatalf("bytes/string encodings diverge: %x vs %x", kb, ks)
	}
}

// TestPartialPrefixBoundsScan pins the contract between partial-prefix
// encodings and prefix successors: every full key with the prefix falls in
// [prefix, successor), and nothing outside the prefix does.
func TestPartialPrefixBoundsScan(t *testing.T) {
	schema := MustSchema("pfx", []Column{
		{Name: "a", Type: Int64}, {Name: "b", Type: String}, {Name: "v", Type: Int64}},
		"a", "b")

	var keys [][]byte
	for a := int64(0); a < 4; a++ {
		for _, b := range []string{"", "\x00", "mid", "\xff\xff"} {
			k, err := schema.AppendKey(nil, Row{a, b, int64(0)})
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		}
	}
	prefix, err := schema.AppendKeyPrefix(nil, []any{int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	succ, bounded := AppendKeyPrefixSuccessor(nil, prefix)
	if !bounded {
		t.Fatal("int64 prefix should have a successor")
	}
	// The two successor implementations must agree.
	if string(succ) != KeyPrefixSuccessor(string(prefix)) {
		t.Fatalf("AppendKeyPrefixSuccessor %x != KeyPrefixSuccessor %x",
			succ, KeyPrefixSuccessor(string(prefix)))
	}
	inRange := 0
	for _, k := range keys {
		in := bytes.Compare(k, prefix) >= 0 && bytes.Compare(k, succ) < 0
		hasPrefix := bytes.HasPrefix(k, prefix)
		if in != hasPrefix {
			t.Fatalf("range membership %v disagrees with prefix match %v for %x", in, hasPrefix, k)
		}
		if in {
			inRange++
		}
	}
	if inRange != 4 {
		t.Fatalf("prefix a=2 matched %d keys, want 4", inRange)
	}

	// All-0xFF prefixes are unbounded above.
	if _, ok := AppendKeyPrefixSuccessor(nil, []byte{0xFF, 0xFF}); ok {
		t.Fatal("all-0xFF prefix must report no successor")
	}
	if _, ok := AppendKeyPrefixSuccessor(nil, nil); ok {
		t.Fatal("empty prefix must report no successor")
	}
	// The returned bound is the smallest strictly-greater key: decrementing
	// its last byte recovers a prefix byte.
	if succ[len(succ)-1] != prefix[len(succ)-1]+1 {
		t.Fatalf("successor %x is not a last-byte increment of %x", succ, prefix)
	}
}

// FuzzKeyRoundTrip round-trips AppendKey through the column decoders and
// re-encodes, asserting a fixed point: decode(encode(x)) re-encodes to the
// identical bytes and consumes the key exactly.
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add(int64(0), "", float64(0), true, []byte{})
	f.Add(int64(-1), "a\x00b", 3.14, false, []byte{0x00, 0xFF, 0x01})
	f.Add(int64(math.MaxInt64), "\xff\xff", math.Inf(-1), true, []byte("xyz"))
	schema := MustSchema("fz", []Column{
		{Name: "i", Type: Int64},
		{Name: "s", Type: String},
		{Name: "f", Type: Float64},
		{Name: "b", Type: Bool},
		{Name: "y", Type: Bytes},
	}, "i", "s", "f", "b", "y")
	types := []ColType{Int64, String, Float64, Bool, Bytes}
	f.Fuzz(func(t *testing.T, i int64, s string, fl float64, b bool, y []byte) {
		if fl != fl { // NaN has no defined sort position; encoders assume ordered floats
			t.Skip()
		}
		row := Row{i, s, fl, b, y}
		key, err := schema.AppendKey(nil, row)
		if err != nil {
			t.Fatalf("AppendKey: %v", err)
		}
		rest := key
		decoded := make(Row, 0, len(types))
		for _, ct := range types {
			v, r, err := DecodeKeyValue(rest, ct)
			if err != nil {
				t.Fatalf("DecodeKeyValue(%s): %v (key %x)", ct, err, key)
			}
			decoded = append(decoded, v)
			rest = r
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d trailing bytes", len(rest))
		}
		again, err := schema.AppendKey(nil, decoded)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(key, again) {
			t.Fatalf("round trip not a fixed point: %x vs %x", key, again)
		}
	})
}

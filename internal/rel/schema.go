package rel

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a relation: its name, columns, primary key, and secondary
// indexes. Schemas are immutable once a database is opened over them and safe
// for concurrent use; indexes are declared at schema-definition time via
// AddIndex/MustAddIndex.
type Schema struct {
	name    string
	columns []Column
	key     []int // indices into columns
	byName  map[string]int
	indexes []*Index
}

// Index is a secondary index declaration: an ordered subset of a relation's
// columns. Entries are maintained transactionally by the reactor's write path
// and are keyed by the indexed column values followed by the primary key, so
// equal index values are disambiguated and prefix scans are possible.
type Index struct {
	name string
	cols []int // indices into Schema.columns
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// ColumnIndices returns the positions of the indexed columns in the schema
// (callers must not modify the slice).
func (ix *Index) ColumnIndices() []int { return ix.cols }

// NewSchema builds a schema. keyCols name the primary key columns in order;
// every relation must have a primary key (single-tuple relations typically use
// a constant column).
func NewSchema(name string, columns []Column, keyCols ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("rel: schema needs a name")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("rel: schema %s needs at least one column", name)
	}
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("rel: schema %s needs a primary key", name)
	}
	s := &Schema{name: name, columns: columns, byName: make(map[string]int, len(columns))}
	for i, c := range columns {
		if c.Name == "" {
			return nil, fmt.Errorf("rel: schema %s has an unnamed column at position %d", name, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("rel: schema %s has duplicate column %q", name, c.Name)
		}
		if c.Type < Int64 || c.Type > Bytes {
			return nil, fmt.Errorf("rel: schema %s column %q has invalid type", name, c.Name)
		}
		s.byName[c.Name] = i
	}
	for _, kc := range keyCols {
		i, ok := s.byName[kc]
		if !ok {
			return nil, fmt.Errorf("rel: schema %s key column %q does not exist", name, kc)
		}
		s.key = append(s.key, i)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schema definitions.
func MustSchema(name string, columns []Column, keyCols ...string) *Schema {
	s, err := NewSchema(name, columns, keyCols...)
	if err != nil {
		panic(err)
	}
	return s
}

// AddIndex declares a secondary index over the named columns. All validation
// happens at declaration time: unknown columns, duplicate columns within the
// index, empty column lists and duplicate index names are rejected here, never
// deferred to first use. Indexes must be declared before the schema is handed
// to a database definition.
func (s *Schema) AddIndex(name string, cols ...string) error {
	if name == "" {
		return fmt.Errorf("rel: schema %s: index needs a name", s.name)
	}
	if len(cols) == 0 {
		return fmt.Errorf("rel: schema %s: index %q needs at least one column", s.name, name)
	}
	for _, ix := range s.indexes {
		if ix.name == name {
			return fmt.Errorf("rel: schema %s: duplicate index %q", s.name, name)
		}
	}
	ix := &Index{name: name, cols: make([]int, 0, len(cols))}
	seen := make(map[int]bool, len(cols))
	for _, c := range cols {
		i, ok := s.byName[c]
		if !ok {
			return fmt.Errorf("rel: schema %s: index %q references unknown column %q", s.name, name, c)
		}
		if seen[i] {
			return fmt.Errorf("rel: schema %s: index %q repeats column %q", s.name, name, c)
		}
		seen[i] = true
		ix.cols = append(ix.cols, i)
	}
	s.indexes = append(s.indexes, ix)
	return nil
}

// MustAddIndex is AddIndex that panics on error and returns the schema, so
// static declarations can chain it after MustSchema.
func (s *Schema) MustAddIndex(name string, cols ...string) *Schema {
	if err := s.AddIndex(name, cols...); err != nil {
		panic(err)
	}
	return s
}

// Indexes returns the declared secondary indexes in declaration order
// (callers must not modify the slice).
func (s *Schema) Indexes() []*Index { return s.indexes }

// IndexNamed returns the position and declaration of the named index, or
// (-1, nil) if no such index exists.
func (s *Schema) IndexNamed(name string) (int, *Index) {
	for i, ix := range s.indexes {
		if ix.name == name {
			return i, ix
		}
	}
	return -1, nil
}

// AppendIndexKey appends the encoded secondary-index entry key for row to
// dst: the indexed column values in index order followed by the full primary
// key, so entries are unique per row and ordered for prefix scans. It is the
// allocation-free primitive under IndexKeyOf — callers own dst.
func (s *Schema) AppendIndexKey(dst []byte, ix *Index, row Row) ([]byte, error) {
	if len(row) != len(s.columns) {
		return dst, fmt.Errorf("rel: %s row has %d values, schema has %d columns", s.name, len(row), len(s.columns))
	}
	var err error
	for _, ci := range ix.cols {
		dst, err = AppendKeyValue(dst, row[ci], s.columns[ci].Type)
		if err != nil {
			return dst, err
		}
	}
	for _, ki := range s.key {
		dst, err = AppendKeyValue(dst, row[ki], s.columns[ki].Type)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// IndexKeyOf returns the encoded secondary-index entry key for row as a
// string (see AppendIndexKey for the buffer-reusing form).
func (s *Schema) IndexKeyOf(ix *Index, row Row) (string, error) {
	dst, err := s.AppendIndexKey(nil, ix, row)
	if err != nil {
		return "", err
	}
	return string(dst), nil
}

// AppendIndexPrefix appends the encoding of values as a (possibly partial)
// prefix of the index's entry keys to dst, usable for index range scans.
func (s *Schema) AppendIndexPrefix(dst []byte, ix *Index, values []any) ([]byte, error) {
	if len(values) > len(ix.cols) {
		return dst, fmt.Errorf("rel: %s index %q has %d columns, got %d values", s.name, ix.name, len(ix.cols), len(values))
	}
	var err error
	for i, v := range values {
		dst, err = AppendKeyValue(dst, v, s.columns[ix.cols[i]].Type)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// EncodeIndexPrefix encodes the given values as a (possibly partial) prefix of
// the named index's entry keys as a string (see AppendIndexPrefix for the
// buffer-reusing form).
func (s *Schema) EncodeIndexPrefix(ix *Index, values ...any) (string, error) {
	dst, err := s.AppendIndexPrefix(nil, ix, values)
	if err != nil {
		return "", err
	}
	return string(dst), nil
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Columns returns the column definitions (callers must not modify the slice).
func (s *Schema) Columns() []Column { return s.columns }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.columns) }

// KeyColumns returns the indices of the primary key columns.
func (s *Schema) KeyColumns() []int { return s.key }

// Col returns the index of the named column, or -1 if it does not exist.
func (s *Schema) Col(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// MustCol returns the index of the named column and panics if it is missing.
// Procedures use it to resolve column positions once at registration time.
func (s *Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("rel: schema %s has no column %q", s.name, name))
	}
	return i
}

// NormalizeRow validates arity and converts every value of row to the
// canonical representation for its column type.
func (s *Schema) NormalizeRow(row Row) (Row, error) {
	if len(row) != len(s.columns) {
		return nil, fmt.Errorf("rel: %s row has %d values, schema has %d columns", s.name, len(row), len(s.columns))
	}
	out := make(Row, len(row))
	for i, v := range row {
		nv, err := normalize(v, s.columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("rel: %s column %q: %w", s.name, s.columns[i].Name, err)
		}
		out[i] = nv
	}
	return out, nil
}

// AppendKey appends the encoded primary key of row to dst. It is the
// allocation-free primitive under KeyOf — callers own dst and may reuse it
// across calls (the storage layer copies key bytes it retains).
func (s *Schema) AppendKey(dst []byte, row Row) ([]byte, error) {
	if len(row) != len(s.columns) {
		return dst, fmt.Errorf("rel: %s row has %d values, schema has %d columns", s.name, len(row), len(s.columns))
	}
	var err error
	for _, ki := range s.key {
		dst, err = AppendKeyValue(dst, row[ki], s.columns[ki].Type)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// KeyOf returns the encoded primary key of row as a string (see AppendKey for
// the buffer-reusing form).
func (s *Schema) KeyOf(row Row) (string, error) {
	dst, err := s.AppendKey(nil, row)
	if err != nil {
		return "", err
	}
	return string(dst), nil
}

// AppendKeyPrefix appends the encoding of values as a (possibly partial,
// prefix) primary key to dst. Fewer values than key columns yields a prefix
// usable for range scans.
func (s *Schema) AppendKeyPrefix(dst []byte, values []any) ([]byte, error) {
	if len(values) > len(s.key) {
		return dst, fmt.Errorf("rel: %s key has %d columns, got %d values", s.name, len(s.key), len(values))
	}
	var err error
	for i, v := range values {
		dst, err = AppendKeyValue(dst, v, s.columns[s.key[i]].Type)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// EncodeKey encodes the given values as a (possibly partial, prefix) primary
// key for this schema as a string (see AppendKeyPrefix for the buffer-reusing
// form).
func (s *Schema) EncodeKey(values ...any) (string, error) {
	dst, err := s.AppendKeyPrefix(nil, values)
	if err != nil {
		return "", err
	}
	return string(dst), nil
}

// MustEncodeKey is EncodeKey that panics on error; procedures use it with
// values whose types are statically known.
func (s *Schema) MustEncodeKey(values ...any) string {
	k, err := s.EncodeKey(values...)
	if err != nil {
		panic(err)
	}
	return k
}

// --- Row (payload) encoding -------------------------------------------------

// EncodeRow serializes row into the compact binary payload stored in records.
// The row must already satisfy the schema (see NormalizeRow).
func (s *Schema) EncodeRow(row Row) ([]byte, error) {
	nrow, err := s.NormalizeRow(row)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 16*len(nrow))
	var tmp [binary.MaxVarintLen64]byte
	for i, v := range nrow {
		switch s.columns[i].Type {
		case Int64:
			n := binary.PutVarint(tmp[:], v.(int64))
			buf = append(buf, tmp[:n]...)
		case Float64:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.(float64)))
			buf = append(buf, b[:]...)
		case String:
			sv := v.(string)
			n := binary.PutUvarint(tmp[:], uint64(len(sv)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, sv...)
		case Bool:
			if v.(bool) {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case Bytes:
			bv := v.([]byte)
			n := binary.PutUvarint(tmp[:], uint64(len(bv)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, bv...)
		}
	}
	return buf, nil
}

// MustEncodeRow is EncodeRow that panics on error, for use in loaders with
// statically known row shapes.
func (s *Schema) MustEncodeRow(row Row) []byte {
	b, err := s.EncodeRow(row)
	if err != nil {
		panic(err)
	}
	return b
}

// DecodeRow deserializes a payload produced by EncodeRow.
func (s *Schema) DecodeRow(data []byte) (Row, error) {
	return s.DecodeRowInto(nil, data)
}

// DecodeRowInto is DecodeRow decoding into dst's backing array when it has
// the capacity (allocating a fresh Row otherwise), so loops that decode row
// after row reuse one slice header instead of allocating per row. Boxing
// variable-width values (the per-column interface conversions) still
// allocates — callers that need a fully allocation-free read use ViewRow.
// On success the returned Row must replace dst at the call site; on error
// dst's contents are unspecified.
func (s *Schema) DecodeRowInto(dst Row, data []byte) (Row, error) {
	var row Row
	if cap(dst) >= len(s.columns) {
		row = dst[:len(s.columns)]
	} else {
		row = make(Row, len(s.columns))
	}
	pos := 0
	for i, c := range s.columns {
		switch c.Type {
		case Int64:
			v, n := binary.Varint(data[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("rel: %s: corrupt int64 at column %q", s.name, c.Name)
			}
			row[i] = v
			pos += n
		case Float64:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("rel: %s: corrupt float64 at column %q", s.name, c.Name)
			}
			row[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
			pos += 8
		case String:
			l, n := binary.Uvarint(data[pos:])
			if n <= 0 || pos+n+int(l) > len(data) {
				return nil, fmt.Errorf("rel: %s: corrupt string at column %q", s.name, c.Name)
			}
			pos += n
			row[i] = string(data[pos : pos+int(l)])
			pos += int(l)
		case Bool:
			if pos+1 > len(data) {
				return nil, fmt.Errorf("rel: %s: corrupt bool at column %q", s.name, c.Name)
			}
			row[i] = data[pos] != 0
			pos++
		case Bytes:
			l, n := binary.Uvarint(data[pos:])
			if n <= 0 || pos+n+int(l) > len(data) {
				return nil, fmt.Errorf("rel: %s: corrupt bytes at column %q", s.name, c.Name)
			}
			pos += n
			b := make([]byte, l)
			copy(b, data[pos:pos+int(l)])
			row[i] = b
			pos += int(l)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("rel: %s: %d trailing bytes after row", s.name, len(data)-pos)
	}
	return row, nil
}

package rel

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyInt64OrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		ka := string(AppendKeyInt64(nil, a))
		kb := string(AppendKeyInt64(nil, b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyFloat64OrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := string(AppendKeyFloat64(nil, a))
		kb := string(AppendKeyFloat64(nil, b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Boundary values.
	vals := []float64{math.Inf(-1), -1e300, -1, -0.5, 0, 0.5, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		lo := string(AppendKeyFloat64(nil, vals[i-1]))
		hi := string(AppendKeyFloat64(nil, vals[i]))
		if lo >= hi {
			t.Fatalf("encoding of %v not below %v", vals[i-1], vals[i])
		}
	}
}

func TestKeyStringOrderPreservingAndPrefixSafe(t *testing.T) {
	f := func(a, b string) bool {
		ka := string(AppendKeyString(nil, a))
		kb := string(AppendKeyString(nil, b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// A composite key whose first component is a prefix of another must order
	// before it regardless of the second component.
	k1 := AppendKeyString(nil, "ab")
	k1 = AppendKeyString(k1, "zzz")
	k2 := AppendKeyString(nil, "abc")
	k2 = AppendKeyString(k2, "aaa")
	if !(string(k1) < string(k2)) {
		t.Fatalf("composite key with prefix component must order first")
	}
	// Strings containing NUL bytes must stay ordered.
	withNul := []string{"a", "a\x00", "a\x00b", "a\x01", "b"}
	var encoded []string
	for _, s := range withNul {
		encoded = append(encoded, string(AppendKeyString(nil, s)))
	}
	if !sort.StringsAreSorted(encoded) {
		t.Fatalf("NUL-containing strings not order-preserving: %q", encoded)
	}
}

func TestKeyCompositeIntOrder(t *testing.T) {
	// (w_id, d_id, o_id) style composite keys must sort like the tuple.
	type trip struct{ a, b, c int64 }
	enc := func(x trip) string {
		k := AppendKeyInt64(nil, x.a)
		k = AppendKeyInt64(k, x.b)
		k = AppendKeyInt64(k, x.c)
		return string(k)
	}
	vals := []trip{{1, 1, 1}, {1, 1, 2}, {1, 2, 0}, {2, -5, 100}, {2, 0, -1}, {2, 0, 0}}
	for i := 1; i < len(vals); i++ {
		if !(enc(vals[i-1]) < enc(vals[i])) {
			t.Fatalf("composite ordering violated between %v and %v", vals[i-1], vals[i])
		}
	}
}

func TestKeyPrefixSuccessor(t *testing.T) {
	if got := KeyPrefixSuccessor("abc"); got != "abd" {
		t.Fatalf("successor of abc = %q, want abd", got)
	}
	if got := KeyPrefixSuccessor("ab\xff"); got != "ac" {
		t.Fatalf("successor of ab\\xff = %q, want ac", got)
	}
	if got := KeyPrefixSuccessor("\xff\xff"); got != "" {
		t.Fatalf("successor of all-0xff = %q, want unbounded", got)
	}
	// Every key starting with the prefix must be below the successor.
	prefix := string(AppendKeyInt64(nil, 7))
	succ := KeyPrefixSuccessor(prefix)
	extended := prefix + string(AppendKeyInt64(nil, 12345))
	if !(extended < succ) {
		t.Fatalf("extended key not below prefix successor")
	}
}

func TestAppendKeyValueRejectsWrongType(t *testing.T) {
	if _, err := AppendKeyValue(nil, "not-an-int", Int64); err == nil {
		t.Fatalf("expected type error")
	}
	if _, err := AppendKeyValue(nil, 3, String); err == nil {
		t.Fatalf("expected type error")
	}
}

func TestRowAccessors(t *testing.T) {
	r := Row{int64(5), 2.5, "s", true, []byte{1, 2}}
	if r.Int64(0) != 5 || r.Float64(1) != 2.5 || r.String(2) != "s" || !r.Bool(3) || len(r.Bytes(4)) != 2 {
		t.Fatalf("accessors returned wrong values: %v", r)
	}
	if r.Float64(0) != 5 {
		t.Fatalf("Float64 should accept int64 columns")
	}
	clone := r.Clone()
	clone.Bytes(4)[0] = 99
	if r.Bytes(4)[0] == 99 {
		t.Fatalf("Clone must deep-copy byte slices")
	}
}

func TestRowAccessorPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for wrong column type")
		}
	}()
	r := Row{"string"}
	_ = r.Int64(0)
}

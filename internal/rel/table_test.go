package rel

import (
	"bytes"
	"testing"

	"reactdb/internal/kv"
)

func simpleTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema("kvrel",
		[]Column{{Name: "k", Type: Int64}, {Name: "v", Type: String}}, "k")
	return NewTable(s)
}

func TestTableLoadAndReadRow(t *testing.T) {
	tbl := simpleTable(t)
	for i := 0; i < 100; i++ {
		if err := tbl.LoadRow(Row{int64(i), "v"}); err != nil {
			t.Fatalf("LoadRow(%d): %v", i, err)
		}
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tbl.Len())
	}
	key := []byte(tbl.Schema().MustEncodeKey(int64(42)))
	row, err := tbl.ReadRow(key)
	if err != nil {
		t.Fatalf("ReadRow: %v", err)
	}
	if row == nil || row.Int64(0) != 42 {
		t.Fatalf("ReadRow returned %v", row)
	}
	missing, err := tbl.ReadRow([]byte(tbl.Schema().MustEncodeKey(int64(1000))))
	if err != nil || missing != nil {
		t.Fatalf("missing key should read as nil, got %v, %v", missing, err)
	}
}

func TestTableLoadDuplicateKeyFails(t *testing.T) {
	tbl := simpleTable(t)
	if err := tbl.LoadRow(Row{int64(1), "a"}); err != nil {
		t.Fatalf("LoadRow: %v", err)
	}
	if err := tbl.LoadRow(Row{int64(1), "b"}); err == nil {
		t.Fatalf("duplicate load should fail")
	}
}

func TestTableVersionBumpsOnLoad(t *testing.T) {
	tbl := simpleTable(t)
	v0 := tbl.Version()
	tbl.MustLoadRow(Row{int64(1), "a"})
	if tbl.Version() != v0+1 {
		t.Fatalf("version should bump on load")
	}
	tbl.BumpVersion()
	if tbl.Version() != v0+2 {
		t.Fatalf("BumpVersion should increment")
	}
}

func TestTableGetOrInsert(t *testing.T) {
	tbl := simpleTable(t)
	key := []byte(tbl.Schema().MustEncodeKey(int64(9)))
	rec, inserted := tbl.GetOrInsert(key)
	if !inserted || rec == nil || !rec.Absent() {
		t.Fatalf("first GetOrInsert should create an absent record")
	}
	rec2, inserted2 := tbl.GetOrInsert(key)
	if inserted2 || rec2 != rec {
		t.Fatalf("second GetOrInsert should return the same record")
	}
}

func TestTablePrefixScan(t *testing.T) {
	s := MustSchema("composite",
		[]Column{{Name: "a", Type: Int64}, {Name: "b", Type: Int64}, {Name: "v", Type: String}},
		"a", "b")
	tbl := NewTable(s)
	for a := int64(0); a < 5; a++ {
		for b := int64(0); b < 10; b++ {
			tbl.MustLoadRow(Row{a, b, "x"})
		}
	}
	prefix := []byte(s.MustEncodeKey(int64(3)))
	count := 0
	tbl.AscendPrefix(prefix, func(key []byte, rec *kv.Record) bool {
		data, _, present := rec.StableRead()
		if !present {
			t.Fatalf("loaded record should be present")
		}
		row, err := s.DecodeRow(data)
		if err != nil {
			t.Fatalf("DecodeRow: %v", err)
		}
		if row.Int64(0) != 3 {
			t.Fatalf("prefix scan leaked row with a=%d", row.Int64(0))
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("prefix scan visited %d rows, want 10", count)
	}

	// Bounded range scan across the composite key: a in [1,3).
	lo := []byte(s.MustEncodeKey(int64(1)))
	hi := []byte(s.MustEncodeKey(int64(3)))
	count = 0
	tbl.AscendRange(lo, hi, func([]byte, *kv.Record) bool { count++; return true })
	if count != 20 {
		t.Fatalf("range scan visited %d rows, want 20", count)
	}

	// Descending scan sees the same rows in reverse order.
	var keys [][]byte
	tbl.DescendRange(lo, hi, func(k []byte, _ *kv.Record) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 20 {
		t.Fatalf("descending scan visited %d rows, want 20", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i], keys[i-1]) >= 0 {
			t.Fatalf("descending scan out of order")
		}
	}
}

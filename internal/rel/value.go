package rel

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// ColType enumerates the column types supported by ReactDB-Go relations.
type ColType uint8

// Supported column types.
const (
	Int64 ColType = iota + 1
	Float64
	String
	Bool
	Bytes
)

// String returns the SQL-ish name of the column type.
func (t ColType) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	case Bytes:
		return "VARBINARY"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Row is a single tuple. Positions correspond to the columns of the schema the
// row belongs to. Values are Go natives: int64, float64, string, bool, []byte.
type Row []any

// Clone returns a deep-enough copy of the row (byte slices are copied).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		if b, ok := v.([]byte); ok {
			cp := make([]byte, len(b))
			copy(cp, b)
			out[i] = cp
			continue
		}
		out[i] = v
	}
	return out
}

// Int64 returns column i as an int64, accepting int and int64 inputs.
func (r Row) Int64(i int) int64 {
	switch v := r[i].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	default:
		panic(fmt.Sprintf("rel: column %d is %T, not int64", i, r[i]))
	}
}

// Float64 returns column i as a float64, accepting integer inputs too.
func (r Row) Float64(i int) float64 {
	switch v := r[i].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	default:
		panic(fmt.Sprintf("rel: column %d is %T, not float64", i, r[i]))
	}
}

// String returns column i as a string.
func (r Row) String(i int) string {
	v, ok := r[i].(string)
	if !ok {
		panic(fmt.Sprintf("rel: column %d is %T, not string", i, r[i]))
	}
	return v
}

// Bool returns column i as a bool.
func (r Row) Bool(i int) bool {
	v, ok := r[i].(bool)
	if !ok {
		panic(fmt.Sprintf("rel: column %d is %T, not bool", i, r[i]))
	}
	return v
}

// Bytes returns column i as a byte slice.
func (r Row) Bytes(i int) []byte {
	v, ok := r[i].([]byte)
	if !ok {
		panic(fmt.Sprintf("rel: column %d is %T, not []byte", i, r[i]))
	}
	return v
}

// normalize converts v to the canonical Go representation for type t, or
// returns an error if v is not assignable to t.
func normalize(v any, t ColType) (any, error) {
	switch t {
	case Int64:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		}
	case Float64:
		switch x := v.(type) {
		case float64:
			return x, nil
		case float32:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		}
	case String:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case Bool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	case Bytes:
		if x, ok := v.([]byte); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("rel: value %v (%T) is not assignable to %s", v, v, t)
}

// --- Order-preserving key encoding -----------------------------------------
//
// Keys are encoded so that lexicographic byte order equals logical order of
// the key column values, which lets the B+tree serve range scans directly.

// AppendKeyInt64 appends the order-preserving encoding of v to dst.
func AppendKeyInt64(dst []byte, v int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v)^(1<<63))
	return append(dst, buf[:]...)
}

// AppendKeyFloat64 appends the order-preserving encoding of v to dst.
func AppendKeyFloat64(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// AppendKeyString appends the order-preserving encoding of s to dst. The
// encoding escapes NUL bytes (0x00 -> 0x00 0xFF) and terminates the string
// with 0x00 0x01 so that prefixes order before their extensions and composite
// keys remain order-preserving.
func AppendKeyString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0xFF)
			continue
		}
		dst = append(dst, s[i])
	}
	return append(dst, 0x00, 0x01)
}

// AppendKeyBool appends the encoding of v to dst (false < true).
func AppendKeyBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendKeyValue appends the order-preserving encoding of v, interpreted as
// column type t, to dst.
func AppendKeyValue(dst []byte, v any, t ColType) ([]byte, error) {
	// Fast paths for values already in canonical representation: routing them
	// through normalize would re-box the value on return, costing one heap
	// allocation per key column for anything outside the runtime's small-int
	// cache — a tax every point read and scan bound would pay.
	switch x := v.(type) {
	case int64:
		switch t {
		case Int64:
			return AppendKeyInt64(dst, x), nil
		case Float64:
			return AppendKeyFloat64(dst, float64(x)), nil
		}
	case float64:
		if t == Float64 {
			return AppendKeyFloat64(dst, x), nil
		}
	case string:
		if t == String {
			return AppendKeyString(dst, x), nil
		}
	case bool:
		if t == Bool {
			return AppendKeyBool(dst, x), nil
		}
	}
	nv, err := normalize(v, t)
	if err != nil {
		return dst, err
	}
	switch t {
	case Int64:
		return AppendKeyInt64(dst, nv.(int64)), nil
	case Float64:
		return AppendKeyFloat64(dst, nv.(float64)), nil
	case String:
		return AppendKeyString(dst, nv.(string)), nil
	case Bool:
		return AppendKeyBool(dst, nv.(bool)), nil
	case Bytes:
		return AppendKeyString(dst, string(nv.([]byte))), nil
	default:
		return dst, fmt.Errorf("rel: unsupported key column type %s", t)
	}
}

// KeyPrefixSuccessor returns the smallest key strictly greater than every key
// having the given prefix, for use as an exclusive upper bound in prefix
// scans. It returns "" (unbounded) if no such key exists.
func KeyPrefixSuccessor(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// AppendKeyPrefixSuccessor appends to dst the smallest key strictly greater
// than every key having the given prefix — the allocation-free counterpart of
// KeyPrefixSuccessor for callers that own their key buffers. It returns
// (dst, false) unchanged when no such bound exists (the prefix is empty or
// all 0xFF bytes), meaning the scan is unbounded above.
func AppendKeyPrefixSuccessor(dst, prefix []byte) ([]byte, bool) {
	i := len(prefix) - 1
	for ; i >= 0; i-- {
		if prefix[i] != 0xFF {
			break
		}
	}
	if i < 0 {
		return dst, false
	}
	dst = append(dst, prefix[:i+1]...)
	dst[len(dst)-1]++
	return dst, true
}

// --- Key decoding ------------------------------------------------------------
//
// Decoders invert the Append* encoders: each consumes one value from the front
// of key and returns the remaining bytes. They exist for debugging, fuzzing
// and index tooling — the hot path never decodes keys (rows are decoded from
// their payload encoding instead).

// DecodeKeyInt64 decodes an int64 from the front of key.
func DecodeKeyInt64(key []byte) (int64, []byte, error) {
	if len(key) < 8 {
		return 0, nil, fmt.Errorf("rel: int64 key needs 8 bytes, have %d", len(key))
	}
	u := binary.BigEndian.Uint64(key) ^ (1 << 63)
	return int64(u), key[8:], nil
}

// DecodeKeyFloat64 decodes a float64 from the front of key.
func DecodeKeyFloat64(key []byte) (float64, []byte, error) {
	if len(key) < 8 {
		return 0, nil, fmt.Errorf("rel: float64 key needs 8 bytes, have %d", len(key))
	}
	bits := binary.BigEndian.Uint64(key)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), key[8:], nil
}

// DecodeKeyString decodes a string from the front of key, undoing the NUL
// escaping and consuming the 0x00 0x01 terminator.
func DecodeKeyString(key []byte) (string, []byte, error) {
	var sb []byte
	for i := 0; i < len(key); {
		c := key[i]
		if c != 0x00 {
			sb = append(sb, c)
			i++
			continue
		}
		if i+1 >= len(key) {
			return "", nil, fmt.Errorf("rel: truncated string key escape")
		}
		switch key[i+1] {
		case 0xFF:
			sb = append(sb, 0x00)
			i += 2
		case 0x01:
			return string(sb), key[i+2:], nil
		default:
			return "", nil, fmt.Errorf("rel: invalid string key escape 0x00 0x%02X", key[i+1])
		}
	}
	return "", nil, fmt.Errorf("rel: unterminated string key")
}

// DecodeKeyBool decodes a bool from the front of key.
func DecodeKeyBool(key []byte) (bool, []byte, error) {
	if len(key) < 1 {
		return false, nil, fmt.Errorf("rel: bool key needs 1 byte")
	}
	switch key[0] {
	case 0:
		return false, key[1:], nil
	case 1:
		return true, key[1:], nil
	default:
		return false, nil, fmt.Errorf("rel: invalid bool key byte 0x%02X", key[0])
	}
}

// DecodeKeyValue decodes one value of column type t from the front of key,
// returning the canonical Go value and the remaining bytes.
func DecodeKeyValue(key []byte, t ColType) (any, []byte, error) {
	switch t {
	case Int64:
		return firstOf3(DecodeKeyInt64(key))
	case Float64:
		return firstOf3(DecodeKeyFloat64(key))
	case String:
		return firstOf3(DecodeKeyString(key))
	case Bool:
		return firstOf3(DecodeKeyBool(key))
	case Bytes:
		s, rest, err := DecodeKeyString(key)
		if err != nil {
			return nil, nil, err
		}
		return []byte(s), rest, nil
	default:
		return nil, nil, fmt.Errorf("rel: unsupported key column type %s", t)
	}
}

// firstOf3 adapts a typed decoder result to the any-valued DecodeKeyValue
// signature.
func firstOf3[T any](v T, rest []byte, err error) (any, []byte, error) {
	if err != nil {
		return nil, nil, err
	}
	return v, rest, nil
}

// FormatKey renders an encoded key for debugging.
func FormatKey(key string) string {
	var sb strings.Builder
	for i := 0; i < len(key); i++ {
		fmt.Fprintf(&sb, "%02x", key[i])
	}
	return sb.String()
}

// Package rel implements the relational abstraction that reactors encapsulate:
// schemas, typed rows, order-preserving key encoding, and tables backed by the
// ordered record store in package kv.
//
// A reactor's state is a set of relations (package rel tables). Declarative
// access to those relations from stored procedures goes through the
// transactional query interface in package core/engine, which uses the
// non-transactional primitives here (schemas, key codecs, index access)
// together with the concurrency control in package occ.
package rel

package rel

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RowView is a lazy, allocation-free reader over an encoded row payload: it
// references the payload bytes in place and decodes individual columns on
// access instead of materializing a Row (whose slice header and per-column
// boxing dominate the read path's allocations). Views are values — copying
// one is free — and remain valid only as long as the underlying payload:
// inside a procedure that is until the transaction ends, the same lifetime
// the raw payload has.
//
// Accessors panic on type mismatches exactly like Row's, and on corrupt
// payloads — a view is only constructed over payloads the engine already
// CRC-checked, so corruption here is a bug, not an input error.
type RowView struct {
	schema *Schema
	data   []byte
}

// ViewRow wraps an encoded payload (produced by EncodeRow) in a lazy view.
// It performs no validation and never allocates.
func (s *Schema) ViewRow(data []byte) RowView {
	return RowView{schema: s, data: data}
}

// Valid reports whether the view wraps a payload (the zero RowView does not).
func (v RowView) Valid() bool { return v.schema != nil }

// Schema returns the schema the view decodes against.
func (v RowView) Schema() *Schema { return v.schema }

// Len returns the number of columns.
func (v RowView) Len() int { return len(v.schema.columns) }

// Materialize decodes the full payload into a freshly allocated Row.
func (v RowView) Materialize() (Row, error) {
	return v.schema.DecodeRow(v.data)
}

// skipValue returns the offset just past the value of the given type starting
// at pos, and whether the payload was long enough.
func skipValue(data []byte, pos int, t ColType) (int, bool) {
	switch t {
	case Int64:
		_, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		return pos + n, true
	case Float64:
		if pos+8 > len(data) {
			return 0, false
		}
		return pos + 8, true
	case String, Bytes:
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 || pos+n+int(l) > len(data) {
			return 0, false
		}
		return pos + n + int(l), true
	case Bool:
		if pos+1 > len(data) {
			return 0, false
		}
		return pos + 1, true
	}
	return 0, false
}

// offsetOf walks the payload to the start of column col. The walk is linear in
// the column index; relation schemas are a handful of columns wide, so the
// walk stays cheaper than the allocations it replaces.
func (v RowView) offsetOf(col int) int {
	if v.schema == nil {
		panic("rel: access through a zero RowView")
	}
	if col < 0 || col >= len(v.schema.columns) {
		panic(fmt.Sprintf("rel: %s: column %d out of range", v.schema.name, col))
	}
	pos := 0
	for i := 0; i < col; i++ {
		next, ok := skipValue(v.data, pos, v.schema.columns[i].Type)
		if !ok {
			panic(fmt.Sprintf("rel: %s: corrupt payload at column %q", v.schema.name, v.schema.columns[i].Name))
		}
		pos = next
	}
	return pos
}

func (v RowView) typeAt(col int, want ColType, verb string) int {
	pos := v.offsetOf(col)
	if t := v.schema.columns[col].Type; t != want {
		panic(fmt.Sprintf("rel: %s: column %q is %v, not %s", v.schema.name, v.schema.columns[col].Name, t, verb))
	}
	return pos
}

// Int64 decodes column i as an int64 without allocating.
func (v RowView) Int64(i int) int64 {
	pos := v.typeAt(i, Int64, "int64")
	val, n := binary.Varint(v.data[pos:])
	if n <= 0 {
		panic(fmt.Sprintf("rel: %s: corrupt int64 at column %q", v.schema.name, v.schema.columns[i].Name))
	}
	return val
}

// Float64 decodes column i as a float64 without allocating.
func (v RowView) Float64(i int) float64 {
	pos := v.typeAt(i, Float64, "float64")
	if pos+8 > len(v.data) {
		panic(fmt.Sprintf("rel: %s: corrupt float64 at column %q", v.schema.name, v.schema.columns[i].Name))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v.data[pos:]))
}

// Bool decodes column i as a bool without allocating.
func (v RowView) Bool(i int) bool {
	pos := v.typeAt(i, Bool, "bool")
	if pos+1 > len(v.data) {
		panic(fmt.Sprintf("rel: %s: corrupt bool at column %q", v.schema.name, v.schema.columns[i].Name))
	}
	return v.data[pos] != 0
}

// Bytes returns column i as a subslice of the underlying payload — no copy,
// no allocation. Callers must treat it as read-only and must not retain it
// past the payload's lifetime; use String or Materialize for an owned copy.
func (v RowView) Bytes(i int) []byte {
	c := v.schema.columns[i]
	if c.Type != String && c.Type != Bytes {
		v.typeAt(i, Bytes, "bytes") // panics with the column's real type
	}
	pos := v.offsetOf(i)
	l, n := binary.Uvarint(v.data[pos:])
	if n <= 0 || pos+n+int(l) > len(v.data) {
		panic(fmt.Sprintf("rel: %s: corrupt %v at column %q", v.schema.name, c.Type, c.Name))
	}
	return v.data[pos+n : pos+n+int(l)]
}

// String returns column i as an owned string (this is the one accessor that
// allocates: string conversion copies).
func (v RowView) String(i int) string {
	if v.schema.columns[i].Type != String {
		v.typeAt(i, String, "string")
	}
	return string(v.Bytes(i))
}

package rel

import (
	"fmt"
	"reflect"
	"testing"
)

// --- Index declaration validation (satellite: declaration-time checks) -------

func TestAddIndexValidation(t *testing.T) {
	mk := func() *Schema {
		return MustSchema("orders",
			[]Column{
				{Name: "id", Type: Int64},
				{Name: "cust", Type: Int64},
				{Name: "total", Type: Float64},
			}, "id")
	}
	if err := mk().AddIndex("by_cust", "cust"); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}
	if err := mk().AddIndex("bad", "no_such_col"); err == nil {
		t.Fatalf("index on unknown column accepted at declaration time")
	}
	if err := mk().AddIndex("empty"); err == nil {
		t.Fatalf("index without columns accepted")
	}
	if err := mk().AddIndex("", "cust"); err == nil {
		t.Fatalf("unnamed index accepted")
	}
	if err := mk().AddIndex("twice", "cust", "cust"); err == nil {
		t.Fatalf("index repeating a column accepted")
	}
	s := mk()
	if err := s.AddIndex("by_cust", "cust"); err != nil {
		t.Fatalf("first index rejected: %v", err)
	}
	if err := s.AddIndex("by_cust", "total"); err == nil {
		t.Fatalf("duplicate index name accepted")
	}
	if pos, ix := s.IndexNamed("by_cust"); pos != 0 || ix == nil {
		t.Fatalf("IndexNamed(by_cust) = (%d, %v)", pos, ix)
	}
	if pos, ix := s.IndexNamed("missing"); pos != -1 || ix != nil {
		t.Fatalf("IndexNamed(missing) = (%d, %v)", pos, ix)
	}
}

func TestSchemaRejectsDuplicateColumns(t *testing.T) {
	if _, err := NewSchema("dup",
		[]Column{{Name: "a", Type: Int64}, {Name: "a", Type: String}}, "a"); err == nil {
		t.Fatalf("duplicate column names accepted at declaration time")
	}
}

// --- Secondary index maintenance at the table level ---------------------------

func TestTableIndexMaintenance(t *testing.T) {
	schema := MustSchema("acct",
		[]Column{
			{Name: "id", Type: Int64},
			{Name: "branch", Type: String},
			{Name: "balance", Type: Float64},
		}, "id").
		MustAddIndex("by_branch", "branch")
	tbl := NewTable(schema)
	tbl.MustLoadRow(Row{int64(1), "north", 10.0})
	tbl.MustLoadRow(Row{int64(2), "south", 20.0})
	tbl.MustLoadRow(Row{int64(3), "north", 30.0})
	if got := tbl.IndexLen(0); got != 3 {
		t.Fatalf("index entries after load = %d, want 3", got)
	}

	lookup := func(branch string) []int64 {
		prefix, err := schema.EncodeIndexPrefix(schema.Indexes()[0], branch)
		if err != nil {
			t.Fatal(err)
		}
		var ids []int64
		tbl.AscendIndexPrefix(0, []byte(prefix), func(pk []byte) bool {
			row, err := tbl.ReadRow(pk)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, row.Int64(0))
			return true
		})
		return ids
	}
	if got := lookup("north"); !reflect.DeepEqual(got, []int64{1, 3}) {
		t.Fatalf("north ids = %v, want [1 3]", got)
	}

	// Update moving row 1 between branches must move its entry.
	old := schema.MustEncodeRow(Row{int64(1), "north", 10.0})
	moved := schema.MustEncodeRow(Row{int64(1), "south", 10.0})
	if !tbl.ApplyIndexWrite(old, true, moved, false) {
		t.Fatalf("branch move reported no index change")
	}
	if got := lookup("north"); !reflect.DeepEqual(got, []int64{3}) {
		t.Fatalf("north ids after move = %v, want [3]", got)
	}

	// Value-only update must not touch the index.
	richer := schema.MustEncodeRow(Row{int64(2), "south", 99.0})
	prev := schema.MustEncodeRow(Row{int64(2), "south", 20.0})
	if tbl.ApplyIndexWrite(prev, true, richer, false) {
		t.Fatalf("value-only update reported an index change")
	}

	// Delete retracts the entry.
	if !tbl.ApplyIndexWrite(moved, true, nil, true) {
		t.Fatalf("delete reported no index change")
	}
	if got := tbl.IndexLen(0); got != 2 {
		t.Fatalf("index entries after delete = %d, want 2", got)
	}
	// Tables without indexes report no change and do no work.
	plain := NewTable(MustSchema("p", []Column{{Name: "k", Type: Int64}}, "k"))
	if plain.ApplyIndexWrite(nil, false, plain.Schema().MustEncodeRow(Row{int64(1)}), false) {
		t.Fatalf("unindexed table reported an index change")
	}
}

// --- Query builder + operators over stub leaves --------------------------------

// stubFetch serves leaves from a map of alias -> rows, with a fixed schema per
// relation name.
func stubFetch(schemas map[string]*Schema, data map[string][]Row) FetchFunc {
	return func(src Source, _ []Filter) (*LeafBatch, error) {
		s, ok := schemas[src.Relation]
		if !ok {
			return nil, fmt.Errorf("no schema for %s", src.Relation)
		}
		return &LeafBatch{Schema: s, Rows: data[src.Alias], Path: "stub"}, nil
	}
}

func queryFixture() (map[string]*Schema, map[string][]Row) {
	cust := MustSchema("cust",
		[]Column{{Name: "id", Type: Int64}, {Name: "region", Type: String}}, "id")
	ord := MustSchema("ord",
		[]Column{{Name: "id", Type: Int64}, {Name: "cust_id", Type: Int64}, {Name: "total", Type: Float64}}, "id")
	schemas := map[string]*Schema{"cust": cust, "ord": ord}
	data := map[string][]Row{
		"c": {
			{int64(1), "north"},
			{int64(2), "south"},
			{int64(3), "north"},
		},
		"o": {
			{int64(10), int64(1), 5.0},
			{int64(11), int64(1), 7.0},
			{int64(12), int64(2), 11.0},
			{int64(13), int64(3), 2.0},
			{int64(14), int64(9), 100.0}, // dangling customer: drops out of the join
		},
	}
	return schemas, data
}

func TestQueryFilterJoin(t *testing.T) {
	schemas, data := queryFixture()
	res, err := NewQuery().
		From("c", "cust").
		From("o", "ord").
		Join("c", "id", "o", "cust_id").
		Where("c", "region", Eq, "north").
		Select("o.id", "o.total").
		OrderBy("o.id", false).
		Execute(stubFetch(schemas, data))
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{int64(10), 5.0}, {int64(11), 7.0}, {int64(13), 2.0}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	if !reflect.DeepEqual(res.Columns, []string{"o.id", "o.total"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestQueryJoinAggregate(t *testing.T) {
	schemas, data := queryFixture()
	res, err := NewQuery().
		From("c", "cust").
		From("o", "ord").
		Join("c", "id", "o", "cust_id").
		GroupBy("c.region").
		Sum("o.total", "total").
		Count("n").
		OrderBy("c.region", false).
		Execute(stubFetch(schemas, data))
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{"north", 14.0, int64(3)}, {"south", 11.0, int64(1)}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestQueryOrderLimitAndAggregates(t *testing.T) {
	schemas, data := queryFixture()
	res, err := NewQuery().
		From("o", "ord").
		OrderBy("o.total", true).
		Limit(2).
		Select("o.id").
		Execute(stubFetch(schemas, data))
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{int64(14)}, {int64(12)}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}

	agg, err := NewQuery().
		From("o", "ord").
		Min("o.total", "lo").
		Max("o.total", "hi").
		Avg("o.total", "mean").
		Execute(stubFetch(schemas, data))
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Rows) != 1 {
		t.Fatalf("global aggregate rows = %v", agg.Rows)
	}
	if got := agg.Rows[0]; got.Float64(0) != 2.0 || got.Float64(1) != 100.0 || got.Float64(2) != 25.0 {
		t.Fatalf("min/max/avg = %v", got)
	}

	// Global aggregate over an empty input still yields one zero row.
	empty, err := NewQuery().
		From("o", "ord").
		Where("o", "total", Gt, 1000.0).
		Count("n").
		Execute(stubFetch(schemas, data))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rows) != 1 || empty.Rows[0].Int64(0) != 0 {
		t.Fatalf("empty aggregate = %v", empty.Rows)
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	if _, err := NewQuery().Execute(stubFetch(nil, nil)); err == nil {
		t.Fatalf("query without sources accepted")
	}
	if err := NewQuery().From("a", "r").From("a", "r").Err(); err == nil {
		t.Fatalf("duplicate alias accepted")
	}
	if err := NewQuery().From("a", "r").Join("a", "x", "a", "y").Err(); err == nil {
		t.Fatalf("self join accepted")
	}
	if err := NewQuery().From("a", "r").Limit(-1).Err(); err == nil {
		t.Fatalf("negative limit accepted")
	}
	schemas, data := queryFixture()
	if _, err := NewQuery().
		From("o", "ord").
		Where("o", "nope", Eq, 1).
		Execute(stubFetch(schemas, data)); err == nil {
		t.Fatalf("filter on unknown column accepted")
	}
	if _, err := NewQuery().
		From("o", "ord").
		GroupBy("o.total").
		Execute(stubFetch(schemas, data)); err == nil {
		t.Fatalf("GroupBy without aggregates accepted")
	}
	if _, err := NewQuery().
		From("o", "ord").
		Select("o.nope").
		Execute(stubFetch(schemas, data)); err == nil {
		t.Fatalf("projection of unknown column accepted")
	}
}

// --- Greedy planner ------------------------------------------------------------

func plannerFixture(sizes map[string]int) ([]*leaf, *Schema) {
	s := MustSchema("r", []Column{{Name: "k", Type: Int64}, {Name: "v", Type: Int64}}, "k")
	var leaves []*leaf
	for _, alias := range []string{"a", "b", "c"} {
		rows := make([]Row, sizes[alias])
		for i := range rows {
			rows[i] = Row{int64(i), int64(i % 3)}
		}
		lf, err := newLeaf(alias, s, rows, nil)
		if err != nil {
			panic(err)
		}
		leaves = append(leaves, lf)
	}
	return leaves, s
}

func TestGreedyPlannerReordersBySize(t *testing.T) {
	// Declared a(large), b(medium), c(small); chain a-b, b-c.
	leaves, _ := plannerFixture(map[string]int{"a": 100, "b": 10, "c": 2})
	joins := []JoinPred{
		{LeftAlias: "a", LeftCol: "k", RightAlias: "b", RightCol: "k"},
		{LeftAlias: "b", LeftCol: "v", RightAlias: "c", RightCol: "v"},
	}
	p, err := planJoins(leaves, joins, false)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy starts at the smallest leaf (c), then walks connectivity: b is
	// the only connected leaf, then a.
	if !reflect.DeepEqual(p.order, []string{"c", "b", "a"}) {
		t.Fatalf("greedy order = %v, want [c b a]", p.order)
	}

	naive, err := planJoins(leaves, joins, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(naive.order, []string{"a", "b", "c"}) {
		t.Fatalf("naive order = %v, want declaration order [a b c]", naive.order)
	}
}

func TestGreedyPlannerPrefersConnectedOverSmaller(t *testing.T) {
	// b is tiny but disconnected from the a-c join; greedy must take the
	// connected c before crossing with b.
	leaves, _ := plannerFixture(map[string]int{"a": 5, "b": 1, "c": 50})
	joins := []JoinPred{{LeftAlias: "a", LeftCol: "k", RightAlias: "c", RightCol: "k"}}
	p, err := planJoins(leaves, joins, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.order, []string{"b", "a", "c"}) && !reflect.DeepEqual(p.order, []string{"a", "c", "b"}) {
		t.Fatalf("order = %v: cross product must not interleave the connected pair", p.order)
	}
	// Equivalence: greedy and naive must produce identical result sets.
	got, err := drain(p.root)
	if err != nil {
		t.Fatal(err)
	}
	np, err := planJoins(leaves, joins, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := drain(np.root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("greedy produced %d rows, naive %d", len(got), len(want))
	}
}

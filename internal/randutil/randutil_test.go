package randutil

import (
	"testing"
	"testing/quick"
)

func TestNewIsDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same seed produced different streams")
		}
	}
}

func TestUniformIntBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := UniformInt(r, 5, 10)
		if v < 5 || v > 10 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
	if UniformInt(r, 3, 3) != 3 {
		t.Fatalf("degenerate range should return lo")
	}
	if UniformInt(r, 7, 2) != 7 {
		t.Fatalf("inverted range should return lo")
	}
	seenLo, seenHi := false, false
	for i := 0; i < 2000; i++ {
		switch UniformInt(r, 0, 3) {
		case 0:
			seenLo = true
		case 3:
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatalf("UniformInt bounds not inclusive")
	}
}

func TestUniformFloatBounds(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		v := UniformFloat(r, 1.5, 2.5)
		if v < 1.5 || v >= 2.5 {
			t.Fatalf("UniformFloat out of range: %v", v)
		}
	}
}

func TestZipfianRangeProperty(t *testing.T) {
	f := func(seed int64, n uint8, thetaRaw uint8) bool {
		domain := int(n%100) + 1
		theta := float64(thetaRaw%150) / 100.0 // 0 .. 1.49
		if theta == 1 {
			theta = 0.99
		}
		z := NewZipfian(domain, theta)
		r := New(seed)
		for i := 0; i < 200; i++ {
			v := z.Next(r)
			if v < 0 || v >= domain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfianSkewConcentratesMass(t *testing.T) {
	const n = 1000
	r := New(42)
	skewed := NewZipfian(n, 0.99)
	uniform := NewZipfian(n, 0)
	countHot := func(z *Zipfian) int {
		hot := 0
		rr := New(42)
		for i := 0; i < 20000; i++ {
			if z.Next(rr) < n/100 { // hottest 1%
				hot++
			}
		}
		return hot
	}
	_ = r
	hotSkewed := countHot(skewed)
	hotUniform := countHot(uniform)
	if hotSkewed < 3*hotUniform {
		t.Fatalf("zipfian 0.99 should concentrate far more mass on hot keys: skewed=%d uniform=%d", hotSkewed, hotUniform)
	}
	if skewed.N() != n || skewed.Theta() != 0.99 {
		t.Fatalf("accessors wrong")
	}
}

func TestZipfianDegenerateDomain(t *testing.T) {
	z := NewZipfian(0, 0.5)
	r := New(1)
	if z.Next(r) != 0 {
		t.Fatalf("domain of size <= 1 must always return 0")
	}
	z1 := NewZipfian(1, 5)
	if z1.Next(r) != 0 {
		t.Fatalf("domain of size 1 must always return 0")
	}
}

func TestNURandRanges(t *testing.T) {
	r := New(3)
	for i := 0; i < 5000; i++ {
		if v := NURandCustomerID(r); v < 1 || v > 3000 {
			t.Fatalf("customer id out of range: %d", v)
		}
		if v := NURandItemID(r); v < 1 || v > 100000 {
			t.Fatalf("item id out of range: %d", v)
		}
		if v := NURandLastNameIndex(r); v < 0 || v > 999 {
			t.Fatalf("last name index out of range: %d", v)
		}
	}
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", LastName(999))
	}
	// Out-of-range indices are folded into range rather than panicking.
	if LastName(-1) == "" || LastName(12345) == "" {
		t.Fatalf("LastName should fold out-of-range indices")
	}
}

func TestAlphaNumStrings(t *testing.T) {
	r := New(4)
	for i := 0; i < 200; i++ {
		s := AlphaString(r, 3, 8)
		if len(s) < 3 || len(s) > 8 {
			t.Fatalf("AlphaString length out of range: %q", s)
		}
		d := NumString(r, 4, 4)
		if len(d) != 4 {
			t.Fatalf("NumString length wrong: %q", d)
		}
		for _, c := range d {
			if c < '0' || c > '9' {
				t.Fatalf("NumString produced non-digit %q", d)
			}
		}
	}
}

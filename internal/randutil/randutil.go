// Package randutil provides the deterministic random generators used by the
// workload drivers: uniform integers, zipfian-distributed keys (YCSB,
// Appendix C), TPC-C's NURand non-uniform generator and last-name synthesis.
// All generators are seeded explicitly so experiment runs are reproducible.
package randutil

import (
	"math"
	"math/rand"
	"strings"
)

// New returns a deterministic PRNG for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// UniformInt returns an integer uniformly distributed in [lo, hi] (inclusive).
func UniformInt(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// UniformFloat returns a float uniformly distributed in [lo, hi).
func UniformFloat(r *rand.Rand, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Zipfian generates integers in [0, n) with a zipfian distribution of the
// given skew constant (theta). It follows the classic YCSB / Gray et al.
// "Quickly generating billion-record synthetic databases" construction, which
// is also what the paper's Appendix C relies on ("choose the keys for
// multi_update from a zipfian distribution").
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipfian builds a generator over [0, n) with skew theta. theta = 0 is
// uniform; the paper uses constants between 0.01 and 5.
func NewZipfian(n int, theta float64) *Zipfian {
	if n <= 0 {
		n = 1
	}
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// N returns the size of the generator's domain.
func (z *Zipfian) N() int { return z.n }

// Theta returns the skew constant.
func (z *Zipfian) Theta() float64 { return z.theta }

// Next draws the next zipfian-distributed value in [0, n).
func (z *Zipfian) Next(r *rand.Rand) int {
	if z.n == 1 {
		return 0
	}
	if z.theta == 0 {
		return r.Intn(z.n)
	}
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// NURand is TPC-C's non-uniform random function NURand(A, x, y) with the
// standard constant C loads.
func NURand(r *rand.Rand, a, x, y, c int) int {
	return (((UniformInt(r, 0, a) | UniformInt(r, x, y)) + c) % (y - x + 1)) + x
}

// NURandCustomerID returns a TPC-C customer id in [1, 3000].
func NURandCustomerID(r *rand.Rand) int { return NURand(r, 1023, 1, 3000, 259) }

// NURandItemID returns a TPC-C item id in [1, 100000].
func NURandItemID(r *rand.Rand) int { return NURand(r, 8191, 1, 100000, 7911) }

// NURandLastNameIndex returns a TPC-C last-name index in [0, 999] for the
// payment/order-status by-last-name variants.
func NURandLastNameIndex(r *rand.Rand) int { return NURand(r, 255, 0, 999, 223) }

// lastNameSyllables are the TPC-C specification's last-name syllables.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the TPC-C last name for an index in [0, 999].
func LastName(index int) string {
	if index < 0 {
		index = -index
	}
	index %= 1000
	var sb strings.Builder
	sb.WriteString(lastNameSyllables[index/100])
	sb.WriteString(lastNameSyllables[(index/10)%10])
	sb.WriteString(lastNameSyllables[index%10])
	return sb.String()
}

// AlphaString returns a random string of letters with length in [lo, hi].
func AlphaString(r *rand.Rand, lo, hi int) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	n := UniformInt(r, lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// NumString returns a random string of digits with length in [lo, hi].
func NumString(r *rand.Rand, lo, hi int) string {
	const digits = "0123456789"
	n := UniformInt(r, lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = digits[r.Intn(len(digits))]
	}
	return string(b)
}

package engine

import (
	"errors"
	"sync"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/occ"
	"reactdb/internal/vclock"
)

// ErrConflict is returned by Execute when the transaction failed
// serializability validation (single-container OCC validation or the prepare
// phase of two-phase commit) and was aborted. Clients may retry.
var ErrConflict = errors.New("engine: transaction aborted due to serialization conflict")

// Profile is the per-transaction latency breakdown used to validate the
// computational cost model (paper §4.2.2, Figure 6, Table 1). Durations are
// measured on the root transaction's executor.
type Profile struct {
	// Total is the end-to-end latency observed by the client, including input
	// handling in Execute.
	Total time.Duration
	// SyncExec is the processing time of the root procedure and of
	// synchronously inlined sub-transactions on the root executor (the first
	// two components of the cost equation).
	SyncExec time.Duration
	// Cs is the accumulated cost of sending sub-transaction invocations to
	// reactors in other containers.
	Cs time.Duration
	// Cr is the accumulated cost of receiving sub-transaction results from
	// other containers.
	Cr time.Duration
	// BlockedWait is the time the root execution context spent blocked on
	// futures of sub-transactions running in other containers. For program
	// formulations that synchronize immediately it plays the role of the
	// synchronous child execution cost; for asynchronous formulations it is
	// the paper's async-execution component.
	BlockedWait time.Duration
	// Commit is the time spent in the commit protocol (OCC validation and, for
	// multi-container transactions, two-phase commit).
	Commit time.Duration
	// RemoteCalls is the number of sub-transactions dispatched to other
	// containers.
	RemoteCalls int
	// Containers is the number of containers touched by the transaction.
	Containers int
	// Aborted reports whether the transaction aborted.
	Aborted bool
}

// task is one (sub-)transaction request dispatched to an executor.
type task struct {
	root     *rootTxn
	reactor  string
	procName string
	proc     core.Procedure
	args     core.Args
	executor *Executor
	future   *core.Future
	isRoot   bool

	// enqueuedAt is stamped when the task joins an executor's request queue;
	// the run loop measures scheduling delay from it.
	enqueuedAt time.Time
}

// rootTxn is the runtime state of a root transaction: its active set (§2.2.4
// safety condition), the per-container OCC transactions it has touched, and
// its latency profile.
type rootTxn struct {
	db        *Database
	id        uint64
	activeSet *core.ActiveSet

	mu    sync.Mutex
	txns  map[*Container]*occ.Txn
	order []*Container // touch order, for deterministic 2PC iteration

	profMu  sync.Mutex
	profile Profile
}

func newRootTxn(db *Database, id uint64) *rootTxn {
	return &rootTxn{
		db:        db,
		id:        id,
		activeSet: core.NewActiveSet(),
		txns:      make(map[*Container]*occ.Txn),
	}
}

// txnFor returns the OCC transaction of this root on the given container,
// creating it on first touch.
func (r *rootTxn) txnFor(c *Container) *occ.Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.txns[c]; ok {
		return t
	}
	t := c.domain.Begin()
	r.txns[c] = t
	r.order = append(r.order, c)
	return t
}

// touchedContainers returns the containers this transaction accessed, in touch
// order.
func (r *rootTxn) touchedContainers() []*Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Container, len(r.order))
	copy(out, r.order)
	return out
}

func (r *rootTxn) addCs(d time.Duration) {
	r.profMu.Lock()
	r.profile.Cs += d
	r.profile.RemoteCalls++
	r.profMu.Unlock()
}

func (r *rootTxn) addCr(d time.Duration) {
	r.profMu.Lock()
	r.profile.Cr += d
	r.profMu.Unlock()
}

func (r *rootTxn) addBlocked(d time.Duration) {
	r.profMu.Lock()
	r.profile.BlockedWait += d
	r.profMu.Unlock()
}

// mapCommitErr converts occ-level conflict errors into the engine's public
// ErrConflict, passing every other error through.
func mapCommitErr(err error) error {
	if errors.Is(err, occ.ErrConflict) {
		return ErrConflict
	}
	return err
}

// commit runs the commitment protocol over every container the transaction
// touched: the container's native OCC commit (or group commit when enabled)
// when a single container is involved, two-phase commit with OCC validation
// as the vote otherwise (§3.2.2). It returns ErrConflict on validation
// failure. session is the executor core session of the committing task; the
// group-commit path yields it while waiting for the batch window, since the
// wait is log latency, not CPU work.
func (r *rootTxn) commit(session *coreSession) error {
	if r.db.cfg.DisableCC {
		return nil
	}
	containers := r.touchedContainers()
	switch len(containers) {
	case 0:
		return nil
	case 1:
		c := containers[0]
		txn := r.txns[c]
		if gc := c.committer; gc != nil {
			return r.groupCommit(gc, txn, session)
		}
		// Without group commit every transaction pays the full durable log
		// write on its own: a real WAL append+fsync under DurabilityWAL, the
		// modeled cost on its executor core otherwise. The append happens
		// between prepare and the write phase so log order respects read
		// dependencies (see walRecordPrepared).
		if err := txn.Prepare(); err != nil {
			return mapCommitErr(err)
		}
		if _, err := c.appendCommitRecord(txn); err != nil {
			_ = txn.AbortPrepared()
			return err
		}
		if _, err := txn.CommitPrepared(); err != nil {
			return err
		}
		if c.wal != nil {
			// Sync even when this transaction appended nothing (read-only):
			// the records of the commits it read are already in the log, so
			// the fsync makes every antecedent durable before this result is
			// externalized. An already-durable log absorbs the call.
			if err := c.wal.Sync(); err != nil {
				return err
			}
		}
		if lw := r.db.cfg.Costs.LogWrite; lw > 0 && c.wal == nil {
			vclock.Spin(lw)
		}
		return nil
	}

	// Two-phase commit. Phase one: prepare (lock + validate) every participant.
	prepared := make([]*occ.Txn, 0, len(containers))
	for _, c := range containers {
		txn := r.txns[c]
		if err := txn.Prepare(); err != nil {
			for _, p := range prepared {
				_ = p.AbortPrepared()
			}
			// Participants after the failing one never prepared; abort them so
			// their domains count the abort.
			for _, later := range containers[len(prepared)+1:] {
				r.txns[later].Abort()
			}
			return mapCommitErr(err)
		}
		prepared = append(prepared, txn)
	}
	// Append every participant's commit record before *any* participant's
	// write phase runs: a failed append can still abort the whole
	// transaction atomically (nothing is installed yet), and log order keeps
	// respecting read dependencies (walRecordPrepared). Records already
	// appended to healthy sibling logs are retracted with abort records so a
	// later fsync + recovery cannot resurrect the aborted transaction.
	appendedRec := make([]bool, len(prepared))
	for i, txn := range prepared {
		appended, err := containers[i].appendCommitRecord(txn)
		if err != nil {
			for j := 0; j < i; j++ {
				if appendedRec[j] {
					containers[j].retractCommitRecord(prepared[j])
				}
			}
			for _, p := range prepared {
				_ = p.AbortPrepared()
			}
			return err
		}
		appendedRec[i] = appended
	}

	// Phase two: commit every participant. Each participant container owns
	// its own log, so the durable write is charged per participant (routing
	// prepared participants through each container's group committer is a
	// ROADMAP item). Once phase two begins every participant must run its
	// write phase — returning early on a durability error would leave the
	// remaining prepared participants holding their OCC locks forever — so
	// the first error is remembered and reported after the loop completes.
	var firstErr error
	for i, txn := range prepared {
		c := containers[i]
		if _, err := txn.CommitPrepared(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if c.wal != nil {
			// Sync even when this transaction appended nothing here (it may
			// be a read-only participant): records of the transactions it
			// read are already in this log — appended before their writes
			// became visible — so the fsync makes every antecedent durable
			// before this commit is acknowledged. Already-durable logs
			// absorb the call without touching the disk.
			if err := c.wal.Sync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if lw := r.db.cfg.Costs.LogWrite; lw > 0 && c.wal == nil {
			vclock.Spin(lw)
		}
	}
	return firstErr
}

// groupCommit validates the transaction on its executor core, then hands it
// to the container's group committer and waits for the batch to flush. The
// executor core is released during the wait (unless cooperative multitasking
// is disabled) so queued requests can run; the prepared transaction keeps its
// OCC locks until the flush, bounding the wait by the configured window.
func (r *rootTxn) groupCommit(gc *groupCommitter, txn *occ.Txn, session *coreSession) error {
	if err := txn.Prepare(); err != nil {
		return mapCommitErr(err)
	}
	done, ok := gc.submit(txn)
	if !ok {
		// The committer stopped before accepting the transaction (shutdown
		// racing the tail of an in-flight commit); release its locks and
		// report the closure instead of blocking on a flush that will never
		// happen.
		_ = txn.AbortPrepared()
		return errDatabaseClosed
	}
	yield := session != nil && !r.db.cfg.DisableCooperativeMultitasking
	if yield {
		session.release()
	}
	err := <-done
	if yield {
		session.acquire()
	}
	return mapCommitErr(err)
}

// abortAll aborts every per-container transaction that is still active, used
// when the procedure logic itself failed (user abort, dangerous structure,
// runtime error).
func (r *rootTxn) abortAll() {
	for _, c := range r.touchedContainers() {
		r.txns[c].Abort()
	}
}

// snapshotProfile returns a copy of the accumulated profile.
func (r *rootTxn) snapshotProfile() Profile {
	r.profMu.Lock()
	defer r.profMu.Unlock()
	p := r.profile
	p.Containers = len(r.order)
	return p
}

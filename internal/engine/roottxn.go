package engine

import (
	"errors"
	"sort"
	"sync"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/occ"
	"reactdb/internal/vclock"
	"reactdb/internal/wal"
)

// ErrConflict is returned by Execute when the transaction failed
// serializability validation (single-container OCC validation or the prepare
// phase of two-phase commit) and was aborted. Clients may retry.
var ErrConflict = errors.New("engine: transaction aborted due to serialization conflict")

// Profile is the per-transaction latency breakdown used to validate the
// computational cost model (paper §4.2.2, Figure 6, Table 1). Durations are
// measured on the root transaction's executor.
type Profile struct {
	// Total is the end-to-end latency observed by the client, including input
	// handling in Execute.
	Total time.Duration
	// SyncExec is the processing time of the root procedure and of
	// synchronously inlined sub-transactions on the root executor (the first
	// two components of the cost equation).
	SyncExec time.Duration
	// Cs is the accumulated cost of sending sub-transaction invocations to
	// reactors in other containers.
	Cs time.Duration
	// Cr is the accumulated cost of receiving sub-transaction results from
	// other containers.
	Cr time.Duration
	// BlockedWait is the time the root execution context spent blocked on
	// futures of sub-transactions running in other containers. For program
	// formulations that synchronize immediately it plays the role of the
	// synchronous child execution cost; for asynchronous formulations it is
	// the paper's async-execution component.
	BlockedWait time.Duration
	// Commit is the time spent in the commit protocol (OCC validation and, for
	// multi-container transactions, two-phase commit).
	Commit time.Duration
	// RemoteCalls is the number of sub-transactions dispatched to other
	// containers.
	RemoteCalls int
	// Containers is the number of containers touched by the transaction.
	Containers int
	// Aborted reports whether the transaction aborted.
	Aborted bool
}

// task is one (sub-)transaction request dispatched to an executor.
type task struct {
	root     *rootTxn
	reactor  string
	procName string
	proc     core.Procedure
	args     core.Args
	executor *Executor
	future   *core.Future
	isRoot   bool

	// affine marks a root task pinned by an application placement contract
	// (affinity router with an explicit Config.Affinity function): work
	// stealing never moves it off its routed executor.
	affine bool

	// gate is the admission gate that issued this root task's in-flight
	// token, set at submit; the token is released exactly once through
	// releaseToken when the transaction completes, aborts, or panics — even
	// when the task was stolen and ran on a different executor, the token
	// goes back to the executor that issued it.
	gate *admissionGate

	// enqueuedAt is stamped when the task joins an executor's request queue;
	// the run loop measures scheduling delay from it.
	enqueuedAt time.Time
}

// releaseToken returns the task's admission token, if it holds one, exactly
// once.
func (t *task) releaseToken() {
	if t.gate != nil {
		t.gate.release()
		t.gate = nil
	}
}

// rootTxn is the runtime state of a root transaction: its active set (§2.2.4
// safety condition), the per-container OCC transactions it has touched, and
// its latency profile.
type rootTxn struct {
	db        *Database
	id        uint64
	activeSet *core.ActiveSet

	mu    sync.Mutex
	txns  map[*Container]*occ.Txn
	order []*Container // touch order, for deterministic 2PC iteration

	profMu  sync.Mutex
	profile Profile
}

func newRootTxn(db *Database, id uint64) *rootTxn {
	return &rootTxn{
		db:        db,
		id:        id,
		activeSet: core.NewActiveSet(),
		txns:      make(map[*Container]*occ.Txn),
	}
}

// txnFor returns the OCC transaction of this root on the given container,
// creating it on first touch.
func (r *rootTxn) txnFor(c *Container) *occ.Txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.txns[c]; ok {
		return t
	}
	t := c.domain.Begin()
	r.txns[c] = t
	r.order = append(r.order, c)
	return t
}

// touchedContainers returns the containers this transaction accessed, in touch
// order.
func (r *rootTxn) touchedContainers() []*Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Container, len(r.order))
	copy(out, r.order)
	return out
}

func (r *rootTxn) addCs(d time.Duration) {
	r.profMu.Lock()
	r.profile.Cs += d
	r.profile.RemoteCalls++
	r.profMu.Unlock()
}

func (r *rootTxn) addCr(d time.Duration) {
	r.profMu.Lock()
	r.profile.Cr += d
	r.profMu.Unlock()
}

func (r *rootTxn) addBlocked(d time.Duration) {
	r.profMu.Lock()
	r.profile.BlockedWait += d
	r.profMu.Unlock()
}

// mapCommitErr converts occ-level conflict errors into the engine's public
// ErrConflict, passing every other error through.
func mapCommitErr(err error) error {
	if errors.Is(err, occ.ErrConflict) {
		return ErrConflict
	}
	return err
}

// commit runs the commitment protocol over every container the transaction
// touched: the container's native OCC commit (or group commit when enabled)
// when a single container is involved, two-phase commit with OCC validation
// as the vote otherwise (§3.2.2). It returns ErrConflict on validation
// failure. session is the executor core session of the committing task; the
// group-commit path yields it while waiting for the batch window, since the
// wait is log latency, not CPU work.
func (r *rootTxn) commit(session *coreSession) error {
	if r.db.cfg.DisableCC {
		return nil
	}
	containers := r.touchedContainers()
	switch len(containers) {
	case 0:
		return nil
	case 1:
		c := containers[0]
		txn := r.txns[c]
		if gc := c.committer; gc != nil {
			return r.groupCommit(gc, txn, session)
		}
		// Without group commit every transaction pays the full durable log
		// write on its own: a real WAL append+fsync under DurabilityWAL, the
		// modeled cost on its executor core otherwise. The append happens
		// between prepare and the write phase so log order respects read
		// dependencies (see walRecordPrepared).
		if err := txn.Prepare(); err != nil {
			return mapCommitErr(err)
		}
		if _, err := c.appendCommitRecord(txn); err != nil {
			_ = txn.AbortPrepared()
			return err
		}
		if _, err := txn.CommitPrepared(); err != nil {
			return err
		}
		if c.wal != nil {
			// Sync even when this transaction appended nothing (read-only):
			// the records of the commits it read are already in the log, so
			// the fsync makes every antecedent durable before this result is
			// externalized. An already-durable log absorbs the call.
			if err := c.wal.Sync(); err != nil {
				return err
			}
			// Semi-sync hook for the unbatched commit path: the result is
			// externalized only after semi-sync replicas durably hold it.
			c.waitShipped(c.wal.DurableLSN())
		}
		if lw := r.db.cfg.Costs.LogWrite; lw > 0 && c.wal == nil {
			vclock.Spin(lw)
		}
		return nil
	}

	return r.commitTwoPhase(containers, session)
}

// commitTwoPhase runs the atomic commit protocol for a multi-container
// transaction over the participants' write-ahead logs (presumed abort):
//
//  1. Vote: OCC-prepare (lock + validate) every participant.
//  2. Force a prepare record — the participant's staged write set, tagged
//     with the root's global id — into every participant's log, through each
//     container's group committer when one is running. Read-only
//     participants force a durability barrier instead, so every antecedent
//     they read is durable before the transaction can commit.
//  3. Force one decision record carrying the full participant set to the
//     coordinator's log (the lowest-numbered participant). This is the commit
//     point: recovery commits a prepared transaction iff its decision record
//     is durable, and presumes abort otherwise.
//  4. Install every participant's writes and release its locks.
//
// Any failure before the decision is durable aborts every participant: no
// write was installed yet, and durable prepare records are retracted
// best-effort (presumed abort covers them regardless). After step 3 the
// transaction is committed and step 4 must run on every participant —
// returning early would leave the remaining prepared participants holding
// their OCC locks forever.
func (r *rootTxn) commitTwoPhase(containers []*Container, session *coreSession) error {
	// Prepare participants in ascending container order, not touch order:
	// two transactions touching the same containers in opposite orders would
	// otherwise each hold one container's record latches while spinning on
	// the other's — a cross-container deadlock Prepare's per-container lock
	// sorting cannot see. A deterministic global order makes the latch
	// acquisition graph cycle-free; it also fixes the coordinator (the
	// lowest-numbered participant) independently of touch order.
	containers = append([]*Container(nil), containers...)
	sort.Slice(containers, func(i, j int) bool { return containers[i].id < containers[j].id })

	// Phase one: prepare (lock + validate) every participant — the vote.
	prepared := make([]*occ.Txn, 0, len(containers))
	for _, c := range containers {
		txn := r.txns[c]
		if err := txn.Prepare(); err != nil {
			for _, p := range prepared {
				_ = p.AbortPrepared()
			}
			// Participants after the failing one never prepared; abort them so
			// their domains count the abort.
			for _, later := range containers[len(prepared)+1:] {
				r.txns[later].Abort()
			}
			return mapCommitErr(err)
		}
		prepared = append(prepared, txn)
	}

	// Build every participant's prepare record before appending anywhere: an
	// AssignTID failure here can still abort with no record written. Entries
	// stay nil for read-only participants and for containers without a WAL.
	recs := make([]*wal.Record, len(prepared))
	hasWrites := false
	for i, txn := range prepared {
		if containers[i].wal == nil {
			continue
		}
		rec, err := walRecordPrepared(txn)
		if err != nil {
			r.abortPrepared(prepared)
			return err
		}
		if len(rec.Writes) == 0 {
			continue
		}
		rec.Kind = wal.KindPrepare
		rec.GlobalID = r.id
		rec.Coordinator = uint64(containers[0].id)
		recs[i] = &rec
		hasWrites = true
	}

	// The executor core is released for the rest of the protocol whenever a
	// log force can make us wait: the waits are log latency, not CPU work —
	// and, crucially, the write phase of phase four must run *before* the
	// core is re-acquired. A request running on this executor may be
	// spinning on one of our prepared record latches while holding the core;
	// re-acquiring first would deadlock the two (the single-container group
	// committer avoids the same cycle by running its write phase on the
	// committer goroutine).
	useWAL := false
	for _, c := range containers {
		if c.wal != nil {
			useWAL = true
		}
	}
	yield := useWAL && session != nil && !r.db.cfg.DisableCooperativeMultitasking
	if yield {
		session.release()
		defer session.acquire()
	}

	// Phase two: force prepare records (durability barriers for read-only
	// participants) into every participant's log, concurrently.
	waits := make([]<-chan error, 0, len(prepared))
	var forceErr error
	for i := range prepared {
		ch, err := containers[i].forceRecord(recs[i])
		if err != nil && forceErr == nil {
			forceErr = err
		}
		if ch != nil {
			waits = append(waits, ch)
		}
	}
	if err := awaitAll(waits); err != nil && forceErr == nil {
		forceErr = err
	}
	if forceErr != nil {
		r.retractPrepares(containers, recs)
		r.abortPrepared(prepared)
		return forceErr
	}

	// Phase three: the commit point. One decision record, carrying the full
	// participant set, forced to the coordinator's log. Its TID is the
	// coordinator participant's TID so a retraction (failed append salvage)
	// stays precise. A fully read-only transaction has nothing to decide:
	// the barriers above already made its antecedents durable.
	if hasWrites && containers[0].wal != nil {
		decTID, err := prepared[0].AssignTID()
		if err != nil {
			r.retractPrepares(containers, recs)
			r.abortPrepared(prepared)
			return err
		}
		parts := make([]uint64, len(containers))
		for i, c := range containers {
			parts[i] = uint64(c.id)
		}
		dec := &wal.Record{Kind: wal.KindDecision, TID: decTID, GlobalID: r.id, Participants: parts}
		ch, err := containers[0].forceRecord(dec)
		if err == nil {
			err = awaitAll([]<-chan error{ch})
		}
		if err != nil {
			// Retract the decision record first: it may sit unfsynced in the
			// coordinator's log, and a later commit's fsync would make it
			// durable — recovery would then commit the prepares of this
			// failed transaction wherever their own tombstones didn't land.
			// A write coordinator's prepare retraction below shares the
			// decision's TID and covers it; a read-only coordinator has no
			// prepare record, so the decision needs its own tombstone.
			if recs[0] == nil {
				containers[0].retractRecord(decTID)
			}
			r.retractPrepares(containers, recs)
			r.abortPrepared(prepared)
			return err
		}
	}

	// Phase four: the decision is durable — install every participant's
	// writes and release its locks. Every participant must run its write
	// phase even if an earlier one reports an error; the first error is
	// remembered and reported after the loop completes.
	var firstErr error
	for i, txn := range prepared {
		if _, err := txn.CommitPrepared(); err != nil && firstErr == nil {
			firstErr = err
		}
		if lw := r.db.cfg.Costs.LogWrite; lw > 0 && containers[i].wal == nil {
			vclock.Spin(lw)
		}
	}
	return firstErr
}

// awaitAll waits for every outcome channel of an in-flight log force and
// returns the first error delivered. The caller has already released its
// executor core (see commitTwoPhase): the waits are group-commit window
// latency, not CPU work.
func awaitAll(waits []<-chan error) error {
	var firstErr error
	for _, ch := range waits {
		if err := <-ch; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// abortPrepared releases every participant's OCC locks without installing any
// write. No exit path of the commit protocol may skip a prepared participant:
// a leaked prepared transaction holds its record locks forever.
func (r *rootTxn) abortPrepared(prepared []*occ.Txn) {
	for _, p := range prepared {
		_ = p.AbortPrepared()
	}
}

// retractPrepares appends best-effort abort tombstones for every prepare
// record the failed commit may have put into a participant log. Presumed
// abort already keeps recovery from committing the transaction (its decision
// record does not exist); the tombstones resolve the in-doubt records
// eagerly. A tombstone for a record whose append never succeeded is a no-op:
// abort records only retract earlier LSNs carrying the same TID.
func (r *rootTxn) retractPrepares(containers []*Container, recs []*wal.Record) {
	for i, rec := range recs {
		if rec != nil {
			containers[i].retractRecord(rec.TID)
		}
	}
}

// groupCommit validates the transaction on its executor core, then hands it
// to the container's group committer and waits for the batch to flush. The
// executor core is released during the wait (unless cooperative multitasking
// is disabled) so queued requests can run; the prepared transaction keeps its
// OCC locks until the flush, bounding the wait by the configured window.
func (r *rootTxn) groupCommit(gc *groupCommitter, txn *occ.Txn, session *coreSession) error {
	if err := txn.Prepare(); err != nil {
		return mapCommitErr(err)
	}
	done, ok := gc.submit(txn)
	if !ok {
		// The committer stopped before accepting the transaction (shutdown
		// racing the tail of an in-flight commit); release its locks and
		// report the closure instead of blocking on a flush that will never
		// happen.
		_ = txn.AbortPrepared()
		return errDatabaseClosed
	}
	yield := session != nil && !r.db.cfg.DisableCooperativeMultitasking
	if yield {
		session.release()
	}
	err := <-done
	if yield {
		session.acquire()
	}
	return mapCommitErr(err)
}

// abortAll aborts every per-container transaction that is still active, used
// when the procedure logic itself failed (user abort, dangerous structure,
// runtime error).
func (r *rootTxn) abortAll() {
	for _, c := range r.touchedContainers() {
		r.txns[c].Abort()
	}
}

// release returns every per-container OCC transaction to its domain's pool so
// the next Begin on that domain reuses its read/write-set slices and key
// arena. It must only run once the root transaction has fully committed or
// aborted and nothing — group committer, 2PC coordinator, sub-transaction —
// can touch the transactions again; Txn.Release itself refuses transactions
// that still hold locks.
func (r *rootTxn) release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.order {
		r.txns[c].Release()
	}
}

// snapshotProfile returns a copy of the accumulated profile.
func (r *rootTxn) snapshotProfile() Profile {
	r.profMu.Lock()
	defer r.profMu.Unlock()
	p := r.profile
	p.Containers = len(r.order)
	return p
}

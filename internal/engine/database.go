package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// Database is a running ReactDB instance: a reactor database (logical
// declaration, package core) deployed on a concrete architecture (Config).
type Database struct {
	def *core.DatabaseDef
	cfg Config

	containers []*Container
	placement  map[string]*Container // reactor name -> hosting container

	nextTxnID atomic.Uint64

	// inflight counts root transactions between admission and completion;
	// Close waits for it to drain before shutting down executor run loops, so
	// in-flight transactions (and the sub-transactions they may still
	// dispatch) always find live queues.
	inflight sync.WaitGroup

	// commitGate is the checkpointer's quiesce point: every root
	// transaction's commit protocol (WAL appends through in-memory installs,
	// including aborts' retractions) runs under the read lock, and
	// Checkpoint takes the write lock momentarily to observe an LSN at which
	// nothing is between "appended" and "installed". See checkpoint.go.
	commitGate sync.RWMutex

	// ckptMu serializes whole-database checkpoints (background timer vs
	// on-demand Checkpoint calls).
	ckptMu   sync.Mutex
	ckptStop chan struct{}
	ckptWG   sync.WaitGroup

	epochStop chan struct{}
	epochWG   sync.WaitGroup

	// walEpoch and walFence mirror the durable failover EpochState loaded at
	// Open (wal.ReadEpochState): the primary term this node's logs append
	// under, and the term below which appends are fenced. Distinct from the
	// storage-reclamation epochs of epochLoop. See failover.go.
	walEpoch atomic.Uint64
	walFence atomic.Uint64

	// promoCut, set only on databases created by PromoteReplica, is the
	// per-container physical log tail at the instant of promotion — the last
	// LSN of the old timeline this node holds. Records it appends above the
	// cut (recovery tombstones, new-epoch commits) belong to the new timeline
	// and may differ in content from what a surviving replica holds at the
	// same LSNs, so repairStorage must reconcile survivors against the cut,
	// not against the current durable LSN. Zero means "no safe cut known for
	// this shard" and forces a wipe + fresh bootstrap.
	promoCut []uint64

	adaptStop chan struct{}
	adaptWG   sync.WaitGroup

	// repl tracks attached replicas: semi-sync commit acknowledgments wait on
	// it, and checkpoint truncation clamps to its shipping floor. See
	// replication.go.
	repl *replicationHub

	closed atomic.Bool
}

// Open deploys the reactor database described by def according to cfg. The
// same definition can be opened under any configuration — the paper's central
// virtualization property: database architecture is a deployment decision.
func Open(def *core.DatabaseDef, cfg Config) (*Database, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db := &Database{
		def:       def,
		cfg:       cfg,
		placement: make(map[string]*Container),
		epochStop: make(chan struct{}),
		ckptStop:  make(chan struct{}),
		adaptStop: make(chan struct{}),
		repl:      newReplicationHub(),
	}
	if cfg.Durability.Mode == DurabilityWAL {
		// Load the node's failover term before any container log opens so the
		// very first append already carries the right epoch — and a fenced
		// deposed primary refuses writes from the moment it restarts.
		st, err := wal.ReadEpochState(cfg.Durability.Storage)
		if err != nil {
			return nil, fmt.Errorf("engine: read epoch state: %w", err)
		}
		db.walEpoch.Store(st.Epoch)
		db.walFence.Store(st.FenceBelow)
	}
	for i := 0; i < cfg.Containers; i++ {
		c, err := newContainer(db, i)
		if err != nil {
			for _, created := range db.containers {
				created.shutdown()
			}
			return nil, err
		}
		db.containers = append(db.containers, c)
	}
	for _, reactor := range def.Reactors() {
		c := db.containers[cfg.placementFor(reactor)]
		typ := def.TypeOf(reactor)
		if err := c.addReactor(reactor, typ.Relations()); err != nil {
			// Containers already spawned run-loop and committer goroutines;
			// reclaim them instead of leaking on a failed Open.
			for _, created := range db.containers {
				created.shutdown()
			}
			return nil, err
		}
		db.placement[reactor] = c
	}
	if cfg.EpochInterval > 0 {
		db.epochWG.Add(1)
		go db.epochLoop()
	}
	if cfg.Durability.CheckpointInterval > 0 {
		db.ckptWG.Add(1)
		go db.checkpointLoop()
	}
	if cfg.AdaptiveDepth.Enabled {
		db.adaptWG.Add(1)
		go db.adaptLoop()
	}
	return db, nil
}

// MustOpen is Open that panics on error, for examples and tests with static
// configurations.
func MustOpen(def *core.DatabaseDef, cfg Config) *Database {
	db, err := Open(def, cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// Close stops background work. Transactions in flight are allowed to finish;
// Execute must not be called after Close.
func (db *Database) Close() {
	if db.closed.CompareAndSwap(false, true) {
		// Stop the background checkpointer before tearing containers down: a
		// checkpoint racing shutdown would truncate against a closing log.
		close(db.ckptStop)
		db.ckptWG.Wait()
		// Stop the depth controller before draining: a controller tick racing
		// executor shutdown would rotate histograms of a dying run loop.
		close(db.adaptStop)
		db.adaptWG.Wait()
		db.inflight.Wait()
		for _, c := range db.containers {
			c.shutdown()
		}
		close(db.epochStop)
		db.epochWG.Wait()
	}
}

func (db *Database) epochLoop() {
	defer db.epochWG.Done()
	ticker := time.NewTicker(db.cfg.EpochInterval)
	defer ticker.Stop()
	for {
		select {
		case <-db.epochStop:
			return
		case <-ticker.C:
			for _, c := range db.containers {
				c.domain.AdvanceEpoch()
			}
		}
	}
}

// adaptLoop is the adaptive admission controller (Config.AdaptiveDepth):
// every interval it reads each executor's queue-wait p99 over the window just
// ended and moves that executor's in-flight token limit — multiplicative
// decrease when the tail exceeds the target (overload: admitting less is the
// only way admitted work waits less), gentle additive increase once the tail
// falls below half the target (headroom: reclaim throughput). Executors whose
// window saw no completed queue wait are left alone; an idle executor has no
// evidence to act on.
//
// The effective latency target coordinates with group commit: with batched
// commit enabled, every acknowledged root waits up to the flush window, so
// queue-wait tails of that order are inherent to the durability configuration
// rather than evidence of overload. Shrinking depth cannot push latency below
// the batching delay, so the AIMD loop floors its target at the group-commit
// window (see adaptiveTarget) instead of collapsing to Floor and giving up
// throughput for nothing.
func (db *Database) adaptLoop() {
	defer db.adaptWG.Done()
	a := db.cfg.AdaptiveDepth
	target := db.adaptiveTarget()
	ticker := time.NewTicker(a.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-db.adaptStop:
			return
		case <-ticker.C:
			for _, c := range db.containers {
				for _, e := range c.executors {
					if e.gate == nil {
						continue
					}
					win := e.waitWindow.Rotate()
					if win.Count == 0 {
						continue
					}
					p99 := time.Duration(win.Quantile(0.99))
					_, limit, _ := e.gate.snapshot()
					switch {
					case p99 > target && limit > a.Floor:
						next := limit / 2
						if next < a.Floor {
							next = a.Floor
						}
						e.gate.setLimit(next)
					case p99 < target/2 && limit < a.Ceiling:
						next := limit + 1 + limit/8
						if next > a.Ceiling {
							next = a.Ceiling
						}
						e.gate.setLimit(next)
					}
				}
			}
		}
	}
}

// adaptiveTarget returns the queue-wait p99 the depth controller steers
// toward: the configured TargetP99, floored at the group-commit window when
// batched commit is enabled (commit acknowledgement latency cannot fall below
// the flush cadence, so targeting less would only thrash depth downward).
func (db *Database) adaptiveTarget() time.Duration {
	target := db.cfg.AdaptiveDepth.TargetP99
	if db.cfg.GroupCommit.Enabled && db.cfg.GroupCommit.Window > target {
		target = db.cfg.GroupCommit.Window
	}
	return target
}

// Definition returns the logical database declaration.
func (db *Database) Definition() *core.DatabaseDef { return db.def }

// Config returns the deployment configuration in use.
func (db *Database) Config() Config { return db.cfg }

// Containers returns the database containers.
func (db *Database) Containers() []*Container { return db.containers }

// containerOf returns the container hosting the reactor, or nil.
func (db *Database) containerOf(reactor string) *Container { return db.placement[reactor] }

// ContainerIndexOf returns the index of the container hosting the reactor and
// whether the reactor is declared. Experiment drivers use it to build
// placement-aware workloads (e.g. "destination accounts span all containers").
func (db *Database) ContainerIndexOf(reactor string) (int, bool) {
	c, ok := db.placement[reactor]
	if !ok {
		return 0, false
	}
	return c.id, true
}

// Execute runs a root transaction: the named procedure on the named reactor
// with the given arguments (§2.2.3). It blocks until the transaction commits
// or aborts and returns the procedure result. Aborts due to serialization
// conflicts return ErrConflict; application aborts return the error produced
// by the procedure (see core.Abortf).
func (db *Database) Execute(reactor, procedure string, args ...any) (any, error) {
	res, _, err := db.ExecuteProfiled(reactor, procedure, args...)
	return res, err
}

// ExecuteProfiled is Execute returning, in addition, the latency profile used
// by the cost-model experiments.
func (db *Database) ExecuteProfiled(reactor, procedure string, args ...any) (any, Profile, error) {
	start := time.Now()
	typ := db.def.TypeOf(reactor)
	if typ == nil {
		return nil, Profile{}, fmt.Errorf("%w: %s", core.ErrUnknownReactor, reactor)
	}
	proc := typ.Procedure(procedure)
	if proc == nil {
		return nil, Profile{}, fmt.Errorf("%w: %s.%s", core.ErrUnknownProcedure, reactor, procedure)
	}
	container := db.containerOf(reactor)
	root := newRootTxn(db, db.nextTxnID.Add(1))
	if !db.cfg.DisableActiveSetCheck {
		// The root transaction itself occupies its reactor.
		if err := root.activeSet.Enter(reactor); err != nil {
			return nil, Profile{}, err
		}
	}
	fut := core.NewFuture()
	t := &task{
		root:     root,
		reactor:  reactor,
		procName: procedure,
		proc:     proc,
		args:     core.Args(args),
		executor: container.router.Route(reactor),
		future:   fut,
		isRoot:   true,
		affine:   db.cfg.pinnedAffinity(),
	}
	db.inflight.Add(1)
	if err := db.dispatch(t); err != nil {
		db.inflight.Done()
		return nil, Profile{}, err
	}
	res, err := fut.Get()
	db.inflight.Done()

	profile := root.snapshotProfile()
	profile.Total = time.Since(start)
	profile.Aborted = err != nil
	return res, profile, err
}

// dispatch hands a task to its executor. Under DispatchQueued the task joins
// the executor's bounded request queue (admission control may block the
// caller or return ErrOverloaded) and the executor's run loop starts it in
// FIFO order. Under DispatchDirect the task runs on a fresh goroutine
// contending directly for the executor core, the pre-scheduler behaviour. In
// both modes the executor's virtual core serializes processing, and
// cooperative multitasking releases the core while a task waits for remote
// results.
func (db *Database) dispatch(t *task) error {
	if db.cfg.Dispatch == DispatchDirect {
		go func() {
			session := &coreSession{exec: t.executor}
			session.acquire()
			db.runTask(t, session)
		}()
		return nil
	}
	return t.executor.submit(t)
}

// runTask executes one (sub-)transaction request on its executor. The caller
// hands over a coreSession that already holds the executor core; runTask
// charges per-request costs, runs the procedure, enforces completion of all
// child sub-transactions and, for root transactions, runs the commit
// protocol. The task's future is resolved with the result.
func (db *Database) runTask(t *task, session *coreSession) {
	// The admission token is surrendered on every exit from this function —
	// commit, abort, unknown-reactor failure, or a panic that escapes the
	// procedure-level recover in invoke — so a crashed request can never
	// strand a slot of its executor's effective depth.
	defer t.releaseToken()
	t.executor.chargeEntry(t.reactor)

	ctx := &execContext{
		db:        db,
		root:      t.root,
		container: t.executor.container,
		executor:  t.executor,
		session:   session,
		reactor:   t.reactor,
		catalog:   t.executor.container.catalog(t.reactor),
		txn:       t.root.txnFor(t.executor.container),
	}
	var res any
	var err error
	if ctx.catalog == nil {
		err = fmt.Errorf("%w: %s not hosted in container %d", core.ErrUnknownReactor, t.reactor, t.executor.container.id)
	} else {
		res, err = db.invoke(ctx, t.proc, t.args)
		if waitErr := ctx.waitChildren(); err == nil {
			err = waitErr
		}
	}
	ctx.releaseScratch()

	if t.isRoot {
		commitStart := time.Now()
		// The commit gate (held shared) delimits the whole commit protocol —
		// first WAL append through last install, including abort-path
		// retractions — as one atomic span from the checkpointer's point of
		// view; see checkpoint.go for the quiesce argument.
		db.acquireCommitGate(session)
		if err != nil {
			t.root.abortAll()
		} else {
			err = t.root.commit(session)
		}
		db.commitGate.RUnlock()
		t.root.profMu.Lock()
		t.root.profile.Commit = time.Since(commitStart)
		t.root.profMu.Unlock()
		// The protocol is over on every container: recycle the per-container
		// transactions into their domains' pools. With CC disabled the
		// transactions were never committed or aborted, and Release's implicit
		// abort would skew the domain counters — leave them for the GC.
		if !db.cfg.DisableCC {
			t.root.release()
		}
	}

	session.release()
	if !t.isRoot && !db.cfg.DisableActiveSetCheck {
		t.root.activeSet.Exit(t.reactor)
	}
	t.future.Resolve(res, err)
}

// invoke runs a procedure, converting panics into errors so a buggy stored
// procedure aborts its transaction instead of crashing the engine.
func (db *Database) invoke(ctx *execContext, proc core.Procedure, args core.Args) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("reactor: procedure panic on %s: %v", ctx.reactor, r)
		}
	}()
	return proc(ctx, args)
}

// --- Loading and inspection --------------------------------------------------

// Load inserts a row into one of a reactor's relations outside of any
// transaction. It is meant for benchmark loaders and example setup; it must
// not run concurrently with transactions touching the same relation.
func (db *Database) Load(reactor, relation string, row rel.Row) error {
	c := db.containerOf(reactor)
	if c == nil {
		return fmt.Errorf("%w: %s", core.ErrUnknownReactor, reactor)
	}
	tbl := c.catalog(reactor).Table(relation)
	if tbl == nil {
		return fmt.Errorf("%w: %s.%s", core.ErrUnknownRelation, reactor, relation)
	}
	return tbl.LoadRow(row)
}

// FinishLoad makes a completed bulk load durable by forcing an initial
// checkpoint. Loader writes go through Table.LoadRow at TID 0 and bypass the
// WAL, so before the first checkpoint they exist only in memory: a crash
// after load but before any checkpoint used to require re-running the loader
// before Recover. Calling FinishLoad once after the last Load closes that
// gap — the checkpoint captures every loaded base row, and any subsequent
// restart recovers from it plus the log suffix with no loader involved.
// Under durability modes without a WAL it is a no-op.
func (db *Database) FinishLoad() error {
	if db.cfg.Durability.Mode != DurabilityWAL {
		return nil
	}
	return db.Checkpoint()
}

// MustLoad is Load that panics on error.
func (db *Database) MustLoad(reactor, relation string, row rel.Row) {
	if err := db.Load(reactor, relation, row); err != nil {
		panic(err)
	}
}

// ReadRow performs a non-transactional read of a row by primary key, for
// verification in tests and examples. It returns nil if the row is absent.
func (db *Database) ReadRow(reactor, relation string, keyVals ...any) (rel.Row, error) {
	c := db.containerOf(reactor)
	if c == nil {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownReactor, reactor)
	}
	tbl := c.catalog(reactor).Table(relation)
	if tbl == nil {
		return nil, fmt.Errorf("%w: %s.%s", core.ErrUnknownRelation, reactor, relation)
	}
	key, err := tbl.Schema().AppendKeyPrefix(nil, keyVals)
	if err != nil {
		return nil, err
	}
	return tbl.ReadRow(key)
}

// TableLen returns the number of indexed keys in a reactor's relation,
// including logically deleted rows. Tests use it for coarse sanity checks.
func (db *Database) TableLen(reactor, relation string) int {
	c := db.containerOf(reactor)
	if c == nil {
		return 0
	}
	tbl := c.catalog(reactor).Table(relation)
	if tbl == nil {
		return 0
	}
	return tbl.Len()
}

// Stats aggregates commit/abort counters across all containers.
func (db *Database) Stats() (committed, aborted uint64) {
	for _, c := range db.containers {
		co, ab := c.domain.Stats()
		committed += co
		aborted += ab
	}
	return committed, aborted
}

// ExecutorUtilization returns the utilization of every executor, indexed by
// container then executor, mirroring the per-core hardware utilization numbers
// the paper reports.
func (db *Database) ExecutorUtilization() [][]float64 {
	out := make([][]float64, len(db.containers))
	for i, c := range db.containers {
		for _, e := range c.executors {
			out[i] = append(out[i], e.Utilization())
		}
	}
	return out
}

// ResetExecutorStats restarts the utilization measurement window on every
// executor (called at the start of a measurement run).
func (db *Database) ResetExecutorStats() {
	for _, c := range db.containers {
		for _, e := range c.executors {
			e.ResetStats()
		}
	}
}

package engine

import "sync"

// admissionGate is one executor's in-flight token pool. A root transaction
// acquires a token when it is admitted (before joining the request queue),
// holds it across cooperative yields — the request still occupies memory and
// will return to this executor's core — and releases it when the transaction
// completes, aborts, or its procedure panics. The pool therefore bounds the
// executor's total in-flight root transactions (waiting + started), which is
// what makes QueueDepth a real memory and tail-latency bound: the previous
// scheduler bounded only the waiting queue, so cooperatively-yielded requests
// accumulated without limit.
//
// Sub-transaction requests never take tokens: they belong to a root that was
// already admitted somewhere, and refusing them mid-transaction could abort
// or deadlock work the system committed to running.
//
// The limit is dynamic: the adaptive depth controller moves it between the
// configured floor and ceiling (see Config.AdaptiveDepth). Shrinking below
// the current in-flight count is safe — no new admissions happen until the
// excess drains.
type admissionGate struct {
	mu       sync.Mutex
	freed    *sync.Cond
	inflight int
	limit    int
	minLimit int // lowest limit the controller ever set, for stats
	closed   bool
}

func newAdmissionGate(limit int) *admissionGate {
	g := &admissionGate{limit: limit, minLimit: limit}
	g.freed = sync.NewCond(&g.mu)
	return g
}

// acquire takes one token, applying the admission policy when the pool is
// exhausted: block until a token frees up, or fail fast with ErrOverloaded.
func (g *admissionGate) acquire(admission AdmissionPolicy) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.closed {
			return errDatabaseClosed
		}
		if g.inflight < g.limit {
			g.inflight++
			return nil
		}
		if admission == AdmissionFail {
			return ErrOverloaded
		}
		g.freed.Wait()
	}
}

// release returns one token and wakes a blocked admission.
func (g *admissionGate) release() {
	g.mu.Lock()
	if g.inflight > 0 {
		g.inflight--
	}
	g.mu.Unlock()
	g.freed.Signal()
}

// setLimit moves the effective depth bound; growth wakes blocked admissions.
func (g *admissionGate) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	grew := n > g.limit
	g.limit = n
	if n < g.minLimit {
		g.minLimit = n
	}
	g.mu.Unlock()
	if grew {
		g.freed.Broadcast()
	}
}

// snapshot returns (inflight, current limit, lowest limit ever set) for
// stats export. The additive-increase path can grow the limit back before a
// sweep reads its stats, so "did the controller ever shrink" must come from
// the running minimum, not the instantaneous limit.
func (g *admissionGate) snapshot() (int, int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.limit, g.minLimit
}

// close fails current and future blocked admissions with errDatabaseClosed.
// Tokens already held stay valid until their transactions finish.
func (g *admissionGate) close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.freed.Broadcast()
}

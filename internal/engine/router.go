package engine

import "sync/atomic"

// Router decides which transaction executor of a container runs an incoming
// (sub-)transaction for a reactor (paper §3.1: "transaction routers decide the
// transaction executor that should run a transaction or sub-transaction
// according to a given policy, e.g., round-robin or affinity-based").
//
// Routing is a placement decision, not necessarily a pin: with work stealing
// enabled (Config.Steal) a routed root task may still migrate to an idle
// sibling before it starts, unless the deployment pins it through an explicit
// Config.Affinity function under the affinity router (Config.pinnedAffinity;
// the task is stamped affine at dispatch and stealTail skips it).
type Router interface {
	// Route returns the executor that should process a request for reactor.
	Route(reactor string) *Executor
}

// roundRobinRouter load-balances requests across executors regardless of the
// reactor, the policy of the shared-everything-without-affinity deployment.
type roundRobinRouter struct {
	executors []*Executor
	next      atomic.Uint64
}

func (r *roundRobinRouter) Route(string) *Executor {
	n := r.next.Add(1) - 1
	return r.executors[int(n%uint64(len(r.executors)))]
}

// affinityRouter sends every request for a given reactor to the same executor,
// preserving program-to-data affinity.
type affinityRouter struct {
	container *Container
	executors []*Executor
}

func (r *affinityRouter) Route(reactor string) *Executor {
	idx := r.container.db.cfg.affinityFor(reactor)
	return r.executors[idx%len(r.executors)]
}

func newRouter(kind RouterKind, c *Container) Router {
	switch kind {
	case RouterRoundRobin:
		return &roundRobinRouter{executors: c.executors}
	default:
		return &affinityRouter{container: c, executors: c.executors}
	}
}

package engine

import (
	"testing"

	"reactdb/internal/core"
	"reactdb/internal/rel"
)

// The BenchmarkEngine* benchmarks drive the storage hot path through the
// public engine surface: point reads, prefix scans and read-modify-writes
// issued by procedures against a single container with zeroed cost modeling,
// so the numbers isolate key encoding, index lookup, OCC bookkeeping and row
// codec work. bench-storage (internal/experiments/storage.go) records the
// same shapes in BENCH_storage.json; these exist for quick `go test -bench`
// comparisons during development.

const (
	benchRows       = 4096
	benchReadsPerTx = 100
	benchRMWPerTx   = 10
	benchScanRows   = 1024
)

// benchKey returns a pseudorandom key id in [0, benchRows), deterministic in i
// so before/after runs touch identical key sequences.
func benchKey(i int) int64 {
	return int64((uint32(i) * 2654435761) % benchRows)
}

// benchType is a two-relation reactor sized so row decoding stays cheap
// relative to key handling: the hot-read path is dominated by encode + lookup
// + OCC bookkeeping, which is what the storage refactor targets.
func benchType() *core.Type {
	accounts := rel.MustSchema("accounts",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "val", Type: rel.Int64}}, "id")

	t := core.NewType("BenchStore").AddRelation(accounts)

	t.AddProcedure("read_batch", func(ctx core.Context, args core.Args) (any, error) {
		start := int(args.Int64(0))
		var sum int64
		for i := 0; i < benchReadsPerTx; i++ {
			row, err := ctx.Get("accounts", benchKey(start+i))
			if err != nil {
				return nil, err
			}
			if row != nil {
				sum += row.Int64(1)
			}
		}
		return sum, nil
	})

	t.AddProcedure("rmw_batch", func(ctx core.Context, args core.Args) (any, error) {
		start := int(args.Int64(0))
		for i := 0; i < benchRMWPerTx; i++ {
			id := benchKey(start + i*7)
			row, err := ctx.Get("accounts", id)
			if err != nil {
				return nil, err
			}
			if row == nil {
				return nil, core.Abortf("missing row %d", id)
			}
			if err := ctx.Update("accounts", rel.Row{id, row.Int64(1) + 1}); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})

	t.AddProcedure("scan_sum", func(ctx core.Context, args core.Args) (any, error) {
		var sum int64
		n := 0
		err := ctx.Scan("accounts", func(row rel.Row) bool {
			sum += row.Int64(1)
			n++
			return n < benchScanRows
		})
		return sum, err
	})

	return t
}

func benchDB(b *testing.B) *Database {
	b.Helper()
	def := core.NewDatabaseDef()
	def.MustAddType(benchType())
	def.MustDeclareReactor("store-0", "BenchStore")
	db := MustOpen(def, Config{Containers: 1, ExecutorsPerContainer: 1})
	for i := 0; i < benchRows; i++ {
		db.MustLoad("store-0", "accounts", rel.Row{int64(i), int64(i) * 3})
	}
	return db
}

// BenchmarkEngineHotRead is the headline hot-read benchmark: each op is one
// transaction performing 100 point reads of pseudorandom keys.
func BenchmarkEngineHotRead(b *testing.B) {
	db := benchDB(b)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute("store-0", "read_batch", int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchReadsPerTx), "ns/read")
}

// BenchmarkEngineScan measures a transactional prefix scan over 1024 rows.
func BenchmarkEngineScan(b *testing.B) {
	db := benchDB(b)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute("store-0", "scan_sum"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchScanRows), "ns/row")
}

// BenchmarkEngineReadModifyWrite measures the write path: each op is one
// transaction performing 10 read-modify-writes (update buffering, write-set
// locking, validation, install).
func BenchmarkEngineReadModifyWrite(b *testing.B) {
	db := benchDB(b)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute("store-0", "rmw_batch", int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchRMWPerTx), "ns/rmw")
}

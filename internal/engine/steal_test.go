package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stealConfig is the baseline deployment for the steal tests: one container,
// several executors, hash-defaulted affinity (non-affine tasks, stealable),
// stealing on.
func stealConfig(executors int) Config {
	cfg := NewSharedEverythingWithAffinity(executors)
	cfg.Steal = StealConfig{Enabled: true}
	return cfg
}

// namesOnExecutor returns the declared account names whose hash affinity maps
// to the given executor index.
func namesOnExecutor(total, executors, exec int) []string {
	var out []string
	for _, n := range accountNames(total) {
		if hashString(n)%executors == exec {
			out = append(out, n)
		}
	}
	return out
}

// totalSteals sums the steal counter across all executors.
func totalSteals(db *Database) int64 {
	var n int64
	for _, qs := range db.QueueStats() {
		n += qs.Steals
	}
	return n
}

func TestStealRebalancesSkewedQueues(t *testing.T) {
	cfg := stealConfig(2)
	cfg.QueueDepth = 128
	cfg.Costs.Processing = 200 * time.Microsecond
	db := openAccounts(t, 64, 100, cfg)

	// Every request targets a reactor whose hash affinity routes it to
	// executor 0; executor 1 starts idle and only stealing can occupy it.
	hot := namesOnExecutor(64, 2, 0)
	if len(hot) < 8 {
		t.Fatalf("need >= 8 accounts hashing to executor 0, got %d", len(hot))
	}
	hot = hot[:8]
	var wg sync.WaitGroup
	for i, name := range hot {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := db.Execute(name, "credit", 1.0); err != nil {
					t.Errorf("credit %s: %v", name, err)
					return
				}
			}
		}(i, name)
	}
	wg.Wait()

	if got := totalSteals(db); got == 0 {
		t.Fatal("expected the idle sibling to steal from the skewed queue, saw 0 steals")
	}
	qs := db.QueueStats()
	if qs[1].Steals == 0 {
		t.Fatalf("executor 1 should be the thief: %+v", qs)
	}
	// Serializability: per-account balances reflect exactly the committed
	// credits regardless of which executor ran them.
	for _, name := range hot {
		if got := balanceOf(t, db, name); got != 110 {
			t.Fatalf("balance of %s = %v, want 110", name, got)
		}
	}
}

func TestStealDisabledLeavesSiblingsIdle(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(2)
	cfg.QueueDepth = 128
	db := openAccounts(t, 64, 100, cfg)

	hot := namesOnExecutor(64, 2, 0)[:4]
	var wg sync.WaitGroup
	for _, name := range hot {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := db.Execute(name, "credit", 1.0); err != nil {
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(name)
	}
	wg.Wait()
	if got := totalSteals(db); got != 0 {
		t.Fatalf("steals = %d with stealing disabled", got)
	}
	if processed := db.Containers()[0].Executors()[1].Processed(); processed != 0 {
		t.Fatalf("executor 1 processed %d requests without stealing enabled", processed)
	}
}

// TestAffinePinnedTasksNeverStolen pins every account to executor 0 through
// an explicit Affinity function — an application placement contract — and
// proves stealing never moves the work even though a sibling idles next to a
// deep queue.
func TestAffinePinnedTasksNeverStolen(t *testing.T) {
	cfg := stealConfig(2)
	cfg.QueueDepth = 128
	cfg.Affinity = func(string) int { return 0 }
	cfg.Costs.Processing = 100 * time.Microsecond
	db := openAccounts(t, 16, 100, cfg)

	var wg sync.WaitGroup
	for _, name := range accountNames(16) {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := db.Execute(name, "credit", 1.0); err != nil {
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(name)
	}
	wg.Wait()

	if got := totalSteals(db); got != 0 {
		t.Fatalf("stole %d pinned tasks; explicit affinity must never be broken", got)
	}
	execs := db.Containers()[0].Executors()
	if execs[1].Processed() != 0 {
		t.Fatalf("executor 1 processed %d requests despite every reactor being pinned to executor 0", execs[1].Processed())
	}
	for _, name := range accountNames(16) {
		if got := balanceOf(t, db, name); got != 105 {
			t.Fatalf("balance of %s = %v, want 105", name, got)
		}
	}
}

// TestStealImprovesSkewedThroughput pins the headline property of work
// stealing: when every request routes to one executor of a four-executor
// container, the idle siblings' steals must lift committed throughput by at
// least the 1.3x acceptance bar, affinity-miss charges included.
func TestStealImprovesSkewedThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison skipped in -short mode")
	}
	const executors = 4
	costs := struct{ processing, miss time.Duration }{100 * time.Microsecond, 20 * time.Microsecond}

	run := func(steal bool) int64 {
		cfg := NewSharedEverythingWithAffinity(executors)
		cfg.Steal = StealConfig{Enabled: steal}
		cfg.QueueDepth = 128
		cfg.Costs.Processing = costs.processing
		cfg.Costs.AffinityMiss = costs.miss
		db := openAccounts(t, 64, 1e9, cfg)
		hot := namesOnExecutor(64, executors, 0)
		if len(hot) < 8 {
			t.Fatalf("need >= 8 accounts on executor 0, got %d", len(hot))
		}
		// Each mode gets the best of three measurement windows so one noisy
		// window on an oversubscribed CI host cannot fail the comparison.
		var best int64
		for round := 0; round < 3; round++ {
			var committed atomic.Int64
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < 8; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					name := hot[c%len(hot)]
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := db.Execute(name, "get_balance"); err == nil {
							committed.Add(1)
						}
					}
				}(c)
			}
			time.Sleep(150 * time.Millisecond)
			close(stop)
			wg.Wait()
			if committed.Load() > best {
				best = committed.Load()
			}
		}
		return best
	}

	without := run(false)
	with := run(true)
	t.Logf("skewed load: %d committed without stealing, %d with", without, with)
	if float64(with) < 1.3*float64(without) {
		t.Fatalf("stealing should lift skewed throughput >= 1.3x: %d vs %d", with, without)
	}
}

// TestStealStressSerializable is the steal-correctness stress test: many
// clients, skewed targets, contended hot keys and stealing enabled, run under
// -race in CI (make race-sched). The observable history must stay
// serializable: every account's final balance equals its initial balance plus
// exactly the credits that were acknowledged as committed.
func TestStealStressSerializable(t *testing.T) {
	const accounts = 32
	cfg := stealConfig(4)
	cfg.QueueDepth = 64
	db := openAccounts(t, accounts, 1000, cfg)

	const clients = 8
	perClient := 150
	if testing.Short() {
		perClient = 40
	}
	committed := make([]atomic.Int64, accounts)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			names := accountNames(accounts)
			for i := 0; i < perClient; i++ {
				// Mostly a client-owned stripe (no conflicts), with every
				// fourth credit aimed at a shared hot account so validation
				// aborts interleave with steals.
				id := c + clients*(i%(accounts/clients))
				if i%4 == 0 {
					id = 0
				}
				_, err := db.Execute(names[id], "credit", 1.0)
				switch {
				case err == nil:
					committed[id].Add(1)
				case errors.Is(err, ErrConflict):
				default:
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	for i, name := range accountNames(accounts) {
		want := 1000 + float64(committed[i].Load())
		if got := balanceOf(t, db, name); got != want {
			t.Fatalf("balance of %s = %v, want %v: history not serializable", name, got, want)
		}
	}
	// Every admitted root returned its token.
	for _, qs := range db.QueueStats() {
		if qs.InFlight != 0 {
			t.Fatalf("executor %d leaked %d admission tokens", qs.Executor, qs.InFlight)
		}
	}
}

package engine

import "time"

// ExecutorLoad is the compact per-executor load signal the wire front-end
// piggybacks on responses (see internal/server): instantaneous queue depth
// and in-flight admission tokens against the gate's current limit, plus the
// queue-wait p99 over the still-open control window. It is a strict subset of
// QueueStats, chosen so a server can refresh it frequently without paying for
// full lifetime-histogram snapshots.
type ExecutorLoad struct {
	Container int
	Executor  int
	// Depth is the number of waiting requests; InFlight the admission tokens
	// currently held; EffectiveDepth the gate's current token limit (moved by
	// the adaptive depth controller when it is enabled).
	Depth          int
	InFlight       int
	EffectiveDepth int
	// Rejected counts root transactions refused with ErrOverloaded so far.
	Rejected int64
	// WaitP99 is the p99 scheduling delay (enqueue to core acquired) over the
	// current observation window, not the run's lifetime — a cumulative
	// distribution would dilute a fresh overload under old fast observations.
	WaitP99 time.Duration
}

// ExecutorLoads returns the per-executor load signals, flattened across
// containers in (container, executor) order. Under DispatchDirect the list is
// empty.
func (db *Database) ExecutorLoads() []ExecutorLoad {
	var out []ExecutorLoad
	for _, c := range db.containers {
		for _, e := range c.executors {
			l := ExecutorLoad{
				Container: c.id,
				Executor:  e.id,
				Rejected:  e.rejected.Load(),
			}
			if e.queue != nil {
				l.Depth = e.queue.depth()
			}
			if e.gate != nil {
				l.InFlight, l.EffectiveDepth, _ = e.gate.snapshot()
			}
			if e.waitWindow != nil {
				l.WaitP99 = time.Duration(e.waitWindow.Current().Quantile(0.99))
			}
			out = append(out, l)
		}
	}
	return out
}

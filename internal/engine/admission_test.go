package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/rel"
)

// inFlightOf returns the total admission tokens currently held across all
// executors.
func inFlightOf(db *Database) int {
	total := 0
	for _, qs := range db.QueueStats() {
		total += qs.InFlight
	}
	return total
}

// TestAdmissionTokenHeldAcrossYield pins the semantic the in-flight tokens
// add over the old waiting-queue bound: a root transaction that started and
// cooperatively yielded (blocked on a remote sub-transaction) still occupies
// its admission slot, so QueueDepth bounds total in-flight work. Under the
// old scheduler the yielded request left the queue and a full new wave could
// be admitted behind it.
func TestAdmissionTokenHeldAcrossYield(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	defer openGate()

	balance := rel.MustSchema("balance",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "amount", Type: rel.Float64}}, "id")
	typ := core.NewType("Yield").AddRelation(balance)
	started := make(chan struct{}, 16)
	typ.AddProcedure("call_remote_wait", func(ctx core.Context, args core.Args) (any, error) {
		fut, err := ctx.Call(args.String(0), "wait")
		if err != nil {
			return nil, err
		}
		return fut.Get()
	})
	typ.AddProcedure("wait", func(ctx core.Context, args core.Args) (any, error) {
		started <- struct{}{}
		<-gate
		return nil, nil
	})
	typ.AddProcedure("noop", func(ctx core.Context, args core.Args) (any, error) {
		return nil, nil
	})
	def := core.NewDatabaseDef().MustAddType(typ)
	def.MustDeclareReactors("Yield", "y0", "y1")

	cfg := Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		QueueDepth:            1,
		Admission:             AdmissionFail,
		Placement: func(reactor string) int {
			if reactor == "y0" {
				return 0
			}
			return 1
		},
	}
	db, err := Open(def, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	results := make(chan error, 1)
	go func() {
		_, err := db.Execute("y0", "call_remote_wait", "y1")
		results <- err
	}()
	<-started // the root has yielded y0's core, its request queue is empty

	// The yielded root still holds y0's only token: a new root must be shed
	// even though nothing is waiting in the queue.
	if _, err := db.Execute("y0", "noop"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Execute while a yielded root holds the token: err = %v, want ErrOverloaded", err)
	}
	openGate()
	if err := <-results; err != nil {
		t.Fatalf("yielded root: %v", err)
	}
	// Token returned: the same request is admitted now.
	if _, err := db.Execute("y0", "noop"); err != nil {
		t.Fatalf("Execute after token release: %v", err)
	}
	if got := inFlightOf(db); got != 0 {
		t.Fatalf("in-flight tokens = %d after drain, want 0", got)
	}
}

// TestAdmissionTokenReleasedOnAbort drives aborting transactions through a
// depth-1 executor under fail-fast admission: a leaked token would turn every
// request after the first abort into ErrOverloaded.
func TestAdmissionTokenReleasedOnAbort(t *testing.T) {
	typ := core.NewType("Aborter").AddRelation(rel.MustSchema("balance",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "amount", Type: rel.Float64}}, "id"))
	typ.AddProcedure("fail", func(ctx core.Context, args core.Args) (any, error) {
		return nil, core.Abortf("application abort")
	})
	def := core.NewDatabaseDef().MustAddType(typ)
	def.MustDeclareReactors("Aborter", "a0")
	cfg := Config{Containers: 1, ExecutorsPerContainer: 1, QueueDepth: 1, Admission: AdmissionFail}
	db, err := Open(def, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	for i := 0; i < 50; i++ {
		_, err := db.Execute("a0", "fail")
		if errors.Is(err, ErrOverloaded) {
			t.Fatalf("iteration %d rejected: an aborting transaction leaked its admission token", i)
		}
		if !core.IsUserAbort(err) {
			t.Fatalf("iteration %d: err = %v, want user abort", i, err)
		}
	}
	if got := inFlightOf(db); got != 0 {
		t.Fatalf("in-flight tokens = %d after aborts, want 0", got)
	}
}

// TestAdmissionTokenReleasedOnPanic proves a panicking reactor procedure
// cannot strand an admission slot.
func TestAdmissionTokenReleasedOnPanic(t *testing.T) {
	typ := core.NewType("Panicker").AddRelation(rel.MustSchema("balance",
		[]rel.Column{{Name: "id", Type: rel.Int64}, {Name: "amount", Type: rel.Float64}}, "id"))
	typ.AddProcedure("boom", func(ctx core.Context, args core.Args) (any, error) {
		panic("kaboom")
	})
	def := core.NewDatabaseDef().MustAddType(typ)
	def.MustDeclareReactors("Panicker", "p0")
	cfg := Config{Containers: 1, ExecutorsPerContainer: 1, QueueDepth: 1, Admission: AdmissionFail}
	db, err := Open(def, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()

	for i := 0; i < 50; i++ {
		_, err := db.Execute("p0", "boom")
		if errors.Is(err, ErrOverloaded) {
			t.Fatalf("iteration %d rejected: a panicking transaction leaked its admission token", i)
		}
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("iteration %d: err = %v, want procedure panic error", i, err)
		}
	}
	if got := inFlightOf(db); got != 0 {
		t.Fatalf("in-flight tokens = %d after panics, want 0", got)
	}
}

// TestAdmissionTokenNotConsumedOnOverload proves a request shed with
// ErrOverloaded does not consume a token: after the overload clears, the full
// depth is available again.
func TestAdmissionTokenNotConsumedOnOverload(t *testing.T) {
	cfg := Config{
		Containers:            1,
		ExecutorsPerContainer: 1,
		QueueDepth:            2,
		Admission:             AdmissionFail,
	}
	db, openGate, started := openGate(t, cfg)

	results := make(chan error, 64)
	go func() { _, err := db.Execute("g0", "wait"); results <- err }()
	waitFor(t, 5*time.Second, func() bool { return started.Load() == 1 })
	// Flood: exactly one more token exists; everything else must shed.
	const flood = 30
	for i := 0; i < flood; i++ {
		go func() { _, err := db.Execute("g0", "wait"); results <- err }()
	}
	waitFor(t, 5*time.Second, func() bool {
		var rejected int64
		for _, qs := range db.QueueStats() {
			rejected += qs.Rejected
		}
		return rejected >= flood-1
	})
	openGate()
	for i := 0; i < flood+1; i++ {
		<-results
	}
	if got := inFlightOf(db); got != 0 {
		t.Fatalf("in-flight tokens = %d after drain, want 0 (rejections must not consume tokens)", got)
	}
	// The full depth is usable again.
	for i := 0; i < 10; i++ {
		if _, err := db.Execute("g0", "noop"); err != nil {
			t.Fatalf("post-overload execute %d: %v", i, err)
		}
	}
}

// TestAdaptiveDepthShrinksUnderOverload floods a single slow executor and
// asserts the admission controller walks the effective depth down toward the
// floor, bounding the queue wait of admitted requests.
func TestAdaptiveDepthShrinksUnderOverload(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(1)
	cfg.QueueDepth = 64
	cfg.Costs.Processing = 500 * time.Microsecond
	cfg.AdaptiveDepth = AdaptiveDepthConfig{
		Enabled:   true,
		TargetP99: 300 * time.Microsecond,
		Floor:     2,
		Interval:  2 * time.Millisecond,
	}
	db := openAccounts(t, 16, 100, cfg)
	if got := db.QueueStats()[0].EffectiveDepth; got != 64 {
		t.Fatalf("initial effective depth = %d, want ceiling 64", got)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := accountNames(16)[c]
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Execute(name, "credit", 1.0); err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(c)
	}
	shrunk := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if db.QueueStats()[0].EffectiveDepth <= 8 {
			shrunk = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !shrunk {
		t.Fatalf("effective depth = %d after sustained overload, want <= 8",
			db.QueueStats()[0].EffectiveDepth)
	}
}

// TestAdaptiveDepthRecoversHeadroom runs the overload shrink, removes the
// load, and asserts the controller grows the depth back once measured waits
// fall below half the target.
func TestAdaptiveDepthRecoversHeadroom(t *testing.T) {
	cfg := NewSharedEverythingWithAffinity(1)
	cfg.QueueDepth = 32
	cfg.Costs.Processing = 300 * time.Microsecond
	cfg.AdaptiveDepth = AdaptiveDepthConfig{
		Enabled:   true,
		TargetP99: 200 * time.Microsecond,
		Floor:     2,
		Interval:  2 * time.Millisecond,
	}
	db := openAccounts(t, 8, 100, cfg)

	// Overload phase: shrink toward the floor.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := accountNames(8)[c]
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Execute(name, "credit", 1.0); err != nil && !errors.Is(err, ErrConflict) {
					t.Errorf("credit: %v", err)
					return
				}
			}
		}(c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && db.QueueStats()[0].EffectiveDepth > 4 {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	low := db.QueueStats()[0].EffectiveDepth
	if low > 4 {
		t.Fatalf("effective depth = %d after overload, want <= 4", low)
	}

	// Light phase: a single serial client sees near-zero queue wait, so the
	// controller should claw headroom back.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := db.Execute("acct-0", "credit", 1.0); err != nil && !errors.Is(err, ErrConflict) {
			t.Fatalf("credit: %v", err)
		}
		if db.QueueStats()[0].EffectiveDepth > low {
			return
		}
	}
	t.Fatalf("effective depth stuck at %d after load dropped", db.QueueStats()[0].EffectiveDepth)
}

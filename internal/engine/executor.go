package engine

import (
	"sync/atomic"
	"time"

	"reactdb/internal/stats"
	"reactdb/internal/vclock"
)

// Executor is a transaction executor: the unit of compute inside a container
// (paper §3.1). Each executor owns one virtual core and, under the queued
// dispatch mode, a bounded request queue drained by a run-loop goroutine:
// requests admitted to the queue are started in FIFO order, one core-holder
// at a time, and a request that blocks on a remote sub-transaction releases
// the core so queued work can proceed (cooperative multitasking, §3.2.3).
type Executor struct {
	container *Container
	id        int
	core      *vclock.Core

	// request-queue scheduler (nil queue under DispatchDirect)
	queue    *requestQueue
	loopDone chan struct{}

	// instrumentation
	busy      atomic.Int64 // accumulated nanoseconds the core was held
	processed atomic.Int64 // number of (sub-)transaction requests processed
	started   time.Time
	enqueued  atomic.Int64
	rejected  atomic.Int64
	waitHist  *stats.Histogram // scheduling delay: enqueue -> core acquired
	depthHist *stats.Histogram // queue depth observed at enqueue
}

func newExecutor(c *Container, id int) *Executor {
	e := &Executor{
		container: c,
		id:        id,
		core:      vclock.NewCore(),
		started:   time.Now(),
		waitHist:  stats.NewHistogram(stats.DurationBounds()),
		depthHist: stats.NewHistogram(stats.DepthBounds()),
	}
	if c.db.cfg.Dispatch == DispatchQueued {
		e.queue = newRequestQueue(c.db.cfg.QueueDepth)
		e.loopDone = make(chan struct{})
		go e.runLoop()
	}
	return e
}

// shutdown closes the request queue and waits for the run loop to drain.
func (e *Executor) shutdown() {
	if e.queue == nil {
		return
	}
	e.queue.close()
	<-e.loopDone
}

// ID returns the executor's index within its container.
func (e *Executor) ID() int { return e.id }

// Container returns the container owning this executor.
func (e *Executor) Container() *Container { return e.container }

// Processed returns the number of (sub-)transaction requests this executor has
// executed.
func (e *Executor) Processed() int64 { return e.processed.Load() }

// Utilization returns the fraction of wall-clock time since creation during
// which the executor's virtual core was busy. It corresponds to the
// per-executor hardware utilization the paper reports (§4.3.1).
func (e *Executor) Utilization() float64 {
	elapsed := time.Since(e.started)
	if elapsed <= 0 {
		return 0
	}
	u := float64(e.busy.Load()) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetStats restarts the utilization measurement window and clears the
// scheduler instrumentation (queue-wait and queue-depth histograms, admission
// counters).
func (e *Executor) ResetStats() {
	e.busy.Store(0)
	e.processed.Store(0)
	e.started = time.Now()
	e.enqueued.Store(0)
	e.rejected.Store(0)
	e.waitHist.Reset()
	e.depthHist.Reset()
}

// acquire takes the executor's core and returns the acquisition time used to
// account busy time.
func (e *Executor) acquire() time.Time {
	e.core.Acquire()
	return time.Now()
}

// release frees the core, charging the busy time since acquiredAt.
func (e *Executor) release(acquiredAt time.Time) {
	e.busy.Add(int64(time.Since(acquiredAt)))
	e.core.Release()
}

// chargeEntry applies the per-request costs charged when the executor starts
// processing a (sub-)transaction for a reactor: the fixed processing cost and
// the affinity-miss penalty charged when the reactor was last processed by a
// different executor of the same container (its working set has to move to
// this executor's cache, the effect affinity routing avoids). The caller must
// hold the core.
func (e *Executor) chargeEntry(reactor string) {
	costs := e.container.db.cfg.Costs
	miss := e.container.noteExecutorFor(reactor, e.id)
	if miss && costs.AffinityMiss > 0 {
		vclock.Spin(costs.AffinityMiss)
	}
	if costs.Processing > 0 {
		vclock.Spin(costs.Processing)
	}
	e.processed.Add(1)
}

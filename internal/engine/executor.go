package engine

import (
	"sync/atomic"
	"time"

	"reactdb/internal/stats"
	"reactdb/internal/vclock"
)

// Executor is a transaction executor: the unit of compute inside a container
// (paper §3.1). Each executor owns one virtual core and, under the queued
// dispatch mode, a request queue drained by a run-loop goroutine plus an
// admission gate of in-flight tokens: root transactions admitted to the gate
// are started in FIFO order, one core-holder at a time, and a request that
// blocks on a remote sub-transaction releases the core so queued work can
// proceed (cooperative multitasking, §3.2.3) while keeping its token. When
// work stealing is enabled (Config.Steal) an executor whose queue runs empty
// — or pathologically shallow next to a sibling's — takes non-affine root
// tasks from the deepest sibling queue of its container.
type Executor struct {
	container *Container
	id        int
	core      *vclock.Core

	// request-queue scheduler (nil queue/gate under DispatchDirect)
	queue    *requestQueue
	gate     *admissionGate
	loopDone chan struct{}
	parked   atomic.Bool // run loop is waiting on queue.wake (steal wake target)

	// instrumentation
	busy       atomic.Int64 // accumulated nanoseconds the core was held
	processed  atomic.Int64 // number of (sub-)transaction requests processed
	started    time.Time
	enqueued   atomic.Int64
	rejected   atomic.Int64
	steals     atomic.Int64             // tasks taken from sibling queues
	stolen     atomic.Int64             // tasks siblings took from this queue
	misses     atomic.Int64             // affinity misses charged at chargeEntry
	waitHist   *stats.Histogram         // scheduling delay: enqueue -> core acquired
	waitWindow *stats.WindowedHistogram // same delay, windowed for the depth controller
	depthHist  *stats.Histogram         // queue depth observed at enqueue
}

func newExecutor(c *Container, id int) *Executor {
	e := &Executor{
		container:  c,
		id:         id,
		core:       vclock.NewCore(),
		started:    time.Now(),
		waitHist:   stats.NewHistogram(stats.DurationBounds()),
		waitWindow: stats.NewWindowedHistogram(stats.DurationBounds()),
		depthHist:  stats.NewHistogram(stats.DepthBounds()),
	}
	if c.db.cfg.Dispatch == DispatchQueued {
		depth := c.db.cfg.QueueDepth
		if a := c.db.cfg.AdaptiveDepth; a.Enabled {
			// Start wide open; the controller shrinks toward the floor only
			// when measured queue-wait says the backlog is hurting.
			depth = a.Ceiling
		}
		e.queue = newRequestQueue(depth)
		e.gate = newAdmissionGate(depth)
		e.loopDone = make(chan struct{})
	}
	return e
}

// start spawns the run loop. It is separate from construction because a
// stealing run loop scans its container's executor slice and sibling queues:
// every executor of the container must exist before any loop runs.
func (e *Executor) start() {
	if e.queue != nil {
		go e.runLoop()
	}
}

// shutdown closes the admission gate and request queue, then waits for the
// run loop to drain. Gate first: a root blocked at admission must fail with
// errDatabaseClosed rather than win a token from a closing executor.
func (e *Executor) shutdown() {
	if e.queue == nil {
		return
	}
	e.gate.close()
	e.queue.close()
	<-e.loopDone
}

// ID returns the executor's index within its container.
func (e *Executor) ID() int { return e.id }

// Container returns the container owning this executor.
func (e *Executor) Container() *Container { return e.container }

// Processed returns the number of (sub-)transaction requests this executor has
// executed.
func (e *Executor) Processed() int64 { return e.processed.Load() }

// Utilization returns the fraction of wall-clock time since creation during
// which the executor's virtual core was busy. It corresponds to the
// per-executor hardware utilization the paper reports (§4.3.1).
func (e *Executor) Utilization() float64 {
	elapsed := time.Since(e.started)
	if elapsed <= 0 {
		return 0
	}
	u := float64(e.busy.Load()) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetStats restarts the utilization measurement window and clears the
// scheduler instrumentation (queue-wait and queue-depth histograms, admission
// and steal counters). The admission gate's effective depth is left where the
// controller put it.
func (e *Executor) ResetStats() {
	e.busy.Store(0)
	e.processed.Store(0)
	e.started = time.Now()
	e.enqueued.Store(0)
	e.rejected.Store(0)
	e.steals.Store(0)
	e.stolen.Store(0)
	e.misses.Store(0)
	e.waitHist.Reset()
	e.depthHist.Reset()
}

// acquire takes the executor's core and returns the acquisition time used to
// account busy time.
func (e *Executor) acquire() time.Time {
	e.core.Acquire()
	return time.Now()
}

// release frees the core, charging the busy time since acquiredAt.
func (e *Executor) release(acquiredAt time.Time) {
	e.busy.Add(int64(time.Since(acquiredAt)))
	e.core.Release()
}

// chargeEntry applies the per-request costs charged when the executor starts
// processing a (sub-)transaction for a reactor: the fixed processing cost and
// the affinity-miss penalty charged when the reactor was last processed by a
// different executor of the same container (its working set has to move to
// this executor's cache, the effect affinity routing avoids). A stolen task
// pays this penalty through the same model — lastExecutor points at the
// victim — which is what keeps the steal-on/steal-off ablation honest.
// The caller must hold the core.
func (e *Executor) chargeEntry(reactor string) {
	costs := e.container.db.cfg.Costs
	miss := e.container.noteExecutorFor(reactor, e.id)
	if miss {
		e.misses.Add(1)
		if costs.AffinityMiss > 0 {
			vclock.Spin(costs.AffinityMiss)
		}
	}
	if costs.Processing > 0 {
		vclock.Spin(costs.Processing)
	}
	e.processed.Add(1)
}

package engine

import (
	"fmt"
	"strings"
	"sync"

	"reactdb/internal/occ"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// Container is a database container (paper §3.1): an isolated portion of the
// machine with its own storage (the catalogs of the reactors mapped to it),
// its own concurrency control domain, and its own transaction executors.
// Containers never share data; transactions spanning containers go through the
// two-phase commit coordinator.
type Container struct {
	db        *Database
	id        int
	domain    *occ.Domain
	executors []*Executor
	router    Router
	committer *groupCommitter // nil unless group commit is enabled
	wal       *wal.Log        // nil unless Durability.Mode == DurabilityWAL

	// walStorage is the container's segment + checkpoint store (nil without a
	// WAL); the checkpointer writes snapshot blobs to it and recovery loads
	// the newest valid one from it.
	walStorage wal.Storage

	// ckptMu guards the checkpoint bookkeeping. Checkpoints themselves are
	// serialized by Database.ckptMu; this inner mutex only makes the stats
	// snapshot race-free.
	ckptMu      sync.Mutex
	ckptSeq     uint64 // newest checkpoint sequence written or found on open
	replayFloor uint64 // LSN at or below which Recover skipped log records
	ckptStats   checkpointCounters

	// catalogs holds the relational state of every reactor mapped to this
	// container, keyed by reactor name. The map is built at Open time and
	// never mutated afterwards, so it is safe for concurrent reads.
	catalogs map[string]*rel.Catalog

	// affinityMu guards lastExecutor, which records the executor that last
	// processed each reactor; it backs the affinity-miss cost model.
	affinityMu   sync.Mutex
	lastExecutor map[string]int
}

func newContainer(db *Database, id int) (*Container, error) {
	c := &Container{
		db:           db,
		id:           id,
		domain:       occ.NewDomain(fmt.Sprintf("container-%d", id)),
		catalogs:     make(map[string]*rel.Catalog),
		lastExecutor: make(map[string]int),
	}
	if db.cfg.Durability.Mode == DurabilityWAL {
		storage := db.cfg.Durability.Storage.Sub(fmt.Sprintf("container-%d", id))
		log, err := wal.Open(storage, wal.Options{SegmentSize: db.cfg.Durability.SegmentSize})
		if err != nil {
			return nil, fmt.Errorf("engine: container %d: open wal: %w", id, err)
		}
		c.wal = log
		c.walStorage = storage
		// Stamp the log with the node's failover term: records append under
		// the current epoch, and a fence recorded by a supervisor (this node
		// was deposed) rejects appends before the first transaction runs.
		log.SetEpoch(db.walEpoch.Load())
		if fence := db.walFence.Load(); fence > 0 {
			log.Fence(fence)
		}
		// Seed the checkpoint sequence past anything already on storage so a
		// fresh incarnation never overwrites a predecessor's checkpoint, even
		// when Recover is skipped. A listing failure must fail Open: silently
		// restarting at sequence 0 would let a later truncation strand a
		// stale higher-sequence checkpoint that recovery then prefers.
		seqs, err := storage.ListCheckpoints()
		if err != nil {
			return nil, fmt.Errorf("engine: container %d: list checkpoints: %w", id, err)
		}
		if len(seqs) > 0 {
			c.ckptSeq = seqs[len(seqs)-1]
		}
	}
	for i := 0; i < db.cfg.ExecutorsPerContainer; i++ {
		c.executors = append(c.executors, newExecutor(c, i))
	}
	// Run loops start only after the executor slice is complete: a stealing
	// loop reads its siblings from the moment it runs.
	for _, e := range c.executors {
		e.start()
	}
	c.router = newRouter(db.cfg.Router, c)
	if db.cfg.GroupCommit.Enabled {
		c.committer = newGroupCommitter(c)
	}
	return c, nil
}

// shutdown stops the container's executors (draining their request queues),
// its group committer, and closes its write-ahead log.
func (c *Container) shutdown() {
	for _, e := range c.executors {
		e.shutdown()
	}
	if c.committer != nil {
		c.committer.stop()
	}
	if c.wal != nil {
		_ = c.wal.Close()
	}
}

// WAL returns the container's write-ahead log, or nil when the deployment
// does not use real durability.
func (c *Container) WAL() *wal.Log { return c.wal }

// walRecordPrepared assigns the prepared transaction's commit TID and
// serializes its write set into a WAL commit record. It must run *before*
// CommitPrepared installs the writes: appending ahead of in-memory
// visibility guarantees that any transaction reading those writes appends —
// and fsyncs — after this record, so recovery can never surface a dependent
// commit without its antecedent. An error means the transaction is not
// prepared.
func walRecordPrepared(txn *occ.Txn) (wal.Record, error) {
	tid, err := txn.AssignTID()
	if err != nil {
		return wal.Record{}, err
	}
	rec := wal.Record{TID: tid}
	// WAL record keys are strings; the conversion copies the transaction's
	// arena-backed key bytes, which is required anyway (the record outlives
	// the transaction) and cheap next to the fsync this record is headed for.
	txn.PreparedWrites(func(key []byte, data []byte, deleted bool) {
		rec.Writes = append(rec.Writes, wal.Write{Key: string(key), Data: data, Delete: deleted})
	})
	return rec, nil
}

// appendCommitRecord appends the prepared transaction's commit record to the
// container's WAL without fsyncing, reporting whether anything was appended
// (read-only transactions append nothing). It is the unbatched durability
// path, used when group commit is disabled and for two-phase commit
// participants; the group committer batches its appends instead. The caller
// must fsync (wal.Sync) after the write phase and before acknowledging the
// commit — including for read-only transactions, whose antecedents' records
// may still await their fsync.
func (c *Container) appendCommitRecord(txn *occ.Txn) (bool, error) {
	if c.wal == nil {
		return false, nil
	}
	rec, err := walRecordPrepared(txn)
	if err != nil {
		return false, err
	}
	if len(rec.Writes) == 0 {
		return false, nil
	}
	if _, err := c.wal.Append(rec); err != nil {
		return false, err
	}
	return true, nil
}

// forceRecord makes rec durable in the container's log before the returned
// channel delivers nil: through the group committer when one is running —
// amortizing the fsync with the container's commit batches — or with a
// direct append+fsync otherwise (the eager ablation). A nil rec is a pure
// durability barrier: nothing is appended, and the acknowledgment means
// everything appended to this log before the call is durable (read-only 2PC
// participants use it so their antecedents are durable before the decision).
// A nil channel with a nil error means the container has no WAL and there is
// nothing to force.
func (c *Container) forceRecord(rec *wal.Record) (<-chan error, error) {
	if c.wal == nil {
		return nil, nil
	}
	if gc := c.committer; gc != nil {
		ch, ok := gc.submitRecord(rec)
		if !ok {
			// The committer stopped (shutdown racing the tail of an in-flight
			// commit); the caller aborts rather than blocking forever.
			return nil, errDatabaseClosed
		}
		return ch, nil
	}
	done := make(chan error, 1)
	if rec != nil {
		if _, err := c.wal.Append(*rec); err != nil {
			return nil, err
		}
	}
	err := c.wal.Sync()
	if err == nil {
		// Semi-sync hook for the eager (committer-less) force path: prepare
		// and decision records are acknowledged only once semi-sync replicas
		// durably hold them — which also keeps the mirror-safety ordering
		// (prepares mirrored before their decision is appended) live under
		// pure semi-sync 2PC.
		c.waitShipped(c.wal.DurableLSN())
	}
	done <- err
	return done, nil
}

// retractRecord appends an abort record for tid and fsyncs it, best-effort.
// It is called when a multi-participant commit fails after this container's
// log may already have received one of the transaction's records (a prepare
// record, under the decision protocol): presumed abort already guarantees
// recovery will not commit it, but the durable tombstone resolves the
// in-doubt record immediately instead of leaving it for the next recovery's
// presumed-abort pass. If this append fails the log wedges, which keeps any
// un-retracted record from ever being fsynced by this process.
func (c *Container) retractRecord(tid uint64) {
	if c.wal == nil {
		return
	}
	if _, err := c.wal.Append(wal.Record{TID: tid, Kind: wal.KindAbort}); err == nil {
		_ = c.wal.Sync()
	}
}

// recover replays the container's WAL into its catalogs and concurrency
// control domain, returning the number of transactions replayed. decided
// holds the global ids for which a durable (unretracted) decision record
// exists in any container's log; prepare records outside it are resolved by
// presumed abort — skipped, counted as recovered aborts, and tombstoned with
// a durable abort record so no later incarnation can resurrect them even if
// global ids were ever reused. See Database.Recover.
//
// When a checkpoint was installed first (Database.Recover's fast path),
// c.replayFloor holds its low-water mark and every record at or below it is
// skipped: its effects are already in the snapshot, and its segments may
// already be gone. The filter is by LSN, not by segment, so recovery is
// correct whether truncation ran to completion, partially, or not at all.
func (c *Container) recover(decided map[uint64]bool) (int, error) {
	if c.wal == nil {
		return 0, nil
	}
	n := 0
	var presumedAborted []uint64
	err := c.wal.Replay(func(rec wal.Record) error {
		if rec.LSN <= c.replayFloor {
			// Captured by the checkpoint: committed effects are in the
			// snapshot, prepares were resolved before the quiesce point.
			return nil
		}
		switch rec.Kind {
		case wal.KindDecision:
			// Decisions were collected in the scan pass; their effects are
			// the prepare records they decide, replayed on each participant.
			return nil
		case wal.KindPrepare:
			if !decided[rec.GlobalID] {
				presumedAborted = append(presumedAborted, rec.TID)
				c.domain.ObserveRecoveredAbort(rec.TID)
				return nil
			}
		}
		for _, w := range rec.Writes {
			reactor, relation, key, ok := splitWALKey(w.Key)
			if !ok {
				return fmt.Errorf("engine: recovery: malformed WAL key %q in container %d", w.Key, c.id)
			}
			cat := c.catalogs[reactor]
			if cat == nil {
				return fmt.Errorf("engine: recovery: reactor %q not mapped to container %d (placement changed since the log was written?)", reactor, c.id)
			}
			tbl := cat.Table(relation)
			if tbl == nil {
				return fmt.Errorf("engine: recovery: unknown relation %s.%s in container %d", reactor, relation, c.id)
			}
			r, _ := tbl.GetOrInsert([]byte(key))
			c.domain.ApplyReplayedWrite(r, tbl, rec.TID, w.Data, w.Delete)
		}
		c.domain.ObserveRecoveredTID(rec.TID)
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	// Tombstone the presumed aborts after replay finished (the log must not
	// grow mid-Replay), then make the tombstones durable with one fsync.
	for _, tid := range presumedAborted {
		if _, err := c.wal.Append(wal.Record{TID: tid, Kind: wal.KindAbort}); err != nil {
			return n, fmt.Errorf("engine: recovery: tombstoning presumed abort in container %d: %w", c.id, err)
		}
	}
	if len(presumedAborted) > 0 {
		if err := c.wal.Sync(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// splitWALKey decomposes the engine's fully-qualified write key
// (reactor \x00 relation \x00 primary-key, see execContext.lockKey).
func splitWALKey(k string) (reactor, relation, key string, ok bool) {
	i := strings.IndexByte(k, 0)
	if i < 0 {
		return "", "", "", false
	}
	j := strings.IndexByte(k[i+1:], 0)
	if j < 0 {
		return "", "", "", false
	}
	return k[:i], k[i+1 : i+1+j], k[i+1+j+1:], true
}

// ID returns the container's index within the database.
func (c *Container) ID() int { return c.id }

// Domain returns the container's concurrency control domain.
func (c *Container) Domain() *occ.Domain { return c.domain }

// Executors returns the container's transaction executors.
func (c *Container) Executors() []*Executor { return c.executors }

// addReactor creates the catalog for a reactor of the given type, creating one
// table per relation declared by the type.
func (c *Container) addReactor(name string, schemas []*rel.Schema) error {
	if _, dup := c.catalogs[name]; dup {
		return fmt.Errorf("engine: reactor %q mapped to container %d twice", name, c.id)
	}
	cat := rel.NewCatalog()
	for _, s := range schemas {
		if _, err := cat.CreateTable(s); err != nil {
			return err
		}
	}
	c.catalogs[name] = cat
	return nil
}

// catalog returns the catalog of a reactor hosted by this container, or nil.
func (c *Container) catalog(reactor string) *rel.Catalog { return c.catalogs[reactor] }

// noteExecutorFor records that executor is about to process a request for the
// reactor and reports whether a different executor processed it last (an
// affinity miss).
func (c *Container) noteExecutorFor(reactor string, executor int) bool {
	c.affinityMu.Lock()
	last, seen := c.lastExecutor[reactor]
	c.lastExecutor[reactor] = executor
	c.affinityMu.Unlock()
	return seen && last != executor
}

package engine

import (
	"fmt"
	"sync"

	"reactdb/internal/occ"
	"reactdb/internal/rel"
)

// Container is a database container (paper §3.1): an isolated portion of the
// machine with its own storage (the catalogs of the reactors mapped to it),
// its own concurrency control domain, and its own transaction executors.
// Containers never share data; transactions spanning containers go through the
// two-phase commit coordinator.
type Container struct {
	db        *Database
	id        int
	domain    *occ.Domain
	executors []*Executor
	router    Router
	committer *groupCommitter // nil unless group commit is enabled

	// catalogs holds the relational state of every reactor mapped to this
	// container, keyed by reactor name. The map is built at Open time and
	// never mutated afterwards, so it is safe for concurrent reads.
	catalogs map[string]*rel.Catalog

	// affinityMu guards lastExecutor, which records the executor that last
	// processed each reactor; it backs the affinity-miss cost model.
	affinityMu   sync.Mutex
	lastExecutor map[string]int
}

func newContainer(db *Database, id int) *Container {
	c := &Container{
		db:           db,
		id:           id,
		domain:       occ.NewDomain(fmt.Sprintf("container-%d", id)),
		catalogs:     make(map[string]*rel.Catalog),
		lastExecutor: make(map[string]int),
	}
	for i := 0; i < db.cfg.ExecutorsPerContainer; i++ {
		c.executors = append(c.executors, newExecutor(c, i))
	}
	c.router = newRouter(db.cfg.Router, c)
	if db.cfg.GroupCommit.Enabled {
		c.committer = newGroupCommitter(c)
	}
	return c
}

// shutdown stops the container's executors (draining their request queues)
// and its group committer.
func (c *Container) shutdown() {
	for _, e := range c.executors {
		e.shutdown()
	}
	if c.committer != nil {
		c.committer.stop()
	}
}

// ID returns the container's index within the database.
func (c *Container) ID() int { return c.id }

// Domain returns the container's concurrency control domain.
func (c *Container) Domain() *occ.Domain { return c.domain }

// Executors returns the container's transaction executors.
func (c *Container) Executors() []*Executor { return c.executors }

// addReactor creates the catalog for a reactor of the given type, creating one
// table per relation declared by the type.
func (c *Container) addReactor(name string, schemas []*rel.Schema) error {
	if _, dup := c.catalogs[name]; dup {
		return fmt.Errorf("engine: reactor %q mapped to container %d twice", name, c.id)
	}
	cat := rel.NewCatalog()
	for _, s := range schemas {
		if _, err := cat.CreateTable(s); err != nil {
			return err
		}
	}
	c.catalogs[name] = cat
	return nil
}

// catalog returns the catalog of a reactor hosted by this container, or nil.
func (c *Container) catalog(reactor string) *rel.Catalog { return c.catalogs[reactor] }

// noteExecutorFor records that executor is about to process a request for the
// reactor and reports whether a different executor processed it last (an
// affinity miss).
func (c *Container) noteExecutorFor(reactor string, executor int) bool {
	c.affinityMu.Lock()
	last, seen := c.lastExecutor[reactor]
	c.lastExecutor[reactor] = executor
	c.affinityMu.Unlock()
	return seen && last != executor
}

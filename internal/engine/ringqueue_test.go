package engine

import (
	"fmt"
	"testing"
)

func TestRequestQueueFIFOAcrossWraparound(t *testing.T) {
	q := newRequestQueue(4) // capacity 16 ring
	next := 0
	popped := 0
	// Interleave pushes and pops so head travels around the ring many times.
	for round := 0; round < 40; round++ {
		for i := 0; i < 3; i++ {
			tk := &task{isRoot: true, procName: fmt.Sprint(next)}
			next++
			if _, err := q.enqueue(tk, AdmissionFail); err != nil {
				t.Fatalf("enqueue %d: %v", next-1, err)
			}
		}
		for i := 0; i < 3; i++ {
			tk, ok := q.dequeue()
			if !ok {
				t.Fatal("dequeue on open queue returned !ok")
			}
			if tk.procName != fmt.Sprint(popped) {
				t.Fatalf("dequeued %q, want %d: FIFO order broken", tk.procName, popped)
			}
			popped++
		}
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d after balanced churn, want 0", q.depth())
	}
}

func TestRequestQueueSubTaskBypassGrowsRing(t *testing.T) {
	q := newRequestQueue(2) // capacity 16 ring
	const n = 100           // far beyond both the limit and the initial ring
	for i := 0; i < n; i++ {
		if _, err := q.enqueue(&task{isRoot: false, procName: fmt.Sprint(i)}, AdmissionFail); err != nil {
			t.Fatalf("sub-task enqueue %d rejected: %v", i, err)
		}
	}
	if q.depth() != n {
		t.Fatalf("depth = %d, want %d", q.depth(), n)
	}
	// A root task must still respect the bound.
	if _, err := q.enqueue(&task{isRoot: true}, AdmissionFail); err != ErrOverloaded {
		t.Fatalf("root enqueue on full queue: err = %v, want ErrOverloaded", err)
	}
	for i := 0; i < n; i++ {
		tk, ok := q.dequeue()
		if !ok || tk.procName != fmt.Sprint(i) {
			t.Fatalf("dequeue %d = (%v, %v), want in-order task", i, tk, ok)
		}
	}
}

// BenchmarkRequestQueueChurn measures steady-state enqueue/dequeue cost. The
// ring buffer holds allocations at zero per operation, where the previous
// slice FIFO (items = items[1:] plus append) leaked head capacity and
// reallocated under churn.
func BenchmarkRequestQueueChurn(b *testing.B) {
	q := newRequestQueue(256)
	tk := &task{isRoot: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.enqueue(tk, AdmissionBlock); err != nil {
			b.Fatal(err)
		}
		if _, ok := q.dequeue(); !ok {
			b.Fatal("dequeue failed")
		}
	}
}

// BenchmarkRequestQueueDeepChurn keeps the queue half full while cycling, so
// the ring wraps continuously.
func BenchmarkRequestQueueDeepChurn(b *testing.B) {
	q := newRequestQueue(256)
	tk := &task{isRoot: true}
	for i := 0; i < 128; i++ {
		if _, err := q.enqueue(tk, AdmissionBlock); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.enqueue(tk, AdmissionBlock); err != nil {
			b.Fatal(err)
		}
		if _, ok := q.dequeue(); !ok {
			b.Fatal("dequeue failed")
		}
	}
}

package engine

import (
	"fmt"
	"testing"
)

func TestRequestQueueFIFOAcrossWraparound(t *testing.T) {
	q := newRequestQueue(4) // capacity 16 ring
	next := 0
	popped := 0
	// Interleave pushes and pops so head travels around the ring many times.
	for round := 0; round < 40; round++ {
		for i := 0; i < 3; i++ {
			tk := &task{isRoot: true, procName: fmt.Sprint(next)}
			next++
			if _, err := q.enqueue(tk); err != nil {
				t.Fatalf("enqueue %d: %v", next-1, err)
			}
		}
		for i := 0; i < 3; i++ {
			tk, ok := q.tryDequeue()
			if !ok {
				t.Fatal("tryDequeue on non-empty queue returned !ok")
			}
			if tk.procName != fmt.Sprint(popped) {
				t.Fatalf("dequeued %q, want %d: FIFO order broken", tk.procName, popped)
			}
			popped++
		}
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d after balanced churn, want 0", q.depth())
	}
}

func TestRequestQueueGrowsBeyondInitialCapacity(t *testing.T) {
	q := newRequestQueue(2) // capacity 16 ring
	const n = 100           // far beyond the initial ring
	for i := 0; i < n; i++ {
		if _, err := q.enqueue(&task{isRoot: false, procName: fmt.Sprint(i)}); err != nil {
			t.Fatalf("enqueue %d rejected: %v", i, err)
		}
	}
	if q.depth() != n {
		t.Fatalf("depth = %d, want %d", q.depth(), n)
	}
	for i := 0; i < n; i++ {
		tk, ok := q.tryDequeue()
		if !ok || tk.procName != fmt.Sprint(i) {
			t.Fatalf("dequeue %d = (%v, %v), want in-order task", i, tk, ok)
		}
	}
}

func TestRequestQueueStealTailTakesNewestStealable(t *testing.T) {
	q := newRequestQueue(8)
	for i := 0; i < 4; i++ {
		if _, err := q.enqueue(&task{isRoot: true, procName: fmt.Sprint(i)}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	// Steals come off the tail, newest first...
	if tk := q.stealTail(); tk == nil || tk.procName != "3" {
		t.Fatalf("stealTail = %v, want task 3", tk)
	}
	if tk := q.stealTail(); tk == nil || tk.procName != "2" {
		t.Fatalf("stealTail = %v, want task 2", tk)
	}
	// ...while the owner's FIFO order over the rest is untouched.
	if tk, ok := q.tryDequeue(); !ok || tk.procName != "0" {
		t.Fatalf("tryDequeue = %v, want task 0", tk)
	}
	if tk, ok := q.tryDequeue(); !ok || tk.procName != "1" {
		t.Fatalf("tryDequeue = %v, want task 1", tk)
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d, want 0", q.depth())
	}
	if tk := q.stealTail(); tk != nil {
		t.Fatalf("stealTail on empty queue = %v, want nil", tk)
	}
}

func TestRequestQueueStealTailRespectsPins(t *testing.T) {
	q := newRequestQueue(8)
	// An affine root at the tail blocks the steal (the check is O(1): only
	// the tail element is inspected).
	if _, err := q.enqueue(&task{isRoot: true, procName: "stealable"}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.enqueue(&task{isRoot: true, affine: true, procName: "pinned"}); err != nil {
		t.Fatal(err)
	}
	if tk := q.stealTail(); tk != nil {
		t.Fatalf("stole affine task %q", tk.procName)
	}
	if tk, ok := q.tryDequeue(); !ok || tk.procName != "stealable" {
		t.Fatalf("tryDequeue = %v, want the stealable head", tk)
	}
	if tk := q.stealTail(); tk != nil {
		t.Fatalf("stole affine task %q", tk.procName)
	}
	// Sub-transaction requests are never stolen either.
	q2 := newRequestQueue(8)
	if _, err := q2.enqueue(&task{isRoot: false, procName: "sub"}); err != nil {
		t.Fatal(err)
	}
	if tk := q2.stealTail(); tk != nil {
		t.Fatalf("stole sub-transaction task %q", tk.procName)
	}
}

// BenchmarkRequestQueueChurn measures steady-state enqueue/dequeue cost. The
// ring buffer holds allocations at zero per operation, where the previous
// slice FIFO (items = items[1:] plus append) leaked head capacity and
// reallocated under churn.
func BenchmarkRequestQueueChurn(b *testing.B) {
	q := newRequestQueue(256)
	tk := &task{isRoot: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.enqueue(tk); err != nil {
			b.Fatal(err)
		}
		if _, ok := q.tryDequeue(); !ok {
			b.Fatal("dequeue failed")
		}
	}
}

// BenchmarkRequestQueueDeepChurn keeps the queue half full while cycling, so
// the ring wraps continuously.
func BenchmarkRequestQueueDeepChurn(b *testing.B) {
	q := newRequestQueue(256)
	tk := &task{isRoot: true}
	for i := 0; i < 128; i++ {
		if _, err := q.enqueue(tk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.enqueue(tk); err != nil {
			b.Fatal(err)
		}
		if _, ok := q.tryDequeue(); !ok {
			b.Fatal("dequeue failed")
		}
	}
}

// BenchmarkRequestQueueStealChurn measures the steal dequeue path: enqueue on
// a victim queue, steal from the tail. The acceptance bar for the scheduler
// work is 0 allocs/op here — the steal hot loop must not allocate.
func BenchmarkRequestQueueStealChurn(b *testing.B) {
	q := newRequestQueue(256)
	tk := &task{isRoot: true}
	for i := 0; i < 64; i++ {
		if _, err := q.enqueue(tk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.enqueue(tk); err != nil {
			b.Fatal(err)
		}
		if got := q.stealTail(); got == nil {
			b.Fatal("stealTail failed on non-empty queue")
		}
	}
}

package engine

import (
	"fmt"
	"testing"

	"reactdb/internal/wal"
)

// This file extends the crash-injection matrix to replication: it enumerates
// every storage IO boundary of the shipping pipeline — mirror segment writes
// and fsyncs, mirror rotation (segment handoff), checkpoint-blob transfer,
// and the fsync that releases a semi-sync acknowledgment — and kills the
// primary or the replica at each one. Recovery is always judged by PROMOTION:
// the replica's surviving mirror bytes are opened as an ordinary primary and
// recovered, and the result must be a consistent committed prefix of the
// primary's per-container history with every 2PC group atomic. Each matrix
// point then runs the double-restart drill: the promoted database serves a
// fresh multi-container commit, restarts, and re-verifies everything.
// `make crash-repl` runs exactly these tests; the plain crash matrix target
// picks them up too.

// replCrashOp is one scripted write with its per-container placement: key and
// value identify it uniquely in the recovered state, pair marks a
// multi-container transaction (present on both containers or neither).
type replCrashOp struct {
	key, val int64
	pair     bool
	c0, c1   bool // which containers the op writes
	acked    bool
}

// runReplPhase1 is the pre-replica workload: the state the replica must pick
// up through checkpoint transfer (the blob) or backfill shipping (the log).
func runReplPhase1(db *Database) []replCrashOp {
	ops := []replCrashOp{
		{key: 10, val: 100, c0: true},
		{key: 11, val: 110, c1: true},
		{key: 12, val: 120, pair: true, c0: true, c1: true},
	}
	ops[0].acked = exec1(db, "kv0", "put", int64(10), int64(100))
	ops[1].acked = exec1(db, "kv1", "put", int64(11), int64(110))
	ops[2].acked = exec1(db, "kv0", "copyTo", "kv1", int64(12), int64(120))
	return ops
}

// runReplPhase2 is the live-tail workload: singles, 2PC groups with both
// coordinator orientations, and filler traffic that rotates the mirror's
// small segments so the matrix hits mid-rotation kills.
func runReplPhase2(db *Database) []replCrashOp {
	var ops []replCrashOp
	add := func(op replCrashOp, ok bool) {
		op.acked = ok
		ops = append(ops, op)
	}
	add(replCrashOp{key: 1, val: 10, c0: true}, exec1(db, "kv0", "put", int64(1), int64(10)))
	add(replCrashOp{key: 21, val: 11, c1: true}, exec1(db, "kv1", "put", int64(21), int64(11)))
	add(replCrashOp{key: 2, val: 20, pair: true, c0: true, c1: true},
		exec1(db, "kv0", "copyTo", "kv1", int64(2), int64(20)))
	add(replCrashOp{key: 3, val: 30, c0: true}, exec1(db, "kv0", "put", int64(3), int64(30)))
	add(replCrashOp{key: 4, val: 40, pair: true, c0: true, c1: true},
		exec1(db, "kv1", "copyTo", "kv0", int64(4), int64(40)))
	for i := int64(0); i < 6; i++ {
		r, c0 := "kv0", true
		if i%2 == 1 {
			r, c0 = "kv1", false
		}
		add(replCrashOp{key: 200 + i, val: 1200 + i, c0: c0, c1: !c0},
			exec1(db, r, "put", int64(200+i), int64(1200+i)))
	}
	return ops
}

func exec1(db *Database, reactor, proc string, args ...any) bool {
	_, err := db.Execute(reactor, proc, args...)
	return err == nil
}

// assertReplPrefix checks that a promoted replica holds a consistent
// committed prefix of the scripted history: per container, the present keys
// form a prefix of that container's write order (the mirror is an LSN-prefix
// per shard), every present key carries the committed value, and every pair
// is atomic across containers. requireAcked additionally demands every
// acknowledged op be present — the semi-sync promise.
//
// requirePairs is false only for kills DURING bootstrap (OpenReplica never
// returned): checkpoint blobs transfer per shard, so a kill between two
// shards' blob copies leaves checkpoint-carried cross-container pairs torn.
// Such a mirror was never a replica — promotion tooling must not use it — and
// the matrix only demands per-container prefixes and value correctness of it.
// Once OpenReplica returns, every blob is fsynced in the mirror and shipped
// pairs are protected by decision fencing, so full atomicity is enforced.
func assertReplPrefix(t *testing.T, db *Database, ops []replCrashOp, requireAcked, requirePairs bool, label string) {
	t.Helper()
	present := func(reactor string, op replCrashOp) bool {
		v, p := readV(t, db, reactor, op.key)
		if p && v != op.val {
			t.Fatalf("%s: %s[%d] = %d, want %d (value from nowhere)", label, reactor, op.key, v, op.val)
		}
		return p
	}
	seenAbsent := map[string]bool{}
	for _, op := range ops {
		var on []string
		if op.c0 {
			on = append(on, "kv0")
		}
		if op.c1 {
			on = append(on, "kv1")
		}
		got := make([]bool, len(on))
		for i, r := range on {
			got[i] = present(r, op)
		}
		if op.pair && requirePairs && got[0] != got[1] {
			t.Fatalf("%s: pair key %d durable on a strict subset: kv0=%v kv1=%v", label, op.key, got[0], got[1])
		}
		for i, r := range on {
			if got[i] && seenAbsent[r] {
				t.Fatalf("%s: %s[%d] present after an earlier absent write on %s — not a log prefix", label, r, op.key, r)
			}
			if !got[i] {
				seenAbsent[r] = true
				if requireAcked && op.acked {
					t.Fatalf("%s: acknowledged key %d lost from the replica mirror", label, op.key)
				}
			}
		}
	}
}

// promoteAndCheck opens the given mirror bytes as a primary, recovers, checks
// the prefix invariant, then performs the double-restart drill: a fresh 2PC
// commit, a restart, and a full re-verification.
func promoteAndCheck(t *testing.T, mirror *wal.MemStorage, ops []replCrashOp, requireAcked, requirePairs bool, label string) {
	t.Helper()
	cfg := crashCfg(mirror, true)
	db := MustOpen(kvDef("kv0", "kv1"), cfg)
	if _, err := db.Recover(); err != nil {
		t.Fatalf("%s: promotion Recover: %v", label, err)
	}
	assertReplPrefix(t, db, ops, requireAcked, requirePairs, label)
	if _, err := db.Execute("kv0", "copyTo", "kv1", int64(7), int64(70)); err != nil {
		t.Fatalf("%s: post-promotion copyTo: %v", label, err)
	}
	db.Close()

	db2 := MustOpen(kvDef("kv0", "kv1"), cfg)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("%s: second Recover: %v", label, err)
	}
	assertReplPrefix(t, db2, ops, requireAcked, requirePairs, label+" (restart 2)")
	for _, r := range []string{"kv0", "kv1"} {
		if v, p := readV(t, db2, r, 7); !p || v != 70 {
			t.Fatalf("%s: post-promotion commit lost on %s: (%d, %v)", label, r, v, p)
		}
	}
	db2.Close()
}

// replPrimaryCfg: group commit on, a primary segment size small enough that
// phase 2 rotates (the cursor must follow a segment handoff) but large enough
// that phase 1 stays in the unsealed active segment — so the pre-replica
// checkpoint truncates nothing and the backfill path stays assertable.
func replPrimaryCfg(storage wal.Storage) Config {
	cfg := crashCfg(storage, true)
	cfg.Durability.SegmentSize = 1 << 10
	return cfg
}

// TestCrashReplReplicaKillMatrix kills the REPLICA at every mirror IO
// boundary: during checkpoint-blob transfer (bootstrap), segment appends,
// fsyncs — including the ones releasing semi-sync acks — and mirror segment
// rotation. The primary stays healthy throughout; whatever the dead replica's
// durable mirror holds must promote to a consistent committed prefix.
func TestCrashReplReplicaKillMatrix(t *testing.T) {
	def := kvDef("kv0", "kv1")

	run := func(crashAt int64) (ctr *crashCounter, mirror *wal.MemStorage, ops []replCrashOp, bootstrapped bool) {
		primary := MustOpen(def, replPrimaryCfg(wal.NewMemStorage()))
		defer primary.Close()
		ops = runReplPhase1(primary)
		if err := primary.Checkpoint(); err != nil {
			t.Fatalf("phase-1 Checkpoint: %v", err)
		}
		for _, cs := range primary.CheckpointStats() {
			if cs.SegmentsDeleted != 0 {
				t.Fatalf("phase-1 checkpoint truncated %d segments; prefix assertion needs the full backfill log", cs.SegmentsDeleted)
			}
		}
		mirror = wal.NewMemStorage()
		ctr = &crashCounter{crashAt: crashAt}
		rep, err := OpenReplica(primary, ReplicaOptions{
			Ack:         AckSemiSync,
			Storage:     &crashStorage{inner: mirror, ctr: ctr},
			SegmentSize: 192,
		})
		// A bootstrap that died at the crash point is itself a valid kill;
		// the promotion check below judges whatever the mirror holds.
		ops = append(ops, runReplPhase2(primary)...)
		if err == nil {
			// Let the replica drain or degrade — both are quiescent ends.
			waitFor(t, replicaWait, func() bool {
				st := rep.Stats()
				if st.Degraded {
					return true
				}
				for _, sh := range st.Shards {
					if sh.Lag != 0 || sh.Pending != 0 || sh.Mirrored != sh.PrimaryDurable {
						return false
					}
				}
				return true
			})
			rep.Close()
		}
		return ctr, mirror, ops, err == nil
	}

	// Calibration: a crash-free pass counts the mirror IO boundaries.
	calCtr, _, calOps, _ := run(-1)
	for _, op := range calOps {
		if !op.acked {
			t.Fatalf("crash-free run did not acknowledge every op: %+v", calOps)
		}
	}
	total := calCtr.ops.Load()
	if total < 10 {
		t.Fatalf("calibration produced only %d mirror IO boundaries", total)
	}

	for crashAt := int64(0); crashAt <= total; crashAt++ {
		_, mirror, ops, bootstrapped := run(crashAt)
		// The replica machine dies: only fsynced mirror bytes survive. The
		// primary was healthy, so acked ops need not be on the replica —
		// semi-sync withdrew its promise when the replica degraded.
		promoteAndCheck(t, mirror.CrashCopy(), ops, false, bootstrapped,
			fmt.Sprintf("replica-kill crashAt=%d", crashAt))
	}
}

// TestCrashReplPrimaryKillSemiSync kills the PRIMARY at every one of its own
// storage IO boundaries while a healthy semi-sync replica tails it, then
// promotes the replica's mirror — taken as a crash copy at that very moment,
// so the replica may die with it. Every acknowledged commit must survive:
// semi-sync never acks a commit the replica can lose.
func TestCrashReplPrimaryKillSemiSync(t *testing.T) {
	def := kvDef("kv0", "kv1")

	run := func(crashAt int64) (ctr *crashCounter, mirror *wal.MemStorage, ops []replCrashOp) {
		mem := wal.NewMemStorage()
		ctr = &crashCounter{crashAt: crashAt}
		primary := MustOpen(def, replPrimaryCfg(&crashStorage{inner: mem, ctr: ctr}))
		mirror = wal.NewMemStorage()
		rep, err := OpenReplica(primary, ReplicaOptions{Ack: AckSemiSync, Storage: mirror})
		if err != nil {
			t.Fatalf("OpenReplica: %v", err)
		}
		ops = append(runReplPhase1(primary), runReplPhase2(primary)...)
		// Machine death: snapshot the mirror's durable bytes BEFORE any
		// orderly shutdown could flush more — the promotion must stand on
		// what was durable when the last acknowledgment returned.
		mirror = mirror.CrashCopy()
		rep.Close()
		primary.Close()
		return ctr, mirror, ops
	}

	calCtr, _, calOps := run(-1)
	for _, op := range calOps {
		if !op.acked {
			t.Fatalf("crash-free run did not acknowledge every op: %+v", calOps)
		}
	}
	total := calCtr.ops.Load()
	if total < 10 {
		t.Fatalf("calibration produced only %d primary IO boundaries", total)
	}

	for crashAt := int64(0); crashAt <= total; crashAt++ {
		_, mirror, ops := run(crashAt)
		promoteAndCheck(t, mirror, ops, true, true, fmt.Sprintf("primary-kill crashAt=%d", crashAt))
	}
}

// TestCrashReplShippingGapRebootstrap covers the remaining boundary: a
// replica that fell behind while detached finds its log truncated (the
// shipping gap) and must fast-forward through the primary's newest checkpoint
// — both mid-run (cursor hits the hole) and at restart (mirror ends below the
// checkpoint floor).
func TestCrashReplShippingGapRebootstrap(t *testing.T) {
	def := kvDef("kv0", "kv1")
	cfg := crashCfg(wal.NewMemStorage(), true)
	cfg.Durability.SegmentSize = 192 // rotate aggressively so truncation bites
	primary := MustOpen(def, cfg)
	t.Cleanup(primary.Close)

	mirror := wal.NewMemStorage()
	rep, err := OpenReplica(primary, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	for i := int64(0); i < 10; i++ {
		exec1(primary, "kv0", "put", i, 100+i)
		exec1(primary, "kv1", "put", i, 200+i)
	}
	if err := rep.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	rep.Close()

	// Replica down: the primary commits on, checkpoints, and truncates — the
	// detached replica's cursor position is now inside the hole.
	for i := int64(10); i < 40; i++ {
		exec1(primary, "kv0", "put", i, 100+i)
		exec1(primary, "kv1", "put", i, 200+i)
	}
	for round := 0; round < 2; round++ {
		if err := primary.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	var truncated uint64
	for _, cs := range primary.CheckpointStats() {
		truncated += cs.SegmentsDeleted
	}
	if truncated == 0 {
		t.Skip("no segments truncated; gap path not reachable in this run")
	}

	// Restart on the stale mirror: the checkpoint fast-forward (restart gap
	// rule) or the cursor's ErrShipGap re-bootstrap must both converge.
	rep2, err := OpenReplica(primary, ReplicaOptions{Storage: mirror})
	if err != nil {
		t.Fatalf("reopen stale replica: %v", err)
	}
	t.Cleanup(rep2.Close)
	for i := int64(40); i < 50; i++ {
		exec1(primary, "kv0", "put", i, 100+i)
		exec1(primary, "kv1", "put", i, 200+i)
	}
	if err := rep2.WaitCaughtUp(replicaWait); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 50; i++ {
		if v, p := readReplicaV(t, rep2, "kv0", i); !p || v != 100+i {
			t.Fatalf("kv0[%d] = (%d, %v), want %d", i, v, p, 100+i)
		}
		if row, err := rep2.ReadRow("kv1", "store", i); err != nil || row == nil || row.Int64(1) != 200+i {
			t.Fatalf("kv1[%d] = (%v, %v), want %d", i, row, err, 200+i)
		}
	}
}

package engine

import (
	"sync"
	"sync/atomic"
)

// This file is the primary's side of replication: the acknowledgment modes
// and the hub tracking every attached replica's shipping progress. The
// replica side — bootstrap, segment tailing, mirroring and apply — lives in
// replica.go; the raw log plumbing in internal/wal/ship.go.

// AckMode selects when a primary acknowledges a commit relative to
// replication progress.
type AckMode string

// Acknowledgment modes.
const (
	// AckAsync (the default) acknowledges a commit as soon as it is durable
	// on the primary's own log. Replicas tail the log at their own pace; a
	// primary failure can lose commits the replica had not yet received.
	AckAsync AckMode = "async"
	// AckSemiSync withholds the commit acknowledgment until every attached
	// semi-sync replica has durably received (mirrored and fsynced) the
	// commit's log records. An acknowledged commit then survives the loss of
	// either the primary or the replica — the replica can be promoted and
	// recovery will find the records in its mirror. Like MySQL's semi-sync,
	// the mode degrades to async when no semi-sync replica is attached (a
	// failed replica detaches itself), so a dead replica cannot wedge the
	// primary forever.
	AckSemiSync AckMode = "semi-sync"
)

// replicationHub lives on a primary Database and tracks the durably-mirrored
// LSN of every attached replica, per container. Commit paths consult it in
// two ways: waitShipped blocks a semi-sync acknowledgment until the batch is
// mirrored, and floor clamps checkpoint truncation so the primary never
// deletes segments an attached replica still has to ship.
type replicationHub struct {
	mu   sync.Mutex
	cond *sync.Cond
	// replicas maps each attached replica to its per-container mirrored-LSN
	// vector. The map is keyed by identity; the Replica's internals are never
	// touched from here.
	replicas map[*Replica]*replAttachment
	// semiSync counts attached semi-sync replicas, read without the lock on
	// the commit fast path: with zero attached, waitShipped is a single
	// atomic load.
	semiSync atomic.Int32
}

type replAttachment struct {
	mode    AckMode
	shipped []uint64 // per-container durably mirrored LSN
}

func newReplicationHub() *replicationHub {
	h := &replicationHub{replicas: make(map[*Replica]*replAttachment)}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// attach registers a replica. Its mirrored vector starts at zero, which
// freezes checkpoint truncation (floor) until the replica has shipped the
// existing log — exactly what a bootstrapping replica needs.
func (h *replicationHub) attach(r *Replica, mode AckMode, containers int) {
	h.mu.Lock()
	if _, dup := h.replicas[r]; !dup && mode == AckSemiSync {
		h.semiSync.Add(1)
	}
	h.replicas[r] = &replAttachment{mode: mode, shipped: make([]uint64, containers)}
	h.mu.Unlock()
}

// detach removes a replica and wakes every semi-sync waiter so commits
// blocked on the departed replica re-evaluate against the survivors (or
// against nobody: semi-sync degrades to async, never to a wedged primary).
func (h *replicationHub) detach(r *Replica) {
	h.mu.Lock()
	if a, ok := h.replicas[r]; ok {
		delete(h.replicas, r)
		if a.mode == AckSemiSync {
			h.semiSync.Add(-1)
		}
		h.cond.Broadcast()
	}
	h.mu.Unlock()
}

// advance records that a replica has durably mirrored container's log through
// lsn and wakes commit acknowledgments waiting on it.
func (h *replicationHub) advance(r *Replica, container int, lsn uint64) {
	h.mu.Lock()
	if a, ok := h.replicas[r]; ok && container < len(a.shipped) && lsn > a.shipped[container] {
		a.shipped[container] = lsn
		h.cond.Broadcast()
	}
	h.mu.Unlock()
}

// waitShipped blocks until every attached semi-sync replica has durably
// mirrored container's log through lsn. With no semi-sync replica attached it
// returns immediately (one atomic load — async deployments and replica-free
// primaries pay nothing). A replica that detaches mid-wait stops being
// waited for: its durability promise is withdrawn along with it.
func (h *replicationHub) waitShipped(container int, lsn uint64) {
	if h.semiSync.Load() == 0 {
		return
	}
	h.mu.Lock()
	for {
		waiting := false
		for _, a := range h.replicas {
			if a.mode != AckSemiSync {
				continue
			}
			if container < len(a.shipped) && a.shipped[container] < lsn {
				waiting = true
				break
			}
		}
		if !waiting {
			break
		}
		h.cond.Wait()
	}
	h.mu.Unlock()
}

// floor returns the minimum durably-mirrored LSN across every attached
// replica for the container, and whether any replica is attached. Checkpoint
// truncation clamps its low-water mark to this floor so the log a replica is
// still shipping stays available; without attached replicas truncation is
// unconstrained.
func (h *replicationHub) floor(container int) (uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	min, any := uint64(0), false
	for _, a := range h.replicas {
		if container >= len(a.shipped) {
			continue
		}
		if !any || a.shipped[container] < min {
			min, any = a.shipped[container], true
		}
	}
	return min, any
}

// waitShipped blocks until every attached semi-sync replica has durably
// mirrored this container's log through lsn: the commit-path hook of
// AckSemiSync. It is a no-op with no semi-sync replica attached.
func (c *Container) waitShipped(lsn uint64) {
	c.db.repl.waitShipped(c.id, lsn)
}

package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/rel"
	"reactdb/internal/wal"
)

// kvType is a single-relation reactor with upsert/delete procedures, the
// minimal write workload for durability tests.
func kvType() *core.Type {
	schema := rel.MustSchema("store",
		[]rel.Column{{Name: "k", Type: rel.Int64}, {Name: "v", Type: rel.Int64}}, "k")
	t := core.NewType("KV").AddRelation(schema)
	t.AddProcedure("put", func(ctx core.Context, args core.Args) (any, error) {
		k, v := args.Int64(0), args.Int64(1)
		row, err := ctx.Get("store", k)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return nil, ctx.Insert("store", rel.Row{k, v})
		}
		return nil, ctx.Update("store", rel.Row{k, v})
	})
	t.AddProcedure("del", func(ctx core.Context, args core.Args) (any, error) {
		return nil, ctx.Delete("store", args.Int64(0))
	})
	// putRemote reads a local marker and writes only the destination reactor
	// — a multi-container transaction whose coordinator participant is
	// read-only when the reactors are placed apart.
	t.AddProcedure("putRemote", func(ctx core.Context, args core.Args) (any, error) {
		dst, k, v := args.String(0), args.Int64(1), args.Int64(2)
		if _, err := ctx.Get("store", int64(1)); err != nil {
			return nil, err
		}
		fut, err := ctx.Call(dst, "put", k, v)
		if err != nil {
			return nil, err
		}
		_, err = fut.Get()
		return nil, err
	})
	// copyTo writes a local marker and mirrors (k, v) onto another reactor —
	// a multi-container transaction when the two reactors are placed apart.
	t.AddProcedure("copyTo", func(ctx core.Context, args core.Args) (any, error) {
		dst, k, v := args.String(0), args.Int64(1), args.Int64(2)
		row, err := ctx.Get("store", k)
		if err != nil {
			return nil, err
		}
		if row == nil {
			if err := ctx.Insert("store", rel.Row{k, v}); err != nil {
				return nil, err
			}
		} else if err := ctx.Update("store", rel.Row{k, v}); err != nil {
			return nil, err
		}
		fut, err := ctx.Call(dst, "put", k, v)
		if err != nil {
			return nil, err
		}
		_, err = fut.Get()
		return nil, err
	})
	return t
}

func kvDef(reactors ...string) *core.DatabaseDef {
	def := core.NewDatabaseDef().MustAddType(kvType())
	def.MustDeclareReactors("KV", reactors...)
	return def
}

func walCfg(storage wal.Storage) Config {
	return Config{
		Containers:            1,
		ExecutorsPerContainer: 2,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 500 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
	}
}

func readV(t *testing.T, db *Database, reactor string, k int64) (int64, bool) {
	t.Helper()
	row, err := db.ReadRow(reactor, "store", k)
	if err != nil {
		t.Fatalf("ReadRow(%s, %d): %v", reactor, k, err)
	}
	if row == nil {
		return 0, false
	}
	return row.Int64(1), true
}

// TestRecoverReplaysAcknowledgedCommits commits a mixed workload through the
// WAL-backed group committer, drops every byte of in-memory state (a new
// Database instance), recovers, and checks that exactly the acknowledged
// effects are visible — inserts, the newest version of updated rows, and the
// absence of deleted rows.
func TestRecoverReplaysAcknowledgedCommits(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Overwrite some, delete some: replay must converge on the final state.
	for i := 0; i < 10; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(1000+i)); err != nil {
			t.Fatalf("re-put %d: %v", i, err)
		}
	}
	for i := 30; i < 35; i++ {
		if _, err := db.Execute("kv0", "del", int64(i)); err != nil {
			t.Fatalf("del %d: %v", i, err)
		}
	}
	db.Close()

	db2 := MustOpen(def, cfg)
	t.Cleanup(db2.Close)
	replayed, err := db2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if replayed != n+10+5 {
		t.Fatalf("Recover replayed %d transactions, want %d", replayed, n+10+5)
	}
	for i := 0; i < n; i++ {
		v, present := readV(t, db2, "kv0", int64(i))
		switch {
		case i < 10:
			if !present || v != int64(1000+i) {
				t.Fatalf("key %d = (%d, %v), want updated value %d", i, v, present, 1000+i)
			}
		case i >= 30 && i < 35:
			if present {
				t.Fatalf("deleted key %d resurfaced with %d", i, v)
			}
		default:
			if !present || v != int64(100+i) {
				t.Fatalf("key %d = (%d, %v), want %d", i, v, present, 100+i)
			}
		}
	}

	// The recovered database must accept new transactions whose TIDs sort
	// after every replayed version.
	if _, err := db2.Execute("kv0", "put", int64(0), int64(7)); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	if v, _ := readV(t, db2, "kv0", 0); v != 7 {
		t.Fatalf("post-recovery write invisible: %d", v)
	}
}

// TestRecoverAfterLoaderBootstrap checks the documented ordering: loaders
// populate base data first, then Recover lays newer logged versions on top.
func TestRecoverAfterLoaderBootstrap(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	def := kvDef("kv0")

	db := MustOpen(def, cfg)
	db.MustLoad("kv0", "store", rel.Row{int64(1), int64(11)})
	db.MustLoad("kv0", "store", rel.Row{int64(2), int64(22)})
	if _, err := db.Execute("kv0", "put", int64(2), int64(222)); err != nil {
		t.Fatalf("put: %v", err)
	}
	db.Close()

	db2 := MustOpen(def, cfg)
	t.Cleanup(db2.Close)
	// Loaded rows are not logged: re-run the loader, then replay.
	db2.MustLoad("kv0", "store", rel.Row{int64(1), int64(11)})
	db2.MustLoad("kv0", "store", rel.Row{int64(2), int64(22)})
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 1); !present || v != 11 {
		t.Fatalf("loaded key 1 = (%d, %v), want 11", v, present)
	}
	if v, present := readV(t, db2, "kv0", 2); !present || v != 222 {
		t.Fatalf("key 2 = (%d, %v), want logged version 222 over loaded 22", v, present)
	}
}

// TestRecoverAfterCommitterKilledMidBatch is the crash-consistency test: the
// group committer is wedged inside its batch fsync (transactions installed in
// memory, appended to the log, but never durable and never acknowledged),
// the machine "dies", and a fresh database recovers from the durable prefix.
// Every acknowledged commit must be visible; no wedged, unacknowledged
// transaction may surface.
func TestRecoverAfterCommitterKilledMidBatch(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	def := kvDef("kv0")
	db := MustOpen(def, cfg)

	const acked = 20
	for i := 0; i < acked; i++ {
		if _, err := db.Execute("kv0", "put", int64(i), int64(100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// Wedge fsync, then fire transactions that will die mid-batch.
	gate := make(chan struct{})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	storage.GateSyncs(gate)
	baseline := storage.SyncsStarted()
	const unacked = 5
	var wg sync.WaitGroup
	for i := 0; i < unacked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The outcome is irrelevant: the "machine" dies before delivery.
			_, _ = db.Execute("kv0", "put", int64(1000+i), int64(1))
		}(i)
	}
	// Cleanup in reverse order: release the gate, let the wedged waiters
	// drain, then close — so a failing assertion cannot deadlock Close.
	t.Cleanup(db.Close)
	t.Cleanup(wg.Wait)
	t.Cleanup(releaseGate)
	waitFor(t, 10*time.Second, func() bool { return storage.SyncsStarted() > baseline })

	// Crash: only fsynced bytes survive.
	db2 := MustOpen(def, walCfg(storage.CrashCopy()))
	t.Cleanup(db2.Close)
	replayed, err := db2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if replayed != acked {
		t.Fatalf("Recover replayed %d transactions, want the %d acknowledged ones", replayed, acked)
	}
	for i := 0; i < acked; i++ {
		if v, present := readV(t, db2, "kv0", int64(i)); !present || v != int64(100+i) {
			t.Fatalf("acknowledged key %d = (%d, %v), want %d", i, v, present, 100+i)
		}
	}
	for i := 0; i < unacked; i++ {
		if v, present := readV(t, db2, "kv0", int64(1000+i)); present {
			t.Fatalf("unacknowledged key %d surfaced after crash with %d", 1000+i, v)
		}
	}
}

// TestWALStatsAndFsyncAmortization sanity-checks the WAL instrumentation:
// with group commit batching K concurrent writers, fsyncs must number well
// below appends.
func TestWALStatsAndFsyncAmortization(t *testing.T) {
	storage := wal.NewMemStorage()
	cfg := walCfg(storage)
	cfg.GroupCommit.MaxBatch = 16
	cfg.GroupCommit.Window = 2 * time.Millisecond
	def := kvDef("kv0")
	db := MustOpen(def, cfg)
	t.Cleanup(db.Close)

	// Preload distinct keys: updates to existing rows do not touch table
	// structure, so concurrent writers batch freely (inserts would serialize
	// on the structural latch they hold through the batch wait).
	const workers, perWorker = 8, 25
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			db.MustLoad("kv0", "store", rel.Row{int64(w*1000 + i), int64(0)})
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					_, err := db.Execute("kv0", "put", int64(w*1000+i), int64(i))
					if err == nil {
						break
					}
					if !errors.Is(err, ErrConflict) {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	ws := db.WALStats()
	if len(ws) != 1 || !ws[0].Enabled {
		t.Fatalf("WALStats = %+v, want one enabled container", ws)
	}
	s := ws[0].Stats
	if s.Appends != workers*perWorker {
		t.Fatalf("appends = %d, want %d", s.Appends, workers*perWorker)
	}
	if s.Fsyncs == 0 || s.Fsyncs >= s.Appends {
		t.Fatalf("fsyncs = %d for %d appends: group fsync is not amortizing", s.Fsyncs, s.Appends)
	}
	if s.BytesPerFlush.Count != int64(s.Fsyncs) || s.FsyncLatency.Count != int64(s.Fsyncs) {
		t.Fatalf("histogram counts (bytes %d, latency %d) != fsyncs %d",
			s.BytesPerFlush.Count, s.FsyncLatency.Count, s.Fsyncs)
	}
}

// TestFileBackedWALRecovery runs the clean-restart recovery path against real
// files and real fsyncs.
func TestFileBackedWALRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 4, Window: 500 * time.Microsecond},
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Dir: dir},
	}
	reactors := make([]string, 8)
	for i := range reactors {
		reactors[i] = fmt.Sprintf("kv%d", i)
	}
	def := kvDef(reactors...)

	db := MustOpen(def, cfg)
	for i, r := range reactors {
		if _, err := db.Execute(r, "put", int64(1), int64(10+i)); err != nil {
			t.Fatalf("put on %s: %v", r, err)
		}
	}
	db.Close()

	// A fresh Config (fresh FileStorage) pointed at the same directory.
	db2 := MustOpen(def, Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		GroupCommit:           cfg.GroupCommit,
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Dir: dir},
	})
	t.Cleanup(db2.Close)
	replayed, err := db2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if replayed != len(reactors) {
		t.Fatalf("replayed %d, want %d", replayed, len(reactors))
	}
	for i, r := range reactors {
		if v, present := readV(t, db2, r, 1); !present || v != int64(10+i) {
			t.Fatalf("%s key 1 = (%d, %v), want %d", r, v, present, 10+i)
		}
	}
}

// failingSubStorage wraps a wal.Storage tree and fails segment writes inside
// one named sub-storage while armed, leaving siblings healthy — the shape of
// a single container's log device failing mid-2PC.
type failingSubStorage struct {
	wal.Storage
	name     string
	failName string
	armed    *atomic.Bool
	errVal   error
}

func (s *failingSubStorage) Sub(name string) wal.Storage {
	return &failingSubStorage{
		Storage:  s.Storage.Sub(name),
		name:     name,
		failName: s.failName,
		armed:    s.armed,
		errVal:   s.errVal,
	}
}

func (s *failingSubStorage) Create(index uint64) (wal.SegmentFile, error) {
	f, err := s.Storage.Create(index)
	if err != nil {
		return nil, err
	}
	return &failingSegmentFile{SegmentFile: f, owner: s}, nil
}

type failingSegmentFile struct {
	wal.SegmentFile
	owner *failingSubStorage
}

func (f *failingSegmentFile) Write(p []byte) (int, error) {
	if f.owner.armed.Load() && f.owner.name == f.owner.failName {
		return 0, f.owner.errVal
	}
	return f.SegmentFile.Write(p)
}

// TestAbortedTwoPCIsNotResurrectedByRecovery: a multi-container transaction
// whose second participant's WAL append fails is aborted and its client gets
// an error; the commit record already appended to the first participant's
// healthy log must be retracted so later fsyncs plus a restart cannot
// resurrect half of the aborted transaction.
func TestAbortedTwoPCIsNotResurrectedByRecovery(t *testing.T) {
	mem := wal.NewMemStorage()
	var armed atomic.Bool
	storage := &failingSubStorage{
		Storage:  wal.Storage(mem),
		failName: "container-1",
		armed:    &armed,
		errVal:   errors.New("injected log device failure"),
	}
	cfg := Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		// Group commit off: the 2PC path appends through the containers'
		// logs directly.
		Durability: DurabilityConfig{Mode: DurabilityWAL, Storage: storage},
		Placement: func(reactor string) int {
			if reactor == "kv0" {
				return 0
			}
			return 1
		},
	}
	def := kvDef("kv0", "kv1")
	db := MustOpen(def, cfg)

	// Acknowledged baseline on container 0.
	if _, err := db.Execute("kv0", "put", int64(1), int64(10)); err != nil {
		t.Fatalf("put: %v", err)
	}

	// The cross-container transaction fails at participant 1's append.
	armed.Store(true)
	if _, err := db.Execute("kv0", "copyTo", "kv1", int64(2), int64(20)); err == nil {
		t.Fatal("copyTo succeeded despite the injected log failure")
	}
	armed.Store(false)

	// Container 0's log is healthy: later commits fsync it (and with it the
	// aborted transaction's record plus its retraction).
	if _, err := db.Execute("kv0", "put", int64(3), int64(30)); err != nil {
		t.Fatalf("put after failed 2PC: %v", err)
	}
	// The live database agrees the transaction aborted.
	if _, present := readV(t, db, "kv0", 2); present {
		t.Fatal("aborted transaction's local write visible in live database")
	}
	db.Close()

	db2 := MustOpen(def, Config{
		Containers:            2,
		ExecutorsPerContainer: 1,
		Durability:            DurabilityConfig{Mode: DurabilityWAL, Storage: wal.Storage(mem)},
		Placement:             cfg.Placement,
	})
	t.Cleanup(db2.Close)
	if _, err := db2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if v, present := readV(t, db2, "kv0", 1); !present || v != 10 {
		t.Fatalf("acknowledged key 1 = (%d, %v), want 10", v, present)
	}
	if v, present := readV(t, db2, "kv0", 3); !present || v != 30 {
		t.Fatalf("acknowledged key 3 = (%d, %v), want 30", v, present)
	}
	if v, present := readV(t, db2, "kv0", 2); present {
		t.Fatalf("aborted 2PC write resurrected on container 0 with %d", v)
	}
	if v, present := readV(t, db2, "kv1", 2); present {
		t.Fatalf("aborted 2PC write resurrected on container 1 with %d", v)
	}
}

// TestRecoverNoOpWithoutWAL makes sure Recover is safe under the modeled
// ablation.
func TestRecoverNoOpWithoutWAL(t *testing.T) {
	db := MustOpen(kvDef("kv0"), Config{Containers: 1, ExecutorsPerContainer: 1})
	t.Cleanup(db.Close)
	if n, err := db.Recover(); n != 0 || err != nil {
		t.Fatalf("Recover = (%d, %v), want no-op", n, err)
	}
}

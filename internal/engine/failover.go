package engine

import (
	"fmt"
	"sync"
	"time"

	"reactdb/internal/wal"
)

// This file is supervised failover over the promotion substrate of
// replica.go: detect a dead primary (missed heartbeats), fence it behind a
// new epoch (durably, so even a restarted zombie refuses writes), promote the
// freshest semi-sync replica by opening its mirror under DurabilityWAL and
// recovering, re-point surviving replicas at the promoted log after a
// divergence repair, and optionally re-attach the deposed primary's storage
// as a fresh replica the same way.
//
// The fencing order is the load-bearing part. Before anything is promoted the
// supervisor (1) fences the old primary in memory — every container log
// rejects Append AND Sync with wal.ErrFenced from that instant, so no commit
// can be acknowledged after the decision to fail over — and (2) best-effort
// writes the fence into the old primary's storage, the shared-storage analog
// of STONITH: a zombie that restarts over that storage loads the fence at
// Open and comes up read-only. Only then is the new epoch stamped into the
// chosen replica's mirror and the mirror opened as the new primary. An
// in-memory fence on a live handle cannot fail; the durable write can (the
// storage may be the very thing that died), which is safe: that storage is
// equally unreadable to a restarting zombie.
//
// Divergence repair (re-point / re-attach): the new primary's durable LSN T
// per shard bounds what was acknowledged anywhere. A surviving log's suffix
// above T was never acked and is unwound with wal.TruncateAbove — unless the
// node's newest checkpoint may have fuzzily absorbed effects above T
// (Checkpoint.HighLSN > T, or unknown), in which case the blob itself is
// tainted and the log is wiped for a fresh bootstrap from the new primary.

// ErrFenced reports a write on a fenced (deposed) primary: a newer primary
// epoch exists and this node must not make anything durable. It aliases
// wal.ErrFenced so errors.Is works on either.
var ErrFenced = wal.ErrFenced

// errNoPromotable is returned by a failover with no live replica to promote.
var errNoPromotable = fmt.Errorf("engine: failover: no promotable replica (none attached, or all degraded)")

// Epoch returns the primary term this node's logs append under (0 until a
// first failover stamps one).
func (db *Database) Epoch() uint64 { return db.walEpoch.Load() }

// Fenced reports whether this node is fenced behind a newer primary epoch:
// its WALs reject appends and syncs with ErrFenced.
func (db *Database) Fenced() bool { return db.walFence.Load() > db.walEpoch.Load() }

// Fence fences every epoch below belowEpoch on this node, in memory first —
// from the moment Fence returns no commit can become durable or be
// acknowledged — and then durably in the node's storage so a restart over the
// same storage stays fenced. The durable write's error is returned; the
// in-memory fence holds regardless. Fencing is monotonic and idempotent; a
// node whose own epoch is at or above belowEpoch is unaffected.
func (db *Database) Fence(belowEpoch uint64) error {
	for {
		cur := db.walFence.Load()
		if cur >= belowEpoch {
			break
		}
		if db.walFence.CompareAndSwap(cur, belowEpoch) {
			break
		}
	}
	for _, c := range db.containers {
		if c.wal != nil {
			c.wal.Fence(belowEpoch)
		}
	}
	if db.cfg.Durability.Mode != DurabilityWAL {
		return nil
	}
	return FenceStorage(db.cfg.Durability.Storage, belowEpoch)
}

// FenceStorage durably fences a node's storage without a live handle to the
// node — the deposed primary's process is typically dead. The existing epoch
// state is preserved; only the fence is raised (monotonically).
func FenceStorage(s wal.Storage, belowEpoch uint64) error {
	st, err := wal.ReadEpochState(s)
	if err != nil {
		return err
	}
	if st.FenceBelow >= belowEpoch {
		return nil
	}
	st.FenceBelow = belowEpoch
	return wal.WriteEpochState(s, st)
}

// Heartbeat probes the primary's durability path end to end: it appends an
// empty commit record to every container's WAL and forces it durable,
// bypassing group commit. An error — storage failure, a fenced log — is
// exactly the signal that this node can no longer acknowledge commits, which
// is what a failover supervisor needs to know; in-memory execution health is
// irrelevant if nothing can be made durable. Under durability modes without a
// WAL it degrades to a liveness check.
func (db *Database) Heartbeat() error {
	if db.closed.Load() {
		return errDatabaseClosed
	}
	if db.cfg.Durability.Mode != DurabilityWAL {
		return nil
	}
	// The commit gate (shared) keeps the probe inside the same quiesce
	// discipline as real commits, so a concurrent checkpoint never observes a
	// heartbeat between append and durability.
	db.commitGate.RLock()
	defer db.commitGate.RUnlock()
	for _, c := range db.containers {
		if c.wal == nil {
			continue
		}
		// An empty commit at TID 0: no writes to install, invisible to
		// recovery and replicas beyond advancing their shipped watermark.
		if _, err := c.wal.Append(wal.Record{Kind: wal.KindCommit}); err != nil {
			return fmt.Errorf("engine: heartbeat container %d: %w", c.id, err)
		}
		if err := c.wal.Sync(); err != nil {
			return fmt.Errorf("engine: heartbeat container %d: %w", c.id, err)
		}
	}
	return nil
}

// FreshestReplica picks the failover candidate from a set of replicas:
// non-degraded semi-sync replicas are preferred (their mirrors durably hold
// every acknowledged commit — the semi-sync contract), ranked by total
// durably mirrored LSN across shards; non-degraded async replicas are a last
// resort. Returns nil if nothing is promotable.
func FreshestReplica(replicas []*Replica) *Replica {
	var best *Replica
	var bestSum uint64
	bestSemi := false
	for _, r := range replicas {
		if r == nil {
			continue
		}
		st := r.Stats()
		if st.Degraded {
			continue
		}
		semi := st.Mode == AckSemiSync
		var sum uint64
		for _, sh := range st.Shards {
			sum += sh.Mirrored
		}
		better := best == nil ||
			(semi && !bestSemi) ||
			(semi == bestSemi && sum > bestSum)
		if better {
			best, bestSum, bestSemi = r, sum, semi
		}
	}
	return best
}

// PromoteReplica turns a replica into a primary: the replica is closed, its
// mirror storage is stamped with the new epoch (durably, before the first
// record can append under it), and the storage is opened as a normal
// DurabilityWAL database — same definition and deployment shape as the old
// primary — with Recover replaying mirror + checkpoint into a serving state.
// The semi-sync contract makes this lossless for acknowledged commits: every
// acked commit is durably in this mirror.
func PromoteReplica(rep *Replica, newEpoch uint64) (*Database, error) {
	def := rep.primary.def
	cfg := rep.primary.cfg
	cfg.Durability.Storage = rep.storage
	cfg.Durability.SegmentSize = rep.segSize
	rep.Close()

	st, err := wal.ReadEpochState(rep.storage)
	if err != nil {
		return nil, fmt.Errorf("engine: promote: read epoch state: %w", err)
	}
	if newEpoch < st.FenceBelow {
		return nil, fmt.Errorf("engine: promote: epoch %d is below this node's fence %d", newEpoch, st.FenceBelow)
	}
	st.Epoch = newEpoch
	if err := wal.WriteEpochState(rep.storage, st); err != nil {
		return nil, fmt.Errorf("engine: promote: stamp epoch %d: %w", newEpoch, err)
	}

	db, err := Open(def, cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: promote: open mirror as primary: %w", err)
	}
	// Record the promotion cut — the physical tail of each shard's mirror,
	// captured before Recover appends presume-abort tombstones and before any
	// new-epoch commit. Everything at or below the cut is a byte-identical
	// prefix of the old primary's log, shared with every other mirror of it;
	// everything this node appends above the cut is a new timeline. If the
	// log's notion of its last LSN runs ahead of the physical tail (a copied
	// checkpoint blob can cover records the mirror never shipped), there is no
	// LSN below which other nodes' records are provably identical — record a
	// zero cut so repairStorage wipes them into a fresh bootstrap.
	for i, c := range db.containers {
		cut := uint64(0)
		if c.wal != nil {
			phys, terr := wal.TailLSN(rep.storage.Sub(fmt.Sprintf("container-%d", i)))
			if terr != nil {
				db.Close()
				return nil, fmt.Errorf("engine: promote: tail of container %d: %w", i, terr)
			}
			if phys == c.wal.LastLSN() {
				cut = phys
			}
		}
		db.promoCut = append(db.promoCut, cut)
	}
	if _, err := db.Recover(); err != nil {
		db.Close()
		return nil, fmt.Errorf("engine: promote: recover: %w", err)
	}
	return db, nil
}

// repairDivergence reconciles one shard's log storage with the new primary's
// durable LSN T for that shard. Three outcomes:
//
//   - tail <= T: the log is a prefix of the new primary's history — clean.
//   - diverged, and the newest local checkpoint's capture horizon is known
//     and at or below T (or there is no checkpoint): the suffix above T was
//     never acknowledged anywhere; truncate it.
//   - diverged with a checkpoint whose horizon is above T or unknown: the
//     blob may carry an effect of a record being cut; wipe the shard for a
//     fresh bootstrap from the new primary's checkpoint.
func repairDivergence(sub wal.Storage, durable uint64) error {
	tail, err := wal.TailLSN(sub)
	if err != nil {
		return err
	}
	if tail <= durable {
		return nil
	}
	cp, _, err := wal.LatestCheckpoint(sub)
	if err != nil {
		return err
	}
	if cp == nil || (cp.HighLSN > 0 && cp.HighLSN <= durable) {
		_, err := wal.TruncateAbove(sub, durable)
		return err
	}
	return wal.WipeLog(sub)
}

// repairStorage runs repairDivergence for every shard of a node's storage.
// The reconciliation horizon is the new primary's promotion cut when it has
// one: LSNs at or below the cut are a shared byte-identical prefix of the old
// timeline, while above it the new primary's records (recovery tombstones,
// new-epoch commits) can differ in content from what this node holds at the
// same LSNs — an LSN-only comparison against the current durable watermark
// would wrongly call such a suffix "clean" and the differing records would
// never re-ship. A primary that was never promoted wrote its whole log
// itself, so its durable LSN is the horizon.
func repairStorage(s wal.Storage, newPrimary *Database) error {
	for i, c := range newPrimary.containers {
		if c.wal == nil {
			continue
		}
		horizon := c.wal.DurableLSN()
		if i < len(newPrimary.promoCut) {
			horizon = newPrimary.promoCut[i]
		}
		sub := s.Sub(fmt.Sprintf("container-%d", i))
		if err := repairDivergence(sub, horizon); err != nil {
			return fmt.Errorf("engine: repoint container %d: %w", i, err)
		}
	}
	return nil
}

// Repoint switches a surviving replica to a new primary: the replica is
// closed, each shard's mirror is divergence-repaired against the new
// primary's durable LSNs, and a fresh replica is opened over the same storage
// — resuming from the repaired mirror where possible, re-bootstrapping from
// the new primary's checkpoint where not. Ack mode, poll interval and segment
// size carry over unless overridden in opts.
func Repoint(rep *Replica, newPrimary *Database, opts ReplicaOptions) (*Replica, error) {
	if opts.Ack == "" {
		opts.Ack = rep.mode
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = rep.poll
	}
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = rep.segSize
	}
	opts.Storage = rep.storage
	rep.Close()
	return ReattachStorage(rep.storage, newPrimary, opts)
}

// ReattachStorage attaches a node's log storage — typically the deposed
// primary's, after its process died — to a new primary as a replica. The
// storage is divergence-repaired first: the unacknowledged suffix beyond the
// new primary's durable history is truncated (or the shard wiped when its
// checkpoint is tainted, see repairDivergence), then a replica opens over it
// and tails the new primary. The old node's fence state is untouched — if
// its storage is ever promoted again it must be with an epoch at or above
// the fence.
func ReattachStorage(s wal.Storage, newPrimary *Database, opts ReplicaOptions) (*Replica, error) {
	if err := repairStorage(s, newPrimary); err != nil {
		return nil, err
	}
	opts.Storage = s
	return OpenReplica(newPrimary, opts)
}

// SupervisorOptions configures a failover Supervisor.
type SupervisorOptions struct {
	// Interval is the heartbeat probe cadence (default 10ms).
	Interval time.Duration
	// Misses is how many consecutive probe failures depose the primary
	// (default 3). One flaky fsync should not trigger a cluster-wide
	// reconfiguration.
	Misses int
	// OnPromote, if set, is called after every failover with the newly
	// promoted primary and the replica that was consumed to create it — the
	// hook a wire front-end uses to swap its backends: the listener fronting
	// the old primary and the one fronting the promoted replica both now
	// speak for from's successor.
	OnPromote func(promoted *Database, from *Replica)
	// OnRepoint, if set, is called for every surviving replica re-pointed at
	// the new primary during a failover: old has been closed, next tails the
	// promoted node over the same storage. A wire front-end swaps the
	// listener that fronted old over to next.
	OnRepoint func(old, next *Replica)
}

// Supervisor watches a primary and its replicas and drives failover: probe
// via Database.Heartbeat, and on persistent failure fence → promote →
// re-point, in that order. It is deliberately in-process and single-writer —
// one supervisor owns the cluster transition; the epoch machinery (not the
// supervisor) is what protects against a deposed primary racing it.
type Supervisor struct {
	opts SupervisorOptions

	mu       sync.Mutex
	primary  *Database
	replicas []*Replica
	misses   int
	// failovers counts completed failovers; lastErr records the most recent
	// failover or fencing problem for Stats.
	failovers uint64
	lastErr   error

	stopCh chan struct{}
	doneCh chan struct{}
	stopMu sync.Mutex // guards Start/Stop transitions
	active bool
}

// NewSupervisor builds a supervisor over a primary and its attached replicas.
// Call Start to begin probing, or drive Failover manually (e.g. from an
// operator command or a test).
func NewSupervisor(primary *Database, replicas []*Replica, opts SupervisorOptions) *Supervisor {
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Millisecond
	}
	if opts.Misses <= 0 {
		opts.Misses = 3
	}
	return &Supervisor{
		opts:     opts,
		primary:  primary,
		replicas: append([]*Replica(nil), replicas...),
	}
}

// Primary returns the current primary (it changes after a failover).
func (s *Supervisor) Primary() *Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// Replicas returns the current replica set (it changes after a failover: the
// promoted replica leaves it, survivors are re-pointed in place).
func (s *Supervisor) Replicas() []*Replica {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Replica(nil), s.replicas...)
}

// SupervisorStats is a snapshot of the supervisor's view of the cluster.
type SupervisorStats struct {
	Epoch     uint64 // current primary's epoch
	Failovers uint64
	Misses    int // consecutive heartbeat misses so far
	Replicas  int
	Err       string // most recent failover/fencing problem, if any
}

// Stats returns a snapshot of supervisor state.
func (s *Supervisor) Stats() SupervisorStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SupervisorStats{
		Epoch:     s.primary.Epoch(),
		Failovers: s.failovers,
		Misses:    s.misses,
		Replicas:  len(s.replicas),
	}
	if s.lastErr != nil {
		st.Err = s.lastErr.Error()
	}
	return st
}

// Start launches the background probe loop. Stop it with Stop; Start after
// Stop resumes probing.
func (s *Supervisor) Start() {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	if s.active {
		return
	}
	s.active = true
	s.stopCh = make(chan struct{})
	s.doneCh = make(chan struct{})
	go s.watch(s.stopCh, s.doneCh)
}

// Stop halts the probe loop (a failover already in flight completes first).
func (s *Supervisor) Stop() {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	if !s.active {
		return
	}
	s.active = false
	close(s.stopCh)
	<-s.doneCh
}

func (s *Supervisor) watch(stopCh chan struct{}, doneCh chan struct{}) {
	defer close(doneCh)
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stopCh:
			return
		case <-ticker.C:
			s.probe()
		}
	}
}

// probe runs one heartbeat and, past the miss budget, a failover. Failover
// errors (e.g. no promotable replica yet) are kept in Stats and retried on
// the next tick rather than crashing the loop: a replica may still be
// attaching.
func (s *Supervisor) probe() {
	s.mu.Lock()
	p := s.primary
	s.mu.Unlock()
	if p.Heartbeat() == nil {
		s.mu.Lock()
		s.misses = 0
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.misses++
	trigger := s.misses >= s.opts.Misses
	s.mu.Unlock()
	if trigger {
		if _, err := s.Failover(); err != nil {
			s.mu.Lock()
			s.lastErr = err
			s.mu.Unlock()
		}
	}
}

// Failover deposes the current primary and promotes the freshest replica:
//
//  1. fence the old primary below epoch+1 (in memory immediately — no
//     further commit can be acknowledged — and best-effort durably in its
//     storage, so a restarted zombie stays read-only);
//  2. pick the freshest non-degraded semi-sync replica by durable mirror LSN;
//  3. stamp its mirror with the new epoch and open it as the new primary
//     (Recover over the mirror);
//  4. divergence-repair and re-point every surviving replica at the new
//     primary, preserving its ack mode.
//
// The old primary is NOT closed or re-attached here — its process is
// presumed dead; ReattachStorage re-joins its storage later if it comes
// back. Failover is also safe to call manually on a live primary (planned
// switchover): the fence stops its commits first.
func (s *Supervisor) Failover() (*Database, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	old := s.primary
	newEpoch := old.Epoch() + 1
	if f := old.walFence.Load(); f > newEpoch {
		newEpoch = f
	}
	if err := old.Fence(newEpoch); err != nil {
		// The storage that just failed heartbeats is expected to fail the
		// durable fence write too; the in-memory fence already holds, and a
		// zombie restarting over dead storage cannot serve writes either.
		s.lastErr = fmt.Errorf("engine: failover: durable fence on old primary: %w", err)
	}

	candidate := FreshestReplica(s.replicas)
	if candidate == nil {
		return nil, errNoPromotable
	}
	survivors := make([]*Replica, 0, len(s.replicas)-1)
	for _, r := range s.replicas {
		if r != candidate {
			survivors = append(survivors, r)
		}
	}

	promoted, err := PromoteReplica(candidate, newEpoch)
	if err != nil {
		return nil, fmt.Errorf("engine: failover: %w", err)
	}

	repointed := make([]*Replica, 0, len(survivors))
	for _, r := range survivors {
		nr, err := Repoint(r, promoted, ReplicaOptions{})
		if err != nil {
			// A replica that cannot re-point is dropped from the set (its
			// storage can be re-attached later); losing a replica must not
			// fail the failover that restores write availability.
			s.lastErr = fmt.Errorf("engine: failover: repoint replica: %w", err)
			continue
		}
		repointed = append(repointed, nr)
		if s.opts.OnRepoint != nil {
			s.opts.OnRepoint(r, nr)
		}
	}

	s.primary = promoted
	s.replicas = repointed
	s.misses = 0
	s.failovers++
	if s.opts.OnPromote != nil {
		s.opts.OnPromote(promoted, candidate)
	}
	return promoted, nil
}

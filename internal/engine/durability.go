package engine

import (
	"reactdb/internal/wal"
)

// Recover replays the containers' write-ahead logs into memory, restoring
// every acknowledged committed transaction. It is meant to run on startup,
// after Open (and after any loader-based bootstrap: replayed versions
// overwrite loaded rows, never the other way around) and before the database
// serves transactions. Under any durability mode other than DurabilityWAL it
// is a no-op.
//
// Replay applies full row images in log order, so it is idempotent: a write
// whose TID is not newer than the record's current version is skipped.
// Every acknowledged commit is replayed. For transactions that were still
// mid-flush when the previous incarnation died — appended but never fsynced
// — the outcome depends on what killed it: after a machine crash the page
// cache is gone and the CRC framing cuts the log at the last complete
// durable record, so they are not replayed; after a mere process kill their
// bytes may survive in the OS page cache, and Open adopts (and fsyncs) that
// inherited tail, so such never-acknowledged transactions can be replayed.
// Both are correct: an unacknowledged outcome is ambiguous by definition.
// Transactions that were definitively aborted (a participant's log append
// failed) are retracted with abort records and never resurface.
//
// It returns the number of transactions replayed.
func (db *Database) Recover() (int, error) {
	total := 0
	for _, c := range db.containers {
		n, err := c.recover()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// WALStats is a snapshot of one container's write-ahead log activity.
type WALStats struct {
	Container int
	// Enabled reports whether the container has a WAL (DurabilityWAL mode);
	// when false the embedded stats are zero.
	Enabled bool
	wal.Stats
}

// WALStats returns per-container WAL statistics: appended records and bytes,
// physical fsyncs versus absorbed sync requests, and the fsync-latency and
// bytes-per-flush distributions.
func (db *Database) WALStats() []WALStats {
	out := make([]WALStats, 0, len(db.containers))
	for _, c := range db.containers {
		s := WALStats{Container: c.id}
		if c.wal != nil {
			s.Enabled = true
			s.Stats = c.wal.Stats()
		}
		out = append(out, s)
	}
	return out
}

package engine

import (
	"reactdb/internal/wal"
)

// Recover replays the containers' write-ahead logs into memory, restoring
// every acknowledged committed transaction. It is meant to run on startup,
// after Open (and after any loader-based bootstrap: replayed versions
// overwrite loaded rows, never the other way around) and before the database
// serves transactions. Under any durability mode other than DurabilityWAL it
// is a no-op.
//
// Replay applies full row images in log order, so it is idempotent: a write
// whose TID is not newer than the record's current version is skipped.
// Every acknowledged commit is replayed. For transactions that were still
// mid-flush when the previous incarnation died — appended but never fsynced
// — the outcome depends on what killed it: after a machine crash the page
// cache is gone and the CRC framing cuts the log at the last complete
// durable record, so they are not replayed; after a mere process kill their
// bytes may survive in the OS page cache, and Open adopts (and fsyncs) that
// inherited tail, so such never-acknowledged transactions can be replayed.
// Both are correct: an unacknowledged outcome is ambiguous by definition.
// Transactions that were definitively aborted (a participant's log append
// failed) are retracted with abort records and never resurface.
//
// Multi-container transactions are resolved by presumed abort: a first scan
// collects every durable decision record (any container's log can be a
// coordinator log), then each container's replay applies prepare records
// whose global id was decided and tombstones the rest with durable abort
// records — a prepared-but-undecided transaction is never half-applied,
// regardless of which participant logs its prepare records reached. The
// decision record is appended only after every participant's prepare record
// is durable, so a durable decision implies every participant can replay its
// share: recovery can never surface a multi-container transaction on a
// strict subset of its participants. Finally the root transaction id
// sequence is advanced past every global id seen in the logs, so ids never
// repeat across incarnations (a reused id could match a stale prepare record
// against a fresh decision).
//
// Recovery has a checkpoint fast path: when a container's storage holds a
// valid checkpoint (see Database.Checkpoint), its snapshot is installed first
// and only log records above the checkpoint's low-water mark are replayed —
// O(suffix) instead of O(history), which is what lets checkpointing truncate
// old segments at all. A torn or corrupt checkpoint (crash mid-write, bit
// rot) is never loaded partially: recovery falls back to the next older
// checkpoint, and finally to full replay of whatever segments remain.
//
// It returns the number of transactions replayed, counting a multi-container
// transaction once per participant whose log contributed writes; transactions
// restored via a checkpoint snapshot are not counted (see CheckpointStats
// for RestoredRows).
func (db *Database) Recover() (int, error) {
	// Checkpoint pass: install each container's newest valid checkpoint and
	// set its replay floor.
	var maxGid uint64
	for _, c := range db.containers {
		if c.wal == nil {
			continue
		}
		cp, skipped, err := wal.LatestCheckpoint(c.walStorage)
		if err != nil {
			return 0, err
		}
		c.ckptMu.Lock()
		c.ckptStats.corruptSkipped = skipped
		c.ckptMu.Unlock()
		if cp == nil {
			continue
		}
		if err := c.installCheckpoint(cp); err != nil {
			return 0, err
		}
		if cp.MaxGlobalID > maxGid {
			maxGid = cp.MaxGlobalID
		}
	}
	// Scan pass: collect surviving decision records and the highest global
	// transaction id across all logs. Checkpoints contribute their global-id
	// watermark above, covering decisions that truncation already deleted
	// (those decisions' transactions are fully captured by the snapshots, so
	// no surviving prepare record can need them).
	decided := make(map[uint64]bool)
	for _, c := range db.containers {
		if c.wal == nil {
			continue
		}
		if err := c.wal.Replay(func(rec wal.Record) error {
			if rec.GlobalID > maxGid {
				maxGid = rec.GlobalID
			}
			if rec.Kind == wal.KindDecision {
				decided[rec.GlobalID] = true
			}
			return nil
		}); err != nil {
			return 0, err
		}
	}
	total := 0
	for _, c := range db.containers {
		n, err := c.recover(decided)
		total += n
		if err != nil {
			return total, err
		}
	}
	for {
		cur := db.nextTxnID.Load()
		if cur >= maxGid || db.nextTxnID.CompareAndSwap(cur, maxGid) {
			break
		}
	}
	return total, nil
}

// WALStats is a snapshot of one container's write-ahead log activity.
type WALStats struct {
	Container int
	// Enabled reports whether the container has a WAL (DurabilityWAL mode);
	// when false the embedded stats are zero.
	Enabled bool
	wal.Stats
}

// WALStats returns per-container WAL statistics: appended records and bytes,
// physical fsyncs versus absorbed sync requests, and the fsync-latency and
// bytes-per-flush distributions.
func (db *Database) WALStats() []WALStats {
	out := make([]WALStats, 0, len(db.containers))
	for _, c := range db.containers {
		s := WALStats{Container: c.id}
		if c.wal != nil {
			s.Enabled = true
			s.Stats = c.wal.Stats()
		}
		out = append(out, s)
	}
	return out
}

package engine

import (
	"errors"
	"sync"
	"time"

	"reactdb/internal/stats"
)

// ErrOverloaded is returned by Execute under the fail-fast admission policy
// when the target executor has no in-flight token left. Clients should shed
// load or retry after backing off.
var ErrOverloaded = errors.New("engine: executor admission tokens exhausted")

// errDatabaseClosed is returned when a request arrives after Close.
var errDatabaseClosed = errors.New("engine: database closed")

// requestQueue is the FIFO of (sub-)transaction requests awaiting an
// executor. Admission control lives in the executor's admissionGate (in-flight
// tokens), not here: by the time a root task reaches the queue it already
// holds a token, so the ring only stores and orders work.
//
// The FIFO is a circular buffer: head/count index into a fixed backing array,
// so steady-state enqueue/dequeue churn allocates nothing. It has exactly one
// consumer — the owning executor's run loop — woken through the capacity-1
// wake channel, plus sibling thieves that remove stealable root tasks from
// the tail under the same mutex (stealTail). The buffer starts large enough
// for the admission ceiling and doubles only in the rare case that
// token-exempt sub-transactions outgrow it.
type requestQueue struct {
	mu     sync.Mutex
	buf    []*task
	head   int
	count  int
	closed bool
	// wake signals the owning run loop that work arrived or the queue closed.
	// Capacity 1: a notification is never lost, spurious wakes are cheap.
	wake chan struct{}
}

func newRequestQueue(limit int) *requestQueue {
	capacity := 16
	for capacity < limit+1 {
		capacity <<= 1
	}
	return &requestQueue{buf: make([]*task, capacity), wake: make(chan struct{}, 1)}
}

// notify wakes the queue's consumer (non-blocking; the channel holds at most
// one pending wake).
func (q *requestQueue) notify() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// enqueue appends a task and returns the queue depth observed just before the
// append. The task's enqueuedAt is stamped here, after any admission wait, so
// wait-time stats measure in-queue scheduling delay only.
func (q *requestQueue) enqueue(t *task) (int, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, errDatabaseClosed
	}
	depth := q.count
	t.enqueuedAt = time.Now()
	q.push(t)
	q.mu.Unlock()
	q.notify()
	return depth, nil
}

// push appends t to the ring, growing the backing array if sub-transaction
// bypass filled it. The caller holds q.mu.
func (q *requestQueue) push(t *task) {
	if q.count == len(q.buf) {
		grown := make([]*task, 2*len(q.buf))
		n := copy(grown, q.buf[q.head:])
		copy(grown[n:], q.buf[:q.head])
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.count)%len(q.buf)] = t
	q.count++
}

// tryDequeue removes the oldest task without blocking.
func (q *requestQueue) tryDequeue() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return nil, false
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return t, true
}

// stealTail removes and returns the newest task iff it is stealable: a root
// task not pinned by an explicit affinity contract. The check inspects only
// the tail element, keeping the steal O(1) and allocation-free; a stealable
// task buried under a sub-transaction request is simply not stolen this round.
// Stealing from the tail takes the request that would otherwise wait longest,
// while the victim's own FIFO order over the remaining work is untouched.
func (q *requestQueue) stealTail() *task {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return nil
	}
	i := (q.head + q.count - 1) % len(q.buf)
	t := q.buf[i]
	if !t.isRoot || t.affine {
		return nil
	}
	q.buf[i] = nil
	q.count--
	return t
}

// depth returns the number of waiting requests.
func (q *requestQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// drained reports closed-and-empty, the run loop's exit condition.
func (q *requestQueue) drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed && q.count == 0
}

// close marks the queue closed and wakes the consumer; pending items are
// still drained by the run loop before it exits.
func (q *requestQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notify()
}

// runLoop is the executor's scheduler goroutine: it takes the next request —
// from its own queue in FIFO order, or stolen from the deepest sibling when
// its own queue is empty or pathologically shallower — waits for the
// executor's virtual core, and starts the request on its own goroutine with
// core ownership transferred. The request goroutine releases the core when it
// finishes — or, under cooperative multitasking, while it awaits a remote
// future — which unblocks this loop for the next request.
func (e *Executor) runLoop() {
	defer close(e.loopDone)
	lastStolen := false
	for {
		t := e.nextTask(lastStolen)
		if t == nil {
			return
		}
		lastStolen = t.executor != e
		if t.executor != e {
			// Stolen: re-home the task before it runs. The working set of its
			// reactor moves with it, which the affinity-miss cost model
			// charges at chargeEntry the same way any routing miss is charged
			// — steals buy queue balance at an honest locality price.
			t.executor.stolen.Add(1)
			t.executor = e
			e.steals.Add(1)
		}
		acquiredAt := e.acquire()
		wait := acquiredAt.Sub(t.enqueuedAt)
		e.waitHist.ObserveDuration(wait)
		e.waitWindow.Observe(float64(wait))
		session := &coreSession{exec: e, acquiredAt: acquiredAt, held: true}
		go e.container.db.runTask(t, session)
	}
}

// nextTask returns the next request for this executor, blocking until one is
// available, and nil once the executor's queue is closed and drained. With
// stealing enabled the priority order is: rebalance-steal when the deepest
// sibling is Steal.Ratio times deeper than our backlog, then our own FIFO,
// then empty-queue steal; an idle executor parks on its wake channel and is
// woken by its own enqueues, queue closure, or a sibling whose stealable
// backlog built up (see Executor.submit). lastStolen suppresses the
// rebalance-steal right after a steal, so the thief's own queue is served at
// least every other slot — without it a persistent sibling imbalance could
// starve a lone task waiting here indefinitely.
func (e *Executor) nextTask(lastStolen bool) *task {
	steal := e.container.db.cfg.Steal.Enabled
	for {
		if t := e.pollTask(steal && !lastStolen); t != nil {
			return t
		}
		if e.queue.drained() {
			return nil
		}
		e.parked.Store(true)
		// Re-check after declaring ourselves parked: a producer that missed
		// the parked flag has already enqueued, so this poll sees its work;
		// a producer that saw the flag will send a wake. Either way nothing
		// is lost.
		if t := e.pollTask(steal && !lastStolen); t != nil {
			e.parked.Store(false)
			return t
		}
		if e.queue.drained() {
			e.parked.Store(false)
			return nil
		}
		<-e.queue.wake
		e.parked.Store(false)
	}
}

// pollTask makes one non-blocking attempt to obtain work. rebalance gates the
// steal-ahead-of-own-FIFO path; the empty-queue steal is always allowed when
// stealing is on, since an empty queue has nothing to starve.
func (e *Executor) pollTask(rebalance bool) *task {
	steal := e.container.db.cfg.Steal.Enabled
	if rebalance {
		if own := e.queue.depth(); own > 0 {
			if v := e.stealVictim(own); v != nil {
				if t := v.queue.stealTail(); t != nil {
					return t
				}
			}
		}
	}
	if t, ok := e.queue.tryDequeue(); ok {
		return t
	}
	if steal {
		if v := e.stealVictim(0); v != nil {
			if t := v.queue.stealTail(); t != nil {
				return t
			}
		}
	}
	return nil
}

// stealVictim picks the deepest sibling queue worth stealing from, or nil.
// With own == 0 any sibling at or above Steal.MinVictimDepth qualifies; with
// a non-empty own queue the sibling must additionally be Steal.Ratio times
// deeper than ours, so balanced queues never trade work back and forth. The
// scan allocates nothing: it is part of the steal hot path.
func (e *Executor) stealVictim(own int) *Executor {
	cfg := &e.container.db.cfg
	need := cfg.Steal.MinVictimDepth
	if own > 0 && cfg.Steal.Ratio*own > need {
		need = cfg.Steal.Ratio * own
	}
	var victim *Executor
	deepest := need - 1
	for _, s := range e.container.executors {
		if s == e {
			continue
		}
		if d := s.queue.depth(); d > deepest {
			deepest = d
			victim = s
		}
	}
	return victim
}

// submit places a task on the executor's request queue, recording queue-depth
// and admission statistics. Root tasks must first win an in-flight token from
// the executor's admission gate — the token is held across cooperative yields
// and released only when the transaction completes, aborts, or panics, so the
// gate's limit bounds total in-flight work, not just the waiting queue.
func (e *Executor) submit(t *task) error {
	if t.isRoot {
		if err := e.gate.acquire(e.container.db.cfg.Admission); err != nil {
			if errors.Is(err, ErrOverloaded) {
				e.rejected.Add(1)
			}
			return err
		}
		t.gate = e.gate
	}
	depth, err := e.queue.enqueue(t)
	if err != nil {
		// The queue closed between admission and enqueue (shutdown race); give
		// the token back so Close's drain accounting stays exact.
		t.releaseToken()
		return err
	}
	e.depthHist.Observe(float64(depth))
	e.enqueued.Add(1)
	// A stealable backlog forming behind a busy executor is the signal an
	// idle sibling parks on: wake one. depth is the count before our push, so
	// depth >= 1 means at least two requests are now waiting here.
	if depth >= 1 && t.isRoot && !t.affine && e.container.db.cfg.Steal.Enabled {
		for _, s := range e.container.executors {
			if s != e && s.parked.Load() {
				s.queue.notify()
				break
			}
		}
	}
	return nil
}

// QueueStats is a snapshot of one executor's scheduler instrumentation.
type QueueStats struct {
	Container int
	Executor  int
	// Enqueued counts requests accepted onto the queue; Rejected counts root
	// transactions refused with ErrOverloaded under fail-fast admission.
	Enqueued int64
	Rejected int64
	// Depth is the instantaneous number of waiting requests.
	Depth int
	// InFlight is the number of admission tokens currently held: root
	// transactions admitted to this executor and not yet completed (waiting,
	// running, or cooperatively yielded). EffectiveDepth is the gate's
	// current token limit — equal to Config.QueueDepth under a static bound,
	// moved between the configured floor and ceiling by the adaptive depth
	// controller — and MinEffectiveDepth is the lowest limit the controller
	// ever set (the current limit may have grown back by snapshot time).
	InFlight          int
	EffectiveDepth    int
	MinEffectiveDepth int
	// Steals counts tasks this executor took from sibling queues; Stolen
	// counts tasks siblings took from this executor's queue.
	Steals int64
	Stolen int64
	// AffinityMisses counts requests whose reactor was last processed by a
	// different executor of the container (each charged Costs.AffinityMiss),
	// including misses induced by stealing.
	AffinityMisses int64
	// Wait is the distribution of scheduling delay (enqueue to core acquired),
	// in nanoseconds.
	Wait stats.HistogramSnapshot
	// DepthSeen is the distribution of queue depth observed at enqueue time.
	DepthSeen stats.HistogramSnapshot
}

// QueueStats returns the scheduler statistics of this executor.
func (e *Executor) QueueStats() QueueStats {
	s := QueueStats{
		Container:      e.container.id,
		Executor:       e.id,
		Enqueued:       e.enqueued.Load(),
		Rejected:       e.rejected.Load(),
		Steals:         e.steals.Load(),
		Stolen:         e.stolen.Load(),
		AffinityMisses: e.misses.Load(),
		Wait:           e.waitHist.Snapshot(),
		DepthSeen:      e.depthHist.Snapshot(),
	}
	if e.queue != nil {
		s.Depth = e.queue.depth()
	}
	if e.gate != nil {
		s.InFlight, s.EffectiveDepth, s.MinEffectiveDepth = e.gate.snapshot()
	}
	return s
}

// QueueStats returns the scheduler statistics of every executor, flattened
// across containers. Under DispatchDirect all counters are zero.
func (db *Database) QueueStats() []QueueStats {
	var out []QueueStats
	for _, c := range db.containers {
		for _, e := range c.executors {
			out = append(out, e.QueueStats())
		}
	}
	return out
}

package engine

import (
	"errors"
	"sync"
	"time"

	"reactdb/internal/stats"
)

// ErrOverloaded is returned by Execute under the fail-fast admission policy
// when the target executor's request queue is full. Clients should shed load
// or retry after backing off.
var ErrOverloaded = errors.New("engine: executor request queue full")

// errDatabaseClosed is returned when a request arrives after Close.
var errDatabaseClosed = errors.New("engine: database closed")

// requestQueue is the bounded FIFO of (sub-)transaction requests awaiting an
// executor. Root transactions are subject to the configured depth bound
// (admission control); sub-transaction requests bypass it, since rejecting
// work the system already admitted could abort or deadlock a running root.
//
// The FIFO is a circular buffer: head/count indexes into a fixed backing
// array, so steady-state enqueue/dequeue churn allocates nothing and never
// leaks head capacity the way the previous `items = items[1:]` slice FIFO
// did. The buffer starts large enough for the root-transaction bound and
// doubles only in the rare case that bypassing sub-transactions outgrow it.
type requestQueue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []*task
	head     int
	count    int
	limit    int
	closed   bool
}

func newRequestQueue(limit int) *requestQueue {
	capacity := 16
	for capacity < limit+1 {
		capacity <<= 1
	}
	q := &requestQueue{buf: make([]*task, capacity), limit: limit}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// enqueue appends a task and returns the queue depth observed just before
// the append. Root tasks respect the depth bound according to the admission
// policy; sub-transaction tasks are always accepted while the queue is open.
// The task's enqueuedAt is stamped here, after any admission-block wait, so
// wait-time stats measure in-queue scheduling delay only.
func (q *requestQueue) enqueue(t *task, admission AdmissionPolicy) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return 0, errDatabaseClosed
		}
		if !t.isRoot || q.count < q.limit {
			depth := q.count
			t.enqueuedAt = time.Now()
			q.push(t)
			q.notEmpty.Signal()
			return depth, nil
		}
		if admission == AdmissionFail {
			return 0, ErrOverloaded
		}
		q.notFull.Wait()
	}
}

// push appends t to the ring, growing the backing array if sub-transaction
// bypass filled it. The caller holds q.mu.
func (q *requestQueue) push(t *task) {
	if q.count == len(q.buf) {
		grown := make([]*task, 2*len(q.buf))
		n := copy(grown, q.buf[q.head:])
		copy(grown[n:], q.buf[:q.head])
		q.buf = grown
		q.head = 0
	}
	q.buf[(q.head+q.count)%len(q.buf)] = t
	q.count++
}

// dequeue removes the oldest task, blocking while the queue is open and
// empty. It returns false once the queue is closed and drained.
func (q *requestQueue) dequeue() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 {
		if q.closed {
			return nil, false
		}
		q.notEmpty.Wait()
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.notFull.Signal()
	return t, true
}

// depth returns the number of waiting requests.
func (q *requestQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// close marks the queue closed and wakes all waiters; pending items are still
// drained by dequeue.
func (q *requestQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// runLoop is the executor's scheduler goroutine: it pops the next request,
// waits for the executor's virtual core, and starts the request on its own
// goroutine with core ownership transferred. The request goroutine releases
// the core when it finishes — or, under cooperative multitasking, while it
// awaits a remote future — which unblocks this loop for the next request.
func (e *Executor) runLoop() {
	defer close(e.loopDone)
	for {
		t, ok := e.queue.dequeue()
		if !ok {
			return
		}
		acquiredAt := e.acquire()
		e.waitHist.ObserveDuration(acquiredAt.Sub(t.enqueuedAt))
		session := &coreSession{exec: e, acquiredAt: acquiredAt, held: true}
		go e.container.db.runTask(t, session)
	}
}

// submit places a task on the executor's request queue, recording queue-depth
// and admission statistics.
func (e *Executor) submit(t *task) error {
	depth, err := e.queue.enqueue(t, e.container.db.cfg.Admission)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			e.rejected.Add(1)
		}
		return err
	}
	e.depthHist.Observe(float64(depth))
	e.enqueued.Add(1)
	return nil
}

// QueueStats is a snapshot of one executor's scheduler instrumentation.
type QueueStats struct {
	Container int
	Executor  int
	// Enqueued counts requests accepted onto the queue; Rejected counts root
	// transactions refused with ErrOverloaded under fail-fast admission.
	Enqueued int64
	Rejected int64
	// Depth is the instantaneous number of waiting requests.
	Depth int
	// Wait is the distribution of scheduling delay (enqueue to core acquired),
	// in nanoseconds.
	Wait stats.HistogramSnapshot
	// DepthSeen is the distribution of queue depth observed at enqueue time.
	DepthSeen stats.HistogramSnapshot
}

// QueueStats returns the scheduler statistics of this executor.
func (e *Executor) QueueStats() QueueStats {
	s := QueueStats{
		Container: e.container.id,
		Executor:  e.id,
		Enqueued:  e.enqueued.Load(),
		Rejected:  e.rejected.Load(),
		Wait:      e.waitHist.Snapshot(),
		DepthSeen: e.depthHist.Snapshot(),
	}
	if e.queue != nil {
		s.Depth = e.queue.depth()
	}
	return s
}

// QueueStats returns the scheduler statistics of every executor, flattened
// across containers. Under DispatchDirect all counters are zero.
func (db *Database) QueueStats() []QueueStats {
	var out []QueueStats
	for _, c := range db.containers {
		for _, e := range c.executors {
			out = append(out, e.QueueStats())
		}
	}
	return out
}

package engine

import (
	"sync"
	"testing"
	"time"
)

// TestStaleWindowTimerDoesNotEarlyFlushFreshBatch is the regression test for
// the stale-timer race: a window timer armed for a batch that was since
// flushed (because it filled up) fired into the next batch and flushed it
// before its own window elapsed, destroying amortization. With the
// generation-tagged timers a fresh batch waits out its full window.
func TestStaleWindowTimerDoesNotEarlyFlushFreshBatch(t *testing.T) {
	const window = 400 * time.Millisecond
	cfg := Config{
		Containers:            1,
		ExecutorsPerContainer: 2,
		GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 2, Window: window},
	}
	db, _, _ := openGate(t, cfg)

	// Fill and flush one batch: the first submit arms the window timer that,
	// before the fix, stayed live after the size-triggered flush.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Execute("g0", "noop"); err != nil {
				t.Errorf("Execute: %v", err)
			}
		}()
	}
	wg.Wait()

	// Let the stale timer's firing point land in the middle of the next
	// batch's window: without the fix the lone transaction below would be
	// flushed ~window/2 after submission instead of waiting its own window.
	time.Sleep(window / 2)
	start := time.Now()
	if _, err := db.Execute("g0", "noop"); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < window-window/5 {
		t.Fatalf("fresh batch flushed after %v, want its full window (~%v): a stale timer flushed it early", elapsed, window)
	}
}

// TestGroupCommitSubmitStopRace hammers submit against stop: every submitted
// transaction's waiter must be resolved (flush or fail-fast), never left
// blocking forever on a batch the stopped loop will not flush. Run under
// -race this also exercises the stopped-flag handshake.
func TestGroupCommitSubmitStopRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		cfg := Config{
			Containers:            1,
			ExecutorsPerContainer: 1,
			GroupCommit:           GroupCommitConfig{Enabled: true, MaxBatch: 8, Window: 50 * time.Microsecond},
		}
		db, _, _ := openGate(t, cfg)
		c := db.containers[0]
		gc := c.committer

		const workers = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					txn := c.domain.Begin()
					if err := txn.Prepare(); err != nil {
						t.Errorf("Prepare: %v", err)
						return
					}
					done, ok := gc.submit(txn)
					if !ok {
						// Committer stopped: the caller keeps ownership.
						if err := txn.AbortPrepared(); err != nil {
							t.Errorf("AbortPrepared after rejected submit: %v", err)
						}
						return
					}
					select {
					case <-done:
					case <-time.After(10 * time.Second):
						t.Error("accepted transaction never flushed: submit/stop race")
						return
					}
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		gc.stop() // idempotent: db.Close will stop it again

		waited := make(chan struct{})
		go func() { wg.Wait(); close(waited) }()
		select {
		case <-waited:
		case <-time.After(30 * time.Second):
			t.Fatal("workers hung after stop")
		}
		db.Close()
	}
}

// TestGroupCommitterStopIsIdempotent double-stops a committer directly.
func TestGroupCommitterStopIsIdempotent(t *testing.T) {
	cfg := Config{
		Containers:            1,
		ExecutorsPerContainer: 1,
		GroupCommit:           GroupCommitConfig{Enabled: true},
	}
	db, _, _ := openGate(t, cfg)
	gc := db.containers[0].committer
	gc.stop()
	gc.stop()
	if _, ok := gc.submit(db.containers[0].domain.Begin()); ok {
		t.Fatal("submit accepted a transaction after stop")
	}
}

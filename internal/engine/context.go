package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"reactdb/internal/core"
	"reactdb/internal/kv"
	"reactdb/internal/occ"
	"reactdb/internal/rel"
	"reactdb/internal/vclock"
)

// coreSession tracks ownership of an executor's virtual core by the goroutine
// running one (sub-)transaction task. It is used by exactly one goroutine, so
// it needs no synchronization; the wait hooks of futures created by that
// goroutine run on the same goroutine inside Future.Get.
type coreSession struct {
	exec       *Executor
	acquiredAt time.Time
	held       bool
}

func (s *coreSession) acquire() {
	if s.held {
		return
	}
	s.acquiredAt = s.exec.acquire()
	s.held = true
}

func (s *coreSession) release() {
	if !s.held {
		return
	}
	s.exec.release(s.acquiredAt)
	s.held = false
}

// execContext implements core.Context for one (sub-)transaction executing on
// one reactor. Sub-transactions inlined on the same executor share the
// coreSession of their parent; sub-transactions dispatched to other containers
// get their own task, executor and session.
type execContext struct {
	db        *Database
	root      *rootTxn
	container *Container
	executor  *Executor
	session   *coreSession
	reactor   string
	catalog   *rel.Catalog
	txn       *occ.Txn
	children  []*core.Future
	rng       *rand.Rand
}

var _ core.Context = (*execContext)(nil)

// Reactor implements core.Context.
func (c *execContext) Reactor() string { return c.reactor }

// Rand implements core.Context. The source is seeded from the root transaction
// id and the reactor name so runs are reproducible given a fixed workload.
func (c *execContext) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(int64(c.root.id)*1_000_003 + int64(hashString(c.reactor))))
	}
	return c.rng
}

// Work implements core.Context: simulated CPU-bound processing on the
// executor's virtual core.
func (c *execContext) Work(d time.Duration) { vclock.Work(d) }

// Schema implements core.Context.
func (c *execContext) Schema(relation string) (*rel.Schema, error) {
	tbl, err := c.table(relation)
	if err != nil {
		return nil, err
	}
	return tbl.Schema(), nil
}

func (c *execContext) table(relation string) (*rel.Table, error) {
	tbl := c.catalog.Table(relation)
	if tbl == nil {
		return nil, fmt.Errorf("%w: %s on reactor %s", core.ErrUnknownRelation, relation, c.reactor)
	}
	return tbl, nil
}

func (c *execContext) lockKey(relation, key string) string {
	return c.reactor + "\x00" + relation + "\x00" + key
}

// Get implements core.Context.
func (c *execContext) Get(relation string, keyVals ...any) (rel.Row, error) {
	tbl, err := c.table(relation)
	if err != nil {
		return nil, err
	}
	key, err := tbl.Schema().EncodeKey(keyVals...)
	if err != nil {
		return nil, err
	}
	rec := tbl.Get(key)
	if rec == nil {
		// Reading a missing key creates an anti-dependency on inserts of that
		// key; guard it with the table's structural version.
		if err := c.txn.RegisterScan(tbl); err != nil {
			return nil, err
		}
		return nil, nil
	}
	data, present, err := c.txn.Read(rec)
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	return tbl.Schema().DecodeRow(data)
}

// Insert implements core.Context.
func (c *execContext) Insert(relation string, row rel.Row) error {
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	key, err := tbl.Schema().KeyOf(row)
	if err != nil {
		return err
	}
	data, err := tbl.Schema().EncodeRow(row)
	if err != nil {
		return err
	}
	rec, _ := tbl.GetOrInsert(key)
	if err := c.txn.Insert(rec, c.lockKey(relation, key), data, tbl); err != nil {
		if errors.Is(err, occ.ErrDuplicateKey) {
			// The key was committed by a concurrent transaction after this one
			// began (the serial-order insert would have succeeded); report a
			// serialization conflict so clients treat it as a retryable abort.
			return fmt.Errorf("%w: concurrent insert of the same key into %s.%s", ErrConflict, c.reactor, relation)
		}
		return err
	}
	return nil
}

// Update implements core.Context.
func (c *execContext) Update(relation string, row rel.Row) error {
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	key, err := tbl.Schema().KeyOf(row)
	if err != nil {
		return err
	}
	data, err := tbl.Schema().EncodeRow(row)
	if err != nil {
		return err
	}
	rec := tbl.Get(key)
	if rec == nil {
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	if _, present, err := c.txn.Read(rec); err != nil {
		return err
	} else if !present {
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	// Updates of indexed tables carry the table as their guard so the commit
	// install phase can move secondary-index entries under the structural
	// latch; unindexed updates stay guard-free (no structural change).
	var guard occ.ScanGuard
	if tbl.HasIndexes() {
		guard = tbl
	}
	return c.txn.Write(rec, c.lockKey(relation, key), data, guard)
}

// Delete implements core.Context.
func (c *execContext) Delete(relation string, keyVals ...any) error {
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	key, err := tbl.Schema().EncodeKey(keyVals...)
	if err != nil {
		return err
	}
	rec := tbl.Get(key)
	if rec == nil {
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	if _, present, err := c.txn.Read(rec); err != nil {
		return err
	} else if !present {
		return fmt.Errorf("%w: %s", core.ErrNoSuchRow, relation)
	}
	return c.txn.Delete(rec, c.lockKey(relation, key), tbl)
}

// Scan implements core.Context.
func (c *execContext) Scan(relation string, fn func(row rel.Row) bool, prefixVals ...any) error {
	return c.scan(relation, fn, false, prefixVals...)
}

// ScanDesc implements core.Context.
func (c *execContext) ScanDesc(relation string, fn func(row rel.Row) bool, prefixVals ...any) error {
	return c.scan(relation, fn, true, prefixVals...)
}

func (c *execContext) scan(relation string, fn func(row rel.Row) bool, descending bool, prefixVals ...any) error {
	tbl, err := c.table(relation)
	if err != nil {
		return err
	}
	if err := c.txn.RegisterScan(tbl); err != nil {
		return err
	}
	lo, hi := "", ""
	if len(prefixVals) > 0 {
		prefix, err := tbl.Schema().EncodeKey(prefixVals...)
		if err != nil {
			return err
		}
		lo, hi = prefix, rel.KeyPrefixSuccessor(prefix)
	}
	var iterErr error
	visit := func(key string, rec *kv.Record) bool {
		data, present, err := c.txn.Read(rec)
		if err != nil {
			iterErr = err
			return false
		}
		if !present {
			return true
		}
		row, err := tbl.Schema().DecodeRow(data)
		if err != nil {
			iterErr = err
			return false
		}
		return fn(row)
	}
	if descending {
		tbl.DescendRange(lo, hi, visit)
	} else {
		tbl.AscendRange(lo, hi, visit)
	}
	return iterErr
}

// SelectAll implements core.Context.
func (c *execContext) SelectAll(relation string, prefixVals ...any) ([]rel.Row, error) {
	var rows []rel.Row
	err := c.Scan(relation, func(row rel.Row) bool {
		rows = append(rows, row)
		return true
	}, prefixVals...)
	return rows, err
}

// CallSync implements core.Context.
func (c *execContext) CallSync(reactor, procedure string, args ...any) (any, error) {
	fut, err := c.Call(reactor, procedure, args...)
	if err != nil {
		return nil, err
	}
	return fut.Get()
}

// Call implements core.Context: the asynchronous procedure call of the
// programming model (§2.2.2). Calls to the current reactor are inlined; calls
// to reactors hosted in the same container execute synchronously on the
// calling executor (§3.2.1); calls to reactors in other containers are routed
// to the destination container and executed asynchronously, returning an
// unresolved future.
func (c *execContext) Call(reactor, procedure string, args ...any) (*core.Future, error) {
	typ := c.db.def.TypeOf(reactor)
	if typ == nil {
		return nil, fmt.Errorf("%w: %s", core.ErrUnknownReactor, reactor)
	}
	proc := typ.Procedure(procedure)
	if proc == nil {
		return nil, fmt.Errorf("%w: %s.%s", core.ErrUnknownProcedure, reactor, procedure)
	}
	callArgs := core.Args(args)

	// Direct self-call: inline synchronously (§2.2.4), sharing this context's
	// execution state.
	if reactor == c.reactor {
		res, err := c.runInline(c.container, reactor, proc, callArgs)
		return c.trackChild(core.ResolvedFuture(res, err)), nil
	}

	target := c.db.containerOf(reactor)
	cfg := &c.db.cfg

	// Same-container call: execute synchronously within the same transaction
	// executor to avoid migration of control (§3.2.1).
	if target == c.container && !cfg.DisableSameContainerInlining {
		if !cfg.DisableActiveSetCheck {
			if err := c.root.activeSet.Enter(reactor); err != nil {
				return nil, err
			}
			defer c.root.activeSet.Exit(reactor)
		}
		res, err := c.runInline(target, reactor, proc, callArgs)
		return c.trackChild(core.ResolvedFuture(res, err)), nil
	}

	// Cross-container call: enforce the safety condition, charge the send
	// cost, and dispatch to the destination container's router.
	if !cfg.DisableActiveSetCheck {
		if err := c.root.activeSet.Enter(reactor); err != nil {
			return nil, err
		}
	}
	if cfg.Costs.Send > 0 {
		vclock.Spin(cfg.Costs.Send)
	}
	c.root.addCs(cfg.Costs.Send)

	fut := core.NewFuture()
	c.installWaitHooks(fut)
	t := &task{
		root:     c.root,
		reactor:  reactor,
		procName: procedure,
		proc:     proc,
		args:     callArgs,
		executor: target.router.Route(reactor),
		future:   fut,
		isRoot:   false,
	}
	c.trackChild(fut)
	if err := c.db.dispatch(t); err != nil {
		// The request never reached an executor (queue closed mid-shutdown).
		// Resolve the tracked future so waitChildren observes the failure
		// instead of hanging, and undo the active-set entry the task's
		// completion would have removed.
		if !cfg.DisableActiveSetCheck {
			c.root.activeSet.Exit(reactor)
		}
		fut.Resolve(nil, err)
		return nil, err
	}
	return fut, nil
}

// trackChild records a child sub-transaction future so that waitChildren can
// enforce the completion rule and surface errors even when the application
// never synchronizes on the future (the paper's semantics: any abort in a
// sub-transaction aborts the root transaction).
func (c *execContext) trackChild(fut *core.Future) *core.Future {
	c.children = append(c.children, fut)
	return fut
}

// installWaitHooks wires cooperative multitasking and the receive cost (Cr)
// into a future returned for a cross-container call. The receive cost models
// the thread wake-up and switch on the caller's core when the caller actually
// has to block for the result; collecting a result that is already available
// costs nothing beyond reading memory, which is why asynchronous formulations
// largely overlap their receive costs (paper §4.2.1).
func (c *execContext) installWaitHooks(fut *core.Future) {
	cfg := &c.db.cfg
	blocked := false
	if !cfg.DisableCooperativeMultitasking {
		var blockedAt time.Time
		fut.SetWaitHooks(
			func() {
				blocked = true
				blockedAt = time.Now()
				c.session.release()
			},
			func() {
				c.session.acquire()
				c.root.addBlocked(time.Since(blockedAt))
			},
		)
	}
	fut.SetDeliverHook(func() {
		if !blocked {
			return
		}
		if cfg.Costs.Receive > 0 {
			vclock.Spin(cfg.Costs.Receive)
		}
		c.root.addCr(cfg.Costs.Receive)
	})
}

// runInline executes a sub-transaction synchronously on the calling executor,
// sharing the caller's core session and the container's OCC transaction.
func (c *execContext) runInline(container *Container, reactor string, proc core.Procedure, args core.Args) (any, error) {
	child := &execContext{
		db:        c.db,
		root:      c.root,
		container: container,
		executor:  c.executor,
		session:   c.session,
		reactor:   reactor,
		catalog:   container.catalog(reactor),
		txn:       c.root.txnFor(container),
	}
	if child.catalog == nil {
		return nil, fmt.Errorf("%w: %s not hosted in container %d", core.ErrUnknownReactor, reactor, container.id)
	}
	res, err := c.db.invoke(child, proc, args)
	if waitErr := child.waitChildren(); err == nil {
		err = waitErr
	}
	return res, err
}

// waitChildren enforces the programming model's completion rule: a (sub-)
// transaction completes only when all sub-transactions invoked in its context
// complete. It returns the first error any child reported.
func (c *execContext) waitChildren() error {
	var firstErr error
	for _, fut := range c.children {
		if _, err := fut.Get(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.children = nil
	return firstErr
}
